// Package repro is a from-scratch Go reproduction of "Efficient OLAP
// Query Processing in Distributed Data Warehouses" (Akinde, Böhlen,
// Johnson, Lakshmanan, Srivastava, 2002) — the Skalla system.
//
// The public API lives in package repro/skalla; the per-figure benchmarks
// reproducing the paper's evaluation live in bench_test.go next to this
// file. See README.md for the tour and DESIGN.md for the system
// inventory.
package repro
