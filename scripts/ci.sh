#!/bin/sh
# Full local verification: build, vet, format check, tests (with race
# detector), examples, and a quick bench pass.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed: $unformatted" >&2
    exit 1
fi

echo "== build + vet =="
go build ./...
# Vet the fault-tolerance and recovery layers first for a fast, targeted
# failure signal, then the whole tree.
go vet ./internal/transport/... ./internal/core/... ./internal/site/... ./skalla/... ./cmd/...
go vet ./...

echo "== static analysis (skalla-lint) =="
# The analyzer suite itself must be vet-clean and race-clean before it is
# trusted to gate the rest of the tree.
go vet ./internal/lint/... ./cmd/skalla-lint
go test -race ./internal/lint/...
# Zero findings required; suppressions need //lint:ignore with a reason
# (see LINT.md). The recovery layers (checkpointing, drain, limits) are
# linted first for a targeted signal — errflow guards the ErrOverloaded /
# ErrDraining chains the Reconnector classifies with errors.Is — then the
# whole tree.
go run ./cmd/skalla-lint -timing ./internal/transport/... ./internal/core/... ./internal/site/...
go run ./cmd/skalla-lint -timing ./...

echo "== tests (race) =="
go test -race ./...

echo "== fuzz smoke (agg spec parser) =="
go test -run '^$' -fuzz FuzzParseSpec -fuzztime 10s ./internal/agg

echo "== fuzz smoke (sql parser) =="
go test -run '^$' -fuzz FuzzParse -fuzztime 10s ./internal/sql

echo "== fuzz smoke (vec vs row differential) =="
go test -run '^$' -fuzz FuzzVecVsRow -fuzztime 10s ./internal/gmdj

echo "== examples =="
for ex in quickstart ipflows tpcr cube multitier sql; do
    echo "-- examples/$ex"
    go run "./examples/$ex" > /dev/null
done

echo "== quick bench pass =="
go test -run xxx -bench . -benchtime 1x . > /dev/null

echo "== observability smoke =="
./scripts/obs_smoke.sh

echo "all checks passed"
