#!/bin/sh
# Gating known-vulnerability scan: govulncheck findings fail the build
# unless every reported OSV ID is listed — with a reason — in
# .govulncheck-allow at the repo root. Allowlisting is for advisories
# that demonstrably do not affect this module (e.g. a stdlib fix already
# present in the pinned toolchain, or a vulnerable symbol we never
# reach); fixing the dependency is always preferred.
set -eu
cd "$(dirname "$0")/.."

out=$(mktemp)
trap 'rm -f "$out"' EXIT

# govulncheck exits 3 when it finds vulnerabilities affecting the module;
# any other nonzero exit is an operational error and fails as-is.
status=0
go run golang.org/x/vuln/cmd/govulncheck@latest ./... >"$out" 2>&1 || status=$?
cat "$out"
if [ "$status" -eq 0 ]; then
    echo "vulncheck: clean"
    exit 0
fi
if [ "$status" -ne 3 ]; then
    echo "vulncheck: govulncheck failed (exit $status)" >&2
    exit "$status"
fi

# Compare the reported OSV IDs against the allowlist. Format: one
# "GO-YYYY-NNNN reason..." per line; the reason is mandatory, '#'
# comments and blank lines are skipped.
ids=$(grep -oE 'GO-[0-9]{4}-[0-9]+' "$out" | sort -u)
blocked=""
for id in $ids; do
    entry=$(grep -E "^$id([[:space:]]|\$)" .govulncheck-allow 2>/dev/null || true)
    if [ -z "$entry" ]; then
        blocked="$blocked $id"
        continue
    fi
    reason=$(printf '%s\n' "$entry" | sed -E "s/^$id[[:space:]]*//")
    if [ -z "$reason" ]; then
        echo "vulncheck: $id is allowlisted without a reason; add one to .govulncheck-allow" >&2
        blocked="$blocked $id"
        continue
    fi
    echo "vulncheck: $id allowlisted: $reason"
done

if [ -n "$blocked" ]; then
    echo "vulncheck: blocking vulnerabilities:$blocked" >&2
    echo "vulncheck: fix the dependency, or allowlist the ID with a reason in .govulncheck-allow" >&2
    exit 1
fi
echo "vulncheck: all findings allowlisted"
