#!/bin/sh
# Observability smoke test: starts two TCP sites with debug endpoints,
# runs one distributed query through skalla-coord with JSON stats and
# Chrome-trace output, then asserts every observability surface serves
# valid, non-trivial JSON (via scripts/jsoncheck — no jq dependency).
set -eu
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
SITE1_PID=""
SITE2_PID=""
cleanup() {
    [ -n "$SITE1_PID" ] && kill "$SITE1_PID" 2>/dev/null || true
    [ -n "$SITE2_PID" ] && kill "$SITE2_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "== build =="
go build -o "$WORK/skalla-site" ./cmd/skalla-site
go build -o "$WORK/skalla-coord" ./cmd/skalla-coord
go build -o "$WORK/jsoncheck" ./scripts/jsoncheck

# Fixed high ports; loopback only.
S1=127.0.0.1:19401
S2=127.0.0.1:19402
D1=127.0.0.1:19411
D2=127.0.0.1:19412

echo "== start sites =="
"$WORK/skalla-site" -addr "$S1" -id site0 -debug-addr "$D1" >"$WORK/site0.log" 2>&1 &
SITE1_PID=$!
"$WORK/skalla-site" -addr "$S2" -id site1 -debug-addr "$D2" >"$WORK/site1.log" 2>&1 &
SITE2_PID=$!

# Wait for both TCP listeners to come up (sites print their bound
# address once listening).
for i in $(seq 1 50); do
    if grep -q "listening" "$WORK/site0.log" && grep -q "listening" "$WORK/site1.log"; then
        break
    fi
    sleep 0.1
done

echo "== run query (stats JSON + trace, profiled) =="
# -profile tags the execution with a query ID, so each site records a
# per-request profile and serves it on /profiles below.
"$WORK/skalla-coord" \
    -sites "$S1,$S2" \
    -generate tpcr -rows 4000 -customers 200 \
    -base CustName \
    -md "count(*) AS cnt1, avg(F.Quantity) AS avg1 ; F.CustName = B.CustName" \
    -md "count(*) AS cnt2 ; F.CustName = B.CustName AND F.Quantity >= B.avg1" \
    -profile -stats-json -trace "$WORK/trace.json" \
    >"$WORK/stats.json" 2>"$WORK/coord.log"

echo "== validate coordinator artifacts =="
"$WORK/jsoncheck" -require rounds,bytes,rounds.0.name "$WORK/stats.json"
"$WORK/jsoncheck" -require traceEvents,traceEvents.0.name "$WORK/trace.json"

echo "== validate site debug endpoints =="
# The sites served real rounds, so their metrics must be non-empty
# valid JSON with populated counters.
"$WORK/jsoncheck" -url "http://$D1/metrics" -require counters,counters.site.rounds_served
"$WORK/jsoncheck" -url "http://$D2/metrics" -require counters,counters.site.rounds_served
"$WORK/jsoncheck" -url "http://$D1/events"
"$WORK/jsoncheck" -url "http://$D1/trace" -require traceEvents

echo "== validate per-request profiles =="
# The query above was QueryID-tagged, so both sites must have recorded
# at least one per-request profile.
"$WORK/jsoncheck" -url "http://$D1/profiles" -require 0.query_id,0.outcome,0.wall_ns
"$WORK/jsoncheck" -url "http://$D2/profiles" -require 0.query_id,0.outcome,0.wall_ns

echo "== validate pprof and runtime gauges =="
"$WORK/jsoncheck" -url "http://$D1/debug/pprof/" -raw
"$WORK/jsoncheck" -url "http://$D1/metrics" -require gauges,gauges.runtime.goroutines,gauges.runtime.heap_bytes

echo "observability smoke passed"
