// Command jsoncheck validates that a file, stdin, or HTTP endpoint
// returns well-formed, non-trivial JSON — the assertion primitive of the
// observability smoke test (scripts/obs_smoke.sh), kept in-repo so CI
// needs no jq.
//
//	jsoncheck out.json
//	jsoncheck -url http://127.0.0.1:9101/metrics -require counters
//	jsoncheck -url http://127.0.0.1:9101/debug/pprof/ -raw
//	skalla-coord ... -stats-json | jsoncheck -require rounds -
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

func main() {
	url := flag.String("url", "", "fetch the JSON from this HTTP URL instead of a file")
	require := flag.String("require", "", "comma-separated list of dotted paths that must exist (e.g. counters,rounds.0.name)")
	raw := flag.Bool("raw", false, "only require a non-empty 200 response; skip JSON parsing (for non-JSON debug endpoints like /debug/pprof/)")
	flag.Parse()

	data, src, err := input(*url, flag.Arg(0))
	if err != nil {
		fatal("%v", err)
	}
	if len(data) == 0 {
		fatal("%s: empty response", src)
	}
	if *raw {
		fmt.Printf("jsoncheck ok (raw): %s (%d bytes)\n", src, len(data))
		return
	}
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		fatal("%s: invalid JSON: %v", src, err)
	}
	if *require != "" {
		for _, path := range strings.Split(*require, ",") {
			path = strings.TrimSpace(path)
			if path == "" {
				continue
			}
			if err := lookup(v, path); err != nil {
				fatal("%s: %v", src, err)
			}
		}
	}
	fmt.Printf("jsoncheck ok: %s (%d bytes)\n", src, len(data))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "jsoncheck: "+format+"\n", args...)
	os.Exit(1)
}

// input reads the JSON payload from -url, a file argument, or stdin.
func input(url, path string) ([]byte, string, error) {
	if url != "" {
		client := &http.Client{Timeout: 10 * time.Second}
		resp, err := client.Get(url)
		if err != nil {
			return nil, url, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, url, fmt.Errorf("%s: HTTP %s", url, resp.Status)
		}
		data, err := io.ReadAll(resp.Body)
		return data, url, err
	}
	if path == "" || path == "-" {
		data, err := io.ReadAll(os.Stdin)
		return data, "stdin", err
	}
	data, err := os.ReadFile(path)
	return data, path, err
}

// lookup resolves a dotted path ("rounds.0.name") through objects and
// arrays, failing when a segment is absent. Keys may themselves contain
// dots (metric names like "site.rounds_served"): at each object the
// longest key matching a prefix of the remaining path wins.
func lookup(v any, path string) error {
	if err := descend(v, strings.Split(path, ".")); err != nil {
		return fmt.Errorf("required path %q: %w", path, err)
	}
	return nil
}

func descend(v any, segs []string) error {
	if len(segs) == 0 {
		return nil
	}
	switch node := v.(type) {
	case map[string]any:
		for take := len(segs); take >= 1; take-- {
			key := strings.Join(segs[:take], ".")
			if next, ok := node[key]; ok {
				return descend(next, segs[take:])
			}
		}
		return fmt.Errorf("key %q not found", segs[0])
	case []any:
		var idx int
		if _, err := fmt.Sscanf(segs[0], "%d", &idx); err != nil {
			return fmt.Errorf("%q is not an array index", segs[0])
		}
		if idx < 0 || idx >= len(node) {
			return fmt.Errorf("index %d out of range (len %d)", idx, len(node))
		}
		return descend(node[idx], segs[1:])
	default:
		return fmt.Errorf("segment %q reaches a leaf", segs[0])
	}
}
