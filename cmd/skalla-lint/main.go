// Command skalla-lint is the multichecker driver for Skalla's first-party
// static-analysis suite (internal/lint): it loads the module's packages,
// runs every analyzer, and prints surviving findings one per line as
// file:line:col: [analyzer] message. The exit status is 0 when the tree
// is clean, 1 when there are findings, 2 on operational errors.
//
// Usage:
//
//	skalla-lint [-list] [-only name[,name...]] [packages]
//
// With no package patterns it analyzes ./... from the module root. Each
// rule, its invariant, and the //lint:ignore suppression syntax are
// documented in LINT.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("skalla-lint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var picked []*lint.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "skalla-lint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			picked = append(picked, a)
		}
		analyzers = picked
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := lint.NewLoader()
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skalla-lint: %v\n", err)
		return 2
	}
	diags, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skalla-lint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d.String(loader.Fset))
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "skalla-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
