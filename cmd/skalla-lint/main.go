// Command skalla-lint is the multichecker driver for Skalla's first-party
// static-analysis suite (internal/lint): it loads the module's packages,
// runs every analyzer, and prints surviving findings one per line as
// file:line:col: [analyzer] message. The exit status is 0 when the tree
// is clean, 1 when there are findings, 2 on operational errors.
//
// Usage:
//
//	skalla-lint [-list] [-only name[,name...]] [-json] [-timing] [packages]
//
// With no package patterns it analyzes ./... from the module root. -json
// replaces the line output with a deterministic JSON array (one object per
// finding, paths relative to the working directory) for tooling; -timing
// prints per-analyzer wall-clock times to stderr. Each rule, its
// invariant, and the //lint:ignore suppression syntax are documented in
// LINT.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// jsonFinding is one finding in -json output. The field set matches the
// CI problem matcher (.github/skalla-lint-matcher.json).
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string) int {
	fs := flag.NewFlagSet("skalla-lint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array instead of lines")
	timing := fs.Bool("timing", false, "print per-analyzer wall-clock times to stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var picked []*lint.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "skalla-lint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			picked = append(picked, a)
		}
		analyzers = picked
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := lint.NewLoader()
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skalla-lint: %v\n", err)
		return 2
	}
	diags, timings, err := lint.RunAnalyzersTimed(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skalla-lint: %v\n", err)
		return 2
	}
	if *timing {
		for _, t := range timings {
			fmt.Fprintf(os.Stderr, "skalla-lint: timing %-10s %s\n", t.Name, t.Elapsed)
		}
	}
	if *asJSON {
		cwd, _ := os.Getwd()
		findings := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			pos := loader.Fset.Position(d.Pos)
			file := pos.Filename
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
					file = rel
				}
			}
			findings = append(findings, jsonFinding{
				File: file, Line: pos.Line, Col: pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "skalla-lint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String(loader.Fset))
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "skalla-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
