// Command skalla-bench regenerates the paper's experimental evaluation
// (Section 5): the speed-up experiments for group reduction (Fig. 2),
// coalescing (Fig. 3), and synchronization reduction (Fig. 4); the
// combined-reductions scale-up (Fig. 5, both group-growth variants); and
// an extra per-optimization ablation.
//
//	skalla-bench -experiment all
//	skalla-bench -experiment fig2 -rows 96000 -customers 8000
//
// Absolute numbers depend on the machine and the configured link model;
// the shapes (who wins, quadratic vs linear growth, the (2c+2n+1)/(4n+1)
// formula fit) are the reproduction targets.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/transport"
)

func main() {
	experiment := flag.String("experiment", "all", "fig2, fig3, fig4, fig5, ablation, tree, serve, vec, tail, or all")
	sites := flag.Int("sites", 8, "number of warehouse sites")
	rows := flag.Int("rows", 48000, "total TPCR rows")
	customers := flag.Int("customers", 4000, "high-cardinality group count (paper: 100000)")
	lowcard := flag.Int("lowcard", 2000, "low-cardinality group count (paper: 2000-4000)")
	seed := flag.Int64("seed", 1, "generator seed")
	repeat := flag.Int("repeat", 2, "repetitions per point (fastest kept)")
	latency := flag.Duration("latency", 2*time.Millisecond, "modeled per-message link latency")
	mbps := flag.Float64("mbps", 10, "modeled link bandwidth in Mbit/s")
	jsonPath := flag.String("json", "", "also write machine-readable results (figure → metric → value) to this JSON file")
	concurrency := flag.Int("concurrency", 8, "serve experiment: closed-loop worker count")
	queries := flag.Int("queries", 64, "serve experiment: total queries to issue")
	vecMinSpeedup := flag.Float64("vec-min-speedup", 0,
		"vec experiment: fail unless the best kernel-level vec/row speedup reaches this factor (0 disables the guard)")
	tailQueries := flag.Int("tail-queries", 40, "tail experiment: executions per variant")
	tailP := flag.Float64("tail-p", 0.12, "tail experiment: per-call straggler probability")
	tailDelay := flag.Duration("tail-delay", 50*time.Millisecond, "tail experiment: injected straggler latency")
	hedgeDelay := flag.Duration("hedge-delay", 5*time.Millisecond, "tail experiment: fixed hedge trigger delay")
	tailMinSpeedup := flag.Float64("tail-min-speedup", 0,
		"tail experiment: fail unless hedging improves p99 latency by this factor (0 disables the guard)")
	flag.Parse()

	// The tail experiment builds its own chaos-injected cluster pair; it
	// does not need the TPCR harness below.
	if *experiment == "tail" {
		r, err := bench.TailExperiment(bench.TailConfig{
			Sites: *sites, Rows: *rows, Seed: *seed,
			Queries: *tailQueries, TailP: *tailP, TailDelay: *tailDelay,
			HedgeDelay: *hedgeDelay,
		})
		if err != nil {
			log.Fatalf("skalla-bench: %v", err)
		}
		fmt.Print(r)
		if *jsonPath != "" {
			if err := r.Metrics().WriteFile(*jsonPath); err != nil {
				log.Fatalf("skalla-bench: %v", err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
		}
		if *tailMinSpeedup > 0 && r.P99Speedup() < *tailMinSpeedup {
			log.Fatalf("skalla-bench: tail regression: hedged p99 speedup %.2fx below required %.2fx",
				r.P99Speedup(), *tailMinSpeedup)
		}
		return
	}

	// The serve experiment drives its own small cluster through the
	// concurrent query service; it does not need the TPCR harness below.
	if *experiment == "serve" {
		r, err := bench.ServeExperiment(bench.ServeConfig{
			Sites: *sites, Rows: *rows, Seed: *seed,
			Concurrency: *concurrency, Queries: *queries,
		})
		if err != nil {
			log.Fatalf("skalla-bench: %v", err)
		}
		fmt.Print(r)
		if *jsonPath != "" {
			if err := r.Metrics().WriteFile(*jsonPath); err != nil {
				log.Fatalf("skalla-bench: %v", err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
		}
		return
	}

	cfg := bench.Config{
		Sites: *sites, Rows: *rows, Customers: *customers,
		LowCardGroups: *lowcard, Seed: *seed, Repeat: *repeat,
		Cost: transport.CostModel{LatencyPerMsg: *latency, BytesPerSec: *mbps * 1e6 / 8},
	}
	h, err := bench.NewHarness(cfg)
	if err != nil {
		log.Fatalf("skalla-bench: %v", err)
	}
	defer h.Close()

	results := bench.Results{}
	switch *experiment {
	case "all":
		report, res, err := h.RunAllResults()
		if err != nil {
			log.Fatalf("skalla-bench: %v", err)
		}
		fmt.Print(report)
		results.Merge(res)
		// The concurrent-serving closed loop rides along so the full
		// artifact carries QPS/p50/p99/shed next to the figure curves.
		sr, err := bench.ServeExperiment(bench.ServeConfig{
			Seed: *seed, Concurrency: *concurrency, Queries: *queries,
		})
		if err != nil {
			log.Fatalf("skalla-bench: %v", err)
		}
		fmt.Println()
		fmt.Print(sr)
		results.Merge(sr.Metrics())
		// So does the row-vs-vectorized engine comparison.
		vr, err := bench.VecExperiment(cfg)
		if err != nil {
			log.Fatalf("skalla-bench: %v", err)
		}
		fmt.Println()
		fmt.Print(vr)
		results.Merge(vr.Metrics())
	case "fig2":
		r, err := h.Fig2()
		if err != nil {
			log.Fatalf("skalla-bench: %v", err)
		}
		fmt.Print(r)
		results.Merge(r.Metrics())
	case "fig3":
		high, low, err := h.Fig3()
		if err != nil {
			log.Fatalf("skalla-bench: %v", err)
		}
		fmt.Println(high)
		fmt.Print(low)
		results.Merge(high.Metrics("fig3_high"))
		results.Merge(low.Metrics("fig3_low"))
	case "fig4":
		high, low, err := h.Fig4()
		if err != nil {
			log.Fatalf("skalla-bench: %v", err)
		}
		fmt.Println(high)
		fmt.Print(low)
		results.Merge(high.Metrics("fig4_high"))
		results.Merge(low.Metrics("fig4_low"))
	case "fig5":
		grow, err := h.Fig5(false)
		if err != nil {
			log.Fatalf("skalla-bench: %v", err)
		}
		fmt.Println(grow)
		konst, err := h.Fig5(true)
		if err != nil {
			log.Fatalf("skalla-bench: %v", err)
		}
		fmt.Print(konst)
		results.Merge(grow.Metrics())
		results.Merge(konst.Metrics())
	case "ablation":
		rowsA, err := h.Ablation()
		if err != nil {
			log.Fatalf("skalla-bench: %v", err)
		}
		fmt.Print(bench.FormatAblation(rowsA))
		results.Merge(bench.AblationMetrics(rowsA))
	case "tree":
		r, err := bench.TreeExperiment(cfg)
		if err != nil {
			log.Fatalf("skalla-bench: %v", err)
		}
		fmt.Print(r)
		results.Merge(r.Metrics())
	case "vec":
		r, err := bench.VecExperiment(cfg)
		if err != nil {
			log.Fatalf("skalla-bench: %v", err)
		}
		fmt.Print(r)
		results.Merge(r.Metrics())
		if *vecMinSpeedup > 0 && r.BestKernelSpeedup() < *vecMinSpeedup {
			log.Fatalf("skalla-bench: vec regression: best kernel speedup %.2fx below required %.2fx",
				r.BestKernelSpeedup(), *vecMinSpeedup)
		}
	default:
		log.Fatalf("skalla-bench: unknown experiment %q", *experiment)
	}

	if *jsonPath != "" {
		if err := results.WriteFile(*jsonPath); err != nil {
			log.Fatalf("skalla-bench: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
	}
}
