// Command skalla-gen generates the synthetic datasets as CSV, either the
// full relation or one site's partition — useful for preloading sites
// (skalla-site -load) and for inspecting the data the experiments run on.
//
//	skalla-gen -kind tpcr -rows 60000 -out tpcr.csv
//	skalla-gen -kind ipflow -rows 50000 -partition 0/8 -out router0.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/ipflow"
	"repro/internal/relation"
	"repro/internal/tpcr"
)

func main() {
	kind := flag.String("kind", "tpcr", "dataset: tpcr or ipflow")
	rows := flag.Int("rows", 60000, "total rows (full dataset)")
	customers := flag.Int("customers", 1000, "tpcr: distinct customers")
	lowcard := flag.Int("lowcard", 2000, "tpcr: CustGroup cardinality")
	routers := flag.Int("routers", 8, "ipflow: number of routers")
	ases := flag.Int("ases", 64, "ipflow: number of autonomous systems")
	aspart := flag.Bool("aspart", false, "ipflow: pin each SourceAS to one router")
	seed := flag.Int64("seed", 1, "generator seed")
	partition := flag.String("partition", "", "generate only one partition, as i/n (e.g. 0/8)")
	out := flag.String("out", "-", "output file, - for stdout")
	flag.Parse()

	siteIdx, numSites, err := parsePartition(*partition)
	if err != nil {
		log.Fatalf("skalla-gen: %v", err)
	}

	var rel *relation.Relation
	switch *kind {
	case "tpcr":
		cfg := tpcr.Config{Rows: *rows, Customers: *customers, LowCardGroups: *lowcard, Seed: *seed}
		if numSites > 0 {
			rel, err = tpcr.GeneratePartition(cfg, siteIdx, numSites)
		} else {
			rel = tpcr.Generate(cfg)
		}
	case "ipflow":
		cfg := ipflow.Config{Flows: *rows, Routers: *routers, ASes: *ases, ASPartitioned: *aspart, Seed: *seed}
		if numSites > 0 {
			rel, err = ipflow.GeneratePartition(cfg, siteIdx, numSites)
		} else {
			rel = ipflow.Generate(cfg)
		}
	default:
		log.Fatalf("skalla-gen: unknown kind %q", *kind)
	}
	if err != nil {
		log.Fatalf("skalla-gen: %v", err)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("skalla-gen: %v", err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	if err := rel.WriteCSV(bw); err != nil {
		log.Fatalf("skalla-gen: %v", err)
	}
	if err := bw.Flush(); err != nil {
		log.Fatalf("skalla-gen: %v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d rows\n", rel.Len())
}

func parsePartition(s string) (int, int, error) {
	if s == "" {
		return 0, 0, nil
	}
	var i, n int
	if _, err := fmt.Sscanf(s, "%d/%d", &i, &n); err != nil {
		return 0, 0, fmt.Errorf("bad -partition %q, want i/n: %w", s, err)
	}
	if n <= 0 || i < 0 || i >= n {
		return 0, 0, fmt.Errorf("bad -partition %q", s)
	}
	return i, n, nil
}
