package main

import "testing"

func TestParsePartition(t *testing.T) {
	i, n, err := parsePartition("")
	if err != nil || i != 0 || n != 0 {
		t.Errorf("empty: %d %d %v", i, n, err)
	}
	i, n, err = parsePartition("3/8")
	if err != nil || i != 3 || n != 8 {
		t.Errorf("3/8: %d %d %v", i, n, err)
	}
	for _, bad := range []string{"8/8", "-1/4", "x/y", "1", "1/0"} {
		if _, _, err := parsePartition(bad); err == nil {
			t.Errorf("parsePartition(%q) should fail", bad)
		}
	}
}
