// Command skalla-site runs one Skalla warehouse site: a local data
// warehouse server that stores its partition of the detail relations and
// evaluates GMDJ rounds shipped by a coordinator (see cmd/skalla-coord).
//
// Usage:
//
//	skalla-site -addr 127.0.0.1:7001 -id site0
//
// Data reaches the site in one of three ways: generated locally on
// request by the coordinator (OpGenerate), shipped by the coordinator
// (OpLoad), or preloaded from CSV with -load name=path (the schema is
// inferred from a -schema flag of name:kind pairs, or use tpcr/ipflow).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gmdj"
	"repro/internal/ipflow"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/site"
	"repro/internal/tpcr"
	"repro/internal/transport"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7001", "address to listen on")
	id := flag.String("id", "site", "site identifier (used in error messages)")
	load := flag.String("load", "", "preload a relation: kind=name=path, kind is tpcr or ipflow (CSV with header)")
	snapshot := flag.String("snapshot", "", "snapshot file: restored at startup if present, written on shutdown")
	debugAddr := flag.String("debug-addr", "", "serve observability over HTTP on this address (/metrics, /events, /trace, /healthz, /readyz); empty disables")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "on SIGTERM, stop accepting and wait up to this long for in-flight requests before exiting")
	maxResultRows := flag.Int("max-result-rows", 0, "reject a request whose result exceeds this many rows with an overload error (0 = unlimited)")
	maxResultBytes := flag.Int64("max-result-bytes", 0, "reject a request whose result exceeds roughly this many bytes with an overload error (0 = unlimited)")
	rowEngine := flag.Bool("row-engine", false, "evaluate GMDJ rounds with the row-at-a-time reference engine instead of the vectorized default")
	flag.Parse()

	eng := site.NewEngine(*id)
	eng.SetLimits(site.Limits{MaxResultRows: *maxResultRows, MaxResultBytes: *maxResultBytes})
	if *rowEngine {
		eng.SetEvalEngine(gmdj.EngineRow)
	}
	site.RegisterGenerator("tpcr", tpcr.Generator)
	site.RegisterGenerator("ipflow", ipflow.Generator)

	var sink *obs.Obs
	if *debugAddr != "" {
		sink = obs.Default
		eng.SetObs(sink)
	}

	if *snapshot != "" {
		if _, err := os.Stat(*snapshot); err == nil {
			if err := eng.Restore(*snapshot); err != nil {
				log.Fatalf("skalla-site: %v", err)
			}
			fmt.Printf("skalla-site: restored relations %v from %s\n", eng.RelationNames(), *snapshot)
		}
	}
	if *load != "" {
		if err := preload(eng, *load); err != nil {
			log.Fatalf("skalla-site: %v", err)
		}
	}

	srv := transport.NewServer(eng)
	srv.Obs = sink
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("skalla-site: %v", err)
	}
	fmt.Printf("skalla-site %s listening on %s\n", *id, bound)

	if sink != nil {
		dbg, err := obs.ServeDebug(*debugAddr, sink)
		if err != nil {
			log.Fatalf("skalla-site: %v", err)
		}
		defer dbg.Close()
		fmt.Printf("skalla-site %s debug endpoints on http://%s (/metrics /events /trace)\n", *id, dbg.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	if s == syscall.SIGTERM {
		// Graceful drain: stop accepting, mark not-ready on /readyz, and
		// let in-flight rounds finish within the deadline.
		fmt.Printf("skalla-site: draining (%d in flight, deadline %s)\n", srv.Inflight(), *drainTimeout)
		if err := srv.Drain(*drainTimeout); err != nil {
			fmt.Fprintf(os.Stderr, "skalla-site: drain: %v\n", err)
		} else {
			fmt.Println("skalla-site: drained")
		}
	} else {
		fmt.Println("skalla-site: shutting down")
		if err := srv.Close(); err != nil {
			log.Fatalf("skalla-site: close: %v", err)
		}
	}
	if *snapshot != "" {
		if err := eng.Snapshot(*snapshot); err != nil {
			log.Fatalf("skalla-site: %v", err)
		}
		fmt.Printf("skalla-site: wrote snapshot %s\n", *snapshot)
	}
}

// preload reads kind=name=path and loads the CSV into the engine.
func preload(eng *site.Engine, spec string) error {
	parts := strings.SplitN(spec, "=", 3)
	if len(parts) != 3 {
		return fmt.Errorf("bad -load %q, want kind=name=path", spec)
	}
	kind, name, path := parts[0], parts[1], parts[2]
	var schema *relation.Schema
	switch kind {
	case "tpcr":
		schema = tpcr.Schema()
	case "ipflow":
		schema = ipflow.Schema()
	default:
		return fmt.Errorf("unknown schema kind %q (want tpcr or ipflow)", kind)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rel, err := relation.ReadCSV(f, schema)
	if err != nil {
		return fmt.Errorf("read %s: %w", path, err)
	}
	eng.Load(name, rel)
	fmt.Printf("skalla-site: loaded %d rows into %q\n", rel.Len(), name)
	return nil
}
