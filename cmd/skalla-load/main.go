// Command skalla-load drives a concurrent OLAP query mix against a Skalla
// warehouse and reports throughput and latency percentiles. By default it
// spins up an in-process cluster with generated TPC-R data; point it at
// running site servers with -sites to load-test a real deployment.
//
//	skalla-load -workers 8 -iterations 200
//	skalla-load -sites 127.0.0.1:7001,127.0.0.1:7002 -workers 4
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/tpcr"
	"repro/internal/workload"
	"repro/skalla"
)

func main() {
	sites := flag.String("sites", "", "comma-separated site addresses (empty: in-process cluster)")
	numSites := flag.Int("num-sites", 8, "in-process site count")
	rows := flag.Int("rows", 48000, "TPCR rows to generate")
	customers := flag.Int("customers", 2000, "distinct customers")
	seed := flag.Int64("seed", 1, "generator and workload seed")
	workers := flag.Int("workers", 8, "concurrent query streams")
	iterations := flag.Int("iterations", 200, "total queries")
	opt := flag.String("opt", "all", "optimizations: all or none")
	flag.Parse()

	var cluster *skalla.Cluster
	var err error
	if *sites == "" {
		cluster, err = skalla.NewLocalCluster(skalla.ClusterConfig{Sites: *numSites})
	} else {
		cluster, err = skalla.Connect(strings.Split(*sites, ","), skalla.CostModel{})
	}
	if err != nil {
		log.Fatalf("skalla-load: %v", err)
	}
	defer cluster.Close()

	cfg := tpcr.Config{Rows: *rows, Customers: *customers, Seed: *seed}
	if _, err := cluster.Generate("tpcr", "tpcr", tpcr.GenParams(cfg)); err != nil {
		log.Fatalf("skalla-load: %v", err)
	}
	if err := tpcr.FillCatalog(cluster.Catalog(), cluster.SiteIDs(), cfg); err != nil {
		log.Fatalf("skalla-load: %v", err)
	}

	opts := skalla.AllOptimizations
	if *opt == "none" {
		opts = skalla.NoOptimizations
	}
	res, err := workload.Run(cluster, workload.TPCRMix(), workload.Config{
		Detail: "tpcr", Workers: *workers, Iterations: *iterations,
		Opts: opts, Seed: *seed,
	})
	if err != nil {
		log.Fatalf("skalla-load: %v", err)
	}
	fmt.Print(res)
	if res.FirstErr != nil {
		log.Fatalf("skalla-load: some queries failed: %v", res.FirstErr)
	}
}
