// Command skalla-coord is the Skalla coordinator CLI: it connects to
// running site servers (cmd/skalla-site), optionally has them generate
// their TPC-R partitions, and evaluates GMDJ queries distributed across
// them, printing the result, the plan, and the execution statistics.
//
// Query syntax: the base is a comma-separated column list; each -md flag
// adds one GMDJ operator written as "aggs ; condition" where aggs is a
// comma-separated list of aggregate specs:
//
//	skalla-coord -sites 127.0.0.1:7001,127.0.0.1:7002 \
//	  -generate tpcr -rows 60000 \
//	  -base CustName \
//	  -md "count(*) AS cnt1, avg(F.Quantity) AS avg1 ; F.CustName = B.CustName" \
//	  -md "count(*) AS cnt2 ; F.CustName = B.CustName AND F.Quantity >= B.avg1" \
//	  -opt all
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/agg"
	"repro/internal/catalog"
	"repro/internal/gmdj"
	"repro/internal/ipflow"
	"repro/internal/obs"
	"repro/internal/tpcr"
	"repro/skalla"
)

// mdFlags collects repeated -md flags.
type mdFlags []string

func (m *mdFlags) String() string { return strings.Join(*m, " | ") }

func (m *mdFlags) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	sites := flag.String("sites", "127.0.0.1:7001", "comma-separated site addresses; replicas of one site joined with | (addr1|addr2)")
	detail := flag.String("detail", "tpcr", "detail relation name at the sites")
	generate := flag.String("generate", "", "have sites generate data first: tpcr or ipflow")
	rows := flag.Int("rows", 60000, "rows for -generate")
	customers := flag.Int("customers", 1000, "distinct customers for -generate tpcr")
	seed := flag.Int64("seed", 1, "generator seed")
	base := flag.String("base", "", "base-values columns (comma separated)")
	where := flag.String("where", "", "optional base filter over the detail relation")
	var mds mdFlags
	flag.Var(&mds, "md", "GMDJ operator: \"aggs ; condition\" (repeatable)")
	sqlText := flag.String("sql", "", "run a SQL statement (SELECT ... FROM ... GROUP BY / CUBE BY ...) instead of -base/-md")
	opt := flag.String("opt", "all", "optimizations: all, none, or comma list of coalesce,group-sites,group-coord,sync")
	explain := flag.Bool("explain", false, "print the plan without executing")
	repl := flag.Bool("repl", false, "interactive SQL shell over the connected sites")
	status := flag.Bool("status", false, "print per-site reachability and row counts, then exit")
	catalogFile := flag.String("catalog", "", "distribution-knowledge JSON: loaded if present; written after -generate")
	maxRows := flag.Int("max-rows", 20, "result rows to print (-1 for all)")
	timeout := flag.Duration("timeout", 0, "per-site call timeout (0 = none), e.g. 5s")
	retries := flag.Int("retries", 3, "call attempts per site endpoint before failing over")
	allowPartial := flag.Bool("allow-partial", false, "return partial results when sites are lost instead of failing")
	statsJSON := flag.Bool("stats-json", false, "print execution statistics as deterministic JSON instead of the prose report (suppresses plan and result output)")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON file of the execution (open in chrome://tracing or Perfetto)")
	debugAddr := flag.String("debug-addr", "", "serve observability over HTTP on this address (/metrics, /events, /trace); empty disables")
	checkpointDir := flag.String("checkpoint-dir", "", "checkpoint each synchronization round into this directory and resume an interrupted execution from its last completed round; empty disables")
	replays := flag.Int("replays", 1, "times to re-issue a round request against a site's replicas after a transport failure mid-round")
	readyURLs := flag.String("ready-urls", "", "comma-separated site=host:port pairs of site debug addresses; the coordinator probes /readyz and skips draining sites when -allow-partial is set")
	serveAddr := flag.String("serve", "", "serve concurrent SQL queries over HTTP on this address (POST /query, plus /metrics /healthz /readyz); empty disables")
	serveConcurrency := flag.Int("serve-concurrency", 4, "queries executing at once in -serve mode")
	serveQueue := flag.Int("serve-queue", 8, "queries that may wait for an execution slot before new arrivals are rejected (HTTP 429)")
	serveQueueTimeout := flag.Duration("serve-queue-timeout", 2*time.Second, "max time a queued query waits for a slot before rejection (0 = bounded only by the request)")
	serveSiteInflight := flag.Int("serve-site-inflight", 4, "per-site connection-pool size and backpressure-window ceiling in -serve mode")
	serveQueryTimeout := flag.Duration("serve-query-timeout", 0, "per-query execution bound in -serve mode (0 = none)")
	serveSlowQuery := flag.Duration("serve-slow-query", 0, "emit a slow-query event (and count serve.slow_queries) for served queries at or above this wall time (0 = disabled)")
	hedge := flag.Bool("hedge", false, "hedge straggling round requests against the next replica of sites with | replica addresses: first success wins, the loser is cancelled")
	hedgeDelay := flag.Duration("hedge-delay", 0, "fixed hedge trigger delay; 0 adapts per site from an EWMA of recent call latency")
	retryBudget := flag.Float64("retry-budget", 0, "retry tokens earned per primary call, shared across all sites; hedges and transport retries each spend one token (0 = default 0.1)")
	retryBudgetBurst := flag.Int("retry-budget-burst", 0, "retry token-bucket cap (0 = default 10)")
	breakerFailures := flag.Int("breaker-failures", 0, "in -serve mode, open a site's circuit breaker after this many consecutive failures or sheds so calls fail fast until a post-cooldown probe succeeds (0 = breakers disabled)")
	breakerCooldown := flag.Duration("breaker-cooldown", time.Second, "how long an open circuit breaker refuses calls before letting one probe through")
	propagateDeadline := flag.Bool("propagate-deadline", false, "stamp round requests with the remaining -timeout budget so sites shed already-doomed work instead of evaluating it")
	profile := flag.Bool("profile", false, "tag the execution with a query ID so sites return per-request profiles, and print the EXPLAIN ANALYZE report with timings; also adds timings to EXPLAIN ANALYZE SQL statements")
	rowEngine := flag.Bool("row-engine", false, "run any in-process GMDJ evaluation on the row-at-a-time reference engine instead of the vectorized default (site processes take their own -row-engine flag)")
	flag.Parse()

	if *rowEngine {
		gmdj.SetDefaultEngine(gmdj.EngineRow)
	}

	opts, err := parseOpts(*opt)
	if err != nil {
		log.Fatalf("skalla-coord: %v", err)
	}

	var sink *obs.Obs
	if *tracePath != "" || *debugAddr != "" || *serveAddr != "" {
		sink = obs.Default
	}

	var ckpts skalla.CheckpointStore
	if *checkpointDir != "" {
		ckpts, err = skalla.NewFileCheckpoints(*checkpointDir)
		if err != nil {
			log.Fatalf("skalla-coord: %v", err)
		}
	}
	ready, err := parseReadyURLs(*readyURLs)
	if err != nil {
		log.Fatalf("skalla-coord: %v", err)
	}

	cluster, err := skalla.ConnectWith(skalla.ConnectConfig{
		Sites:             strings.Split(*sites, ","),
		Attempts:          *retries,
		CallTimeout:       *timeout,
		AllowPartial:      *allowPartial,
		Obs:               sink,
		Checkpoints:       ckpts,
		Replays:           *replays,
		ReadyURLs:         ready,
		Hedge:             *hedge,
		HedgeDelay:        *hedgeDelay,
		RetryBudget:       *retryBudget,
		RetryBudgetBurst:  *retryBudgetBurst,
		PropagateDeadline: *propagateDeadline,
	})
	if err != nil {
		log.Fatalf("skalla-coord: %v", err)
	}
	defer cluster.Close()
	cluster.AnalyzeTiming = *profile
	if *profile {
		// One query per CLI invocation: a fixed ID is unambiguous.
		cluster.Coordinator().QueryID = "cli-000001"
	}

	if *debugAddr != "" {
		dbg, err := obs.ServeDebug(*debugAddr, sink)
		if err != nil {
			log.Fatalf("skalla-coord: %v", err)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "debug endpoints on http://%s (/metrics /events /trace)\n", dbg.Addr())
	}

	if *catalogFile != "" {
		if _, statErr := os.Stat(*catalogFile); statErr == nil {
			cat, err := catalog.LoadFile(*catalogFile)
			if err != nil {
				log.Fatalf("skalla-coord: %v", err)
			}
			cluster.UseCatalog(cat)
			fmt.Fprintf(os.Stderr, "loaded catalog %s (%d sites, %d FDs)\n",
				*catalogFile, len(cat.Sites), len(cat.FDs))
		}
	}

	if *generate != "" {
		if err := doGenerate(cluster, *generate, *detail, *rows, *customers, *seed); err != nil {
			log.Fatalf("skalla-coord: %v", err)
		}
		if *catalogFile != "" {
			if err := cluster.Catalog().SaveFile(*catalogFile); err != nil {
				log.Fatalf("skalla-coord: %v", err)
			}
			fmt.Fprintf(os.Stderr, "wrote catalog %s\n", *catalogFile)
		}
	}

	if *status {
		for _, st := range cluster.Status(*detail) {
			fmt.Println(st)
		}
		return
	}

	if *serveAddr != "" {
		runServe(cluster, sink, *serveAddr, skalla.ServeConfig{
			MaxConcurrent:   *serveConcurrency,
			QueueDepth:      *serveQueue,
			QueueTimeout:    *serveQueueTimeout,
			SiteInflight:    *serveSiteInflight,
			QueryTimeout:    *serveQueryTimeout,
			SlowQuery:       *serveSlowQuery,
			BreakerFailures: *breakerFailures,
			BreakerCooldown: *breakerCooldown,
			Opts:            opts,
		})
		return
	}

	if *repl {
		runREPL(cluster, opts, *maxRows)
		return
	}

	if *sqlText != "" {
		rel, err := cluster.SQL(*sqlText, opts)
		if err != nil {
			log.Fatalf("skalla-coord: %v", err)
		}
		printSQLResult(rel, *maxRows)
		writeTrace(sink, *tracePath)
		return
	}

	if *base == "" || len(mds) == 0 {
		fmt.Println("skalla-coord: no query given (-base and at least one -md, or -sql); done")
		return
	}
	q, err := buildQuery(*base, *where, mds)
	if err != nil {
		log.Fatalf("skalla-coord: %v", err)
	}

	if *explain {
		plan, err := cluster.Explain(q, *detail, opts)
		if err != nil {
			log.Fatalf("skalla-coord: %v", err)
		}
		fmt.Print(plan.Explain())
		return
	}

	res, err := cluster.Query(q, *detail, opts)
	if err != nil {
		log.Fatalf("skalla-coord: %v", err)
	}
	writeTrace(sink, *tracePath)
	if *statsJSON {
		// Machine-readable mode: the stats JSON is the whole stdout
		// payload, so scripts can pipe it straight into a parser.
		out, err := res.Stats.JSON()
		if err != nil {
			log.Fatalf("skalla-coord: %v", err)
		}
		fmt.Printf("%s\n", out)
		return
	}
	if *profile {
		fmt.Print(skalla.RenderAnalyze(res.Plan, res.Stats, true))
	} else {
		fmt.Print(res.Plan.Explain())
	}
	fmt.Println()
	res.Relation.SortBy(q.Keys()...)
	fmt.Print(res.Relation.Format(*maxRows))
	fmt.Println()
	fmt.Print(res.Stats)
	if res.Stats.Partial() {
		// Coverage details are already in the stats table above.
		fmt.Fprintf(os.Stderr, "WARNING: partial result — lost sites: %s\n",
			strings.Join(res.Stats.LostSites(), ", "))
	}
}

// runServe turns the process into the long-lived concurrent query
// service: /query next to the debug endpoints on one listener, readiness
// gated on site fanout health, graceful exit on SIGTERM/SIGINT.
func runServe(cluster *skalla.Cluster, sink *obs.Obs, addr string, cfg skalla.ServeConfig) {
	svc, err := skalla.NewQueryService(cluster, cfg)
	if err != nil {
		log.Fatalf("skalla-coord: %v", err)
	}
	defer svc.Close()
	srv, err := obs.ServeDebug(addr, sink)
	if err != nil {
		log.Fatalf("skalla-coord: %v", err)
	}
	defer srv.Close()
	sink.Health.SetCheck(svc.CheckReady)
	srv.Handle("/query", svc.Handler())
	fmt.Fprintf(os.Stderr, "serving queries on http://%s/query (%d concurrent, queue %d, per-site inflight %d; /metrics /healthz /readyz)\n",
		srv.Addr(), cfg.MaxConcurrent, cfg.QueueDepth, cfg.SiteInflight)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	// Flip readiness first so load balancers stop routing here, then let
	// the deferred closes release connections.
	sink.Health.SetNotReady("draining")
	fmt.Fprintf(os.Stderr, "received %v; draining and shutting down\n", s)
}

// writeTrace dumps the collected spans as Chrome trace_event JSON.
func writeTrace(sink *obs.Obs, path string) {
	if sink == nil || path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatalf("skalla-coord: trace: %v", err)
	}
	if err := sink.Tracer.WriteChromeTrace(f); err != nil {
		f.Close()
		log.Fatalf("skalla-coord: trace: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("skalla-coord: trace: %v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote trace %s (%d spans)\n", path, sink.Tracer.Len())
}

// runREPL reads SQL statements from stdin and executes them against the
// cluster until EOF or \q.
func runREPL(cluster *skalla.Cluster, opts skalla.Options, maxRows int) {
	fmt.Println("skalla> interactive SQL shell — SELECT ... FROM ... {GROUP|CUBE|ROLLUP} BY ...; \\q quits")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Print("skalla> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
		case line == "\\q" || strings.EqualFold(line, "quit") || strings.EqualFold(line, "exit"):
			return
		default:
			start := time.Now()
			rel, err := cluster.SQL(line, opts)
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			printSQLResult(rel, maxRows)
			fmt.Printf("(%d rows, %s)\n", rel.Len(), time.Since(start).Round(time.Millisecond))
		}
		fmt.Print("skalla> ")
	}
}

// printSQLResult prints one SQL result. Ordinary relations are sorted on
// the first column so output is stable regardless of map iteration order;
// EXPLAIN reports are already ordered and must not be alphabetized, so
// their lines print verbatim.
func printSQLResult(rel *skalla.Relation, maxRows int) {
	if rel.Schema.Len() == 1 && rel.Schema.Names()[0] == skalla.PlanCol {
		for _, row := range rel.Rows {
			fmt.Println(row[0].String())
		}
		return
	}
	rel.SortBy(rel.Schema.Names()[0])
	fmt.Print(rel.Format(maxRows))
}

// parseReadyURLs parses "site0=127.0.0.1:8001,site1=127.0.0.1:8002"
// into a site → debug-address map for /readyz health probes.
func parseReadyURLs(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]string{}
	for _, pair := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(pair), "=", 2)
		if len(kv) != 2 || kv[0] == "" || kv[1] == "" {
			return nil, fmt.Errorf("bad -ready-urls entry %q, want site=host:port", pair)
		}
		out[kv[0]] = kv[1]
	}
	return out, nil
}

func parseOpts(s string) (skalla.Options, error) {
	switch s {
	case "all":
		return skalla.AllOptimizations, nil
	case "none", "":
		return skalla.NoOptimizations, nil
	}
	var o skalla.Options
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "coalesce":
			o.Coalesce = true
		case "group-sites":
			o.GroupReduceSites = true
		case "group-coord":
			o.GroupReduceCoord = true
		case "sync":
			o.SyncReduce = true
		default:
			return o, fmt.Errorf("unknown optimization %q", part)
		}
	}
	return o, nil
}

func doGenerate(cluster *skalla.Cluster, kind, rel string, rows, customers int, seed int64) error {
	var params map[string]int64
	switch kind {
	case "tpcr":
		cfg := tpcr.Config{Rows: rows, Customers: customers, Seed: seed}
		params = tpcr.GenParams(cfg)
		if err := tpcr.FillCatalog(cluster.Catalog(), cluster.SiteIDs(), cfg); err != nil {
			return err
		}
	case "ipflow":
		cfg := ipflow.Config{Flows: rows, Routers: cluster.NumSites(), ASPartitioned: true, Seed: seed}
		params = ipflow.GenParams(cfg)
		if err := ipflow.FillCatalog(cluster.Catalog(), cluster.SiteIDs(), cfg); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown generator %q", kind)
	}
	counts, err := cluster.Generate(rel, kind, params)
	if err != nil {
		return err
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	fmt.Fprintf(os.Stderr, "generated %d rows across %d sites\n", total, len(counts))
	return nil
}

func buildQuery(base, where string, mds mdFlags) (skalla.Query, error) {
	cols := strings.Split(base, ",")
	for i := range cols {
		cols[i] = strings.TrimSpace(cols[i])
	}
	b := skalla.NewQuery(cols...)
	if where != "" {
		b = b.Where(where)
	}
	for _, md := range mds {
		parts := strings.SplitN(md, ";", 2)
		if len(parts) != 2 {
			return skalla.Query{}, fmt.Errorf("bad -md %q, want \"aggs ; condition\"", md)
		}
		var list skalla.AggList
		for _, a := range strings.Split(parts[0], ",") {
			s := strings.TrimSpace(a)
			if s == "" {
				continue
			}
			spec, err := agg.ParseSpec(s)
			if err != nil {
				return skalla.Query{}, err
			}
			list = append(list, spec)
		}
		b = b.MD(list, strings.TrimSpace(parts[1]))
	}
	return b.Build()
}
