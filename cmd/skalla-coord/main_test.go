package main

import (
	"strings"
	"testing"

	"repro/skalla"
)

func TestParseOpts(t *testing.T) {
	tests := []struct {
		in   string
		want skalla.Options
	}{
		{"all", skalla.AllOptimizations},
		{"none", skalla.NoOptimizations},
		{"", skalla.NoOptimizations},
		{"coalesce", skalla.Options{Coalesce: true}},
		{"group-sites,sync", skalla.Options{GroupReduceSites: true, SyncReduce: true}},
		{"coalesce, group-coord", skalla.Options{Coalesce: true, GroupReduceCoord: true}},
	}
	for _, tc := range tests {
		got, err := parseOpts(tc.in)
		if err != nil {
			t.Errorf("parseOpts(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("parseOpts(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
	if _, err := parseOpts("bogus"); err == nil {
		t.Error("unknown optimization accepted")
	}
}

func TestBuildQuery(t *testing.T) {
	q, err := buildQuery("CustName", "", mdFlags{
		"count(*) AS n, avg(F.Quantity) AS aq ; F.CustName = B.CustName",
		"count(*) AS big ; F.CustName = B.CustName AND F.Quantity >= B.aq",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.MDs) != 2 || len(q.MDs[0].Specs()) != 2 {
		t.Errorf("query: %+v", q)
	}
	if q.Keys()[0] != "CustName" {
		t.Errorf("keys: %v", q.Keys())
	}

	q, err = buildQuery("a, b", "F.x > 1", mdFlags{"count(*) AS n ; TRUE"})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Base.Cols) != 2 || q.Base.Where == nil {
		t.Errorf("base: %+v", q.Base)
	}

	bad := []mdFlags{
		{"no-semicolon"},
		{"nope(*) AS x ; TRUE"},
		{"count(*) AS n ; (("},
	}
	for _, flags := range bad {
		if _, err := buildQuery("a", "", flags); err == nil {
			t.Errorf("buildQuery(%v) should fail", flags)
		}
	}
}

func TestMDFlags(t *testing.T) {
	var m mdFlags
	m.Set("one")
	m.Set("two")
	if len(m) != 2 || !strings.Contains(m.String(), "one") {
		t.Errorf("mdFlags: %v", m)
	}
}
