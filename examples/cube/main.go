// Data cube over the distributed warehouse: computes the full CUBE of
// (RegionKey, MktSegment, ReturnFlag) with COUNT/SUM/AVG over a TPC-R
// dataset spread across eight sites — one distributed round trip for the
// finest cuboid, client-side rollup for the other seven (possible because
// every aggregate ships as mergeable sub-aggregates, Theorem 1), and an
// unpivot of the result into a marginal-distribution table.
//
//	go run ./examples/cube
package main

import (
	"fmt"
	"log"

	"repro/internal/tpcr"
	"repro/skalla"
)

func main() {
	cluster, err := skalla.NewLocalCluster(skalla.ClusterConfig{Sites: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	cfg := tpcr.Config{Rows: 40000, Customers: 500, Seed: 11}
	if _, err := cluster.Generate("tpcr", "tpcr", tpcr.GenParams(cfg)); err != nil {
		log.Fatal(err)
	}
	if err := tpcr.FillCatalog(cluster.Catalog(), cluster.SiteIDs(), cfg); err != nil {
		log.Fatal(err)
	}

	cube, err := skalla.Cube(cluster, "tpcr",
		[]string{"RegionKey", "MktSegment", "ReturnFlag"},
		skalla.Aggs("count(*) AS lines", "sum(F.Quantity) AS qty", "avg(F.ExtendedPrice) AS avg_price"),
		skalla.AllOptimizations)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CUBE(RegionKey, MktSegment, ReturnFlag): %d cuboid rows "+
		"(NULL = ALL), from one distributed query\n\n", cube.Len())

	fmt.Println("Per-region rollup (MktSegment and ReturnFlag rolled up):")
	show := 0
	for _, row := range cube.Rows {
		if !row[0].IsNull() && row[1].IsNull() && row[2].IsNull() {
			fmt.Printf("  region %v: %v lines, qty %v, avg price %.2f\n",
				row[0], row[3], row[4], row[5].F)
			show++
		}
	}
	if show == 0 {
		log.Fatal("no per-region rollup rows found")
	}

	fmt.Println("\nGrand total:")
	for _, row := range cube.Rows {
		if row[0].IsNull() && row[1].IsNull() && row[2].IsNull() {
			fmt.Printf("  %v lines, qty %v, avg price %.2f\n", row[3], row[4], row[5].F)
		}
	}

	// Unpivot the per-segment rollup into a marginal-distribution table,
	// as the paper's intro does with the unpivot operator.
	perSegment, err := skalla.GroupBy([]string{"MktSegment"},
		skalla.Aggs("sum(F.Quantity) AS qty", "sum(F.ExtendedPrice) AS revenue"))
	if err != nil {
		log.Fatal(err)
	}
	res, err := cluster.Query(perSegment, "tpcr", skalla.AllOptimizations)
	if err != nil {
		log.Fatal(err)
	}
	res.Relation.SortBy("MktSegment")
	flat, err := skalla.Unpivot(res.Relation, []string{"MktSegment"},
		[]string{"qty", "revenue"}, "measure", "value")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nUnpivoted per-segment measures:")
	fmt.Print(flat.Format(10))
}
