// Quickstart: build a four-site distributed warehouse in process, load a
// tiny IP-flow relation, and run the paper's Example 1 — for each
// (SourceAS, DestAS) pair, the total number of flows and the number of
// flows whose byte count is at least the pair's average.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/relation"
	"repro/internal/value"
	"repro/skalla"
)

func main() {
	cluster, err := skalla.NewLocalCluster(skalla.ClusterConfig{Sites: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// A tiny Flow relation, split round-robin across the sites (so no
	// site-level partitioning knowledge applies — the general case).
	schema := relation.MustSchema(
		relation.Column{Name: "SourceAS", Kind: value.KindInt},
		relation.Column{Name: "DestAS", Kind: value.KindInt},
		relation.Column{Name: "NumBytes", Kind: value.KindInt},
	)
	flows := [][3]int64{
		{1, 10, 100}, {1, 10, 300}, {1, 10, 200},
		{2, 10, 50}, {2, 10, 150},
		{1, 20, 500}, {3, 30, 80}, {3, 30, 120},
	}
	parts := make([]*relation.Relation, cluster.NumSites())
	for i := range parts {
		parts[i] = relation.New(schema)
	}
	for i, f := range flows {
		parts[i%len(parts)].MustAppend(
			value.NewInt(f[0]), value.NewInt(f[1]), value.NewInt(f[2]))
	}
	if err := cluster.Load("flow", parts); err != nil {
		log.Fatal(err)
	}

	// Example 1 of the paper: a correlated aggregate query. The second
	// GMDJ's condition references the first GMDJ's outputs (sum1/cnt1),
	// so evaluation is inherently multi-round.
	query, err := skalla.NewQuery("SourceAS", "DestAS").
		MD(skalla.Aggs("count(*) AS cnt1", "sum(F.NumBytes) AS sum1"),
			"F.SourceAS = B.SourceAS AND F.DestAS = B.DestAS").
		MD(skalla.Aggs("count(*) AS cnt2"),
			"F.SourceAS = B.SourceAS AND F.DestAS = B.DestAS AND F.NumBytes >= B.sum1 / B.cnt1").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	res, err := cluster.Query(query, "flow", skalla.AllOptimizations)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Distributed plan:")
	fmt.Print(res.Plan.Explain())
	fmt.Println()

	if err := res.Relation.SortBy("SourceAS", "DestAS"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Result (per AS pair: flows, total bytes, flows ≥ average):")
	fmt.Print(res.Relation)
	fmt.Println()

	fmt.Println("Execution statistics:")
	fmt.Print(res.Stats)
}
