// SQL front-end: the role the paper assigns to Skalla's query generator —
// translating OLAP queries into GMDJ plans — exposed as a SELECT dialect.
// Eight sites generate TPC-R partitions; the client runs GROUP BY with
// WHERE/HAVING, a conditional aggregation, and a ROLLUP, all as SQL.
//
//	go run ./examples/sql
package main

import (
	"fmt"
	"log"

	"repro/internal/tpcr"
	"repro/skalla"
)

func main() {
	cluster, err := skalla.NewLocalCluster(skalla.ClusterConfig{Sites: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	cfg := tpcr.Config{Rows: 40000, Customers: 300, Seed: 5}
	if _, err := cluster.Generate("tpcr", "tpcr", tpcr.GenParams(cfg)); err != nil {
		log.Fatal(err)
	}
	if err := tpcr.FillCatalog(cluster.Catalog(), cluster.SiteIDs(), cfg); err != nil {
		log.Fatal(err)
	}

	queries := []struct {
		title, sql string
	}{
		{
			"Busiest market segments (WHERE + HAVING)",
			`SELECT MktSegment, count(*) AS lines, avg(ExtendedPrice) AS avg_price
			 FROM tpcr WHERE Discount > 0.05
			 GROUP BY MktSegment HAVING lines > 1000`,
		},
		{
			"Return-rate per region (conditional aggregation with CASE)",
			`SELECT RegionKey,
			        count(*) AS lines,
			        sum(CASE WHEN ReturnFlag = 'R' THEN 1 ELSE 0 END) AS returns
			 FROM tpcr GROUP BY RegionKey`,
		},
		{
			"Quantity rollup by region and segment (ROLLUP BY)",
			`SELECT RegionKey, MktSegment, sum(Quantity) AS qty
			 FROM tpcr WHERE RegionKey < 2 ROLLUP BY RegionKey, MktSegment`,
		},
		{
			"Customers named like a pattern (LIKE)",
			`SELECT CustName, count(*) AS lines FROM tpcr
			 WHERE CustName LIKE 'Customer#00000001%' GROUP BY CustName`,
		},
	}
	for _, q := range queries {
		fmt.Printf("== %s ==\n%s\n\n", q.title, q.sql)
		rel, err := cluster.SQL(q.sql, skalla.AllOptimizations)
		if err != nil {
			log.Fatal(err)
		}
		rel.SortBy(rel.Schema.Names()[0])
		fmt.Print(rel.Format(12))
		fmt.Println()
	}
}
