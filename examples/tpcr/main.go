// TPC-R report: the paper's evaluation workload as an application. Eight
// sites each generate their partition of the denormalized TPC-R relation
// (partitioned on NationKey); the client runs a correlated per-customer
// report — order lines, average quantity, and lines at or above that
// average — and compares the unoptimized multi-round evaluation against
// the fully optimized single-round plan, printing the traffic and time
// each strategy costs.
//
//	go run ./examples/tpcr
package main

import (
	"fmt"
	"log"

	"repro/internal/tpcr"
	"repro/skalla"
)

func main() {
	const sites = 8
	cluster, err := skalla.NewLocalCluster(skalla.ClusterConfig{
		Sites: sites,
		Cost:  skalla.DefaultWAN, // model a paper-era 10 Mbit/s interconnect
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	cfg := tpcr.Config{Rows: 60000, Customers: 2000, Seed: 7}
	counts, err := cluster.Generate("tpcr", "tpcr", tpcr.GenParams(cfg))
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	fmt.Printf("Generated %d TPC-R rows across %d sites (partitioned on NationKey)\n\n", total, sites)

	// Distribution knowledge: NationKey domains per site plus the
	// functional dependencies CustKey → NationKey and CustName → CustKey,
	// which make CustName a derived partition attribute.
	if err := tpcr.FillCatalog(cluster.Catalog(), cluster.SiteIDs(), cfg); err != nil {
		log.Fatal(err)
	}

	query, err := skalla.NewQuery("CustName").
		MD(skalla.Aggs("count(*) AS lines", "avg(F.Quantity) AS avg_qty"),
			"F.CustName = B.CustName").
		MD(skalla.Aggs("count(*) AS big_lines", "avg(F.ExtendedPrice) AS avg_price"),
			"F.CustName = B.CustName AND F.Quantity >= B.avg_qty").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	for _, mode := range []struct {
		label string
		opts  skalla.Options
	}{
		{"unoptimized (Alg. GMDJDistribEval baseline)", skalla.NoOptimizations},
		{"all optimizations (group + sync reduction)", skalla.AllOptimizations},
	} {
		res, err := cluster.Query(query, "tpcr", mode.opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s ---\n", mode.label)
		fmt.Print(res.Plan.Explain())
		fmt.Printf("rounds: %d   bytes moved: %.1f KB   modeled evaluation time: %s\n\n",
			len(res.Stats.Rounds), float64(res.Stats.Bytes())/1024,
			res.Stats.EvalTime().Round(1000))

		if mode.opts == skalla.AllOptimizations {
			res.Relation.SortBy("CustName")
			fmt.Println("First customers of the report:")
			fmt.Print(res.Relation.Format(5))
		}
	}
}
