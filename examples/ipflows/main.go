// IP flow analysis: the paper's motivating application (Section 1).
// Routers dump flow records into local warehouses; the network operator
// asks OLAP questions against the union of all sites without moving
// detail data. This example answers the two questions from the paper's
// introduction:
//
//  1. "On an hourly basis, what fraction of the total number of flows is
//     due to Web traffic?"
//
//  2. "On an hourly basis, what fraction of the total traffic flowing
//     into the network is from IP subnets (here: source ASes) whose
//     total hourly traffic is within 10% of the maximum?"
//
//     go run ./examples/ipflows
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/ipflow"
	"repro/skalla"
)

func main() {
	const sites = 8
	cluster, err := skalla.NewLocalCluster(skalla.ClusterConfig{Sites: sites})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Each router (site) generates its own day of flow records locally —
	// the data never crosses the network, just like real NetFlow
	// collection. SourceAS is pinned to routers, the assumption of the
	// paper's Examples 2 and 5.
	cfg := ipflow.Config{Flows: 40000, Routers: sites, ASes: 64, Hours: 24, ASPartitioned: true, Seed: 42}
	if _, err := cluster.Generate("flow", "ipflow", ipflow.GenParams(cfg)); err != nil {
		log.Fatal(err)
	}
	if err := ipflow.FillCatalog(cluster.Catalog(), cluster.SiteIDs(), cfg); err != nil {
		log.Fatal(err)
	}

	webFractionPerHour(cluster)
	heavyHitterFraction(cluster)
}

// webFractionPerHour runs a single coalesced GMDJ: per hour, the total
// flow count and the count of Web flows (ports 80/443).
func webFractionPerHour(cluster *skalla.Cluster) {
	query, err := skalla.NewQuery("Hour").
		MD(skalla.Aggs("count(*) AS flows"), "F.Hour = B.Hour").
		MD(skalla.Aggs("count(*) AS web"),
			"F.Hour = B.Hour AND F.DestPort IN (80, 443)").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	res, err := cluster.Query(query, "flow", skalla.AllOptimizations)
	if err != nil {
		log.Fatal(err)
	}
	res.Relation.SortBy("Hour")

	fmt.Println("Hourly Web-traffic fraction (flows):")
	fmt.Printf("%5s %8s %8s %8s\n", "hour", "flows", "web", "frac")
	for _, row := range res.Relation.Rows {
		flows, web := row[1].I, row[2].I
		fmt.Printf("%5d %8d %8d %8.2f\n", row[0].I, flows, web, float64(web)/float64(flows))
	}
	fmt.Printf("(evaluated in %d round(s), %d bytes moved)\n\n",
		len(res.Stats.Rounds), res.Stats.Bytes())
}

// heavyHitterFraction computes, per (Hour, SourceAS), the AS's hourly
// bytes and the hour's total bytes in one distributed query — note the
// second GMDJ's condition equates only Hour, so its RNG sets overlap
// across base tuples, which plain GROUP BY cannot express. The tiny
// final step (max per hour, fraction from ASes within 10% of it) runs on
// the base-result structure at the client.
func heavyHitterFraction(cluster *skalla.Cluster) {
	query, err := skalla.NewQuery("Hour", "SourceAS").
		MD(skalla.Aggs("sum(F.NumBytes) AS asBytes"),
			"F.Hour = B.Hour AND F.SourceAS = B.SourceAS").
		MD(skalla.Aggs("sum(F.NumBytes) AS hourBytes"),
			"F.Hour = B.Hour").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	res, err := cluster.Query(query, "flow", skalla.AllOptimizations)
	if err != nil {
		log.Fatal(err)
	}

	type hourAgg struct {
		max, total, heavy float64
	}
	hours := map[int64]*hourAgg{}
	rows := res.Relation.Rows
	byHour := func(h int64) *hourAgg {
		a, ok := hours[h]
		if !ok {
			a = &hourAgg{}
			hours[h] = a
		}
		return a
	}
	for _, row := range rows {
		h := row[0].I
		as, _ := row[2].AsFloat()
		tot, _ := row[3].AsFloat()
		a := byHour(h)
		if as > a.max {
			a.max = as
		}
		a.total = tot
	}
	for _, row := range rows {
		h := row[0].I
		as, _ := row[2].AsFloat()
		if a := byHour(h); as >= 0.9*a.max {
			a.heavy += as
		}
	}

	var keys []int64
	for h := range hours {
		keys = append(keys, h)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	fmt.Println("Hourly fraction of traffic from ASes within 10% of the hourly maximum:")
	fmt.Printf("%5s %14s %14s %8s\n", "hour", "total bytes", "heavy bytes", "frac")
	for _, h := range keys {
		a := hours[h]
		fmt.Printf("%5d %14.0f %14.0f %8.3f\n", h, a.total, a.heavy, a.heavy/a.total)
	}
	fmt.Printf("(groups: %d, %d bytes moved — detail rows never left the routers)\n",
		res.Relation.Len(), res.Stats.Bytes())
}
