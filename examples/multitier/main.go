// Multi-tier coordination: the paper's future-work architecture (§6).
// Sixteen warehouse sites sit behind four relay tiers; each relay
// pre-merges its children's sub-aggregates (valid by Theorem 1 — the
// primitive states merge associatively) before forwarding one fragment
// upstream. The example runs the same query against a flat 16-site
// cluster and against the tree and compares the traffic the root
// coordinator sees.
//
//	go run ./examples/multitier
package main

import (
	"fmt"
	"log"

	"repro/internal/tpcr"
	"repro/skalla"
)

func main() {
	const leaves = 16
	cfg := tpcr.Config{Rows: 40000, Customers: 800, Seed: 21}
	query, err := skalla.NewQuery("CustName").
		MD(skalla.Aggs("count(*) AS lines", "avg(F.Quantity) AS avg_qty"),
			"F.CustName = B.CustName").
		MD(skalla.Aggs("count(*) AS big", "avg(F.ExtendedPrice) AS avg_price"),
			"F.CustName = B.CustName AND F.Quantity >= B.avg_qty").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	flat, err := skalla.NewLocalCluster(skalla.ClusterConfig{Sites: leaves})
	if err != nil {
		log.Fatal(err)
	}
	defer flat.Close()
	if _, err := flat.Generate("tpcr", "tpcr", tpcr.GenParams(cfg)); err != nil {
		log.Fatal(err)
	}

	tree, err := skalla.NewTreeCluster(skalla.TreeConfig{Leaves: leaves, Fanout: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer tree.Close()
	if _, err := tree.Generate("tpcr", "tpcr", tpcr.GenParams(cfg)); err != nil {
		log.Fatal(err)
	}

	// Site-side group reduction only: the interesting upstream traffic is
	// the unmergeable-looking multi-site fragments the relays combine.
	opts := skalla.Options{GroupReduceSites: true}

	flatRes, err := flat.Query(query, "tpcr", opts)
	if err != nil {
		log.Fatal(err)
	}
	treeRes, err := tree.Query(query, "tpcr", opts)
	if err != nil {
		log.Fatal(err)
	}

	if flatRes.Relation.Len() != treeRes.Relation.Len() {
		log.Fatalf("result mismatch: flat %d rows, tree %d rows",
			flatRes.Relation.Len(), treeRes.Relation.Len())
	}

	fmt.Printf("query over %d sites, %d result groups — identical results both ways\n\n",
		leaves, flatRes.Relation.Len())
	fmt.Printf("%-28s %14s %14s\n", "", "flat (16 sites)", "tree (4 relays)")
	fmt.Printf("%-28s %14d %14d\n", "coordinator messages", msgs(flatRes.Stats), msgs(treeRes.Stats))
	fmt.Printf("%-28s %14d %14d\n", "groups shipped from root", ship(flatRes.Stats), ship(treeRes.Stats))
	fmt.Printf("%-28s %14d %14d\n", "groups received at root", recv(flatRes.Stats), recv(treeRes.Stats))
	fmt.Printf("%-28s %14.1f %14.1f\n", "root KB moved",
		float64(flatRes.Stats.Bytes())/1024, float64(treeRes.Stats.Bytes())/1024)
	fmt.Println("\n(the tree's relays pre-merged their children's fragments, so the root")
	fmt.Println(" sees one fragment per relay instead of one per site)")
}

func msgs(s *skalla.ExecStats) int {
	return len(s.Rounds)
}

func ship(s *skalla.ExecStats) int64 {
	var n int64
	for _, r := range s.Rounds {
		n += r.GroupsShipped
	}
	return n
}

func recv(s *skalla.ExecStats) int64 {
	var n int64
	for _, r := range s.Rounds {
		n += r.GroupsReceived
	}
	return n
}
