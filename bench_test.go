// Benchmarks reproducing the paper's evaluation section (one benchmark
// per figure/panel; see EXPERIMENTS.md for the mapping and recorded
// results). Each op is one full distributed query execution; besides
// ns/op the benchmarks report:
//
//	wireKB/op  — exact bytes moved between coordinator and sites
//	evalms/op  — the paper's evaluation-time model: per-round max site
//	             compute + coordinator compute + modeled link transfer
//	rounds/op  — synchronization rounds
//
// Run everything with: go test -bench . -benchmem
package repro

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/skalla"
)

// benchConfig keeps per-op cost low enough for -bench . to finish in
// minutes while preserving the paper's shapes; scale up via cmd/skalla-bench.
func benchConfig(sites, rows int) bench.Config {
	return bench.Config{
		Sites: sites, Rows: rows,
		Customers: rows / 12, LowCardGroups: 200, Seed: 1,
	}
}

func newHarness(b *testing.B, cfg bench.Config) *bench.Harness {
	b.Helper()
	h, err := bench.NewHarness(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { h.Close() })
	return h
}

// measureLoop runs the query b.N times and reports the custom metrics.
func measureLoop(b *testing.B, h *bench.Harness, sites int, q skalla.Query, opts skalla.Options) {
	b.Helper()
	var last bench.Measure
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := h.RunQuery(sites, q, opts)
		if err != nil {
			b.Fatal(err)
		}
		last = m
	}
	b.StopTimer()
	b.ReportMetric(float64(last.Bytes)/1024, "wireKB/op")
	b.ReportMetric(float64(last.EvalTime.Microseconds())/1000, "evalms/op")
	b.ReportMetric(float64(last.Rounds), "rounds/op")
}

// BenchmarkFig2Time / BenchmarkFig2Bytes — Fig. 2: the group reduction
// query at 2..8 participating sites, with and without the reductions.
// Time and bytes come from the same executions (both panels of the
// figure); the wireKB metric is the right panel.
func BenchmarkFig2(b *testing.B) {
	h := newHarness(b, benchConfig(8, 12000))
	q := bench.GroupReductionQuery(bench.HighCard)
	variants := []struct {
		name string
		opts skalla.Options
	}{
		{"none", skalla.Options{}},
		{"siteGR", skalla.Options{GroupReduceSites: true}},
		{"coordGR", skalla.Options{GroupReduceCoord: true}},
		{"bothGR", skalla.Options{GroupReduceSites: true, GroupReduceCoord: true}},
	}
	for _, sites := range []int{2, 4, 8} {
		for _, v := range variants {
			b.Run(fmt.Sprintf("sites=%d/%s", sites, v.name), func(b *testing.B) {
				measureLoop(b, h, sites, q, v.opts)
			})
		}
	}
}

// BenchmarkFig2Formula validates the paper's (2c+2n+1)/(4n+1) traffic
// model as a benchmark-time assertion (the ±5% claim).
func BenchmarkFig2Formula(b *testing.B) {
	h := newHarness(b, benchConfig(8, 12000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := h.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range r.Points {
			if p.PredictedRatio == 0 {
				continue
			}
			errFrac := (p.MeasuredRatio - p.PredictedRatio) / p.PredictedRatio
			if errFrac < -0.05 || errFrac > 0.05 {
				b.Fatalf("sites=%d: formula off by %.1f%%", p.Sites, errFrac*100)
			}
		}
	}
}

// BenchmarkFig3High / BenchmarkFig3Low — Fig. 3: coalescing at both
// grouping cardinalities.
func BenchmarkFig3High(b *testing.B) {
	benchCoalesce(b, bench.HighCard)
}

func BenchmarkFig3Low(b *testing.B) {
	benchCoalesce(b, bench.LowCard)
}

func benchCoalesce(b *testing.B, attr string) {
	h := newHarness(b, benchConfig(8, 12000))
	q := bench.CoalescingQuery(attr)
	for _, sites := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("sites=%d/non-coalesced", sites), func(b *testing.B) {
			measureLoop(b, h, sites, q, skalla.Options{})
		})
		b.Run(fmt.Sprintf("sites=%d/coalesced", sites), func(b *testing.B) {
			measureLoop(b, h, sites, q, skalla.Options{Coalesce: true})
		})
	}
}

// BenchmarkFig4High / BenchmarkFig4Low — Fig. 4: synchronization
// reduction without coalescing at both cardinalities.
func BenchmarkFig4High(b *testing.B) {
	benchSyncReduce(b, bench.HighCard)
}

func BenchmarkFig4Low(b *testing.B) {
	benchSyncReduce(b, bench.LowCard)
}

func benchSyncReduce(b *testing.B, attr string) {
	h := newHarness(b, benchConfig(8, 12000))
	q := bench.GroupReductionQuery(attr)
	for _, sites := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("sites=%d/no-sync-reduction", sites), func(b *testing.B) {
			measureLoop(b, h, sites, q, skalla.Options{})
		})
		b.Run(fmt.Sprintf("sites=%d/sync-reduction", sites), func(b *testing.B) {
			measureLoop(b, h, sites, q, skalla.Options{SyncReduce: true})
		})
	}
}

// BenchmarkFig5Scaleup — Fig. 5 (left): combined reductions query on four
// sites, data ×1..×4, groups growing with the data; the optimized run's
// site/coordinator/communication breakdown (right panel) is reported as
// metrics.
func BenchmarkFig5Scaleup(b *testing.B) {
	benchScaleup(b, false)
}

// BenchmarkFig5ConstGroups — §5.3's second variant: group count constant
// while data grows.
func BenchmarkFig5ConstGroups(b *testing.B) {
	benchScaleup(b, true)
}

func benchScaleup(b *testing.B, constGroups bool) {
	const baseRows = 4000
	q := bench.CombinedQuery(bench.HighCard)
	for scale := 1; scale <= 4; scale++ {
		cfg := benchConfig(4, baseRows*scale)
		if constGroups {
			cfg.Customers = baseRows / 12
		}
		h := newHarness(b, cfg)
		for _, v := range []struct {
			name string
			opts skalla.Options
		}{
			{"none", skalla.Options{}},
			{"all", skalla.AllOptimizations},
		} {
			b.Run(fmt.Sprintf("scale=%d/%s", scale, v.name), func(b *testing.B) {
				var last bench.Measure
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m, err := h.RunQuery(4, q, v.opts)
					if err != nil {
						b.Fatal(err)
					}
					last = m
				}
				b.StopTimer()
				b.ReportMetric(float64(last.Bytes)/1024, "wireKB/op")
				b.ReportMetric(float64(last.EvalTime.Microseconds())/1000, "evalms/op")
				b.ReportMetric(float64(last.SiteTime.Microseconds())/1000, "site-ms/op")
				b.ReportMetric(float64(last.CoordTime.Microseconds())/1000, "coord-ms/op")
				b.ReportMetric(float64(last.CommTime.Microseconds())/1000, "comm-ms/op")
			})
		}
	}
}

// BenchmarkAblation attributes the win of each optimization alone on the
// combined query (extension beyond the paper's figures).
func BenchmarkAblation(b *testing.B) {
	h := newHarness(b, benchConfig(8, 12000))
	q := bench.CombinedQuery(bench.HighCard)
	for _, v := range []struct {
		name string
		opts skalla.Options
	}{
		{"none", skalla.Options{}},
		{"coalesce", skalla.Options{Coalesce: true}},
		{"group-reduce-sites", skalla.Options{GroupReduceSites: true}},
		{"group-reduce-coord", skalla.Options{GroupReduceCoord: true}},
		{"sync-reduce", skalla.Options{SyncReduce: true}},
		{"all", skalla.AllOptimizations},
	} {
		b.Run(v.name, func(b *testing.B) {
			measureLoop(b, h, 8, q, v.opts)
		})
	}
}

// BenchmarkTree compares the flat coordinator against relay-tree
// topologies (the §6 future-work extension): each op is a full tree
// experiment sweep.
func BenchmarkTree(b *testing.B) {
	cfg := benchConfig(4, 8000) // 8 leaves
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.TreeExperiment(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
