package skalla

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/site"
	"repro/internal/transport"
)

// TreeConfig configures a multi-tier (spanning-tree) cluster — the
// paper's future-work architecture (§6): leaf warehouse sites are grouped
// under relay tiers that pre-merge sub-aggregates, and the coordinator
// talks only to the relays.
type TreeConfig struct {
	// Leaves is the number of warehouse sites holding data.
	Leaves int
	// Fanout is the number of leaves per relay (default 2).
	Fanout int
	// Cost models every link (coordinator↔relay and relay↔leaf).
	Cost CostModel
}

// NewTreeCluster starts an in-process multi-tier cluster. The returned
// Cluster's sites are the relays; Load addresses the leaves directly
// (relays cannot split shipped relations), while Generate and Query flow
// through the tree.
func NewTreeCluster(cfg TreeConfig) (*Cluster, error) {
	registerGenerators()
	if cfg.Leaves <= 0 {
		return nil, fmt.Errorf("skalla: tree cluster needs leaves")
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 2
	}
	c := &Cluster{}
	var leafClients []transport.Client
	for i := 0; i < cfg.Leaves; i++ {
		eng := site.NewEngine(fmt.Sprintf("leaf%d", i))
		c.engines = append(c.engines, eng)
		leafClients = append(leafClients, transport.NewLocalClient(eng.ID(), eng, cfg.Cost))
	}
	c.leafClients = leafClients

	for off := 0; off < cfg.Leaves; off += cfg.Fanout {
		end := off + cfg.Fanout
		if end > cfg.Leaves {
			end = cfg.Leaves
		}
		relay, err := core.NewRelay(leafClients[off:end], off, cfg.Leaves)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("skalla: %w", err)
		}
		id := fmt.Sprintf("relay%d", off/cfg.Fanout)
		c.ids = append(c.ids, id)
		c.clients = append(c.clients, transport.NewLocalClient(id, relay, cfg.Cost))
	}
	c.coord = core.NewCoordinator(c.clients...)
	c.cat = catalog.New(c.ids...)
	return c, nil
}

// NumLeaves returns the number of leaf sites (0 for flat clusters).
func (c *Cluster) NumLeaves() int { return len(c.leafClients) }
