package skalla

import (
	"math"
	"testing"

	"repro/internal/gmdj"
	"repro/internal/value"
)

func TestSQLGroupBy(t *testing.T) {
	cluster, whole := cubeCluster(t)
	got, err := cluster.SQL(
		"SELECT Region, count(*) AS n, sum(Sales) AS total FROM sales GROUP BY Region",
		AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	q, err := GroupBy([]string{"Region"}, Aggs("count(*) AS n", "sum(Sales) AS total"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := gmdj.EvalQuery(whole, q)
	if err != nil {
		t.Fatal(err)
	}
	got.SortBy("Region")
	want.SortBy("Region")
	if got.Len() != want.Len() {
		t.Fatalf("rows %d vs %d", got.Len(), want.Len())
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if !value.Equal(got.Rows[i][j], want.Rows[i][j]) {
				t.Errorf("row %d col %d: %v != %v", i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
}

func TestSQLWhereAndHaving(t *testing.T) {
	cluster, _ := cubeCluster(t)
	got, err := cluster.SQL(
		"SELECT Region, count(*) AS n FROM sales WHERE Product = 'pen' GROUP BY Region HAVING n >= 2",
		AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	// Pens: east 2 (10, 20), west 1 (7) → only east survives HAVING.
	if got.Len() != 1 || got.Rows[0][0].S != "east" || got.Rows[0][1].I != 2 {
		t.Errorf("result:\n%s", got)
	}
}

func TestSQLSelectOrderAndProjection(t *testing.T) {
	cluster, _ := cubeCluster(t)
	got, err := cluster.SQL(
		"SELECT max(Sales) AS hi, Region FROM sales GROUP BY Region",
		AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	// Column order follows the select list.
	if got.Schema.Cols[0].Name != "hi" || got.Schema.Cols[1].Name != "Region" {
		t.Errorf("schema: %s", got.Schema)
	}
}

func TestSQLDistinct(t *testing.T) {
	cluster, _ := cubeCluster(t)
	got, err := cluster.SQL("SELECT Region, Product FROM sales GROUP BY Region, Product", NoOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 4 || got.Schema.Len() != 2 {
		t.Errorf("distinct projection:\n%s", got)
	}
}

func TestSQLCube(t *testing.T) {
	cluster, whole := cubeCluster(t)
	got, err := cluster.SQL(
		"SELECT Region, Product, avg(Sales) AS mean FROM sales CUBE BY Region, Product",
		AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 9 {
		t.Fatalf("cube rows = %d, want 9", got.Len())
	}
	// Grand total mean equals the direct mean.
	var sum float64
	for _, row := range whole.Rows {
		f, _ := row[2].AsFloat()
		sum += f
	}
	wantMean := sum / float64(whole.Len())
	found := false
	for _, row := range got.Rows {
		if row[0].IsNull() && row[1].IsNull() {
			found = true
			if m, _ := row[2].AsFloat(); math.Abs(m-wantMean) > 1e-9 {
				t.Errorf("grand mean %v, want %v", m, wantMean)
			}
		}
	}
	if !found {
		t.Error("grand total row missing")
	}
}

func TestSQLErrors(t *testing.T) {
	cluster, _ := cubeCluster(t)
	bad := []string{
		"SELECT oops FROM sales GROUP BY Region",              // parse-time
		"SELECT Region, count(*) FROM nosuch GROUP BY Region", // unknown relation
		"SELECT Region, sum(Nope) FROM sales GROUP BY Region", // unknown column
		"SELECT Region, count(*) AS n FROM sales GROUP BY Region HAVING bogus > 1",
	}
	for _, q := range bad {
		if _, err := cluster.SQL(q, NoOptimizations); err == nil {
			t.Errorf("SQL(%q) should fail", q)
		}
	}
}

func TestSQLRollup(t *testing.T) {
	cluster, _ := cubeCluster(t)
	got, err := cluster.SQL(
		"SELECT Region, Product, sum(Sales) AS total FROM sales ROLLUP BY Region, Product",
		AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	// Prefixes of (Region, Product): 4 + 2 + 1 = 7 rows.
	if got.Len() != 7 {
		t.Fatalf("rollup rows = %d, want 7\n%s", got.Len(), got)
	}
	// Grand total = 54.
	found := false
	for _, row := range got.Rows {
		if row[0].IsNull() && row[1].IsNull() {
			found = true
			if v, _ := row[2].AsInt(); v != 54 {
				t.Errorf("grand total = %d, want 54", v)
			}
		}
	}
	if !found {
		t.Error("grand total row missing")
	}
}

// TestSQLCubeWithWhere: the WHERE filter must restrict the cube's detail
// rows and groups (regression: the cube path once dropped WHERE).
func TestSQLCubeWithWhere(t *testing.T) {
	cluster, _ := cubeCluster(t)
	got, err := cluster.SQL(
		"SELECT Region, sum(Sales) AS total FROM sales WHERE Product = 'pen' CUBE BY Region",
		AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	// Pens only: east 30, west 7, total 37; cube = 2 region rows + ALL.
	if got.Len() != 3 {
		t.Fatalf("rows = %d, want 3\n%s", got.Len(), got)
	}
	for _, row := range got.Rows {
		v, _ := row[1].AsInt()
		switch {
		case row[0].IsNull() && v != 37:
			t.Errorf("ALL total = %d, want 37", v)
		case !row[0].IsNull() && row[0].S == "east" && v != 30:
			t.Errorf("east = %d, want 30", v)
		case !row[0].IsNull() && row[0].S == "west" && v != 7:
			t.Errorf("west = %d, want 7", v)
		}
	}
}

func TestSQLOrderByAndLimit(t *testing.T) {
	cluster, _ := cubeCluster(t)
	got, err := cluster.SQL(
		"SELECT Region, Product, sum(Sales) AS total FROM sales GROUP BY Region, Product ORDER BY total DESC, Region LIMIT 2",
		AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("limit: %d rows\n%s", got.Len(), got)
	}
	// Totals: east/pen 30, west/ink 12, east/ink 5, west/pen 7.
	if v, _ := got.Rows[0][2].AsInt(); v != 30 {
		t.Errorf("first row total = %d, want 30", v)
	}
	if v, _ := got.Rows[1][2].AsInt(); v != 12 {
		t.Errorf("second row total = %d, want 12", v)
	}
	// ASC keyword and mixed directions parse.
	if _, err := cluster.SQL(
		"SELECT Region, count(*) AS n FROM sales GROUP BY Region ORDER BY n ASC, Region DESC",
		NoOptimizations); err != nil {
		t.Fatal(err)
	}
	// Errors.
	for _, q := range []string{
		"SELECT Region, count(*) AS n FROM sales GROUP BY Region ORDER BY",
		"SELECT Region, count(*) AS n FROM sales GROUP BY Region ORDER BY n sideways",
		"SELECT Region, count(*) AS n FROM sales GROUP BY Region LIMIT 0",
		"SELECT Region, count(*) AS n FROM sales GROUP BY Region LIMIT x",
		"SELECT Region, count(*) AS n FROM sales GROUP BY Region ORDER BY nope",
	} {
		if _, err := cluster.SQL(q, NoOptimizations); err == nil {
			t.Errorf("SQL(%q) should fail", q)
		}
	}
}
