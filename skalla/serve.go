package skalla

// This file is the concurrent query service behind `skalla-coord -serve`:
// many SQL queries at once over one shared site fleet, with bounded
// admission (typed rejections instead of unbounded queueing), per-site
// connection pooling (concurrent executions do not serialize on one TCP
// stream), per-site AIMD backpressure driven by shed responses, and
// per-query cancellation isolation (one query's failure or cancellation
// never tears down a sibling's in-flight site calls).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	sqlfe "repro/internal/sql"
	"repro/internal/transport"
	"repro/internal/value"
)

// ErrAdmission is re-exported so servers embedding the query service can
// classify refusals with errors.Is without importing internal/core.
var ErrAdmission = core.ErrAdmission

// ServeConfig tunes the concurrent query service.
type ServeConfig struct {
	// MaxConcurrent is how many queries may execute at once (default 4).
	MaxConcurrent int
	// QueueDepth is how many queries may wait for an execution slot
	// before new arrivals are rejected with ErrAdmission (default 0:
	// fail fast when saturated).
	QueueDepth int
	// QueueTimeout bounds how long a queued query waits for a slot (0 =
	// as long as its own context allows).
	QueueTimeout time.Duration
	// SiteInflight caps concurrent in-flight requests per site: it is
	// both the site's connection-pool size and the ceiling of its AIMD
	// backpressure window (default 4).
	SiteInflight int
	// QueryTimeout bounds each query's whole execution (0 = none).
	QueryTimeout time.Duration
	// SlowQuery, when positive, emits an obs slow-query event (and counts
	// "serve.slow_queries") for every query whose wall time reaches it.
	SlowQuery time.Duration
	// BreakerFailures enables per-site circuit breakers: after this many
	// consecutive failures or sheds a site's calls fail fast until a
	// post-cooldown probe succeeds. Open breakers surface in /readyz.
	// 0 disables breakers.
	BreakerFailures int
	// BreakerCooldown is how long an open breaker refuses calls before
	// letting a probe through (default 1s when breakers are enabled).
	BreakerCooldown time.Duration
	// Opts selects the distributed optimizations (default all).
	Opts Options
}

// QueryService runs concurrent SQL queries against one cluster's sites.
// Construct with NewQueryService; serve over HTTP via Handler or call
// Query directly. Each admitted query executes on its own coordinator
// with its own epoch and its own leased connections, so executions are
// isolated while sharing the site fleet, the admission scheduler, and the
// per-site backpressure state.
type QueryService struct {
	cluster *Cluster
	sched   *core.Scheduler
	pools   []*transport.Pool
	probes  []*prober
	cfg     ServeConfig
	obs     *obs.Obs
}

// NewQueryService builds the concurrent query service on top of an
// existing cluster (NewLocalCluster or ConnectWith). The cluster provides
// the site fleet, catalog, and fault-tolerance settings; cfg bounds the
// concurrency. Sessions and multi-tier clusters are not supported.
func NewQueryService(c *Cluster, cfg ServeConfig) (*QueryService, error) {
	if len(c.dialers) != len(c.ids) {
		return nil, fmt.Errorf("skalla: cluster cannot serve concurrently (no per-site dialers)")
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	if cfg.SiteInflight <= 0 {
		cfg.SiteInflight = 4
	}
	if cfg.Opts == (Options{}) {
		cfg.Opts = AllOptimizations
	}
	s := &QueryService{cluster: c, cfg: cfg, obs: c.obs}
	s.sched = core.NewScheduler(core.SchedulerConfig{
		MaxConcurrent:   cfg.MaxConcurrent,
		QueueDepth:      cfg.QueueDepth,
		QueueTimeout:    cfg.QueueTimeout,
		SiteMaxInflight: cfg.SiteInflight,
		BreakerFailures: cfg.BreakerFailures,
		BreakerCooldown: cfg.BreakerCooldown,
		Obs:             c.obs,
	})
	for i, id := range c.ids {
		p := transport.NewPool(id, cfg.SiteInflight, c.dialers[i])
		p.SetObs(c.obs)
		s.pools = append(s.pools, p)
		s.probes = append(s.probes, &prober{dial: c.dialers[i]})
	}
	return s, nil
}

// Close releases the service's pooled connections. The underlying
// cluster is not closed.
func (s *QueryService) Close() error {
	var first error
	for _, p := range s.pools {
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, pr := range s.probes {
		pr.close()
	}
	return first
}

// Scheduler exposes the admission scheduler (tests, metrics).
func (s *QueryService) Scheduler() *core.Scheduler { return s.sched }

// Query admits and executes one SQL statement. Saturation surfaces as an
// error matching errors.Is(err, ErrAdmission); a query the sites refused
// end-to-end matches transport.ErrOverloaded / transport.ErrDraining.
// Results without an ORDER BY are sorted on every output column, so an
// admitted query's result bytes are deterministic under any concurrency.
func (s *QueryService) Query(ctx context.Context, query string) (*Relation, error) {
	st, err := sqlfe.Parse(query)
	if err != nil {
		return nil, err // refused before admission: parsing burns no slot
	}

	release, err := s.sched.Admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}

	// Per-execution isolation: leased connections (shared pool, private
	// byte accounting, cancellation confined to borrowed connections)
	// behind the shared per-site backpressure gates, driven by a private
	// coordinator under a unique epoch.
	leases := make([]transport.Client, len(s.pools))
	for i, p := range s.pools {
		leases[i] = p.Lease()
	}
	clients := s.sched.WrapClients(leases)
	base := s.cluster.coord
	coord := core.NewCoordinator(clients...)
	coord.CallTimeout = base.CallTimeout
	coord.AllowPartial = base.AllowPartial
	coord.Obs = s.obs
	coord.Checkpoints = base.Checkpoints
	coord.Replays = base.Replays
	coord.Health = base.Health
	coord.PropagateDeadline = base.PropagateDeadline
	coord.Epoch = s.sched.NextEpoch("serve")
	// The unique serve epoch doubles as the query ID: every served query
	// is profiled, its profile tree published to the shared obs sink
	// (/profiles on the coordinator daemon) by the coordinator itself.
	coord.QueryID = coord.Epoch

	view := &Cluster{AnalyzeTiming: s.cluster.AnalyzeTiming, ids: s.cluster.ids, clients: clients, coord: coord, cat: s.cluster.cat, obs: s.cluster.obs}
	start := time.Now()
	rel, err := view.SQLContext(ctx, query, s.cfg.Opts)
	wall := time.Since(start)
	s.obs.Observe("serve.query_ns", wall.Nanoseconds())
	if s.cfg.SlowQuery > 0 && wall >= s.cfg.SlowQuery {
		s.obs.Count("serve.slow_queries", 1)
		s.obs.Event(obs.EventSlowQuery, "", "query exceeded the slow-query threshold",
			map[string]string{
				"query_id":     coord.QueryID,
				"wall_ms":      fmt.Sprint(wall.Milliseconds()),
				"threshold_ms": fmt.Sprint(s.cfg.SlowQuery.Milliseconds()),
			})
	}
	if err != nil {
		s.obs.Count("serve.queries_failed", 1)
		return nil, err
	}
	// Explain output is a pre-ordered report, never sorted; everything
	// else without an ORDER BY is sorted for deterministic result bytes.
	if len(st.OrderBy) == 0 && !st.Explain {
		if err := rel.SortBy(rel.Schema.Names()...); err != nil {
			return nil, err
		}
	}
	s.obs.Count("serve.queries_ok", 1)
	return rel, nil
}

// CheckReady is the coordinator's readiness gate for /readyz: it probes
// every site's liveness in parallel (a dedicated probe connection per
// site, never a pooled query connection, so a saturated pool does not
// read as an unhealthy site). In strict mode every site must answer — a
// query fanning out would fail anyway; with AllowPartial one reachable
// site suffices. Install via obs.Health.SetCheck.
func (s *QueryService) CheckReady() (bool, string) {
	timeout := s.cluster.coord.CallTimeout
	if timeout <= 0 {
		timeout = time.Second
	}
	errs := make([]error, len(s.probes))
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var done = make(chan int, len(s.probes))
	for i := range s.probes {
		go func(i int) {
			errs[i] = s.probes[i].ping(ctx)
			done <- i
		}(i)
	}
	for range s.probes {
		<-done
	}
	reachable := 0
	var firstDown string
	for i, err := range errs {
		// An open circuit breaker counts as down even when the probe
		// connection answers: queries to the site are failing fast, so
		// advertising readiness would route traffic into rejections.
		if err == nil {
			if st, ok := s.sched.BreakerState(s.cluster.ids[i]); ok && st == transport.BreakerOpen {
				if firstDown == "" {
					firstDown = fmt.Sprintf("site %s circuit breaker open", s.cluster.ids[i])
				}
				continue
			}
			reachable++
		} else if firstDown == "" {
			firstDown = fmt.Sprintf("site %s unreachable: %v", s.cluster.ids[i], err)
		}
	}
	switch {
	case reachable == len(s.probes):
		return true, ""
	case s.cluster.coord.AllowPartial && reachable > 0:
		return true, ""
	default:
		return false, firstDown
	}
}

// prober is one site's dedicated readiness probe: a lazily-dialed
// connection, re-dialed after any failure so a site restart is noticed.
type prober struct {
	dial func() (transport.Client, error)

	mu sync.Mutex
	//lint:guarded-by mu
	cl transport.Client
}

func (p *prober) ping(ctx context.Context) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cl == nil {
		cl, err := p.dial()
		if err != nil {
			return err
		}
		p.cl = cl
	}
	resp, err := p.cl.Call(ctx, &transport.Request{Op: transport.OpPing})
	if err == nil {
		err = resp.Error()
	}
	if err != nil {
		p.cl.Close()
		p.cl = nil
	}
	return err
}

func (p *prober) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cl != nil {
		p.cl.Close()
		p.cl = nil
	}
}

// resultJSON is the deterministic HTTP result shape: column names in
// select-list order, rows as arrays of JSON scalars (NULL → null).
type resultJSON struct {
	Cols []string `json:"cols"`
	Rows [][]any  `json:"rows"`
}

// errorJSON is the HTTP error shape; Kind classifies machine-readably
// ("parse", "admission", "shed", "timeout", "internal").
type errorJSON struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// Handler serves the query endpoint: GET with ?q= or POST with the SQL
// statement as the body (or ?q=). Responses are deterministic JSON; load
// conditions map onto status codes the way an upstream load balancer
// expects — 429 for admission rejections (back off and retry), 503 for
// queries the sites shed end-to-end, 504 for deadline-exceeded queries.
func (s *QueryService) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var query string
		switch r.Method {
		case http.MethodGet:
			query = r.URL.Query().Get("q")
		case http.MethodPost:
			if q := r.URL.Query().Get("q"); q != "" {
				query = q
			} else {
				body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
				if err != nil {
					writeQueryError(w, fmt.Errorf("read body: %w", err))
					return
				}
				query = string(body)
			}
		default:
			w.Header().Set("Allow", "GET, POST")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		s.obs.Count("serve.http_requests", 1)
		if strings.TrimSpace(query) == "" {
			writeJSON(w, http.StatusBadRequest, errorJSON{Error: "empty query", Kind: "parse"})
			return
		}
		rel, err := s.Query(r.Context(), query)
		if err != nil {
			s.obs.Count("serve.http_errors", 1)
			writeQueryError(w, err)
			return
		}
		out := resultJSON{Cols: rel.Schema.Names(), Rows: make([][]any, len(rel.Rows))}
		for i, row := range rel.Rows {
			jr := make([]any, len(row))
			for j, v := range row {
				jr[j] = valueJSON(v)
			}
			out.Rows[i] = jr
		}
		writeJSON(w, http.StatusOK, out)
	})
}

// writeQueryError maps a query error onto its HTTP classification.
func writeQueryError(w http.ResponseWriter, err error) {
	var kind string
	var code int
	switch {
	case errors.Is(err, core.ErrAdmission):
		kind, code = "admission", http.StatusTooManyRequests
	case errors.Is(err, transport.ErrOverloaded), errors.Is(err, transport.ErrDraining),
		errors.Is(err, transport.ErrBreakerOpen), errors.Is(err, transport.ErrBudgetExhausted):
		kind, code = "shed", http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		kind, code = "timeout", http.StatusGatewayTimeout
	case isParseError(err):
		kind, code = "parse", http.StatusBadRequest
	default:
		kind, code = "internal", http.StatusInternalServerError
	}
	writeJSON(w, code, errorJSON{Error: err.Error(), Kind: kind})
}

// isParseError reports whether err came from the SQL front-end (a caller
// mistake, not a server condition).
func isParseError(err error) bool {
	var pe *sqlfe.ParseError
	return errors.As(err, &pe)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v) //nolint:errcheck // client gone mid-write is not actionable
}

// valueJSON converts one value into its JSON scalar.
func valueJSON(v value.V) any {
	switch {
	case v.IsNull():
		return nil
	case v.K == value.KindFloat:
		return v.F
	case v.K == value.KindString:
		return v.S
	default:
		return v.I
	}
}
