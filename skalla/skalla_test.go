package skalla

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/gmdj"
	"repro/internal/relation"
	"repro/internal/tpcr"
	"repro/internal/value"
)

func example1() Query {
	return NewQuery("SourceAS", "DestAS").
		MD(Aggs("count(*) AS cnt1", "sum(F.NumBytes) AS sum1"),
			"F.SourceAS = B.SourceAS AND F.DestAS = B.DestAS").
		MD(Aggs("count(*) AS cnt2"),
			"F.SourceAS = B.SourceAS AND F.DestAS = B.DestAS AND F.NumBytes >= B.sum1 / B.cnt1").
		MustBuild()
}

func flowParts(nSites int) ([]*relation.Relation, *relation.Relation) {
	s := relation.MustSchema(
		relation.Column{Name: "SourceAS", Kind: value.KindInt},
		relation.Column{Name: "DestAS", Kind: value.KindInt},
		relation.Column{Name: "NumBytes", Kind: value.KindInt},
	)
	whole := relation.New(s)
	parts := make([]*relation.Relation, nSites)
	for i := range parts {
		parts[i] = relation.New(s)
	}
	data := [][3]int64{
		{1, 10, 100}, {1, 10, 300}, {2, 10, 50}, {1, 20, 500}, {3, 30, 250}, {2, 10, 150},
	}
	for i, d := range data {
		row := relation.Row{value.NewInt(d[0]), value.NewInt(d[1]), value.NewInt(d[2])}
		whole.Rows = append(whole.Rows, row)
		parts[i%nSites].Rows = append(parts[i%nSites].Rows, row)
	}
	return parts, whole
}

func TestLocalClusterEndToEnd(t *testing.T) {
	for _, useTCP := range []bool{false, true} {
		cluster, err := NewLocalCluster(ClusterConfig{Sites: 3, UseTCP: useTCP})
		if err != nil {
			t.Fatal(err)
		}
		parts, whole := flowParts(3)
		if err := cluster.Load("flow", parts); err != nil {
			t.Fatal(err)
		}
		want, err := gmdj.EvalQuery(whole, example1())
		if err != nil {
			t.Fatal(err)
		}
		res, err := cluster.Query(example1(), "flow", AllOptimizations)
		if err != nil {
			t.Fatal(err)
		}
		got := res.Relation
		got.SortBy("SourceAS", "DestAS")
		want.SortBy("SourceAS", "DestAS")
		if got.Len() != want.Len() {
			t.Fatalf("tcp=%v: %d rows, want %d", useTCP, got.Len(), want.Len())
		}
		for i := range want.Rows {
			for j := range want.Rows[i] {
				if !value.Equal(got.Rows[i][j], want.Rows[i][j]) &&
					!(got.Rows[i][j].IsNull() && want.Rows[i][j].IsNull()) {
					t.Errorf("tcp=%v row %d col %d: %v != %v", useTCP, i, j, got.Rows[i][j], want.Rows[i][j])
				}
			}
		}
		if res.Stats.Bytes() <= 0 {
			t.Error("no traffic accounted")
		}
		if err := cluster.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}
}

func TestGenerateAndQueryTPCR(t *testing.T) {
	cluster, err := NewLocalCluster(ClusterConfig{Sites: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cfg := tpcr.Config{Rows: 4000, Customers: 50, Seed: 3}
	counts, err := cluster.Generate("tpcr", "tpcr", tpcr.GenParams(cfg))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	whole := tpcr.Generate(cfg)
	if total != whole.Len() {
		t.Errorf("generated %d rows across sites, want %d", total, whole.Len())
	}
	if err := tpcr.FillCatalog(cluster.Catalog(), cluster.SiteIDs(), cfg); err != nil {
		t.Fatal(err)
	}

	q, err := GroupBy([]string{"CustName"}, Aggs("count(*) AS orders", "avg(F.ExtendedPrice) AS avg_price"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Query(q, "tpcr", AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	want, err := gmdj.EvalQuery(whole, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != want.Len() {
		t.Errorf("distributed %d groups, centralized %d", res.Relation.Len(), want.Len())
	}
	// CustName is a partition attribute: sync reduction should make this
	// a single round.
	if res.Plan.Rounds() != 1 {
		t.Errorf("expected single round, got %d\n%s", res.Plan.Rounds(), res.Plan.Explain())
	}
}

func TestSubset(t *testing.T) {
	cluster, err := NewLocalCluster(ClusterConfig{Sites: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	parts, _ := flowParts(4)
	if err := cluster.Load("flow", parts); err != nil {
		t.Fatal(err)
	}
	sub, err := cluster.Subset(2)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumSites() != 2 {
		t.Errorf("subset sites = %d", sub.NumSites())
	}
	// The subset sees only 2 sites' data.
	res, err := sub.Query(example1(), "flow", NoOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() == 0 {
		t.Error("subset query returned nothing")
	}
	if _, err := cluster.Subset(0); err == nil {
		t.Error("subset(0) accepted")
	}
	if _, err := cluster.Subset(9); err == nil {
		t.Error("oversized subset accepted")
	}
}

func TestExplain(t *testing.T) {
	cluster, err := NewLocalCluster(ClusterConfig{Sites: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	parts, _ := flowParts(2)
	if err := cluster.Load("flow", parts); err != nil {
		t.Fatal(err)
	}
	plan, err := cluster.Explain(example1(), "flow", NoOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Explain(), "3 round(s)") {
		t.Errorf("explain:\n%s", plan.Explain())
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewQuery("a").Build(); err == nil {
		t.Error("query without MDs accepted")
	}
	if _, err := NewQuery("a").MD(Aggs("count(*) AS c"), "((").Build(); err == nil {
		t.Error("bad condition accepted")
	}
	if _, err := NewQuery("a").Where("((").MD(Aggs("count(*) AS c"), "TRUE").Build(); err == nil {
		t.Error("bad filter accepted")
	}
	if _, err := NewQuery("a").MDMulti([]AggList{Aggs("count(*) AS c")}, []string{"TRUE", "TRUE"}).Build(); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := GroupBy(nil, Aggs("count(*) AS c")); err == nil {
		t.Error("GroupBy without columns accepted")
	}
	// Error sticks through later calls.
	b := NewQuery("a").MD(Aggs("count(*) AS c"), "((").MD(Aggs("count(*) AS d"), "TRUE")
	if _, err := b.Build(); err == nil {
		t.Error("accumulated error lost")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic")
		}
	}()
	NewQuery("a").MustBuild()
}

func TestLoadErrors(t *testing.T) {
	cluster, err := NewLocalCluster(ClusterConfig{Sites: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	parts, _ := flowParts(3)
	if err := cluster.Load("flow", parts); err == nil {
		t.Error("partition count mismatch accepted")
	}
	if _, err := cluster.Generate("x", "nope", nil); err == nil {
		t.Error("unknown generator accepted")
	}
	if _, err := Connect(nil, CostModel{}); err == nil {
		t.Error("Connect with no addresses accepted")
	}
}

func TestWhereAndGroupBy(t *testing.T) {
	cluster, err := NewLocalCluster(ClusterConfig{Sites: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	parts, whole := flowParts(2)
	if err := cluster.Load("flow", parts); err != nil {
		t.Fatal(err)
	}
	q := NewQuery("SourceAS").Where("F.NumBytes >= 200").
		MD(Aggs("count(*) AS c"), "F.SourceAS = B.SourceAS").MustBuild()
	res, err := cluster.Query(q, "flow", AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	want, err := gmdj.EvalQuery(whole, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != want.Len() {
		t.Errorf("filtered base: %d groups, want %d", res.Relation.Len(), want.Len())
	}
}

// TestConditionalAggregation exercises CASE expressions as aggregate
// arguments across the distributed pipeline — the classic "pivot by
// condition" OLAP idiom.
func TestConditionalAggregation(t *testing.T) {
	cluster, err := NewLocalCluster(ClusterConfig{Sites: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	parts, whole := flowParts(3)
	if err := cluster.Load("flow", parts); err != nil {
		t.Fatal(err)
	}
	q := NewQuery("SourceAS").
		MD(Aggs(
			"sum(CASE WHEN F.DestAS = 10 THEN F.NumBytes ELSE 0 END) AS to10",
			"sum(CASE WHEN F.DestAS != 10 THEN F.NumBytes ELSE 0 END) AS other",
			"max(abs(F.NumBytes - 200)) AS spread",
		), "F.SourceAS = B.SourceAS").
		MustBuild()
	res, err := cluster.Query(q, "flow", AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	want, err := gmdj.EvalQuery(whole, q)
	if err != nil {
		t.Fatal(err)
	}
	res.Relation.SortBy("SourceAS")
	want.SortBy("SourceAS")
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if !value.Equal(res.Relation.Rows[i][j], want.Rows[i][j]) {
				t.Errorf("row %d col %d: %v != %v", i, j, res.Relation.Rows[i][j], want.Rows[i][j])
			}
		}
	}
	// Sanity: to10 + other accounts for all bytes of AS 1.
	var all, got int64
	for _, row := range whole.Rows {
		if row[0].I == 1 {
			all += row[2].I
		}
	}
	for _, row := range res.Relation.Rows {
		if row[0].I == 1 {
			a, _ := row[1].AsInt()
			b, _ := row[2].AsInt()
			got = a + b
		}
	}
	if all != got {
		t.Errorf("conditional split lost bytes: %d != %d", got, all)
	}
}

func TestPreparedQuery(t *testing.T) {
	cluster, err := NewLocalCluster(ClusterConfig{Sites: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	parts, whole := flowParts(3)
	if err := cluster.Load("flow", parts); err != nil {
		t.Fatal(err)
	}
	p, err := cluster.Prepare(example1(), "flow", AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	want, err := gmdj.EvalQuery(whole, example1())
	if err != nil {
		t.Fatal(err)
	}
	// Executing twice reuses the plan and keeps producing correct results.
	for run := 0; run < 2; run++ {
		res, err := p.Execute()
		if err != nil {
			t.Fatal(err)
		}
		if res.Relation.Len() != want.Len() {
			t.Errorf("run %d: %d rows, want %d", run, res.Relation.Len(), want.Len())
		}
		if res.Plan != p.Plan() {
			t.Error("plan not reused")
		}
	}
	// Prepare fails cleanly on unknown relations.
	if _, err := cluster.Prepare(example1(), "nosuch", NoOptimizations); err == nil {
		t.Error("prepare against missing relation accepted")
	}
}

func TestStatus(t *testing.T) {
	cluster, err := NewLocalCluster(ClusterConfig{Sites: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	parts, _ := flowParts(2)
	if err := cluster.Load("flow", parts); err != nil {
		t.Fatal(err)
	}
	sts := cluster.Status("flow", "missing")
	if len(sts) != 2 {
		t.Fatalf("status entries = %d", len(sts))
	}
	for _, st := range sts {
		if !st.Reachable {
			t.Errorf("%s unreachable: %s", st.ID, st.Err)
		}
		if _, ok := st.Relations["flow"]; !ok {
			t.Errorf("%s missing flow row count", st.ID)
		}
		if _, ok := st.Relations["missing"]; ok {
			t.Errorf("%s reported a count for a missing relation", st.ID)
		}
		if !strings.Contains(st.String(), "ok") {
			t.Errorf("status string: %s", st)
		}
	}
}

// TestConcurrentSessions: parallel sessions over the same sites must all
// produce the centralized result.
func TestConcurrentSessions(t *testing.T) {
	cluster, err := NewLocalCluster(ClusterConfig{Sites: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	parts, whole := flowParts(3)
	if err := cluster.Load("flow", parts); err != nil {
		t.Fatal(err)
	}
	want, err := gmdj.EvalQuery(whole, example1())
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			session, err := cluster.Session()
			if err != nil {
				errs <- err
				return
			}
			defer session.Close()
			for i := 0; i < 5; i++ {
				res, err := session.Query(example1(), "flow", AllOptimizations)
				if err != nil {
					errs <- err
					return
				}
				if res.Relation.Len() != want.Len() {
					errs <- fmt.Errorf("row count %d != %d", res.Relation.Len(), want.Len())
					return
				}
			}
			errs <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// Sessions are unsupported on remote and multi-tier clusters.
	tree, err := NewTreeCluster(TreeConfig{Leaves: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	if _, err := tree.Session(); err == nil {
		t.Error("tree session accepted")
	}
}

// TestExactDistinctDistributed: exact COUNT DISTINCT merges correctly
// across sites (duplicates spanning partitions collapse).
func TestExactDistinctDistributed(t *testing.T) {
	cluster, err := NewLocalCluster(ClusterConfig{Sites: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	parts, whole := flowParts(3)
	if err := cluster.Load("flow", parts); err != nil {
		t.Fatal(err)
	}
	q := NewQuery("SourceAS").
		MD(Aggs("countdx(F.DestAS) AS dests"), "F.SourceAS = B.SourceAS").
		MustBuild()
	res, err := cluster.Query(q, "flow", AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: distinct DestAS per SourceAS over the whole relation.
	want := map[int64]map[int64]bool{}
	for _, row := range whole.Rows {
		m, ok := want[row[0].I]
		if !ok {
			m = map[int64]bool{}
			want[row[0].I] = m
		}
		m[row[1].I] = true
	}
	for _, row := range res.Relation.Rows {
		if got := row[1].I; got != int64(len(want[row[0].I])) {
			t.Errorf("SourceAS %d: %d distinct dests, want %d", row[0].I, got, len(want[row[0].I]))
		}
	}
}
