package skalla

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestServeProfilesAndSlowQuery: every served query is QueryID-tagged, so
// the shared obs sink must accumulate one profile tree per query, the
// per-query latency histogram must fill, and a SlowQuery threshold of one
// nanosecond must flag every query as slow.
func TestServeProfilesAndSlowQuery(t *testing.T) {
	sink := obs.New()
	cluster, err := NewLocalCluster(ClusterConfig{Sites: 2, Obs: sink})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	parts, _ := flowParts(2)
	if err := cluster.Load("flow", parts); err != nil {
		t.Fatal(err)
	}
	svc, err := NewQueryService(cluster, ServeConfig{MaxConcurrent: 2, SlowQuery: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	const queries = 3
	for i := 0; i < queries; i++ {
		if _, err := svc.Query(context.Background(), serveQueries[i%len(serveQueries)]); err != nil {
			t.Fatal(err)
		}
	}

	// In-process the sites and the coordinator share the sink, so the ring
	// interleaves both kinds: the coordinator's per-query trees ("rounds"
	// is an array) and each site's per-request captures ("site" at top
	// level). Over the wire each daemon keeps its own ring instead.
	var entries []map[string]any
	if err := json.Unmarshal(sink.Profiles.EncodeJSON(), &entries); err != nil {
		t.Fatalf("profiles JSON: %v", err)
	}
	trees, captures := 0, 0
	seen := map[string]bool{}
	for _, e := range entries {
		qid, _ := e["query_id"].(string)
		if qid == "" {
			t.Errorf("profile entry without query_id: %v", e)
		}
		if _, isTree := e["rounds"].([]any); !isTree {
			captures++
			if site, _ := e["site"].(string); site == "" {
				t.Errorf("site capture without site: %v", e)
			}
			if outcome, _ := e["outcome"].(string); outcome != "ok" {
				t.Errorf("site capture outcome = %v", e["outcome"])
			}
			continue
		}
		trees++
		if seen[qid] {
			t.Errorf("query profile %q duplicated", qid)
		}
		seen[qid] = true
		if wall, _ := e["wall_ns"].(float64); wall <= 0 {
			t.Errorf("profile %s wall_ns = %v", qid, e["wall_ns"])
		}
	}
	if trees != queries {
		t.Errorf("coordinator profile trees = %d, want %d", trees, queries)
	}
	// Two sites per query, one capture each per round (≥1 round).
	if captures < 2*queries {
		t.Errorf("site captures = %d, want >= %d", captures, 2*queries)
	}

	if got := sink.Metrics.Histogram("serve.query_ns").Snapshot().Count; got != queries {
		t.Errorf("serve.query_ns count = %d, want %d", got, queries)
	}
	if got := sink.Metrics.CounterValue("serve.slow_queries"); got != queries {
		t.Errorf("serve.slow_queries = %d, want %d", got, queries)
	}
	if got := sink.Events.CountKind(obs.EventSlowQuery); got != queries {
		t.Errorf("slow-query events = %d, want %d", got, queries)
	}
	if got := sink.Metrics.CounterValue("coord.queries_profiled"); got != queries {
		t.Errorf("coord.queries_profiled = %d, want %d", got, queries)
	}
}
