package skalla

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/gmdj"
	"repro/internal/obs"
	"repro/internal/transport"
)

// computeNsJitter bounds the run-to-run drift of BytesFromSites: responses
// carry a measured ComputeNs whose gob varint width varies by a byte or
// two between any two executions. Request-direction bytes and group counts
// carry no timing and must match exactly.
const computeNsJitter = 16

// TestRecoveryAfterCoordinatorRestart is the end-to-end recovery scenario
// over real TCP: a coordinator with a file-backed checkpoint store dies
// between synchronization rounds (a chaos-injected transport failure at
// the round-2 fan-out aborts the run), and a freshly built cluster — the
// restarted coordinator process — pointed at the same checkpoint
// directory resumes from the last completed round. The final relation and
// the per-round ExecStats byte counters must match an uninterrupted run,
// with the restored rounds accounted as resumed, not re-executed.
func TestRecoveryAfterCoordinatorRestart(t *testing.T) {
	parts, whole := flowParts(3)
	var sites []string
	for i := range parts {
		entry, _ := startFlowSite(t, fmt.Sprintf("site%d", i), parts[i], 1)
		sites = append(sites, entry)
	}
	dir := t.TempDir()

	want, err := gmdj.EvalQuery(whole, example1())
	if err != nil {
		t.Fatal(err)
	}

	// Reference: an uninterrupted run. It gets its own checkpoint store so
	// its requests carry the same (epoch, round) tags as the recovery runs
	// — tags change request wire size, and the byte comparison below is
	// exact in the request direction.
	refCluster, err := ConnectWith(ConnectConfig{
		Sites:       sites,
		Attempts:    1,
		Backoff:     time.Millisecond,
		CallTimeout: 10 * time.Second,
		Checkpoints: NewMemCheckpoints(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer refCluster.Close()
	ref, err := refCluster.Query(example1(), "flow", NoOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "uninterrupted", ref.Relation, want)

	// Coordinator process #1: checkpoints to dir, and is killed between
	// rounds — the injected fault fails the second evalRounds fan-out
	// (plan round 3), after rounds 1 and 2 were checkpointed.
	store1, err := NewFileCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	o1 := obs.New()
	var clients []transport.Client
	var chaos []*transport.Chaos
	for i, entry := range sites {
		tc, err := transport.DialTCP(fmt.Sprintf("site%d", i), entry, transport.CostModel{})
		if err != nil {
			t.Fatal(err)
		}
		ch := transport.NewChaos(tc, int64(i))
		// Prime the gob stream like ConnectWith's connect-time ping does,
		// so the first round's byte delta excludes type-descriptor overhead
		// and checkpointed counters compare exactly with the reference run.
		if _, err := ch.Call(context.Background(), &transport.Request{Op: transport.OpPing}); err != nil {
			t.Fatal(err)
		}
		clients = append(clients, ch)
		chaos = append(chaos, ch)
	}
	chaos[2].InjectAt(transport.OpEvalRounds, 2, transport.Fault{Err: transport.ErrInjected})
	coord := core.NewCoordinator(clients...)
	coord.Checkpoints = store1
	coord.Obs = o1
	cat := catalog.New("site0", "site1", "site2")
	if _, _, _, err := coord.Run(context.Background(), example1(), "flow", core.Egil{Catalog: cat}); err == nil {
		t.Fatal("interrupted run did not fail")
	}
	if got := o1.Metrics.CounterValue("checkpoint.written"); got != 2 {
		t.Fatalf("checkpoints written before the crash = %d, want 2", got)
	}
	for _, ch := range chaos {
		ch.Close() // the dead coordinator's connections go away with it
	}

	// Coordinator process #2: a fresh cluster over the same sites, opening
	// the same checkpoint directory, resumes and completes the execution.
	store2, err := NewFileCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	o2 := obs.New()
	resumed, err := ConnectWith(ConnectConfig{
		Sites:       sites,
		Attempts:    2,
		Backoff:     time.Millisecond,
		CallTimeout: 10 * time.Second,
		Checkpoints: store2,
		Obs:         o2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	res, err := resumed.Query(example1(), "flow", NoOptimizations)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	assertSameResult(t, "resumed", res.Relation, want)

	// Restored rounds are accounted as resumed, separately from replays.
	if got := res.Stats.ResumedRounds(); got != 2 {
		t.Errorf("ResumedRounds = %d, want 2", got)
	}
	if len(res.Stats.Rounds) != len(ref.Stats.Rounds) {
		t.Fatalf("resumed run has %d rounds, reference %d", len(res.Stats.Rounds), len(ref.Stats.Rounds))
	}
	for i, r := range res.Stats.Rounds {
		if wantResumed := i < 2; r.Resumed != wantResumed {
			t.Errorf("round %s: Resumed = %v, want %v", r.Name, r.Resumed, wantResumed)
		}
	}
	if got := res.Stats.ReplayedSites(); len(got) != 0 {
		t.Errorf("ReplayedSites = %v, want none", got)
	}
	if got := o2.Metrics.CounterValue("checkpoint.resumed"); got != 1 {
		t.Errorf("checkpoint.resumed = %d, want 1", got)
	}
	if got := o2.Metrics.CounterValue("coord.rounds_resumed"); got != 2 {
		t.Errorf("coord.rounds_resumed = %d, want 2", got)
	}

	// Byte counters match the uninterrupted run round for round: exact in
	// the request direction and for group counts, within the ComputeNs
	// varint jitter in the response direction.
	for i, r := range res.Stats.Rounds {
		refR := ref.Stats.Rounds[i]
		if r.BytesToSites != refR.BytesToSites {
			t.Errorf("round %s: BytesToSites = %d, reference %d", r.Name, r.BytesToSites, refR.BytesToSites)
		}
		if r.GroupsShipped != refR.GroupsShipped || r.GroupsReceived != refR.GroupsReceived {
			t.Errorf("round %s: groups = %d/%d, reference %d/%d",
				r.Name, r.GroupsShipped, r.GroupsReceived, refR.GroupsShipped, refR.GroupsReceived)
		}
		if d := r.BytesFromSites - refR.BytesFromSites; d < -computeNsJitter || d > computeNsJitter {
			t.Errorf("round %s: BytesFromSites = %d, reference %d (|Δ| > %d)",
				r.Name, r.BytesFromSites, refR.BytesFromSites, computeNsJitter)
		}
	}

	// Completion cleared the checkpoint: re-running the same query on the
	// same store starts fresh instead of resuming.
	res2, err := resumed.Query(example1(), "flow", NoOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	if got := res2.Stats.ResumedRounds(); got != 0 {
		t.Errorf("rerun after completion resumed %d rounds, want 0 (checkpoint not cleared)", got)
	}
	assertSameResult(t, "rerun", res2.Relation, want)
}

// TestRoundBoundaryConnectionLoss exercises the DropAfter chaos fault
// over real TCP: site1's answer for the base round is delivered and then
// its connection is torn down, so the socket is dead when the next round
// fans out. The Reconnector redials lazily and the query completes with
// the right answer — no retries burned, nothing lost, nothing replayed.
func TestRoundBoundaryConnectionLoss(t *testing.T) {
	parts, whole := flowParts(2)
	o := obs.New()
	var clients []transport.Client
	var chaos []*transport.Chaos
	for i := range parts {
		id := fmt.Sprintf("site%d", i)
		entry, _ := startFlowSite(t, id, parts[i], 1)
		rc := transport.NewReconnectingTCP(id, entry, transport.CostModel{}, 2, time.Millisecond)
		rc.SetObs(o)
		ch := transport.NewChaos(rc, int64(i))
		ch.SetObs(o)
		clients = append(clients, ch)
		chaos = append(chaos, ch)
	}
	defer func() {
		for _, ch := range chaos {
			ch.Close()
		}
	}()
	chaos[1].InjectAt(transport.OpEvalBase, 1, transport.Fault{DropAfter: true})

	coord := core.NewCoordinator(clients...)
	coord.Obs = o
	cat := catalog.New("site0", "site1")
	rel, stats, _, err := coord.Run(context.Background(), example1(), "flow", core.Egil{Catalog: cat})
	if err != nil {
		t.Fatalf("query across connection loss: %v", err)
	}
	want, err := gmdj.EvalQuery(whole, example1())
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "after connection loss", rel, want)

	if chaos[1].Injected() != 1 {
		t.Fatalf("injected faults = %d, want 1", chaos[1].Injected())
	}
	if stats.Partial() {
		t.Errorf("connection loss degraded the result: lost %v", stats.LostSites())
	}
	if got := stats.ReplayedSites(); len(got) != 0 {
		t.Errorf("ReplayedSites = %v, want none (lazy redial, not replay)", got)
	}
	// The severed connection is rebuilt by a lazy redial on the next call,
	// not by the retry path: no retry budget is spent.
	if got := o.Metrics.CounterValue("transport.retries"); got != 0 {
		t.Errorf("transport.retries = %d, want 0", got)
	}
}
