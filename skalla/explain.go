package skalla

// This file is the EXPLAIN / EXPLAIN ANALYZE path of the SQL front-end.
// EXPLAIN plans the statement and returns the optimizer's plan as a
// one-column relation; EXPLAIN ANALYZE additionally executes it on a
// private QueryID-tagged coordinator and appends what actually happened —
// per-round coverage, exact wire bytes, and each site's self-reported
// engine/kernel profile. The default report contains no clock readings
// and is deterministic across runs of the same query on the same data,
// except the exact wire byte counts, which can shift by a few bytes with
// the varint width of the timing fields every response carries.
// Cluster.AnalyzeTiming (the -profile flag of skalla-coord) adds the
// measured durations.

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/relation"
	sqlfe "repro/internal/sql"
	"repro/internal/value"
)

// PlanCol is the single output column of EXPLAIN results.
const PlanCol = "plan"

// analyzeSeq numbers EXPLAIN ANALYZE executions process-wide. A counter,
// not a timestamp: query IDs must be deterministic for a fixed sequence
// of statements.
var analyzeSeq atomic.Int64

// sqlExplain evaluates an EXPLAIN-prefixed statement.
func (c *Cluster) sqlExplain(ctx context.Context, st *sqlfe.Statement, opts Options) (*Relation, error) {
	if st.Cube || st.Rollup {
		return nil, &sqlfe.ParseError{Err: fmt.Errorf("skalla: EXPLAIN over CUBE BY / ROLLUP BY is not supported")}
	}
	q, err := st.Query()
	if err != nil {
		return nil, err
	}
	egil := core.Egil{Catalog: c.cat, Options: opts}

	if !st.Analyze {
		schema, err := c.coord.DetailSchema(ctx, st.Detail)
		if err != nil {
			return nil, err
		}
		plan, err := egil.BuildPlan(q, st.Detail, schema)
		if err != nil {
			return nil, err
		}
		return explainRelation(plan.Explain()), nil
	}

	// ANALYZE executes on a private coordinator clone so the QueryID tag
	// never races a sibling query sharing this cluster's coordinator.
	coord := core.NewCoordinator(c.clients...)
	coord.CallTimeout = c.coord.CallTimeout
	coord.AllowPartial = c.coord.AllowPartial
	coord.Obs = c.coord.Obs
	coord.Checkpoints = c.coord.Checkpoints
	coord.Replays = c.coord.Replays
	coord.Health = c.coord.Health
	coord.Epoch = c.coord.Epoch
	coord.QueryID = fmt.Sprintf("analyze-%06d", analyzeSeq.Add(1))
	_, stats, plan, err := coord.Run(ctx, q, st.Detail, egil)
	if err != nil {
		return nil, err
	}
	return explainRelation(core.RenderAnalyze(plan, stats, core.AnalyzeOptions{Timing: c.AnalyzeTiming})), nil
}

// RenderAnalyze renders the post-execution EXPLAIN ANALYZE report for a
// directly executed query (the skalla-coord -profile path). timing adds
// the measured durations; without it the report is deterministic for
// fixed input.
func RenderAnalyze(plan *Plan, stats *ExecStats, timing bool) string {
	return core.RenderAnalyze(plan, stats, core.AnalyzeOptions{Timing: timing})
}

// explainRelation wraps a rendered report in a one-text-column relation,
// one row per line.
func explainRelation(text string) *Relation {
	rel := relation.New(relation.MustSchema(relation.Column{Name: PlanCol, Kind: value.KindString}))
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		rel.Rows = append(rel.Rows, relation.Row{value.NewString(line)})
	}
	return rel
}
