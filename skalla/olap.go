package skalla

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/agg"
	"repro/internal/expr"
	"repro/internal/relation"
	"repro/internal/value"
)

// This file implements the OLAP query classes the paper's introduction
// names beyond plain grouping — data cubes [Gray et al.] and the unpivot
// operator [Graefe et al.] — on top of distributed GMDJ evaluation.
//
// Cube runs a single distributed query at the finest granularity that
// computes the distributive primitives of every requested aggregate, then
// rolls the remaining 2^d - 1 cuboids up at the client by merging
// primitive states (the classic compute-the-cube-from-the-base-cuboid
// strategy of Agarwal et al., made possible here because every aggregate
// decomposes per Theorem 1). Only one round trip over the warehouse is
// needed regardless of the number of cuboids, and the Theorem 2 traffic
// bound applies to the finest cuboid.

// CubeAll is the value marking "all" (rolled-up) dimensions in cube
// output rows. It is SQL's NULL from CUBE BY.
var CubeAll = value.Null

// Cube computes the full data cube over the given dimensions: one output
// row per (grouping set, group), with rolled-up dimensions set to
// CubeAll. Aggregates may be any of count/sum/avg/min/max/var/stddev
// (countd's sketch state is not client-mergeable through the public API).
func Cube(cluster *Cluster, detail string, dims []string, aggs AggList, opts Options) (*Relation, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("skalla: cube needs at least one dimension")
	}
	if len(dims) > 12 {
		return nil, fmt.Errorf("skalla: cube over %d dimensions (2^%d cuboids) refused", len(dims), len(dims))
	}
	sets := make([][]string, 0, 1<<len(dims))
	for mask := 0; mask < 1<<len(dims); mask++ {
		var set []string
		for di := range dims {
			if mask&(1<<di) != 0 {
				set = append(set, dims[di])
			}
		}
		sets = append(sets, set)
	}
	return GroupingSets(cluster, detail, dims, sets, aggs, opts)
}

// Rollup computes the ROLLUP of the dimensions: the grouping sets are the
// prefixes (a,b,c), (a,b), (a), () — the classic hierarchy drill-up.
func Rollup(cluster *Cluster, detail string, dims []string, aggs AggList, opts Options) (*Relation, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("skalla: rollup needs at least one dimension")
	}
	sets := make([][]string, 0, len(dims)+1)
	for n := len(dims); n >= 0; n-- {
		sets = append(sets, append([]string(nil), dims[:n]...))
	}
	return GroupingSets(cluster, detail, dims, sets, aggs, opts)
}

// GroupingSets computes the given grouping sets (each a subset of dims)
// in a single distributed round trip: the finest cuboid over all of dims
// ships the mergeable primitives of every aggregate (Theorem 1), and each
// requested set rolls up client-side. Rolled-up dimensions are CubeAll.
func GroupingSets(cluster *Cluster, detail string, dims []string, sets [][]string, aggs AggList, opts Options) (*Relation, error) {
	return groupingSets(context.Background(), cluster, detail, dims, sets, aggs, nil, opts)
}

// groupingSets is GroupingSets with an optional detail-row filter (used
// by the SQL front-end's WHERE on CUBE BY / ROLLUP BY statements) under a
// caller context.
func groupingSets(ctx context.Context, cluster *Cluster, detail string, dims []string, sets [][]string, aggs AggList, where expr.Expr, opts Options) (*Relation, error) {
	if len(dims) == 0 || len(sets) == 0 {
		return nil, fmt.Errorf("skalla: grouping sets need dimensions and at least one set")
	}
	dimPos := map[string]int{}
	for i, d := range dims {
		dimPos[strings.ToLower(d)] = i
	}
	masks := make([]int, len(sets))
	for si, set := range sets {
		for _, col := range set {
			di, ok := dimPos[strings.ToLower(col)]
			if !ok {
				return nil, fmt.Errorf("skalla: grouping set column %q is not a dimension", col)
			}
			masks[si] |= 1 << di
		}
	}
	for _, a := range aggs {
		if a.Func == agg.CountD {
			return nil, fmt.Errorf("skalla: grouping sets do not support countd (%s)", a)
		}
	}

	// One distributed query at the finest granularity, carrying primitive
	// aggregates.
	primSpecs, err := primQuerySpecs(aggs)
	if err != nil {
		return nil, err
	}
	q, err := GroupBy(dims, primSpecs)
	if err != nil {
		return nil, err
	}
	if where != nil {
		// The filter restricts both which groups exist and which detail
		// rows aggregate, exactly like WHERE under GROUP BY.
		q.Base.Where = where
		for i := range q.MDs {
			for j := range q.MDs[i].Thetas {
				q.MDs[i].Thetas[j] = expr.And(q.MDs[i].Thetas[j], where)
			}
		}
	}
	res, err := cluster.QueryContext(ctx, q, detail, opts)
	if err != nil {
		return nil, fmt.Errorf("skalla: base cuboid: %w", err)
	}
	base := res.Relation

	// Output schema: dimensions plus finalized aggregate columns.
	outCols := make([]relation.Column, 0, len(dims)+len(aggs))
	for _, d := range dims {
		i, err := base.Schema.MustLookup(d)
		if err != nil {
			return nil, err
		}
		outCols = append(outCols, base.Schema.Cols[i])
	}
	for _, a := range aggs {
		outCols = append(outCols, a.OutColumn())
	}
	outSchema, err := relation.NewSchema(outCols...)
	if err != nil {
		return nil, err
	}
	out := relation.New(outSchema)

	dimIdx := make([]int, len(dims))
	for i, d := range dims {
		dimIdx[i], _ = base.Schema.Lookup(d)
	}
	primIdx := make([][]int, len(aggs))
	for ai, a := range aggs {
		primIdx[ai] = make([]int, len(a.Prims()))
		for pi := range a.Prims() {
			p, err := base.Schema.MustLookup(cubePrimName(ai, pi))
			if err != nil {
				return nil, err
			}
			primIdx[ai][pi] = p
		}
	}

	for _, mask := range masks {
		if err := rollupInto(out, base, mask, dims, dimIdx, aggs, primIdx); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// rollupInto merges the finest cuboid down to one grouping set (given as
// a dimension bitmask) and appends the resulting rows to out.
func rollupInto(out, base *Relation, mask int, dims []string, dimIdx []int, aggs AggList, primIdx [][]int) error {
	groups := map[string][][]*agg.Acc{}
	reprs := map[string]relation.Row{}
	var order []string
	for _, row := range base.Rows {
		var kb strings.Builder
		for di := range dims {
			if mask&(1<<di) != 0 {
				kb.WriteString(row[dimIdx[di]].Key())
			}
			kb.WriteByte('\x1f')
		}
		key := kb.String()
		accs, ok := groups[key]
		if !ok {
			accs = make([][]*agg.Acc, len(aggs))
			for ai, a := range aggs {
				accs[ai] = agg.NewAccs(a)
			}
			groups[key] = accs
			reprs[key] = row
			order = append(order, key)
		}
		for ai := range aggs {
			for pi, p := range primIdx[ai] {
				if err := accs[ai][pi].Merge(row[p]); err != nil {
					return fmt.Errorf("skalla: rollup: %w", err)
				}
			}
		}
	}
	sort.Strings(order)
	for _, key := range order {
		repr, accs := reprs[key], groups[key]
		nr := make(relation.Row, 0, out.Schema.Len())
		for di := range dims {
			if mask&(1<<di) != 0 {
				nr = append(nr, repr[dimIdx[di]])
			} else {
				nr = append(nr, CubeAll)
			}
		}
		for ai, a := range aggs {
			states := make([]value.V, len(accs[ai]))
			for pi, acc := range accs[ai] {
				states[pi] = acc.Result()
			}
			v, err := a.Finalize(states)
			if err != nil {
				return fmt.Errorf("skalla: rollup finalize %s: %w", a.As, err)
			}
			nr = append(nr, v)
		}
		out.Rows = append(out.Rows, nr)
	}
	return nil
}

// cubePrimName names the shipped primitive column for aggregate ai's
// pi'th primitive in the finest cuboid query.
func cubePrimName(ai, pi int) string { return fmt.Sprintf("__cube_a%d_p%d", ai, pi) }

// primQuerySpecs rewrites the requested aggregates into the primitive
// aggregates the finest cuboid must carry so every coarser cuboid can be
// computed by merging: count→count, sum→sum, avg→(sum,count),
// var/stddev→(count,sum,sum of squares), min/max→themselves.
func primQuerySpecs(aggs AggList) (AggList, error) {
	var out AggList
	for ai, a := range aggs {
		for pi, prim := range a.Prims() {
			spec := agg.Spec{As: cubePrimName(ai, pi)}
			switch prim {
			case agg.PCount:
				spec.Func = agg.Count
				spec.Arg = a.Arg // count(*) keeps nil arg
			case agg.PSum:
				spec.Func = agg.Sum
				spec.Arg = a.Arg
			case agg.PSumSq:
				spec.Func = agg.Sum
				spec.Arg = expr.Binary{Op: "*", L: a.Arg, R: a.Arg}
			case agg.PMin:
				spec.Func = agg.Min
				spec.Arg = a.Arg
			case agg.PMax:
				spec.Func = agg.Max
				spec.Arg = a.Arg
			default:
				return nil, fmt.Errorf("skalla: cube cannot carry primitive %d of %s", prim, a)
			}
			out = append(out, spec)
		}
	}
	return out, nil
}

// Unpivot rotates the named value columns of a relation into
// (attribute, value) rows: each input row yields one output row per value
// column, carrying the key columns, the column's name in attrCol, and its
// value in valCol. This is the unpivot operator of Graefe et al., used to
// extract marginal distributions; it runs at the client on (small)
// base-result structures.
func Unpivot(rel *Relation, keyCols, valueCols []string, attrCol, valCol string) (*Relation, error) {
	if len(valueCols) == 0 {
		return nil, fmt.Errorf("skalla: unpivot needs value columns")
	}
	keySchema, keyIdx, err := rel.Schema.Project(keyCols)
	if err != nil {
		return nil, err
	}
	valIdx := make([]int, len(valueCols))
	for i, c := range valueCols {
		p, err := rel.Schema.MustLookup(c)
		if err != nil {
			return nil, err
		}
		valIdx[i] = p
	}
	cols := append([]relation.Column(nil), keySchema.Cols...)
	cols = append(cols,
		relation.Column{Name: attrCol, Kind: value.KindString},
		relation.Column{Name: valCol, Kind: value.KindFloat},
	)
	outSchema, err := relation.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	out := relation.New(outSchema)
	for _, row := range rel.Rows {
		for vi, p := range valIdx {
			nr := make(relation.Row, 0, outSchema.Len())
			for _, k := range keyIdx {
				nr = append(nr, row[k])
			}
			nr = append(nr, value.NewString(rel.Schema.Cols[valIdx[vi]].Name), row[p])
			out.Rows = append(out.Rows, nr)
		}
	}
	return out, nil
}
