package skalla

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/testutil"
	"repro/internal/transport"
	"repro/internal/value"
)

// serveQueries is the concurrent workload: every SQL shape the dialect
// supports, all over the shared flow relation.
var serveQueries = []string{
	"SELECT SourceAS, DestAS, count(*) AS cnt, sum(NumBytes) AS bytes FROM flow GROUP BY SourceAS, DestAS",
	"SELECT SourceAS, sum(NumBytes) AS bytes FROM flow GROUP BY SourceAS ORDER BY bytes DESC",
	"SELECT SourceAS, DestAS, sum(NumBytes) AS bytes FROM flow CUBE BY SourceAS, DestAS",
	"SELECT DestAS, count(*) AS cnt FROM flow WHERE NumBytes >= 100 GROUP BY DestAS",
	"SELECT SourceAS, count(*) AS cnt FROM flow GROUP BY SourceAS HAVING cnt > 1",
	"SELECT DestAS, avg(NumBytes) AS avgb FROM flow GROUP BY DestAS",
}

// assertIdentical compares two results byte-for-byte: same schema, same
// row order, same values (NULL == NULL). Callers are responsible for
// having both sides in deterministic order first.
func assertIdentical(t *testing.T, label string, got, want *Relation) {
	t.Helper()
	if gn, wn := fmt.Sprint(got.Schema.Names()), fmt.Sprint(want.Schema.Names()); gn != wn {
		t.Fatalf("%s: schema %s, want %s", label, gn, wn)
	}
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d rows, want %d", label, got.Len(), want.Len())
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if !value.Equal(got.Rows[i][j], want.Rows[i][j]) &&
				!(got.Rows[i][j].IsNull() && want.Rows[i][j].IsNull()) {
				t.Errorf("%s: row %d col %d: %v != %v", label, i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
}

// serveBaseline computes the serial reference result for q, in the same
// deterministic order the query service promises (results without an
// ORDER BY sorted on every output column).
func serveBaseline(t *testing.T, cluster *Cluster, q string) *Relation {
	t.Helper()
	rel, err := cluster.SQL(q, AllOptimizations)
	if err != nil {
		t.Fatalf("baseline %q: %v", q, err)
	}
	if !strings.Contains(q, "ORDER BY") {
		if err := rel.SortBy(rel.Schema.Names()...); err != nil {
			t.Fatal(err)
		}
	}
	return rel
}

// TestServeConcurrentE2E is the acceptance scenario: 12 simultaneous
// queries over shared TCP sites, with a chaos-injected transport fault on
// one site's first pooled connection and one site's primary replica
// draining mid-wave. Every admitted query must come back byte-exact
// against its serial baseline — never a hang, never a wrong answer.
func TestServeConcurrentE2E(t *testing.T) {
	testutil.CheckGoroutines(t)
	parts, _ := flowParts(3)
	var sites []string
	var servers [][]*transport.Server
	for i := range parts {
		// site2 runs two replicas: its primary drains mid-test and the
		// pooled reconnectors must fail over to the secondary.
		n := 1
		if i == 2 {
			n = 2
		}
		entry, srvs := startFlowSite(t, fmt.Sprintf("site%d", i), parts[i], n)
		sites = append(sites, entry)
		servers = append(servers, srvs)
	}
	o := obs.New()
	cluster, err := ConnectWith(ConnectConfig{
		Sites:       sites,
		Attempts:    2,
		Backoff:     time.Millisecond,
		CallTimeout: 10 * time.Second,
		Replays:     2, // recovery on: requests carry (epoch, round) tags
		Obs:         o,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	// Serial baselines before any chaos or draining.
	baselines := make([]*Relation, len(serveQueries))
	for i, q := range serveQueries {
		baselines[i] = serveBaseline(t, cluster, q)
	}

	// Chaos: the first pooled connection to site1 fails its first
	// evalRounds fan-out with a transport error; the coordinator's replay
	// budget must absorb it via the (epoch, round) dedup path.
	origDial := cluster.dialers[1]
	var chaosMu sync.Mutex
	chaosDials := 0
	cluster.dialers[1] = func() (transport.Client, error) {
		cl, err := origDial()
		if err != nil {
			return nil, err
		}
		chaosMu.Lock()
		defer chaosMu.Unlock()
		ch := transport.NewChaos(cl, int64(chaosDials))
		if chaosDials == 0 {
			ch.FailNext(transport.OpEvalRounds, 1)
		}
		chaosDials++
		return ch, nil
	}

	svc, err := NewQueryService(cluster, ServeConfig{MaxConcurrent: 8, QueueDepth: 16, SiteInflight: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	const waves = 2 // 12 queries, 8 running at once, 4 queued
	total := waves * len(serveQueries)
	results := make([]*Relation, total)
	errs := make([]error, total)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = svc.Query(context.Background(), serveQueries[i%len(serveQueries)])
		}(i)
	}
	// Drain site2's primary while the wave is in flight: in-flight
	// requests finish, subsequent ones get a CodeDraining shed and fail
	// over to the secondary replica.
	if err := servers[2][0].Drain(5 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()

	for i := range results {
		q := serveQueries[i%len(serveQueries)]
		if errs[i] != nil {
			t.Fatalf("query %d (%q): %v", i, q, errs[i])
		}
		assertIdentical(t, fmt.Sprintf("query %d", i), results[i], baselines[i%len(serveQueries)])
	}

	if got := o.Metrics.CounterValue("sched.admitted"); got != int64(total) {
		t.Errorf("sched.admitted = %d, want %d", got, total)
	}
	if got := o.Metrics.CounterValue("sched.completed"); got != int64(total) {
		t.Errorf("sched.completed = %d, want %d", got, total)
	}
	if got := o.Metrics.CounterValue("serve.queries_ok"); got != int64(total) {
		t.Errorf("serve.queries_ok = %d, want %d", got, total)
	}
	// Recovery was enabled, so every execution announced its completion
	// to the sites for dedup-cache eviction.
	if got := o.Metrics.CounterValue("coord.epoch_done_acks"); got == 0 {
		t.Error("no epoch-done acks recorded: completed epochs never evicted site-side")
	}
}

// TestServeAdmissionFailFast: with one execution slot and no queue, a
// second query is refused immediately with the typed admission error —
// and admitted again once the slot frees.
func TestServeAdmissionFailFast(t *testing.T) {
	cluster, err := NewLocalCluster(ClusterConfig{Sites: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	parts, _ := flowParts(2)
	if err := cluster.Load("flow", parts); err != nil {
		t.Fatal(err)
	}
	svc, err := NewQueryService(cluster, ServeConfig{MaxConcurrent: 1, QueueDepth: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	release, err := svc.Scheduler().Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_, err = svc.Query(context.Background(), serveQueries[0])
	if !errors.Is(err, ErrAdmission) {
		t.Fatalf("saturated query error = %v, want ErrAdmission", err)
	}
	// A malformed query must be refused as a parse error even under
	// saturation: parsing happens before admission and burns no slot.
	_, err = svc.Query(context.Background(), "SELECT FROM nope")
	if err == nil || errors.Is(err, ErrAdmission) {
		t.Fatalf("parse error while saturated = %v, want a parse failure", err)
	}
	release()
	got, err := svc.Query(context.Background(), serveQueries[0])
	if err != nil {
		t.Fatalf("query after release: %v", err)
	}
	assertIdentical(t, "after release", got, serveBaseline(t, cluster, serveQueries[0]))
}

// TestServeQueueTimeout: a queued query waits no longer than QueueTimeout
// for a slot, then fails with the typed admission error.
func TestServeQueueTimeout(t *testing.T) {
	cluster, err := NewLocalCluster(ClusterConfig{Sites: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	parts, _ := flowParts(2)
	if err := cluster.Load("flow", parts); err != nil {
		t.Fatal(err)
	}
	svc, err := NewQueryService(cluster, ServeConfig{
		MaxConcurrent: 1, QueueDepth: 1, QueueTimeout: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	release, err := svc.Scheduler().Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	start := time.Now()
	_, err = svc.Query(context.Background(), serveQueries[0])
	if !errors.Is(err, ErrAdmission) {
		t.Fatalf("queued query error = %v, want ErrAdmission", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("queue timeout took %v", waited)
	}
}

// TestServeSiblingCancellationIsolation is the cancellation regression:
// query A hangs on a chaos fault and is cancelled; sibling query B runs
// concurrently over the same pools and must complete byte-exact. A's
// cancellation must surface as context.Canceled, not tear down B.
func TestServeSiblingCancellationIsolation(t *testing.T) {
	cluster, err := NewLocalCluster(ClusterConfig{Sites: 2, UseTCP: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	parts, _ := flowParts(2)
	if err := cluster.Load("flow", parts); err != nil {
		t.Fatal(err)
	}
	baseline := serveBaseline(t, cluster, serveQueries[0])

	// The first pooled connection to site 0 hangs its first evalRounds
	// until the borrowing query's context is cancelled.
	origDial := cluster.dialers[0]
	chaosCh := make(chan *transport.Chaos, 1)
	var dialMu sync.Mutex
	dialed := false
	cluster.dialers[0] = func() (transport.Client, error) {
		cl, err := origDial()
		if err != nil {
			return nil, err
		}
		dialMu.Lock()
		defer dialMu.Unlock()
		if dialed {
			return cl, nil
		}
		dialed = true
		ch := transport.NewChaos(cl, 1)
		ch.HangNext(transport.OpEvalRounds)
		chaosCh <- ch
		return ch, nil
	}

	svc, err := NewQueryService(cluster, ServeConfig{MaxConcurrent: 4, SiteInflight: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	errA := make(chan error, 1)
	go func() {
		_, err := svc.Query(ctxA, serveQueries[0])
		errA <- err
	}()

	// Wait until A is demonstrably hung inside the chaos fault.
	ch := <-chaosCh
	deadline := time.Now().Add(5 * time.Second)
	for ch.Injected() == 0 {
		select {
		case err := <-errA:
			t.Fatalf("query A finished before the injected hang: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("query A never reached the injected hang")
		}
		time.Sleep(time.Millisecond)
	}

	// B runs to completion while A hangs on a sibling connection.
	got, err := svc.Query(context.Background(), serveQueries[0])
	if err != nil {
		t.Fatalf("sibling query B: %v", err)
	}
	assertIdentical(t, "sibling B", got, baseline)

	cancelA()
	select {
	case err := <-errA:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled query A error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelling query A did not unblock it")
	}

	// The pools must still be healthy: a fresh query succeeds.
	got, err = svc.Query(context.Background(), serveQueries[0])
	if err != nil {
		t.Fatalf("query after cancellation: %v", err)
	}
	assertIdentical(t, "after cancellation", got, baseline)
}

// TestServeHandlerHTTP exercises the HTTP surface: result shape, method
// handling, and the error → status-code classification.
func TestServeHandlerHTTP(t *testing.T) {
	cluster, err := NewLocalCluster(ClusterConfig{Sites: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	parts, _ := flowParts(2)
	if err := cluster.Load("flow", parts); err != nil {
		t.Fatal(err)
	}
	svc, err := NewQueryService(cluster, ServeConfig{MaxConcurrent: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	h := svc.Handler()

	do := func(method, target, body string) *httptest.ResponseRecorder {
		var r *http.Request
		if body != "" {
			r = httptest.NewRequest(method, target, strings.NewReader(body))
		} else {
			r = httptest.NewRequest(method, target, nil)
		}
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		return w
	}
	decodeErr := func(w *httptest.ResponseRecorder) errorJSON {
		var e errorJSON
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
			t.Fatalf("error body %q: %v", w.Body.String(), err)
		}
		return e
	}

	q := "SELECT SourceAS, sum(NumBytes) AS bytes FROM flow GROUP BY SourceAS"
	w := do(http.MethodGet, "/query?q="+strings.ReplaceAll(q, " ", "+"), "")
	if w.Code != http.StatusOK {
		t.Fatalf("GET = %d: %s", w.Code, w.Body.String())
	}
	var res resultJSON
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res.Cols) != "[SourceAS bytes]" {
		t.Errorf("cols = %v", res.Cols)
	}
	if len(res.Rows) != 3 {
		t.Errorf("rows = %d, want 3", len(res.Rows))
	}

	// POST with the statement as the body returns the identical result.
	w2 := do(http.MethodPost, "/query", q)
	if w2.Code != http.StatusOK || w2.Body.String() != w.Body.String() {
		t.Errorf("POST = %d, body equal = %v", w2.Code, w2.Body.String() == w.Body.String())
	}

	if w := do(http.MethodGet, "/query?q=SELECT+FROM+nope", ""); w.Code != http.StatusBadRequest {
		t.Errorf("parse error status = %d, want 400", w.Code)
	} else if e := decodeErr(w); e.Kind != "parse" {
		t.Errorf("parse error kind = %q", e.Kind)
	}
	if w := do(http.MethodGet, "/query", ""); w.Code != http.StatusBadRequest {
		t.Errorf("empty query status = %d, want 400", w.Code)
	}
	if w := do(http.MethodDelete, "/query", ""); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("DELETE status = %d, want 405", w.Code)
	}

	// Saturate both slots: the refusal maps to 429 with the typed kind.
	rel1, err := svc.Scheduler().Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := svc.Scheduler().Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	w = do(http.MethodGet, "/query?q="+strings.ReplaceAll(q, " ", "+"), "")
	rel1()
	rel2()
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429: %s", w.Code, w.Body.String())
	}
	if e := decodeErr(w); e.Kind != "admission" {
		t.Errorf("saturated kind = %q", e.Kind)
	}
}

// TestServeCheckReady: readiness follows site fanout health — strict mode
// needs every site answering, AllowPartial needs one.
func TestServeCheckReady(t *testing.T) {
	parts, _ := flowParts(2)
	var sites []string
	var servers [][]*transport.Server
	for i := range parts {
		entry, srvs := startFlowSite(t, fmt.Sprintf("site%d", i), parts[i], 1)
		sites = append(sites, entry)
		servers = append(servers, srvs)
	}
	strict, err := ConnectWith(ConnectConfig{
		Sites: sites, Attempts: 1, Backoff: time.Millisecond, CallTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer strict.Close()
	partial, err := ConnectWith(ConnectConfig{
		Sites: sites, Attempts: 1, Backoff: time.Millisecond, CallTimeout: time.Second,
		AllowPartial: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer partial.Close()

	strictSvc, err := NewQueryService(strict, ServeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer strictSvc.Close()
	partialSvc, err := NewQueryService(partial, ServeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer partialSvc.Close()

	if ok, reason := strictSvc.CheckReady(); !ok {
		t.Fatalf("strict not ready with all sites up: %s", reason)
	}
	if ok, _ := partialSvc.CheckReady(); !ok {
		t.Fatal("partial not ready with all sites up")
	}

	servers[1][0].Close()
	if ok, reason := strictSvc.CheckReady(); ok {
		t.Fatal("strict ready with site1 down")
	} else if !strings.Contains(reason, "site1") {
		t.Errorf("reason %q does not name site1", reason)
	}
	if ok, _ := partialSvc.CheckReady(); !ok {
		t.Fatal("partial not ready with one site still up")
	}
}
