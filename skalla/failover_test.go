package skalla

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/gmdj"
	"repro/internal/relation"
	"repro/internal/site"
	"repro/internal/transport"
	"repro/internal/value"
)

// startFlowSite starts n TCP servers (replicas) over one shared engine
// loaded with part, returning their addresses joined with the replica
// separator plus the servers for individual shutdown.
func startFlowSite(t *testing.T, id string, part *relation.Relation, n int) (string, []*transport.Server) {
	t.Helper()
	eng := site.NewEngine(id)
	eng.Load("flow", part)
	addrs := make([]string, n)
	servers := make([]*transport.Server, n)
	for i := 0; i < n; i++ {
		srv := transport.NewServer(eng)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i], servers[i] = addr, srv
		t.Cleanup(func() { srv.Close() })
	}
	return strings.Join(addrs, "|"), servers
}

func assertSameResult(t *testing.T, label string, got, want *relation.Relation) {
	t.Helper()
	got.SortBy("SourceAS", "DestAS")
	want.SortBy("SourceAS", "DestAS")
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d rows, want %d", label, got.Len(), want.Len())
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if !value.Equal(got.Rows[i][j], want.Rows[i][j]) &&
				!(got.Rows[i][j].IsNull() && want.Rows[i][j].IsNull()) {
				t.Errorf("%s: row %d col %d: %v != %v", label, i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
}

// TestConnectWithReplicaFailover: each site is addressed as
// "primary|secondary"; killing a primary mid-session transparently fails
// the session over to the secondary with identical query results.
func TestConnectWithReplicaFailover(t *testing.T) {
	parts, whole := flowParts(2)
	var sites []string
	var servers [][]*transport.Server
	for i := range parts {
		entry, srvs := startFlowSite(t, fmt.Sprintf("site%d", i), parts[i], 2)
		sites = append(sites, entry)
		servers = append(servers, srvs)
	}
	cluster, err := ConnectWith(ConnectConfig{
		Sites:       sites,
		Attempts:    2,
		Backoff:     time.Millisecond,
		CallTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	want, err := gmdj.EvalQuery(whole, example1())
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Query(example1(), "flow", NoOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "before failover", res.Relation, want)

	// Kill site1's primary; the next query must ride the secondary.
	servers[1][0].Close()
	res, err = cluster.Query(example1(), "flow", NoOptimizations)
	if err != nil {
		t.Fatalf("query after primary loss: %v", err)
	}
	assertSameResult(t, "after failover", res.Relation, want)
	if res.Stats.Partial() {
		t.Errorf("failover degraded the result: lost %v", res.Stats.LostSites())
	}
}

// TestConnectWithDegradedPartial: with AllowPartial a dead site yields a
// partial result over the survivors, named in the stats.
func TestConnectWithDegradedPartial(t *testing.T) {
	parts, _ := flowParts(2)
	var sites []string
	var servers [][]*transport.Server
	for i := range parts {
		entry, srvs := startFlowSite(t, fmt.Sprintf("site%d", i), parts[i], 1)
		sites = append(sites, entry)
		servers = append(servers, srvs)
	}
	cluster, err := ConnectWith(ConnectConfig{
		Sites:        sites,
		Attempts:     1,
		Backoff:      time.Millisecond,
		CallTimeout:  10 * time.Second,
		AllowPartial: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	servers[1][0].Close() // site1 is gone, no replica

	want, err := gmdj.EvalQuery(parts[0], example1())
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Query(example1(), "flow", NoOptimizations)
	if err != nil {
		t.Fatalf("degraded query: %v", err)
	}
	assertSameResult(t, "degraded", res.Relation, want)
	if !res.Stats.Partial() {
		t.Fatal("stats do not mark the result partial")
	}
	if lost := res.Stats.LostSites(); len(lost) != 1 || lost[0] != "site1" {
		t.Errorf("LostSites = %v, want [site1]", lost)
	}
}

// TestConnectWithErrors: malformed replica entries and unreachable strict
// sites fail at connect time.
func TestConnectWithErrors(t *testing.T) {
	if _, err := ConnectWith(ConnectConfig{Sites: []string{"127.0.0.1:1| "}}); err == nil {
		t.Error("empty replica address accepted")
	}
	if _, err := ConnectWith(ConnectConfig{Sites: nil}); err == nil {
		t.Error("empty site list accepted")
	}
	// Port 1 is refused immediately: strict connect must fail fast.
	_, err := ConnectWith(ConnectConfig{
		Sites:    []string{"127.0.0.1:1"},
		Attempts: 1,
		Backoff:  time.Millisecond,
	})
	if err == nil {
		t.Error("unreachable strict site accepted at connect time")
	}
}
