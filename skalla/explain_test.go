package skalla

import (
	"regexp"
	"strings"
	"testing"
)

// planText extracts the rendered report from an EXPLAIN result relation.
func planText(t *testing.T, rel *Relation) string {
	t.Helper()
	if rel.Schema.Len() != 1 || rel.Schema.Names()[0] != PlanCol {
		t.Fatalf("EXPLAIN schema = %s, want single %q column", rel.Schema, PlanCol)
	}
	var lines []string
	for _, row := range rel.Rows {
		lines = append(lines, row[0].S)
	}
	return strings.Join(lines, "\n")
}

func TestExplainSQL(t *testing.T) {
	cluster, _ := cubeCluster(t)
	rel, err := cluster.SQL("EXPLAIN SELECT Region, count(*) AS n FROM sales GROUP BY Region", AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	out := planText(t, rel)
	if !strings.HasPrefix(out, "plan:") {
		t.Errorf("EXPLAIN output does not start with the plan:\n%s", out)
	}
	if strings.Contains(out, "analyze:") {
		t.Errorf("plain EXPLAIN executed the query:\n%s", out)
	}
}

// wireBytes masks the measured wire byte counts: responses carry varint
// timing fields (ComputeNs, profile WallNs), so the exact byte totals can
// shift by the varint width between otherwise identical runs. Everything
// else in the timing-free report is deterministic and compared verbatim.
var wireBytes = regexp.MustCompile(`\d+ (B to sites|B from sites|bytes moved)`)

func maskWireBytes(s string) string { return wireBytes.ReplaceAllString(s, "# $1") }

// TestExplainAnalyzeGolden pins the timing-free EXPLAIN ANALYZE report on
// a fixed dataset: the report must be identical across repeated
// executions (up to masked wire byte counts), and its analyze section
// must carry the per-site breakdown with the sites' self-reported
// outcomes.
func TestExplainAnalyzeGolden(t *testing.T) {
	cluster, _ := cubeCluster(t)
	const stmt = "EXPLAIN ANALYZE SELECT Region, count(*) AS n, sum(Sales) AS total FROM sales GROUP BY Region"
	first, err := cluster.SQL(stmt, AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	out := planText(t, first)
	for _, want := range []string{
		"plan:",
		"analyze:",
		"round step 1:",
		"site0: shipped",
		"site1: shipped",
		"outcome ok",
		"totals:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN ANALYZE missing %q:\n%s", want, out)
		}
	}
	// Timing off (the default): no clock readings anywhere.
	for _, banned := range []string{"wall", "compute", "site(max)"} {
		if strings.Contains(out, banned) {
			t.Errorf("timing-free report leaks %q:\n%s", banned, out)
		}
	}
	masked := maskWireBytes(out)
	for i := 0; i < 3; i++ {
		again, err := cluster.SQL(stmt, AllOptimizations)
		if err != nil {
			t.Fatal(err)
		}
		if rerun := maskWireBytes(planText(t, again)); rerun != masked {
			t.Fatalf("EXPLAIN ANALYZE not deterministic:\nfirst:\n%s\nrerun:\n%s", masked, rerun)
		}
	}
}

func TestExplainAnalyzeTiming(t *testing.T) {
	cluster, _ := cubeCluster(t)
	cluster.AnalyzeTiming = true
	rel, err := cluster.SQL("EXPLAIN ANALYZE SELECT Region, count(*) AS n FROM sales GROUP BY Region", AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	out := planText(t, rel)
	if !strings.Contains(out, "site(max)") || !strings.Contains(out, "wall") {
		t.Errorf("AnalyzeTiming report missing durations:\n%s", out)
	}
}

func TestExplainCubeRejected(t *testing.T) {
	cluster, _ := cubeCluster(t)
	if _, err := cluster.SQL("EXPLAIN SELECT Region, count(*) AS n FROM sales CUBE BY Region", AllOptimizations); err == nil {
		t.Error("EXPLAIN over CUBE BY did not error")
	}
}
