package skalla

import (
	"testing"

	"repro/internal/gmdj"
	"repro/internal/tpcr"
	"repro/internal/value"
)

func TestTreeClusterEndToEnd(t *testing.T) {
	tree, err := NewTreeCluster(TreeConfig{Leaves: 4, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	if tree.NumSites() != 2 || tree.NumLeaves() != 4 {
		t.Fatalf("tree shape: %d relays, %d leaves", tree.NumSites(), tree.NumLeaves())
	}

	cfg := tpcr.Config{Rows: 3000, Customers: 60, Seed: 9}
	counts, err := tree.Generate("tpcr", "tpcr", tpcr.GenParams(cfg))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	whole := tpcr.Generate(cfg)
	if total != whole.Len() {
		t.Errorf("tree generated %d rows, want %d", total, whole.Len())
	}

	q, err := GroupBy([]string{"CustName"}, Aggs("count(*) AS n", "avg(F.Quantity) AS aq"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := tree.Query(q, "tpcr", Options{GroupReduceSites: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := gmdj.EvalQuery(whole, q)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Relation
	got.SortBy("CustName")
	want.SortBy("CustName")
	if got.Len() != want.Len() {
		t.Fatalf("rows %d vs %d", got.Len(), want.Len())
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			g, w := got.Rows[i][j], want.Rows[i][j]
			if g.K == value.KindFloat {
				gf, _ := g.AsFloat()
				wf, _ := w.AsFloat()
				if gf-wf > 1e-9 || wf-gf > 1e-9 {
					t.Errorf("row %d col %d: %v != %v", i, j, g, w)
				}
				continue
			}
			if !value.Equal(g, w) {
				t.Errorf("row %d col %d: %v != %v", i, j, g, w)
			}
		}
	}
}

func TestTreeClusterLoadAddressesLeaves(t *testing.T) {
	tree, err := NewTreeCluster(TreeConfig{Leaves: 4, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	parts, whole := flowParts(4)
	if err := tree.Load("flow", parts); err != nil {
		t.Fatal(err)
	}
	res, err := tree.Query(example1(), "flow", NoOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	want, err := gmdj.EvalQuery(whole, example1())
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != want.Len() {
		t.Errorf("tree result %d rows, want %d", res.Relation.Len(), want.Len())
	}
	// Wrong partition count fails against the leaf count, not the relay count.
	two, _ := flowParts(2)
	if err := tree.Load("flow", two); err == nil {
		t.Error("2 partitions for 4 leaves accepted")
	}
}

func TestTreeClusterErrors(t *testing.T) {
	if _, err := NewTreeCluster(TreeConfig{}); err == nil {
		t.Error("tree without leaves accepted")
	}
	// Fanout defaults and uneven division both work.
	tree, err := NewTreeCluster(TreeConfig{Leaves: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	if tree.NumSites() != 3 {
		t.Errorf("5 leaves / fanout 2 = %d relays, want 3", tree.NumSites())
	}
}
