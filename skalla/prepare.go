package skalla

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/transport"
)

// Prepared is a planned query that can execute repeatedly without
// re-planning: the Egil optimizer runs once, the plan is reused. Useful
// for dashboard-style workloads that issue the same OLAP query against
// changing site data.
type Prepared struct {
	cluster *Cluster
	plan    *Plan
}

// Prepare plans a query for repeated execution under the given options.
// The plan captures the current catalog knowledge and detail schemas;
// re-prepare after changing either.
func (c *Cluster) Prepare(q Query, detail string, opts Options) (*Prepared, error) {
	return c.PrepareContext(context.Background(), q, detail, opts)
}

// PrepareContext is Prepare under a caller-supplied context: planning
// fetches detail schemas from the sites, and cancelling the context (or
// hitting its deadline) aborts those calls.
func (c *Cluster) PrepareContext(ctx context.Context, q Query, detail string, opts Options) (*Prepared, error) {
	schemas := map[string]*relation.Schema{}
	for _, name := range q.DetailNames(detail) {
		s, err := c.coord.DetailSchema(ctx, name)
		if err != nil {
			return nil, err
		}
		schemas[name] = s
	}
	plan, err := core.Egil{Catalog: c.cat, Options: opts}.BuildPlanSchemas(q, detail, schemas)
	if err != nil {
		return nil, err
	}
	return &Prepared{cluster: c, plan: plan}, nil
}

// Plan returns the underlying distributed plan.
func (p *Prepared) Plan() *Plan { return p.plan }

// Execute runs the prepared plan against the cluster's current data.
func (p *Prepared) Execute() (*Result, error) {
	return p.ExecuteContext(context.Background())
}

// ExecuteContext runs the prepared plan under a context; cancelling it
// aborts all in-flight site calls.
func (p *Prepared) ExecuteContext(ctx context.Context) (*Result, error) {
	rel, stats, err := p.cluster.coord.Execute(ctx, p.plan)
	if err != nil {
		return nil, err
	}
	return &Result{Relation: rel, Stats: stats, Plan: p.plan}, nil
}

// SiteStatus reports one site's state, as seen by the coordinator.
type SiteStatus struct {
	ID        string
	Reachable bool
	Err       string
	// Relations maps relation name to row count for the relations the
	// caller asked about.
	Relations map[string]int
}

// Status pings every site and reports reachability plus the row counts of
// the named relations (missing relations are omitted from the map).
func (c *Cluster) Status(relations ...string) []SiteStatus {
	return c.StatusContext(context.Background(), relations...)
}

// StatusContext is Status under a caller-supplied context, bounding the
// ping and relation-info exchanges with every site.
func (c *Cluster) StatusContext(ctx context.Context, relations ...string) []SiteStatus {
	out := make([]SiteStatus, len(c.clients))
	for i, cl := range c.clients {
		st := SiteStatus{ID: cl.SiteID(), Relations: map[string]int{}}
		resp, err := cl.Call(ctx, &transport.Request{Op: transport.OpPing})
		switch {
		case err != nil:
			st.Err = err.Error()
		case resp.Error() != nil:
			st.Err = resp.Error().Error()
		default:
			st.Reachable = true
			for _, rel := range relations {
				info, err := cl.Call(ctx, &transport.Request{Op: transport.OpRelInfo, Rel: rel})
				if err != nil || info.Error() != nil {
					continue
				}
				st.Relations[rel] = info.RowCount
			}
		}
		out[i] = st
	}
	return out
}

// String renders a status line per site.
func (s SiteStatus) String() string {
	if !s.Reachable {
		return fmt.Sprintf("%s: unreachable (%s)", s.ID, s.Err)
	}
	return fmt.Sprintf("%s: ok %v", s.ID, s.Relations)
}
