package skalla_test

import (
	"fmt"
	"log"

	"repro/internal/relation"
	"repro/internal/value"
	"repro/skalla"
)

// demoCluster builds a deterministic two-site warehouse for the examples.
func demoCluster() *skalla.Cluster {
	cluster, err := skalla.NewLocalCluster(skalla.ClusterConfig{Sites: 2})
	if err != nil {
		log.Fatal(err)
	}
	schema := relation.MustSchema(
		relation.Column{Name: "Region", Kind: value.KindString},
		relation.Column{Name: "Sales", Kind: value.KindInt},
	)
	parts := []*relation.Relation{relation.New(schema), relation.New(schema)}
	data := []struct {
		r string
		s int64
	}{
		{"east", 10}, {"east", 20}, {"west", 7}, {"west", 3}, {"east", 5},
	}
	for i, d := range data {
		parts[i%2].MustAppend(value.NewString(d.r), value.NewInt(d.s))
	}
	if err := cluster.Load("sales", parts); err != nil {
		log.Fatal(err)
	}
	return cluster
}

// ExampleCluster_Query evaluates a distributed GROUP BY built with the
// query builder.
func ExampleCluster_Query() {
	cluster := demoCluster()
	defer cluster.Close()

	q, err := skalla.GroupBy([]string{"Region"},
		skalla.Aggs("count(*) AS n", "sum(F.Sales) AS total"))
	if err != nil {
		log.Fatal(err)
	}
	res, err := cluster.Query(q, "sales", skalla.AllOptimizations)
	if err != nil {
		log.Fatal(err)
	}
	res.Relation.SortBy("Region")
	for _, row := range res.Relation.Rows {
		fmt.Printf("%s: n=%v total=%v\n", row[0], row[1], row[2])
	}
	// Output:
	// east: n=3 total=35
	// west: n=2 total=10
}

// ExampleCluster_SQL runs the same analysis through the SQL front-end.
func ExampleCluster_SQL() {
	cluster := demoCluster()
	defer cluster.Close()

	rel, err := cluster.SQL(
		"SELECT Region, sum(Sales) AS total FROM sales GROUP BY Region HAVING total > 20",
		skalla.AllOptimizations)
	if err != nil {
		log.Fatal(err)
	}
	rel.SortBy("Region")
	for _, row := range rel.Rows {
		fmt.Printf("%s: %v\n", row[0], row[1])
	}
	// Output:
	// east: 35
}

// ExampleNewQuery shows a correlated aggregate query: the second GMDJ's
// condition references the first's output (the per-region average).
func ExampleNewQuery() {
	cluster := demoCluster()
	defer cluster.Close()

	q := skalla.NewQuery("Region").
		MD(skalla.Aggs("avg(F.Sales) AS mean"), "F.Region = B.Region").
		MD(skalla.Aggs("count(*) AS above"), "F.Region = B.Region AND F.Sales >= B.mean").
		MustBuild()
	res, err := cluster.Query(q, "sales", skalla.AllOptimizations)
	if err != nil {
		log.Fatal(err)
	}
	res.Relation.SortBy("Region")
	for _, row := range res.Relation.Rows {
		fmt.Printf("%s: %v of its rows at or above its mean\n", row[0], row[2])
	}
	// Output:
	// east: 1 of its rows at or above its mean
	// west: 1 of its rows at or above its mean
}

// ExampleCube computes a one-dimensional data cube (group rows plus the
// grand total) in a single distributed round trip.
func ExampleCube() {
	cluster := demoCluster()
	defer cluster.Close()

	cube, err := skalla.Cube(cluster, "sales", []string{"Region"},
		skalla.Aggs("sum(F.Sales) AS total"), skalla.AllOptimizations)
	if err != nil {
		log.Fatal(err)
	}
	cube.SortBy("Region")
	for _, row := range cube.Rows {
		name := "ALL"
		if !row[0].IsNull() {
			name = row[0].S
		}
		fmt.Printf("%s: %v\n", name, row[1])
	}
	// Output:
	// ALL: 45
	// east: 35
	// west: 10
}
