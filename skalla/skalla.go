// Package skalla is the public API of the Skalla distributed OLAP system,
// a reproduction of "Efficient OLAP Query Processing in Distributed Data
// Warehouses" (Akinde, Böhlen, Johnson, Lakshmanan, Srivastava, 2002).
//
// A Cluster is a distributed data warehouse: local warehouse sites each
// holding a horizontal partition of a detail (fact) relation, plus a
// coordinator. OLAP queries are expressed as GMDJ expressions — built with
// NewQuery — and evaluated in rounds: sites compute sub-aggregates against
// their local partitions and the coordinator synchronizes them; detail
// tuples never leave their site.
//
// Quickstart:
//
//	cluster, _ := skalla.NewLocalCluster(skalla.ClusterConfig{Sites: 4})
//	defer cluster.Close()
//	cluster.Load("flow", parts) // or cluster.Generate(...)
//	q, _ := skalla.NewQuery("SourceAS", "DestAS").
//		MD(skalla.Aggs("count(*) AS cnt1", "sum(F.NumBytes) AS sum1"),
//			"F.SourceAS = B.SourceAS AND F.DestAS = B.DestAS").
//		Build()
//	res, _ := cluster.Query(q, "flow", skalla.AllOptimizations)
//	fmt.Println(res.Relation)
//	fmt.Println(res.Stats)
package skalla

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/gmdj"
	"repro/internal/ipflow"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/site"
	"repro/internal/tpcr"
	"repro/internal/transport"
)

// Re-exported types, so most applications only import this package.
type (
	// Options selects the distributed optimizations (see core.Options).
	Options = core.Options
	// Plan is a distributed evaluation plan.
	Plan = core.Plan
	// ExecStats reports bytes, rounds, and time of one execution.
	ExecStats = core.ExecStats
	// Query is a complex GMDJ expression.
	Query = gmdj.Query
	// Relation is an in-memory relation.
	Relation = relation.Relation
	// Schema describes a relation's columns.
	Schema = relation.Schema
	// Catalog holds distribution knowledge.
	Catalog = catalog.Catalog
	// CostModel models the coordinator↔site links.
	CostModel = transport.CostModel
	// CheckpointStore persists round-level execution checkpoints.
	CheckpointStore = core.CheckpointStore
	// Limits bounds what one site request may produce.
	Limits = site.Limits
)

// NewFileCheckpoints returns a file-backed checkpoint store rooted at
// dir: one JSON file per execution epoch, written atomically after every
// completed synchronization round.
func NewFileCheckpoints(dir string) (CheckpointStore, error) {
	return core.NewFileCheckpoints(dir)
}

// NewMemCheckpoints returns an in-memory checkpoint store (tests, or
// recovery from in-process coordinator restarts only).
func NewMemCheckpoints() CheckpointStore { return core.NewMemCheckpoints() }

// AllOptimizations enables every optimization of the paper.
var AllOptimizations = core.DefaultOptions

// NoOptimizations is the unoptimized baseline evaluation.
var NoOptimizations = Options{}

// DefaultWAN is a 10 Mbit/s, 2 ms cost model approximating the paper-era
// interconnect.
var DefaultWAN = transport.DefaultWAN

var registerOnce sync.Once

// registerGenerators installs the built-in dataset generators.
func registerGenerators() {
	registerOnce.Do(func() {
		site.RegisterGenerator("tpcr", tpcr.Generator)
		site.RegisterGenerator("ipflow", ipflow.Generator)
	})
}

// ClusterConfig configures a local (in-process) cluster.
type ClusterConfig struct {
	// Sites is the number of warehouse sites (default 4).
	Sites int
	// Cost models each coordinator↔site link; the zero value accounts
	// nothing and sleeps never.
	Cost CostModel
	// UseTCP runs each site behind a real TCP server on loopback instead
	// of the in-process transport. Byte accounting is identical; TCP
	// mainly serves integration testing and demos.
	UseTCP bool
	// CallTimeout bounds every coordinator↔site round-trip (0 = none).
	CallTimeout time.Duration
	// AllowPartial returns degraded partial results (with coverage
	// metadata in ExecStats) instead of failing when sites are lost.
	AllowPartial bool
	// Obs, when set, receives metrics, trace spans, and events from the
	// coordinator, the site engines, and the transports (see internal/obs).
	// Nil disables observability at near-zero cost.
	Obs *obs.Obs
	// Checkpoints, when set, saves round-level execution state after every
	// synchronization round and resumes interrupted executions of the same
	// plan from their last completed round.
	Checkpoints CheckpointStore
	// Replays is how many times a site's round request is re-issued after
	// a transport failure before the round fails (0 = first error aborts).
	Replays int
	// Limits applies per-request resource limits at every in-process
	// site engine; oversized results are refused with ErrOverloaded.
	Limits Limits
	// RowEngine forces every in-process site onto the row-at-a-time GMDJ
	// engine instead of the vectorized default (the -row-engine escape
	// hatch of the daemons).
	RowEngine bool
	// PropagateDeadline stamps every round request with the remaining
	// per-call budget so sites shed already-doomed work (an expired
	// deadline is refused before evaluation) instead of computing
	// results the coordinator will discard.
	PropagateDeadline bool
}

// Cluster is a running distributed data warehouse.
type Cluster struct {
	// AnalyzeTiming makes EXPLAIN ANALYZE include measured durations
	// (site/coord/comm times, straggler ratios, wall time). Off by
	// default so the report is deterministic for a fixed input — the
	// -profile flag of skalla-coord turns it on.
	AnalyzeTiming bool

	ids     []string
	clients []transport.Client
	coord   *core.Coordinator
	cat     *catalog.Catalog
	engines []*site.Engine      // in-process sites (nil entries when remote)
	servers []*transport.Server // owned TCP servers, closed with the cluster
	obs     *obs.Obs

	// leafClients is set for multi-tier clusters: direct handles to the
	// leaf sites, used by Load (relays cannot split shipped relations).
	leafClients []transport.Client

	// dialers open additional independent connections to each site, in
	// ids order. The concurrent query service (NewQueryService) uses them
	// to build per-site connection pools so simultaneous executions do
	// not serialize on the cluster's primary clients.
	dialers []func() (transport.Client, error)
}

// NewLocalCluster starts an in-process cluster with cfg.Sites sites.
func NewLocalCluster(cfg ClusterConfig) (*Cluster, error) {
	registerGenerators()
	if cfg.Sites == 0 {
		cfg.Sites = 4
	}
	if cfg.Sites < 0 {
		return nil, fmt.Errorf("skalla: invalid site count %d", cfg.Sites)
	}
	c := &Cluster{obs: cfg.Obs}
	for i := 0; i < cfg.Sites; i++ {
		id := fmt.Sprintf("site%d", i)
		eng := site.NewEngine(id)
		eng.SetObs(cfg.Obs)
		eng.SetLimits(cfg.Limits)
		if cfg.RowEngine {
			eng.SetEvalEngine(gmdj.EngineRow)
		}
		c.ids = append(c.ids, id)
		c.engines = append(c.engines, eng)
		if cfg.UseTCP {
			srv := transport.NewServer(eng)
			srv.Obs = cfg.Obs
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("skalla: start site %s: %w", id, err)
			}
			c.servers = append(c.servers, srv)
			cl, err := transport.DialTCP(id, addr, cfg.Cost)
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("skalla: connect site %s: %w", id, err)
			}
			cl.SetObs(cfg.Obs)
			c.clients = append(c.clients, cl)
			c.dialers = append(c.dialers, func() (transport.Client, error) {
				dc, err := transport.DialTCP(id, addr, cfg.Cost)
				if err != nil {
					return nil, err
				}
				dc.SetObs(cfg.Obs)
				return dc, nil
			})
		} else {
			lc := transport.NewLocalClient(id, eng, cfg.Cost)
			lc.SetObs(cfg.Obs)
			c.clients = append(c.clients, lc)
			c.dialers = append(c.dialers, func() (transport.Client, error) {
				dc := transport.NewLocalClient(id, eng, cfg.Cost)
				dc.SetObs(cfg.Obs)
				return dc, nil
			})
		}
	}
	c.coord = core.NewCoordinator(c.clients...)
	c.coord.CallTimeout = cfg.CallTimeout
	c.coord.AllowPartial = cfg.AllowPartial
	c.coord.Obs = cfg.Obs
	c.coord.Checkpoints = cfg.Checkpoints
	c.coord.Replays = cfg.Replays
	c.coord.PropagateDeadline = cfg.PropagateDeadline
	c.cat = catalog.New(c.ids...)
	return c, nil
}

// ConnectConfig configures a cluster over already-running remote site
// servers (cmd/skalla-site).
type ConnectConfig struct {
	// Sites lists one entry per logical site. An entry is a single
	// address or several replica addresses separated by '|'
	// ("10.0.0.1:7001|10.0.1.1:7001"): replicas are tried in order, and
	// after Attempts transport failures against one the coordinator
	// transparently fails over to the next. Replicas must hold the same
	// partition; re-issuing a round is safe because rounds ship only
	// partial aggregate state (see PROTOCOL.md).
	Sites []string
	// Cost models the coordinator↔site links.
	Cost CostModel
	// Attempts is the per-endpoint retry budget (default 3).
	Attempts int
	// Backoff is the base retry backoff, growing exponentially with
	// jitter (default 100ms).
	Backoff time.Duration
	// CallTimeout bounds every site round-trip (0 = none), so a hung
	// site cannot stall a query forever.
	CallTimeout time.Duration
	// AllowPartial returns degraded partial results (with coverage
	// metadata in ExecStats) instead of failing when a site and all its
	// replicas are down. It also tolerates unreachable sites at connect
	// time.
	AllowPartial bool
	// Obs, when set, receives coordinator metrics, trace spans, and
	// transport retry/failover events (see internal/obs). Site-side
	// metrics live in the remote skalla-site processes (-debug-addr).
	Obs *obs.Obs
	// Checkpoints, when set, saves round-level execution state after every
	// synchronization round and resumes interrupted executions of the same
	// plan from their last completed round (skalla-coord -checkpoint-dir).
	Checkpoints CheckpointStore
	// Replays is how many times a site's round request is re-issued after
	// a transport failure before the round fails (0 = first error aborts).
	// Replayed requests carry an (epoch, round) idempotency tag that sites
	// answer from a dedup cache, so a replica is not recomputing blindly.
	Replays int
	// ReadyURLs maps site IDs ("site0", ...) to the debug addresses of
	// their /readyz endpoints. When set, the coordinator consults a site's
	// readiness before fanning a round out to it and — in AllowPartial
	// mode — skips draining sites without burning a call.
	ReadyURLs map[string]string
	// Hedge enables tail-latency hedging for sites with two or more
	// replica addresses: when a round call to the current replica
	// exceeds an adaptive latency threshold, a duplicate request races
	// against the next replica and the first success wins while the
	// loser is cancelled. Duplicated evaluation is safe — rounds are
	// pure functions of the request over immutable partitions, and
	// tagged executions dedup on (epoch, round) — see PROTOCOL.md.
	Hedge bool
	// HedgeDelay pins the hedge trigger to a fixed delay instead of the
	// adaptive per-site EWMA threshold (0 = adaptive).
	HedgeDelay time.Duration
	// RetryBudget caps hedges and transport retries to a fraction of
	// primary traffic: each primary call earns this many retry tokens
	// (default 0.1 — one retry or hedge per ten calls). The budget is
	// shared across all sites of the cluster.
	RetryBudget float64
	// RetryBudgetBurst is the retry token-bucket cap (default 10).
	RetryBudgetBurst int
	// PropagateDeadline stamps every round request with the remaining
	// per-call budget so sites shed already-doomed work (an expired
	// deadline is refused before evaluation) instead of computing
	// results the coordinator will discard.
	PropagateDeadline bool
}

// Connect builds a cluster over already-running remote site servers (one
// address per site, as started by cmd/skalla-site). Connections
// transparently reconnect and retry on transport failures (e.g. a site
// restart), so transient outages do not kill long coordinator sessions.
// For replica failover, timeouts, and degraded mode, use ConnectWith.
func Connect(addrs []string, cost CostModel) (*Cluster, error) {
	return ConnectWith(ConnectConfig{Sites: addrs, Cost: cost})
}

// ConnectWith builds a cluster over remote site servers with full
// fault-tolerance control: per-endpoint retries with jittered exponential
// backoff, replica failover, per-call timeouts, and degraded partial
// results.
func ConnectWith(cfg ConnectConfig) (*Cluster, error) {
	registerGenerators()
	if len(cfg.Sites) == 0 {
		return nil, fmt.Errorf("skalla: no site addresses")
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = 3
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	c := &Cluster{obs: cfg.Obs}
	// One retry budget is shared by every site's transport: hedges and
	// reconnect retries anywhere in the cluster draw from (and refill)
	// the same token bucket, so aggregate speculative traffic stays a
	// bounded fraction of primary traffic.
	budget := transport.NewRetryBudget(cfg.RetryBudget, cfg.RetryBudgetBurst)
	budget.SetObs(cfg.Obs)
	for i, entry := range cfg.Sites {
		id := fmt.Sprintf("site%d", i)
		addrs := strings.Split(entry, "|")
		for j, a := range addrs {
			addrs[j] = strings.TrimSpace(a)
			if addrs[j] == "" {
				c.Close()
				return nil, fmt.Errorf("skalla: empty address in site entry %q", entry)
			}
		}
		cl := siteClient(id, addrs, cfg, budget)
		// Validate reachability eagerly so misconfigured addresses fail
		// at connect time, not at first query — unless partial results
		// are allowed, in which case a down site is tolerable now and
		// reported as lost coverage later.
		pingCtx, done := context.Background(), func() {}
		if cfg.CallTimeout > 0 {
			pingCtx, done = context.WithTimeout(context.Background(), cfg.CallTimeout)
		}
		_, err := cl.Call(pingCtx, &transport.Request{Op: transport.OpPing})
		done()
		if err != nil && !cfg.AllowPartial {
			cl.Close()
			c.Close()
			return nil, fmt.Errorf("skalla: connect %s: %w", entry, err)
		}
		c.ids = append(c.ids, id)
		c.clients = append(c.clients, cl)
		c.engines = append(c.engines, nil)
		c.dialers = append(c.dialers, func() (transport.Client, error) {
			return siteClient(id, addrs, cfg, budget), nil
		})
	}
	c.coord = core.NewCoordinator(c.clients...)
	c.coord.CallTimeout = cfg.CallTimeout
	c.coord.AllowPartial = cfg.AllowPartial
	c.coord.Obs = cfg.Obs
	c.coord.Checkpoints = cfg.Checkpoints
	c.coord.Replays = cfg.Replays
	c.coord.PropagateDeadline = cfg.PropagateDeadline
	if len(cfg.ReadyURLs) > 0 {
		c.coord.Health = transport.NewHTTPHealth(cfg.ReadyURLs)
	}
	c.cat = catalog.New(c.ids...)
	return c, nil
}

// siteClient builds the transport client for one logical site. Without
// hedging, every replica address goes into one Reconnector that retries
// and fails over sequentially; its reconnect retries draw on the shared
// budget. With hedging and at least two replicas, each replica gets its
// own single-endpoint Reconnector and a Hedger races them: when the
// current replica exceeds the hedge threshold (or sheds, or fails) the
// next replica is tried concurrently rather than sequentially, and the
// first success wins. The budget then lives at the Hedger, which charges
// every speculative launch; the inner per-endpoint retries stay bounded
// by Attempts.
func siteClient(id string, addrs []string, cfg ConnectConfig, budget *transport.RetryBudget) transport.Client {
	if !cfg.Hedge || len(addrs) < 2 {
		rc := transport.NewReplicaTCP(id, addrs, cfg.Cost, cfg.Attempts, cfg.Backoff)
		rc.SetObs(cfg.Obs)
		rc.SetBudget(budget)
		return rc
	}
	replicas := make([]transport.Client, len(addrs))
	for i, a := range addrs {
		rc := transport.NewReplicaTCP(id, []string{a}, cfg.Cost, cfg.Attempts, cfg.Backoff)
		rc.SetObs(cfg.Obs)
		replicas[i] = rc
	}
	h := transport.NewHedger(id, replicas, transport.HedgeConfig{
		Delay:  cfg.HedgeDelay,
		Budget: budget,
	})
	h.SetObs(cfg.Obs)
	return h
}

// Close releases all connections and stops owned servers.
func (c *Cluster) Close() error {
	var first error
	for _, cl := range c.clients {
		if err := cl.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, srv := range c.servers {
		if err := srv.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// NumSites returns the number of sites.
func (c *Cluster) NumSites() int { return len(c.clients) }

// SiteIDs returns the site identifiers.
func (c *Cluster) SiteIDs() []string { return append([]string(nil), c.ids...) }

// Catalog returns the cluster's distribution-knowledge catalog, which
// callers populate (e.g. via tpcr.FillCatalog) to enable the
// distribution-aware optimizations.
func (c *Cluster) Catalog() *catalog.Catalog { return c.cat }

// UseCatalog replaces the cluster's distribution knowledge, e.g. with a
// catalog loaded from a JSON file (catalog.LoadFile) describing a real
// deployment's partitioning.
func (c *Cluster) UseCatalog(cat *Catalog) {
	if cat != nil {
		c.cat = cat
	}
}

// Coordinator exposes the underlying coordinator for advanced use
// (custom plans, statistics access).
func (c *Cluster) Coordinator() *core.Coordinator { return c.coord }

// Obs returns the observability sink the cluster was configured with
// (nil when observability is disabled).
func (c *Cluster) Obs() *obs.Obs { return c.obs }

// Subset returns a view of the cluster restricted to its first n sites —
// used by the speed-up experiments that vary participating sites. The
// subset shares clients and catalog with the parent; closing the parent
// closes the subset.
func (c *Cluster) Subset(n int) (*Cluster, error) {
	if n <= 0 || n > len(c.clients) {
		return nil, fmt.Errorf("skalla: subset of %d from %d sites", n, len(c.clients))
	}
	sub := &Cluster{
		AnalyzeTiming: c.AnalyzeTiming,
		ids:           c.ids[:n],
		clients:       c.clients[:n],
		engines:       c.engines[:n],
		cat:           c.cat,
		obs:           c.obs,
	}
	if len(c.dialers) >= n {
		sub.dialers = c.dialers[:n]
	}
	sub.coord = core.NewCoordinator(sub.clients...)
	sub.coord.CallTimeout = c.coord.CallTimeout
	sub.coord.AllowPartial = c.coord.AllowPartial
	sub.coord.Obs = c.obs
	sub.coord.Checkpoints = c.coord.Checkpoints
	sub.coord.Replays = c.coord.Replays
	sub.coord.Health = c.coord.Health
	sub.coord.PropagateDeadline = c.coord.PropagateDeadline
	return sub, nil
}

// Load ships one partition per site and stores it under the given
// relation name. len(parts) must equal the number of sites (leaves for a
// multi-tier cluster). (Loading moves detail data and is meant for small
// examples; production-shaped deployments Generate data at the sites or
// ingest it locally.)
func (c *Cluster) Load(rel string, parts []*relation.Relation) error {
	targets := c.clients
	if len(c.leafClients) > 0 {
		targets = c.leafClients
	}
	if len(parts) != len(targets) {
		return fmt.Errorf("skalla: %d partitions for %d sites", len(parts), len(targets))
	}
	for i, cl := range targets {
		resp, err := cl.Call(context.Background(), &transport.Request{Op: transport.OpLoad, Rel: rel, Data: parts[i]})
		if err != nil {
			return fmt.Errorf("skalla: load to %s: %w", cl.SiteID(), err)
		}
		if err := resp.Error(); err != nil {
			return fmt.Errorf("skalla: load to %s: %w", cl.SiteID(), err)
		}
	}
	return nil
}

// Generate has every site synthesize its own partition of a registered
// dataset ("tpcr" or "ipflow") locally — no detail data crosses the wire.
// It returns the per-site row counts.
func (c *Cluster) Generate(rel, kind string, params map[string]int64) ([]int, error) {
	counts := make([]int, len(c.clients))
	errs := make([]error, len(c.clients))
	var wg sync.WaitGroup
	for i, cl := range c.clients {
		wg.Add(1)
		go func(i int, cl transport.Client) {
			defer wg.Done()
			resp, err := cl.Call(context.Background(), &transport.Request{
				Op: transport.OpGenerate,
				Gen: &transport.GenSpec{
					Kind: kind, Rel: rel, Params: params,
					Site: i, NumSites: len(c.clients),
				},
			})
			if err != nil {
				errs[i] = err
				return
			}
			if err := resp.Error(); err != nil {
				errs[i] = err
				return
			}
			counts[i] = resp.RowCount
		}(i, cl)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("skalla: generate at %s: %w", c.ids[i], err)
		}
	}
	return counts, nil
}

// Result bundles the outcome of one distributed query execution.
type Result struct {
	// Relation is the final base-result structure X.
	Relation *relation.Relation
	// Stats reports traffic and time per round.
	Stats *ExecStats
	// Plan is the distributed plan that ran, with optimizer notes.
	Plan *Plan
}

// Query plans and executes a GMDJ query against the named detail
// relation under the given optimization options.
func (c *Cluster) Query(q Query, detail string, opts Options) (*Result, error) {
	return c.QueryContext(context.Background(), q, detail, opts)
}

// QueryContext is Query under a context: cancelling ctx (or hitting its
// deadline) aborts all in-flight site calls and returns promptly. The
// cluster's CallTimeout and AllowPartial settings apply on top.
func (c *Cluster) QueryContext(ctx context.Context, q Query, detail string, opts Options) (*Result, error) {
	rel, stats, plan, err := c.coord.Run(ctx, q, detail, core.Egil{Catalog: c.cat, Options: opts})
	if err != nil {
		return nil, err
	}
	return &Result{Relation: rel, Stats: stats, Plan: plan}, nil
}

// Explain plans the query without executing it.
func (c *Cluster) Explain(q Query, detail string, opts Options) (*Plan, error) {
	schema, err := c.coord.DetailSchema(context.Background(), detail)
	if err != nil {
		return nil, err
	}
	return core.Egil{Catalog: c.cat, Options: opts}.BuildPlan(q, detail, schema)
}

// Session returns a cluster view with its own connections to the same
// sites, for concurrent use: queries on different sessions do not
// serialize on shared connections and keep independent traffic statistics.
// Sessions share the parent's catalog and in-process site engines; closing
// a session closes only its own connections. Only in-process clusters
// support sessions (remote clusters should Connect again instead).
func (c *Cluster) Session() (*Cluster, error) {
	if len(c.engines) == 0 || c.engines[0] == nil {
		return nil, fmt.Errorf("skalla: sessions require an in-process cluster; use Connect for remote sites")
	}
	if len(c.leafClients) > 0 {
		return nil, fmt.Errorf("skalla: sessions over multi-tier clusters are not supported")
	}
	s := &Cluster{AnalyzeTiming: c.AnalyzeTiming, ids: c.ids, engines: c.engines, cat: c.cat, obs: c.obs}
	for i, eng := range c.engines {
		lc := transport.NewLocalClient(c.ids[i], eng, CostModel{})
		lc.SetObs(c.obs)
		s.clients = append(s.clients, lc)
	}
	s.coord = core.NewCoordinator(s.clients...)
	s.coord.CallTimeout = c.coord.CallTimeout
	s.coord.AllowPartial = c.coord.AllowPartial
	s.coord.Obs = c.obs
	s.coord.Checkpoints = c.coord.Checkpoints
	s.coord.Replays = c.coord.Replays
	s.coord.Health = c.coord.Health
	s.coord.PropagateDeadline = c.coord.PropagateDeadline
	return s, nil
}
