package skalla

import (
	"context"
	"fmt"

	"repro/internal/expr"
	"repro/internal/relation"
	sqlfe "repro/internal/sql"
)

// SQL parses and executes a SQL statement against the cluster:
//
//	SELECT <cols, aggregates> FROM <rel>
//	[WHERE ...] {GROUP BY ... | CUBE BY ...} [HAVING ...]
//
// GROUP BY statements compile to a distributed GMDJ query; CUBE BY
// statements run the distributed cube. HAVING is evaluated on the
// synchronized result at the coordinator (it references super-aggregates,
// which exist nowhere else). The output columns follow the select list.
func (c *Cluster) SQL(query string, opts Options) (*Relation, error) {
	return c.SQLContext(context.Background(), query, opts)
}

// SQLContext is SQL under a context: cancelling ctx (or hitting its
// deadline) aborts the distributed execution's in-flight site calls and
// returns promptly. The concurrent serve mode relies on this for
// per-query cancellation isolation.
func (c *Cluster) SQLContext(ctx context.Context, query string, opts Options) (*Relation, error) {
	st, err := sqlfe.Parse(query)
	if err != nil {
		return nil, err
	}
	if st.Explain {
		return c.sqlExplain(ctx, st, opts)
	}

	var rel *Relation
	switch {
	case st.Cube || st.Rollup:
		var sets [][]string
		if st.Cube {
			for mask := 0; mask < 1<<len(st.GroupCols); mask++ {
				var set []string
				for di := range st.GroupCols {
					if mask&(1<<di) != 0 {
						set = append(set, st.GroupCols[di])
					}
				}
				sets = append(sets, set)
			}
		} else {
			for n := len(st.GroupCols); n >= 0; n-- {
				sets = append(sets, append([]string(nil), st.GroupCols[:n]...))
			}
		}
		rel, err = groupingSets(ctx, c, st.Detail, st.GroupCols, sets, AggList(st.Aggs), st.Where, opts)
		if err != nil {
			return nil, err
		}
	default:
		q, err := st.Query()
		if err != nil {
			return nil, err
		}
		res, err := c.QueryContext(ctx, q, st.Detail, opts)
		if err != nil {
			return nil, err
		}
		rel = res.Relation
	}

	if st.Having != nil {
		rel, err = filterHaving(rel, st.Having)
		if err != nil {
			return nil, err
		}
	}
	rel, err = projectColumns(rel, st.SelectCols)
	if err != nil {
		return nil, err
	}
	if len(st.OrderBy) > 0 {
		keys := make([]relation.SortKey, len(st.OrderBy))
		for i, o := range st.OrderBy {
			keys[i] = relation.SortKey{Name: o.Col, Desc: o.Desc}
		}
		if err := rel.SortKeys(keys...); err != nil {
			return nil, fmt.Errorf("skalla: ORDER BY: %w", err)
		}
	}
	if st.Limit > 0 && rel.Len() > st.Limit {
		rel.Rows = rel.Rows[:st.Limit]
	}
	return rel, nil
}

// filterHaving keeps the result rows satisfying the HAVING predicate.
func filterHaving(rel *Relation, having expr.Expr) (*Relation, error) {
	bound, err := expr.Bind(having, expr.Binding{Detail: rel.Schema})
	if err != nil {
		return nil, fmt.Errorf("skalla: HAVING: %w", err)
	}
	out := relation.New(rel.Schema)
	for _, row := range rel.Rows {
		ok, err := bound.EvalBool(nil, row)
		if err != nil {
			return nil, fmt.Errorf("skalla: HAVING: %w", err)
		}
		if ok {
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// projectColumns reorders (and narrows) the result to the select list.
func projectColumns(rel *Relation, cols []string) (*Relation, error) {
	schema, idx, err := rel.Schema.Project(cols)
	if err != nil {
		return nil, fmt.Errorf("skalla: select list: %w", err)
	}
	out := relation.New(schema)
	out.Rows = make([]relation.Row, len(rel.Rows))
	for i, row := range rel.Rows {
		nr := make(relation.Row, len(idx))
		for j, p := range idx {
			nr[j] = row[p]
		}
		out.Rows[i] = nr
	}
	return out, nil
}
