package skalla

import (
	"fmt"

	"repro/internal/agg"
	"repro/internal/expr"
	"repro/internal/gmdj"
)

// Builder constructs GMDJ queries fluently. Errors are accumulated and
// reported by Build, so call chains stay clean.
type Builder struct {
	q   gmdj.Query
	err error
}

// NewQuery starts a query whose base-values relation is the distinct
// projection of the given detail columns (they become the key K).
func NewQuery(baseCols ...string) *Builder {
	return &Builder{q: gmdj.Query{Base: gmdj.BaseDef{Cols: baseCols}}}
}

// Where restricts the detail rows that define the base-values relation.
// The condition references the detail relation with alias F or R.
func (b *Builder) Where(cond string) *Builder {
	if b.err != nil {
		return b
	}
	e, err := expr.Parse(cond)
	if err != nil {
		b.err = fmt.Errorf("skalla: base filter: %w", err)
		return b
	}
	b.q.Base.Where = e
	return b
}

// AggList is one aggregate list l_i of a GMDJ operator.
type AggList []agg.Spec

// Aggs parses aggregate specifications like "count(*) AS cnt1" or
// "avg(F.NumBytes) AS avg_nb"; it panics on malformed input (specs are
// almost always literals — use agg.ParseSpec directly for dynamic ones).
func Aggs(specs ...string) AggList {
	out := make(AggList, len(specs))
	for i, s := range specs {
		out[i] = agg.MustParseSpec(s)
	}
	return out
}

// MD appends a GMDJ operator with a single (aggregate-list, condition)
// pair. The condition references the base with alias B and the detail
// relation with alias F or R; it may reference aggregates computed by
// earlier MDs through B (e.g. "F.NumBytes >= B.sum1 / B.cnt1").
func (b *Builder) MD(aggs AggList, cond string) *Builder {
	return b.MDMulti([]AggList{aggs}, []string{cond})
}

// MDMulti appends a GMDJ operator with several (aggregate-list,
// condition) pairs — the coalesced form with multiple grouping variables.
func (b *Builder) MDMulti(aggLists []AggList, conds []string) *Builder {
	if b.err != nil {
		return b
	}
	if len(aggLists) != len(conds) {
		b.err = fmt.Errorf("skalla: %d aggregate lists for %d conditions", len(aggLists), len(conds))
		return b
	}
	md := gmdj.MD{}
	for i, cond := range conds {
		theta, err := expr.Parse(cond)
		if err != nil {
			b.err = fmt.Errorf("skalla: condition %d: %w", i+1, err)
			return b
		}
		md.Thetas = append(md.Thetas, theta)
		md.Aggs = append(md.Aggs, aggLists[i])
	}
	b.q.MDs = append(b.q.MDs, md)
	return b
}

// Build returns the query or the first accumulated error.
func (b *Builder) Build() (Query, error) {
	if b.err != nil {
		return Query{}, b.err
	}
	if len(b.q.MDs) == 0 {
		return Query{}, fmt.Errorf("skalla: query has no GMDJ operators")
	}
	return b.q, nil
}

// MustBuild is Build but panics on error; for tests and literal queries.
func (b *Builder) MustBuild() Query {
	q, err := b.Build()
	if err != nil {
		panic(err)
	}
	return q
}

// GroupBy builds the GMDJ form of a plain SQL GROUP BY aggregate query:
//
//	SELECT cols..., aggs... FROM detail GROUP BY cols...
//
// It is the simplest OLAP query shape; the returned query has a single
// MD whose condition equates every grouping column.
func GroupBy(cols []string, aggs AggList) (Query, error) {
	if len(cols) == 0 {
		return Query{}, fmt.Errorf("skalla: GroupBy needs grouping columns")
	}
	b := NewQuery(cols...)
	var conjs []expr.Expr
	for _, c := range cols {
		conjs = append(conjs, expr.Eq(expr.Ref("F", c), expr.Ref("B", c)))
	}
	theta := expr.And(conjs...)
	b.q.MDs = append(b.q.MDs, gmdj.MD{
		Aggs:   [][]agg.Spec{aggs},
		Thetas: []expr.Expr{theta},
	})
	return b.Build()
}
