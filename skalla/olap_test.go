package skalla

import (
	"math"
	"testing"

	"repro/internal/gmdj"
	"repro/internal/relation"
	"repro/internal/value"
)

// cubeCluster loads a small, fully known dataset over 2 sites.
func cubeCluster(t *testing.T) (*Cluster, *relation.Relation) {
	t.Helper()
	cluster, err := NewLocalCluster(ClusterConfig{Sites: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	s := relation.MustSchema(
		relation.Column{Name: "Region", Kind: value.KindString},
		relation.Column{Name: "Product", Kind: value.KindString},
		relation.Column{Name: "Sales", Kind: value.KindInt},
	)
	data := []struct {
		r, p string
		s    int64
	}{
		{"east", "pen", 10}, {"east", "pen", 20}, {"east", "ink", 5},
		{"west", "pen", 7}, {"west", "ink", 3}, {"west", "ink", 9},
	}
	whole := relation.New(s)
	parts := []*relation.Relation{relation.New(s), relation.New(s)}
	for i, d := range data {
		row := relation.Row{value.NewString(d.r), value.NewString(d.p), value.NewInt(d.s)}
		whole.Rows = append(whole.Rows, row)
		parts[i%2].Rows = append(parts[i%2].Rows, row)
	}
	if err := cluster.Load("sales", parts); err != nil {
		t.Fatal(err)
	}
	return cluster, whole
}

func findCubeRow(rel *relation.Relation, region, product value.V) relation.Row {
	for _, row := range rel.Rows {
		rOK := row[0].IsNull() && region.IsNull() || value.Equal(row[0], region)
		pOK := row[1].IsNull() && product.IsNull() || value.Equal(row[1], product)
		if rOK && pOK {
			return row
		}
	}
	return nil
}

func TestCube(t *testing.T) {
	cluster, _ := cubeCluster(t)
	cube, err := Cube(cluster, "sales", []string{"Region", "Product"},
		Aggs("count(*) AS n", "sum(F.Sales) AS total", "avg(F.Sales) AS mean"),
		AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	// Cuboids: (R,P)=4 groups, (R)=2, (P)=2, ()=1 → 9 rows.
	if cube.Len() != 9 {
		t.Fatalf("cube rows = %d, want 9\n%s", cube.Len(), cube)
	}
	checks := []struct {
		region, product value.V
		n, total        int64
		mean            float64
	}{
		{value.NewString("east"), value.NewString("pen"), 2, 30, 15},
		{value.NewString("west"), value.NewString("ink"), 2, 12, 6},
		{value.NewString("east"), CubeAll, 3, 35, 35.0 / 3},
		{CubeAll, value.NewString("ink"), 3, 17, 17.0 / 3},
		{CubeAll, CubeAll, 6, 54, 9},
	}
	for _, c := range checks {
		row := findCubeRow(cube, c.region, c.product)
		if row == nil {
			t.Errorf("cuboid row (%v, %v) missing", c.region, c.product)
			continue
		}
		n, _ := row[2].AsInt()
		total, _ := row[3].AsInt()
		mean, _ := row[4].AsFloat()
		if n != c.n || total != c.total || math.Abs(mean-c.mean) > 1e-9 {
			t.Errorf("cuboid (%v, %v) = (n=%d, total=%d, mean=%v), want (%d, %d, %v)",
				c.region, c.product, n, total, mean, c.n, c.total, c.mean)
		}
	}
}

func TestCubeVariance(t *testing.T) {
	cluster, whole := cubeCluster(t)
	cube, err := Cube(cluster, "sales", []string{"Region"},
		Aggs("var(F.Sales) AS v", "min(F.Sales) AS lo", "max(F.Sales) AS hi"),
		AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	// Grand-total variance must match a direct computation.
	var sum, sumsq float64
	for _, row := range whole.Rows {
		f, _ := row[2].AsFloat()
		sum += f
		sumsq += f * f
	}
	n := float64(whole.Len())
	wantVar := sumsq/n - (sum/n)*(sum/n)
	var row relation.Row
	for _, r := range cube.Rows {
		if r[0].IsNull() {
			row = r
			break
		}
	}
	if row == nil {
		t.Fatal("grand total row missing")
	}
	v, _ := row[1].AsFloat()
	if math.Abs(v-wantVar) > 1e-9 {
		t.Errorf("cube var = %v, want %v", v, wantVar)
	}
	lo, _ := row[2].AsInt()
	hi, _ := row[3].AsInt()
	if lo != 3 || hi != 20 {
		t.Errorf("cube min/max = %d/%d, want 3/20", lo, hi)
	}
}

func TestCubeMatchesPerCuboidQueries(t *testing.T) {
	cluster, whole := cubeCluster(t)
	cube, err := Cube(cluster, "sales", []string{"Region", "Product"},
		Aggs("count(*) AS n", "avg(F.Sales) AS mean"), AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	// Every non-ALL cuboid must equal the direct GROUP BY on that subset.
	for _, dims := range [][]string{{"Region"}, {"Product"}, {"Region", "Product"}} {
		q, err := GroupBy(dims, Aggs("count(*) AS n", "avg(F.Sales) AS mean"))
		if err != nil {
			t.Fatal(err)
		}
		want, err := gmdj.EvalQuery(whole, q)
		if err != nil {
			t.Fatal(err)
		}
		for _, wrow := range want.Rows {
			region, product := value.Null, value.Null
			for i, d := range dims {
				if d == "Region" {
					region = wrow[i]
				} else {
					product = wrow[i]
				}
			}
			got := findCubeRow(cube, region, product)
			if got == nil {
				t.Fatalf("cuboid row (%v,%v) missing", region, product)
			}
			wn, _ := wrow[len(dims)].AsInt()
			gn, _ := got[2].AsInt()
			wm, _ := wrow[len(dims)+1].AsFloat()
			gm, _ := got[3].AsFloat()
			if gn != wn || math.Abs(gm-wm) > 1e-9 {
				t.Errorf("cuboid (%v,%v): (%d,%v) want (%d,%v)", region, product, gn, gm, wn, wm)
			}
		}
	}
}

func TestCubeErrors(t *testing.T) {
	cluster, _ := cubeCluster(t)
	if _, err := Cube(cluster, "sales", nil, Aggs("count(*) AS n"), NoOptimizations); err == nil {
		t.Error("cube without dimensions accepted")
	}
	if _, err := Cube(cluster, "sales", []string{"Region"}, Aggs("countd(F.Sales) AS u"), NoOptimizations); err == nil {
		t.Error("cube with countd accepted")
	}
	if _, err := Cube(cluster, "sales", []string{"Nope"}, Aggs("count(*) AS n"), NoOptimizations); err == nil {
		t.Error("cube with unknown dimension accepted")
	}
	many := make([]string, 13)
	for i := range many {
		many[i] = "Region"
	}
	if _, err := Cube(cluster, "sales", many, Aggs("count(*) AS n"), NoOptimizations); err == nil {
		t.Error("13-dimension cube accepted")
	}
}

func TestUnpivot(t *testing.T) {
	s := relation.MustSchema(
		relation.Column{Name: "Hour", Kind: value.KindInt},
		relation.Column{Name: "web", Kind: value.KindInt},
		relation.Column{Name: "mail", Kind: value.KindInt},
	)
	rel := relation.New(s)
	rel.MustAppend(value.NewInt(0), value.NewInt(10), value.NewInt(2))
	rel.MustAppend(value.NewInt(1), value.NewInt(20), value.NewInt(4))

	out, err := Unpivot(rel, []string{"Hour"}, []string{"web", "mail"}, "kind", "flows")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 {
		t.Fatalf("unpivot rows = %d, want 4", out.Len())
	}
	if out.Rows[0][1].S != "web" || out.Rows[0][2].I != 10 {
		t.Errorf("row 0 = %v", out.Rows[0])
	}
	if out.Rows[1][1].S != "mail" || out.Rows[1][2].I != 2 {
		t.Errorf("row 1 = %v", out.Rows[1])
	}
	if _, err := Unpivot(rel, []string{"Hour"}, nil, "k", "v"); err == nil {
		t.Error("unpivot without value columns accepted")
	}
	if _, err := Unpivot(rel, []string{"Nope"}, []string{"web"}, "k", "v"); err == nil {
		t.Error("unpivot with bad key accepted")
	}
}

// TestMultiFeatureQuery expresses a multi-feature query [Ross et al.]:
// per region, the count of rows whose sales equal the region maximum.
func TestMultiFeatureQuery(t *testing.T) {
	cluster, whole := cubeCluster(t)
	q := NewQuery("Region").
		MD(Aggs("max(F.Sales) AS mx"), "F.Region = B.Region").
		MD(Aggs("count(*) AS at_max"), "F.Region = B.Region AND F.Sales = B.mx").
		MustBuild()
	res, err := cluster.Query(q, "sales", AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	want, err := gmdj.EvalQuery(whole, q)
	if err != nil {
		t.Fatal(err)
	}
	res.Relation.SortBy("Region")
	want.SortBy("Region")
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if !value.Equal(res.Relation.Rows[i][j], want.Rows[i][j]) {
				t.Errorf("row %d col %d: %v != %v", i, j, res.Relation.Rows[i][j], want.Rows[i][j])
			}
		}
	}
}

func TestRollup(t *testing.T) {
	cluster, _ := cubeCluster(t)
	r, err := Rollup(cluster, "sales", []string{"Region", "Product"},
		Aggs("count(*) AS n", "sum(F.Sales) AS total"), AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	// Sets: (R,P)=4 rows, (R)=2, ()=1 → 7 rows; no (Product)-only set.
	if r.Len() != 7 {
		t.Fatalf("rollup rows = %d, want 7\n%s", r.Len(), r)
	}
	for _, row := range r.Rows {
		if row[0].IsNull() && !row[1].IsNull() {
			t.Errorf("rollup produced a product-only set: %v", row)
		}
	}
	// Region subtotals present.
	east := findCubeRow(r, value.NewString("east"), CubeAll)
	if east == nil || east[2].I != 3 {
		t.Errorf("east subtotal: %v", east)
	}
}

func TestGroupingSets(t *testing.T) {
	cluster, whole := cubeCluster(t)
	gs, err := GroupingSets(cluster, "sales", []string{"Region", "Product"},
		[][]string{{"Product"}, {}},
		Aggs("sum(F.Sales) AS total"), AllOptimizations)
	if err != nil {
		t.Fatal(err)
	}
	// (Product)=2 rows + grand total = 3.
	if gs.Len() != 3 {
		t.Fatalf("grouping sets rows = %d, want 3\n%s", gs.Len(), gs)
	}
	var grand int64
	for _, row := range whole.Rows {
		grand += row[2].I
	}
	total := findCubeRow(gs, CubeAll, CubeAll)
	if total == nil {
		t.Fatal("grand total missing")
	}
	if got, _ := total[2].AsInt(); got != grand {
		t.Errorf("grand total = %d, want %d", got, grand)
	}
	// Errors.
	if _, err := GroupingSets(cluster, "sales", []string{"Region"}, [][]string{{"Nope"}},
		Aggs("count(*) AS n"), NoOptimizations); err == nil {
		t.Error("unknown set column accepted")
	}
	if _, err := GroupingSets(cluster, "sales", nil, nil, Aggs("count(*) AS n"), NoOptimizations); err == nil {
		t.Error("empty sets accepted")
	}
	if _, err := Rollup(cluster, "sales", nil, Aggs("count(*) AS n"), NoOptimizations); err == nil {
		t.Error("rollup without dims accepted")
	}
}
