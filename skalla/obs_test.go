package skalla

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
)

// TestClusterObservability runs one distributed query over real TCP
// sites with an Obs sink wired through every tier, then checks the two
// core guarantees: the coordinator's logical byte counters equal the
// ExecStats totals exactly, and the trace contains query/round/rpc
// spans on per-site tracks.
func TestClusterObservability(t *testing.T) {
	for _, useTCP := range []bool{false, true} {
		o := obs.New()
		cluster, err := NewLocalCluster(ClusterConfig{Sites: 3, UseTCP: useTCP, Obs: o})
		if err != nil {
			t.Fatal(err)
		}
		parts, _ := flowParts(3)
		if err := cluster.Load("flow", parts); err != nil {
			cluster.Close()
			t.Fatal(err)
		}
		res, err := cluster.Query(example1(), "flow", AllOptimizations)
		cluster.Close()
		if err != nil {
			t.Fatal(err)
		}
		stats := res.Stats

		// The coordinator publishes its per-round counters from ExecStats
		// itself, so these must match to the byte.
		var wantTo, wantFrom int64
		for _, r := range stats.Rounds {
			wantTo += r.BytesToSites
			wantFrom += r.BytesFromSites
		}
		m := o.Metrics
		if got := m.CounterValue("coord.bytes_to_sites"); got != wantTo {
			t.Errorf("useTCP=%v: coord.bytes_to_sites = %d, ExecStats says %d", useTCP, got, wantTo)
		}
		if got := m.CounterValue("coord.bytes_from_sites"); got != wantFrom {
			t.Errorf("useTCP=%v: coord.bytes_from_sites = %d, ExecStats says %d", useTCP, got, wantFrom)
		}
		if got := m.CounterValue("coord.rounds"); got != int64(len(stats.Rounds)) {
			t.Errorf("useTCP=%v: coord.rounds = %d, want %d", useTCP, got, len(stats.Rounds))
		}
		if got := m.CounterValue("coord.queries"); got != 1 {
			t.Errorf("useTCP=%v: coord.queries = %d, want 1", useTCP, got)
		}
		// The raw transport counters include non-round ops (load), so
		// they bound the logical totals from above.
		if raw := m.CounterValue("transport.bytes_sent"); raw < wantTo {
			t.Errorf("useTCP=%v: transport.bytes_sent = %d < coord total %d", useTCP, raw, wantTo)
		}
		if got := m.CounterValue("site.rounds_served"); got == 0 {
			t.Errorf("useTCP=%v: site.rounds_served not published", useTCP)
		}

		// Trace structure: a query span, at least one round span, and one
		// rpc span per site track.
		var buf bytes.Buffer
		if err := o.Tracer.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		var trace struct {
			TraceEvents []struct {
				Name string            `json:"name"`
				Ph   string            `json:"ph"`
				Args map[string]string `json:"args"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
			t.Fatalf("invalid trace JSON: %v", err)
		}
		var haveQuery, haveRound, haveRPC bool
		siteTracks := map[string]bool{}
		for _, e := range trace.TraceEvents {
			switch {
			case e.Ph == "M" && strings.HasPrefix(e.Args["name"], "site:"):
				siteTracks[e.Args["name"]] = true
			case e.Name == "query":
				haveQuery = true
			case strings.HasPrefix(e.Name, "round:"):
				haveRound = true
			case strings.HasPrefix(e.Name, "rpc:"):
				haveRPC = true
			}
		}
		if !haveQuery || !haveRound || !haveRPC {
			t.Errorf("useTCP=%v: trace missing spans: query=%v round=%v rpc=%v",
				useTCP, haveQuery, haveRound, haveRPC)
		}
		if len(siteTracks) != 3 {
			t.Errorf("useTCP=%v: %d site tracks, want 3: %v", useTCP, len(siteTracks), siteTracks)
		}
	}
}

// TestClusterObservabilityPartial checks degraded executions surface
// site-lost and partial events with lost-site attribution.
func TestClusterObservabilityPartial(t *testing.T) {
	parts, _ := flowParts(2)
	var sites []string
	var servers [][]*transport.Server
	for i := range parts {
		entry, srvs := startFlowSite(t, fmt.Sprintf("site%d", i), parts[i], 1)
		sites = append(sites, entry)
		servers = append(servers, srvs)
	}
	o := obs.New()
	cluster, err := ConnectWith(ConnectConfig{
		Sites:        sites,
		Attempts:     1,
		Backoff:      time.Millisecond,
		CallTimeout:  10 * time.Second,
		AllowPartial: true,
		Obs:          o,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	servers[1][0].Close() // site1 is gone, no replica

	res, err := cluster.Query(example1(), "flow", NoOptimizations)
	if err != nil {
		t.Fatalf("degraded query: %v", err)
	}
	if !res.Stats.Partial() {
		t.Fatal("stats do not mark the result partial")
	}
	if got := o.Events.CountKind(obs.EventSiteLost); got == 0 {
		t.Error("no site-lost events for a partial execution")
	}
	for _, e := range o.Events.ByKind(obs.EventSiteLost) {
		if e.Site != "site1" {
			t.Errorf("site-lost event names %q, want site1", e.Site)
		}
	}
	if got := o.Events.CountKind(obs.EventPartial); got != 1 {
		t.Errorf("partial events = %d, want 1", got)
	}
	if got := o.Metrics.CounterValue("coord.queries_partial"); got != 1 {
		t.Errorf("coord.queries_partial = %d, want 1", got)
	}
	if got := o.Metrics.CounterValue("coord.sites_lost"); got == 0 {
		t.Error("coord.sites_lost not published")
	}
}
