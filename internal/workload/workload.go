// Package workload drives concurrent OLAP query mixes against a Skalla
// cluster and reports throughput and latency percentiles — the load
// characterization a production distributed warehouse needs beyond the
// paper's single-query experiments.
//
// A workload is a weighted mix of query templates; each worker runs on
// its own cluster session (independent connections over the shared
// sites), draws templates by weight, and records per-template latencies.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/skalla"
)

// Template is one query shape in the mix.
type Template struct {
	// Name labels the template in the report.
	Name string
	// Weight is the relative draw probability (default 1).
	Weight int
	// Query builds the query; rng lets templates vary parameters (e.g.
	// filter constants) across draws.
	Query func(rng *rand.Rand) skalla.Query
}

// Config parameterizes a run.
type Config struct {
	// Detail names the fact relation at the sites.
	Detail string
	// Workers is the number of concurrent query streams (default 4).
	Workers int
	// Iterations is the total number of queries to run (default 100).
	Iterations int
	// Opts are the optimizer options for every query.
	Opts skalla.Options
	// Seed drives template choice and parameter variation.
	Seed int64
}

// Stats accumulates latency observations for one template (or the total).
type Stats struct {
	Count     int
	Errors    int
	latencies []time.Duration
	total     time.Duration
}

func (s *Stats) add(d time.Duration, err error) {
	s.Count++
	if err != nil {
		s.Errors++
		return
	}
	s.latencies = append(s.latencies, d)
	s.total += d
}

func (s *Stats) merge(o *Stats) {
	s.Count += o.Count
	s.Errors += o.Errors
	s.latencies = append(s.latencies, o.latencies...)
	s.total += o.total
}

// Mean returns the mean latency of successful queries.
func (s *Stats) Mean() time.Duration {
	n := len(s.latencies)
	if n == 0 {
		return 0
	}
	return s.total / time.Duration(n)
}

// Percentile returns the p-th (0..100) latency percentile.
func (s *Stats) Percentile(p float64) time.Duration {
	if len(s.latencies) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), s.latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

// Result is a completed run.
type Result struct {
	Wall     time.Duration
	PerQuery map[string]*Stats
	Total    *Stats
	Workers  int
	FirstErr error
}

// QPS returns successful queries per second over the run.
func (r *Result) QPS() float64 {
	if r.Wall <= 0 {
		return 0
	}
	ok := len(r.Total.latencies)
	return float64(ok) / r.Wall.Seconds()
}

// Run executes the mix. Queries spread over Workers concurrent sessions;
// iteration counts split evenly (remainder to the first workers).
func Run(cluster *skalla.Cluster, templates []Template, cfg Config) (*Result, error) {
	if len(templates) == 0 {
		return nil, fmt.Errorf("workload: no templates")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 100
	}
	if cfg.Detail == "" {
		return nil, fmt.Errorf("workload: no detail relation")
	}
	totalWeight := 0
	for i := range templates {
		if templates[i].Weight <= 0 {
			templates[i].Weight = 1
		}
		totalWeight += templates[i].Weight
	}

	type workerOut struct {
		per map[string]*Stats
		err error
	}
	outs := make([]workerOut, cfg.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		iters := cfg.Iterations / cfg.Workers
		if w < cfg.Iterations%cfg.Workers {
			iters++
		}
		wg.Add(1)
		go func(w, iters int) {
			defer wg.Done()
			out := workerOut{per: map[string]*Stats{}}
			defer func() { outs[w] = out }()

			session, err := cluster.Session()
			if err != nil {
				// Remote clusters: share the parent's connections
				// (correct, just serialized).
				session = cluster
			} else {
				defer session.Close()
			}
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			for i := 0; i < iters; i++ {
				tpl := pick(templates, totalWeight, rng)
				st, ok := out.per[tpl.Name]
				if !ok {
					st = &Stats{}
					out.per[tpl.Name] = st
				}
				q := tpl.Query(rng)
				t0 := time.Now()
				_, err := session.Query(q, cfg.Detail, cfg.Opts)
				st.add(time.Since(t0), err)
				if err != nil && out.err == nil {
					out.err = fmt.Errorf("workload: %s: %w", tpl.Name, err)
				}
			}
		}(w, iters)
	}
	wg.Wait()

	res := &Result{
		Wall: time.Since(start), Workers: cfg.Workers,
		PerQuery: map[string]*Stats{}, Total: &Stats{},
	}
	for _, out := range outs {
		if out.err != nil && res.FirstErr == nil {
			res.FirstErr = out.err
		}
		for name, st := range out.per {
			agg, ok := res.PerQuery[name]
			if !ok {
				agg = &Stats{}
				res.PerQuery[name] = agg
			}
			agg.merge(st)
			res.Total.merge(st)
		}
	}
	return res, nil
}

func pick(templates []Template, totalWeight int, rng *rand.Rand) *Template {
	n := rng.Intn(totalWeight)
	for i := range templates {
		n -= templates[i].Weight
		if n < 0 {
			return &templates[i]
		}
	}
	return &templates[len(templates)-1]
}

// String renders the report.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload: %d queries over %d workers in %s (%.1f q/s, %d errors)\n",
		r.Total.Count, r.Workers, r.Wall.Round(time.Millisecond), r.QPS(), r.Total.Errors)
	names := make([]string, 0, len(r.PerQuery))
	for n := range r.PerQuery {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "%-24s %7s %7s %10s %10s %10s %10s\n",
		"template", "count", "errors", "mean", "p50", "p95", "p99")
	rows := append(names, "TOTAL")
	for _, n := range rows {
		st := r.Total
		if n != "TOTAL" {
			st = r.PerQuery[n]
		}
		fmt.Fprintf(&b, "%-24s %7d %7d %10s %10s %10s %10s\n",
			n, st.Count, st.Errors,
			st.Mean().Round(time.Microsecond),
			st.Percentile(50).Round(time.Microsecond),
			st.Percentile(95).Round(time.Microsecond),
			st.Percentile(99).Round(time.Microsecond))
	}
	return b.String()
}

// TPCRMix returns a representative mix over the TPCR dataset: a light
// per-segment report, a heavier per-customer report, a correlated
// two-GMDJ analysis, and a parameterized filtered scan.
func TPCRMix() []Template {
	return []Template{
		{
			Name: "segment-report", Weight: 4,
			Query: func(*rand.Rand) skalla.Query {
				q, _ := skalla.GroupBy([]string{"MktSegment"},
					skalla.Aggs("count(*) AS lines", "avg(F.ExtendedPrice) AS avg_price"))
				return q
			},
		},
		{
			Name: "customer-report", Weight: 2,
			Query: func(*rand.Rand) skalla.Query {
				q, _ := skalla.GroupBy([]string{"CustName"},
					skalla.Aggs("count(*) AS lines", "sum(F.Quantity) AS qty"))
				return q
			},
		},
		{
			Name: "correlated-analysis", Weight: 1,
			Query: func(*rand.Rand) skalla.Query {
				return skalla.NewQuery("CustName").
					MD(skalla.Aggs("count(*) AS n", "avg(F.Quantity) AS aq"),
						"F.CustName = B.CustName").
					MD(skalla.Aggs("count(*) AS big"),
						"F.CustName = B.CustName AND F.Quantity >= B.aq").
					MustBuild()
			},
		},
		{
			Name: "filtered-region", Weight: 3,
			Query: func(rng *rand.Rand) skalla.Query {
				region := rng.Intn(5)
				return skalla.NewQuery("NationKey").
					Where(fmt.Sprintf("F.RegionKey = %d", region)).
					MD(skalla.Aggs("count(*) AS lines", "sum(F.ExtendedPrice) AS revenue"),
						fmt.Sprintf("F.NationKey = B.NationKey AND F.RegionKey = %d", region)).
					MustBuild()
			},
		},
	}
}
