package workload

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/tpcr"
	"repro/skalla"
)

func testCluster(t *testing.T) *skalla.Cluster {
	t.Helper()
	cluster, err := skalla.NewLocalCluster(skalla.ClusterConfig{Sites: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	cfg := tpcr.Config{Rows: 3000, Customers: 60, Seed: 2}
	if _, err := cluster.Generate("tpcr", "tpcr", tpcr.GenParams(cfg)); err != nil {
		t.Fatal(err)
	}
	if err := tpcr.FillCatalog(cluster.Catalog(), cluster.SiteIDs(), cfg); err != nil {
		t.Fatal(err)
	}
	return cluster
}

func TestRunMix(t *testing.T) {
	cluster := testCluster(t)
	res, err := Run(cluster, TPCRMix(), Config{
		Detail: "tpcr", Workers: 3, Iterations: 30,
		Opts: skalla.AllOptimizations, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstErr != nil {
		t.Fatalf("query errors: %v", res.FirstErr)
	}
	if res.Total.Count != 30 || res.Total.Errors != 0 {
		t.Errorf("total: %+v", res.Total)
	}
	if res.QPS() <= 0 {
		t.Error("no throughput")
	}
	// Every weighted template should have been drawn at least once with
	// 30 iterations and weights 4/2/1/3.
	if len(res.PerQuery) < 3 {
		t.Errorf("templates drawn: %d", len(res.PerQuery))
	}
	report := res.String()
	for _, want := range []string{"TOTAL", "p95", "q/s"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestRunErrorsSurfaceButDoNotAbort(t *testing.T) {
	cluster := testCluster(t)
	bad := []Template{{
		Name: "bad",
		Query: func(*rand.Rand) skalla.Query {
			q, _ := skalla.GroupBy([]string{"Nope"}, skalla.Aggs("count(*) AS c"))
			return q
		},
	}}
	res, err := Run(cluster, bad, Config{Detail: "tpcr", Workers: 2, Iterations: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstErr == nil || res.Total.Errors != 6 {
		t.Errorf("errors not recorded: %+v first=%v", res.Total, res.FirstErr)
	}
}

func TestRunValidation(t *testing.T) {
	cluster := testCluster(t)
	if _, err := Run(cluster, nil, Config{Detail: "tpcr"}); err == nil {
		t.Error("empty template list accepted")
	}
	if _, err := Run(cluster, TPCRMix(), Config{}); err == nil {
		t.Error("missing detail relation accepted")
	}
}

func TestStats(t *testing.T) {
	s := &Stats{}
	for i := 1; i <= 100; i++ {
		s.add(time.Duration(i)*time.Millisecond, nil)
	}
	if s.Mean() != 50500*time.Microsecond {
		t.Errorf("mean = %v", s.Mean())
	}
	if p := s.Percentile(50); p < 49*time.Millisecond || p > 51*time.Millisecond {
		t.Errorf("p50 = %v", p)
	}
	if p := s.Percentile(99); p < 98*time.Millisecond || p > 100*time.Millisecond {
		t.Errorf("p99 = %v", p)
	}
	empty := &Stats{}
	if empty.Mean() != 0 || empty.Percentile(95) != 0 {
		t.Error("empty stats not zero")
	}
}

func TestDeterministicDraws(t *testing.T) {
	// Same seed → same template draw sequence (per worker).
	tmpl := TPCRMix()
	total := 0
	for i := range tmpl {
		total += tmpl[i].Weight
	}
	rng1 := rand.New(rand.NewSource(9))
	rng2 := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		if pick(tmpl, total, rng1).Name != pick(tmpl, total, rng2).Name {
			t.Fatal("draws not deterministic")
		}
	}
}
