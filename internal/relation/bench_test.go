package relation

import (
	"math/rand"
	"testing"

	"repro/internal/value"
)

func benchRelation(n int) *Relation {
	rng := rand.New(rand.NewSource(1))
	r := New(MustSchema(
		Column{Name: "a", Kind: value.KindInt},
		Column{Name: "b", Kind: value.KindInt},
		Column{Name: "c", Kind: value.KindString},
	))
	r.Rows = make([]Row, n)
	for i := range r.Rows {
		r.Rows[i] = Row{
			value.NewInt(int64(rng.Intn(100))),
			value.NewInt(int64(rng.Intn(1000))),
			value.NewString("payload"),
		}
	}
	return r
}

func BenchmarkRowKey(b *testing.B) {
	r := benchRelation(1)
	idx := []int{0, 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = RowKey(r.Rows[0], idx)
	}
}

// BenchmarkHashRow is the allocation-free replacement for RowKey on the
// grouping hot paths; compare its allocs/op against BenchmarkRowKey.
func BenchmarkHashRow(b *testing.B) {
	r := benchRelation(1)
	idx := []int{0, 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = HashRow(r.Rows[0], idx)
	}
}

func BenchmarkDistinctProject(b *testing.B) {
	r := benchRelation(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.DistinctProject([]string{"a", "b"}); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(r.Len()))
}

func BenchmarkBuildIndex(b *testing.B) {
	r := benchRelation(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.BuildIndex([]string{"a"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSortBy(b *testing.B) {
	src := benchRelation(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		r := src.Clone()
		b.StartTimer()
		if err := r.SortBy("a", "b"); err != nil {
			b.Fatal(err)
		}
	}
}
