package relation

import (
	"strings"
	"testing"

	"repro/internal/value"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema(
		Column{"SourceAS", value.KindInt},
		Column{"DestAS", value.KindInt},
		Column{"NumBytes", value.KindFloat},
		Column{"Router", value.KindString},
	)
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema(Column{"a", value.KindInt}, Column{"A", value.KindInt}); err == nil {
		t.Error("duplicate (case-insensitive) columns accepted")
	}
	if _, err := NewSchema(Column{"", value.KindInt}); err == nil {
		t.Error("empty column name accepted")
	}
}

func TestSchemaLookup(t *testing.T) {
	s := testSchema(t)
	if i, ok := s.Lookup("destas"); !ok || i != 1 {
		t.Errorf("Lookup(destas) = %d, %v", i, ok)
	}
	if _, ok := s.Lookup("nope"); ok {
		t.Error("Lookup(nope) succeeded")
	}
	if _, err := s.MustLookup("nope"); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("MustLookup error should name the column: %v", err)
	}
}

func TestSchemaLookupAfterGob(t *testing.T) {
	// Simulate a schema arriving over the wire without the private index.
	s := &Schema{Cols: testSchema(t).Cols}
	if i, ok := s.Lookup("NumBytes"); !ok || i != 2 {
		t.Errorf("Lookup on rebuilt schema = %d, %v", i, ok)
	}
}

func TestSchemaProjectAndConcat(t *testing.T) {
	s := testSchema(t)
	p, idx, err := s.Project([]string{"DestAS", "SourceAS"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || idx[0] != 1 || idx[1] != 0 {
		t.Errorf("Project = %s idx %v", p, idx)
	}
	if _, _, err := s.Project([]string{"missing"}); err == nil {
		t.Error("Project(missing) should error")
	}
	c, err := s.Concat(Column{"cnt", value.KindInt})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 5 {
		t.Errorf("Concat len = %d", c.Len())
	}
	if _, err := s.Concat(Column{"sourceas", value.KindInt}); err == nil {
		t.Error("Concat duplicate should error")
	}
}

func TestSchemaEqual(t *testing.T) {
	a, b := testSchema(t), testSchema(t)
	if !a.Equal(b) {
		t.Error("identical schemas not Equal")
	}
	c := MustSchema(Column{"SourceAS", value.KindFloat})
	if a.Equal(c) {
		t.Error("different schemas Equal")
	}
}

func mkRel(t *testing.T) *Relation {
	t.Helper()
	r := New(testSchema(t))
	r.MustAppend(value.NewInt(1), value.NewInt(10), value.NewFloat(100), value.NewString("r1"))
	r.MustAppend(value.NewInt(1), value.NewInt(10), value.NewFloat(50), value.NewString("r1"))
	r.MustAppend(value.NewInt(2), value.NewInt(20), value.NewFloat(75), value.NewString("r2"))
	r.MustAppend(value.NewInt(1), value.NewInt(20), value.NewFloat(25), value.NewString("r2"))
	return r
}

func TestAppendArity(t *testing.T) {
	r := New(testSchema(t))
	if err := r.Append(Row{value.NewInt(1)}); err == nil {
		t.Error("short row accepted")
	}
}

func TestDistinctProject(t *testing.T) {
	r := mkRel(t)
	p, err := r.DistinctProject([]string{"SourceAS", "DestAS"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Errorf("distinct project rows = %d, want 3", p.Len())
	}
	// First-seen order preserved.
	if p.Rows[0][0].I != 1 || p.Rows[0][1].I != 10 {
		t.Errorf("first row = %v", p.Rows[0])
	}
}

func TestUnion(t *testing.T) {
	a, b := mkRel(t), mkRel(t)
	if err := a.Union(b); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 8 {
		t.Errorf("union len = %d", a.Len())
	}
	other := New(MustSchema(Column{"x", value.KindInt}))
	if err := a.Union(other); err == nil {
		t.Error("union with mismatched schema accepted")
	}
}

func TestSortBy(t *testing.T) {
	r := mkRel(t)
	if err := r.SortBy("SourceAS", "DestAS"); err != nil {
		t.Fatal(err)
	}
	want := [][2]int64{{1, 10}, {1, 10}, {1, 20}, {2, 20}}
	for i, w := range want {
		if r.Rows[i][0].I != w[0] || r.Rows[i][1].I != w[1] {
			t.Errorf("row %d = (%v,%v), want %v", i, r.Rows[i][0], r.Rows[i][1], w)
		}
	}
	if err := r.SortBy("missing"); err == nil {
		t.Error("SortBy(missing) should error")
	}
}

func TestIndex(t *testing.T) {
	r := mkRel(t)
	ix, err := r.BuildIndex([]string{"SourceAS", "DestAS"})
	if err != nil {
		t.Fatal(err)
	}
	pos := ix.LookupKey([]value.V{value.NewInt(1), value.NewInt(10)})
	if len(pos) != 2 {
		t.Errorf("lookup (1,10) = %v, want 2 rows", pos)
	}
	if got := ix.LookupKey([]value.V{value.NewInt(9), value.NewInt(9)}); got != nil {
		t.Errorf("lookup missing key = %v", got)
	}
}

func TestClone(t *testing.T) {
	r := mkRel(t)
	c := r.Clone()
	c.Rows[0][0] = value.NewInt(99)
	if r.Rows[0][0].I == 99 {
		t.Error("clone shares row storage")
	}
}

func TestRowKeyDistinguishes(t *testing.T) {
	a := Row{value.NewInt(1), value.NewString("23")}
	b := Row{value.NewInt(12), value.NewString("3")}
	if RowKey(a, []int{0, 1}) == RowKey(b, []int{0, 1}) {
		t.Error("row keys collide across field boundaries")
	}
}

func TestFormat(t *testing.T) {
	r := mkRel(t)
	s := r.Format(2)
	if !strings.Contains(s, "SourceAS") || !strings.Contains(s, "2 more rows") {
		t.Errorf("Format output unexpected:\n%s", s)
	}
}

func TestSortKeysDesc(t *testing.T) {
	r := mkRel(t)
	if err := r.SortKeys(SortKey{Name: "NumBytes", Desc: true}); err != nil {
		t.Fatal(err)
	}
	want := []float64{100, 75, 50, 25}
	for i, w := range want {
		if r.Rows[i][2].F != w {
			t.Errorf("row %d NumBytes = %v, want %v", i, r.Rows[i][2], w)
		}
	}
	// Mixed directions: SourceAS asc, NumBytes desc.
	if err := r.SortKeys(SortKey{Name: "SourceAS"}, SortKey{Name: "NumBytes", Desc: true}); err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 1 || r.Rows[0][2].F != 100 {
		t.Errorf("first row = %v", r.Rows[0])
	}
	if err := r.SortKeys(SortKey{Name: "missing"}); err == nil {
		t.Error("SortKeys(missing) should error")
	}
}
