package relation

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/value"
)

func TestCSVRoundTrip(t *testing.T) {
	r := mkRel(t)
	r.Rows[1][2] = value.Null // exercise NULL round trip
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, r.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != r.Len() {
		t.Fatalf("round trip rows = %d, want %d", back.Len(), r.Len())
	}
	for i := range r.Rows {
		for j := range r.Rows[i] {
			if !value.Equal(r.Rows[i][j], back.Rows[i][j]) &&
				!(r.Rows[i][j].IsNull() && back.Rows[i][j].IsNull()) {
				t.Errorf("row %d col %d: %v != %v", i, j, r.Rows[i][j], back.Rows[i][j])
			}
		}
	}
}

func TestReadCSVHeaderMismatch(t *testing.T) {
	s := testSchema(t)
	in := "Wrong,DestAS,NumBytes,Router\n1,2,3,x\n"
	if _, err := ReadCSV(strings.NewReader(in), s); err == nil {
		t.Error("mismatched header accepted")
	}
	in = "SourceAS,DestAS\n1,2\n"
	if _, err := ReadCSV(strings.NewReader(in), s); err == nil {
		t.Error("short header accepted")
	}
}

func TestReadCSVBadField(t *testing.T) {
	s := testSchema(t)
	in := "SourceAS,DestAS,NumBytes,Router\nnotanint,2,3,x\n"
	_, err := ReadCSV(strings.NewReader(in), s)
	if err == nil || !strings.Contains(err.Error(), "SourceAS") {
		t.Errorf("bad int field: err = %v, should name column", err)
	}
}

func TestReadCSVBoolAndNull(t *testing.T) {
	s := MustSchema(Column{"flag", value.KindBool}, Column{"n", value.KindInt})
	in := "flag,n\ntrue,\nfalse,7\n"
	r, err := ReadCSV(strings.NewReader(in), s)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Rows[0][0].Bool() || !r.Rows[0][1].IsNull() {
		t.Errorf("row 0 = %v", r.Rows[0])
	}
	if r.Rows[1][0].Bool() || r.Rows[1][1].I != 7 {
		t.Errorf("row 1 = %v", r.Rows[1])
	}
}
