package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/value"
)

// WriteCSV writes the relation with a header row. Values render with
// value.V.String; NULL is written as the empty field.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Schema.Names()); err != nil {
		return fmt.Errorf("relation: write csv header: %w", err)
	}
	rec := make([]string, r.Schema.Len())
	for _, row := range r.Rows {
		for i, v := range row {
			if v.IsNull() {
				rec[i] = ""
			} else {
				rec[i] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("relation: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads rows into a relation over the given schema. The input must
// start with a header row matching the schema's column names in order.
// Fields are parsed according to the schema's column kinds; empty fields
// become NULL.
func ReadCSV(r io.Reader, s *Schema) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	head, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: read csv header: %w", err)
	}
	if len(head) != s.Len() {
		return nil, fmt.Errorf("relation: csv header has %d fields, schema has %d", len(head), s.Len())
	}
	for i, h := range head {
		if _, ok := s.Lookup(h); !ok || s.Cols[i].Name != h && !equalFold(s.Cols[i].Name, h) {
			return nil, fmt.Errorf("relation: csv header field %d is %q, want %q", i, h, s.Cols[i].Name)
		}
	}
	out := New(s)
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("relation: read csv: %w", err)
		}
		line++
		row := make(Row, s.Len())
		for i, f := range rec {
			v, err := parseField(f, s.Cols[i].Kind)
			if err != nil {
				return nil, fmt.Errorf("relation: csv line %d column %q: %w", line, s.Cols[i].Name, err)
			}
			row[i] = v
		}
		out.Rows = append(out.Rows, row)
	}
}

func parseField(f string, k value.Kind) (value.V, error) {
	if f == "" {
		return value.Null, nil
	}
	switch k {
	case value.KindInt:
		i, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return value.Null, fmt.Errorf("parse int %q: %w", f, err)
		}
		return value.NewInt(i), nil
	case value.KindFloat:
		fl, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return value.Null, fmt.Errorf("parse float %q: %w", f, err)
		}
		return value.NewFloat(fl), nil
	case value.KindBool:
		b, err := strconv.ParseBool(f)
		if err != nil {
			return value.Null, fmt.Errorf("parse bool %q: %w", f, err)
		}
		return value.NewBool(b), nil
	case value.KindString:
		return value.NewString(f), nil
	default:
		return value.Null, fmt.Errorf("cannot parse into kind %s", k)
	}
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
