// Package relation implements the in-memory relational storage used by the
// Skalla sites and coordinator: schemas, row-oriented relations, key
// hashing, projection with duplicate elimination, and hash indexes.
//
// Relations are deliberately simple — a schema plus a slice of rows — which
// is all the paper's local warehouse substrate (Daytona in the original
// system) needs to expose to the GMDJ evaluator.
package relation

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/value"
)

// Column describes one attribute of a schema.
type Column struct {
	Name string
	Kind value.Kind
}

// Schema is an ordered list of named, typed columns.
type Schema struct {
	Cols []Column
	// byName maps lower-cased column names to positions. It is rebuilt
	// lazily after gob decoding, which does not transmit private fields.
	//
	//lint:guarded-by schemaIndexMu
	//lint:ignore wiresafe derived index, rebuilt lazily on first Lookup after decode
	byName map[string]int
}

// NewSchema builds a schema from columns, validating name uniqueness.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{Cols: cols}
	schemaIndexMu.Lock()
	defer schemaIndexMu.Unlock()
	s.byName = make(map[string]int, len(cols))
	for i, c := range cols {
		key := strings.ToLower(c.Name)
		if c.Name == "" {
			return nil, fmt.Errorf("relation: column %d has empty name", i)
		}
		if _, dup := s.byName[key]; dup {
			return nil, fmt.Errorf("relation: duplicate column %q", c.Name)
		}
		s.byName[key] = i
	}
	return s, nil
}

// MustSchema is NewSchema but panics on error; for tests and literals.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// schemaIndexMu guards the lazy byName rebuild: gob-decoded schemas
// (byName nil) can be stored at a site engine and looked up from many
// concurrent query executions at once. Lookup is per-query binding and
// projection work, never per-row, so one shared mutex is not a hot lock.
var schemaIndexMu sync.Mutex

// Lookup returns the position of the named column (case-insensitive) and
// whether it exists.
func (s *Schema) Lookup(name string) (int, bool) {
	schemaIndexMu.Lock()
	if s.byName == nil {
		s.byName = make(map[string]int, len(s.Cols))
		for i, c := range s.Cols {
			s.byName[strings.ToLower(c.Name)] = i
		}
	}
	m := s.byName
	schemaIndexMu.Unlock()
	i, ok := m[strings.ToLower(name)]
	return i, ok
}

// MustLookup returns the position of the named column or an error naming
// the missing column and the available ones.
func (s *Schema) MustLookup(name string) (int, error) {
	if i, ok := s.Lookup(name); ok {
		return i, nil
	}
	return 0, fmt.Errorf("relation: no column %q in schema (%s)", name, s)
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Cols) }

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.Name
	}
	return out
}

// String renders the schema as "(name:KIND, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%s", c.Name, c.Kind)
	}
	b.WriteByte(')')
	return b.String()
}

// Equal reports whether two schemas have identical column names (case
// insensitive) and kinds, in the same order.
func (s *Schema) Equal(t *Schema) bool {
	if len(s.Cols) != len(t.Cols) {
		return false
	}
	for i := range s.Cols {
		if !strings.EqualFold(s.Cols[i].Name, t.Cols[i].Name) ||
			s.Cols[i].Kind != t.Cols[i].Kind {
			return false
		}
	}
	return true
}

// Project returns a new schema containing the named columns, plus the
// positions of those columns in s.
func (s *Schema) Project(names []string) (*Schema, []int, error) {
	cols := make([]Column, len(names))
	idx := make([]int, len(names))
	for i, n := range names {
		p, err := s.MustLookup(n)
		if err != nil {
			return nil, nil, err
		}
		cols[i] = s.Cols[p]
		idx[i] = p
	}
	out, err := NewSchema(cols...)
	if err != nil {
		return nil, nil, err
	}
	return out, idx, nil
}

// Concat returns a schema with s's columns followed by extra columns.
func (s *Schema) Concat(extra ...Column) (*Schema, error) {
	cols := make([]Column, 0, len(s.Cols)+len(extra))
	cols = append(cols, s.Cols...)
	cols = append(cols, extra...)
	return NewSchema(cols...)
}

// Row is one tuple; its length always matches the owning schema.
type Row = []value.V

// Relation is a schema plus a bag of rows.
type Relation struct {
	Schema *Schema
	Rows   []Row
}

// New returns an empty relation over the given schema.
func New(s *Schema) *Relation { return &Relation{Schema: s} }

// Len returns the number of rows.
func (r *Relation) Len() int { return len(r.Rows) }

// Append adds a row after checking its arity.
func (r *Relation) Append(row Row) error {
	if len(row) != r.Schema.Len() {
		return fmt.Errorf("relation: row has %d values, schema %s has %d columns",
			len(row), r.Schema, r.Schema.Len())
	}
	r.Rows = append(r.Rows, row)
	return nil
}

// MustAppend is Append but panics on arity mismatch; for tests.
func (r *Relation) MustAppend(vals ...value.V) {
	if err := r.Append(vals); err != nil {
		panic(err)
	}
}

// Clone returns a deep-enough copy: the row slice and each row are copied
// (values themselves are immutable).
func (r *Relation) Clone() *Relation {
	out := &Relation{Schema: r.Schema, Rows: make([]Row, len(r.Rows))}
	for i, row := range r.Rows {
		nr := make(Row, len(row))
		copy(nr, row)
		out.Rows[i] = nr
	}
	return out
}

// RowKey builds a composite map key from the row values at positions idx.
// It allocates a string per call; the hash-grouping paths use HashRow plus
// a value.Equal collision check instead and keep RowKey only where a
// printable key is genuinely needed.
func RowKey(row Row, idx []int) string {
	var b strings.Builder
	for _, i := range idx {
		b.WriteString(row[i].Key())
		b.WriteByte('\x1f')
	}
	return b.String()
}

// HashRow folds the row values at positions idx into one 64-bit hash.
// Rows whose projected values are pairwise Equal hash identically (the
// same equivalence classes as RowKey), so it can replace RowKey-keyed
// maps when paired with a KeysEqual collision check.
func HashRow(row Row, idx []int) uint64 {
	h := value.HashSeed
	for _, i := range idx {
		h = value.UpdateHash(h, row[i])
	}
	return h
}

// KeysEqual reports whether two rows agree on the projected key columns,
// using the same equivalence as RowKey (NULL matches NULL, numerically
// equal ints and floats match).
func KeysEqual(a Row, aIdx []int, b Row, bIdx []int) bool {
	for i := range aIdx {
		av, bv := a[aIdx[i]], b[bIdx[i]]
		if av.IsNull() || bv.IsNull() {
			if av.K != bv.K {
				return false
			}
			continue
		}
		if !value.Equal(av, bv) {
			return false
		}
	}
	return true
}

// DistinctProject computes the set projection π_names(r): the named columns
// with duplicate rows removed, preserving first-seen order. Grouping is by
// 64-bit row hash with a value-equality check on collisions, avoiding the
// per-row key-string allocation of the RowKey path.
func (r *Relation) DistinctProject(names []string) (*Relation, error) {
	ps, idx, err := r.Schema.Project(names)
	if err != nil {
		return nil, err
	}
	out := New(ps)
	outIdx := make([]int, len(idx))
	for i := range outIdx {
		outIdx[i] = i
	}
	seen := make(map[uint64][]int, len(r.Rows))
	for _, row := range r.Rows {
		h := HashRow(row, idx)
		dup := false
		for _, p := range seen[h] {
			if KeysEqual(row, idx, out.Rows[p], outIdx) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen[h] = append(seen[h], len(out.Rows))
		nr := make(Row, len(idx))
		for i, p := range idx {
			nr[i] = row[p]
		}
		out.Rows = append(out.Rows, nr)
	}
	return out, nil
}

// Union appends all rows of t to r (multiset union). Schemas must match.
func (r *Relation) Union(t *Relation) error {
	if !r.Schema.Equal(t.Schema) {
		return fmt.Errorf("relation: union schema mismatch: %s vs %s", r.Schema, t.Schema)
	}
	r.Rows = append(r.Rows, t.Rows...)
	return nil
}

// SortKey names a sort column and its direction.
type SortKey struct {
	Name string
	Desc bool
}

// SortBy sorts rows in place by the named columns ascending. It is used to
// produce deterministic output for display and testing.
func (r *Relation) SortBy(names ...string) error {
	keys := make([]SortKey, len(names))
	for i, n := range names {
		keys[i] = SortKey{Name: n}
	}
	return r.SortKeys(keys...)
}

// SortKeys sorts rows in place by the given keys, honoring per-key
// direction. NULLs sort first ascending (last descending).
func (r *Relation) SortKeys(keys ...SortKey) error {
	idx := make([]int, len(keys))
	for i, k := range keys {
		p, err := r.Schema.MustLookup(k.Name)
		if err != nil {
			return err
		}
		idx[i] = p
	}
	sort.SliceStable(r.Rows, func(a, b int) bool {
		ra, rb := r.Rows[a], r.Rows[b]
		for i, p := range idx {
			c, err := value.Compare(ra[p], rb[p])
			if err != nil {
				if value.Less(ra[p], rb[p]) {
					c = -1
				} else if value.Less(rb[p], ra[p]) {
					c = 1
				} else {
					continue
				}
			}
			if c == 0 {
				continue
			}
			if keys[i].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return nil
}

// Index is a hash index mapping a composite key over key columns to the
// row positions holding that key. Buckets are keyed by 64-bit row hash;
// lookups re-verify candidates with value equality, so hash collisions
// cannot produce false matches.
type Index struct {
	Cols    []int
	rows    []Row
	buckets map[uint64][]int
}

// BuildIndex indexes the relation on the named columns.
func (r *Relation) BuildIndex(names []string) (*Index, error) {
	idx := make([]int, len(names))
	for i, n := range names {
		p, err := r.Schema.MustLookup(n)
		if err != nil {
			return nil, err
		}
		idx[i] = p
	}
	ix := &Index{Cols: idx, rows: r.Rows, buckets: make(map[uint64][]int, len(r.Rows))}
	for pos, row := range r.Rows {
		h := HashRow(row, idx)
		ix.buckets[h] = append(ix.buckets[h], pos)
	}
	return ix, nil
}

// LookupKey returns the positions of rows whose key columns equal vals.
func (ix *Index) LookupKey(vals []value.V) []int {
	h := value.HashSeed
	for _, v := range vals {
		h = value.UpdateHash(h, v)
	}
	cands := ix.buckets[h]
	if len(cands) == 0 {
		return nil
	}
	valIdx := make([]int, len(vals))
	for i := range valIdx {
		valIdx[i] = i
	}
	out := cands[:0:0]
	for _, pos := range cands {
		if KeysEqual(vals, valIdx, ix.rows[pos], ix.Cols) {
			out = append(out, pos)
		}
	}
	return out
}

// String renders the relation as an aligned text table (for examples and
// debugging); long relations are truncated.
func (r *Relation) String() string { return r.Format(20) }

// Format renders up to maxRows rows as an aligned text table.
func (r *Relation) Format(maxRows int) string {
	names := r.Schema.Names()
	width := make([]int, len(names))
	for i, n := range names {
		width[i] = len(n)
	}
	n := len(r.Rows)
	shown := n
	if maxRows >= 0 && shown > maxRows {
		shown = maxRows
	}
	cells := make([][]string, shown)
	for i := 0; i < shown; i++ {
		row := r.Rows[i]
		cells[i] = make([]string, len(row))
		for j, v := range row {
			s := v.String()
			cells[i][j] = s
			if len(s) > width[j] {
				width[j] = len(s)
			}
		}
	}
	var b strings.Builder
	for j, nm := range names {
		if j > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", width[j], nm)
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for j, c := range row {
			if j > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[j], c)
		}
		b.WriteByte('\n')
	}
	if shown < n {
		fmt.Fprintf(&b, "... (%d more rows)\n", n-shown)
	}
	return b.String()
}
