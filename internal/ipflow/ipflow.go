// Package ipflow generates synthetic IP flow records matching the paper's
// motivating application (Section 2.1): routers dump one tuple per flow
// into the local warehouse adjacent to them, so RouterId is the partition
// attribute. When ASPartitioned is set, every flow of a given SourceAS
// passes through a single router (the assumption of the paper's Examples
// 2 and 5), which makes SourceAS a partition attribute too.
//
// The original system analyzed NetFlow traces that are proprietary; this
// generator substitutes a synthetic workload with the same structure:
// web-heavy port mix, hourly time buckets, and heavy-tailed flow sizes —
// enough to exercise the paper's example analyses ("what fraction of
// hourly flows is Web traffic", correlated aggregates over AS pairs).
package ipflow

import (
	"fmt"
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/relation"
	"repro/internal/transport"
	"repro/internal/value"
)

// Config parameterizes the flow generator.
type Config struct {
	// Flows is the total number of flow tuples in the full dataset.
	Flows int
	// Routers is the number of routers (= sites when partitioned).
	Routers int
	// ASes is the number of autonomous systems.
	ASes int
	// Hours is the time span of the trace in hours.
	Hours int
	// ASPartitioned pins each SourceAS to a single router (Examples 2/5).
	ASPartitioned bool
	// Seed makes generation deterministic.
	Seed int64
}

// Defaults fills zero fields.
func (c Config) Defaults() Config {
	if c.Flows == 0 {
		c.Flows = 50000
	}
	if c.Routers == 0 {
		c.Routers = 8
	}
	if c.ASes == 0 {
		c.ASes = 64
	}
	if c.Hours == 0 {
		c.Hours = 24
	}
	return c
}

// Schema returns the Flow fact relation schema of Section 2.1.
func Schema() *relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "RouterId", Kind: value.KindInt},
		relation.Column{Name: "SourceIP", Kind: value.KindString},
		relation.Column{Name: "SourcePort", Kind: value.KindInt},
		relation.Column{Name: "SourceMask", Kind: value.KindInt},
		relation.Column{Name: "SourceAS", Kind: value.KindInt},
		relation.Column{Name: "DestIP", Kind: value.KindString},
		relation.Column{Name: "DestPort", Kind: value.KindInt},
		relation.Column{Name: "DestMask", Kind: value.KindInt},
		relation.Column{Name: "DestAS", Kind: value.KindInt},
		relation.Column{Name: "StartTime", Kind: value.KindInt},
		relation.Column{Name: "EndTime", Kind: value.KindInt},
		relation.Column{Name: "Hour", Kind: value.KindInt},
		relation.Column{Name: "NumPackets", Kind: value.KindInt},
		relation.Column{Name: "NumBytes", Kind: value.KindInt},
	)
}

// wellKnownPorts is a web-heavy port mix: roughly half the flows are
// HTTP/HTTPS, matching the motivating "fraction of Web traffic" queries.
var wellKnownPorts = []int64{80, 443, 80, 443, 80, 25, 53, 22, 21, 8080}

// RouterOfAS returns the router every flow of a source AS traverses under
// AS partitioning.
func RouterOfAS(as int64, routers int) int64 { return as % int64(routers) }

// Generate produces the full flow trace.
func Generate(cfg Config) *relation.Relation {
	return generate(cfg, -1)
}

// GeneratePartition produces the rows of router siteIdx: the local
// warehouse contents of one collection point. The union over all routers
// is exactly Generate(cfg).
func GeneratePartition(cfg Config, siteIdx, numSites int) (*relation.Relation, error) {
	cfg = cfg.Defaults()
	if numSites != cfg.Routers {
		// The router count defines the physical partitioning.
		cfg.Routers = numSites
	}
	if siteIdx < 0 || siteIdx >= cfg.Routers {
		return nil, fmt.Errorf("ipflow: bad partition %d/%d", siteIdx, cfg.Routers)
	}
	return generate(cfg, int64(siteIdx)), nil
}

func generate(cfg Config, onlyRouter int64) *relation.Relation {
	cfg = cfg.Defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := relation.New(Schema())
	for i := 0; i < cfg.Flows; i++ {
		srcAS := int64(rng.Intn(cfg.ASes))
		dstAS := int64(rng.Intn(cfg.ASes))
		var router int64
		if cfg.ASPartitioned {
			router = RouterOfAS(srcAS, cfg.Routers)
		} else {
			router = int64(rng.Intn(cfg.Routers))
		}
		start := int64(rng.Intn(cfg.Hours * 3600))
		duration := int64(1 + rng.Intn(300))
		packets := int64(1 + rng.Intn(1000))
		// Heavy-tailed bytes: most flows small, a few huge.
		bytes := packets * (40 + int64(rng.Intn(1460)))
		if rng.Intn(50) == 0 {
			bytes *= 100
		}
		row := relation.Row{
			value.NewInt(router),
			value.NewString(fmt.Sprintf("10.%d.%d.%d", srcAS, rng.Intn(256), rng.Intn(256))),
			value.NewInt(int64(1024 + rng.Intn(60000))),
			value.NewInt(24),
			value.NewInt(srcAS),
			value.NewString(fmt.Sprintf("10.%d.%d.%d", dstAS, rng.Intn(256), rng.Intn(256))),
			value.NewInt(wellKnownPorts[rng.Intn(len(wellKnownPorts))]),
			value.NewInt(24),
			value.NewInt(dstAS),
			value.NewInt(start),
			value.NewInt(start + duration),
			value.NewInt(start / 3600),
			value.NewInt(packets),
			value.NewInt(bytes),
		}
		if onlyRouter >= 0 && row[0].I != onlyRouter {
			continue
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// GenParams converts a Config into transport.GenSpec parameters.
func GenParams(cfg Config) map[string]int64 {
	cfg = cfg.Defaults()
	p := map[string]int64{
		"flows": int64(cfg.Flows), "routers": int64(cfg.Routers),
		"ases": int64(cfg.ASes), "hours": int64(cfg.Hours), "seed": cfg.Seed,
	}
	if cfg.ASPartitioned {
		p["aspart"] = 1
	}
	return p
}

// ConfigFromParams is the inverse of GenParams.
func ConfigFromParams(p map[string]int64) Config {
	return Config{
		Flows: int(p["flows"]), Routers: int(p["routers"]),
		ASes: int(p["ases"]), Hours: int(p["hours"]),
		ASPartitioned: p["aspart"] == 1, Seed: p["seed"],
	}.Defaults()
}

// Generator adapts the package to the site generator registry.
func Generator(spec *transport.GenSpec) (*relation.Relation, error) {
	return GeneratePartition(ConfigFromParams(spec.Params), spec.Site, spec.NumSites)
}

// FillCatalog records the flow distribution knowledge: per-site RouterId
// domains and, under AS partitioning, per-site SourceAS domains (making
// SourceAS a partition attribute, as in the paper's Example 2).
func FillCatalog(cat *catalog.Catalog, siteIDs []string, cfg Config) error {
	cfg = cfg.Defaults()
	for i, id := range siteIDs {
		if err := cat.SetDomain(id, "RouterId", expr.DomainSet(value.NewInt(int64(i)))); err != nil {
			return err
		}
		if cfg.ASPartitioned {
			var vals []value.V
			for as := int64(i); as < int64(cfg.ASes); as += int64(len(siteIDs)) {
				vals = append(vals, value.NewInt(as))
			}
			if err := cat.SetDomain(id, "SourceAS", expr.DomainSet(vals...)); err != nil {
				return err
			}
		}
	}
	return nil
}
