package ipflow

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/transport"
	"repro/internal/value"
)

func TestDeterminismAndPartition(t *testing.T) {
	cfg := Config{Flows: 2000, Routers: 4, Seed: 5}
	whole := Generate(cfg)
	again := Generate(cfg)
	for i := range whole.Rows {
		for j := range whole.Rows[i] {
			if !value.Equal(whole.Rows[i][j], again.Rows[i][j]) {
				t.Fatal("generation not deterministic")
			}
		}
	}
	total := 0
	rid, _ := Schema().MustLookup("RouterId")
	for s := 0; s < 4; s++ {
		part, err := GeneratePartition(cfg, s, 4)
		if err != nil {
			t.Fatal(err)
		}
		total += part.Len()
		for _, row := range part.Rows {
			if row[rid].I != int64(s) {
				t.Fatalf("site %d holds router %d", s, row[rid].I)
			}
		}
	}
	if total != whole.Len() {
		t.Errorf("partition union %d != whole %d", total, whole.Len())
	}
	if _, err := GeneratePartition(cfg, 4, 4); err == nil {
		t.Error("bad partition index accepted")
	}
}

func TestASPartitioning(t *testing.T) {
	cfg := Config{Flows: 3000, Routers: 4, ASes: 32, ASPartitioned: true, Seed: 9}
	r := Generate(cfg)
	rid, _ := Schema().MustLookup("RouterId")
	sas, _ := Schema().MustLookup("SourceAS")
	for _, row := range r.Rows {
		if row[rid].I != RouterOfAS(row[sas].I, 4) {
			t.Fatal("SourceAS not pinned to its router")
		}
	}
}

func TestFlowShape(t *testing.T) {
	cfg := Config{Flows: 5000, Hours: 24, Seed: 2}
	r := Generate(cfg)
	st, _ := Schema().MustLookup("StartTime")
	et, _ := Schema().MustLookup("EndTime")
	hr, _ := Schema().MustLookup("Hour")
	dp, _ := Schema().MustLookup("DestPort")
	nb, _ := Schema().MustLookup("NumBytes")
	np, _ := Schema().MustLookup("NumPackets")
	web := 0
	for _, row := range r.Rows {
		if row[et].I <= row[st].I {
			t.Fatal("EndTime not after StartTime")
		}
		if row[hr].I != row[st].I/3600 || row[hr].I < 0 || row[hr].I >= 24 {
			t.Fatalf("bad hour %d for start %d", row[hr].I, row[st].I)
		}
		if row[nb].I < 40*row[np].I {
			t.Fatal("bytes below minimum packet size")
		}
		if row[dp].I == 80 || row[dp].I == 443 {
			web++
		}
	}
	frac := float64(web) / float64(r.Len())
	if frac < 0.4 || frac > 0.8 {
		t.Errorf("web fraction = %.2f, want roughly half", frac)
	}
}

func TestGenParamsRoundTrip(t *testing.T) {
	cfg := Config{Flows: 10, Routers: 2, ASes: 3, Hours: 4, ASPartitioned: true, Seed: 5}
	if back := ConfigFromParams(GenParams(cfg)); back != cfg {
		t.Errorf("round trip %+v != %+v", back, cfg)
	}
	cfg.ASPartitioned = false
	if back := ConfigFromParams(GenParams(cfg)); back != cfg {
		t.Errorf("round trip %+v != %+v", back, cfg)
	}
}

func TestGeneratorAdapter(t *testing.T) {
	spec := &transport.GenSpec{
		Kind: "ipflow", Params: GenParams(Config{Flows: 200, Routers: 2, Seed: 1}),
		Site: 0, NumSites: 2,
	}
	r, err := Generator(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() == 0 {
		t.Error("empty partition")
	}
}

func TestFillCatalog(t *testing.T) {
	ids := []string{"r0", "r1"}
	cat := catalog.New(ids...)
	if err := FillCatalog(cat, ids, Config{ASPartitioned: true, ASes: 8, Routers: 2}); err != nil {
		t.Fatal(err)
	}
	if !cat.IsPartitionAttr("RouterId") {
		t.Error("RouterId not a partition attribute")
	}
	if !cat.IsPartitionAttr("SourceAS") {
		t.Error("SourceAS not a partition attribute under AS partitioning")
	}
	cat2 := catalog.New(ids...)
	if err := FillCatalog(cat2, ids, Config{Routers: 2}); err != nil {
		t.Fatal(err)
	}
	if cat2.IsPartitionAttr("SourceAS") {
		t.Error("SourceAS wrongly a partition attribute without AS partitioning")
	}
}
