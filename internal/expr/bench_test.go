package expr

import (
	"testing"

	"repro/internal/relation"
	"repro/internal/value"
)

var benchCond = "F.SourceAS = B.SourceAS AND F.DestAS = B.DestAS AND F.NumBytes >= B.sum1 / B.cnt1"

func BenchmarkParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchCond); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBind(b *testing.B) {
	bd := flowBinding()
	e := MustParse(benchCond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Bind(e, bd); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalBool(b *testing.B) {
	bd := flowBinding()
	bound, err := Bind(MustParse(benchCond), bd)
	if err != nil {
		b.Fatal(err)
	}
	bRowV := bRow(1, 2, 100, 4)
	rRowV := rRow(1, 2, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bound.EvalBool(bRowV, rRowV); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalCase(b *testing.B) {
	schema := relation.MustSchema(
		relation.Column{Name: "port", Kind: value.KindInt},
		relation.Column{Name: "bytes", Kind: value.KindInt},
	)
	bound, err := Bind(MustParse("CASE WHEN F.port IN (80, 443) THEN F.bytes ELSE 0 END"),
		SingleRelation(schema, "F"))
	if err != nil {
		b.Fatal(err)
	}
	row := relation.Row{value.NewInt(443), value.NewInt(1000)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bound.Eval(nil, row); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeriveSiteFilter(b *testing.B) {
	bd := flowBinding()
	thetas := []Expr{
		MustParse("F.SourceAS = B.SourceAS AND F.DestAS = B.DestAS"),
		MustParse("F.SourceAS = B.SourceAS AND F.NumBytes >= B.sum1 / B.cnt1"),
	}
	domains := map[string]Domain{
		"sourceas": DomainRange(value.NewInt(1), value.NewInt(25)),
		"destas":   intSet(1, 2, 3, 4, 5),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := DeriveSiteFilter(thetas, bd, domains); f == nil {
			b.Fatal("no filter derived")
		}
	}
}
