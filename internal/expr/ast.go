// Package expr implements the condition and scalar-expression language of
// the Skalla engine: an AST with a textual form (used both for display and
// as the wire format between coordinator and sites), a parser, a binder
// that compiles expressions against relation schemas, and the static
// analyses (conjunct splitting, equi-pair extraction, interval reasoning,
// entailment tests) that power the paper's distributed optimizations.
package expr

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// Expr is a node in the expression AST. The String form of every
// expression re-parses to an equivalent expression; it is the wire format.
type Expr interface {
	String() string
	// precedence returns the binding strength used to parenthesize
	// correctly when rendering.
	precedence() int
}

// Const is a literal value.
type Const struct{ Val value.V }

// Col is a column reference, optionally qualified with a relation alias
// (e.g. "F.SourceAS" has Qual "F", Name "SourceAS").
type Col struct {
	Qual string
	Name string
}

// Unary is a prefix operator: "-" (negation) or "NOT".
type Unary struct {
	Op string
	X  Expr
}

// Binary is an infix operator. Arithmetic: + - * / %. Comparison:
// = != < <= > >=. Logical: AND OR.
type Binary struct {
	Op   string
	L, R Expr
}

// InList tests membership of X in a literal value list.
type InList struct {
	X    Expr
	Vals []value.V
	Neg  bool
}

// Between tests Lo <= X AND X <= Hi (inclusive both ends, as in SQL).
type Between struct {
	X, Lo, Hi Expr
	Neg       bool
}

// Like tests SQL LIKE pattern matching: % matches any run of characters,
// _ matches exactly one.
type Like struct {
	X       Expr
	Pattern string
	Neg     bool
}

// Operator precedence levels, loosest to tightest.
const (
	precOr = iota + 1
	precAnd
	precNot
	precCmp
	precAdd
	precMul
	precUnary
	precAtom
)

func (Const) precedence() int   { return precAtom }
func (Col) precedence() int     { return precAtom }
func (InList) precedence() int  { return precCmp }
func (Between) precedence() int { return precCmp }
func (Like) precedence() int    { return precCmp }

func (u Unary) precedence() int {
	if u.Op == "NOT" {
		return precNot
	}
	return precUnary
}

func (b Binary) precedence() int {
	switch b.Op {
	case "OR":
		return precOr
	case "AND":
		return precAnd
	case "=", "!=", "<", "<=", ">", ">=":
		return precCmp
	case "+", "-":
		return precAdd
	default:
		return precMul
	}
}

// String renders a literal; strings are single-quoted with ” escaping.
func (c Const) String() string {
	if c.Val.K == value.KindString {
		return "'" + strings.ReplaceAll(c.Val.S, "'", "''") + "'"
	}
	return c.Val.String()
}

func (c Col) String() string {
	if c.Qual == "" {
		return c.Name
	}
	return c.Qual + "." + c.Name
}

func (u Unary) String() string {
	if u.Op == "NOT" {
		return "NOT " + wrap(u.X, precNot)
	}
	return u.Op + wrap(u.X, precUnary)
}

func (b Binary) String() string {
	op := b.Op
	if op == "AND" || op == "OR" {
		op = " " + op + " "
	} else {
		op = " " + op + " "
	}
	return wrap(b.L, b.precedence()) + op + wrapRight(b.R, b.precedence())
}

func (in InList) String() string {
	var sb strings.Builder
	sb.WriteString(wrap(in.X, precCmp))
	if in.Neg {
		sb.WriteString(" NOT IN (")
	} else {
		sb.WriteString(" IN (")
	}
	for i, v := range in.Vals {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(Const{v}.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

func (l Like) String() string {
	op := " LIKE "
	if l.Neg {
		op = " NOT LIKE "
	}
	return wrap(l.X, precCmp) + op + Const{value.NewString(l.Pattern)}.String()
}

func (bt Between) String() string {
	op := " BETWEEN "
	if bt.Neg {
		op = " NOT BETWEEN "
	}
	return wrap(bt.X, precCmp) + op + wrap(bt.Lo, precAdd) + " AND " + wrap(bt.Hi, precAdd)
}

// wrap parenthesizes x when its precedence is looser than the context.
func wrap(x Expr, ctx int) string {
	if x.precedence() < ctx {
		return "(" + x.String() + ")"
	}
	return x.String()
}

// wrapRight parenthesizes the right operand also at equal precedence, so
// non-associative renderings like a - (b - c) survive a round trip.
func wrapRight(x Expr, ctx int) string {
	if x.precedence() <= ctx {
		return "(" + x.String() + ")"
	}
	return x.String()
}

// Helper constructors, used heavily by the optimizer and tests.

// C returns a constant expression.
func C(v value.V) Expr { return Const{Val: v} }

// CInt returns an integer constant expression.
func CInt(i int64) Expr { return Const{Val: value.NewInt(i)} }

// Ref returns a column reference with qualifier.
func Ref(qual, name string) Expr { return Col{Qual: qual, Name: name} }

// Eq returns l = r.
func Eq(l, r Expr) Expr { return Binary{Op: "=", L: l, R: r} }

// And conjoins expressions; And() of zero expressions is the constant true,
// of one is that expression.
func And(xs ...Expr) Expr {
	var out Expr
	for _, x := range xs {
		if x == nil {
			continue
		}
		if out == nil {
			out = x
		} else {
			out = Binary{Op: "AND", L: out, R: x}
		}
	}
	if out == nil {
		return Const{Val: value.NewBool(true)}
	}
	return out
}

// Or disjoins expressions; Or() of zero expressions is the constant false.
func Or(xs ...Expr) Expr {
	var out Expr
	for _, x := range xs {
		if x == nil {
			continue
		}
		if out == nil {
			out = x
		} else {
			out = Binary{Op: "OR", L: out, R: x}
		}
	}
	if out == nil {
		return Const{Val: value.NewBool(false)}
	}
	return out
}

// Conjuncts splits an expression at top-level ANDs.
func Conjuncts(e Expr) []Expr {
	if b, ok := e.(Binary); ok && b.Op == "AND" {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []Expr{e}
}

// Disjuncts splits an expression at top-level ORs.
func Disjuncts(e Expr) []Expr {
	if b, ok := e.(Binary); ok && b.Op == "OR" {
		return append(Disjuncts(b.L), Disjuncts(b.R)...)
	}
	return []Expr{e}
}

// Walk calls fn on e and every sub-expression, pre-order.
func Walk(e Expr, fn func(Expr)) {
	fn(e)
	switch n := e.(type) {
	case Unary:
		Walk(n.X, fn)
	case Binary:
		Walk(n.L, fn)
		Walk(n.R, fn)
	case InList:
		Walk(n.X, fn)
	case Between:
		Walk(n.X, fn)
		Walk(n.Lo, fn)
		Walk(n.Hi, fn)
	case Like:
		Walk(n.X, fn)
	case Case:
		for _, w := range n.Whens {
			Walk(w.Cond, fn)
			Walk(w.Then, fn)
		}
		if n.Else != nil {
			Walk(n.Else, fn)
		}
	case Call:
		for _, a := range n.Args {
			Walk(a, fn)
		}
	}
}

// Cols returns every column reference in e, in visit order, with
// duplicates preserved.
func Cols(e Expr) []Col {
	var out []Col
	Walk(e, func(x Expr) {
		if c, ok := x.(Col); ok {
			out = append(out, c)
		}
	})
	return out
}

// IsTrue reports whether e is the constant TRUE.
func IsTrue(e Expr) bool {
	c, ok := e.(Const)
	return ok && c.Val.K == value.KindBool && c.Val.I != 0
}

// Rewrite returns a copy of e with fn applied bottom-up to every node. If
// fn returns nil the node is kept unchanged.
func Rewrite(e Expr, fn func(Expr) Expr) Expr {
	switch n := e.(type) {
	case Unary:
		n.X = Rewrite(n.X, fn)
		e = n
	case Binary:
		n.L = Rewrite(n.L, fn)
		n.R = Rewrite(n.R, fn)
		e = n
	case InList:
		n.X = Rewrite(n.X, fn)
		e = n
	case Between:
		n.X = Rewrite(n.X, fn)
		n.Lo = Rewrite(n.Lo, fn)
		n.Hi = Rewrite(n.Hi, fn)
		e = n
	case Like:
		n.X = Rewrite(n.X, fn)
		e = n
	case Case:
		whens := make([]When, len(n.Whens))
		for i, w := range n.Whens {
			whens[i] = When{Cond: Rewrite(w.Cond, fn), Then: Rewrite(w.Then, fn)}
		}
		n.Whens = whens
		if n.Else != nil {
			n.Else = Rewrite(n.Else, fn)
		}
		e = n
	case Call:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = Rewrite(a, fn)
		}
		n.Args = args
		e = n
	}
	if r := fn(e); r != nil {
		return r
	}
	return e
}

// Equal reports structural equality of two expressions via their canonical
// text form.
func Equal(a, b Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.String() == b.String()
}

// errorf wraps package errors uniformly.
func errorf(format string, args ...any) error {
	return fmt.Errorf("expr: "+format, args...)
}
