package expr

import (
	"strings"
	"testing"

	"repro/internal/value"
)

func TestParseBasics(t *testing.T) {
	tests := []struct {
		in   string
		want string // canonical form; "" means same as in
	}{
		{"1 + 2", ""},
		{"1 + 2 * 3", ""},
		{"(1 + 2) * 3", ""},
		{"a - (b - c)", ""},
		{"a - b - c", ""},
		{"F.SourceAS = B.SourceAS", ""},
		{"F.SourceAS = B.SourceAS && F.DestAS = B.DestAS",
			"F.SourceAS = B.SourceAS AND F.DestAS = B.DestAS"},
		{"a == 1 || b <> 2", "a = 1 OR b != 2"},
		{"!(a = 1)", "NOT a = 1"},
		{"NOT a = 1 AND b = 2", ""},
		{"x IN (1, 2, 3)", ""},
		{"x NOT IN (1, 2)", ""},
		{"x BETWEEN 1 AND 10", ""},
		{"x NOT BETWEEN 1 AND 10", ""},
		{"x BETWEEN a + 1 AND b * 2", ""},
		{"name = 'O''Brien'", ""},
		{"v >= -3.5", ""},
		{"price * (1 - discount) > 100", ""},
		{"B.DestAS + B.SourceAS < F.SourceAS * 2", ""},
		{"TRUE", "true"},
		{"FALSE OR TRUE", "false OR true"},
		{"x = NULL", ""},
		{"a = 1 AND (b = 2 OR c = 3)", ""},
		{"x % 2 = 0", ""},
		{"-x + 1 = 0", ""},
		{"x IN ('a', 'b')", ""},
		{"x IN (-1, -2)", ""},
	}
	for _, tc := range tests {
		e, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		want := tc.want
		if want == "" {
			want = tc.in
		}
		if got := e.String(); got != want {
			t.Errorf("Parse(%q).String() = %q, want %q", tc.in, got, want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	// String() output must re-parse to the identical string (wire format
	// stability).
	inputs := []string{
		"F1.SAS = B1.SAS AND F1.DAS = B1.DAS AND F1.NB >= B1.sum1 / B1.cnt1",
		"a + b * c - d / e % f",
		"NOT (a = 1 OR b = 2) AND c IN (1, 2, 3)",
		"x BETWEEN 1 AND 10 OR y NOT BETWEEN -5 AND 5",
		"(a + b) * (c - d) <= 10.25",
		"s = 'it''s'",
	}
	for _, in := range inputs {
		e1, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		s1 := e1.String()
		e2, err := Parse(s1)
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", s1, err)
		}
		if s2 := e2.String(); s2 != s1 {
			t.Errorf("round trip: %q -> %q -> %q", in, s1, s2)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"1 +",
		"(1 + 2",
		"a = ",
		"x IN (a, b)", // non-literal IN list
		"x IN ()",
		"'unterminated",
		"a . ",
		"a NOT b",
		"1 ? 2",
		"x BETWEEN 1",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestParseLiteralKinds(t *testing.T) {
	e := MustParse("3")
	if c, ok := e.(Const); !ok || c.Val.K != value.KindInt {
		t.Errorf("3 parsed as %#v", e)
	}
	e = MustParse("3.0")
	if c, ok := e.(Const); !ok || c.Val.K != value.KindFloat {
		t.Errorf("3.0 parsed as %#v", e)
	}
	e = MustParse("1e3")
	if c, ok := e.(Const); !ok || c.Val.K != value.KindFloat || c.Val.F != 1000 {
		t.Errorf("1e3 parsed as %#v", e)
	}
	e = MustParse("-42")
	if c, ok := e.(Const); !ok || c.Val.K != value.KindInt || c.Val.I != -42 {
		t.Errorf("-42 parsed as %#v", e)
	}
}

func TestConjunctsDisjuncts(t *testing.T) {
	e := MustParse("a = 1 AND b = 2 AND (c = 3 OR d = 4)")
	cj := Conjuncts(e)
	if len(cj) != 3 {
		t.Errorf("Conjuncts = %d, want 3", len(cj))
	}
	dj := Disjuncts(cj[2])
	if len(dj) != 2 {
		t.Errorf("Disjuncts = %d, want 2", len(dj))
	}
}

func TestAndOrHelpers(t *testing.T) {
	if !IsTrue(And()) {
		t.Error("And() should be TRUE")
	}
	if s := Or().String(); s != "false" {
		t.Errorf("Or() = %s", s)
	}
	e := And(MustParse("a = 1"), nil, MustParse("b = 2"))
	if len(Conjuncts(e)) != 2 {
		t.Error("And skipping nil broken")
	}
}

func TestColsAndWalk(t *testing.T) {
	e := MustParse("F.a = B.b AND F.c + 1 > 2")
	cols := Cols(e)
	if len(cols) != 3 {
		t.Fatalf("Cols = %v", cols)
	}
	var names []string
	for _, c := range cols {
		names = append(names, c.String())
	}
	joined := strings.Join(names, ",")
	if joined != "F.a,B.b,F.c" {
		t.Errorf("cols = %s", joined)
	}
}

func TestRewrite(t *testing.T) {
	e := MustParse("a = 1 AND b = 2")
	got := Rewrite(e, func(x Expr) Expr {
		if c, ok := x.(Col); ok && c.Name == "a" {
			return Col{Qual: "T", Name: "a"}
		}
		return nil
	})
	if got.String() != "T.a = 1 AND b = 2" {
		t.Errorf("Rewrite = %s", got)
	}
	// Original untouched.
	if e.String() != "a = 1 AND b = 2" {
		t.Errorf("Rewrite mutated original: %s", e)
	}
}
