package expr

import (
	"strings"

	"repro/internal/relation"
	"repro/internal/value"
)

// Side identifies which of the two relations a bound column reads from. In
// GMDJ terms, SideBase is the base-values relation B and SideDetail is the
// detail relation R.
type Side int

// The two sides of a GMDJ condition.
const (
	SideBase Side = iota
	SideDetail
)

// Binding describes how column references resolve: which schema each side
// has and which qualifiers (aliases) name each side. Either side may be
// nil for single-relation expressions.
type Binding struct {
	Base          *relation.Schema
	Detail        *relation.Schema
	BaseAliases   []string
	DetailAliases []string
}

// SingleRelation returns a binding for expressions over one relation,
// treated as the detail side, reachable via the given aliases (and via
// unqualified names).
func SingleRelation(s *relation.Schema, aliases ...string) Binding {
	return Binding{Detail: s, DetailAliases: aliases}
}

// SideOf resolves the side of a column reference from its qualifier alone.
// Unqualified references try both schemas. It is also the workhorse of the
// static analyses, which need side classification without evaluation.
func (bd Binding) SideOf(c Col) (Side, bool) {
	if c.Qual != "" {
		for _, a := range bd.BaseAliases {
			if strings.EqualFold(a, c.Qual) {
				return SideBase, true
			}
		}
		for _, a := range bd.DetailAliases {
			if strings.EqualFold(a, c.Qual) {
				return SideDetail, true
			}
		}
		return 0, false
	}
	inB, inD := false, false
	if bd.Base != nil {
		_, inB = bd.Base.Lookup(c.Name)
	}
	if bd.Detail != nil {
		_, inD = bd.Detail.Lookup(c.Name)
	}
	switch {
	case inB && !inD:
		return SideBase, true
	case inD && !inB:
		return SideDetail, true
	default:
		return 0, false
	}
}

// resolve returns the side and column position of a reference.
func (bd Binding) resolve(c Col) (Side, int, error) {
	side, ok := bd.SideOf(c)
	if !ok {
		if c.Qual != "" {
			return 0, 0, errorf("unknown or ambiguous qualifier %q in %s (base aliases %v, detail aliases %v)",
				c.Qual, c, bd.BaseAliases, bd.DetailAliases)
		}
		return 0, 0, errorf("unknown or ambiguous column %q", c.Name)
	}
	var s *relation.Schema
	if side == SideBase {
		s = bd.Base
	} else {
		s = bd.Detail
	}
	if s == nil {
		return 0, 0, errorf("column %s refers to an unbound side", c)
	}
	i, err := s.MustLookup(c.Name)
	if err != nil {
		return 0, 0, err
	}
	return side, i, nil
}

// evalFn evaluates a compiled node against a (base row, detail row) pair.
type evalFn func(b, r relation.Row) (value.V, error)

// Bound is a compiled expression ready for repeated evaluation.
type Bound struct {
	src Expr
	fn  evalFn
}

// Bind compiles e against the binding, resolving every column reference to
// a (side, position) pair. Binding fails fast on unknown columns so query
// errors surface at plan time, not per row.
func Bind(e Expr, bd Binding) (*Bound, error) {
	fn, err := compile(e, bd)
	if err != nil {
		return nil, err
	}
	return &Bound{src: e, fn: fn}, nil
}

// Expr returns the source expression this was compiled from.
func (b *Bound) Expr() Expr { return b.src }

// Eval evaluates the expression. Pass nil for an unbound side.
func (b *Bound) Eval(base, detail relation.Row) (value.V, error) {
	return b.fn(base, detail)
}

// EvalBool evaluates the expression as a predicate. NULL results are
// false, as in SQL WHERE semantics.
func (b *Bound) EvalBool(base, detail relation.Row) (bool, error) {
	v, err := b.fn(base, detail)
	if err != nil {
		return false, err
	}
	return v.Bool(), nil
}

func compile(e Expr, bd Binding) (evalFn, error) {
	switch n := e.(type) {
	case Const:
		v := n.Val
		return func(_, _ relation.Row) (value.V, error) { return v, nil }, nil

	case Col:
		side, idx, err := bd.resolve(n)
		if err != nil {
			return nil, err
		}
		name := n.String()
		if side == SideBase {
			return func(b, _ relation.Row) (value.V, error) {
				if idx >= len(b) {
					return value.Null, errorf("row too short for column %s", name)
				}
				return b[idx], nil
			}, nil
		}
		return func(_, r relation.Row) (value.V, error) {
			if idx >= len(r) {
				return value.Null, errorf("row too short for column %s", name)
			}
			return r[idx], nil
		}, nil

	case Unary:
		x, err := compile(n.X, bd)
		if err != nil {
			return nil, err
		}
		if n.Op == "NOT" {
			return func(b, r relation.Row) (value.V, error) {
				v, err := x(b, r)
				if err != nil {
					return value.Null, err
				}
				return value.NewBool(!v.Bool()), nil
			}, nil
		}
		return func(b, r relation.Row) (value.V, error) {
			v, err := x(b, r)
			if err != nil {
				return value.Null, err
			}
			return value.Neg(v)
		}, nil

	case Binary:
		l, err := compile(n.L, bd)
		if err != nil {
			return nil, err
		}
		r, err := compile(n.R, bd)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case "AND":
			return func(b, rr relation.Row) (value.V, error) {
				lv, err := l(b, rr)
				if err != nil {
					return value.Null, err
				}
				if !lv.Bool() {
					return value.NewBool(false), nil
				}
				rv, err := r(b, rr)
				if err != nil {
					return value.Null, err
				}
				return value.NewBool(rv.Bool()), nil
			}, nil
		case "OR":
			return func(b, rr relation.Row) (value.V, error) {
				lv, err := l(b, rr)
				if err != nil {
					return value.Null, err
				}
				if lv.Bool() {
					return value.NewBool(true), nil
				}
				rv, err := r(b, rr)
				if err != nil {
					return value.Null, err
				}
				return value.NewBool(rv.Bool()), nil
			}, nil
		case "=", "!=", "<", "<=", ">", ">=":
			op := n.Op
			return func(b, rr relation.Row) (value.V, error) {
				lv, err := l(b, rr)
				if err != nil {
					return value.Null, err
				}
				rv, err := r(b, rr)
				if err != nil {
					return value.Null, err
				}
				if lv.IsNull() || rv.IsNull() {
					return value.NewBool(false), nil
				}
				c, err := value.Compare(lv, rv)
				if err != nil {
					return value.Null, err
				}
				var ok bool
				switch op {
				case "=":
					ok = c == 0
				case "!=":
					ok = c != 0
				case "<":
					ok = c < 0
				case "<=":
					ok = c <= 0
				case ">":
					ok = c > 0
				case ">=":
					ok = c >= 0
				}
				return value.NewBool(ok), nil
			}, nil
		case "+":
			return arithFn(l, r, value.Add), nil
		case "-":
			return arithFn(l, r, value.Sub), nil
		case "*":
			return arithFn(l, r, value.Mul), nil
		case "/":
			return arithFn(l, r, value.Div), nil
		case "%":
			return arithFn(l, r, value.Mod), nil
		default:
			return nil, errorf("unknown operator %q", n.Op)
		}

	case InList:
		x, err := compile(n.X, bd)
		if err != nil {
			return nil, err
		}
		set := make(map[string]struct{}, len(n.Vals))
		for _, v := range n.Vals {
			set[v.Key()] = struct{}{}
		}
		neg := n.Neg
		return func(b, r relation.Row) (value.V, error) {
			v, err := x(b, r)
			if err != nil {
				return value.Null, err
			}
			if v.IsNull() {
				return value.NewBool(false), nil
			}
			_, in := set[v.Key()]
			return value.NewBool(in != neg), nil
		}, nil

	case Like:
		x, err := compile(n.X, bd)
		if err != nil {
			return nil, err
		}
		neg := n.Neg
		pattern := n.Pattern
		return func(b, r relation.Row) (value.V, error) {
			v, err := x(b, r)
			if err != nil {
				return value.Null, err
			}
			if v.IsNull() {
				return value.NewBool(false), nil
			}
			if v.K != value.KindString {
				return value.Null, errorf("LIKE on %s value", v.K)
			}
			return value.NewBool(likeMatch(v.S, pattern) != neg), nil
		}, nil

	case Case:
		return compileCase(n, bd)

	case Call:
		return compileCall(n, bd)

	case Between:
		x, err := compile(n.X, bd)
		if err != nil {
			return nil, err
		}
		lo, err := compile(n.Lo, bd)
		if err != nil {
			return nil, err
		}
		hi, err := compile(n.Hi, bd)
		if err != nil {
			return nil, err
		}
		neg := n.Neg
		return func(b, r relation.Row) (value.V, error) {
			xv, err := x(b, r)
			if err != nil {
				return value.Null, err
			}
			lov, err := lo(b, r)
			if err != nil {
				return value.Null, err
			}
			hiv, err := hi(b, r)
			if err != nil {
				return value.Null, err
			}
			if xv.IsNull() || lov.IsNull() || hiv.IsNull() {
				return value.NewBool(false), nil
			}
			c1, err := value.Compare(lov, xv)
			if err != nil {
				return value.Null, err
			}
			c2, err := value.Compare(xv, hiv)
			if err != nil {
				return value.Null, err
			}
			return value.NewBool((c1 <= 0 && c2 <= 0) != neg), nil
		}, nil
	}
	return nil, errorf("cannot compile %T", e)
}

func arithFn(l, r evalFn, op func(a, b value.V) (value.V, error)) evalFn {
	return func(b, rr relation.Row) (value.V, error) {
		lv, err := l(b, rr)
		if err != nil {
			return value.Null, err
		}
		rv, err := r(b, rr)
		if err != nil {
			return value.Null, err
		}
		return op(lv, rv)
	}
}
