package expr

import (
	"math"
	"strings"

	"repro/internal/value"
)

// This file implements the static analyses behind the paper's distributed
// optimizations:
//
//   - side classification and equi-pair extraction (used everywhere),
//   - Domain: what values an attribute can take in a site's partition
//     (the predicate φ_i of Theorem 4),
//   - interval arithmetic over detail-side expressions,
//   - DeriveSiteFilter: the ¬ψ_i condition of Theorem 4 (distribution-aware
//     group reduction),
//   - EntailsKeyEquality: the θ_j ⇒ θ_K test of Proposition 2, and
//   - EquiDetailAttrs: the partition-attribute entailment of Corollary 1.

// SidesUsed reports which sides of the binding e references. Columns that
// fail to resolve count as both sides, keeping callers conservative.
func SidesUsed(e Expr, bd Binding) (base, detail bool) {
	Walk(e, func(x Expr) {
		c, ok := x.(Col)
		if !ok {
			return
		}
		side, ok := bd.SideOf(c)
		if !ok {
			base, detail = true, true
			return
		}
		if side == SideBase {
			base = true
		} else {
			detail = true
		}
	})
	return base, detail
}

// RefsOnly reports whether e references columns of side only (or none).
func RefsOnly(e Expr, bd Binding, side Side) bool {
	b, d := SidesUsed(e, bd)
	if side == SideBase {
		return !d
	}
	return !b
}

// EquiPair is an equality conjunct pairing a base column with a detail
// column, as in F.SourceAS = B.SourceAS.
type EquiPair struct {
	Base   Col
	Detail Col
}

// EquiPairs extracts the top-level equality conjuncts of theta that pair a
// detail column with a base column. These drive the hash-partitioned GMDJ
// evaluation and the entailment tests.
func EquiPairs(theta Expr, bd Binding) []EquiPair {
	var out []EquiPair
	for _, cj := range Conjuncts(theta) {
		b, ok := cj.(Binary)
		if !ok || b.Op != "=" {
			continue
		}
		lc, lok := b.L.(Col)
		rc, rok := b.R.(Col)
		if !lok || !rok {
			continue
		}
		ls, lok := bd.SideOf(lc)
		rs, rok := bd.SideOf(rc)
		if !lok || !rok || ls == rs {
			continue
		}
		if ls == SideBase {
			out = append(out, EquiPair{Base: lc, Detail: rc})
		} else {
			out = append(out, EquiPair{Base: rc, Detail: lc})
		}
	}
	return out
}

// Residual returns theta minus the given equi-pair conjuncts, i.e. the
// part that must still be evaluated per (b, r) pair after hash matching.
// It returns the constant TRUE when nothing remains.
func Residual(theta Expr, bd Binding, pairs []EquiPair) Expr {
	isPair := func(cj Expr) bool {
		b, ok := cj.(Binary)
		if !ok || b.Op != "=" {
			return false
		}
		lc, lok := b.L.(Col)
		rc, rok := b.R.(Col)
		if !lok || !rok {
			return false
		}
		for _, p := range pairs {
			if (colEq(lc, p.Base) && colEq(rc, p.Detail)) ||
				(colEq(lc, p.Detail) && colEq(rc, p.Base)) {
				return true
			}
		}
		return false
	}
	var rest []Expr
	for _, cj := range Conjuncts(theta) {
		if !isPair(cj) {
			rest = append(rest, cj)
		}
	}
	return And(rest...)
}

func colEq(a, b Col) bool {
	return strings.EqualFold(a.Qual, b.Qual) && strings.EqualFold(a.Name, b.Name)
}

// EntailsKeyEquality reports whether theta's top-level conjuncts include an
// equality pairing some detail column with the base key column k, for
// every k in keys. This is the operational form of "θ_j entails θ_K"
// (Proposition 2): matching detail tuples agree with b on all of K.
func EntailsKeyEquality(theta Expr, bd Binding, keys []string) bool {
	pairs := EquiPairs(theta, bd)
	for _, k := range keys {
		found := false
		for _, p := range pairs {
			if strings.EqualFold(p.Base.Name, k) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// EquiDetailAttrs returns, for each detail attribute appearing in a
// top-level equi conjunct of theta, the base attribute it is equated with.
// Corollary 1's check — every θ entails R.A = f(A) on a partition
// attribute A — reduces to intersecting these maps across all θs and
// testing the surviving detail attributes for partition-attribute status.
func EquiDetailAttrs(theta Expr, bd Binding) map[string]string {
	out := make(map[string]string)
	for _, p := range EquiPairs(theta, bd) {
		out[strings.ToLower(p.Detail.Name)] = strings.ToLower(p.Base.Name)
	}
	return out
}

// Domain describes the set of values an attribute can take within one
// site's partition of the detail relation — the φ_i of Theorem 4. Either
// an explicit finite set, an interval, or both bounds of an interval may
// be present.
type Domain struct {
	Set            []value.V // non-nil: exactly these values
	HasMin, HasMax bool
	Min, Max       value.V
}

// DomainSet returns a finite-set domain. DomainSet() with no values is the
// empty domain.
func DomainSet(vals ...value.V) Domain {
	if vals == nil {
		vals = []value.V{}
	}
	return Domain{Set: vals}
}

// DomainRange returns an inclusive interval domain.
func DomainRange(min, max value.V) Domain {
	return Domain{HasMin: true, HasMax: true, Min: min, Max: max}
}

// Interval returns the numeric interval covering the domain, when one can
// be computed.
func (d Domain) Interval() (Interval, bool) {
	if d.Set != nil {
		iv := Interval{HasLo: true, HasHi: true, Lo: math.Inf(1), Hi: math.Inf(-1)}
		if len(d.Set) == 0 {
			return Interval{}, false
		}
		for _, v := range d.Set {
			f, err := v.AsFloat()
			if err != nil {
				return Interval{}, false
			}
			iv.Lo = math.Min(iv.Lo, f)
			iv.Hi = math.Max(iv.Hi, f)
		}
		return iv, true
	}
	iv := Interval{}
	if d.HasMin {
		f, err := d.Min.AsFloat()
		if err != nil {
			return Interval{}, false
		}
		iv.HasLo, iv.Lo = true, f
	}
	if d.HasMax {
		f, err := d.Max.AsFloat()
		if err != nil {
			return Interval{}, false
		}
		iv.HasHi, iv.Hi = true, f
	}
	return iv, iv.HasLo || iv.HasHi
}

// ToExpr renders the domain as a membership predicate on the given
// expression, suitable for filtering the base relation.
func (d Domain) ToExpr(x Expr) Expr {
	if d.Set != nil {
		return InList{X: x, Vals: append([]value.V(nil), d.Set...)}
	}
	switch {
	case d.HasMin && d.HasMax:
		return Between{X: x, Lo: Const{d.Min}, Hi: Const{d.Max}}
	case d.HasMin:
		return Binary{Op: ">=", L: x, R: Const{d.Min}}
	case d.HasMax:
		return Binary{Op: "<=", L: x, R: Const{d.Max}}
	default:
		return Const{Val: value.NewBool(true)}
	}
}

// Empty reports whether the domain is known to contain no values.
func (d Domain) Empty() bool { return d.Set != nil && len(d.Set) == 0 }

// Interval is a (possibly half-open) numeric interval with inclusive
// bounds, used for conservative range reasoning over detail expressions.
type Interval struct {
	HasLo, HasHi bool
	Lo, Hi       float64
}

// point returns the degenerate interval [f, f].
func point(f float64) Interval { return Interval{HasLo: true, HasHi: true, Lo: f, Hi: f} }

func addIv(a, b Interval) Interval {
	return Interval{
		HasLo: a.HasLo && b.HasLo, Lo: a.Lo + b.Lo,
		HasHi: a.HasHi && b.HasHi, Hi: a.Hi + b.Hi,
	}
}

func subIv(a, b Interval) Interval {
	return Interval{
		HasLo: a.HasLo && b.HasHi, Lo: a.Lo - b.Hi,
		HasHi: a.HasHi && b.HasLo, Hi: a.Hi - b.Lo,
	}
}

func negIv(a Interval) Interval {
	return Interval{HasLo: a.HasHi, Lo: -a.Hi, HasHi: a.HasLo, Hi: -a.Lo}
}

func mulIv(a, b Interval) Interval {
	// Multiplication needs all four bounds; give up on open intervals.
	if !(a.HasLo && a.HasHi && b.HasLo && b.HasHi) {
		return Interval{}
	}
	cands := [4]float64{a.Lo * b.Lo, a.Lo * b.Hi, a.Hi * b.Lo, a.Hi * b.Hi}
	lo, hi := cands[0], cands[0]
	for _, c := range cands[1:] {
		lo = math.Min(lo, c)
		hi = math.Max(hi, c)
	}
	return Interval{HasLo: true, Lo: lo, HasHi: true, Hi: hi}
}

func divIv(a, b Interval) Interval {
	if !(a.HasLo && a.HasHi && b.HasLo && b.HasHi) {
		return Interval{}
	}
	// Only safe when the divisor interval excludes zero.
	if b.Lo <= 0 && b.Hi >= 0 {
		return Interval{}
	}
	cands := [4]float64{a.Lo / b.Lo, a.Lo / b.Hi, a.Hi / b.Lo, a.Hi / b.Hi}
	lo, hi := cands[0], cands[0]
	for _, c := range cands[1:] {
		lo = math.Min(lo, c)
		hi = math.Max(hi, c)
	}
	return Interval{HasLo: true, Lo: lo, HasHi: true, Hi: hi}
}

// IntervalOf computes a conservative interval for a detail-side expression
// given per-column domains (keyed by lower-cased column name). The boolean
// result is false when no bound at all could be established.
func IntervalOf(e Expr, bd Binding, domains map[string]Domain) (Interval, bool) {
	iv := intervalOf(e, bd, domains)
	return iv, iv.HasLo || iv.HasHi
}

func intervalOf(e Expr, bd Binding, domains map[string]Domain) Interval {
	switch n := e.(type) {
	case Const:
		f, err := n.Val.AsFloat()
		if err != nil {
			return Interval{}
		}
		return point(f)
	case Col:
		if side, ok := bd.SideOf(n); !ok || side != SideDetail {
			return Interval{}
		}
		d, ok := domains[strings.ToLower(n.Name)]
		if !ok {
			return Interval{}
		}
		iv, ok := d.Interval()
		if !ok {
			return Interval{}
		}
		return iv
	case Unary:
		if n.Op == "-" {
			return negIv(intervalOf(n.X, bd, domains))
		}
		return Interval{}
	case Binary:
		l := intervalOf(n.L, bd, domains)
		r := intervalOf(n.R, bd, domains)
		switch n.Op {
		case "+":
			return addIv(l, r)
		case "-":
			return subIv(l, r)
		case "*":
			return mulIv(l, r)
		case "/":
			return divIv(l, r)
		}
		return Interval{}
	default:
		return Interval{}
	}
}

// tightenDomains intersects the domains with simple detail-only conjuncts
// of theta (Col CMP const, Col IN (...), Col BETWEEN a AND b), returning a
// copy. Unrecognized conjuncts are ignored (conservative).
func tightenDomains(conjs []Expr, bd Binding, domains map[string]Domain) map[string]Domain {
	out := make(map[string]Domain, len(domains))
	for k, v := range domains {
		out[k] = v
	}
	apply := func(name string, lo, hi *float64) {
		key := strings.ToLower(name)
		d := out[key]
		iv, ok := d.Interval()
		if d.Set != nil {
			// Filter the explicit set.
			var kept []value.V
			for _, v := range d.Set {
				f, err := v.AsFloat()
				if err != nil {
					kept = append(kept, v)
					continue
				}
				if lo != nil && f < *lo || hi != nil && f > *hi {
					continue
				}
				kept = append(kept, v)
			}
			d.Set = kept
			out[key] = d
			return
		}
		if !ok {
			iv = Interval{}
		}
		if lo != nil && (!iv.HasLo || *lo > iv.Lo) {
			iv.HasLo, iv.Lo = true, *lo
		}
		if hi != nil && (!iv.HasHi || *hi < iv.Hi) {
			iv.HasHi, iv.Hi = true, *hi
		}
		nd := Domain{}
		if iv.HasLo {
			nd.HasMin, nd.Min = true, value.NewFloat(iv.Lo)
		}
		if iv.HasHi {
			nd.HasMax, nd.Max = true, value.NewFloat(iv.Hi)
		}
		out[key] = nd
	}
	for _, cj := range conjs {
		switch n := cj.(type) {
		case Binary:
			col, cok := n.L.(Col)
			cst, vok := n.R.(Const)
			op := n.Op
			if !cok || !vok {
				// try flipped orientation
				col, cok = n.R.(Col)
				cst, vok = n.L.(Const)
				if !cok || !vok {
					continue
				}
				switch op {
				case "<":
					op = ">"
				case "<=":
					op = ">="
				case ">":
					op = "<"
				case ">=":
					op = "<="
				}
			}
			if side, ok := bd.SideOf(col); !ok || side != SideDetail {
				continue
			}
			f, err := cst.Val.AsFloat()
			if err != nil {
				continue
			}
			switch op {
			case "=":
				apply(col.Name, &f, &f)
			case "<", "<=":
				apply(col.Name, nil, &f)
			case ">", ">=":
				apply(col.Name, &f, nil)
			}
		case Between:
			col, cok := n.X.(Col)
			lo, lok := n.Lo.(Const)
			hi, hok := n.Hi.(Const)
			if !cok || !lok || !hok || n.Neg {
				continue
			}
			if side, ok := bd.SideOf(col); !ok || side != SideDetail {
				continue
			}
			lf, e1 := lo.Val.AsFloat()
			hf, e2 := hi.Val.AsFloat()
			if e1 != nil || e2 != nil {
				continue
			}
			apply(col.Name, &lf, &hf)
		case InList:
			col, cok := n.X.(Col)
			if !cok || n.Neg {
				continue
			}
			if side, ok := bd.SideOf(col); !ok || side != SideDetail {
				continue
			}
			key := strings.ToLower(col.Name)
			d := out[key]
			if d.Set != nil {
				allowed := make(map[string]struct{}, len(n.Vals))
				for _, v := range n.Vals {
					allowed[v.Key()] = struct{}{}
				}
				var kept []value.V
				for _, v := range d.Set {
					if _, ok := allowed[v.Key()]; ok {
						kept = append(kept, v)
					}
				}
				d.Set = kept
				out[key] = d
			} else {
				out[key] = DomainSet(append([]value.V(nil), n.Vals...)...)
			}
		}
	}
	return out
}

// DeriveSiteFilter implements the analysis behind Theorem 4
// (distribution-aware group reduction). Given the conditions θ_1..θ_m of a
// GMDJ round and the per-column domains of one site's partition (φ_i), it
// derives a predicate over the base relation that is implied by
// ¬ψ_i(b) = ∃ r ∈ R_i : (θ_1 ∨ ... ∨ θ_m)(b, r).
//
// The coordinator may ship to the site only base tuples satisfying the
// returned filter: excluded tuples provably have RNG(b, R_i, θ) = ∅ for
// every θ and hence contribute nothing at that site. A nil result means no
// useful restriction could be derived (the site must receive all of B).
func DeriveSiteFilter(thetas []Expr, bd Binding, domains map[string]Domain) Expr {
	var perTheta []Expr
	for _, theta := range thetas {
		f, ok := deriveThetaFilter(theta, bd, domains)
		if !ok {
			// One unrestrictable θ forces shipping all of B: b might be
			// needed for that θ's aggregate at this site.
			return nil
		}
		perTheta = append(perTheta, f)
	}
	if len(perTheta) == 0 {
		return nil
	}
	return Or(perTheta...)
}

// deriveThetaFilter derives a necessary condition on b for
// ∃r∈R_i: θ(b, r), or ok=false when nothing could be derived.
func deriveThetaFilter(theta Expr, bd Binding, domains map[string]Domain) (Expr, bool) {
	conjs := Conjuncts(theta)

	// Detail-only conjuncts restrict which r can participate; use them to
	// tighten the site's domains before deriving base constraints.
	var detailOnly []Expr
	for _, cj := range conjs {
		b, d := SidesUsed(cj, bd)
		if d && !b {
			detailOnly = append(detailOnly, cj)
		}
	}
	tight := tightenDomains(detailOnly, bd, domains)

	var constraints []Expr
	for _, cj := range conjs {
		b, d := SidesUsed(cj, bd)
		switch {
		case b && !d:
			// Base-only conjunct: a necessary condition on b as-is.
			constraints = append(constraints, cj)
		case b && d:
			if c := deriveMixedConstraint(cj, bd, tight); c != nil {
				constraints = append(constraints, c)
			}
		}
	}
	if len(constraints) == 0 {
		return nil, false
	}
	return And(constraints...), true
}

// deriveMixedConstraint handles a single conjunct referencing both sides.
func deriveMixedConstraint(cj Expr, bd Binding, domains map[string]Domain) Expr {
	bin, ok := cj.(Binary)
	if !ok {
		return nil
	}
	switch bin.Op {
	case "=", "<", "<=", ">", ">=":
	default:
		return nil
	}
	l, r, op := bin.L, bin.R, bin.Op
	// Normalize to baseExpr OP detailExpr.
	lb, ld := SidesUsed(l, bd)
	rb, rd := SidesUsed(r, bd)
	switch {
	case lb && !ld && rd && !rb:
		// already base OP detail
	case ld && !lb && rb && !rd:
		l, r = r, l
		switch op {
		case "<":
			op = ">"
		case "<=":
			op = ">="
		case ">":
			op = "<"
		case ">=":
			op = "<="
		}
	default:
		return nil
	}

	// Special case: base Col = detail Col with a finite set domain — emit
	// an IN list, which is tighter than the interval hull.
	if op == "=" {
		if dc, ok := r.(Col); ok {
			if d, ok := domains[strings.ToLower(dc.Name)]; ok && d.Set != nil {
				return d.ToExpr(l)
			}
		}
	}

	iv, ok := IntervalOf(r, bd, domains)
	if !ok {
		return nil
	}
	var cs []Expr
	switch op {
	case "=":
		if iv.HasLo {
			cs = append(cs, Binary{Op: ">=", L: l, R: Const{value.NewFloat(iv.Lo)}})
		}
		if iv.HasHi {
			cs = append(cs, Binary{Op: "<=", L: l, R: Const{value.NewFloat(iv.Hi)}})
		}
	case "<":
		if iv.HasHi {
			cs = append(cs, Binary{Op: "<", L: l, R: Const{value.NewFloat(iv.Hi)}})
		}
	case "<=":
		if iv.HasHi {
			cs = append(cs, Binary{Op: "<=", L: l, R: Const{value.NewFloat(iv.Hi)}})
		}
	case ">":
		if iv.HasLo {
			cs = append(cs, Binary{Op: ">", L: l, R: Const{value.NewFloat(iv.Lo)}})
		}
	case ">=":
		if iv.HasLo {
			cs = append(cs, Binary{Op: ">=", L: l, R: Const{value.NewFloat(iv.Lo)}})
		}
	}
	if len(cs) == 0 {
		return nil
	}
	return And(cs...)
}
