package expr

import (
	"strings"
	"testing"

	"repro/internal/relation"
	"repro/internal/value"
)

func flowBinding() Binding {
	base := relation.MustSchema(
		relation.Column{Name: "SourceAS", Kind: value.KindInt},
		relation.Column{Name: "DestAS", Kind: value.KindInt},
		relation.Column{Name: "sum1", Kind: value.KindFloat},
		relation.Column{Name: "cnt1", Kind: value.KindInt},
	)
	detail := relation.MustSchema(
		relation.Column{Name: "SourceAS", Kind: value.KindInt},
		relation.Column{Name: "DestAS", Kind: value.KindInt},
		relation.Column{Name: "NumBytes", Kind: value.KindFloat},
	)
	return Binding{
		Base: base, Detail: detail,
		BaseAliases:   []string{"B"},
		DetailAliases: []string{"F", "R"},
	}
}

func bRow(sas, das int64, sum float64, cnt int64) relation.Row {
	return relation.Row{value.NewInt(sas), value.NewInt(das), value.NewFloat(sum), value.NewInt(cnt)}
}

func rRow(sas, das int64, nb float64) relation.Row {
	return relation.Row{value.NewInt(sas), value.NewInt(das), value.NewFloat(nb)}
}

func TestBindAndEval(t *testing.T) {
	bd := flowBinding()
	tests := []struct {
		cond string
		b    relation.Row
		r    relation.Row
		want bool
	}{
		{"F.SourceAS = B.SourceAS", bRow(1, 2, 0, 0), rRow(1, 9, 0), true},
		{"F.SourceAS = B.SourceAS", bRow(1, 2, 0, 0), rRow(3, 9, 0), false},
		{"F.SourceAS = B.SourceAS AND F.DestAS = B.DestAS", bRow(1, 2, 0, 0), rRow(1, 2, 0), true},
		{"F.NumBytes >= B.sum1 / B.cnt1", bRow(0, 0, 100, 4), rRow(0, 0, 30), true},
		{"F.NumBytes >= B.sum1 / B.cnt1", bRow(0, 0, 100, 4), rRow(0, 0, 20), false},
		{"B.DestAS + B.SourceAS < F.SourceAS * 2", bRow(10, 20, 0, 0), rRow(16, 0, 0), true},
		{"B.DestAS + B.SourceAS < F.SourceAS * 2", bRow(10, 20, 0, 0), rRow(15, 0, 0), false},
		{"F.SourceAS IN (1, 2, 3)", bRow(0, 0, 0, 0), rRow(2, 0, 0), true},
		{"F.SourceAS NOT IN (1, 2, 3)", bRow(0, 0, 0, 0), rRow(2, 0, 0), false},
		{"F.SourceAS BETWEEN 5 AND 7", bRow(0, 0, 0, 0), rRow(6, 0, 0), true},
		{"F.SourceAS BETWEEN 5 AND 7", bRow(0, 0, 0, 0), rRow(8, 0, 0), false},
		{"NOT F.SourceAS = 1", bRow(0, 0, 0, 0), rRow(1, 0, 0), false},
		{"F.SourceAS % 2 = 0", bRow(0, 0, 0, 0), rRow(4, 0, 0), true},
		{"NumBytes > 5", bRow(0, 0, 0, 0), rRow(0, 0, 6), true},                 // unqualified, detail only
		{"sum1 > 5", bRow(0, 0, 6, 0), rRow(0, 0, 0), true},                     // unqualified, base only
		{"-F.NumBytes < 0", bRow(0, 0, 0, 0), rRow(0, 0, 3), true},              // unary minus
		{"F.SourceAS = 1 OR B.cnt1 = 9", bRow(0, 0, 0, 9), rRow(5, 0, 0), true}, // OR
	}
	for _, tc := range tests {
		e := MustParse(tc.cond)
		bound, err := Bind(e, bd)
		if err != nil {
			t.Errorf("Bind(%q): %v", tc.cond, err)
			continue
		}
		got, err := bound.EvalBool(tc.b, tc.r)
		if err != nil {
			t.Errorf("Eval(%q): %v", tc.cond, err)
			continue
		}
		if got != tc.want {
			t.Errorf("Eval(%q) = %v, want %v", tc.cond, got, tc.want)
		}
	}
}

func TestBindErrors(t *testing.T) {
	bd := flowBinding()
	bad := []string{
		"X.SourceAS = 1", // unknown qualifier
		"F.Nope = 1",     // unknown column
		"SourceAS = 1",   // ambiguous unqualified (in both schemas)
		"Missing = 1",    // unknown everywhere
	}
	for _, cond := range bad {
		if _, err := Bind(MustParse(cond), bd); err == nil {
			t.Errorf("Bind(%q) should fail", cond)
		}
	}
}

func TestNullComparisonsAreFalse(t *testing.T) {
	bd := flowBinding()
	b := relation.Row{value.Null, value.NewInt(2), value.Null, value.NewInt(0)}
	r := rRow(1, 2, 5)
	for _, cond := range []string{
		"B.SourceAS = 1", "B.SourceAS != 1", "B.SourceAS < 1",
		"B.SourceAS BETWEEN 0 AND 9", "B.SourceAS IN (1, 2)",
	} {
		bound, err := Bind(MustParse(cond), bd)
		if err != nil {
			t.Fatal(err)
		}
		got, err := bound.EvalBool(b, r)
		if err != nil {
			t.Fatal(err)
		}
		if got {
			t.Errorf("%q with NULL should be false", cond)
		}
	}
}

func TestArithmeticEval(t *testing.T) {
	bd := flowBinding()
	bound, err := Bind(MustParse("B.sum1 / B.cnt1"), bd)
	if err != nil {
		t.Fatal(err)
	}
	v, err := bound.Eval(bRow(0, 0, 100, 4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.F != 25 {
		t.Errorf("100/4 = %v", v)
	}
	// Division by zero yields NULL, predicates on it are false.
	v, err = bound.Eval(bRow(0, 0, 100, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsNull() {
		t.Errorf("100/0 = %v, want NULL", v)
	}
}

func TestEvalTypeErrorSurfaces(t *testing.T) {
	bd := Binding{
		Detail: relation.MustSchema(
			relation.Column{Name: "s", Kind: value.KindString},
			relation.Column{Name: "n", Kind: value.KindInt},
		),
		DetailAliases: []string{"T"},
	}
	bound, err := Bind(MustParse("T.s < T.n"), bd)
	if err != nil {
		t.Fatal(err)
	}
	row := relation.Row{value.NewString("a"), value.NewInt(1)}
	if _, err := bound.EvalBool(nil, row); err == nil {
		t.Error("string<int comparison should surface an error")
	}
}

func TestSideOf(t *testing.T) {
	bd := flowBinding()
	if s, ok := bd.SideOf(Col{Qual: "F", Name: "x"}); !ok || s != SideDetail {
		t.Error("F should be detail")
	}
	if s, ok := bd.SideOf(Col{Qual: "b", Name: "x"}); !ok || s != SideBase {
		t.Error("b should be base (case-insensitive)")
	}
	if _, ok := bd.SideOf(Col{Qual: "", Name: "SourceAS"}); ok {
		t.Error("ambiguous unqualified column resolved")
	}
	if s, ok := bd.SideOf(Col{Qual: "", Name: "NumBytes"}); !ok || s != SideDetail {
		t.Error("NumBytes should resolve to detail")
	}
}

func TestRefsOnlyAndSidesUsed(t *testing.T) {
	bd := flowBinding()
	e := MustParse("F.NumBytes > 5")
	if !RefsOnly(e, bd, SideDetail) || RefsOnly(e, bd, SideBase) {
		t.Error("detail-only misclassified")
	}
	e = MustParse("B.sum1 > 5 AND F.NumBytes > 5")
	b, d := SidesUsed(e, bd)
	if !b || !d {
		t.Error("mixed expression misclassified")
	}
	// Unresolvable column counts as both sides (conservative).
	e = MustParse("Z.q = 1")
	b, d = SidesUsed(e, bd)
	if !b || !d {
		t.Error("unknown qualifier should count as both sides")
	}
}

func TestEquiPairsAndResidual(t *testing.T) {
	bd := flowBinding()
	theta := MustParse("F.SourceAS = B.SourceAS AND B.DestAS = F.DestAS AND F.NumBytes >= B.sum1 / B.cnt1")
	pairs := EquiPairs(theta, bd)
	if len(pairs) != 2 {
		t.Fatalf("EquiPairs = %v", pairs)
	}
	if pairs[0].Base.Name != "SourceAS" || pairs[0].Detail.Name != "SourceAS" {
		t.Errorf("pair 0 = %v", pairs[0])
	}
	if pairs[1].Base.Name != "DestAS" {
		t.Errorf("pair 1 = %v", pairs[1])
	}
	res := Residual(theta, bd, pairs)
	if !strings.Contains(res.String(), "NumBytes") || strings.Contains(res.String(), "DestAS") {
		t.Errorf("Residual = %s", res)
	}
	// All-equi theta leaves TRUE residual.
	theta2 := MustParse("F.SourceAS = B.SourceAS")
	res2 := Residual(theta2, bd, EquiPairs(theta2, bd))
	if !IsTrue(res2) {
		t.Errorf("residual of pure equi = %s", res2)
	}
}

func TestEntailsKeyEquality(t *testing.T) {
	bd := flowBinding()
	theta := MustParse("F.SourceAS = B.SourceAS AND F.DestAS = B.DestAS AND F.NumBytes > 0")
	if !EntailsKeyEquality(theta, bd, []string{"SourceAS", "DestAS"}) {
		t.Error("key equality not detected")
	}
	if EntailsKeyEquality(MustParse("F.SourceAS = B.SourceAS"), bd, []string{"SourceAS", "DestAS"}) {
		t.Error("missing DestAS equality should fail")
	}
	// R-side inequality does not count.
	if EntailsKeyEquality(MustParse("F.SourceAS > B.SourceAS"), bd, []string{"SourceAS"}) {
		t.Error("inequality treated as equality")
	}
}
