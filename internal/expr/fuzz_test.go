package expr

import (
	"testing"
)

// FuzzParse asserts the parser never panics and that the canonical text
// form is a fixpoint: Parse(e.String()).String() == e.String(). The
// fixpoint property is what makes Expr.String a safe wire format.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"F.SourceAS = B.SourceAS AND F.DestAS = B.DestAS",
		"F.NumBytes >= B.sum1 / B.cnt1",
		"B.DestAS + B.SourceAS < F.SourceAS * 2",
		"x IN (1, 2, 3) OR y NOT BETWEEN -5 AND 5",
		"CASE WHEN a > 1 THEN 'x' ELSE coalesce(b, 0) END",
		"name LIKE 'Customer#%' AND NOT (a = 1)",
		"abs(x - y) <= greatest(a, b, 1.5)",
		"s = 'it''s'",
		"1e3 + -2.5 % 3",
		"((((a))))",
		"TRUE AND FALSE OR NULL = x",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		e, err := Parse(input)
		if err != nil {
			return // invalid input is fine; panics are not
		}
		s1 := e.String()
		e2, err := Parse(s1)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %q -> %q: %v", input, s1, err)
		}
		if s2 := e2.String(); s2 != s1 {
			t.Fatalf("canonical form not a fixpoint: %q -> %q -> %q", input, s1, s2)
		}
	})
}
