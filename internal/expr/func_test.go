package expr

import (
	"testing"

	"repro/internal/relation"
	"repro/internal/value"
)

func TestParseCase(t *testing.T) {
	tests := []struct {
		in   string
		want string // canonical; "" = same
	}{
		{"CASE WHEN a > 1 THEN 10 ELSE 0 END", ""},
		{"CASE WHEN a > 1 THEN 10 END", ""},
		{"CASE WHEN a = 1 THEN 'one' WHEN a = 2 THEN 'two' ELSE 'many' END", ""},
		{"1 + (CASE WHEN a > 0 THEN a ELSE 0 END)", "1 + CASE WHEN a > 0 THEN a ELSE 0 END"},
		{"case when a>1 then 2 end", "CASE WHEN a > 1 THEN 2 END"},
	}
	for _, tc := range tests {
		e, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		want := tc.want
		if want == "" {
			want = tc.in
		}
		if got := e.String(); got != want {
			t.Errorf("Parse(%q) = %q, want %q", tc.in, got, want)
		}
		// Wire-format stability.
		again, err := Parse(e.String())
		if err != nil || again.String() != e.String() {
			t.Errorf("round trip of %q failed: %v", tc.in, err)
		}
	}
}

func TestParseCaseErrors(t *testing.T) {
	bad := []string{
		"CASE END",
		"CASE WHEN a THEN END",
		"CASE WHEN a THEN 1",   // missing END
		"CASE WHEN THEN 1 END", // missing condition
		"CASE ELSE 1 END",      // no arms
		"abs()",                // no args
		"abs(1, 2)",            // wrong arity
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			e, _ := Parse(in)
			// abs arity errors surface at bind time, not parse time.
			if _, berr := Bind(e, Binding{}); berr == nil {
				t.Errorf("Parse(%q) should fail somewhere", in)
			}
		}
	}
}

func TestCaseEval(t *testing.T) {
	schema := relation.MustSchema(
		relation.Column{Name: "port", Kind: value.KindInt},
		relation.Column{Name: "bytes", Kind: value.KindInt},
	)
	bd := SingleRelation(schema, "F")
	e := MustParse("CASE WHEN F.port IN (80, 443) THEN F.bytes ELSE 0 END")
	bound, err := Bind(e, bd)
	if err != nil {
		t.Fatal(err)
	}
	row := relation.Row{value.NewInt(443), value.NewInt(1000)}
	v, err := bound.Eval(nil, row)
	if err != nil || v.I != 1000 {
		t.Errorf("web row = %v, %v", v, err)
	}
	row = relation.Row{value.NewInt(22), value.NewInt(1000)}
	v, err = bound.Eval(nil, row)
	if err != nil || v.I != 0 {
		t.Errorf("ssh row = %v, %v", v, err)
	}
	// No ELSE → NULL.
	e2 := MustParse("CASE WHEN F.port = 80 THEN 1 END")
	bound2, err := Bind(e2, bd)
	if err != nil {
		t.Fatal(err)
	}
	v, err = bound2.Eval(nil, row)
	if err != nil || !v.IsNull() {
		t.Errorf("no-else case = %v, %v", v, err)
	}
}

func TestScalarFunctions(t *testing.T) {
	schema := relation.MustSchema(
		relation.Column{Name: "a", Kind: value.KindInt},
		relation.Column{Name: "b", Kind: value.KindInt},
	)
	bd := SingleRelation(schema, "T")
	row := relation.Row{value.NewInt(-7), value.Null}

	tests := []struct {
		in   string
		want value.V
	}{
		{"abs(T.a)", value.NewInt(7)},
		{"abs(3.5)", value.NewFloat(3.5)},
		{"abs(-3.5)", value.NewFloat(3.5)},
		{"least(T.a, 0, 5)", value.NewInt(-7)},
		{"greatest(T.a, 0, 5)", value.NewInt(5)},
		{"least(T.b, 3)", value.NewInt(3)}, // NULLs skipped
		{"coalesce(T.b, T.a, 1)", value.NewInt(-7)},
		{"coalesce(T.b, T.b)", value.Null},
	}
	for _, tc := range tests {
		bound, err := Bind(MustParse(tc.in), bd)
		if err != nil {
			t.Errorf("Bind(%q): %v", tc.in, err)
			continue
		}
		got, err := bound.Eval(nil, row)
		if err != nil {
			t.Errorf("Eval(%q): %v", tc.in, err)
			continue
		}
		if !value.Equal(got, tc.want) && !(got.IsNull() && tc.want.IsNull()) {
			t.Errorf("Eval(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if _, err := Bind(MustParse("abs('x')"), bd); err != nil {
		t.Fatal(err) // binds fine; errors at eval
	}
	bound, _ := Bind(MustParse("abs(T.a + 'x')"), bd)
	if _, err := bound.Eval(nil, row); err == nil {
		t.Error("abs of string arithmetic should error")
	}
}

func TestCallRoundTrip(t *testing.T) {
	for _, in := range []string{
		"abs(x - y)",
		"coalesce(a, b, 0)",
		"greatest(least(a, b), 0)",
	} {
		e := MustParse(in)
		if got := e.String(); got != in {
			t.Errorf("%q rendered as %q", in, got)
		}
	}
}

func TestCaseInWalkAndRewrite(t *testing.T) {
	e := MustParse("CASE WHEN a = 1 THEN coalesce(b, 0) ELSE abs(c) END")
	cols := Cols(e)
	if len(cols) != 3 {
		t.Errorf("Cols = %v", cols)
	}
	got := Rewrite(e, func(x Expr) Expr {
		if c, ok := x.(Col); ok {
			return Col{Qual: "F", Name: c.Name}
		}
		return nil
	})
	want := "CASE WHEN F.a = 1 THEN coalesce(F.b, 0) ELSE abs(F.c) END"
	if got.String() != want {
		t.Errorf("Rewrite = %s, want %s", got, want)
	}
	// Original untouched.
	if e.String() != "CASE WHEN a = 1 THEN coalesce(b, 0) ELSE abs(c) END" {
		t.Errorf("Rewrite mutated original: %s", e)
	}
}

func TestUnknownFunctionStaysColumnError(t *testing.T) {
	// frob(x) is not a scalar function, so "frob" lexes as an identifier
	// and "(" makes the parse fail cleanly.
	if _, err := Parse("frob(x) > 1"); err == nil {
		t.Error("unknown function call should not parse")
	}
}

func TestLikeMatch(t *testing.T) {
	tests := []struct {
		s, p string
		want bool
	}{
		{"Customer#000000001", "Customer#%", true},
		{"Customer#000000001", "%001", true},
		{"Customer#000000001", "%0000%", true},
		{"Customer#000000001", "customer#%", false}, // case sensitive
		{"abc", "a_c", true},
		{"abc", "a_d", false},
		{"abc", "abc", true},
		{"abc", "ab", false},
		{"abc", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"aXbXc", "a%b%c", true},
		{"mississippi", "m%iss%ppi", true},
		{"mississippi", "m%iss%ppj", false},
	}
	for _, tc := range tests {
		if got := likeMatch(tc.s, tc.p); got != tc.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", tc.s, tc.p, got, tc.want)
		}
	}
}

func TestLikeExpr(t *testing.T) {
	schema := relation.MustSchema(
		relation.Column{Name: "name", Kind: value.KindString},
		relation.Column{Name: "n", Kind: value.KindInt},
	)
	bd := SingleRelation(schema, "T")
	tests := []struct {
		cond string
		name string
		want bool
	}{
		{"T.name LIKE 'Cust%'", "Customer#1", true},
		{"T.name LIKE 'Cust%'", "Supplier#1", false},
		{"T.name NOT LIKE 'Cust%'", "Supplier#1", true},
		{"T.name LIKE '%#_'", "Customer#1", true},
		{"T.name LIKE '%#__'", "Customer#1", false},
	}
	for _, tc := range tests {
		bound, err := Bind(MustParse(tc.cond), bd)
		if err != nil {
			t.Fatalf("Bind(%q): %v", tc.cond, err)
		}
		row := relation.Row{value.NewString(tc.name), value.NewInt(1)}
		got, err := bound.EvalBool(nil, row)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("%q on %q = %v, want %v", tc.cond, tc.name, got, tc.want)
		}
	}
	// Round trip through the wire format.
	e := MustParse("T.name LIKE 'it''s_%'")
	again := MustParse(e.String())
	if again.String() != e.String() {
		t.Errorf("LIKE round trip: %q vs %q", e, again)
	}
	// LIKE on NULL is false; on a number it errors.
	bound, _ := Bind(MustParse("T.name LIKE 'x'"), bd)
	if got, err := bound.EvalBool(nil, relation.Row{value.Null, value.NewInt(1)}); err != nil || got {
		t.Errorf("LIKE NULL = %v, %v", got, err)
	}
	bound, _ = Bind(MustParse("T.n LIKE 'x'"), bd)
	if _, err := bound.EvalBool(nil, relation.Row{value.NewString("a"), value.NewInt(1)}); err == nil {
		t.Error("LIKE on int should error")
	}
	// Parse errors.
	if _, err := Parse("x LIKE 5"); err == nil {
		t.Error("LIKE with non-string pattern parsed")
	}
}
