package expr

import (
	"strings"

	"repro/internal/value"
)

// This file adds CASE expressions and scalar function calls to the
// expression language. Conditional expressions matter for OLAP because
// they turn filters into aggregate arguments — e.g.
// sum(CASE WHEN DestPort IN (80, 443) THEN NumBytes ELSE 0 END) — which
// composes with the distributed sub-aggregate machinery for free.

// When is one WHEN/THEN arm of a CASE expression.
type When struct {
	Cond Expr
	Then Expr
}

// Case is a searched CASE expression: the first arm whose condition is
// true yields the result; otherwise Else (NULL when absent).
type Case struct {
	Whens []When
	Else  Expr // may be nil
}

func (Case) precedence() int { return precAtom }

func (c Case) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range c.Whens {
		b.WriteString(" WHEN ")
		b.WriteString(w.Cond.String())
		b.WriteString(" THEN ")
		b.WriteString(w.Then.String())
	}
	if c.Else != nil {
		b.WriteString(" ELSE ")
		b.WriteString(c.Else.String())
	}
	b.WriteString(" END")
	return b.String()
}

// Call is a scalar function call. Supported functions: abs(x),
// least(x, ...), greatest(x, ...), coalesce(x, ...).
type Call struct {
	Name string
	Args []Expr
}

func (Call) precedence() int { return precAtom }

func (c Call) String() string {
	var b strings.Builder
	b.WriteString(strings.ToLower(c.Name))
	b.WriteByte('(')
	for i, a := range c.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	b.WriteByte(')')
	return b.String()
}

// scalarArity maps supported scalar functions to their minimum arity;
// -1 means variadic with at least one argument.
var scalarFuncs = map[string]int{
	"abs":      1,
	"least":    -1,
	"greatest": -1,
	"coalesce": -1,
}

// IsScalarFunc reports whether name is a supported scalar function.
func IsScalarFunc(name string) bool {
	_, ok := scalarFuncs[strings.ToLower(name)]
	return ok
}

// compileCase and compileCall extend the binder (bind.go dispatches here).

func compileCase(n Case, bd Binding) (evalFn, error) {
	type arm struct {
		cond evalFn
		then evalFn
	}
	arms := make([]arm, len(n.Whens))
	for i, w := range n.Whens {
		c, err := compile(w.Cond, bd)
		if err != nil {
			return nil, err
		}
		t, err := compile(w.Then, bd)
		if err != nil {
			return nil, err
		}
		arms[i] = arm{cond: c, then: t}
	}
	var els evalFn
	if n.Else != nil {
		var err error
		els, err = compile(n.Else, bd)
		if err != nil {
			return nil, err
		}
	}
	return func(b, r []value.V) (value.V, error) {
		for _, a := range arms {
			c, err := a.cond(b, r)
			if err != nil {
				return value.Null, err
			}
			if c.Bool() {
				return a.then(b, r)
			}
		}
		if els != nil {
			return els(b, r)
		}
		return value.Null, nil
	}, nil
}

func compileCall(n Call, bd Binding) (evalFn, error) {
	name := strings.ToLower(n.Name)
	min, ok := scalarFuncs[name]
	if !ok {
		return nil, errorf("unknown function %q", n.Name)
	}
	if min >= 0 && len(n.Args) != min || min < 0 && len(n.Args) == 0 {
		return nil, errorf("%s: wrong argument count %d", name, len(n.Args))
	}
	args := make([]evalFn, len(n.Args))
	for i, a := range n.Args {
		fn, err := compile(a, bd)
		if err != nil {
			return nil, err
		}
		args[i] = fn
	}
	switch name {
	case "abs":
		return func(b, r []value.V) (value.V, error) {
			v, err := args[0](b, r)
			if err != nil || v.IsNull() {
				return v, err
			}
			switch v.K {
			case value.KindInt:
				if v.I < 0 {
					return value.NewInt(-v.I), nil
				}
				return v, nil
			case value.KindFloat:
				if v.F < 0 {
					return value.NewFloat(-v.F), nil
				}
				return v, nil
			default:
				return value.Null, errorf("abs of %s", v.K)
			}
		}, nil
	case "least", "greatest":
		greatest := name == "greatest"
		return func(b, r []value.V) (value.V, error) {
			best := value.Null
			for _, fn := range args {
				v, err := fn(b, r)
				if err != nil {
					return value.Null, err
				}
				if v.IsNull() {
					continue // SQL least/greatest skip NULLs
				}
				if best.IsNull() {
					best = v
					continue
				}
				c, err := value.Compare(v, best)
				if err != nil {
					return value.Null, err
				}
				if greatest && c > 0 || !greatest && c < 0 {
					best = v
				}
			}
			return best, nil
		}, nil
	case "coalesce":
		return func(b, r []value.V) (value.V, error) {
			for _, fn := range args {
				v, err := fn(b, r)
				if err != nil {
					return value.Null, err
				}
				if !v.IsNull() {
					return v, nil
				}
			}
			return value.Null, nil
		}, nil
	}
	return nil, errorf("unhandled function %q", name)
}

// LikeMatch reports whether s matches the SQL LIKE pattern, using the same
// semantics as the bound evaluator. Exported for the vectorized kernels,
// which pre-evaluate patterns per dictionary entry.
func LikeMatch(s, pattern string) bool { return likeMatch(s, pattern) }

// likeMatch implements SQL LIKE: '%' matches any run (including empty),
// '_' matches exactly one byte. Matching is iterative with greedy '%'
// backtracking, the classic wildcard algorithm.
func likeMatch(s, pattern string) bool {
	si, pi := 0, 0
	star, starSi := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star, starSi = pi, si
			pi++
		case star >= 0:
			starSi++
			si = starSi
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}
