package expr

import (
	"strings"
	"testing"

	"repro/internal/relation"
	"repro/internal/value"
)

func intSet(vals ...int64) Domain {
	vs := make([]value.V, len(vals))
	for i, v := range vals {
		vs[i] = value.NewInt(v)
	}
	return DomainSet(vs...)
}

func TestDomainInterval(t *testing.T) {
	d := intSet(3, 1, 7)
	iv, ok := d.Interval()
	if !ok || iv.Lo != 1 || iv.Hi != 7 {
		t.Errorf("interval of {3,1,7} = %+v, %v", iv, ok)
	}
	d = DomainRange(value.NewInt(1), value.NewInt(25))
	iv, ok = d.Interval()
	if !ok || iv.Lo != 1 || iv.Hi != 25 {
		t.Errorf("interval of [1,25] = %+v", iv)
	}
	if _, ok := DomainSet().Interval(); ok {
		t.Error("empty set has an interval")
	}
	if _, ok := DomainSet(value.NewString("x")).Interval(); ok {
		t.Error("string set has a numeric interval")
	}
}

func TestDomainToExpr(t *testing.T) {
	if s := intSet(1, 2).ToExpr(Col{Qual: "B", Name: "x"}).String(); s != "B.x IN (1, 2)" {
		t.Errorf("set expr = %s", s)
	}
	if s := DomainRange(value.NewInt(1), value.NewInt(25)).ToExpr(Col{Name: "x"}).String(); s != "x BETWEEN 1 AND 25" {
		t.Errorf("range expr = %s", s)
	}
	d := Domain{HasMin: true, Min: value.NewInt(5)}
	if s := d.ToExpr(Col{Name: "x"}).String(); s != "x >= 5" {
		t.Errorf("min-only expr = %s", s)
	}
}

func TestIntervalArithmetic(t *testing.T) {
	bd := flowBinding()
	domains := map[string]Domain{
		"sourceas": DomainRange(value.NewInt(1), value.NewInt(25)),
		"numbytes": DomainRange(value.NewInt(0), value.NewInt(100)),
	}
	tests := []struct {
		e      string
		lo, hi float64
	}{
		{"F.SourceAS", 1, 25},
		{"F.SourceAS * 2", 2, 50},
		{"F.SourceAS + F.NumBytes", 1, 125},
		{"F.SourceAS - F.NumBytes", -99, 25},
		{"-F.SourceAS", -25, -1},
		{"F.SourceAS * -2", -50, -2},
		{"F.NumBytes / F.SourceAS", 0, 100},
		{"3 + 4", 7, 7},
	}
	for _, tc := range tests {
		iv, ok := IntervalOf(MustParse(tc.e), bd, domains)
		if !ok || !iv.HasLo || !iv.HasHi {
			t.Errorf("IntervalOf(%q) unknown", tc.e)
			continue
		}
		if iv.Lo != tc.lo || iv.Hi != tc.hi {
			t.Errorf("IntervalOf(%q) = [%v,%v], want [%v,%v]", tc.e, iv.Lo, iv.Hi, tc.lo, tc.hi)
		}
	}
	// Division by an interval containing zero is unknown.
	if _, ok := IntervalOf(MustParse("1 / F.NumBytes"), bd, domains); ok {
		t.Error("division by zero-containing interval should be unknown")
	}
	// Base columns have no detail interval.
	if _, ok := IntervalOf(MustParse("B.sum1"), bd, domains); ok {
		t.Error("base column should have unknown interval")
	}
}

// TestDeriveSiteFilterEquality reproduces Example 2 of the paper: site S1
// holds SourceAS in [1,25]; θ contains F.SourceAS = B.SourceAS; the
// derived ¬ψ filter must be B.SourceAS ∈ [1,25].
func TestDeriveSiteFilterEquality(t *testing.T) {
	bd := flowBinding()
	theta := MustParse("F.SourceAS = B.SourceAS AND F.DestAS = B.DestAS")
	domains := map[string]Domain{
		"sourceas": DomainRange(value.NewInt(1), value.NewInt(25)),
	}
	f := DeriveSiteFilter([]Expr{theta}, bd, domains)
	if f == nil {
		t.Fatal("no filter derived")
	}
	s := f.String()
	if !strings.Contains(s, "B.SourceAS") || !strings.Contains(s, "1") || !strings.Contains(s, "25") {
		t.Errorf("filter = %s", s)
	}
	// The filter must be evaluable over the base schema alone.
	bound, err := Bind(f, Binding{Base: bd.Base, BaseAliases: bd.BaseAliases})
	if err != nil {
		t.Fatalf("derived filter does not bind to base: %v", err)
	}
	in, err := bound.EvalBool(bRow(10, 0, 0, 0), nil)
	if err != nil || !in {
		t.Errorf("SourceAS=10 should pass: %v %v", in, err)
	}
	out, err := bound.EvalBool(bRow(30, 0, 0, 0), nil)
	if err != nil || out {
		t.Errorf("SourceAS=30 should be filtered: %v %v", out, err)
	}
}

// TestDeriveSiteFilterSet checks the finite-set (IN list) variant used by
// NationKey-style partitioning.
func TestDeriveSiteFilterSet(t *testing.T) {
	bd := flowBinding()
	theta := MustParse("F.SourceAS = B.SourceAS")
	domains := map[string]Domain{"sourceas": intSet(3, 4, 5)}
	f := DeriveSiteFilter([]Expr{theta}, bd, domains)
	if f == nil {
		t.Fatal("no filter derived")
	}
	if s := f.String(); s != "B.SourceAS IN (3, 4, 5)" {
		t.Errorf("filter = %s", s)
	}
}

// TestDeriveSiteFilterArithmetic reproduces the paper's revised Example 2:
// θ is B.DestAS + B.SourceAS < F.SourceAS * 2 with SourceAS ∈ [1,25]; the
// derived condition is B.DestAS + B.SourceAS < 50.
func TestDeriveSiteFilterArithmetic(t *testing.T) {
	bd := flowBinding()
	theta := MustParse("B.DestAS + B.SourceAS < F.SourceAS * 2")
	domains := map[string]Domain{
		"sourceas": DomainRange(value.NewInt(1), value.NewInt(25)),
	}
	f := DeriveSiteFilter([]Expr{theta}, bd, domains)
	if f == nil {
		t.Fatal("no filter derived")
	}
	if s := f.String(); s != "B.DestAS + B.SourceAS < 50" {
		t.Errorf("filter = %s, want B.DestAS + B.SourceAS < 50", s)
	}
}

// TestDeriveSiteFilterFlipped checks orientation normalization
// (detail CMP base).
func TestDeriveSiteFilterFlipped(t *testing.T) {
	bd := flowBinding()
	theta := MustParse("F.SourceAS * 2 > B.DestAS + B.SourceAS")
	domains := map[string]Domain{
		"sourceas": DomainRange(value.NewInt(1), value.NewInt(25)),
	}
	f := DeriveSiteFilter([]Expr{theta}, bd, domains)
	if f == nil {
		t.Fatal("no filter derived")
	}
	if s := f.String(); s != "B.DestAS + B.SourceAS < 50" {
		t.Errorf("filter = %s", s)
	}
}

// TestDeriveSiteFilterMultiTheta checks the OR across conditions: a tuple
// may be needed by either θ.
func TestDeriveSiteFilterMultiTheta(t *testing.T) {
	bd := flowBinding()
	t1 := MustParse("F.SourceAS = B.SourceAS")
	t2 := MustParse("F.DestAS = B.DestAS")
	domains := map[string]Domain{
		"sourceas": intSet(1, 2),
		"destas":   intSet(8, 9),
	}
	f := DeriveSiteFilter([]Expr{t1, t2}, bd, domains)
	if f == nil {
		t.Fatal("no filter derived")
	}
	s := f.String()
	if !strings.Contains(s, "OR") || !strings.Contains(s, "B.SourceAS IN (1, 2)") ||
		!strings.Contains(s, "B.DestAS IN (8, 9)") {
		t.Errorf("filter = %s", s)
	}
}

// TestDeriveSiteFilterUnrestrictable: if any θ gives nothing, the whole
// derivation must give nil (all of B is needed).
func TestDeriveSiteFilterUnrestrictable(t *testing.T) {
	bd := flowBinding()
	t1 := MustParse("F.SourceAS = B.SourceAS")
	t2 := MustParse("F.NumBytes > 0") // no base reference: unrestrictable
	domains := map[string]Domain{"sourceas": intSet(1)}
	if f := DeriveSiteFilter([]Expr{t1, t2}, bd, domains); f != nil {
		t.Errorf("expected nil filter, got %s", f)
	}
	// No domain knowledge at all for equality: also nil.
	if f := DeriveSiteFilter([]Expr{t1}, bd, nil); f != nil {
		t.Errorf("expected nil filter without domains, got %s", f)
	}
}

// TestDeriveSiteFilterDetailTightening: detail-only conjuncts narrow the
// domain before base constraints are derived.
func TestDeriveSiteFilterDetailTightening(t *testing.T) {
	bd := flowBinding()
	theta := MustParse("F.SourceAS = B.SourceAS AND F.SourceAS >= 10")
	domains := map[string]Domain{
		"sourceas": DomainRange(value.NewInt(1), value.NewInt(25)),
	}
	f := DeriveSiteFilter([]Expr{theta}, bd, domains)
	if f == nil {
		t.Fatal("no filter derived")
	}
	s := f.String()
	if !strings.Contains(s, "10") || !strings.Contains(s, "25") {
		t.Errorf("tightened filter = %s, want bounds [10,25]", s)
	}
	// Set domains are filtered element-wise.
	domains = map[string]Domain{"sourceas": intSet(5, 10, 15)}
	f = DeriveSiteFilter([]Expr{theta}, bd, domains)
	if f == nil || strings.Contains(f.String(), "5,") {
		t.Errorf("set-tightened filter = %v", f)
	}
	if !strings.Contains(f.String(), "10, 15") {
		t.Errorf("set-tightened filter = %s, want IN (10, 15)", f)
	}
}

// TestDeriveSiteFilterBaseOnlyConjunct: base-only conjuncts are necessary
// conditions and belong in the filter.
func TestDeriveSiteFilterBaseOnlyConjunct(t *testing.T) {
	bd := flowBinding()
	theta := MustParse("F.SourceAS = B.SourceAS AND B.DestAS > 100")
	domains := map[string]Domain{"sourceas": intSet(1)}
	f := DeriveSiteFilter([]Expr{theta}, bd, domains)
	if f == nil {
		t.Fatal("no filter derived")
	}
	if !strings.Contains(f.String(), "B.DestAS > 100") {
		t.Errorf("filter = %s", f)
	}
}

func TestEquiDetailAttrs(t *testing.T) {
	bd := flowBinding()
	m := EquiDetailAttrs(MustParse("F.SourceAS = B.SourceAS AND F.NumBytes > 5"), bd)
	if m["sourceas"] != "sourceas" || len(m) != 1 {
		t.Errorf("EquiDetailAttrs = %v", m)
	}
}

func TestTightenDomainsInList(t *testing.T) {
	bd := flowBinding()
	theta := MustParse("F.SourceAS = B.SourceAS AND F.SourceAS IN (2, 4)")
	domains := map[string]Domain{"sourceas": intSet(1, 2, 3)}
	f := DeriveSiteFilter([]Expr{theta}, bd, domains)
	if f == nil {
		t.Fatal("no filter")
	}
	if s := f.String(); s != "B.SourceAS IN (2)" {
		t.Errorf("filter = %s, want B.SourceAS IN (2)", s)
	}
}

func TestDomainEmpty(t *testing.T) {
	if !DomainSet().Empty() {
		t.Error("empty set not Empty")
	}
	if intSet(1).Empty() || (Domain{}).Empty() {
		t.Error("non-empty domains reported Empty")
	}
}

var _ = relation.New // keep import when tests shuffle
