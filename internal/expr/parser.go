package expr

import (
	"strconv"
	"strings"
	"unicode"

	"repro/internal/value"
)

// Parse parses the textual expression form produced by Expr.String (and
// written by hand in queries): SQL-ish conditions with AND/OR/NOT (also
// &&, ||, !), comparisons (= == != <> < <= > >=), IN lists, BETWEEN,
// arithmetic (+ - * / %), qualified column references (F.NumBytes),
// integer/float/string literals, and parentheses.
func Parse(input string) (Expr, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, input: input}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, errorf("parse %q: unexpected %q at offset %d", input, p.peek().text, p.peek().pos)
	}
	return e, nil
}

// MustParse is Parse but panics on error; for tests and literals.
func MustParse(input string) Expr {
	e, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return e
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp      // punctuation operators
	tokKeyword // AND OR NOT IN BETWEEN TRUE FALSE NULL
)

type token struct {
	kind tokKind
	text string
	pos  int
}

var keywords = map[string]bool{
	"AND": true, "OR": true, "NOT": true, "IN": true,
	"BETWEEN": true, "TRUE": true, "FALSE": true, "NULL": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"LIKE": true,
}

func lex(s string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			for {
				if i >= len(s) {
					return nil, errorf("parse %q: unterminated string at offset %d", s, start)
				}
				if s[i] == '\'' {
					if i+1 < len(s) && s[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(s[i])
				i++
			}
			toks = append(toks, token{tokString, sb.String(), start})
		case c >= '0' && c <= '9' || c == '.' && i+1 < len(s) && s[i+1] >= '0' && s[i+1] <= '9':
			start := i
			for i < len(s) && (s[i] >= '0' && s[i] <= '9' || s[i] == '.' || s[i] == 'e' || s[i] == 'E' ||
				(s[i] == '+' || s[i] == '-') && i > start && (s[i-1] == 'e' || s[i-1] == 'E')) {
				i++
			}
			toks = append(toks, token{tokNumber, s[start:i], start})
		case isIdentStart(rune(c)):
			start := i
			for i < len(s) && isIdentPart(rune(s[i])) {
				i++
			}
			word := s[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{tokKeyword, up, start})
			} else {
				toks = append(toks, token{tokIdent, word, start})
			}
		default:
			start := i
			two := ""
			if i+1 < len(s) {
				two = s[i : i+2]
			}
			switch two {
			case "&&", "||", "==", "!=", "<>", "<=", ">=":
				op := two
				switch two {
				case "&&":
					op = "AND"
				case "||":
					op = "OR"
				case "==":
					op = "="
				case "<>":
					op = "!="
				}
				kind := tokOp
				if op == "AND" || op == "OR" {
					kind = tokKeyword
				}
				toks = append(toks, token{kind, op, start})
				i += 2
				continue
			}
			switch c {
			case '=', '<', '>', '+', '-', '*', '/', '%', '(', ')', ',', '.':
				toks = append(toks, token{tokOp, string(c), start})
				i++
			case '!':
				toks = append(toks, token{tokKeyword, "NOT", start})
				i++
			default:
				return nil, errorf("parse %q: unexpected character %q at offset %d", s, string(c), i)
			}
		}
	}
	toks = append(toks, token{tokEOF, "", len(s)})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

type parser struct {
	toks  []token
	pos   int
	input string
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(kind tokKind, text string) bool {
	t := p.peek()
	if t.kind == kind && t.text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) error {
	if !p.accept(kind, text) {
		t := p.peek()
		return errorf("parse %q: expected %q, found %q at offset %d", p.input, text, t.text, t.pos)
	}
	return nil
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return Unary{Op: "NOT", X: x}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	neg := false
	if p.peek().kind == tokKeyword && p.peek().text == "NOT" {
		// lookahead for NOT IN / NOT BETWEEN
		if p.pos+1 < len(p.toks) {
			nt := p.toks[p.pos+1]
			if nt.kind == tokKeyword && (nt.text == "IN" || nt.text == "BETWEEN" || nt.text == "LIKE") {
				p.pos++
				neg = true
			}
		}
	}
	if p.accept(tokKeyword, "IN") {
		return p.parseInTail(l, neg)
	}
	if p.accept(tokKeyword, "LIKE") {
		pt := p.next()
		if pt.kind != tokString {
			return nil, errorf("parse %q: LIKE needs a string pattern, found %q", p.input, pt.text)
		}
		return Like{X: l, Pattern: pt.text, Neg: neg}, nil
	}
	if p.accept(tokKeyword, "BETWEEN") {
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return Between{X: l, Lo: lo, Hi: hi, Neg: neg}, nil
	}
	if neg {
		return nil, errorf("parse %q: NOT must be followed by IN, BETWEEN, or LIKE here", p.input)
	}
	t := p.peek()
	if t.kind == tokOp {
		switch t.text {
		case "=", "!=", "<", "<=", ">", ">=":
			p.pos++
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return Binary{Op: t.text, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseInTail(l Expr, neg bool) (Expr, error) {
	if err := p.expect(tokOp, "("); err != nil {
		return nil, err
	}
	in := InList{X: l, Neg: neg}
	for {
		e, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		c, ok := constFold(e)
		if !ok {
			return nil, errorf("parse %q: IN list elements must be literals", p.input)
		}
		in.Vals = append(in.Vals, c)
		if p.accept(tokOp, ",") {
			continue
		}
		if err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return in, nil
	}
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokOp && (t.text == "+" || t.text == "-") {
			p.pos++
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = Binary{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokOp && (t.text == "*" || t.text == "/" || t.text == "%") {
			p.pos++
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = Binary{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokOp, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negation of numeric literals.
		if c, ok := x.(Const); ok && c.Val.K.Numeric() {
			v, err := negConst(c)
			if err == nil {
				return v, nil
			}
		}
		return Unary{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func negConst(c Const) (Expr, error) {
	v, err := value.Neg(c.Val)
	if err != nil {
		return nil, errorf("cannot negate %s", c.Val)
	}
	return Const{Val: v}, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		if i, err := strconv.ParseInt(t.text, 10, 64); err == nil {
			return CInt(i), nil
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, errorf("parse %q: bad number %q at offset %d", p.input, t.text, t.pos)
		}
		return Const{Val: value.NewFloat(f)}, nil
	case tokString:
		return Const{Val: value.NewString(t.text)}, nil
	case tokKeyword:
		switch t.text {
		case "TRUE":
			return Const{Val: value.NewBool(true)}, nil
		case "FALSE":
			return Const{Val: value.NewBool(false)}, nil
		case "NULL":
			return Const{}, nil
		case "CASE":
			return p.parseCaseTail()
		}
		return nil, errorf("parse %q: unexpected keyword %q at offset %d", p.input, t.text, t.pos)
	case tokIdent:
		if p.peek().kind == tokOp && p.peek().text == "(" && IsScalarFunc(t.text) {
			p.pos++ // consume "("
			return p.parseCallTail(t.text)
		}
		if p.accept(tokOp, ".") {
			nt := p.next()
			if nt.kind != tokIdent {
				return nil, errorf("parse %q: expected column name after %q. at offset %d", p.input, t.text, nt.pos)
			}
			return Col{Qual: t.text, Name: nt.text}, nil
		}
		return Col{Name: t.text}, nil
	case tokOp:
		if t.text == "(" {
			e, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, errorf("parse %q: unexpected %q at offset %d", p.input, t.text, t.pos)
}

// parseCaseTail parses the body of a searched CASE expression after the
// CASE keyword: WHEN cond THEN expr ... [ELSE expr] END.
func (p *parser) parseCaseTail() (Expr, error) {
	var c Case
	for p.accept(tokKeyword, "WHEN") {
		cond, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokKeyword, "THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, When{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, errorf("parse %q: CASE needs at least one WHEN arm", p.input)
	}
	if p.accept(tokKeyword, "ELSE") {
		els, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		c.Else = els
	}
	if err := p.expect(tokKeyword, "END"); err != nil {
		return nil, err
	}
	return c, nil
}

// parseCallTail parses the argument list of a scalar function call after
// the opening parenthesis.
func (p *parser) parseCallTail(name string) (Expr, error) {
	call := Call{Name: name}
	if p.accept(tokOp, ")") {
		return nil, errorf("parse %q: %s() needs arguments", p.input, name)
	}
	for {
		arg, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, arg)
		if p.accept(tokOp, ",") {
			continue
		}
		if err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return call, nil
	}
}

// constFold reduces a literal-only expression to its value.
func constFold(e Expr) (value.V, bool) {
	switch n := e.(type) {
	case Const:
		return n.Val, true
	case Unary:
		if n.Op == "-" {
			if c, ok := constFold(n.X); ok {
				if neg, err := value.Neg(c); err == nil {
					return neg, true
				}
			}
		}
	}
	return value.Null, false
}
