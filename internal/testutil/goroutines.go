// Package testutil holds shared helpers for the module's tests. It is
// test-support code: nothing here is imported by production packages.
package testutil

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// leakGrace is how long a finished test waits for stragglers to exit
// before declaring them leaked. Shutdown paths are allowed to take a
// moment (deferred closes, connection teardown), but anything still
// alive after the grace period has no exit path wired to the test's
// lifecycle.
const leakGrace = 2 * time.Second

// CheckGoroutines snapshots the goroutines alive now and registers a
// cleanup that fails the test if new goroutines outlive it. Call it
// first thing in any test that exercises a shutdown path (pool close,
// scheduler drain, service shutdown): it is the runtime complement to
// the static goleak analyzer — goleak proves every launch has an exit
// path in the source, this proves the exit path actually fired.
func CheckGoroutines(t *testing.T) {
	t.Helper()
	base := map[string]int{}
	for _, s := range stacks() {
		base[stackKey(s)]++
	}
	t.Cleanup(func() {
		deadline := time.Now().Add(leakGrace)
		var leaked []string
		for {
			leaked = leaked[:0]
			seen := map[string]int{}
			for _, s := range stacks() {
				k := stackKey(s)
				seen[k]++
				if seen[k] > base[k] {
					leaked = append(leaked, s)
				}
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Errorf("testutil: %d goroutine(s) leaked past the test:\n\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	})
}

// stacks returns one stanza per live goroutine.
func stacks() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	for n == len(buf) {
		buf = make([]byte, 2*len(buf))
		n = runtime.Stack(buf, true)
	}
	return strings.Split(strings.TrimSpace(string(buf[:n])), "\n\n")
}

// stackKey reduces a goroutine stanza to a stable identity — its top
// function plus its creation site — so comparing before/after sets
// tolerates changing goroutine IDs, states, and argument values.
func stackKey(stanza string) string {
	lines := strings.Split(stanza, "\n")
	var top, created string
	if len(lines) > 1 {
		top = trimCallArgs(strings.TrimSpace(lines[1]))
	}
	for _, l := range lines {
		if rest, ok := strings.CutPrefix(l, "created by "); ok {
			created, _, _ = strings.Cut(rest, " in goroutine")
		}
	}
	return top + " <- " + created
}

// trimCallArgs strips the argument list from a stack-frame function
// line, keeping method receivers intact.
func trimCallArgs(l string) string {
	if i := strings.LastIndex(l, "("); i > 0 {
		return l[:i]
	}
	return l
}
