package transport

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/obs"
)

// waitUntil polls cond for up to 5s.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// opBlockingHandler blocks OpEvalRounds until released and answers
// everything else immediately, so a test can pin one request in flight
// while still probing the server with pings.
type opBlockingHandler struct{ release chan struct{} }

func (h *opBlockingHandler) Handle(ctx context.Context, req *Request) *Response {
	if req.Op == OpEvalRounds {
		<-h.release
	}
	return &Response{}
}

// TestServerDrain: SIGTERM-style drain must stop accepting, flip /readyz
// to not-ready, refuse new requests on existing connections with a
// draining shed response, and still let the in-flight request finish.
func TestServerDrain(t *testing.T) {
	h := &opBlockingHandler{release: make(chan struct{})}
	srv := NewServer(h)
	o := obs.New()
	srv.Obs = o
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	c, err := DialTCP("s", addr, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A second connection established pre-drain: its post-drain requests
	// must be shed, not serviced. Ping once so the server has actually
	// accepted it before the drain closes the listener.
	c2, err := DialTCP("s", addr, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Call(context.Background(), &Request{Op: OpPing}); err != nil {
		t.Fatal(err)
	}

	inflight := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), &Request{Op: OpEvalRounds})
		inflight <- err
	}()
	waitUntil(t, "request in flight", func() bool { return srv.Inflight() == 1 })

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(5 * time.Second) }()
	waitUntil(t, "server draining", func() bool { return srv.Draining() })

	if ready, reason := o.Health.Ready(); ready || reason != "draining" {
		t.Errorf("health = (%v, %q), want (false, draining)", ready, reason)
	}

	// New request on the surviving connection: shed with CodeDraining.
	resp, err := c2.Call(context.Background(), &Request{Op: OpPing})
	if err != nil {
		t.Fatalf("drain-time request should be shed, got transport error %v", err)
	}
	if resp.Code != CodeDraining || !errors.Is(resp.Error(), ErrDraining) {
		t.Fatalf("resp = %+v, want CodeDraining", resp)
	}

	// The in-flight request completes and the drain then finishes cleanly.
	close(h.release)
	if err := <-inflight; err != nil {
		t.Errorf("in-flight request lost during drain: %v", err)
	}
	if err := <-drained; err != nil {
		t.Errorf("drain: %v", err)
	}
	if got := o.Metrics.CounterValue("transport.server.drain_rejects"); got != 1 {
		t.Errorf("drain_rejects = %d, want 1", got)
	}
	if got := o.Events.CountKind(obs.EventDrain); got == 0 {
		t.Error("no drain events logged")
	}
}

// TestServerDrainTimeout: a request that outlives the deadline makes
// Drain return an error instead of hanging forever.
func TestServerDrainTimeout(t *testing.T) {
	h := &blockingHandler{release: make(chan struct{})}
	srv := NewServer(h)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialTCP("s", addr, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	defer close(h.release)

	go c.Call(context.Background(), &Request{Op: OpPing})
	waitUntil(t, "request in flight", func() bool { return srv.Inflight() == 1 })

	start := time.Now()
	if err := srv.Drain(50 * time.Millisecond); err == nil {
		t.Fatal("drain with a stuck request should time out")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("drain deadline not enforced")
	}
}

// TestServerDrainIdle: draining an idle server returns immediately.
func TestServerDrainIdle(t *testing.T) {
	srv := NewServer(newEchoHandler())
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Drain(time.Second); err != nil {
		t.Fatalf("idle drain: %v", err)
	}
	// Close after Drain stays clean (listener already closed).
	if err := srv.Close(); err != nil {
		t.Fatalf("close after drain: %v", err)
	}
}
