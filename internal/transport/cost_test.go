package transport

import (
	"sync"
	"testing"
	"time"
)

func TestCostModelTransferTime(t *testing.T) {
	c := CostModel{LatencyPerMsg: 2 * time.Millisecond, BytesPerSec: 1e6}
	// 1 MB at 1 MB/s = 1 s, plus 2 ms latency.
	if got := c.TransferTime(1e6); got != time.Second+2*time.Millisecond {
		t.Errorf("TransferTime(1e6) = %v", got)
	}
	if got := (CostModel{}).TransferTime(1e9); got != 0 {
		t.Errorf("zero model accounted %v", got)
	}
}

// TestWireStatsConcurrent hammers AddSent/AddReceived from many
// goroutines while Snapshot readers run, then checks the exact totals.
// Run with -race to verify the locking discipline.
func TestWireStatsConcurrent(t *testing.T) {
	var w WireStats
	const (
		writers = 8
		perG    = 500
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent snapshot readers: values must always be consistent
	// (never negative, received never ahead of what writers could have
	// produced in total).
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sent, recv, msgs, _ := w.Snapshot()
				if sent < 0 || recv < 0 || msgs < 0 {
					t.Error("negative snapshot")
					return
				}
				if sent > writers*perG*3 || recv > writers*perG*7 {
					t.Errorf("snapshot overran totals: sent=%d recv=%d", sent, recv)
					return
				}
			}
		}()
	}
	var writersWG sync.WaitGroup
	for i := 0; i < writers; i++ {
		writersWG.Add(1)
		go func() {
			defer writersWG.Done()
			for j := 0; j < perG; j++ {
				w.AddSent(3, CostModel{})
				w.AddReceived(7, CostModel{})
			}
		}()
	}
	writersWG.Wait()
	close(stop)
	wg.Wait()

	sent, recv, msgs, _ := w.Snapshot()
	if sent != writers*perG*3 || recv != writers*perG*7 || msgs != writers*perG {
		t.Errorf("totals: sent=%d recv=%d msgs=%d, want %d/%d/%d",
			sent, recv, msgs, writers*perG*3, writers*perG*7, writers*perG)
	}
	w.Reset()
	if w.Bytes() != 0 || w.CommTime() != 0 {
		t.Errorf("Reset left bytes=%d comm=%v", w.Bytes(), w.CommTime())
	}
}

// TestWireStatsResetConcurrent interleaves Reset with writers: the point
// is race-freedom plus the invariant that a final Reset always lands on
// zero regardless of interleaving.
func TestWireStatsResetConcurrent(t *testing.T) {
	var w WireStats
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				w.AddSent(1, CostModel{})
				w.AddReceived(1, CostModel{})
				if j%50 == 0 {
					w.Reset()
				}
			}
		}()
	}
	wg.Wait()
	w.Reset()
	if s, r, m, d := w.Snapshot(); s != 0 || r != 0 || m != 0 || d != 0 {
		t.Errorf("final Reset left %d/%d/%d/%v", s, r, m, d)
	}
}
