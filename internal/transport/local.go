package transport

//lint:wrap-errors transport failures must stay inspectable with errors.Is/As

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"sync"

	"repro/internal/obs"
)

// LocalClient connects the coordinator to an in-process site handler. It
// still round-trips every request and response through gob so that (a)
// byte accounting is identical to the TCP transport and (b) no memory is
// shared between coordinator and site, exactly as over a real network.
type LocalClient struct {
	id      string
	handler Handler
	cost    CostModel
	stats   WireStats

	mu sync.Mutex
	//lint:guarded-by mu
	obs *obs.Obs
}

// NewLocalClient returns a client calling handler directly, accounting
// traffic against the cost model.
func NewLocalClient(id string, handler Handler, cost CostModel) *LocalClient {
	return &LocalClient{id: id, handler: handler, cost: cost}
}

// SetObs publishes raw wire totals ("transport.bytes_sent",
// "transport.bytes_received", "transport.messages") into o, mirroring
// the TCP client so in-process clusters observe identically.
func (c *LocalClient) SetObs(o *obs.Obs) {
	c.mu.Lock()
	c.obs = o
	c.mu.Unlock()
}

func (c *LocalClient) getObs() *obs.Obs {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.obs
}

// SiteID implements Client.
func (c *LocalClient) SiteID() string { return c.id }

// Stats implements Client.
func (c *LocalClient) Stats() *WireStats { return &c.stats }

// Close implements Client; local clients hold no resources.
func (c *LocalClient) Close() error { return nil }

// Call implements Client. A cancellable context makes the call abandonable:
// the handler runs on its own goroutine and the call returns as soon as the
// context is done, exactly as a network client stops waiting for a hung
// site. The context is also passed to the handler, so — unlike a truly
// abandoned network peer — a context-aware handler (e.g. a relay tier)
// stops its own downstream work instead of finishing a discarded subtree
// in the background.
func (c *LocalClient) Call(ctx context.Context, req *Request) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("transport: %s: %w", c.id, err)
	}
	wireReq, n, err := roundTrip(req)
	if err != nil {
		return nil, fmt.Errorf("transport: encode request: %w", err)
	}
	c.stats.AddSent(n, c.cost)
	o := c.getObs()
	o.Count("transport.bytes_sent", int64(n))
	o.Count("transport.messages", 1)

	var resp *Response
	if ctx.Done() == nil {
		resp = c.handler.Handle(ctx, wireReq)
	} else {
		ch := make(chan *Response, 1)
		go func() { ch <- c.handler.Handle(ctx, wireReq) }()
		select {
		case resp = <-ch:
		case <-ctx.Done():
			return nil, fmt.Errorf("transport: %s: %w", c.id, ctx.Err())
		}
	}

	wireResp, n, err := roundTrip(resp)
	if err != nil {
		return nil, fmt.Errorf("transport: encode response: %w", err)
	}
	c.stats.AddReceived(n, c.cost)
	o.Count("transport.bytes_received", int64(n))
	return wireResp, nil
}

// roundTrip gob-encodes v and decodes it into a fresh value, returning
// the wire size.
func roundTrip[T any](v *T) (*T, int, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, 0, err
	}
	n := buf.Len()
	out := new(T)
	if err := gob.NewDecoder(&buf).Decode(out); err != nil {
		return nil, 0, err
	}
	return out, n, nil
}
