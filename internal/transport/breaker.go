package transport

//lint:wrap-errors breaker refusals must stay inspectable with errors.Is

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// ErrBreakerOpen is returned (wrapped) when a call is refused because the
// site's circuit breaker is open: the site has failed or shed enough
// consecutive calls that sending more work would only waste deadline
// budget. The refusal is local — nothing touches the wire.
var ErrBreakerOpen = errors.New("transport: circuit breaker open")

// BreakerState is a circuit breaker's position.
type BreakerState int

// The three classic breaker states.
const (
	// BreakerClosed: traffic flows normally; consecutive failures are
	// counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: all calls are refused locally until the cooldown
	// elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe call is allowed through; its outcome
	// closes or re-opens the breaker.
	BreakerHalfOpen
)

// String returns the conventional lowercase state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// Breaker is a per-site circuit breaker: Failures consecutive failures or
// sheds open it, refusing further calls locally for Cooldown; after the
// cooldown one probe is let through, and its outcome closes the breaker
// (success) or re-opens it for another cooldown (failure). It complements
// the AIMD SiteGate: the gate shrinks how much concurrent work a slow
// site receives, the breaker stops sending entirely to a dead one.
//
// Context cancellations and propagated-deadline expiries are neutral —
// they are the caller's budget running out, not evidence about the site —
// so a storm of coordinator-side timeouts cannot open a healthy site's
// breaker.
type Breaker struct {
	site     string
	failures int
	cooldown time.Duration
	// now is injectable for tests; defaults to time.Now.
	now func() time.Time

	mu sync.Mutex
	//lint:guarded-by mu
	state BreakerState
	//lint:guarded-by mu
	consecutive int
	//lint:guarded-by mu
	openedAt time.Time
	// probing marks the half-open probe as in flight, so concurrent
	// callers are refused until the probe's verdict is in.
	//
	//lint:guarded-by mu
	probing bool
	//lint:guarded-by mu
	obs *obs.Obs
}

// NewBreaker returns a closed breaker for site, opening after failures
// consecutive failures (≤0 defaults to 5) and probing again after
// cooldown (≤0 defaults to 1s).
func NewBreaker(site string, failures int, cooldown time.Duration) *Breaker {
	if failures <= 0 {
		failures = 5
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &Breaker{site: site, failures: failures, cooldown: cooldown, now: time.Now}
}

// SetNow overrides the clock (tests drive state transitions with virtual
// time).
func (b *Breaker) SetNow(now func() time.Time) {
	b.mu.Lock()
	b.now = now
	b.mu.Unlock()
}

// SetObs publishes state transitions as obs events (kind
// obs.EventBreaker) and the "transport.breaker_open" /
// "transport.breaker_rejected" counters.
func (b *Breaker) SetObs(o *obs.Obs) {
	b.mu.Lock()
	b.obs = o
	b.mu.Unlock()
}

// State returns the breaker's current position, accounting for an
// elapsed cooldown (an open breaker whose cooldown has passed reports
// half-open).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		return BreakerHalfOpen
	}
	return b.state
}

// Allow reports whether a call may proceed. An open breaker past its
// cooldown transitions to half-open and grants exactly one probe;
// concurrent calls during the probe are refused.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			b.obs.Count("transport.breaker_rejected", 1)
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		b.eventLocked("half-open", "cooldown elapsed; probing")
		return true
	case BreakerHalfOpen:
		if b.probing {
			b.obs.Count("transport.breaker_rejected", 1)
			return false
		}
		b.probing = true
		return true
	}
	return true
}

// Success records a successful call: it closes a half-open breaker and
// resets the consecutive-failure count.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	b.probing = false
	if b.state != BreakerClosed {
		b.state = BreakerClosed
		b.eventLocked("closed", "probe succeeded")
	}
}

// Failure records a failed or shed call: it counts toward the
// consecutive-failure threshold in closed state and re-opens a half-open
// breaker immediately.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	switch b.state {
	case BreakerClosed:
		b.consecutive++
		if b.consecutive >= b.failures {
			b.openLocked("consecutive failure threshold reached")
		}
	case BreakerHalfOpen:
		b.openLocked("probe failed")
	}
}

// Neutral records a call whose outcome says nothing about the site
// (caller-side cancellation, propagated-deadline expiry, hedge-lost
// cancellation): it releases a half-open probe slot without a verdict so
// the next call probes again, and leaves the failure count untouched.
func (b *Breaker) Neutral() {
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// openLocked transitions to open; callers hold b.mu.
func (b *Breaker) openLocked(why string) {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.consecutive = 0
	b.obs.Count("transport.breaker_open", 1)
	b.eventLocked("open", why)
}

// eventLocked publishes one transition; callers hold b.mu.
func (b *Breaker) eventLocked(to, why string) {
	b.obs.Event(obs.EventBreaker, b.site, "breaker "+to+": "+why,
		map[string]string{"state": to, "threshold": strconv.Itoa(b.failures)})
}

// Observe classifies one finished call for the breaker: transport errors
// and shed responses are failures, caller-side cancellations and expired
// propagated deadlines are neutral, everything else is a success. Plain
// site-side errors (a bad query) count as success for breaker purposes —
// the site is answering, which is all the breaker measures.
func (b *Breaker) Observe(ctx context.Context, resp *Response, err error) {
	switch {
	case err != nil:
		if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			b.Neutral()
			return
		}
		b.Failure()
	case resp.Shed():
		b.Failure()
	case resp != nil && resp.Code == CodeExpired:
		b.Neutral()
	default:
		b.Success()
	}
}

// BreakerClient wraps a site client with a breaker: an open breaker
// refuses the call locally with a typed error wrapping ErrBreakerOpen,
// and every completed call feeds the breaker's state machine.
type BreakerClient struct {
	Client
	breaker *Breaker
}

// NewBreakerClient wraps inner with br.
func NewBreakerClient(inner Client, br *Breaker) *BreakerClient {
	return &BreakerClient{Client: inner, breaker: br}
}

// Breaker returns the wrapped breaker.
func (c *BreakerClient) Breaker() *Breaker { return c.breaker }

// Call implements Client.
func (c *BreakerClient) Call(ctx context.Context, req *Request) (*Response, error) {
	if !c.breaker.Allow() {
		return nil, fmt.Errorf("transport: %s: %w", c.SiteID(), ErrBreakerOpen)
	}
	resp, err := c.Client.Call(ctx, req)
	c.breaker.Observe(ctx, resp, err)
	return resp, err
}
