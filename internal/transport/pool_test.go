package transport

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/testutil"
)

// gateHandler answers pings immediately and blocks OpDrop requests until
// released (or the caller's context gives up), tracking the in-handler
// concurrency high-water mark.
type gateHandler struct {
	release chan struct{}

	mu       sync.Mutex
	inflight int
	peak     int
}

func newGateHandler() *gateHandler {
	return &gateHandler{release: make(chan struct{})}
}

func (h *gateHandler) Handle(ctx context.Context, req *Request) *Response {
	h.mu.Lock()
	h.inflight++
	if h.inflight > h.peak {
		h.peak = h.inflight
	}
	h.mu.Unlock()
	defer func() {
		h.mu.Lock()
		h.inflight--
		h.mu.Unlock()
	}()
	if req.Op == OpDrop {
		select {
		case <-h.release:
		case <-ctx.Done():
		}
	}
	return &Response{}
}

func (h *gateHandler) peakInflight() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.peak
}

func localDial(h Handler) func() (Client, error) {
	n := 0
	return func() (Client, error) {
		n++
		return NewLocalClient(fmt.Sprintf("conn-%d", n), h, CostModel{}), nil
	}
}

func TestPoolReusesConnections(t *testing.T) {
	o := obs.New()
	p := NewPool("s0", 4, localDial(newGateHandler()))
	p.SetObs(o)
	defer p.Close()

	l := p.Lease()
	for i := 0; i < 5; i++ {
		if _, err := l.Call(context.Background(), &Request{Op: OpPing}); err != nil {
			t.Fatal(err)
		}
	}
	// Sequential calls ride one connection: no reason to dial more.
	if got := o.Metrics.CounterValue("transport.pool.dials"); got != 1 {
		t.Errorf("dials = %d, want 1", got)
	}
	if p.InUse() != 0 {
		t.Errorf("in-use = %d after all calls returned", p.InUse())
	}
}

func TestPoolCapsConcurrency(t *testing.T) {
	h := newGateHandler()
	p := NewPool("s0", 2, localDial(h))
	defer p.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l := p.Lease()
			_, err := l.Call(context.Background(), &Request{Op: OpDrop})
			errs <- err
		}()
	}
	// Let two borrowers reach the handler, then release everyone.
	deadline := time.Now().Add(2 * time.Second)
	for h.peakInflight() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(h.release)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := h.peakInflight(); got != 2 {
		t.Errorf("handler concurrency peak = %d, want 2 (pool max)", got)
	}
}

func TestPoolLeaseStatsIsolated(t *testing.T) {
	h := newGateHandler()
	p := NewPool("s0", 1, localDial(h))
	defer p.Close()

	a, b := p.Lease(), p.Lease()
	if _, err := a.Call(context.Background(), &Request{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Call(context.Background(), &Request{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Call(context.Background(), &Request{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	aSent, _, aMsgs, _ := a.Stats().Snapshot()
	bSent, _, bMsgs, _ := b.Stats().Snapshot()
	if aMsgs != 1 || bMsgs != 2 {
		t.Errorf("messages = %d/%d, want 1/2", aMsgs, bMsgs)
	}
	if aSent <= 0 || bSent != 2*aSent {
		t.Errorf("sent = %d/%d: leases sharing one connection must each see exactly their own traffic", aSent, bSent)
	}
}

func TestPoolCancellationIsolation(t *testing.T) {
	h := newGateHandler()
	o := obs.New()
	p := NewPool("s0", 2, localDial(h))
	p.SetObs(o)
	defer p.Close()

	hungCtx, cancel := context.WithCancel(context.Background())
	hung := make(chan error, 1)
	go func() {
		_, err := p.Lease().Call(hungCtx, &Request{Op: OpDrop})
		hung <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for h.peakInflight() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	// A sibling call on the same pool completes while the first hangs…
	if _, err := p.Lease().Call(context.Background(), &Request{Op: OpPing}); err != nil {
		t.Fatalf("sibling call failed while another lease hung: %v", err)
	}

	// …and cancelling the hung call kills only its borrowed connection.
	cancel()
	if err := <-hung; !errors.Is(err, context.Canceled) {
		t.Fatalf("hung call err = %v, want context.Canceled", err)
	}
	if got := o.Metrics.CounterValue("transport.pool.discards"); got != 1 {
		t.Errorf("discards = %d, want 1 (only the cancelled call's connection)", got)
	}
	if _, err := p.Lease().Call(context.Background(), &Request{Op: OpPing}); err != nil {
		t.Fatalf("pool unusable after discard: %v", err)
	}
}

func TestPoolQueueTimeout(t *testing.T) {
	h := newGateHandler()
	o := obs.New()
	p := NewPool("s0", 1, localDial(h))
	p.SetObs(o)
	defer p.Close()
	defer close(h.release)

	started := make(chan struct{})
	go func() {
		close(started)
		p.Lease().Call(context.Background(), &Request{Op: OpDrop}) //nolint:errcheck
	}()
	<-started
	deadline := time.Now().Add(2 * time.Second)
	for p.InUse() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := p.Lease().Call(ctx, &Request{Op: OpPing})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued call err = %v, want context.DeadlineExceeded", err)
	}
	if got := o.Metrics.CounterValue("transport.pool.waits"); got != 1 {
		t.Errorf("waits = %d, want 1", got)
	}
}

func TestPoolDialFailure(t *testing.T) {
	h := newGateHandler()
	fail := true
	dial := func() (Client, error) {
		if fail {
			return nil, errors.New("connection refused")
		}
		return NewLocalClient("c", h, CostModel{}), nil
	}
	o := obs.New()
	p := NewPool("s0", 1, dial)
	p.SetObs(o)
	defer p.Close()

	if _, err := p.Lease().Call(context.Background(), &Request{Op: OpPing}); err == nil {
		t.Fatal("dial failure not surfaced")
	} else if !strings.Contains(err.Error(), "connection refused") {
		t.Fatalf("err = %v, want dial failure", err)
	}
	if got := o.Metrics.CounterValue("transport.pool.dial_failures"); got != 1 {
		t.Errorf("dial_failures = %d, want 1", got)
	}
	// The failed dial released its slot: the pool recovers once the site
	// is reachable again.
	fail = false
	if _, err := p.Lease().Call(context.Background(), &Request{Op: OpPing}); err != nil {
		t.Fatalf("pool stuck after dial failure: %v", err)
	}
}

func TestPoolClose(t *testing.T) {
	testutil.CheckGoroutines(t)
	p := NewPool("s0", 2, localDial(newGateHandler()))
	l := p.Lease()
	if _, err := l.Call(context.Background(), &Request{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Call(context.Background(), &Request{Op: OpPing}); err == nil {
		t.Fatal("call succeeded on closed pool")
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestPoolOverTCP(t *testing.T) {
	srv := NewServer(newEchoHandler())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p := NewPool("s0", 3, func() (Client, error) { return DialTCP("s0", addr, CostModel{}) })
	defer p.Close()

	var wg sync.WaitGroup
	var failed atomic.Int64
	for i := 0; i < 9; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l := p.Lease()
			for j := 0; j < 5; j++ {
				if _, err := l.Call(context.Background(), &Request{Op: OpPing}); err != nil {
					failed.Add(1)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d lease workers failed", n)
	}
}
