package transport

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/obs"
)

// testClock is a manually advanced clock for breaker cooldowns.
type testClock struct{ now time.Time }

func (c *testClock) Now() time.Time               { return c.now }
func (c *testClock) Advance(d time.Duration)      { c.now = c.now.Add(d) }
func newTestClock() *testClock                    { return &testClock{now: time.Unix(1000, 0)} }
func withClock(b *Breaker, c *testClock) *Breaker { b.SetNow(c.Now); return b }

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	clock := newTestClock()
	o := obs.New()
	b := withClock(NewBreaker("s0", 3, time.Second), clock)
	b.SetObs(o)

	// Two failures, then a success: the streak resets, nothing opens.
	b.Failure()
	b.Failure()
	b.Success()
	for i := 0; i < 2; i++ {
		b.Failure()
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after interrupted streak = %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused a call")
	}

	// The third consecutive failure trips it.
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a call inside the cooldown")
	}
	if got := o.Metrics.CounterValue("transport.breaker_open"); got != 1 {
		t.Errorf("breaker_open = %d, want 1", got)
	}
	if got := o.Metrics.CounterValue("transport.breaker_rejected"); got != 1 {
		t.Errorf("breaker_rejected = %d, want 1", got)
	}
	if got := o.Events.CountKind(obs.EventBreaker); got == 0 {
		t.Error("no breaker transition events published")
	}
}

func TestBreakerHalfOpenProbeSuccessCloses(t *testing.T) {
	clock := newTestClock()
	b := withClock(NewBreaker("s0", 1, time.Second), clock)
	b.Failure()
	if b.Allow() {
		t.Fatal("open breaker allowed a call")
	}

	clock.Advance(time.Second)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", got)
	}
	// Exactly one probe goes through; concurrent callers are refused
	// until its verdict is in.
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.Allow() {
		t.Fatal("second call allowed while the probe is in flight")
	}
	b.Success()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused a call after recovery")
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	clock := newTestClock()
	b := withClock(NewBreaker("s0", 1, time.Second), clock)
	b.Failure()
	clock.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after probe failure = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("re-opened breaker allowed a call before the next cooldown")
	}
	// A fresh cooldown grants another probe; a neutral outcome (the
	// probe's caller gave up) releases the slot without a verdict.
	clock.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("no probe after the second cooldown")
	}
	b.Neutral()
	if !b.Allow() {
		t.Fatal("probe slot not released after a neutral outcome")
	}
	b.Success()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed", got)
	}
}

func TestBreakerObserveClassification(t *testing.T) {
	clock := newTestClock()
	b := withClock(NewBreaker("s0", 2, time.Second), clock)

	// Caller-side cancellation is neutral: it must never open a breaker.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 10; i++ {
		b.Observe(cancelled, nil, context.Canceled)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("cancellations opened the breaker: %v", got)
	}

	// A propagated-deadline expiry shed is neutral too.
	for i := 0; i < 10; i++ {
		b.Observe(context.Background(), &Response{Err: "expired", Code: CodeExpired}, nil)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("deadline sheds opened the breaker: %v", got)
	}

	// A plain site-side error means the site is answering: success.
	b.Observe(context.Background(), nil, errors.New("connection reset"))
	b.Observe(context.Background(), &Response{Err: "no such relation"}, nil)
	b.Observe(context.Background(), nil, errors.New("connection reset"))
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("interleaved site errors opened the breaker: %v", got)
	}

	// Transport errors and shed responses both count as failures.
	b.Observe(context.Background(), nil, errors.New("connection reset"))
	b.Observe(context.Background(), &Response{Err: "overloaded", Code: CodeOverloaded}, nil)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open after error+shed", got)
	}
}

func TestBreakerClientFailsFast(t *testing.T) {
	clock := newTestClock()
	inner := &flakyClient{id: "s0", failN: 1 << 30} // never recovers
	b := withClock(NewBreaker("s0", 2, time.Second), clock)
	cl := NewBreakerClient(inner, b)

	for i := 0; i < 2; i++ {
		if _, err := cl.Call(context.Background(), &Request{Op: OpPing}); err == nil {
			t.Fatal("failing site call succeeded")
		}
	}
	// The breaker is open: the next call is refused locally, with a typed
	// error, without touching the inner client.
	before := inner.calls
	_, err := cl.Call(context.Background(), &Request{Op: OpPing})
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if inner.calls != before {
		t.Errorf("open breaker still forwarded the call (%d → %d)", before, inner.calls)
	}

	// Past the cooldown, the probe flows through and a recovery closes it.
	clock.Advance(time.Second)
	inner.failN = 0
	if _, err := cl.Call(context.Background(), &Request{Op: OpPing}); err != nil {
		t.Fatalf("probe failed: %v", err)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
}
