package transport

//lint:wrap-errors transport failures must stay inspectable with errors.Is/As

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
)

// Server serves site requests over TCP. Each connection runs a
// decode-handle-encode loop; connections are independent, so one server
// can serve several coordinators.
type Server struct {
	handler  Handler
	listener net.Listener

	mu sync.Mutex
	//lint:guarded-by mu
	conns map[net.Conn]struct{}
	//lint:guarded-by mu
	closed bool
	//lint:guarded-by mu
	draining bool
	// inflight counts requests currently inside the handler.
	//
	//lint:guarded-by mu
	inflight int
	// served counts requests ever admitted to the handler.
	//
	//lint:guarded-by mu
	served int64
	wg     sync.WaitGroup
	reqWG  sync.WaitGroup // outstanding handler invocations

	// Logf logs server-side errors; defaults to log.Printf.
	Logf func(format string, args ...any)

	// MaxInflight caps how many requests may be inside the handler at
	// once; excess requests are shed immediately with CodeOverloaded so
	// coordinators back off or fail over instead of queueing unboundedly
	// on a saturated site. 0 means unlimited. Set before Listen/Serve.
	MaxInflight int

	// Obs, when set before Listen/Serve, receives server-side wire
	// counters ("transport.server.bytes_received", ".bytes_sent",
	// ".requests") and per-op request counters
	// ("transport.server.op.<op>").
	Obs *obs.Obs
}

// NewServer returns a server for the handler, not yet listening.
func NewServer(handler Handler) *Server {
	return &Server{handler: handler, conns: map[net.Conn]struct{}{}, Logf: log.Printf}
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address. Serving happens on background goroutines.
func (s *Server) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return s.Serve(l), nil
}

// Serve starts accepting connections from an already-bound listener and
// returns its address. It exists so tests can inject listeners with
// controlled failure behavior.
func (s *Server) Serve(l net.Listener) string {
	s.listener = l
	s.wg.Add(1)
	go s.acceptLoop()
	return l.Addr().String()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient accept failures (EMFILE, ECONNABORTED, ...) must
			// not kill the listener: back off briefly and keep accepting.
			s.Logf("transport: accept: %v (retrying)", err)
			time.Sleep(10 * time.Millisecond)
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	// The connection context is the server-side end of the caller's
	// context: it is cancelled when the connection drops (the client
	// aborts a call mid-exchange by closing its broken connection, see
	// TCPClient.fail) or the server shuts down, so context-aware handlers
	// — relay tiers in particular — stop their downstream work instead of
	// computing into a closed socket.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pr := &pushbackReader{conn: conn}
	cr := &countingReader{r: pr}
	cw := &countingWriter{w: conn}
	dec := gob.NewDecoder(cr)
	enc := gob.NewEncoder(cw)
	for {
		r0 := cr.n
		var req Request
		if err := dec.Decode(&req); err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) && !isTimeout(err) {
				s.Logf("transport: decode request: %v", err)
			}
			return
		}
		s.Obs.Count("transport.server.bytes_received", cr.n-r0)
		s.Obs.Count("transport.server.requests", 1)
		s.Obs.Count("transport.server.op."+req.Op.String(), 1)
		resp, alive := s.dispatch(ctx, conn, pr, &req)
		if !alive {
			return
		}
		w0 := cw.n
		if err := enc.Encode(resp); err != nil {
			if !errors.Is(err, net.ErrClosed) && !isTimeout(err) {
				s.Logf("transport: encode response: %v", err)
			}
			return
		}
		s.Obs.Count("transport.server.bytes_sent", cw.n-w0)
	}
}

// dispatch admits one decoded request into the handler, or refuses it
// with a CodeDraining response when the server is draining. Admission and
// the in-flight bookkeeping happen under mu so Drain's reqWG.Wait never
// races a concurrent reqWG.Add.
func (s *Server) dispatch(ctx context.Context, conn net.Conn, pr *pushbackReader, req *Request) (*Response, bool) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.Obs.Count("transport.server.drain_rejects", 1)
		return &Response{Err: "site draining: not accepting new requests", Code: CodeDraining}, true
	}
	if s.MaxInflight > 0 && s.inflight >= s.MaxInflight {
		s.mu.Unlock()
		s.Obs.Count("transport.server.overload_rejects", 1)
		s.Obs.Event(obs.EventOverload, "", "request shed: server at max in-flight",
			map[string]string{"op": req.Op.String(), "max_inflight": fmt.Sprint(s.MaxInflight)})
		return &Response{
			Err:  fmt.Sprintf("site at max in-flight (%d): shedding", s.MaxInflight),
			Code: CodeOverloaded,
		}, true
	}
	s.reqWG.Add(1)
	s.inflight++
	s.served++
	n := s.inflight
	s.mu.Unlock()
	s.Obs.SetGauge("transport.server.inflight", int64(n))
	defer func() {
		s.mu.Lock()
		s.inflight--
		n := s.inflight
		s.mu.Unlock()
		s.Obs.SetGauge("transport.server.inflight", int64(n))
		s.reqWG.Done()
	}()
	return s.handleWatched(ctx, conn, pr, req)
}

// Drain gracefully shuts the server down: it stops accepting new
// connections and new requests (in-flight connections that send another
// request get a CodeDraining refusal), waits up to timeout for in-flight
// handler invocations to finish, then closes everything. It returns an
// error when the deadline expired with requests still running; the
// server is closed either way.
func (s *Server) Drain(timeout time.Duration) error {
	s.mu.Lock()
	if s.draining || s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	n := s.inflight
	if s.listener != nil {
		s.listener.Close() // acceptLoop exits on net.ErrClosed
	}
	s.mu.Unlock()
	s.Obs.SetNotReady("draining")
	s.Obs.Event(obs.EventDrain, "", "drain started", map[string]string{
		"phase": "start", "inflight": fmt.Sprint(n),
	})

	done := make(chan struct{})
	go func() {
		s.reqWG.Wait()
		close(done)
	}()
	var timedOut bool
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-done:
	case <-timer.C:
		timedOut = true
	}
	s.mu.Lock()
	left := s.inflight
	s.mu.Unlock()
	s.Obs.Event(obs.EventDrain, "", "drain finished", map[string]string{
		"phase": "done", "inflight": fmt.Sprint(left), "timed_out": fmt.Sprint(timedOut),
	})
	if timedOut {
		// The stuck handler may never return; closing without waiting for
		// its connection goroutine is the only way out of the process.
		s.close(false)
		return fmt.Errorf("transport: drain deadline %v expired with %d request(s) in flight", timeout, left)
	}
	return s.Close()
}

// Draining reports whether the server has started a graceful drain.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Inflight returns how many requests are currently inside the handler.
func (s *Server) Inflight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight
}

// Served returns how many requests were ever admitted to the handler.
func (s *Server) Served() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(s.served)
}

// handleWatched runs the handler under a per-request context while a
// monitor goroutine watches the connection: the protocol is strictly
// serialized, so no bytes may arrive while a request is being served —
// a read returning before the handler finishes means the peer hung up,
// and the request context is cancelled so the handler can abort. A byte
// that does arrive early (a pipelining peer) is pushed back for the
// decoder. Returns alive=false when the connection was lost mid-request.
func (s *Server) handleWatched(ctx context.Context, conn net.Conn, pr *pushbackReader, req *Request) (resp *Response, alive bool) {
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	monDone := make(chan struct{})
	peerGone := false
	go func() {
		defer close(monDone)
		var b [1]byte
		n, err := conn.Read(b[:])
		if n > 0 {
			pr.pushback(b[0])
		}
		if err != nil && !isTimeout(err) {
			peerGone = true
			hcancel()
		}
	}()
	resp = s.handler.Handle(hctx, req)
	// Wake the monitor's blocked read and wait it out; the deadline poke
	// is local to the server-side connection.
	conn.SetReadDeadline(time.Now().Add(-time.Second))
	<-monDone
	conn.SetReadDeadline(time.Time{})
	return resp, !peerGone
}

// isTimeout reports whether err is a network timeout (our own deadline
// pokes surface as timeouts and are not worth logging).
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// pushbackReader lets the connection monitor return an early-read byte to
// the decoder's stream. Read and pushback never run concurrently: the
// monitor only reads while the handler runs, and the decoder only reads
// after the monitor has exited.
type pushbackReader struct {
	conn net.Conn
	buf  []byte
}

func (p *pushbackReader) pushback(b byte) { p.buf = append(p.buf, b) }

func (p *pushbackReader) Read(out []byte) (int, error) {
	if len(p.buf) > 0 && len(out) > 0 {
		n := copy(out, p.buf)
		p.buf = p.buf[n:]
		return n, nil
	}
	return p.conn.Read(out)
}

// Close stops the listener and all open connections, waiting for the
// connection goroutines to exit.
func (s *Server) Close() error { return s.close(true) }

// close tears the server down; wait=false skips waiting for connection
// goroutines (used by a timed-out Drain, whose stuck handler would make
// the wait block forever).
func (s *Server) close(wait bool) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		if wait {
			s.wg.Wait()
		}
		return nil
	}
	s.closed = true
	var err error
	if s.listener != nil {
		// Drain may already have closed the listener; that is not an error.
		if cerr := s.listener.Close(); cerr != nil && !errors.Is(cerr, net.ErrClosed) {
			err = cerr
		}
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if wait {
		s.wg.Wait()
	}
	return err
}

// TCPClient is a Client over a TCP connection.
type TCPClient struct {
	id   string
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	cw   *countingWriter
	cr   *countingReader
	cost CostModel

	mu sync.Mutex
	//lint:guarded-by mu
	broken bool
	stats  WireStats
	//lint:guarded-by mu
	obs *obs.Obs
}

// DialTCP connects to a site server.
func DialTCP(id, addr string, cost CostModel) (*TCPClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	cw := &countingWriter{w: conn}
	cr := &countingReader{r: conn}
	return &TCPClient{
		id: id, conn: conn,
		enc: gob.NewEncoder(cw), dec: gob.NewDecoder(cr),
		cw: cw, cr: cr, cost: cost,
	}, nil
}

// SetObs publishes raw client-side wire totals ("transport.bytes_sent",
// "transport.bytes_received", "transport.messages") into o. Raw totals
// include the partial traffic of failed attempts; the coordinator's
// logical per-round counters live under "coord.*".
func (c *TCPClient) SetObs(o *obs.Obs) {
	c.mu.Lock()
	c.obs = o
	c.mu.Unlock()
}

// SiteID implements Client.
func (c *TCPClient) SiteID() string { return c.id }

// Stats implements Client.
func (c *TCPClient) Stats() *WireStats { return &c.stats }

// Close implements Client.
func (c *TCPClient) Close() error { return c.conn.Close() }

// Call implements Client. Calls on one client are serialized; the
// coordinator uses one client per site and fans out with goroutines.
//
// The context bounds the whole exchange via connection deadlines; a
// cancellation or deadline mid-exchange interrupts blocked I/O. After any
// encode/decode failure — including an abort — the gob streams are
// desynced, so the client marks itself broken and closes the connection:
// later calls fail fast with a transport error and a retrying wrapper
// (Reconnector) redials a fresh connection instead of reusing a corrupt
// stream.
func (c *TCPClient) Call(ctx context.Context, req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return nil, fmt.Errorf("transport: %s: connection is broken (previous call failed mid-stream)", c.id)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("transport: %s: %w", c.id, err)
	}
	if dl, ok := ctx.Deadline(); ok {
		c.conn.SetDeadline(dl)
	} else {
		c.conn.SetDeadline(time.Time{})
	}
	// Watch for cancellation while I/O is in flight: SetDeadline is safe
	// concurrently with Read/Write and wakes them immediately.
	if done := ctx.Done(); done != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-done:
				c.conn.SetDeadline(time.Now())
			case <-stop:
			}
		}()
	}

	before := c.cw.n
	if err := c.enc.Encode(req); err != nil {
		return nil, c.failLocked("send to", err, ctx)
	}
	c.stats.AddSent(int(c.cw.n-before), c.cost)
	c.obs.Count("transport.bytes_sent", c.cw.n-before)
	c.obs.Count("transport.messages", 1)

	beforeR := c.cr.n
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, c.failLocked("receive from", err, ctx)
	}
	c.stats.AddReceived(int(c.cr.n-beforeR), c.cost)
	c.obs.Count("transport.bytes_received", c.cr.n-beforeR)
	return &resp, nil
}

// failLocked marks the client broken after a mid-stream error and closes
// the connection; callers hold c.mu. It prefers reporting the context
// error when the failure was caused by cancellation (the raw I/O error is
// then just "i/o timeout" from the deadline poke).
func (c *TCPClient) failLocked(verb string, err error, ctx context.Context) error {
	c.broken = true
	c.conn.Close()
	ctxErr := ctx.Err()
	if ctxErr == nil {
		// The connection deadline can fire marginally before the
		// context's own timer; an expired deadline is still a context
		// timeout, not a network fault.
		if dl, ok := ctx.Deadline(); ok && !time.Now().Before(dl) {
			ctxErr = context.DeadlineExceeded
		}
	}
	if ctxErr != nil {
		return fmt.Errorf("transport: %s %s: %w (%v)", verb, c.id, ctxErr, err)
	}
	return fmt.Errorf("transport: %s %s: %w", verb, c.id, err)
}
