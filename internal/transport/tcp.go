package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
)

// Server serves site requests over TCP. Each connection runs a
// decode-handle-encode loop; connections are independent, so one server
// can serve several coordinators.
type Server struct {
	handler  Handler
	listener net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// Logf logs server-side errors; defaults to log.Printf.
	Logf func(format string, args ...any)
}

// NewServer returns a server for the handler, not yet listening.
func NewServer(handler Handler) *Server {
	return &Server{handler: handler, conns: map[net.Conn]struct{}{}, Logf: log.Printf}
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address. Serving happens on background goroutines.
func (s *Server) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s.listener = l
	s.wg.Add(1)
	go s.acceptLoop()
	return l.Addr().String(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return
			}
			s.Logf("transport: accept: %v", err)
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.Logf("transport: decode request: %v", err)
			}
			return
		}
		resp := s.handler.Handle(&req)
		if err := enc.Encode(resp); err != nil {
			s.Logf("transport: encode response: %v", err)
			return
		}
	}
}

// Close stops the listener and all open connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// TCPClient is a Client over a TCP connection.
type TCPClient struct {
	id   string
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	cw   *countingWriter
	cr   *countingReader
	cost CostModel

	mu    sync.Mutex
	stats WireStats
}

// DialTCP connects to a site server.
func DialTCP(id, addr string, cost CostModel) (*TCPClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	cw := &countingWriter{w: conn}
	cr := &countingReader{r: conn}
	return &TCPClient{
		id: id, conn: conn,
		enc: gob.NewEncoder(cw), dec: gob.NewDecoder(cr),
		cw: cw, cr: cr, cost: cost,
	}, nil
}

// SiteID implements Client.
func (c *TCPClient) SiteID() string { return c.id }

// Stats implements Client.
func (c *TCPClient) Stats() *WireStats { return &c.stats }

// Close implements Client.
func (c *TCPClient) Close() error { return c.conn.Close() }

// Call implements Client. Calls on one client are serialized; the
// coordinator uses one client per site and fans out with goroutines.
func (c *TCPClient) Call(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	before := c.cw.n
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("transport: send to %s: %w", c.id, err)
	}
	c.stats.AddSent(int(c.cw.n-before), c.cost)

	beforeR := c.cr.n
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("transport: receive from %s: %w", c.id, err)
	}
	c.stats.AddReceived(int(c.cr.n-beforeR), c.cost)
	return &resp, nil
}
