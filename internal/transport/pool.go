package transport

//lint:wrap-errors pool failures must stay inspectable with errors.Is/As

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// Pool multiplexes concurrent executions over a bounded set of
// connections to one logical site. One TCP connection (or Reconnector)
// serializes its calls, so a coordinator that runs many queries at once
// against the same site would otherwise serialize every round on a single
// stream; the pool dials up to Max connections lazily and hands each call
// an idle one, queueing callers when every connection is busy — the
// pool's capacity is the site's client-side in-flight ceiling.
//
// Executions do not use the Pool directly: each takes a Lease, a
// transport.Client view with its own WireStats. Calls on any lease borrow
// whichever pooled connection is free, so connections are shared across
// concurrent epochs while byte accounting stays exact per execution.
//
// Cancellation is isolated per call: cancelling one execution's context
// aborts only the connection its call borrowed (the broken connection is
// discarded, not returned), so a sibling execution's in-flight exchanges
// on other pooled connections are untouched.
type Pool struct {
	id   string
	dial func() (Client, error)
	max  int

	slots chan struct{} // capacity tokens; one per potential connection

	mu sync.Mutex
	//lint:guarded-by mu
	idle []Client
	// dialed counts connections currently alive (idle or borrowed).
	//
	//lint:guarded-by mu
	dialed int
	//lint:guarded-by mu
	closed bool
	//lint:guarded-by mu
	obs *obs.Obs
}

// NewPool returns a pool of at most max concurrent connections to the
// site identified by id, dialing lazily with dial. max < 1 is treated
// as 1.
func NewPool(id string, max int, dial func() (Client, error)) *Pool {
	if max < 1 {
		max = 1
	}
	return &Pool{id: id, dial: dial, max: max, slots: make(chan struct{}, max)}
}

// SetObs publishes pool activity into o: "transport.pool.dials",
// "transport.pool.discards", and the "transport.pool.in_use" gauge. The
// sink is also handed to dialed connections that support SetObs.
func (p *Pool) SetObs(o *obs.Obs) {
	p.mu.Lock()
	p.obs = o
	p.mu.Unlock()
}

func (p *Pool) getObs() *obs.Obs {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.obs
}

// SiteID returns the logical site identifier.
func (p *Pool) SiteID() string { return p.id }

// InUse reports how many connections are currently borrowed by calls.
func (p *Pool) InUse() int { return len(p.slots) }

// get borrows a connection, dialing a new one when under capacity and
// blocking (context-aware) when every connection is busy.
func (p *Pool) get(ctx context.Context) (Client, error) {
	select {
	case p.slots <- struct{}{}:
	default:
		// Every connection is busy: the caller queues at the site
		// boundary until one frees or its context gives up.
		p.getObs().Count("transport.pool.waits", 1)
		select {
		case p.slots <- struct{}{}:
		case <-ctx.Done():
			return nil, fmt.Errorf("transport: pool %s: %w", p.id, ctx.Err())
		}
	}
	p.getObs().SetGauge("transport.pool.in_use", int64(len(p.slots)))

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.slots
		return nil, fmt.Errorf("transport: pool %s is closed", p.id)
	}
	if n := len(p.idle); n > 0 {
		cl := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return cl, nil
	}
	p.mu.Unlock()

	cl, err := p.dial()
	if err != nil {
		<-p.slots
		p.getObs().Count("transport.pool.dial_failures", 1)
		return nil, fmt.Errorf("transport: pool %s: dial: %w", p.id, err)
	}
	if oc, ok := cl.(interface{ SetObs(*obs.Obs) }); ok {
		oc.SetObs(p.getObs())
	}
	p.mu.Lock()
	p.dialed++
	p.mu.Unlock()
	p.getObs().Count("transport.pool.dials", 1)
	return cl, nil
}

// put returns a healthy connection to the idle set.
func (p *Pool) put(cl Client) {
	p.mu.Lock()
	if p.closed {
		p.dialed--
		p.mu.Unlock()
		cl.Close()
	} else {
		p.idle = append(p.idle, cl)
		p.mu.Unlock()
	}
	<-p.slots
	p.getObs().SetGauge("transport.pool.in_use", int64(len(p.slots)))
}

// discard drops a connection whose last exchange failed: its stream may
// be desynced (or its context-cancelled deadline poke left it broken), so
// the next borrower gets a fresh dial instead.
func (p *Pool) discard(cl Client) { p.discardAs(cl, "transport.pool.discards") }

// hedgeDiscard drops a connection whose exchange was abandoned because
// its hedge lost the race. The teardown is identical to discard — the
// cancelled stream is desynced — but the count lands under a dedicated
// counter: a lost hedge is planned speculative waste, and folding it
// into generic discards would make healthy hedging look like connection
// churn.
func (p *Pool) hedgeDiscard(cl Client) { p.discardAs(cl, "transport.pool.hedge_discards") }

func (p *Pool) discardAs(cl Client, counter string) {
	cl.Close()
	p.mu.Lock()
	p.dialed--
	p.mu.Unlock()
	<-p.slots
	o := p.getObs()
	o.Count(counter, 1)
	o.SetGauge("transport.pool.in_use", int64(len(p.slots)))
}

// Close closes every idle connection and fails subsequent borrows.
// Borrowed connections are closed as their calls return them.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	idle := p.idle
	p.idle = nil
	p.dialed -= len(idle)
	p.mu.Unlock()
	var first error
	for _, cl := range idle {
		if err := cl.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Lease returns a per-execution Client view over the pool. Each call on
// the lease borrows a pooled connection for exactly one exchange, and the
// exchange's wire traffic is folded into the lease's own statistics — so
// concurrent executions sharing the pool each see exact per-execution
// byte accounting, which the coordinator's per-round ExecStats depend on.
func (p *Pool) Lease() *Lease {
	return &Lease{pool: p}
}

// Lease is one execution's view of a shared connection pool; it
// implements Client.
type Lease struct {
	pool  *Pool
	stats WireStats
}

// SiteID implements Client.
func (l *Lease) SiteID() string { return l.pool.id }

// Stats implements Client, returning this lease's (not the pool's)
// accumulated statistics.
func (l *Lease) Stats() *WireStats { return &l.stats }

// Close implements Client. Leases own no connections — the pool does —
// so closing a lease is a no-op; close the pool to release connections.
func (l *Lease) Close() error { return nil }

// Call implements Client: borrow a pooled connection, perform one
// exchange, account its traffic against the lease, and return the
// connection (discarding it after a transport failure).
func (l *Lease) Call(ctx context.Context, req *Request) (*Response, error) {
	cl, err := l.pool.get(ctx)
	if err != nil {
		return nil, err
	}
	s0, r0, _, t0 := cl.Stats().Snapshot()
	resp, err := cl.Call(ctx, req)
	s1, r1, _, t1 := cl.Stats().Snapshot()
	if err != nil {
		if errors.Is(context.Cause(ctx), ErrHedgeLost) {
			// The exchange was abandoned because its hedge lost the
			// race: the partial traffic is the hedger's speculative
			// waste (it counts the bytes under hedge_wasted_bytes), so
			// folding the delta into the lease would double-count it
			// into the execution's round bytes; the torn connection is
			// a hedge discard, not generic churn.
			l.pool.hedgeDiscard(cl)
			return nil, err
		}
		l.addDelta(s1-s0, r1-r0, t1-t0)
		l.pool.discard(cl)
		return nil, err
	}
	l.addDelta(s1-s0, r1-r0, t1-t0)
	l.pool.put(cl)
	return resp, nil
}

// addDelta folds one borrowed connection's traffic into the lease's
// statistics.
func (l *Lease) addDelta(sent, recv int64, comm time.Duration) {
	l.stats.mu.Lock()
	l.stats.bytesSent += sent
	l.stats.bytesReceived += recv
	if sent > 0 {
		l.stats.messages++
	}
	l.stats.commTime += comm
	l.stats.mu.Unlock()
}
