package transport

import (
	"encoding/json"
	"net/http"

	"context"
	"errors"
	"repro/internal/obs"
	"testing"
	"time"
)

func TestChaosPassThrough(t *testing.T) {
	c := NewChaos(NewLocalClient("s", newEchoHandler(), CostModel{}), 1)
	exerciseClient(t, c)
	if c.Injected() != 0 {
		t.Errorf("injected %d faults with empty script", c.Injected())
	}
	if c.Calls() == 0 {
		t.Error("calls not counted")
	}
}

func TestChaosOneShotErrors(t *testing.T) {
	c := NewChaos(NewLocalClient("s", newEchoHandler(), CostModel{}), 1)
	c.FailNext(OpPing, 2)
	for i := 0; i < 2; i++ {
		if _, err := c.Call(context.Background(), &Request{Op: OpPing}); !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d: err = %v, want ErrInjected", i, err)
		}
	}
	if _, err := c.Call(context.Background(), &Request{Op: OpPing}); err != nil {
		t.Fatalf("fault queue not drained: %v", err)
	}
	if c.Injected() != 2 {
		t.Errorf("injected = %d, want 2", c.Injected())
	}
}

func TestChaosPerOpScripting(t *testing.T) {
	c := NewChaos(NewLocalClient("s", newEchoHandler(), CostModel{}), 1)
	c.FailNext(OpLoad, 1)
	// Faults scripted for OpLoad must not affect other ops.
	if _, err := c.Call(context.Background(), &Request{Op: OpPing}); err != nil {
		t.Fatalf("ping hit a load fault: %v", err)
	}
	if _, err := c.Call(context.Background(), &Request{Op: OpLoad, Rel: "t", Data: sampleRelation(1)}); !errors.Is(err, ErrInjected) {
		t.Fatalf("load fault not applied: %v", err)
	}
}

func TestChaosDelay(t *testing.T) {
	c := NewChaos(NewLocalClient("s", newEchoHandler(), CostModel{}), 1)
	c.DelayNext(OpPing, 30*time.Millisecond)
	start := time.Now()
	if _, err := c.Call(context.Background(), &Request{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("delay not applied: %v", d)
	}
}

func TestChaosDelayHonorsContext(t *testing.T) {
	c := NewChaos(NewLocalClient("s", newEchoHandler(), CostModel{}), 1)
	c.DelayNext(OpPing, time.Hour)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Call(ctx, &Request{Op: OpPing})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("delayed call did not honor the deadline")
	}
}

func TestChaosHangUntilCancel(t *testing.T) {
	c := NewChaos(NewLocalClient("s", newEchoHandler(), CostModel{}), 1)
	c.HangNext(OpPing)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.Call(ctx, &Request{Op: OpPing})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("hang did not release on cancel")
	}
	// Subsequent calls are healthy again.
	if _, err := c.Call(context.Background(), &Request{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
}

func TestChaosHangReleasedByClose(t *testing.T) {
	c := NewChaos(NewLocalClient("s", newEchoHandler(), CostModel{}), 1)
	c.HangNext(OpPing)
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), &Request{Op: OpPing})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrInjected) {
			t.Errorf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hung call not released by Close")
	}
}

func TestChaosDropClosesInner(t *testing.T) {
	srv := NewServer(newEchoHandler())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tcp, err := DialTCP("s", addr, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	c := NewChaos(tcp, 1)
	c.DropNext(OpPing)
	if _, err := c.Call(context.Background(), &Request{Op: OpPing}); !errors.Is(err, ErrInjected) {
		t.Fatalf("drop fault: %v", err)
	}
	// The underlying connection really is gone.
	if _, err := tcp.Call(context.Background(), &Request{Op: OpPing}); err == nil {
		t.Fatal("dropped connection still usable")
	}
}

// TestChaosSeededDeterminism: the same seed must produce the same fault
// sequence for the same call sequence — the property every chaos test in
// the repo relies on.
func TestChaosSeededDeterminism(t *testing.T) {
	run := func(seed int64) []bool {
		c := NewChaos(NewLocalClient("s", newEchoHandler(), CostModel{}), seed)
		c.SetRandom(0.5, 0)
		outcomes := make([]bool, 40)
		for i := range outcomes {
			_, err := c.Call(context.Background(), &Request{Op: OpPing})
			outcomes[i] = err != nil
		}
		return outcomes
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical 40-call fault sequences")
	}
	failed := 0
	for _, f := range a {
		if f {
			failed++
		}
	}
	if failed == 0 || failed == len(a) {
		t.Errorf("errRate 0.5 produced %d/%d failures", failed, len(a))
	}
}

// TestChaosObsAttribution is the regression test for chaos attribution
// getting lost behind the Stats() pass-through: wire stats flow through
// to the inner client untouched, so injected faults must surface as obs
// counters and events with exact counts — including over the /events
// debug endpoint, which is what operators (and this test) assert on.
func TestChaosObsAttribution(t *testing.T) {
	inner := NewLocalClient("s", newEchoHandler(), CostModel{})
	ch := NewChaos(inner, 1)
	ch.FailNext(OpPing, 2)

	o := obs.New()
	// The Reconnector propagates the sink into dialed clients (Chaos
	// implements SetObs), exactly as a wired-up cluster would.
	rc := NewReconnector("s", func() (Client, error) { return ch, nil }, 3, 0)
	rc.SetObs(o)
	if _, err := rc.Call(context.Background(), &Request{Op: OpPing}); err != nil {
		t.Fatal(err)
	}

	if got := o.Metrics.CounterValue("chaos.injected"); got != 2 {
		t.Errorf("chaos.injected = %d, want 2", got)
	}
	if got := o.Metrics.CounterValue("chaos.injected.err"); got != 2 {
		t.Errorf("chaos.injected.err = %d, want 2", got)
	}
	if got := o.Metrics.CounterValue("transport.retries"); got != 2 {
		t.Errorf("transport.retries = %d, want 2", got)
	}
	if got := o.Events.CountKind(obs.EventChaos); got != 2 {
		t.Errorf("chaos events = %d, want 2", got)
	}
	if got := o.Events.CountKind(obs.EventRetry); got != 2 {
		t.Errorf("retry events = %d, want 2", got)
	}

	// The same incidents must be visible over the debug HTTP surface.
	dbg, err := obs.ServeDebug("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer dbg.Close()
	for kind, want := range map[string]int{"chaos": 2, "retry": 2} {
		resp, err := http.Get("http://" + dbg.Addr() + "/events?kind=" + kind)
		if err != nil {
			t.Fatal(err)
		}
		var events []obs.Event
		if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
			t.Fatalf("decode /events?kind=%s: %v", kind, err)
		}
		resp.Body.Close()
		if len(events) != want {
			t.Errorf("/events?kind=%s returned %d events, want %d", kind, len(events), want)
		}
		for _, e := range events {
			if e.Kind != kind || e.Site != "s" {
				t.Errorf("/events?kind=%s returned %+v", kind, e)
			}
		}
	}
}

// TestChaosRandomInjectionCounted checks seeded random faults are
// attributed with the same exactness as scripted ones: the obs counter
// must equal Injected() for any seed.
func TestChaosRandomInjectionCounted(t *testing.T) {
	inner := NewLocalClient("s", newEchoHandler(), CostModel{})
	ch := NewChaos(inner, 42)
	o := obs.New()
	ch.SetObs(o)
	ch.SetRandom(0.5, 0)
	for i := 0; i < 40; i++ {
		ch.Call(context.Background(), &Request{Op: OpPing})
	}
	if got, want := o.Metrics.CounterValue("chaos.injected"), int64(ch.Injected()); got != want {
		t.Errorf("chaos.injected = %d, Injected() = %d", got, want)
	}
	if got := ch.Injected(); got == 0 || got == 40 {
		t.Errorf("seed produced degenerate injection count %d", got)
	}
}
