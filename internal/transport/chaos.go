package transport

//lint:deterministic fault injection must replay exactly from its seed

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// OpAny matches every opcode in chaos fault rules.
const OpAny Op = -1

// ErrInjected is the error returned by chaos-injected failures, so tests
// can tell injected faults from real ones with errors.Is.
var ErrInjected = errors.New("chaos: injected fault")

// Fault describes one injectable failure. Fields compose: a fault may
// delay and then fail, for example.
type Fault struct {
	// Delay sleeps before the call proceeds (honoring the context).
	Delay time.Duration
	// Err, when non-nil, is returned instead of forwarding the call.
	Err error
	// Hang blocks until the context is cancelled (or the chaos client is
	// closed), simulating a site that accepts the request and never
	// answers.
	Hang bool
	// Drop closes the underlying client before failing the call,
	// simulating a connection torn down mid-exchange.
	Drop bool
	// DropAfter forwards the call, delivers its response, and then closes
	// the underlying client: the site answered round N but its connection
	// is gone when round N+1 fans out — the round-boundary failure mode
	// that exercises checkpoint/replay rather than mid-call retry. The
	// coordinator is synchronizing when the teardown happens, so composing
	// DropAfter with Delay on the *next* op models a mid-synchronize kill.
	DropAfter bool
}

// Chaos is a deterministic fault-injection wrapper around a Client: every
// failure mode of a real network — slow links, hung sites, dropped
// connections, transient errors — becomes reproducible in-process, so the
// full fault-tolerance surface is testable with plain `go test`.
//
// Faults come from two sources, checked in order:
//
//  1. A scripted per-op FIFO of one-shot faults (Inject and the FailNext /
//     HangNext / DelayNext / DropNext helpers). OpAny queues apply to every
//     opcode. Scripted faults make specific scenarios exact: "the second
//     evalRounds hangs".
//  2. Seeded random injection (SetRandom): each call draws from a
//     rand.Rand seeded at construction, so a given seed always produces
//     the same fault sequence for the same call sequence.
//
// Chaos implements Client and composes with every other wrapper; wrap the
// innermost client (e.g. chaos around a LocalClient, inside a
// Reconnector) to exercise retry and failover paths.
type Chaos struct {
	inner Client

	mu sync.Mutex
	//lint:guarded-by mu
	rng *rand.Rand
	//lint:guarded-by mu
	queues map[Op][]Fault
	// at holds positional one-shots, keyed by per-op call number.
	//
	//lint:guarded-by mu
	at map[Op]map[int]Fault
	// opCalls counts calls seen per opcode (for InjectAt).
	//
	//lint:guarded-by mu
	opCalls map[Op]int
	//lint:guarded-by mu
	errRate float64
	//lint:guarded-by mu
	delayMax time.Duration
	// Tail-latency mode (SetTailLatency): its own rng keeps the straggler
	// sequence independent of the errRate/delayMax draws, so enabling one
	// mode never perturbs the other's seeded sequence.
	//
	//lint:guarded-by mu
	tailRng *rand.Rand
	//lint:guarded-by mu
	tailP float64
	//lint:guarded-by mu
	tailDelay time.Duration
	//lint:guarded-by mu
	calls int
	//lint:guarded-by mu
	injected int
	closed   chan struct{}
	//lint:guarded-by mu
	obs *obs.Obs
}

// NewChaos wraps inner with a fault injector whose random decisions are
// driven by seed.
func NewChaos(inner Client, seed int64) *Chaos {
	return &Chaos{
		inner:   inner,
		rng:     rand.New(rand.NewSource(seed)),
		queues:  map[Op][]Fault{},
		opCalls: map[Op]int{},
		closed:  make(chan struct{}),
	}
}

// Inject queues a one-shot fault for the given opcode (OpAny = every op).
// Queued faults are consumed FIFO, one per matching call.
func (c *Chaos) Inject(op Op, f Fault) {
	c.mu.Lock()
	c.queues[op] = append(c.queues[op], f)
	c.mu.Unlock()
}

// FailNext queues n one-shot transport errors for op.
func (c *Chaos) FailNext(op Op, n int) {
	for i := 0; i < n; i++ {
		c.Inject(op, Fault{Err: ErrInjected})
	}
}

// HangNext makes the next call with op hang until its context is done.
func (c *Chaos) HangNext(op Op) { c.Inject(op, Fault{Hang: true}) }

// DelayNext delays the next call with op by d before forwarding it.
func (c *Chaos) DelayNext(op Op, d time.Duration) { c.Inject(op, Fault{Delay: d}) }

// DropNext makes the next call with op close the underlying client and
// fail, as if the connection were torn down mid-exchange.
func (c *Chaos) DropNext(op Op) { c.Inject(op, Fault{Drop: true, Err: ErrInjected}) }

// DropAfterNext makes the next call with op complete normally and then
// closes the underlying client: the site's answer for this round is
// delivered, but the connection is dead at the next round boundary.
func (c *Chaos) DropAfterNext(op Op) { c.Inject(op, Fault{DropAfter: true}) }

// InjectAt schedules a one-shot fault for the nth future call (1-based)
// carrying the given opcode, counted from now on a per-op counter — so
// "kill the connection after the site answers round 2" is
// InjectAt(OpEvalRounds, 2, Fault{DropAfter: true}) regardless of what
// other ops interleave. With OpAny the position counts all calls.
// Scheduling a second fault at the same (op, n) replaces the first.
func (c *Chaos) InjectAt(op Op, nthCall int, f Fault) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.at == nil {
		c.at = map[Op]map[int]Fault{}
	}
	if c.at[op] == nil {
		c.at[op] = map[int]Fault{}
	}
	base := c.opCalls[op]
	if op == OpAny {
		base = c.calls
	}
	c.at[op][base+nthCall] = f
}

// SetRandom enables seeded random injection: each call fails with
// probability errRate and is otherwise delayed by a uniform duration in
// [0, delayMax) when delayMax > 0.
func (c *Chaos) SetRandom(errRate float64, delayMax time.Duration) {
	c.mu.Lock()
	c.errRate = errRate
	c.delayMax = delayMax
	c.mu.Unlock()
}

// SetTailLatency enables a seeded heavy-tail latency mode: each call is
// delayed by delay with probability p, drawn from a dedicated rng seeded
// at seed — the deterministic straggler distribution the tail-tolerance
// tests and `-experiment tail` inject. It composes with (and is checked
// after) scripted faults and before the SetRandom draws; p ≤ 0 disables
// the mode.
func (c *Chaos) SetTailLatency(seed int64, p float64, delay time.Duration) {
	c.mu.Lock()
	c.tailRng = rand.New(rand.NewSource(seed))
	c.tailP = p
	c.tailDelay = delay
	c.mu.Unlock()
}

// DelayN queues n one-shot delays of d for op — a scripted straggler
// burst ("the next three round calls are slow").
func (c *Chaos) DelayN(op Op, n int, d time.Duration) {
	for i := 0; i < n; i++ {
		c.Inject(op, Fault{Delay: d})
	}
}

// SetObs publishes every injected fault as an obs event (kind
// obs.EventChaos) and per-mode counters ("chaos.injected",
// "chaos.injected.err", ...), so chaos attribution is never lost behind
// the Stats() pass-through to the inner client: wire statistics flow
// through untouched, while the faults themselves become observable and
// exactly countable.
func (c *Chaos) SetObs(o *obs.Obs) {
	c.mu.Lock()
	c.obs = o
	c.mu.Unlock()
}

// Calls returns how many calls the wrapper has seen.
func (c *Chaos) Calls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

// Injected returns how many calls were given a fault.
func (c *Chaos) Injected() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.injected
}

// SiteID implements Client.
func (c *Chaos) SiteID() string { return c.inner.SiteID() }

// Stats implements Client.
func (c *Chaos) Stats() *WireStats { return c.inner.Stats() }

// Close implements Client, releasing hung calls.
func (c *Chaos) Close() error {
	c.mu.Lock()
	select {
	case <-c.closed:
	default:
		close(c.closed)
	}
	c.mu.Unlock()
	return c.inner.Close()
}

// next pops the fault to apply to this call, if any.
func (c *Chaos) next(op Op) (Fault, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	c.opCalls[op]++
	if m := c.at[op]; m != nil {
		if f, ok := m[c.opCalls[op]]; ok {
			delete(m, c.opCalls[op])
			c.injected++
			return f, true
		}
	}
	if m := c.at[OpAny]; m != nil {
		if f, ok := m[c.calls]; ok {
			delete(m, c.calls)
			c.injected++
			return f, true
		}
	}
	for _, key := range []Op{op, OpAny} {
		if q := c.queues[key]; len(q) > 0 {
			f := q[0]
			c.queues[key] = q[1:]
			c.injected++
			return f, true
		}
	}
	var f Fault
	var hit bool
	if c.tailP > 0 && c.tailRng.Float64() < c.tailP {
		f.Delay = c.tailDelay
		hit = true
	}
	if c.errRate > 0 && c.rng.Float64() < c.errRate {
		f.Err = ErrInjected
		hit = true
	}
	if c.delayMax > 0 && f.Delay == 0 {
		f.Delay = time.Duration(c.rng.Int63n(int64(c.delayMax)))
		hit = hit || f.Delay > 0
	}
	if hit {
		c.injected++
	}
	return f, hit
}

// faultModes renders the composed failure modes of f ("delay+err").
func faultModes(f Fault) string {
	var modes []string
	if f.Delay > 0 {
		modes = append(modes, "delay")
	}
	if f.Hang {
		modes = append(modes, "hang")
	}
	if f.Drop {
		modes = append(modes, "drop")
	}
	if f.DropAfter {
		modes = append(modes, "drop-after")
	}
	if f.Err != nil {
		modes = append(modes, "err")
	}
	if len(modes) == 0 {
		return "none"
	}
	return strings.Join(modes, "+")
}

// record publishes one injected fault to the obs sinks.
func (c *Chaos) record(op Op, f Fault) {
	c.mu.Lock()
	o := c.obs
	c.mu.Unlock()
	if o == nil {
		return
	}
	modes := faultModes(f)
	o.Count("chaos.injected", 1)
	o.Count("chaos.injected."+modes, 1)
	o.Event(obs.EventChaos, c.SiteID(), "injected "+modes+" on "+op.String(),
		map[string]string{"op": op.String(), "fault": modes})
}

// Call implements Client, applying at most one fault per call.
func (c *Chaos) Call(ctx context.Context, req *Request) (*Response, error) {
	f, ok := c.next(req.Op)
	if !ok {
		return c.inner.Call(ctx, req)
	}
	c.record(req.Op, f)
	if f.Delay > 0 {
		if err := sleepCtx(ctx, f.Delay); err != nil {
			return nil, fmt.Errorf("chaos: %s: %w", c.SiteID(), err)
		}
	}
	if f.Hang {
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("chaos: %s hung: %w", c.SiteID(), ctx.Err())
		case <-c.closed:
			return nil, fmt.Errorf("chaos: %s hung until close: %w", c.SiteID(), ErrInjected)
		}
	}
	if f.Drop {
		c.inner.Close()
	}
	if f.Err != nil {
		return nil, fmt.Errorf("chaos: %s: %w", c.SiteID(), f.Err)
	}
	resp, err := c.inner.Call(ctx, req)
	if f.DropAfter {
		// The exchange completed; tear the connection down afterwards so
		// the site is unreachable at the next round boundary.
		c.inner.Close()
	}
	return resp, err
}
