package transport

import (
	"context"
	"testing"
)

func BenchmarkLocalRoundTrip(b *testing.B) {
	c := NewLocalClient("s", newEchoHandler(), CostModel{})
	req := &Request{Op: OpLoad, Rel: "t", Data: sampleRelation(200)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
	sent, _, _, _ := c.Stats().Snapshot()
	b.SetBytes(sent / int64(b.N))
}

func BenchmarkTCPRoundTrip(b *testing.B) {
	srv := NewServer(newEchoHandler())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := DialTCP("s", addr, CostModel{})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	req := &Request{Op: OpLoad, Rel: "t", Data: sampleRelation(200)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPingLatency(b *testing.B) {
	srv := NewServer(newEchoHandler())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := DialTCP("s", addr, CostModel{})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	req := &Request{Op: OpPing}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}
