package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/relation"
	"repro/internal/value"
)

// echoHandler answers pings and echoes loaded relations back.
type echoHandler struct {
	mu   sync.Mutex
	rels map[string]*relation.Relation
}

func newEchoHandler() *echoHandler {
	return &echoHandler{rels: map[string]*relation.Relation{}}
}

func (h *echoHandler) Handle(ctx context.Context, req *Request) *Response {
	h.mu.Lock()
	defer h.mu.Unlock()
	switch req.Op {
	case OpPing:
		return &Response{}
	case OpLoad:
		h.rels[req.Rel] = req.Data
		return &Response{RowCount: req.Data.Len()}
	case OpRelInfo:
		r, ok := h.rels[req.Rel]
		if !ok {
			return &Response{Err: "no such relation"}
		}
		return &Response{Rel: r, RowCount: r.Len()}
	default:
		return &Response{Err: fmt.Sprintf("unsupported op %s", req.Op)}
	}
}

func sampleRelation(n int) *relation.Relation {
	s := relation.MustSchema(
		relation.Column{Name: "k", Kind: value.KindInt},
		relation.Column{Name: "v", Kind: value.KindFloat},
		relation.Column{Name: "s", Kind: value.KindString},
	)
	r := relation.New(s)
	for i := 0; i < n; i++ {
		r.MustAppend(value.NewInt(int64(i)), value.NewFloat(float64(i)/2), value.NewString(fmt.Sprintf("row-%d", i)))
	}
	if n > 0 {
		r.Rows[0][1] = value.Null // exercise NULL over the wire
	}
	return r
}

func exerciseClient(t *testing.T, c Client) {
	t.Helper()
	resp, err := c.Call(context.Background(), &Request{Op: OpPing})
	if err != nil || resp.Error() != nil {
		t.Fatalf("ping: %v / %v", err, resp.Error())
	}
	rel := sampleRelation(50)
	resp, err = c.Call(context.Background(), &Request{Op: OpLoad, Rel: "t", Data: rel})
	if err != nil {
		t.Fatal(err)
	}
	if resp.RowCount != 50 {
		t.Errorf("load count = %d", resp.RowCount)
	}
	resp, err = c.Call(context.Background(), &Request{Op: OpRelInfo, Rel: "t"})
	if err != nil {
		t.Fatal(err)
	}
	back := resp.Rel
	if back == nil || back.Len() != 50 {
		t.Fatalf("echo returned %v", back)
	}
	// Schema survives the wire including lookup capability.
	if i, ok := back.Schema.Lookup("v"); !ok || i != 1 {
		t.Error("schema lookup broken after wire round trip")
	}
	if !back.Rows[0][1].IsNull() {
		t.Error("NULL lost over the wire")
	}
	if back.Rows[7][2].S != "row-7" {
		t.Errorf("string value corrupted: %v", back.Rows[7][2])
	}
	// Error responses convert to errors.
	resp, err = c.Call(context.Background(), &Request{Op: OpRelInfo, Rel: "missing"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error() == nil || !strings.Contains(resp.Error().Error(), "no such relation") {
		t.Errorf("error field: %v", resp.Error())
	}
	// Stats accumulated.
	sent, recv, msgs, _ := c.Stats().Snapshot()
	if sent <= 0 || recv <= 0 || msgs < 4 {
		t.Errorf("stats: sent=%d recv=%d msgs=%d", sent, recv, msgs)
	}
}

func TestLocalClient(t *testing.T) {
	c := NewLocalClient("s1", newEchoHandler(), CostModel{})
	if c.SiteID() != "s1" {
		t.Error("SiteID")
	}
	exerciseClient(t, c)
	if err := c.Close(); err != nil {
		t.Error(err)
	}
}

func TestTCPClient(t *testing.T) {
	srv := NewServer(newEchoHandler())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := DialTCP("s1", addr, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	exerciseClient(t, c)
}

// TestLocalAndTCPByteParity: the in-process transport must account the
// same wire bytes as real TCP for the same traffic.
func TestLocalAndTCPByteParity(t *testing.T) {
	srv := NewServer(newEchoHandler())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tcp, err := DialTCP("t", addr, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	local := NewLocalClient("l", newEchoHandler(), CostModel{})

	req := &Request{Op: OpLoad, Rel: "t", Data: sampleRelation(100)}
	if _, err := tcp.Call(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if _, err := local.Call(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	ts, _, _, _ := tcp.Stats().Snapshot()
	ls, _, _, _ := local.Stats().Snapshot()
	// gob stream framing is identical; allow tiny slack for type
	// registration ordering.
	diff := ts - ls
	if diff < 0 {
		diff = -diff
	}
	if diff > ts/100+16 {
		t.Errorf("byte accounting differs: tcp=%d local=%d", ts, ls)
	}
}

func TestTCPMultipleClients(t *testing.T) {
	srv := NewServer(newEchoHandler())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := DialTCP(fmt.Sprintf("c%d", i), addr, CostModel{})
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < 10; j++ {
				if _, err := c.Call(context.Background(), &Request{Op: OpPing}); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestServerCloseIdempotent(t *testing.T) {
	srv := NewServer(newEchoHandler())
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Error(err)
	}
	if err := srv.Close(); err != nil {
		t.Error("second close errored:", err)
	}
}

func TestCostModel(t *testing.T) {
	c := CostModel{LatencyPerMsg: time.Millisecond, BytesPerSec: 1000}
	if got := c.TransferTime(1000); got != time.Millisecond+time.Second {
		t.Errorf("TransferTime = %v", got)
	}
	if got := (CostModel{}).TransferTime(1 << 20); got != 0 {
		t.Errorf("zero model transfer = %v", got)
	}
	if DefaultWAN.TransferTime(0) <= 0 {
		t.Error("DefaultWAN has no latency")
	}
}

func TestWireStats(t *testing.T) {
	var w WireStats
	cm := CostModel{LatencyPerMsg: time.Millisecond}
	w.AddSent(100, cm)
	w.AddReceived(200, cm)
	s, r, m, d := w.Snapshot()
	if s != 100 || r != 200 || m != 1 || d != 2*time.Millisecond {
		t.Errorf("snapshot = %d %d %d %v", s, r, m, d)
	}
	if w.Bytes() != 300 {
		t.Errorf("Bytes = %d", w.Bytes())
	}
	if w.CommTime() != 2*time.Millisecond {
		t.Errorf("CommTime = %v", w.CommTime())
	}
	w.Reset()
	if w.Bytes() != 0 {
		t.Error("Reset failed")
	}
}

func TestCostModelSleep(t *testing.T) {
	var w WireStats
	cm := CostModel{LatencyPerMsg: 20 * time.Millisecond, Sleep: true}
	start := time.Now()
	w.AddSent(1, cm)
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("sleep mode did not sleep: %v", elapsed)
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{
		OpPing: "ping", OpLoad: "load", OpGenerate: "generate",
		OpEvalBase: "evalBase", OpEvalRounds: "evalRounds",
		OpDrop: "drop", OpRelInfo: "relInfo", Op(99): "Op(99)",
	} {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
}

// flakyListener injects transient Accept failures before delegating.
type flakyListener struct {
	net.Listener
	mu    sync.Mutex
	fails int
}

func (l *flakyListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	inject := l.fails > 0
	if inject {
		l.fails--
	}
	l.mu.Unlock()
	if inject {
		return nil, errors.New("accept: too many open files")
	}
	return l.Listener.Accept()
}

// TestAcceptLoopSurvivesTransientErrors: a transient Accept failure
// (EMFILE and friends) must not kill the listener.
func TestAcceptLoopSurvivesTransientErrors(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(newEchoHandler())
	var logged int32
	srv.Logf = func(format string, args ...any) { atomic.AddInt32(&logged, 1) }
	addr := srv.Serve(&flakyListener{Listener: l, fails: 2})
	defer srv.Close()

	c, err := DialTCP("s", addr, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(context.Background(), &Request{Op: OpPing}); err != nil {
		t.Fatalf("server died after transient accept error: %v", err)
	}
	if atomic.LoadInt32(&logged) != 2 {
		t.Errorf("logged %d accept errors, want 2", logged)
	}
}

// TestTCPClientBrokenAfterStreamError: once an exchange fails mid-stream
// the gob state is desynced; the client must close the connection and
// fail fast instead of reusing the corrupt stream.
func TestTCPClientBrokenAfterStreamError(t *testing.T) {
	srv := NewServer(newEchoHandler())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialTCP("s", addr, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(context.Background(), &Request{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	srv.Close() // kill the server: the next exchange fails mid-stream
	if _, err := c.Call(context.Background(), &Request{Op: OpPing}); err == nil {
		t.Fatal("call against a dead server succeeded")
	}
	_, err = c.Call(context.Background(), &Request{Op: OpPing})
	if err == nil || !strings.Contains(err.Error(), "broken") {
		t.Fatalf("want fail-fast broken-connection error, got %v", err)
	}
}

// blockingHandler blocks every request until released.
type blockingHandler struct{ release chan struct{} }

func (h *blockingHandler) Handle(ctx context.Context, req *Request) *Response {
	<-h.release
	return &Response{}
}

// TestTCPCallDeadline: a context deadline must bound a call against a
// site that accepted the request and never answers, and the aborted
// connection must be marked broken (the reply could still arrive later
// and desync the stream).
func TestTCPCallDeadline(t *testing.T) {
	h := &blockingHandler{release: make(chan struct{})}
	srv := NewServer(h)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer close(h.release) // LIFO: release the handler before Close waits

	c, err := DialTCP("s", addr, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Call(ctx, &Request{Op: OpPing})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline not enforced: took %v", elapsed)
	}
	if _, err := c.Call(context.Background(), &Request{Op: OpPing}); err == nil || !strings.Contains(err.Error(), "broken") {
		t.Fatalf("aborted connection not marked broken: %v", err)
	}
}

// TestTCPCallCancel: cancellation (not just deadlines) interrupts
// blocked I/O.
func TestTCPCallCancel(t *testing.T) {
	h := &blockingHandler{release: make(chan struct{})}
	srv := NewServer(h)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer close(h.release) // LIFO: release the handler before Close waits

	c, err := DialTCP("s", addr, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	if _, err := c.Call(ctx, &Request{Op: OpPing}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
}

// TestReconnectorRedialsAfterBrokenStream: the broken-connection marking
// and the reconnector compose — a retry gets a fresh connection.
func TestReconnectorRedialsAfterBrokenStream(t *testing.T) {
	srv := NewServer(newEchoHandler())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rc := NewReconnectingTCP("s", addr, CostModel{}, 3, 0)
	defer rc.Close()
	if _, err := rc.Call(context.Background(), &Request{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv2 := NewServer(newEchoHandler())
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatalf("rebind: %v", err)
	}
	defer srv2.Close()
	// First attempt fails on the stale (now broken) connection; the
	// retry redials and succeeds.
	if _, err := rc.Call(context.Background(), &Request{Op: OpPing}); err != nil {
		t.Fatalf("reconnector did not recover from broken stream: %v", err)
	}
}

func TestLocalCallCancel(t *testing.T) {
	h := &blockingHandler{release: make(chan struct{})}
	defer close(h.release)
	c := NewLocalClient("s", h, CostModel{})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Call(ctx, &Request{Op: OpPing}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("local call did not honor the deadline")
	}
}
