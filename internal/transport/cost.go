package transport

import (
	"sync"
	"time"
)

// CostModel models a wide-area link between coordinator and site. The
// paper's experiments ran on a LAN of workstations where communication is
// a first-order cost; on a single machine real TCP over loopback is far
// too fast to reproduce that, so the harness attributes a modeled transfer
// time to every message based on its measured byte size.
//
// With Sleep false (the default) the model only accounts time, keeping
// tests and benchmarks fast; with Sleep true it really delays, which makes
// the wall-clock behavior of examples faithful.
type CostModel struct {
	// LatencyPerMsg is the fixed per-message cost (propagation + RPC
	// overhead), applied to each request and each response.
	LatencyPerMsg time.Duration
	// BytesPerSec is the link bandwidth; 0 means infinite.
	BytesPerSec float64
	// Sleep selects real delays instead of virtual accounting.
	Sleep bool
}

// DefaultWAN is a 10 Mbit/s, 2 ms link — the rough shape of the paper-era
// distributed warehouse interconnect.
var DefaultWAN = CostModel{LatencyPerMsg: 2 * time.Millisecond, BytesPerSec: 10e6 / 8}

// TransferTime returns the modeled time to move n bytes one way.
func (c CostModel) TransferTime(n int) time.Duration {
	d := c.LatencyPerMsg
	if c.BytesPerSec > 0 {
		d += time.Duration(float64(n) / c.BytesPerSec * float64(time.Second))
	}
	return d
}

// WireStats accumulates per-client communication statistics. It is safe
// for concurrent use.
type WireStats struct {
	mu sync.Mutex
	//lint:guarded-by mu
	bytesSent int64
	//lint:guarded-by mu
	bytesReceived int64
	//lint:guarded-by mu
	messages int64
	//lint:guarded-by mu
	commTime time.Duration
}

// AddSent records n bytes sent plus its modeled transfer time.
func (w *WireStats) AddSent(n int, c CostModel) {
	d := c.TransferTime(n)
	w.mu.Lock()
	w.bytesSent += int64(n)
	w.messages++
	w.commTime += d
	w.mu.Unlock()
	if c.Sleep {
		time.Sleep(d)
	}
}

// AddReceived records n bytes received plus its modeled transfer time.
func (w *WireStats) AddReceived(n int, c CostModel) {
	d := c.TransferTime(n)
	w.mu.Lock()
	w.bytesReceived += int64(n)
	w.commTime += d
	w.mu.Unlock()
	if c.Sleep {
		time.Sleep(d)
	}
}

// Snapshot returns the current totals.
func (w *WireStats) Snapshot() (sent, received, messages int64, commTime time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bytesSent, w.bytesReceived, w.messages, w.commTime
}

// Bytes returns total bytes moved in both directions.
func (w *WireStats) Bytes() int64 {
	s, r, _, _ := w.Snapshot()
	return s + r
}

// CommTime returns the accumulated modeled communication time.
func (w *WireStats) CommTime() time.Duration {
	_, _, _, d := w.Snapshot()
	return d
}

// Reset zeroes the statistics.
func (w *WireStats) Reset() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.bytesSent, w.bytesReceived, w.messages, w.commTime = 0, 0, 0, 0
}

// countingWriter counts bytes written to an underlying writer.
type countingWriter struct {
	w interface{ Write([]byte) (int, error) }
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// countingReader counts bytes read from an underlying reader.
type countingReader struct {
	r interface{ Read([]byte) (int, error) }
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
