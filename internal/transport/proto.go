// Package transport implements the communication layer between the Skalla
// coordinator and its sites: the request/response protocol, a TCP
// transport (net + encoding/gob), an in-process transport that still
// serializes through gob so byte accounting stays exact, and a network
// cost model used to reproduce the paper's communication-dominated
// behavior on a single machine.
//
// Expressions, aggregate specs, and conditions travel in their textual
// wire form and are parsed at the receiving side; rows travel as plain
// value structs. Only base-result structures and sub-aggregate results are
// ever shipped — never detail data, per the core design of the paper.
package transport

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/relation"
)

// Typed site-condition errors. They cross the wire as Response.Code (gob
// ships strings, not error chains), and Response.Error rebuilds a chain
// that matches with errors.Is, so callers can classify without string
// inspection: an overloaded or draining site is healthy but shedding load
// — the right reaction is immediate replica failover, not a retry against
// the same endpoint and not a permanent site-loss verdict.
var (
	// ErrOverloaded: the site refused the request because a per-request
	// resource limit (max result rows/bytes) was exceeded.
	ErrOverloaded = errors.New("transport: site overloaded")
	// ErrDraining: the site is shutting down gracefully and no longer
	// accepts new requests (in-flight requests still complete).
	ErrDraining = errors.New("transport: site draining")
	// ErrExpired: the request's propagated deadline (Request.DeadlineNs)
	// had already passed when the site looked at it, or ran out during
	// evaluation — the coordinator will never read the answer, so the
	// site shed the doomed work instead of computing it.
	ErrExpired = errors.New("transport: request deadline expired")
)

// Response.Code values classifying site-side errors on the wire.
const (
	// CodeOK: no classified condition (Err may still be set for plain
	// site-side failures).
	CodeOK = 0
	// CodeOverloaded maps to ErrOverloaded.
	CodeOverloaded = 1
	// CodeDraining maps to ErrDraining.
	CodeDraining = 2
	// CodeExpired maps to ErrExpired: the request's propagated deadline
	// passed before (or while) the site evaluated it. Unlike overload and
	// drain this is not a load-shedding refusal — the caller's own budget
	// ran out — so Shed() deliberately excludes it: an expired request
	// must not halve AIMD windows or trigger replica failover.
	CodeExpired = 3
)

// ErrCode classifies an error chain into a wire code, the inverse of
// Response.Error's code-to-sentinel mapping.
func ErrCode(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return CodeOverloaded
	case errors.Is(err, ErrDraining):
		return CodeDraining
	case errors.Is(err, ErrExpired):
		return CodeExpired
	default:
		return CodeOK
	}
}

// Op is a request opcode.
type Op int

// The site protocol operations.
const (
	// OpPing checks liveness.
	OpPing Op = iota
	// OpLoad stores the shipped relation under Request.Rel at the site.
	OpLoad
	// OpGenerate makes the site synthesize its partition of a dataset
	// locally (so benchmarks never ship detail data).
	OpGenerate
	// OpEvalBase computes the base-values query over the local detail
	// relation and returns the result.
	OpEvalBase
	// OpEvalRounds evaluates one or more GMDJ rounds against the local
	// detail relation and returns the sub-aggregate result. The base
	// relation either arrives with the request or is computed locally
	// (Proposition 2 fusion) when Request.BaseCols is set.
	OpEvalRounds
	// OpDrop removes a stored relation.
	OpDrop
	// OpRelInfo returns row count and schema of a stored relation.
	OpRelInfo
	// OpEpochDone tells the site that the execution named by Request.Epoch
	// has completed: its replay-dedup entries can never be asked again and
	// should be evicted. Best-effort — a site that never hears it ages the
	// epoch out instead.
	OpEpochDone
)

// String returns the opcode mnemonic.
func (o Op) String() string {
	switch o {
	case OpPing:
		return "ping"
	case OpLoad:
		return "load"
	case OpGenerate:
		return "generate"
	case OpEvalBase:
		return "evalBase"
	case OpEvalRounds:
		return "evalRounds"
	case OpDrop:
		return "drop"
	case OpRelInfo:
		return "relInfo"
	case OpEpochDone:
		return "epochDone"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// RoundSpec describes one GMDJ round for a site: the textual forms of the
// MD operator plus evaluation flags.
type RoundSpec struct {
	// Detail names the local detail relation R_k.
	Detail string
	// Aggs[i] are the aggregate spec texts of l_i ("count(*) AS cnt1").
	Aggs [][]string
	// Thetas[i] is the condition text of θ_i.
	Thetas []string
	// BaseAlias/DetailAlias are the condition qualifiers (default B / R).
	BaseAlias   string
	DetailAlias string
	// Finalize appends finalized aggregate columns locally — required for
	// chained local evaluation where later rounds reference them.
	Finalize bool
	// Touched tracks |RNG| > 0 per group for distribution-independent
	// group reduction (Proposition 1).
	Touched bool
}

// GenSpec asks a site to generate its partition of a synthetic dataset.
type GenSpec struct {
	// Kind selects the generator: "tpcr" or "ipflow".
	Kind string
	// Rel is the name to store the generated relation under.
	Rel string
	// Params are generator-specific integer parameters (rows, seed, ...).
	Params map[string]int64
	// Site and NumSites select which horizontal partition to generate.
	Site     int
	NumSites int
}

// Request is the single wire request envelope. Fields are used per-Op.
// Every field must survive the gob round trip — wiresafe (LINT.md) audits
// the transitive field graph from this root.
//
//lint:wireroot
type Request struct {
	Op  Op
	Rel string // OpLoad, OpDrop, OpRelInfo: relation name

	// OpLoad payload.
	Data *relation.Relation

	// OpGenerate payload.
	Gen *GenSpec

	// OpEvalBase / OpEvalRounds: base-values definition. For
	// OpEvalRounds, a non-empty BaseCols means "compute the base locally
	// from the detail relation" (Proposition 2); otherwise Base carries
	// the shipped base-result fragment.
	BaseCols  []string
	BaseWhere string
	Detail    string
	Base      *relation.Relation

	// OpEvalRounds: the rounds to evaluate locally in sequence. More than
	// one round means chained local evaluation (synchronization
	// reduction, Theorem 5 / Corollary 1).
	Rounds []RoundSpec

	// KeepFinal keeps finalized aggregate columns in the response (used
	// by plans that union finalized results instead of merging
	// primitives).
	KeepFinal bool

	// Keys are the key attributes K of the base-result structure. Leaf
	// sites do not need them; relay tiers (multi-tier coordination) use
	// them to pre-merge their children's sub-aggregates before
	// forwarding upstream.
	Keys []string

	// Epoch identifies one plan execution for recovery: the coordinator
	// tags every eval request of an execution with the same epoch so a
	// replayed round is recognizable. Empty disables replay dedup.
	Epoch string
	// Round is the zero-based synchronization-round sequence number
	// within the epoch. (Epoch, Round) identifies one site exchange: the
	// coordinator sends a deterministic request per (epoch, round, site),
	// so sites may answer a repeat from cache instead of recomputing.
	Round int

	// QueryID, when non-empty, asks the site to profile this request and
	// piggy-back a SiteProfile on the response; the coordinator assembles
	// the per-site profiles into a per-query execution profile tree. Like
	// Epoch/Round, the zero value keeps untagged requests wire-identical
	// to the pre-profiling encoding (gob omits zero-valued fields), so
	// profiling is strictly opt-in per query.
	QueryID string

	// DeadlineNs is the coordinator's remaining per-call budget in
	// nanoseconds at send time, propagated so the site can shed work whose
	// answer nobody will read: a negative value means "already expired —
	// do not evaluate" and a positive value bounds the site-side
	// evaluation. Zero means "no deadline", which gob omits, keeping
	// untagged requests byte-identical to the pre-deadline encoding.
	DeadlineNs int64
}

// Response is the single wire response envelope. Every field must survive
// the gob round trip — wiresafe (LINT.md) audits the transitive field
// graph from this root.
//
//lint:wireroot
type Response struct {
	// Err is non-empty when the operation failed.
	Err string
	// Code classifies the failure for errors.Is-style reactions across
	// the wire (Code* constants): overload and drain conditions trigger
	// immediate replica failover instead of same-site retries.
	Code int
	// Rel is the result relation (eval ops) or nil.
	Rel *relation.Relation
	// RowCount reports affected/stored row counts for non-eval ops.
	RowCount int
	// ComputeNs is the site-side computation time in nanoseconds,
	// reported so the harness can break down evaluation time like the
	// paper's Fig. 5.
	ComputeNs int64
	// Profile is the site's per-request execution profile, attached only
	// when the request carried a QueryID (nil otherwise, which gob omits,
	// keeping untagged exchanges wire-identical).
	Profile *SiteProfile
}

// SiteProfile is one site's per-request execution profile, piggy-backed
// on the response of a QueryID-tagged request. It scopes to exactly this
// request what the obs registry only reports process-globally (vec.*
// kernel counters, compute histograms), so concurrent queries never bleed
// into each other's numbers. Byte counts are cheap payload estimates
// (the coordinator measures exact wire bytes on its side of the link).
type SiteProfile struct {
	// WallNs is the site-side wall time handling the request, including
	// parse and limit checks (ComputeNs covers only evaluation).
	WallNs int64
	// RowsIn counts base-structure rows received with the request;
	// RowsOut counts result rows returned.
	RowsIn  int
	RowsOut int
	// BytesInApprox / BytesOutApprox estimate the base and result
	// relation payload sizes (8 bytes per scalar plus string lengths) —
	// an estimate, not exact wire bytes.
	BytesInApprox  int64
	BytesOutApprox int64
	// Rounds is how many GMDJ rounds were evaluated locally (chained
	// local evaluation runs several per request).
	Rounds int
	// Engine names the configured evaluation engine ("vector" or
	// "row"). The vector engine may still fall back to rows for
	// relations outside the kernels' reach; zero VecBatches with
	// non-zero RowsOut signals that.
	Engine string
	// Workers is the evaluation parallelism used for this request.
	Workers int
	// VecBatches / VecRows / VecFilterRows / VecSelected are the
	// vectorized kernel statistics of this request alone.
	VecBatches    int64
	VecRows       int64
	VecFilterRows int64
	VecSelected   int64
	// Outcome classifies how the request ended: "ok", "dedup" (answered
	// from the replay cache), "overloaded", "draining", or "error".
	Outcome string
}

// SiteProfile.Outcome values.
const (
	// OutcomeOK: the request evaluated normally.
	OutcomeOK = "ok"
	// OutcomeDedup: the response was served from the replay-dedup cache;
	// the profile numbers describe the original evaluation.
	OutcomeDedup = "dedup"
	// OutcomeOverloaded / OutcomeDraining: the site shed the request.
	OutcomeOverloaded = "overloaded"
	OutcomeDraining   = "draining"
	// OutcomeExpired: the request's propagated deadline passed before or
	// during evaluation and the site shed the doomed work.
	OutcomeExpired = "expired"
	// OutcomeError: the request failed with a plain site-side error.
	OutcomeError = "error"
)

// ErrOutcome classifies an error chain into a profile outcome, mirroring
// ErrCode's sentinel mapping.
func ErrOutcome(err error) string {
	switch {
	case errors.Is(err, ErrOverloaded):
		return OutcomeOverloaded
	case errors.Is(err, ErrDraining):
		return OutcomeDraining
	case errors.Is(err, ErrExpired):
		return OutcomeExpired
	default:
		return OutcomeError
	}
}

// Error converts a Response error field back into a Go error. Classified
// codes wrap the matching sentinel so errors.Is(err, ErrOverloaded) and
// errors.Is(err, ErrDraining) survive the gob round trip.
func (r *Response) Error() error {
	if r.Err == "" {
		return nil
	}
	switch r.Code {
	case CodeOverloaded:
		return fmt.Errorf("site error: %s: %w", r.Err, ErrOverloaded)
	case CodeDraining:
		return fmt.Errorf("site error: %s: %w", r.Err, ErrDraining)
	case CodeExpired:
		// Wrap both the protocol sentinel and the context sentinel: the
		// expiry is the caller's own deadline coming home, so callers
		// mapping context.DeadlineExceeded (e.g. HTTP 504) classify it
		// without knowing about the wire code.
		return fmt.Errorf("site error: %s: %w (%w)", r.Err, ErrExpired, context.DeadlineExceeded)
	default:
		return fmt.Errorf("site error: %s", r.Err)
	}
}

// Shed reports whether the response is a load-shedding refusal (overload
// or drain): the site is alive but declined the request, so callers
// should fail over to a replica immediately rather than retry here.
func (r *Response) Shed() bool {
	return r != nil && (r.Code == CodeOverloaded || r.Code == CodeDraining)
}

// Handler processes site requests; implemented by the site engine and by
// relay tiers. The context is the caller's: it is cancelled when the
// requesting side abandons the exchange (local transport) or its
// connection drops (TCP transport), so multi-tier handlers must thread it
// into their own downstream calls for cancellation and deadlines to
// propagate through the whole coordinator tree — the ctxflow analyzer
// (LINT.md) enforces this mechanically.
type Handler interface {
	Handle(ctx context.Context, req *Request) *Response
}

// Client is the coordinator's handle to one site.
type Client interface {
	// SiteID returns the site's identifier.
	SiteID() string
	// Call performs one request/response exchange. Cancelling ctx (or
	// hitting its deadline) aborts the exchange: connection-oriented
	// transports interrupt blocked I/O and the call returns an error
	// wrapping ctx.Err(). A call aborted mid-exchange may leave the
	// underlying connection unusable; such clients report subsequent
	// calls as transport errors so a retrying wrapper redials.
	Call(ctx context.Context, req *Request) (*Response, error)
	// Stats returns the cumulative wire statistics of this client.
	Stats() *WireStats
	// Close releases the connection.
	Close() error
}
