package transport

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// HTTPHealth consults sites' /readyz debug endpoints (see internal/obs,
// ServeDebug) so a coordinator can skip a draining or otherwise not-ready
// site without burning a call that would only be refused. It caches each
// verdict briefly and fails open: a site with no configured URL, or whose
// probe errors out, counts as ready — the transport's own retry and
// failover machinery is the authority on truly dead sites, the gate only
// saves pointless round-trips to sites that *announced* they are leaving.
type HTTPHealth struct {
	urls   map[string]string // site id -> readyz URL
	client *http.Client
	ttl    time.Duration

	mu sync.Mutex
	//lint:guarded-by mu
	cache map[string]healthEntry
	//lint:guarded-by mu
	now func() time.Time
}

type healthEntry struct {
	ready  bool
	reason string
	at     time.Time
}

// NewHTTPHealth returns a gate probing the given site-id → URL map. URLs
// may be bare host:port debug addresses; "/readyz" and "http://" are
// filled in. Probes time out after one second and verdicts are cached for
// one second.
func NewHTTPHealth(urls map[string]string) *HTTPHealth {
	m := make(map[string]string, len(urls))
	for site, u := range urls {
		if u == "" {
			continue
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		if !strings.HasSuffix(u, "/readyz") {
			u = strings.TrimSuffix(u, "/") + "/readyz"
		}
		m[site] = u
	}
	return &HTTPHealth{
		urls:   m,
		client: &http.Client{Timeout: time.Second},
		ttl:    time.Second,
		cache:  map[string]healthEntry{},
		now:    time.Now,
	}
}

// SetTTL overrides the verdict cache lifetime (0 disables caching).
func (h *HTTPHealth) SetTTL(d time.Duration) {
	h.mu.Lock()
	h.ttl = d
	h.mu.Unlock()
}

// Ready reports whether site should receive new work and, when it should
// not, the reason the site gave.
func (h *HTTPHealth) Ready(site string) (bool, string) {
	url, ok := h.urls[site]
	if !ok {
		return true, ""
	}
	h.mu.Lock()
	if e, ok := h.cache[site]; ok && h.ttl > 0 && h.now().Sub(e.at) < h.ttl {
		h.mu.Unlock()
		return e.ready, e.reason
	}
	h.mu.Unlock()
	ready, reason := h.probe(url)
	h.mu.Lock()
	h.cache[site] = healthEntry{ready: ready, reason: reason, at: h.now()}
	h.mu.Unlock()
	return ready, reason
}

// probe performs one readiness check. Any transport-level failure fails
// open: unreachable is not the same as "asked not to be called".
func (h *HTTPHealth) probe(url string) (bool, string) {
	resp, err := h.client.Get(url)
	if err != nil {
		return true, ""
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	if resp.StatusCode == http.StatusOK {
		return true, ""
	}
	return false, strings.TrimSpace(string(body))
}
