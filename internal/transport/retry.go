package transport

//lint:deterministic retry backoff uses only the per-site seeded rng
//lint:wrap-errors transport failures must stay inspectable with errors.Is/As

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// Reconnector wraps a logical site with transparent reconnect-and-retry on
// transport failures (broken TCP connections, site restarts) and replica
// failover: the logical site is backed by an ordered list of endpoints,
// and when retries against the current endpoint are exhausted the call is
// transparently re-issued to the next replica. Re-issuing a request to a
// replica is safe because every protocol exchange is idempotent — only
// partial aggregate state and queries in wire form are shipped, never
// detail data, so repeating a round recomputes the same sub-aggregates
// (see PROTOCOL.md, "Timeouts, cancellation, and failover").
//
// Site-side errors (Response.Err) are deterministic results of the request
// and are never retried — only transport-level Call errors are. Context
// cancellation and deadline expiry also stop retrying immediately: the
// caller gave up, so burning further attempts (or failing over) is wasted
// work.
//
// Retries back off exponentially with full jitter from a deterministic
// per-site seed: delay n is uniform in [base·2ⁿ/2, base·2ⁿ], capped at
// MaxBackoff. Wire statistics aggregate across reconnections and
// failovers, so coordinators see one continuous accounting stream per
// logical site.
type Reconnector struct {
	id       string
	dials    []func() (Client, error)
	attempts int
	backoff  time.Duration

	// MaxBackoff caps the exponential backoff (default 10×backoff, at
	// least 2s). Set before the first Call.
	MaxBackoff time.Duration

	mu sync.Mutex
	//lint:guarded-by mu
	cur Client
	// ep is the current endpoint index; sticky across calls.
	//
	//lint:guarded-by mu
	ep int
	//lint:guarded-by mu
	rng *rand.Rand
	//lint:guarded-by mu
	sleep func(ctx context.Context, d time.Duration) error
	stats WireStats
	//lint:guarded-by mu
	obs *obs.Obs
	//lint:guarded-by mu
	budget *RetryBudget
}

// NewReconnector returns a client for a single-endpoint site that dials
// lazily and retries each call up to attempts times (minimum 1). backoff
// is the base pause between retries.
func NewReconnector(id string, dial func() (Client, error), attempts int, backoff time.Duration) *Reconnector {
	return NewReplicaSet(id, []func() (Client, error){dial}, attempts, backoff)
}

// NewReplicaSet returns a client for a logical site backed by replica
// endpoints in preference order. Each call tries the current endpoint up
// to attempts times, then fails over to the next replica; the working
// endpoint stays selected for subsequent calls.
func NewReplicaSet(id string, dials []func() (Client, error), attempts int, backoff time.Duration) *Reconnector {
	if attempts < 1 {
		attempts = 1
	}
	if len(dials) == 0 {
		panic("transport: replica set needs at least one endpoint")
	}
	maxB := 10 * backoff
	if maxB < 2*time.Second {
		maxB = 2 * time.Second
	}
	h := fnv.New64a()
	h.Write([]byte(id))
	return &Reconnector{
		id: id, dials: dials, attempts: attempts, backoff: backoff,
		MaxBackoff: maxB,
		rng:        rand.New(rand.NewSource(int64(h.Sum64()))),
		sleep:      sleepCtx,
	}
}

// NewReconnectingTCP is a Reconnector dialing a fixed TCP address.
func NewReconnectingTCP(id, addr string, cost CostModel, attempts int, backoff time.Duration) *Reconnector {
	return NewReplicaTCP(id, []string{addr}, cost, attempts, backoff)
}

// NewReplicaTCP is a Reconnector failing over across TCP addresses.
func NewReplicaTCP(id string, addrs []string, cost CostModel, attempts int, backoff time.Duration) *Reconnector {
	dials := make([]func() (Client, error), 0, len(addrs))
	for _, addr := range addrs {
		addr := addr
		dials = append(dials, func() (Client, error) {
			return DialTCP(id, addr, cost)
		})
	}
	return NewReplicaSet(id, dials, attempts, backoff)
}

// SetSleep overrides the backoff sleep function (tests inject virtual
// time). The function receives the jittered delay and should honor ctx.
func (r *Reconnector) SetSleep(f func(ctx context.Context, d time.Duration) error) {
	r.mu.Lock()
	r.sleep = f
	r.mu.Unlock()
}

// SetSeed reseeds the jitter source, making backoff sequences reproducible
// across runs regardless of the site id.
func (r *Reconnector) SetSeed(seed int64) {
	r.mu.Lock()
	r.rng = rand.New(rand.NewSource(seed))
	r.mu.Unlock()
}

// SetObs publishes retry, failover, and redial activity as obs events
// and counters ("transport.retries", "transport.failovers",
// "transport.redial_failures", "transport.retry_wasted_bytes"), and is
// propagated to dialed inner clients that support SetObs so their wire
// totals land in the same registry.
func (r *Reconnector) SetObs(o *obs.Obs) {
	r.mu.Lock()
	r.obs = o
	r.mu.Unlock()
}

// SetBudget attaches a shared retry budget: every Call earns into it and
// every same-endpoint retry must take a token first. An exhausted budget
// fails the call with an error wrapping ErrBudgetExhausted (and the last
// transport error) instead of retrying, so a sick cluster's retry volume
// stays bounded by the budget's ratio of primary traffic. Replica
// failovers are not charged — the next endpoint is an independent,
// presumed-healthy site, and charging failovers would let one dead
// replica starve the budget for everyone.
func (r *Reconnector) SetBudget(b *RetryBudget) {
	r.mu.Lock()
	r.budget = b
	r.mu.Unlock()
}

// SiteID implements Client.
func (r *Reconnector) SiteID() string { return r.id }

// Stats implements Client, returning the aggregated statistics.
func (r *Reconnector) Stats() *WireStats { return &r.stats }

// Endpoint returns the index of the currently selected replica endpoint.
func (r *Reconnector) Endpoint() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ep
}

// Close implements Client.
func (r *Reconnector) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur == nil {
		return nil
	}
	err := r.cur.Close()
	r.cur = nil
	return err
}

// Call implements Client with reconnect-and-retry plus replica failover.
//
// A shed response (Response.Code CodeOverloaded or CodeDraining) is
// treated as "this replica is healthy but refusing work": the call fails
// over to the next replica immediately, without backoff and without
// consuming the endpoint's retry budget. Once every replica has shed the
// call, the last shed response is returned as-is so the caller sees the
// typed refusal (ErrOverloaded / ErrDraining via Response.Error).
func (r *Reconnector) Call(ctx context.Context, req *Request) (*Response, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.budget.Earn()
	var lastErr error
	shedHops := 0           // replicas that shed this call in a row
	justFailedOver := false // skip the loop-top transition after a shed failover
	total := r.attempts * len(r.dials)
	for i := 0; i < total; i++ {
		attempt := i % r.attempts // attempt index at the current endpoint
		if justFailedOver {
			justFailedOver = false
		} else if i > 0 {
			if attempt == 0 {
				// Retries at the previous endpoint are exhausted: fail
				// over to the next replica without backing off (it is an
				// independent endpoint, presumed healthy).
				from := r.ep
				r.ep = (r.ep + 1) % len(r.dials)
				r.obs.Count("transport.failovers", 1)
				r.obs.Event(obs.EventFailover, r.id, "failing over to next replica",
					map[string]string{
						"op":   req.Op.String(),
						"from": strconv.Itoa(from),
						"to":   strconv.Itoa(r.ep),
					})
			} else {
				if !r.budget.Take() {
					return nil, fmt.Errorf("transport: %s: %w: %w", r.id, ErrBudgetExhausted, lastErr)
				}
				r.obs.Count("transport.retries", 1)
				r.obs.Event(obs.EventRetry, r.id, "retrying after transport failure",
					map[string]string{
						"op":       req.Op.String(),
						"attempt":  strconv.Itoa(attempt + 1),
						"endpoint": strconv.Itoa(r.ep),
						"error":    lastErr.Error(),
					})
				if r.backoff > 0 {
					if err := r.sleep(ctx, r.jitteredBackoffLocked(attempt)); err != nil {
						return nil, fmt.Errorf("transport: %s: %w", r.id, err)
					}
				}
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("transport: %s: %w", r.id, err)
		}
		if r.cur == nil {
			c, err := r.dialLocked()
			if err != nil {
				lastErr = err
				r.obs.Count("transport.redial_failures", 1)
				r.obs.Event(obs.EventRedial, r.id, "dial failed",
					map[string]string{"endpoint": strconv.Itoa(r.ep), "error": err.Error()})
				continue
			}
			r.cur = c
		}
		s0, r0, _, t0 := r.cur.Stats().Snapshot()
		resp, err := r.cur.Call(ctx, req)
		s1, r1, _, t1 := r.cur.Stats().Snapshot()
		if err == nil {
			if resp.Shed() {
				shedHops++
				if shedHops >= len(r.dials) {
					// Every replica is shedding: surface the typed
					// refusal to the caller instead of spinning.
					r.addDelta(s1-s0, r1-r0, t1-t0)
					return resp, nil
				}
				// The replica is up but refusing work (overloaded or
				// draining): fail over immediately without burning the
				// endpoint's retry budget — retrying the same replica
				// would only be refused again. The refused exchange's
				// traffic is waste, like a failed retry's.
				if wasted := (s1 - s0) + (r1 - r0); wasted > 0 {
					r.obs.Count("transport.retry_wasted_bytes", wasted)
				}
				from := r.ep
				r.ep = (r.ep + 1) % len(r.dials)
				r.cur.Close()
				r.cur = nil
				r.obs.Count("transport.overload_failovers", 1)
				r.obs.Event(obs.EventOverload, r.id, "replica shed the call; failing over",
					map[string]string{
						"op":   req.Op.String(),
						"code": strconv.Itoa(resp.Code),
						"from": strconv.Itoa(from),
						"to":   strconv.Itoa(r.ep),
					})
				justFailedOver = true
				i--
				continue
			}
			// Fold the inner connection's traffic into the aggregate,
			// preserving comm-time accounting without re-sleeping.
			r.addDelta(s1-s0, r1-r0, t1-t0)
			return resp, nil
		}
		// A failed attempt's partial traffic is retry waste, not part of
		// the logical exchange: folding it into the aggregate would make
		// the coordinator double-count round bytes once a retry succeeds.
		// It stays visible as a dedicated counter instead — except when
		// the failure is a hedge losing its race: the Hedger accounts
		// that traffic under transport.hedge_wasted_bytes, and counting
		// it here too would double-book the same bytes as retry waste.
		if wasted := (s1 - s0) + (r1 - r0); wasted > 0 && !errors.Is(context.Cause(ctx), ErrHedgeLost) {
			r.obs.Count("transport.retry_wasted_bytes", wasted)
		}
		lastErr = err
		// The connection is suspect after a transport error: drop it so
		// the next attempt redials.
		r.cur.Close()
		r.cur = nil
		if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The caller cancelled or timed out; do not reinterpret that
			// as an endpoint failure. The errors.Is checks matter when the
			// cancellation surfaced inside the inner client (e.g. a
			// coordinator cancelling siblings after a first error) before
			// this context observes it: classifying that as a site fault
			// would burn a healthy site's retry budget.
			return nil, lastErr
		}
	}
	if len(r.dials) > 1 {
		return nil, fmt.Errorf("transport: %s failed after %d attempt(s) across %d replicas: %w",
			r.id, total, len(r.dials), lastErr)
	}
	return nil, fmt.Errorf("transport: %s failed after %d attempt(s): %w", r.id, total, lastErr)
}

// dialLocked connects to the current endpoint, handing the obs sink down
// to inner clients that support it; callers hold r.mu.
func (r *Reconnector) dialLocked() (Client, error) {
	c, err := r.dials[r.ep]()
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s[%d]: %w", r.id, r.ep, err)
	}
	if oc, ok := c.(interface{ SetObs(*obs.Obs) }); ok {
		oc.SetObs(r.obs)
	}
	return c, nil
}

// jitteredBackoffLocked returns the delay before retry number attempt
// (≥1) at one endpoint: exponential in the attempt with full jitter in
// the upper half of the window, capped at MaxBackoff; callers hold r.mu
// (the jitter rng is guarded by it).
func (r *Reconnector) jitteredBackoffLocked(attempt int) time.Duration {
	d := r.backoff << uint(attempt-1)
	if d > r.MaxBackoff || d <= 0 { // d <= 0 on shift overflow
		d = r.MaxBackoff
	}
	half := d / 2
	return half + time.Duration(r.rng.Int63n(int64(half)+1))
}

// addDelta records traffic observed on the inner connection.
func (r *Reconnector) addDelta(sent, recv int64, comm time.Duration) {
	r.stats.mu.Lock()
	r.stats.bytesSent += sent
	r.stats.bytesReceived += recv
	if sent > 0 {
		r.stats.messages++
	}
	r.stats.commTime += comm
	r.stats.mu.Unlock()
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
