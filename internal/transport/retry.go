package transport

import (
	"fmt"
	"sync"
	"time"
)

// Reconnector wraps a site connection with transparent reconnect-and-retry
// on transport failures (broken TCP connections, site restarts). Site-side
// errors (Response.Err) are deterministic results of the request and are
// never retried — only transport-level Call errors are.
//
// Wire statistics aggregate across reconnections, so coordinators see one
// continuous accounting stream per site.
type Reconnector struct {
	id       string
	dial     func() (Client, error)
	attempts int
	backoff  time.Duration

	mu    sync.Mutex
	cur   Client
	stats WireStats
}

// NewReconnector returns a client that dials lazily and retries each call
// up to attempts times (minimum 1). backoff is the pause between retries.
func NewReconnector(id string, dial func() (Client, error), attempts int, backoff time.Duration) *Reconnector {
	if attempts < 1 {
		attempts = 1
	}
	return &Reconnector{id: id, dial: dial, attempts: attempts, backoff: backoff}
}

// NewReconnectingTCP is a Reconnector dialing a fixed TCP address.
func NewReconnectingTCP(id, addr string, cost CostModel, attempts int, backoff time.Duration) *Reconnector {
	return NewReconnector(id, func() (Client, error) {
		return DialTCP(id, addr, cost)
	}, attempts, backoff)
}

// SiteID implements Client.
func (r *Reconnector) SiteID() string { return r.id }

// Stats implements Client, returning the aggregated statistics.
func (r *Reconnector) Stats() *WireStats { return &r.stats }

// Close implements Client.
func (r *Reconnector) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur == nil {
		return nil
	}
	err := r.cur.Close()
	r.cur = nil
	return err
}

// Call implements Client with reconnect-and-retry.
func (r *Reconnector) Call(req *Request) (*Response, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt < r.attempts; attempt++ {
		if attempt > 0 && r.backoff > 0 {
			time.Sleep(r.backoff)
		}
		if r.cur == nil {
			c, err := r.dial()
			if err != nil {
				lastErr = fmt.Errorf("transport: dial %s: %w", r.id, err)
				continue
			}
			r.cur = c
		}
		s0, r0, _, t0 := r.cur.Stats().Snapshot()
		resp, err := r.cur.Call(req)
		s1, r1, _, t1 := r.cur.Stats().Snapshot()
		// Fold the inner connection's traffic into the aggregate,
		// preserving comm-time accounting without re-sleeping.
		r.addDelta(s1-s0, r1-r0, t1-t0)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		// The connection is suspect after a transport error: drop it so
		// the next attempt redials.
		r.cur.Close()
		r.cur = nil
	}
	return nil, fmt.Errorf("transport: %s failed after %d attempt(s): %w", r.id, r.attempts, lastErr)
}

// addDelta records traffic observed on the inner connection.
func (r *Reconnector) addDelta(sent, recv int64, comm time.Duration) {
	r.stats.mu.Lock()
	r.stats.bytesSent += sent
	r.stats.bytesReceived += recv
	if sent > 0 {
		r.stats.messages++
	}
	r.stats.commTime += comm
	r.stats.mu.Unlock()
}
