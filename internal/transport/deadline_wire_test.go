package transport

import (
	"bytes"
	"encoding/gob"
	"testing"
	"time"

	"repro/internal/relation"
)

// predeadlineRequest mirrors the Request field set before deadline
// propagation existed — everything up to and including QueryID. It
// stands in for a site running the previous protocol version.
type predeadlineRequest struct {
	Op        Op
	Rel       string
	Data      *relation.Relation
	Gen       *GenSpec
	BaseCols  []string
	BaseWhere string
	Detail    string
	Base      *relation.Relation
	Rounds    []RoundSpec
	KeepFinal bool
	Keys      []string
	Epoch     string
	Round     int
	QueryID   string
}

func deadlineSampleRounds() []RoundSpec {
	return []RoundSpec{{
		Detail: "flow", Aggs: [][]string{{"count(*) AS c"}},
		Thetas: []string{"F.SourceAS = B.SourceAS"},
	}}
}

// TestDeadlineWireCompat verifies the compatibility rule of the
// DeadlineNs field: requests without a deadline interoperate with the
// previous protocol version in both directions, and — because gob omits
// zero-valued fields and DeadlineNs is appended after every existing
// field — a deadline-free request costs zero extra bytes on the wire.
func TestDeadlineWireCompat(t *testing.T) {
	req := &Request{
		Op: OpEvalRounds, Detail: "flow",
		BaseCols: []string{"SourceAS"}, BaseWhere: "F.NumBytes > 0",
		Rounds: deadlineSampleRounds(),
		Epoch:  "e1", Round: 2, QueryID: "q9",
	}

	// New coordinator → old site: the deadline-free request decodes into
	// the pre-deadline field set with nothing lost.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(req); err != nil {
		t.Fatalf("encode: %v", err)
	}
	plainLen := buf.Len()
	var oldSite predeadlineRequest
	if err := gob.NewDecoder(&buf).Decode(&oldSite); err != nil {
		t.Fatalf("pre-deadline decode of deadline-free request: %v", err)
	}
	if oldSite.Op != req.Op || oldSite.Epoch != "e1" || oldSite.Round != 2 || oldSite.QueryID != "q9" {
		t.Errorf("pre-deadline site saw different request: %+v", oldSite)
	}

	// A stamped request still decodes on the old side — gob skips the
	// unknown field — so deadline-aware coordinators can talk to
	// deadline-oblivious sites; they just lose the shedding.
	buf.Reset()
	stamped := *req
	stamped.DeadlineNs = int64(50 * time.Millisecond)
	if err := gob.NewEncoder(&buf).Encode(&stamped); err != nil {
		t.Fatalf("encode stamped: %v", err)
	}
	stampedLen := buf.Len()
	oldSite = predeadlineRequest{}
	if err := gob.NewDecoder(&buf).Decode(&oldSite); err != nil {
		t.Fatalf("pre-deadline decode of stamped request: %v", err)
	}
	if oldSite.Epoch != "e1" || oldSite.QueryID != "q9" {
		t.Errorf("pre-deadline site saw different stamped request: %+v", oldSite)
	}

	// The deadline is the only thing that costs bytes.
	if stampedLen <= plainLen {
		t.Errorf("stamped request (%d bytes) not longer than deadline-free (%d)", stampedLen, plainLen)
	}

	// Old coordinator → new site: a pre-deadline request decodes with
	// DeadlineNs zero, i.e. "no deadline" — sheds stay off.
	buf.Reset()
	old := &predeadlineRequest{Op: OpEvalBase, Detail: "flow", BaseCols: []string{"SourceAS"}, Epoch: "e2"}
	if err := gob.NewEncoder(&buf).Encode(old); err != nil {
		t.Fatalf("encode pre-deadline: %v", err)
	}
	var newSite Request
	if err := gob.NewDecoder(&buf).Decode(&newSite); err != nil {
		t.Fatalf("decode pre-deadline request: %v", err)
	}
	if newSite.DeadlineNs != 0 || newSite.Epoch != "e2" || newSite.Op != OpEvalBase {
		t.Errorf("pre-deadline request decoded wrong: %+v", newSite)
	}
}

// secondMessage encodes v twice on one persistent stream and returns the
// bytes of the second message — the steady-state per-request encoding
// once the stream's type descriptors have been paid, which is what the
// transport's long-lived connections ship.
func secondMessage[T any](t *testing.T, v *T) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(v); err != nil {
		t.Fatalf("encode (descriptor message): %v", err)
	}
	n := buf.Len()
	if err := enc.Encode(v); err != nil {
		t.Fatalf("encode (steady-state message): %v", err)
	}
	return append([]byte(nil), buf.Bytes()[n:]...)
}

// gobValueBytes strips a gob message's header — the byte-count prefix
// and the concrete type id — leaving the encoded value. The type id must
// be excluded from byte comparisons across struct types: gob numbers
// types from a process-global registry, so two protocol versions
// coexisting in one test binary get different ids even though each is
// the first (and identically numbered) user type in its own process.
func gobValueBytes(t *testing.T, msg []byte) []byte {
	t.Helper()
	for i := 0; i < 2; i++ { // message length, then type id
		if len(msg) == 0 {
			t.Fatal("truncated gob message")
		}
		if b := msg[0]; b <= 0x7f {
			msg = msg[1:]
		} else {
			msg = msg[1+(256-int(b)):]
		}
	}
	return msg
}

// TestDeadlineFreeRequestByteIdentical pins the strongest form of the
// compatibility claim: on a persistent connection, a request with no
// deadline encodes to exactly the bytes the pre-deadline protocol
// produced. DeadlineNs is the last field and gob omits zero fields, so
// every preceding field keeps its wire position.
func TestDeadlineFreeRequestByteIdentical(t *testing.T) {
	cur := &Request{
		Op: OpEvalRounds, Detail: "flow",
		BaseCols: []string{"SourceAS"}, BaseWhere: "F.NumBytes > 0",
		Rounds: deadlineSampleRounds(),
		Epoch:  "e1", Round: 2, QueryID: "q9",
	}
	old := &predeadlineRequest{
		Op: OpEvalRounds, Detail: "flow",
		BaseCols: []string{"SourceAS"}, BaseWhere: "F.NumBytes > 0",
		Rounds: deadlineSampleRounds(),
		Epoch:  "e1", Round: 2, QueryID: "q9",
	}
	curMsg := gobValueBytes(t, secondMessage(t, cur))
	oldMsg := gobValueBytes(t, secondMessage(t, old))
	if !bytes.Equal(curMsg, oldMsg) {
		t.Errorf("deadline-free request not byte-identical to the pre-deadline encoding:\n new: %x\n old: %x", curMsg, oldMsg)
	}

	// Sanity: the stamped variant diverges, so the comparison is live.
	stamped := *cur
	stamped.DeadlineNs = 1
	if bytes.Equal(gobValueBytes(t, secondMessage(t, &stamped)), oldMsg) {
		t.Error("stamped request unexpectedly byte-identical to the pre-deadline encoding")
	}
}
