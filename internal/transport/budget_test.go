package transport

import (
	"context"
	"errors"
	"testing"

	"repro/internal/obs"
)

func TestRetryBudgetTokenBucket(t *testing.T) {
	o := obs.New()
	b := NewRetryBudget(0.5, 2)
	b.SetObs(o)

	// The bucket starts full: two speculative sends are granted.
	if !b.Take() || !b.Take() {
		t.Fatal("full budget denied a take")
	}
	if b.Take() {
		t.Fatal("empty budget granted a take")
	}
	// Two primary calls earn 2×0.5 = 1 token back.
	b.Earn()
	b.Earn()
	if !b.Take() {
		t.Fatal("earned token not spendable")
	}
	if b.Take() {
		t.Fatal("budget granted beyond its earnings")
	}
	taken, denied := b.Counts()
	if taken != 3 || denied != 2 {
		t.Errorf("counts = %d/%d, want taken=3 denied=2", taken, denied)
	}
	if got := o.Metrics.CounterValue("transport.budget_denied"); got != 2 {
		t.Errorf("budget_denied = %d, want 2", got)
	}

	// Earnings cap at the burst: a long healthy streak cannot bank an
	// unbounded retry storm.
	for i := 0; i < 100; i++ {
		b.Earn()
	}
	if got := b.Tokens(); got != 2 {
		t.Errorf("tokens after long streak = %v, want burst cap 2", got)
	}
}

func TestRetryBudgetNilIsUnlimited(t *testing.T) {
	var b *RetryBudget
	b.Earn() // must not panic
	for i := 0; i < 100; i++ {
		if !b.Take() {
			t.Fatal("nil budget denied a take")
		}
	}
	if taken, denied := b.Counts(); taken != 0 || denied != 0 {
		t.Errorf("nil budget counts = %d/%d, want 0/0", taken, denied)
	}
}

// TestReconnectorBudgetExhaustion: under sustained chaos, the shared
// budget stops the retry loop early with a typed error instead of letting
// it burn every configured attempt.
func TestReconnectorBudgetExhaustion(t *testing.T) {
	chaos := NewChaos(NewLocalClient("s0", newEchoHandler(), CostModel{}), 1)
	chaos.FailNext(OpPing, 100)
	rc := NewReconnector("s0", func() (Client, error) { return chaos, nil }, 10, 0)
	budget := NewRetryBudget(0.001, 1) // one banked retry, near-zero refill
	rc.SetBudget(budget)

	_, err := rc.Call(context.Background(), &Request{Op: OpPing})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	// The injected fault is still inspectable behind the budget error.
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want the underlying injected fault wrapped", err)
	}
	// Attempt 1 (free) + the single banked retry = 2 calls, not 10.
	if got := chaos.Calls(); got != 2 {
		t.Errorf("calls = %d, want 2 (budget must cut the retry loop)", got)
	}
	if _, denied := budget.Counts(); denied != 1 {
		t.Errorf("denied = %d, want 1", denied)
	}

	// Healthy traffic refills the budget and retries resume.
	replenish := NewRetryBudget(1, 5)
	chaos2 := NewChaos(NewLocalClient("s1", newEchoHandler(), CostModel{}), 1)
	chaos2.FailNext(OpPing, 2)
	rc2 := NewReconnector("s1", func() (Client, error) { return chaos2, nil }, 5, 0)
	rc2.SetBudget(replenish)
	if _, err := rc2.Call(context.Background(), &Request{Op: OpPing}); err != nil {
		t.Fatalf("budgeted retries failed despite tokens: %v", err)
	}
}
