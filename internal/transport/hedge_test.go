package transport

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/testutil"
)

// replicaStub is a controllable replica for hedging tests: an optional
// delay (cancellable through the context), then a scripted outcome.
type replicaStub struct {
	id    string
	delay time.Duration
	// fail / shed script the outcome; default is a success.
	fail  bool
	shed  bool
	calls int64 // atomic
	stats WireStats
}

func (r *replicaStub) SiteID() string    { return r.id }
func (r *replicaStub) Stats() *WireStats { return &r.stats }
func (r *replicaStub) Close() error      { return nil }
func (r *replicaStub) Calls() int64      { return atomic.LoadInt64(&r.calls) }

func (r *replicaStub) Call(ctx context.Context, req *Request) (*Response, error) {
	atomic.AddInt64(&r.calls, 1)
	r.stats.AddSent(10, CostModel{})
	if r.delay > 0 {
		if err := sleepCtx(ctx, r.delay); err != nil {
			return nil, err
		}
	}
	if r.fail {
		return nil, errors.New("connection reset")
	}
	r.stats.AddReceived(20, CostModel{})
	if r.shed {
		return &Response{Err: "overloaded", Code: CodeOverloaded}, nil
	}
	return &Response{RowCount: 1}, nil
}

func TestHedgerWinsRaceAgainstStraggler(t *testing.T) {
	testutil.CheckGoroutines(t)
	o := obs.New()
	primary := &replicaStub{id: "s0", delay: 30 * time.Second}
	secondary := &replicaStub{id: "s0"}
	h := NewHedger("s0", []Client{primary, secondary}, HedgeConfig{Delay: 5 * time.Millisecond})
	h.SetObs(o)

	resp, err := h.Call(context.Background(), &Request{Op: OpEvalRounds})
	if err != nil || resp.RowCount != 1 {
		t.Fatalf("hedged call: %v / %+v", err, resp)
	}
	if hedges, wins := h.HedgeCounts(); hedges != 1 || wins != 1 {
		t.Errorf("hedges/wins = %d/%d, want 1/1", hedges, wins)
	}
	if got := secondary.Calls(); got != 1 {
		t.Errorf("secondary calls = %d, want 1", got)
	}
	// Only the winner's traffic is in Stats(): the coordinator's round
	// byte accounting must stay deterministic under hedging.
	sent, recv, msgs, _ := h.Stats().Snapshot()
	if sent != 10 || recv != 20 || msgs != 1 {
		t.Errorf("stats = sent %d recv %d msgs %d, want winner-only 10/20/1", sent, recv, msgs)
	}
	if got := o.Metrics.CounterValue("transport.hedges"); got != 1 {
		t.Errorf("transport.hedges = %d, want 1", got)
	}
	if got := o.Events.CountKind(obs.EventHedge); got != 1 {
		t.Errorf("hedge events = %d, want 1", got)
	}

	// Close cancels the losing attempt (cause ErrHedgeLost), waits it
	// out, and its partial traffic lands under hedge waste — the
	// goroutine-leak check above proves nothing lingers.
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if got := o.Metrics.CounterValue("transport.hedge_wasted_bytes"); got != 10 {
		t.Errorf("hedge_wasted_bytes = %d, want the loser's 10 sent bytes", got)
	}
}

func TestHedgerFastPrimaryNeverHedges(t *testing.T) {
	primary := &replicaStub{id: "s0"}
	secondary := &replicaStub{id: "s0"}
	h := NewHedger("s0", []Client{primary, secondary}, HedgeConfig{Delay: time.Second})
	defer h.Close()

	for i := 0; i < 3; i++ {
		if _, err := h.Call(context.Background(), &Request{Op: OpEvalRounds}); err != nil {
			t.Fatal(err)
		}
	}
	if hedges, _ := h.HedgeCounts(); hedges != 0 {
		t.Errorf("hedges = %d, want 0 for a fast primary", hedges)
	}
	if got := secondary.Calls(); got != 0 {
		t.Errorf("secondary calls = %d, want 0", got)
	}
}

func TestHedgerImmediateFailover(t *testing.T) {
	// The primary fails fast — long before the hedge threshold. The
	// hedger must not sit out the timer: it fails over immediately.
	primary := &replicaStub{id: "s0", fail: true}
	secondary := &replicaStub{id: "s0"}
	h := NewHedger("s0", []Client{primary, secondary}, HedgeConfig{Delay: 10 * time.Second})
	defer h.Close()

	start := time.Now()
	resp, err := h.Call(context.Background(), &Request{Op: OpEvalRounds})
	if err != nil || resp.RowCount != 1 {
		t.Fatalf("failover call: %v / %+v", err, resp)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("failover waited for the hedge timer (%s)", elapsed)
	}
	if hedges, wins := h.HedgeCounts(); hedges != 1 || wins != 1 {
		t.Errorf("hedges/wins = %d/%d, want 1/1", hedges, wins)
	}
}

func TestHedgerShedFailover(t *testing.T) {
	// A typed shed is not decisive either: the hedger tries the next
	// replica, and only if everyone sheds does the shed surface.
	primary := &replicaStub{id: "s0", shed: true}
	secondary := &replicaStub{id: "s0"}
	h := NewHedger("s0", []Client{primary, secondary}, HedgeConfig{Delay: 10 * time.Second})
	defer h.Close()

	resp, err := h.Call(context.Background(), &Request{Op: OpEvalRounds})
	if err != nil || resp.Shed() {
		t.Fatalf("shed failover: %v / %+v", err, resp)
	}

	both := NewHedger("s1", []Client{&replicaStub{id: "s1", shed: true}, &replicaStub{id: "s1", shed: true}},
		HedgeConfig{Delay: 10 * time.Second})
	defer both.Close()
	resp, err = both.Call(context.Background(), &Request{Op: OpEvalRounds})
	if err != nil {
		t.Fatalf("all-shed call errored at the transport level: %v", err)
	}
	if !resp.Shed() {
		t.Fatalf("all-shed call did not surface the shed: %+v", resp)
	}
}

func TestHedgerRespectsBudget(t *testing.T) {
	budget := NewRetryBudget(0.001, 1)
	if !budget.Take() {
		t.Fatal("draining the budget")
	}
	primary := &replicaStub{id: "s0", delay: 50 * time.Millisecond}
	secondary := &replicaStub{id: "s0"}
	h := NewHedger("s0", []Client{primary, secondary}, HedgeConfig{Delay: time.Millisecond, Budget: budget})
	defer h.Close()

	resp, err := h.Call(context.Background(), &Request{Op: OpEvalRounds})
	if err != nil || resp.RowCount != 1 {
		t.Fatalf("call: %v / %+v", err, resp)
	}
	if hedges, _ := h.HedgeCounts(); hedges != 0 {
		t.Errorf("hedges = %d, want 0 with an exhausted budget", hedges)
	}
	if got := secondary.Calls(); got != 0 {
		t.Errorf("secondary calls = %d, want 0 (budget denied the hedge)", got)
	}
	if _, denied := budget.Counts(); denied == 0 {
		t.Error("no denial recorded for the suppressed hedge")
	}
}

func TestHedgerOnlyEvalOpsHedge(t *testing.T) {
	// Non-idempotent ops (loads, generates, pings) never hedge, no
	// matter how slow the primary is.
	primary := &replicaStub{id: "s0", delay: 20 * time.Millisecond}
	secondary := &replicaStub{id: "s0"}
	h := NewHedger("s0", []Client{primary, secondary}, HedgeConfig{Delay: time.Millisecond})
	defer h.Close()

	if _, err := h.Call(context.Background(), &Request{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	if hedges, _ := h.HedgeCounts(); hedges != 0 {
		t.Errorf("hedges = %d, want 0 for OpPing", hedges)
	}
	if got := secondary.Calls(); got != 0 {
		t.Errorf("secondary calls = %d, want 0", got)
	}
}

func TestHedgerAdaptiveThreshold(t *testing.T) {
	h := NewHedger("s0", []Client{&replicaStub{id: "s0"}}, HedgeConfig{
		Multiplier: 3, Floor: 2 * time.Millisecond, Ceiling: 50 * time.Millisecond,
	})
	defer h.Close()

	// No sample yet: the threshold sits at the ceiling so cold starts
	// never hedge on noise.
	if got := h.threshold(); got != 50*time.Millisecond {
		t.Errorf("cold threshold = %s, want ceiling 50ms", got)
	}
	h.observe(4 * time.Millisecond)
	if got := h.threshold(); got != 12*time.Millisecond {
		t.Errorf("threshold = %s, want 3×4ms", got)
	}
	// A run of microsecond calls drags the EWMA under the floor…
	for i := 0; i < 100; i++ {
		h.observe(10 * time.Microsecond)
	}
	if got := h.threshold(); got != 2*time.Millisecond {
		t.Errorf("threshold = %s, want floor 2ms", got)
	}
	// …and a run of slow calls pins it at the ceiling.
	for i := 0; i < 100; i++ {
		h.observe(time.Second)
	}
	if got := h.threshold(); got != 50*time.Millisecond {
		t.Errorf("threshold = %s, want ceiling 50ms", got)
	}
}

// TestPoolHedgeDiscardAccounting: a pooled connection abandoned because
// its hedged call lost the race is discarded under the dedicated
// hedge-discard counter, not the generic discard counter — hedge churn
// is planned speculative waste, not connection failure.
func TestPoolHedgeDiscardAccounting(t *testing.T) {
	h := newGateHandler()
	o := obs.New()
	p := NewPool("s0", 2, localDial(h))
	p.SetObs(o)
	defer p.Close()
	defer close(h.release)

	ctx, cancel := context.WithCancelCause(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.Lease().Call(ctx, &Request{Op: OpDrop})
		done <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for h.peakInflight() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel(ErrHedgeLost)
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("lost hedge err = %v, want context.Canceled", err)
	}
	if got := o.Metrics.CounterValue("transport.pool.hedge_discards"); got != 1 {
		t.Errorf("hedge_discards = %d, want 1", got)
	}
	if got := o.Metrics.CounterValue("transport.pool.discards"); got != 0 {
		t.Errorf("discards = %d, want 0 (hedge losers are not connection churn)", got)
	}
	// The pool stays serviceable after the discard.
	if _, err := p.Lease().Call(context.Background(), &Request{Op: OpPing}); err != nil {
		t.Fatalf("pool unusable after hedge discard: %v", err)
	}
}
