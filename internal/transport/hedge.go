package transport

//lint:wrap-errors hedging failures must stay inspectable with errors.Is

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrHedgeLost is the cancellation cause attached to the context of a
// hedged attempt that lost the race: its result is no longer wanted
// because the other replica already answered. Wrappers below the hedger
// (Reconnector, pool leases) use context.Cause to tell this apart from a
// real caller cancellation — a lost hedge is planned waste accounted
// under hedge counters, never a site failure and never retry waste.
var ErrHedgeLost = errors.New("transport: hedged request lost the race")

// HedgeConfig tunes a Hedger.
type HedgeConfig struct {
	// Delay, when positive, is a fixed hedge threshold: a request
	// outstanding that long launches the hedge. It overrides the
	// adaptive threshold entirely.
	Delay time.Duration
	// Multiplier scales the adaptive threshold: hedge when the request
	// has been outstanding Multiplier × EWMA(recent latency). Default 3.
	Multiplier float64
	// Floor / Ceiling clamp the adaptive threshold (defaults 1ms /
	// 100ms). Until the first completed call seeds the EWMA, the
	// threshold is Ceiling.
	Floor   time.Duration
	Ceiling time.Duration
	// Budget, when non-nil, caps hedges: every primary call earns into
	// it and every hedge (including shed failovers) must Take from it.
	Budget *RetryBudget
}

func (c HedgeConfig) defaults() HedgeConfig {
	if c.Multiplier <= 0 {
		c.Multiplier = 3
	}
	if c.Floor <= 0 {
		c.Floor = time.Millisecond
	}
	if c.Ceiling <= 0 {
		c.Ceiling = 100 * time.Millisecond
	}
	return c
}

// Hedger is a tail-tolerant Client over an ordered set of replica
// clients: the primary (first) replica gets every request, and when a
// round request is outstanding longer than the hedge threshold — fixed
// Delay, or adaptively Multiplier × EWMA of recent latency clamped to
// [Floor, Ceiling] — a duplicate is launched on the next replica and the
// first success wins, the loser cancelled with cause ErrHedgeLost.
// Duplicating a round is safe by construction: rounds are pure functions
// of the request over immutable site data, and epoch-tagged executions
// additionally dedup replays site-side via the (epoch, round) cache (see
// PROTOCOL.md, "Tail tolerance").
//
// Only the idempotent evaluation ops (OpEvalBase, OpEvalRounds) are
// hedged; every other op goes to the primary alone. A primary that fails
// or sheds before the threshold fires fails over to the secondary
// immediately, charged to the same budget, so the Hedger subsumes the
// replica-failover role in hedged wiring.
//
// Wire statistics fold only the winning attempt's traffic into Stats(),
// keeping the coordinator's per-round byte accounting exact and
// deterministic; the loser's partial traffic is counted under the
// "transport.hedge_wasted_bytes" counter instead.
type Hedger struct {
	id       string
	replicas []Client
	cfg      HedgeConfig

	hedges int64 // atomic: duplicate/failover sends launched
	wins   int64 // atomic: hedged sends whose answer was used

	mu sync.Mutex
	// ewmaNs is the exponentially weighted moving average of successful
	// call latency, the base of the adaptive threshold (0 = no sample).
	//
	//lint:guarded-by mu
	ewmaNs float64
	//lint:guarded-by mu
	obs *obs.Obs

	stats WireStats
	// wg tracks attempt and loser-drain goroutines so Close can prove
	// none leak (goleak).
	wg sync.WaitGroup
}

// NewHedger returns a hedging client over replicas in preference order.
// With fewer than two replicas it degrades to a transparent wrapper.
func NewHedger(id string, replicas []Client, cfg HedgeConfig) *Hedger {
	if len(replicas) == 0 {
		panic("transport: hedger needs at least one replica")
	}
	return &Hedger{id: id, replicas: replicas, cfg: cfg.defaults()}
}

// SetObs publishes hedge launches as obs events (kind obs.EventHedge) and
// the "transport.hedges" / "transport.hedge_wins" /
// "transport.hedge_wasted_bytes" counters, and propagates the sink to
// replicas that support SetObs.
func (h *Hedger) SetObs(o *obs.Obs) {
	h.mu.Lock()
	h.obs = o
	h.mu.Unlock()
	for _, cl := range h.replicas {
		if oc, ok := cl.(interface{ SetObs(*obs.Obs) }); ok {
			oc.SetObs(o)
		}
	}
}

func (h *Hedger) getObs() *obs.Obs {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.obs
}

// SiteID implements Client.
func (h *Hedger) SiteID() string { return h.id }

// Stats implements Client: only winning attempts' traffic, so round byte
// accounting stays exact.
func (h *Hedger) Stats() *WireStats { return &h.stats }

// HedgeCounts returns how many hedged sends were launched and how many
// of their answers won the race.
func (h *Hedger) HedgeCounts() (hedges, wins int64) {
	return atomic.LoadInt64(&h.hedges), atomic.LoadInt64(&h.wins)
}

// Close implements Client: it closes every replica and waits for all
// attempt goroutines (including cancelled losers) to drain.
func (h *Hedger) Close() error {
	var firstErr error
	for _, cl := range h.replicas {
		if err := cl.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	h.wg.Wait()
	return firstErr
}

// threshold returns the current hedge-launch delay.
func (h *Hedger) threshold() time.Duration {
	if h.cfg.Delay > 0 {
		return h.cfg.Delay
	}
	h.mu.Lock()
	ewma := h.ewmaNs
	h.mu.Unlock()
	if ewma <= 0 {
		return h.cfg.Ceiling
	}
	d := time.Duration(h.cfg.Multiplier * ewma)
	if d < h.cfg.Floor {
		d = h.cfg.Floor
	}
	if d > h.cfg.Ceiling {
		d = h.cfg.Ceiling
	}
	return d
}

// observe feeds one successful call's latency into the EWMA (α = 0.2).
func (h *Hedger) observe(d time.Duration) {
	h.mu.Lock()
	if h.ewmaNs == 0 {
		h.ewmaNs = float64(d.Nanoseconds())
	} else {
		h.ewmaNs = 0.2*float64(d.Nanoseconds()) + 0.8*h.ewmaNs
	}
	h.mu.Unlock()
}

// addDelta folds a winning attempt's traffic into the aggregate.
func (h *Hedger) addDelta(sent, recv int64, comm time.Duration) {
	h.stats.mu.Lock()
	h.stats.bytesSent += sent
	h.stats.bytesReceived += recv
	if sent > 0 {
		h.stats.messages++
	}
	h.stats.commTime += comm
	h.stats.mu.Unlock()
}

// hedgeable reports whether op may be duplicated across replicas.
func hedgeable(op Op) bool { return op == OpEvalBase || op == OpEvalRounds }

// hedgeAttempt is one replica attempt's outcome plus its wire delta.
type hedgeAttempt struct {
	idx        int
	resp       *Response
	err        error
	sent, recv int64
	comm       time.Duration
}

// Call implements Client with hedged duplicate requests.
func (h *Hedger) Call(ctx context.Context, req *Request) (*Response, error) {
	h.cfg.Budget.Earn()
	if len(h.replicas) < 2 || !hedgeable(req.Op) {
		return h.callDirect(ctx, req)
	}
	start := time.Now()

	results := make(chan hedgeAttempt, len(h.replicas))
	cancels := make([]context.CancelCauseFunc, len(h.replicas))
	launched := 0
	launch := func() {
		idx := launched
		launched++
		cl := h.replicas[idx]
		cctx, cancel := context.WithCancelCause(ctx)
		cancels[idx] = cancel
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			s0, r0, _, t0 := cl.Stats().Snapshot()
			resp, err := cl.Call(cctx, req)
			s1, r1, _, t1 := cl.Stats().Snapshot()
			results <- hedgeAttempt{idx: idx, resp: resp, err: err,
				sent: s1 - s0, recv: r1 - r0, comm: t1 - t0}
		}()
	}
	// hedge launches the duplicate if the budget allows, reporting
	// whether it did.
	hedge := func(reason string) bool {
		if launched >= len(h.replicas) || !h.cfg.Budget.Take() {
			return false
		}
		atomic.AddInt64(&h.hedges, 1)
		o := h.getObs()
		o.Count("transport.hedges", 1)
		o.Event(obs.EventHedge, h.id, "hedging "+req.Op.String()+" to next replica: "+reason,
			map[string]string{
				"op":     req.Op.String(),
				"reason": reason,
				"round":  strconv.Itoa(req.Round),
			})
		launch()
		return true
	}
	// finish settles the race: the decisive attempt's traffic folds into
	// the aggregate, every other in-flight attempt is cancelled with
	// cause ErrHedgeLost, and a drain goroutine accounts the losers'
	// partial traffic as hedge waste.
	finish := func(a hedgeAttempt, consumed int) {
		for i := 0; i < launched; i++ {
			if i != a.idx {
				cancels[i](ErrHedgeLost)
			}
		}
		if a.err == nil {
			h.addDelta(a.sent, a.recv, a.comm)
		}
		if remaining := launched - consumed; remaining > 0 {
			h.wg.Add(1)
			go func() {
				defer h.wg.Done()
				for i := 0; i < remaining; i++ {
					lost := <-results
					if wasted := lost.sent + lost.recv; wasted > 0 {
						h.getObs().Count("transport.hedge_wasted_bytes", wasted)
					}
				}
			}()
		}
	}

	launch()
	timer := time.NewTimer(h.threshold())
	defer timer.Stop()

	consumed := 0
	var firstFailure *hedgeAttempt
	for {
		select {
		case <-timer.C:
			hedge("threshold exceeded")
		case a := <-results:
			consumed++
			decisive := a.err == nil && !a.resp.Shed()
			if !decisive && ctx.Err() == nil && launched < len(h.replicas) {
				// The attempt failed or was shed before the threshold
				// fired: fail over to the next replica immediately, on
				// the same budget.
				reason := "attempt failed"
				if a.err == nil {
					reason = "replica shed the call"
				}
				if hedge(reason) {
					if firstFailure == nil {
						firstFailure = &a
					}
					continue
				}
			}
			if !decisive && consumed < launched {
				// The other attempt is still in flight and may yet
				// succeed; remember this failure and keep waiting.
				if firstFailure == nil {
					firstFailure = &a
				}
				continue
			}
			// The race is settled: a success, or the last outstanding
			// attempt failing with no failover left.
			if !decisive && firstFailure != nil && a.err != nil && firstFailure.err == nil {
				// Prefer a typed shed response over a transport error.
				a = *firstFailure
			}
			finish(a, consumed)
			if a.err != nil {
				return nil, fmt.Errorf("transport: %s: %w", h.id, a.err)
			}
			if a.idx > 0 {
				atomic.AddInt64(&h.wins, 1)
				h.getObs().Count("transport.hedge_wins", 1)
			}
			if a.resp.Error() == nil {
				h.observe(time.Since(start))
			}
			return a.resp, nil
		}
	}
}

// callDirect forwards to the primary replica alone, folding its traffic
// into the aggregate.
func (h *Hedger) callDirect(ctx context.Context, req *Request) (*Response, error) {
	start := time.Now()
	cl := h.replicas[0]
	s0, r0, _, t0 := cl.Stats().Snapshot()
	resp, err := cl.Call(ctx, req)
	s1, r1, _, t1 := cl.Stats().Snapshot()
	if err != nil {
		return nil, err
	}
	h.addDelta(s1-s0, r1-r0, t1-t0)
	if hedgeable(req.Op) && resp.Error() == nil {
		// Passthrough successes still seed the adaptive threshold.
		h.observe(time.Since(start))
	}
	return resp, nil
}
