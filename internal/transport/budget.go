package transport

//lint:wrap-errors budget refusals must stay inspectable with errors.Is

import (
	"errors"
	"sync"

	"repro/internal/obs"
)

// ErrBudgetExhausted is returned (wrapped) when a retry or hedge was
// suppressed because the shared retry budget had no tokens left. It marks
// the cluster as sick enough that speculative extra work would only deepen
// the overload — callers should surface the primary failure, not spin.
var ErrBudgetExhausted = errors.New("transport: retry budget exhausted")

// RetryBudget is a token bucket shared by everything that issues
// speculative or repeated traffic against the sites — Reconnector retries
// and Hedger hedges. Primary requests earn Ratio tokens each (capped at
// Burst); every retry or hedge spends one. When the bucket is empty the
// speculative send is suppressed, so a sick cluster degrades to at most
// (1+Ratio)× its primary traffic instead of melting down in a retry
// storm.
//
// A nil *RetryBudget is valid and unlimited: Earn is a no-op and Take
// always grants, so wiring stays unconditional.
type RetryBudget struct {
	ratio float64
	burst float64

	mu sync.Mutex
	//lint:guarded-by mu
	tokens float64
	//lint:guarded-by mu
	earned int64
	//lint:guarded-by mu
	taken int64
	//lint:guarded-by mu
	denied int64
	//lint:guarded-by mu
	obs *obs.Obs
}

// NewRetryBudget returns a budget earning ratio tokens per primary
// request, holding at most burst tokens. The bucket starts full so cold
// starts (first request straight into a straggler) can still hedge.
// ratio ≤ 0 defaults to 0.1 (10% speculative overhead); burst ≤ 0
// defaults to 10.
func NewRetryBudget(ratio float64, burst int) *RetryBudget {
	if ratio <= 0 {
		ratio = 0.1
	}
	if burst <= 0 {
		burst = 10
	}
	return &RetryBudget{ratio: ratio, burst: float64(burst), tokens: float64(burst)}
}

// SetObs publishes budget denials as the "transport.budget_denied"
// counter.
func (b *RetryBudget) SetObs(o *obs.Obs) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.obs = o
	b.mu.Unlock()
}

// Earn credits the budget for one primary request. Nil-safe.
func (b *RetryBudget) Earn() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.earned++
	b.tokens += b.ratio
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

// Take spends one token for a retry or hedge, reporting whether the
// speculative send is within budget. Nil-safe (always true).
func (b *RetryBudget) Take() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		b.denied++
		b.obs.Count("transport.budget_denied", 1)
		return false
	}
	b.tokens--
	b.taken++
	return true
}

// Tokens returns the current token balance.
func (b *RetryBudget) Tokens() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}

// Counts returns how many speculative sends the budget granted and
// denied over its lifetime.
func (b *RetryBudget) Counts() (taken, denied int64) {
	if b == nil {
		return 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.taken, b.denied
}
