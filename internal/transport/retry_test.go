package transport

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// flakyClient fails its first failN calls at the transport level.
type flakyClient struct {
	id     string
	failN  int
	calls  int
	closed int
	stats  WireStats
}

func (f *flakyClient) SiteID() string    { return f.id }
func (f *flakyClient) Stats() *WireStats { return &f.stats }
func (f *flakyClient) Close() error      { f.closed++; return nil }

func (f *flakyClient) Call(ctx context.Context, req *Request) (*Response, error) {
	f.calls++
	f.stats.AddSent(10, CostModel{})
	if f.calls <= f.failN {
		return nil, errors.New("connection reset")
	}
	f.stats.AddReceived(20, CostModel{})
	if req.Op == OpRelInfo {
		return &Response{Err: "no such relation"}, nil
	}
	return &Response{RowCount: 1}, nil
}

func TestReconnectorRetries(t *testing.T) {
	inner := &flakyClient{id: "s", failN: 2}
	dials := 0
	rc := NewReconnector("s", func() (Client, error) {
		dials++
		return inner, nil
	}, 3, 0)
	o := obs.New()
	rc.SetObs(o)
	resp, err := rc.Call(context.Background(), &Request{Op: OpPing})
	if err != nil {
		t.Fatal(err)
	}
	if resp.RowCount != 1 {
		t.Errorf("resp = %+v", resp)
	}
	if inner.calls != 3 {
		t.Errorf("calls = %d, want 3", inner.calls)
	}
	if dials != 3 { // redial after each transport failure
		t.Errorf("dials = %d, want 3", dials)
	}
	// Aggregated stats cover only the successful attempt: the two failed
	// attempts' bytes are retry waste, not part of the logical exchange,
	// and must not inflate the coordinator's round byte accounting.
	sent, recv, _, _ := rc.Stats().Snapshot()
	if sent != 10 || recv != 20 {
		t.Errorf("aggregated stats: sent=%d recv=%d, want sent=10 recv=20", sent, recv)
	}
	if got := o.Metrics.CounterValue("transport.retry_wasted_bytes"); got != 20 {
		t.Errorf("retry_wasted_bytes = %d, want 20 (2 failed attempts × 10 sent)", got)
	}
	if got := o.Metrics.CounterValue("transport.retries"); got != 2 {
		t.Errorf("transport.retries = %d, want 2", got)
	}
	if got := o.Events.CountKind(obs.EventRetry); got != 2 {
		t.Errorf("retry events = %d, want 2", got)
	}
}

func TestReconnectorExhaustsAttempts(t *testing.T) {
	inner := &flakyClient{id: "s", failN: 99}
	rc := NewReconnector("s", func() (Client, error) { return inner, nil }, 2, 0)
	if _, err := rc.Call(context.Background(), &Request{Op: OpPing}); err == nil {
		t.Fatal("expected failure after attempts exhausted")
	}
	if inner.calls != 2 {
		t.Errorf("calls = %d, want 2", inner.calls)
	}
}

func TestReconnectorDoesNotRetrySiteErrors(t *testing.T) {
	inner := &flakyClient{id: "s"}
	rc := NewReconnector("s", func() (Client, error) { return inner, nil }, 3, 0)
	resp, err := rc.Call(context.Background(), &Request{Op: OpRelInfo, Rel: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error() == nil {
		t.Fatal("site error lost")
	}
	if inner.calls != 1 {
		t.Errorf("site-side error retried: %d calls", inner.calls)
	}
}

func TestReconnectorDialFailure(t *testing.T) {
	fails := 0
	rc := NewReconnector("s", func() (Client, error) {
		fails++
		return nil, fmt.Errorf("refused")
	}, 2, 0)
	if _, err := rc.Call(context.Background(), &Request{Op: OpPing}); err == nil {
		t.Fatal("dial failures should surface")
	}
	if fails != 2 {
		t.Errorf("dial attempts = %d", fails)
	}
	if err := rc.Close(); err != nil {
		t.Errorf("close without connection: %v", err)
	}
}

func TestReconnectorOverTCPRestart(t *testing.T) {
	// Start a server, connect, kill it, restart on the same address, and
	// verify the reconnector survives.
	srv := NewServer(newEchoHandler())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rc := NewReconnectingTCP("s", addr, CostModel{}, 5, 0)
	defer rc.Close()
	if _, err := rc.Call(context.Background(), &Request{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	srv2 := NewServer(newEchoHandler())
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	if _, err := rc.Call(context.Background(), &Request{Op: OpPing}); err != nil {
		t.Fatalf("reconnect after restart: %v", err)
	}
}

// recordSleep returns a sleep func that records the requested delays
// without actually sleeping — injected virtual time for backoff tests.
func recordSleep(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return ctx.Err()
	}
}

func TestReconnectorBackoffJitter(t *testing.T) {
	inner := &flakyClient{id: "s", failN: 99}
	base := 100 * time.Millisecond
	rc := NewReconnector("s", func() (Client, error) { return inner, nil }, 6, base)
	rc.SetSeed(42)
	var delays []time.Duration
	rc.SetSleep(recordSleep(&delays))
	if _, err := rc.Call(context.Background(), &Request{Op: OpPing}); err == nil {
		t.Fatal("expected exhaustion")
	}
	if len(delays) != 5 { // one sleep before each retry after the first attempt
		t.Fatalf("slept %d times, want 5: %v", len(delays), delays)
	}
	for i, d := range delays {
		// Exponential window with full jitter in the upper half:
		// delay i is uniform in [base·2^i/2, base·2^i], capped.
		lo, hi := base<<uint(i)/2, base<<uint(i)
		if hi > rc.MaxBackoff {
			hi = rc.MaxBackoff
			lo = hi / 2
		}
		if d < lo || d > hi {
			t.Errorf("delay %d = %v outside [%v, %v]", i, d, lo, hi)
		}
	}
	// Jitter must actually vary the delays relative to the deterministic
	// midpoint sequence.
	allMid := true
	for i, d := range delays {
		if d != base<<uint(i)*3/4 {
			allMid = false
		}
	}
	if allMid {
		t.Error("no jitter applied")
	}
	// Same seed, same sequence: backoff is reproducible.
	inner2 := &flakyClient{id: "s", failN: 99}
	rc2 := NewReconnector("s", func() (Client, error) { return inner2, nil }, 6, base)
	rc2.SetSeed(42)
	var delays2 []time.Duration
	rc2.SetSleep(recordSleep(&delays2))
	rc2.Call(context.Background(), &Request{Op: OpPing})
	for i := range delays {
		if delays[i] != delays2[i] {
			t.Fatalf("same seed diverged: %v vs %v", delays, delays2)
		}
	}
}

func TestReconnectorBackoffCap(t *testing.T) {
	inner := &flakyClient{id: "s", failN: 99}
	rc := NewReconnector("s", func() (Client, error) { return inner, nil }, 20, time.Second)
	rc.MaxBackoff = 2 * time.Second
	var delays []time.Duration
	rc.SetSleep(recordSleep(&delays))
	rc.Call(context.Background(), &Request{Op: OpPing})
	for i, d := range delays {
		if d > 2*time.Second {
			t.Errorf("delay %d = %v exceeds cap", i, d)
		}
	}
}

func TestReplicaFailover(t *testing.T) {
	bad := &flakyClient{id: "a", failN: 99}
	good := &flakyClient{id: "b"}
	dials := [2]int{}
	rc := NewReplicaSet("s", []func() (Client, error){
		func() (Client, error) { dials[0]++; return bad, nil },
		func() (Client, error) { dials[1]++; return good, nil },
	}, 2, 0)
	resp, err := rc.Call(context.Background(), &Request{Op: OpPing})
	if err != nil {
		t.Fatalf("failover failed: %v", err)
	}
	if resp.RowCount != 1 {
		t.Errorf("resp = %+v", resp)
	}
	if bad.calls != 2 || good.calls != 1 {
		t.Errorf("calls: bad=%d good=%d, want 2/1", bad.calls, good.calls)
	}
	if rc.Endpoint() != 1 {
		t.Errorf("endpoint = %d, want 1 (sticky failover)", rc.Endpoint())
	}
	// Subsequent calls go straight to the surviving replica over the
	// retained connection.
	if _, err := rc.Call(context.Background(), &Request{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	if dials[0] != 2 || dials[1] != 1 {
		t.Errorf("dials = %v, want [2 1]", dials)
	}
	if bad.calls != 2 {
		t.Errorf("failed replica still being called: %d", bad.calls)
	}
}

func TestReplicaAllDown(t *testing.T) {
	a := &flakyClient{id: "a", failN: 99}
	b := &flakyClient{id: "b", failN: 99}
	rc := NewReplicaSet("s", []func() (Client, error){
		func() (Client, error) { return a, nil },
		func() (Client, error) { return b, nil },
	}, 2, 0)
	_, err := rc.Call(context.Background(), &Request{Op: OpPing})
	if err == nil {
		t.Fatal("expected failure with every replica down")
	}
	if !strings.Contains(err.Error(), "2 replicas") {
		t.Errorf("error does not mention replicas: %v", err)
	}
	if a.calls != 2 || b.calls != 2 {
		t.Errorf("calls: a=%d b=%d, want 2/2", a.calls, b.calls)
	}
}

func TestReconnectorStopsOnCancel(t *testing.T) {
	inner := &flakyClient{id: "s", failN: 99}
	rc := NewReconnector("s", func() (Client, error) { return inner, nil }, 10, time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	rc.SetSleep(func(sctx context.Context, d time.Duration) error {
		cancel() // the caller gives up during the first backoff
		return sctx.Err()
	})
	if _, err := rc.Call(ctx, &Request{Op: OpPing}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	if inner.calls != 1 {
		t.Errorf("retried after cancellation: %d calls", inner.calls)
	}

	// Already-cancelled contexts never reach the wire.
	inner2 := &flakyClient{id: "s"}
	rc2 := NewReconnector("s", func() (Client, error) { return inner2, nil }, 3, 0)
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := rc2.Call(ctx2, &Request{Op: OpPing}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if inner2.calls != 0 {
		t.Errorf("cancelled call still hit the wire: %d", inner2.calls)
	}
}

// shedClient sheds (overload/draining response) its first shedN calls,
// then succeeds.
type shedClient struct {
	id    string
	shedN int
	code  int
	calls int
	stats WireStats
}

func (s *shedClient) SiteID() string    { return s.id }
func (s *shedClient) Stats() *WireStats { return &s.stats }
func (s *shedClient) Close() error      { return nil }

func (s *shedClient) Call(ctx context.Context, req *Request) (*Response, error) {
	s.calls++
	s.stats.AddSent(10, CostModel{})
	s.stats.AddReceived(5, CostModel{})
	if s.calls <= s.shedN {
		return &Response{Err: "overloaded", Code: s.code}, nil
	}
	return &Response{RowCount: 1}, nil
}

func TestShedFailoverDoesNotBurnRetryBudget(t *testing.T) {
	// One attempt only: if the shed failover consumed retry budget, the
	// very first overloaded response would exhaust it and the call would
	// fail instead of landing on the healthy replica.
	over := &shedClient{id: "a", shedN: 99, code: CodeOverloaded}
	good := &flakyClient{id: "b"}
	rc := NewReplicaSet("s", []func() (Client, error){
		func() (Client, error) { return over, nil },
		func() (Client, error) { return good, nil },
	}, 1, 0)
	o := obs.New()
	rc.SetObs(o)
	resp, err := rc.Call(context.Background(), &Request{Op: OpPing})
	if err != nil {
		t.Fatalf("shed failover failed: %v", err)
	}
	if resp.Error() != nil || resp.RowCount != 1 {
		t.Errorf("resp = %+v", resp)
	}
	if over.calls != 1 || good.calls != 1 {
		t.Errorf("calls: over=%d good=%d, want 1/1", over.calls, good.calls)
	}
	if rc.Endpoint() != 1 {
		t.Errorf("endpoint = %d, want sticky failover to 1", rc.Endpoint())
	}
	if got := o.Metrics.CounterValue("transport.overload_failovers"); got != 1 {
		t.Errorf("overload_failovers = %d, want 1", got)
	}
	if got := o.Events.CountKind(obs.EventOverload); got != 1 {
		t.Errorf("overload events = %d, want 1", got)
	}
	// The shed attempt's traffic is waste, not part of the exchange: only
	// the successful replica's bytes (10 sent / 20 received) aggregate.
	sent, recv, _, _ := rc.Stats().Snapshot()
	if sent != 10 || recv != 20 {
		t.Errorf("aggregated stats sent=%d recv=%d, want 10/20", sent, recv)
	}
	if got := o.Metrics.CounterValue("transport.retry_wasted_bytes"); got != 15 {
		t.Errorf("retry_wasted_bytes = %d, want 15", got)
	}
}

func TestAllReplicasShed(t *testing.T) {
	// Every replica sheds: the caller gets the shed response itself (not a
	// transport error), so it can classify via errors.Is(_, ErrOverloaded).
	a := &shedClient{id: "a", shedN: 99, code: CodeOverloaded}
	b := &shedClient{id: "b", shedN: 99, code: CodeDraining}
	rc := NewReplicaSet("s", []func() (Client, error){
		func() (Client, error) { return a, nil },
		func() (Client, error) { return b, nil },
	}, 3, 0)
	resp, err := rc.Call(context.Background(), &Request{Op: OpPing})
	if err != nil {
		t.Fatalf("want shed response, got transport error %v", err)
	}
	if !resp.Shed() {
		t.Fatalf("resp = %+v, want shed", resp)
	}
	if !errors.Is(resp.Error(), ErrDraining) {
		t.Errorf("resp.Error() = %v, want ErrDraining", resp.Error())
	}
	// Exactly one call per replica: no retry budget burned on shed.
	if a.calls != 1 || b.calls != 1 {
		t.Errorf("calls: a=%d b=%d, want 1/1", a.calls, b.calls)
	}
}

// cancelledClient simulates a sibling cancellation surfacing from the
// wire layer: the error wraps context.Canceled even though the call's
// own context may still look alive at classification time.
type cancelledClient struct {
	id    string
	calls int
	stats WireStats
}

func (c *cancelledClient) SiteID() string    { return c.id }
func (c *cancelledClient) Stats() *WireStats { return &c.stats }
func (c *cancelledClient) Close() error      { return nil }

func (c *cancelledClient) Call(ctx context.Context, req *Request) (*Response, error) {
	c.calls++
	return nil, fmt.Errorf("site s: call aborted: %w", context.Canceled)
}

func TestReconnectorSiblingCancellationNotRetried(t *testing.T) {
	// When the coordinator cancels a round because a sibling site failed,
	// this site's in-flight call dies with a wrapped context.Canceled.
	// That is not a site fault: retrying (or failing over) would burn
	// budget the real failure diagnosis needs.
	inner := &cancelledClient{id: "s"}
	dials := 0
	rc := NewReconnector("s", func() (Client, error) { dials++; return inner, nil }, 5, 0)
	_, err := rc.Call(context.Background(), &Request{Op: OpPing})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if inner.calls != 1 || dials != 1 {
		t.Errorf("calls=%d dials=%d, want 1/1 (cancellation retried)", inner.calls, dials)
	}
}

func TestReconnectorNoRetryAfterDeadline(t *testing.T) {
	// A hung endpoint under a per-call deadline: the reconnector must not
	// burn its remaining attempts (or fail over) once the deadline is the
	// reason for the failure.
	chaos := NewChaos(NewLocalClient("s", newEchoHandler(), CostModel{}), 1)
	chaos.HangNext(OpPing)
	dials := 0
	rc := NewReconnector("s", func() (Client, error) { dials++; return chaos, nil }, 5, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := rc.Call(ctx, &Request{Op: OpPing})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if dials != 1 || chaos.Calls() != 1 {
		t.Errorf("dials=%d calls=%d, want 1/1", dials, chaos.Calls())
	}
}
