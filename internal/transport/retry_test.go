package transport

import (
	"errors"
	"fmt"
	"testing"
)

// flakyClient fails its first failN calls at the transport level.
type flakyClient struct {
	id     string
	failN  int
	calls  int
	closed int
	stats  WireStats
}

func (f *flakyClient) SiteID() string    { return f.id }
func (f *flakyClient) Stats() *WireStats { return &f.stats }
func (f *flakyClient) Close() error      { f.closed++; return nil }

func (f *flakyClient) Call(req *Request) (*Response, error) {
	f.calls++
	f.stats.AddSent(10, CostModel{})
	if f.calls <= f.failN {
		return nil, errors.New("connection reset")
	}
	f.stats.AddReceived(20, CostModel{})
	if req.Op == OpRelInfo {
		return &Response{Err: "no such relation"}, nil
	}
	return &Response{RowCount: 1}, nil
}

func TestReconnectorRetries(t *testing.T) {
	inner := &flakyClient{id: "s", failN: 2}
	dials := 0
	rc := NewReconnector("s", func() (Client, error) {
		dials++
		return inner, nil
	}, 3, 0)
	resp, err := rc.Call(&Request{Op: OpPing})
	if err != nil {
		t.Fatal(err)
	}
	if resp.RowCount != 1 {
		t.Errorf("resp = %+v", resp)
	}
	if inner.calls != 3 {
		t.Errorf("calls = %d, want 3", inner.calls)
	}
	if dials != 3 { // redial after each transport failure
		t.Errorf("dials = %d, want 3", dials)
	}
	// Aggregated stats span all attempts.
	sent, recv, _, _ := rc.Stats().Snapshot()
	if sent != 30 || recv != 20 {
		t.Errorf("aggregated stats: sent=%d recv=%d", sent, recv)
	}
}

func TestReconnectorExhaustsAttempts(t *testing.T) {
	inner := &flakyClient{id: "s", failN: 99}
	rc := NewReconnector("s", func() (Client, error) { return inner, nil }, 2, 0)
	if _, err := rc.Call(&Request{Op: OpPing}); err == nil {
		t.Fatal("expected failure after attempts exhausted")
	}
	if inner.calls != 2 {
		t.Errorf("calls = %d, want 2", inner.calls)
	}
}

func TestReconnectorDoesNotRetrySiteErrors(t *testing.T) {
	inner := &flakyClient{id: "s"}
	rc := NewReconnector("s", func() (Client, error) { return inner, nil }, 3, 0)
	resp, err := rc.Call(&Request{Op: OpRelInfo, Rel: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error() == nil {
		t.Fatal("site error lost")
	}
	if inner.calls != 1 {
		t.Errorf("site-side error retried: %d calls", inner.calls)
	}
}

func TestReconnectorDialFailure(t *testing.T) {
	fails := 0
	rc := NewReconnector("s", func() (Client, error) {
		fails++
		return nil, fmt.Errorf("refused")
	}, 2, 0)
	if _, err := rc.Call(&Request{Op: OpPing}); err == nil {
		t.Fatal("dial failures should surface")
	}
	if fails != 2 {
		t.Errorf("dial attempts = %d", fails)
	}
	if err := rc.Close(); err != nil {
		t.Errorf("close without connection: %v", err)
	}
}

func TestReconnectorOverTCPRestart(t *testing.T) {
	// Start a server, connect, kill it, restart on the same address, and
	// verify the reconnector survives.
	srv := NewServer(newEchoHandler())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rc := NewReconnectingTCP("s", addr, CostModel{}, 5, 0)
	defer rc.Close()
	if _, err := rc.Call(&Request{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	srv2 := NewServer(newEchoHandler())
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	if _, err := rc.Call(&Request{Op: OpPing}); err != nil {
		t.Fatalf("reconnect after restart: %v", err)
	}
}
