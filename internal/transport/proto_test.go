package transport

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/relation"
	"repro/internal/value"
)

// gobRoundTrip encodes and decodes v, returning the copy.
func gobRoundTrip[T any](t *testing.T, v *T) *T {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatalf("encode: %v", err)
	}
	out := new(T)
	if err := gob.NewDecoder(&buf).Decode(out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out
}

func TestRequestGobRoundTrip(t *testing.T) {
	req := &Request{
		Op:        OpEvalRounds,
		Rel:       "flow",
		Detail:    "flow",
		BaseCols:  []string{"SourceAS", "DestAS"},
		BaseWhere: "F.NumBytes > 0",
		Base:      sampleRelation(10),
		Keys:      []string{"SourceAS"},
		KeepFinal: true,
		Gen: &GenSpec{
			Kind: "tpcr", Rel: "tpcr",
			Params: map[string]int64{"rows": 100, "seed": 7},
			Site:   2, NumSites: 8,
		},
		Rounds: []RoundSpec{{
			Detail:      "flow",
			Aggs:        [][]string{{"count(*) AS c", "avg(F.NumBytes) AS a"}},
			Thetas:      []string{"F.SourceAS = B.SourceAS"},
			BaseAlias:   "B",
			DetailAlias: "F",
			Finalize:    true,
			Touched:     true,
		}},
	}
	back := gobRoundTrip(t, req)
	if back.Op != req.Op || back.Rel != req.Rel || back.BaseWhere != req.BaseWhere ||
		back.KeepFinal != req.KeepFinal {
		t.Errorf("scalar fields lost: %+v", back)
	}
	if !reflect.DeepEqual(back.BaseCols, req.BaseCols) || !reflect.DeepEqual(back.Keys, req.Keys) {
		t.Error("slices lost")
	}
	if !reflect.DeepEqual(back.Rounds, req.Rounds) {
		t.Errorf("rounds lost: %+v", back.Rounds)
	}
	if !reflect.DeepEqual(back.Gen, req.Gen) {
		t.Errorf("gen lost: %+v", back.Gen)
	}
	if back.Base.Len() != req.Base.Len() {
		t.Error("base relation lost")
	}
}

func TestResponseGobRoundTrip(t *testing.T) {
	resp := &Response{Err: "boom", Rel: sampleRelation(5), RowCount: 5, ComputeNs: 1234}
	back := gobRoundTrip(t, resp)
	if back.Err != "boom" || back.RowCount != 5 || back.ComputeNs != 1234 || back.Rel.Len() != 5 {
		t.Errorf("response lost: %+v", back)
	}
}

// TestValueGobProperty: arbitrary values survive the wire exactly.
func TestValueGobProperty(t *testing.T) {
	f := func(kind uint8, i int64, fl float64, s string) bool {
		var v value.V
		switch kind % 5 {
		case 0:
			v = value.Null
		case 1:
			v = value.NewBool(i%2 == 0)
		case 2:
			v = value.NewInt(i)
		case 3:
			v = value.NewFloat(fl)
		case 4:
			v = value.NewString(s)
		}
		row := relation.Row{v}
		rel := relation.New(relation.MustSchema(relation.Column{Name: "x", Kind: v.K}))
		rel.Rows = append(rel.Rows, row)
		req := &Request{Op: OpLoad, Rel: "t", Data: rel}
		back := gobRoundTrip(t, req)
		got := back.Data.Rows[0][0]
		if v.IsNull() {
			return got.IsNull()
		}
		// NaN never equals itself; compare bit pattern via kind+string.
		if v.K == value.KindFloat && fl != fl {
			return got.K == value.KindFloat && got.F != got.F
		}
		return value.Equal(got, v)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestSchemaLookupAfterWire: the schema's private index rebuilds after
// decoding on the far side.
func TestSchemaLookupAfterWire(t *testing.T) {
	req := &Request{Op: OpLoad, Rel: "t", Data: sampleRelation(3)}
	back := gobRoundTrip(t, req)
	if i, ok := back.Data.Schema.Lookup("s"); !ok || i != 2 {
		t.Errorf("lookup after wire: %d %v", i, ok)
	}
}

// TestLargeRelationWire pushes a bigger payload through to catch stream
// framing issues.
func TestLargeRelationWire(t *testing.T) {
	rel := sampleRelation(20000)
	req := &Request{Op: OpLoad, Rel: "big", Data: rel}
	back := gobRoundTrip(t, req)
	if back.Data.Len() != rel.Len() {
		t.Fatalf("large relation: %d rows, want %d", back.Data.Len(), rel.Len())
	}
	if !value.Equal(back.Data.Rows[19999][0], rel.Rows[19999][0]) {
		t.Error("tail row corrupted")
	}
}
