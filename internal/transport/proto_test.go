package transport

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/relation"
	"repro/internal/value"
)

// gobRoundTrip encodes and decodes v, returning the copy.
func gobRoundTrip[T any](t *testing.T, v *T) *T {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatalf("encode: %v", err)
	}
	out := new(T)
	if err := gob.NewDecoder(&buf).Decode(out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out
}

func TestRequestGobRoundTrip(t *testing.T) {
	req := &Request{
		Op:        OpEvalRounds,
		Rel:       "flow",
		Detail:    "flow",
		BaseCols:  []string{"SourceAS", "DestAS"},
		BaseWhere: "F.NumBytes > 0",
		Base:      sampleRelation(10),
		Keys:      []string{"SourceAS"},
		KeepFinal: true,
		Gen: &GenSpec{
			Kind: "tpcr", Rel: "tpcr",
			Params: map[string]int64{"rows": 100, "seed": 7},
			Site:   2, NumSites: 8,
		},
		Rounds: []RoundSpec{{
			Detail:      "flow",
			Aggs:        [][]string{{"count(*) AS c", "avg(F.NumBytes) AS a"}},
			Thetas:      []string{"F.SourceAS = B.SourceAS"},
			BaseAlias:   "B",
			DetailAlias: "F",
			Finalize:    true,
			Touched:     true,
		}},
	}
	back := gobRoundTrip(t, req)
	if back.Op != req.Op || back.Rel != req.Rel || back.BaseWhere != req.BaseWhere ||
		back.KeepFinal != req.KeepFinal {
		t.Errorf("scalar fields lost: %+v", back)
	}
	if !reflect.DeepEqual(back.BaseCols, req.BaseCols) || !reflect.DeepEqual(back.Keys, req.Keys) {
		t.Error("slices lost")
	}
	if !reflect.DeepEqual(back.Rounds, req.Rounds) {
		t.Errorf("rounds lost: %+v", back.Rounds)
	}
	if !reflect.DeepEqual(back.Gen, req.Gen) {
		t.Errorf("gen lost: %+v", back.Gen)
	}
	if back.Base.Len() != req.Base.Len() {
		t.Error("base relation lost")
	}
}

func TestResponseGobRoundTrip(t *testing.T) {
	resp := &Response{Err: "boom", Rel: sampleRelation(5), RowCount: 5, ComputeNs: 1234}
	back := gobRoundTrip(t, resp)
	if back.Err != "boom" || back.RowCount != 5 || back.ComputeNs != 1234 || back.Rel.Len() != 5 {
		t.Errorf("response lost: %+v", back)
	}
}

// legacyRequest mirrors the Request field set before the QueryID
// profiling tag existed; legacyResponse mirrors Response before the
// Profile payload. Gob matches struct fields by name (unknown fields are
// skipped, missing ones stay zero), so these stand in for a site or
// coordinator running the previous protocol version.
type legacyRequest struct {
	Op        Op
	Rel       string
	Data      *relation.Relation
	Gen       *GenSpec
	BaseCols  []string
	BaseWhere string
	Detail    string
	Base      *relation.Relation
	Rounds    []RoundSpec
	KeepFinal bool
	Keys      []string
	Epoch     string
	Round     int
}

type legacyResponse struct {
	Err       string
	Code      int
	Rel       *relation.Relation
	RowCount  int
	ComputeNs int64
}

// TestUntaggedWireCompat verifies the compatibility rule of the QueryID
// field: untagged requests interoperate with the previous protocol
// version in both directions (gob omits zero-valued fields from the
// value encoding, so an untagged request ships no profiling bytes), and
// a response without a profile decodes cleanly on either side.
func TestUntaggedWireCompat(t *testing.T) {
	req := &Request{
		Op: OpEvalRounds, Detail: "flow",
		BaseCols: []string{"SourceAS"}, BaseWhere: "F.NumBytes > 0",
		Rounds: []RoundSpec{{Detail: "flow", Aggs: [][]string{{"count(*) AS c"}},
			Thetas: []string{"F.SourceAS = B.SourceAS"}}},
		Epoch: "e1", Round: 2,
	}

	// New coordinator → old site: the untagged request decodes into the
	// legacy field set with nothing lost and nothing extra.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(req); err != nil {
		t.Fatalf("encode: %v", err)
	}
	untaggedLen := buf.Len()
	var oldSite legacyRequest
	if err := gob.NewDecoder(&buf).Decode(&oldSite); err != nil {
		t.Fatalf("legacy decode of untagged request: %v", err)
	}
	if oldSite.Op != req.Op || oldSite.Detail != req.Detail || oldSite.Epoch != "e1" ||
		oldSite.Round != 2 || !reflect.DeepEqual(oldSite.Rounds, req.Rounds) {
		t.Errorf("legacy site saw different request: %+v", oldSite)
	}

	// Old coordinator → new site: a legacy request decodes with an empty
	// QueryID, i.e. profiling stays off.
	buf.Reset()
	old := &legacyRequest{Op: OpEvalBase, Detail: "flow", BaseCols: []string{"SourceAS"}, Epoch: "e2"}
	if err := gob.NewEncoder(&buf).Encode(old); err != nil {
		t.Fatalf("encode legacy: %v", err)
	}
	var newSite Request
	if err := gob.NewDecoder(&buf).Decode(&newSite); err != nil {
		t.Fatalf("decode legacy request: %v", err)
	}
	if newSite.QueryID != "" || newSite.Epoch != "e2" || newSite.Op != OpEvalBase {
		t.Errorf("legacy request decoded wrong: %+v", newSite)
	}

	// Tagging is the only thing that costs bytes: the same request with a
	// QueryID encodes strictly longer, so untagged executions pay nothing.
	buf.Reset()
	tagged := *req
	tagged.QueryID = "q1"
	if err := gob.NewEncoder(&buf).Encode(&tagged); err != nil {
		t.Fatalf("encode tagged: %v", err)
	}
	if buf.Len() <= untaggedLen {
		t.Errorf("tagged request (%d bytes) not longer than untagged (%d)", buf.Len(), untaggedLen)
	}

	// Response side: a profile-free response decodes into the legacy
	// shape, and a legacy response decodes with a nil Profile.
	buf.Reset()
	resp := &Response{Rel: sampleRelation(3), RowCount: 3, ComputeNs: 99}
	if err := gob.NewEncoder(&buf).Encode(resp); err != nil {
		t.Fatalf("encode response: %v", err)
	}
	var oldCoord legacyResponse
	if err := gob.NewDecoder(&buf).Decode(&oldCoord); err != nil {
		t.Fatalf("legacy decode of response: %v", err)
	}
	if oldCoord.ComputeNs != 99 || oldCoord.Rel.Len() != 3 {
		t.Errorf("legacy coordinator saw different response: %+v", oldCoord)
	}
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(&legacyResponse{RowCount: 7}); err != nil {
		t.Fatalf("encode legacy response: %v", err)
	}
	var newCoord Response
	if err := gob.NewDecoder(&buf).Decode(&newCoord); err != nil {
		t.Fatalf("decode legacy response: %v", err)
	}
	if newCoord.Profile != nil || newCoord.RowCount != 7 {
		t.Errorf("legacy response decoded wrong: %+v", newCoord)
	}
}

// TestSiteProfileGobRoundTrip: a tagged exchange carries the profile
// payload intact.
func TestSiteProfileGobRoundTrip(t *testing.T) {
	resp := &Response{
		Rel: sampleRelation(2), ComputeNs: 50,
		Profile: &SiteProfile{
			WallNs: 60, RowsIn: 10, RowsOut: 2,
			BytesInApprox: 160, BytesOutApprox: 32,
			Rounds: 2, Engine: "vec", Workers: 4,
			VecBatches: 3, VecRows: 3000, VecFilterRows: 1000, VecSelected: 400,
			Outcome: OutcomeOK,
		},
	}
	back := gobRoundTrip(t, resp)
	if !reflect.DeepEqual(back.Profile, resp.Profile) {
		t.Errorf("profile lost on the wire: %+v", back.Profile)
	}
}

// TestValueGobProperty: arbitrary values survive the wire exactly.
func TestValueGobProperty(t *testing.T) {
	f := func(kind uint8, i int64, fl float64, s string) bool {
		var v value.V
		switch kind % 5 {
		case 0:
			v = value.Null
		case 1:
			v = value.NewBool(i%2 == 0)
		case 2:
			v = value.NewInt(i)
		case 3:
			v = value.NewFloat(fl)
		case 4:
			v = value.NewString(s)
		}
		row := relation.Row{v}
		rel := relation.New(relation.MustSchema(relation.Column{Name: "x", Kind: v.K}))
		rel.Rows = append(rel.Rows, row)
		req := &Request{Op: OpLoad, Rel: "t", Data: rel}
		back := gobRoundTrip(t, req)
		got := back.Data.Rows[0][0]
		if v.IsNull() {
			return got.IsNull()
		}
		// NaN never equals itself; compare bit pattern via kind+string.
		if v.K == value.KindFloat && fl != fl {
			return got.K == value.KindFloat && got.F != got.F
		}
		return value.Equal(got, v)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestSchemaLookupAfterWire: the schema's private index rebuilds after
// decoding on the far side.
func TestSchemaLookupAfterWire(t *testing.T) {
	req := &Request{Op: OpLoad, Rel: "t", Data: sampleRelation(3)}
	back := gobRoundTrip(t, req)
	if i, ok := back.Data.Schema.Lookup("s"); !ok || i != 2 {
		t.Errorf("lookup after wire: %d %v", i, ok)
	}
}

// TestLargeRelationWire pushes a bigger payload through to catch stream
// framing issues.
func TestLargeRelationWire(t *testing.T) {
	rel := sampleRelation(20000)
	req := &Request{Op: OpLoad, Rel: "big", Data: rel}
	back := gobRoundTrip(t, req)
	if back.Data.Len() != rel.Len() {
		t.Fatalf("large relation: %d rows, want %d", back.Data.Len(), rel.Len())
	}
	if !value.Equal(back.Data.Rows[19999][0], rel.Rows[19999][0]) {
		t.Error("tail row corrupted")
	}
}
