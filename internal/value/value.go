// Package value implements the typed scalar values used throughout the
// Skalla engine: relation columns, expression results, and aggregate
// accumulator states are all built from value.V.
//
// The type system is deliberately small — NULL, 64-bit integers, 64-bit
// floats, booleans, and strings — which matches the attribute types needed
// by the paper's TPC-R and IP-flow schemas. Values are plain structs with
// exported fields so they serialize directly with encoding/gob.
package value

import (
	"fmt"
	"math"
	"strconv"
)

// Kind identifies the runtime type of a value.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Numeric reports whether the kind is a numeric type.
func (k Kind) Numeric() bool { return k == KindInt || k == KindFloat }

// V is a single scalar value. The zero value of V is NULL.
//
// Exactly one payload field is meaningful, selected by K: I for KindInt and
// KindBool (0 or 1), F for KindFloat, S for KindString.
type V struct {
	K Kind
	I int64
	F float64
	S string
}

// Null is the NULL value.
var Null = V{}

// NewInt returns an integer value.
func NewInt(i int64) V { return V{K: KindInt, I: i} }

// NewFloat returns a float value.
func NewFloat(f float64) V { return V{K: KindFloat, F: f} }

// NewString returns a string value.
func NewString(s string) V { return V{K: KindString, S: s} }

// NewBool returns a boolean value.
func NewBool(b bool) V {
	if b {
		return V{K: KindBool, I: 1}
	}
	return V{K: KindBool}
}

// IsNull reports whether v is NULL.
func (v V) IsNull() bool { return v.K == KindNull }

// Bool reports the truthiness of v: true booleans, non-zero numbers.
// NULL and strings are never truthy.
func (v V) Bool() bool {
	switch v.K {
	case KindBool, KindInt:
		return v.I != 0
	case KindFloat:
		return v.F != 0
	default:
		return false
	}
}

// AsFloat converts a numeric or boolean value to float64.
// It returns an error for NULL and string values.
func (v V) AsFloat() (float64, error) {
	switch v.K {
	case KindInt, KindBool:
		return float64(v.I), nil
	case KindFloat:
		return v.F, nil
	default:
		return 0, fmt.Errorf("value: cannot convert %s to float", v.K)
	}
}

// AsInt converts a numeric or boolean value to int64, truncating floats.
// It returns an error for NULL and string values.
func (v V) AsInt() (int64, error) {
	switch v.K {
	case KindInt, KindBool:
		return v.I, nil
	case KindFloat:
		return int64(v.F), nil
	default:
		return 0, fmt.Errorf("value: cannot convert %s to int", v.K)
	}
}

// String renders the value for display and for the text wire format.
func (v V) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	default:
		return fmt.Sprintf("V(%d)", uint8(v.K))
	}
}

// Compare orders two values. NULL sorts before everything; numeric kinds
// (including bool) compare by magnitude across kinds; strings compare
// lexicographically. Comparing a string with a number is an error.
func Compare(a, b V) (int, error) {
	if a.K == KindNull || b.K == KindNull {
		switch {
		case a.K == b.K:
			return 0, nil
		case a.K == KindNull:
			return -1, nil
		default:
			return 1, nil
		}
	}
	if a.K == KindString || b.K == KindString {
		if a.K != KindString || b.K != KindString {
			return 0, fmt.Errorf("value: cannot compare %s with %s", a.K, b.K)
		}
		switch {
		case a.S < b.S:
			return -1, nil
		case a.S > b.S:
			return 1, nil
		default:
			return 0, nil
		}
	}
	// Numeric (or bool) comparison. Compare as ints when both sides are
	// integral to avoid float rounding on large int64 values.
	if a.K != KindFloat && b.K != KindFloat {
		switch {
		case a.I < b.I:
			return -1, nil
		case a.I > b.I:
			return 1, nil
		default:
			return 0, nil
		}
	}
	af, _ := a.AsFloat()
	bf, _ := b.AsFloat()
	switch {
	case af < bf:
		return -1, nil
	case af > bf:
		return 1, nil
	default:
		return 0, nil
	}
}

// Equal reports whether two values compare equal. NULL equals only NULL.
// Mismatched string/number comparisons are unequal rather than an error.
func Equal(a, b V) bool {
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// Less reports whether a sorts strictly before b, using the same order as
// Compare; incomparable pairs order by kind so sorting is total.
func Less(a, b V) bool {
	c, err := Compare(a, b)
	if err != nil {
		return a.K < b.K
	}
	return c < 0
}

// HashSeed is the initial state for an UpdateHash chain (the 64-bit FNV-1a
// offset basis). For any value v, v.Hash() == UpdateHash(HashSeed, v), so
// multi-column keys can be hashed by folding each column into the running
// state without allocating per-row key strings.
const HashSeed uint64 = 14695981039346656037

const fnvPrime uint64 = 1099511628211

func hashByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func hashUint64(h uint64, u uint64) uint64 {
	h = hashByte(h, byte(u))
	h = hashByte(h, byte(u>>8))
	h = hashByte(h, byte(u>>16))
	h = hashByte(h, byte(u>>24))
	h = hashByte(h, byte(u>>32))
	h = hashByte(h, byte(u>>40))
	h = hashByte(h, byte(u>>48))
	h = hashByte(h, byte(u>>56))
	return h
}

// UpdateHash folds v into a running FNV-1a state h and returns the new
// state. The byte sequence folded per value matches Hash exactly, so
// single-column chains agree with Hash and equal values (per Equal/Key)
// produce equal states.
func UpdateHash(h uint64, v V) uint64 {
	switch v.K {
	case KindNull:
		return hashByte(h, 0)
	case KindBool, KindInt:
		// Integral values hash via their float form when exactly
		// representable so 1 and 1.0 land in the same bucket.
		f := float64(v.I)
		if int64(f) == v.I {
			return hashUint64(hashByte(h, 2), math.Float64bits(f))
		}
		return hashUint64(hashByte(h, 1), uint64(v.I))
	case KindFloat:
		// Normalize -0.0 and NaN payloads so every value a Key/Equal
		// equivalence class contains hashes identically (hash grouping
		// relies on Equal values never landing in different buckets).
		f := v.F
		if f == 0 {
			f = 0
		} else if math.IsNaN(f) {
			f = math.NaN()
		}
		return hashUint64(hashByte(h, 2), math.Float64bits(f))
	case KindString:
		h = hashByte(h, 3)
		for i := 0; i < len(v.S); i++ {
			h = hashByte(h, v.S[i])
		}
		return h
	}
	return h
}

// Hash returns a 64-bit hash of the value, suitable for hash grouping.
// Numerically equal int and float values hash identically. It allocates
// nothing.
func (v V) Hash() uint64 { return UpdateHash(HashSeed, v) }

// Key returns a compact string usable as a Go map key, distinguishing
// kind classes but identifying numerically equal ints and floats.
func (v V) Key() string {
	switch v.K {
	case KindNull:
		return "\x00"
	case KindBool, KindInt:
		return "\x01" + strconv.FormatInt(v.I, 10)
	case KindFloat:
		if f := v.F; f == math.Trunc(f) && !math.IsInf(f, 0) &&
			f >= math.MinInt64 && f <= math.MaxInt64 {
			return "\x01" + strconv.FormatInt(int64(f), 10)
		}
		return "\x02" + strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return "\x03" + v.S
	default:
		return "\x04"
	}
}

// Arithmetic implements SQL-style numeric arithmetic: NULL propagates, int
// op int yields int (except division, which yields float), and any float
// operand promotes the result to float.

// Add returns a + b.
func Add(a, b V) (V, error) { return arith(a, b, "+") }

// Sub returns a - b.
func Sub(a, b V) (V, error) { return arith(a, b, "-") }

// Mul returns a * b.
func Mul(a, b V) (V, error) { return arith(a, b, "*") }

// Div returns a / b as a float; division by zero yields NULL.
func Div(a, b V) (V, error) { return arith(a, b, "/") }

// Mod returns a % b for integer operands; modulo by zero yields NULL.
func Mod(a, b V) (V, error) { return arith(a, b, "%") }

// Neg returns -a.
func Neg(a V) (V, error) {
	switch a.K {
	case KindNull:
		return Null, nil
	case KindInt:
		return NewInt(-a.I), nil
	case KindFloat:
		return NewFloat(-a.F), nil
	default:
		return Null, fmt.Errorf("value: cannot negate %s", a.K)
	}
}

func arith(a, b V, op string) (V, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if !a.K.Numeric() && a.K != KindBool || !b.K.Numeric() && b.K != KindBool {
		return Null, fmt.Errorf("value: %s %s %s is not numeric", a.K, op, b.K)
	}
	if op == "%" {
		ai, err := a.AsInt()
		if err != nil {
			return Null, err
		}
		bi, err := b.AsInt()
		if err != nil {
			return Null, err
		}
		if bi == 0 {
			return Null, nil
		}
		return NewInt(ai % bi), nil
	}
	if op == "/" {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		if bf == 0 {
			return Null, nil
		}
		return NewFloat(af / bf), nil
	}
	if a.K == KindFloat || b.K == KindFloat {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch op {
		case "+":
			return NewFloat(af + bf), nil
		case "-":
			return NewFloat(af - bf), nil
		case "*":
			return NewFloat(af * bf), nil
		}
	}
	ai, bi := a.I, b.I
	switch op {
	case "+":
		return NewInt(ai + bi), nil
	case "-":
		return NewInt(ai - bi), nil
	case "*":
		return NewInt(ai * bi), nil
	}
	return Null, fmt.Errorf("value: unknown operator %q", op)
}

// Parse interprets a literal string as a value: "NULL", booleans, integer
// and float literals; anything else is a string value.
func Parse(s string) V {
	switch s {
	case "NULL", "null":
		return Null
	case "true":
		return NewBool(true)
	case "false":
		return NewBool(false)
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return NewInt(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return NewFloat(f)
	}
	return NewString(s)
}
