package value

import (
	"hash/fnv"
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindBool: "BOOL", KindInt: "INT",
		KindFloat: "FLOAT", KindString: "STRING",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if v := NewInt(42); v.K != KindInt || v.I != 42 {
		t.Errorf("NewInt(42) = %+v", v)
	}
	if v := NewFloat(2.5); v.K != KindFloat || v.F != 2.5 {
		t.Errorf("NewFloat(2.5) = %+v", v)
	}
	if v := NewString("x"); v.K != KindString || v.S != "x" {
		t.Errorf("NewString = %+v", v)
	}
	if v := NewBool(true); !v.Bool() {
		t.Error("NewBool(true) not truthy")
	}
	if v := NewBool(false); v.Bool() {
		t.Error("NewBool(false) truthy")
	}
	if !Null.IsNull() || (V{}).IsNull() != true {
		t.Error("zero value is not NULL")
	}
}

func TestAsFloatAsInt(t *testing.T) {
	if f, err := NewInt(3).AsFloat(); err != nil || f != 3 {
		t.Errorf("AsFloat(int 3) = %v, %v", f, err)
	}
	if i, err := NewFloat(3.9).AsInt(); err != nil || i != 3 {
		t.Errorf("AsInt(3.9) = %v, %v", i, err)
	}
	if _, err := NewString("a").AsFloat(); err == nil {
		t.Error("AsFloat(string) should error")
	}
	if _, err := Null.AsInt(); err == nil {
		t.Error("AsInt(null) should error")
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		a, b V
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(1), NewFloat(1.5), -1},
		{NewFloat(2.0), NewInt(2), 0},
		{NewString("a"), NewString("b"), -1},
		{Null, NewInt(0), -1},
		{NewInt(0), Null, 1},
		{Null, Null, 0},
		{NewBool(true), NewInt(1), 0},
		{NewInt(math.MaxInt64), NewInt(math.MaxInt64 - 1), 1},
	}
	for _, tc := range tests {
		got, err := Compare(tc.a, tc.b)
		if err != nil {
			t.Errorf("Compare(%v, %v) error: %v", tc.a, tc.b, err)
			continue
		}
		if got != tc.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
	if _, err := Compare(NewString("a"), NewInt(1)); err == nil {
		t.Error("Compare(string, int) should error")
	}
}

func TestEqualAndLess(t *testing.T) {
	if !Equal(NewInt(1), NewFloat(1)) {
		t.Error("1 != 1.0")
	}
	if Equal(NewString("1"), NewInt(1)) {
		t.Error("string '1' equals int 1")
	}
	if !Less(NewInt(1), NewInt(2)) || Less(NewInt(2), NewInt(1)) {
		t.Error("Less on ints wrong")
	}
}

func TestHashConsistency(t *testing.T) {
	if NewInt(7).Hash() != NewFloat(7).Hash() {
		t.Error("int 7 and float 7.0 hash differently")
	}
	if NewInt(7).Key() != NewFloat(7).Key() {
		t.Error("int 7 and float 7.0 key differently")
	}
	if NewString("7").Key() == NewInt(7).Key() {
		t.Error("string '7' and int 7 share a key")
	}
	if Null.Key() == NewInt(0).Key() {
		t.Error("NULL and 0 share a key")
	}
}

// TestHashMatchesFNVReference pins the allocation-free Hash to the tagged
// FNV-1a byte encoding it replaced: tag byte then, for numerics, the
// little-endian 8-byte payload.
func TestHashMatchesFNVReference(t *testing.T) {
	ref := func(bs ...byte) uint64 {
		h := fnv.New64a()
		h.Write(bs)
		return h.Sum64()
	}
	le := func(tag byte, u uint64) []byte {
		b := []byte{tag, 0, 0, 0, 0, 0, 0, 0, 0}
		for i := 0; i < 8; i++ {
			b[1+i] = byte(u >> (8 * i))
		}
		return b
	}
	cases := []struct {
		v    V
		want uint64
	}{
		{Null, ref(0)},
		{NewBool(true), ref(le(2, math.Float64bits(1))...)},
		{NewInt(42), ref(le(2, math.Float64bits(42))...)},
		{NewInt(math.MaxInt64 - 1), ref(le(1, uint64(math.MaxInt64-1))...)},
		{NewFloat(3.25), ref(le(2, math.Float64bits(3.25))...)},
		{NewString("ab"), ref(3, 'a', 'b')},
	}
	for _, c := range cases {
		if got := c.v.Hash(); got != c.want {
			t.Errorf("Hash(%s) = %#x, want %#x", c.v, got, c.want)
		}
	}
	// Chained updates must equal hashing the concatenated encodings.
	h := UpdateHash(UpdateHash(HashSeed, NewInt(42)), NewString("ab"))
	if want := ref(append(le(2, math.Float64bits(42)), 3, 'a', 'b')...); h != want {
		t.Errorf("UpdateHash chain = %#x, want %#x", h, want)
	}
}

func TestHashNormalizesFloatEquivalents(t *testing.T) {
	negZero := math.Copysign(0, -1)
	if NewFloat(negZero).Hash() != NewFloat(0).Hash() {
		t.Error("-0.0 and 0.0 hash differently")
	}
	if NewFloat(negZero).Hash() != NewInt(0).Hash() {
		t.Error("-0.0 and int 0 hash differently")
	}
	odd := math.Float64frombits(0x7ff8000000000123) // non-canonical NaN payload
	if NewFloat(odd).Hash() != NewFloat(math.NaN()).Hash() {
		t.Error("NaN payloads hash differently")
	}
}

func TestHashEqualImpliesSameHash(t *testing.T) {
	f := func(i int64) bool {
		a, b := NewInt(i), NewInt(i)
		return a.Hash() == b.Hash() && a.Key() == b.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArithmetic(t *testing.T) {
	tests := []struct {
		name string
		got  func() (V, error)
		want V
	}{
		{"int add", func() (V, error) { return Add(NewInt(2), NewInt(3)) }, NewInt(5)},
		{"mixed add", func() (V, error) { return Add(NewInt(2), NewFloat(0.5)) }, NewFloat(2.5)},
		{"sub", func() (V, error) { return Sub(NewInt(2), NewInt(5)) }, NewInt(-3)},
		{"mul", func() (V, error) { return Mul(NewInt(4), NewInt(3)) }, NewInt(12)},
		{"div is float", func() (V, error) { return Div(NewInt(3), NewInt(2)) }, NewFloat(1.5)},
		{"div by zero", func() (V, error) { return Div(NewInt(3), NewInt(0)) }, Null},
		{"mod", func() (V, error) { return Mod(NewInt(7), NewInt(3)) }, NewInt(1)},
		{"mod by zero", func() (V, error) { return Mod(NewInt(7), NewInt(0)) }, Null},
		{"null propagates", func() (V, error) { return Add(Null, NewInt(1)) }, Null},
		{"neg int", func() (V, error) { return Neg(NewInt(5)) }, NewInt(-5)},
		{"neg float", func() (V, error) { return Neg(NewFloat(1.5)) }, NewFloat(-1.5)},
	}
	for _, tc := range tests {
		got, err := tc.got()
		if err != nil {
			t.Errorf("%s: error %v", tc.name, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s: got %+v, want %+v", tc.name, got, tc.want)
		}
	}
	if _, err := Add(NewString("a"), NewInt(1)); err == nil {
		t.Error("string arithmetic should error")
	}
	if _, err := Neg(NewString("a")); err == nil {
		t.Error("string negation should error")
	}
}

func TestArithmeticProperties(t *testing.T) {
	commutative := func(a, b int32) bool {
		x, err1 := Add(NewInt(int64(a)), NewInt(int64(b)))
		y, err2 := Add(NewInt(int64(b)), NewInt(int64(a)))
		return err1 == nil && err2 == nil && x == y
	}
	if err := quick.Check(commutative, nil); err != nil {
		t.Error("addition not commutative:", err)
	}
	compareAntisym := func(a, b int32) bool {
		c1, _ := Compare(NewInt(int64(a)), NewInt(int64(b)))
		c2, _ := Compare(NewInt(int64(b)), NewInt(int64(a)))
		return c1 == -c2
	}
	if err := quick.Check(compareAntisym, nil); err != nil {
		t.Error("compare not antisymmetric:", err)
	}
}

func TestStringRendering(t *testing.T) {
	tests := []struct {
		v    V
		want string
	}{
		{Null, "NULL"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{NewInt(-3), "-3"},
		{NewFloat(1.5), "1.5"},
		{NewString("hi"), "hi"},
	}
	for _, tc := range tests {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("%+v.String() = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestParse(t *testing.T) {
	tests := []struct {
		in   string
		want V
	}{
		{"NULL", Null},
		{"true", NewBool(true)},
		{"false", NewBool(false)},
		{"42", NewInt(42)},
		{"-7", NewInt(-7)},
		{"2.5", NewFloat(2.5)},
		{"hello", NewString("hello")},
	}
	for _, tc := range tests {
		if got := Parse(tc.in); got != tc.want {
			t.Errorf("Parse(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	f := func(i int64) bool {
		v := NewInt(i)
		return Parse(v.String()) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
