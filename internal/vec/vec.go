// Package vec implements the columnar batch layer of the Skalla engine:
// typed column vectors with null bitmaps, a Batch carrying a
// relation.Schema, conversion shims to and from the row representation,
// and compiled column-programs that evaluate expr conditions over
// selections instead of per-row Eval calls.
//
// The row engine in internal/gmdj stays the reference implementation; the
// vectorized kernels here replicate its value semantics exactly (null
// handling, short-circuit order, integer overflow wrap, float
// accumulation order), so the two engines are byte-exact on success and
// agree on error presence. Anything the kernels cannot express (CASE,
// function calls, mixed-kind columns) reports ErrUnsupported and the
// caller falls back to rows.
package vec

//lint:vecshape exported kernels validate batch/selection shape up front

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/relation"
	"repro/internal/value"
)

// ErrUnsupported reports that a relation or expression cannot be handled
// by the vectorized engine; callers fall back to the row engine.
var ErrUnsupported = errors.New("vec: unsupported by vectorized engine")

// Bitmap is a fixed-length bitmap; bit i tracks lane i of a column or
// selection. The zero value is an empty bitmap of length 0.
type Bitmap struct {
	n    int
	bits []uint64
}

// NewBitmap returns an all-zero bitmap of n lanes.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{n: n, bits: make([]uint64, (n+63)/64)}
}

// Len returns the number of lanes.
func (m *Bitmap) Len() int { return m.n }

// Get reports whether bit i is set.
func (m *Bitmap) Get(i int) bool { return m.bits[i>>6]&(1<<(uint(i)&63)) != 0 }

// Set sets bit i.
func (m *Bitmap) Set(i int) { m.bits[i>>6] |= 1 << (uint(i) & 63) }

// Count returns the number of set bits.
func (m *Bitmap) Count() int {
	c := 0
	for _, w := range m.bits {
		c += bits.OnesCount64(w)
	}
	return c
}

// Col is one typed column vector. Exactly one payload slice is populated,
// selected by Kind: Ints for KindInt and KindBool (0/1), Floats for
// KindFloat, Codes+Dict for dictionary-encoded KindString. Nulls, when
// non-nil, marks NULL lanes (their payload entries are zero values).
type Col struct {
	Kind   value.Kind
	Ints   []int64
	Floats []float64
	Codes  []int32
	Dict   []string
	Nulls  *Bitmap
	// rev maps dictionary strings back to their codes. FromRelation
	// builds it; hand-assembled columns may leave it nil, in which case
	// DictCode falls back to a scan.
	rev map[string]int32
}

// DictCode returns the dictionary code of s, or false when s does not
// occur in the column.
func (c *Col) DictCode(s string) (int32, bool) {
	if c.rev != nil {
		code, ok := c.rev[s]
		return code, ok
	}
	for i, d := range c.Dict {
		if d == s {
			return int32(i), true
		}
	}
	return 0, false
}

// Len returns the number of lanes in the column.
func (c *Col) Len() int {
	switch c.Kind {
	case value.KindFloat:
		return len(c.Floats)
	case value.KindString:
		return len(c.Codes)
	default:
		return len(c.Ints)
	}
}

// IsNull reports whether lane i is NULL.
func (c *Col) IsNull(i int) bool { return c.Nulls != nil && c.Nulls.Get(i) }

// Value boxes lane i back into a value.V. It allocates nothing: string
// lanes share the dictionary backing.
func (c *Col) Value(i int) value.V {
	if c.IsNull(i) {
		return value.Null
	}
	switch c.Kind {
	case value.KindBool:
		return value.V{K: value.KindBool, I: c.Ints[i]}
	case value.KindInt:
		return value.NewInt(c.Ints[i])
	case value.KindFloat:
		return value.NewFloat(c.Floats[i])
	case value.KindString:
		return value.NewString(c.Dict[c.Codes[i]])
	default:
		return value.Null
	}
}

// Batch is a column-major slice of a relation: a schema plus one Col per
// schema column, all of the same lane count.
type Batch struct {
	Schema *relation.Schema
	Cols   []Col
	n      int

	bucketMu sync.Mutex
	// bucketMemo caches equi-key hash buckets per key-column set; the
	// memoized maps are immutable once stored, so concurrent probes
	// share them outside the lock.
	//
	//lint:guarded-by bucketMu
	bucketMemo map[string]map[uint64][]int32
}

// Len returns the number of rows (lanes) in the batch.
func (b *Batch) Len() int { return b.n }

// Check validates the structural invariants of the batch: one column per
// schema column, every payload and null bitmap of the batch's lane count.
// Exported kernels call it (or checkSel) before touching payloads, which
// the vecshape analyzer enforces.
func (b *Batch) Check() error {
	if b.Schema == nil {
		return fmt.Errorf("vec: batch has no schema")
	}
	if len(b.Cols) != b.Schema.Len() {
		return fmt.Errorf("vec: batch has %d columns, schema %s has %d",
			len(b.Cols), b.Schema, b.Schema.Len())
	}
	for i := range b.Cols {
		c := &b.Cols[i]
		if got := c.Len(); got != b.n {
			return fmt.Errorf("vec: column %d (%s) has %d lanes, batch has %d",
				i, b.Schema.Cols[i].Name, got, b.n)
		}
		if c.Nulls != nil && c.Nulls.Len() != b.n {
			return fmt.Errorf("vec: column %d (%s) null bitmap has %d lanes, batch has %d",
				i, b.Schema.Cols[i].Name, c.Nulls.Len(), b.n)
		}
		if c.Kind != b.Schema.Cols[i].Kind {
			return fmt.Errorf("vec: column %d is %s, schema %s declares %s",
				i, c.Kind, b.Schema.Cols[i].Name, b.Schema.Cols[i].Kind)
		}
	}
	return nil
}

// checkSel validates that every selection entry indexes a batch lane.
func (b *Batch) checkSel(sel []int32) error {
	for _, s := range sel {
		if int(s) < 0 || int(s) >= b.n {
			return fmt.Errorf("vec: selection lane %d out of range [0,%d)", s, b.n)
		}
	}
	return nil
}

// FromRelation converts a row relation into a batch. The conversion is
// strict: every value must be NULL or match its column's declared kind
// (a column declared KindNull accepts only NULLs). Mixed-kind columns
// report ErrUnsupported so the caller can fall back to the row engine.
func FromRelation(r *relation.Relation) (*Batch, error) {
	n := len(r.Rows)
	b := &Batch{Schema: r.Schema, Cols: make([]Col, r.Schema.Len()), n: n}
	for ci, sc := range r.Schema.Cols {
		col := &b.Cols[ci]
		col.Kind = sc.Kind
		var dict map[string]int32
		switch sc.Kind {
		case value.KindInt, value.KindBool:
			col.Ints = make([]int64, n)
		case value.KindFloat:
			col.Floats = make([]float64, n)
		case value.KindString:
			col.Codes = make([]int32, n)
			dict = make(map[string]int32)
		case value.KindNull:
			col.Ints = make([]int64, n)
		default:
			return nil, fmt.Errorf("%w: column %s has kind %s", ErrUnsupported, sc.Name, sc.Kind)
		}
		for i, row := range r.Rows {
			v := row[ci]
			if v.IsNull() {
				if col.Nulls == nil {
					col.Nulls = NewBitmap(n)
				}
				col.Nulls.Set(i)
				continue
			}
			if v.K != sc.Kind {
				return nil, fmt.Errorf("%w: column %s declared %s holds %s value",
					ErrUnsupported, sc.Name, sc.Kind, v.K)
			}
			switch sc.Kind {
			case value.KindInt, value.KindBool:
				col.Ints[i] = v.I
			case value.KindFloat:
				col.Floats[i] = v.F
			case value.KindString:
				code, ok := dict[v.S]
				if !ok {
					code = int32(len(col.Dict))
					col.Dict = append(col.Dict, v.S)
					dict[v.S] = code
				}
				col.Codes[i] = code
			}
		}
		col.rev = dict
	}
	return b, nil
}

// ToRelation converts a batch back into a row relation — the reverse half
// of the migration shim, used by tests and row-API consumers.
func ToRelation(b *Batch) (*relation.Relation, error) {
	if err := b.Check(); err != nil {
		return nil, err
	}
	out := relation.New(b.Schema)
	out.Rows = make([]relation.Row, b.n)
	for i := 0; i < b.n; i++ {
		row := make(relation.Row, len(b.Cols))
		for ci := range b.Cols {
			row[ci] = b.Cols[ci].Value(i)
		}
		out.Rows[i] = row
	}
	return out, nil
}

// HashLanes computes, for each selected lane, the chained value hash of
// the key columns — the same chain relation.HashRow produces for the
// corresponding row, so batch-side buckets and row-side probes agree.
// dst must have one entry per selection lane.
func HashLanes(b *Batch, cols []int, sel []int32, dst []uint64) error {
	if err := b.Check(); err != nil {
		return err
	}
	if err := b.checkSel(sel); err != nil {
		return err
	}
	if len(dst) != len(sel) {
		return fmt.Errorf("vec: dst has %d entries, selection has %d", len(dst), len(sel))
	}
	for _, ci := range cols {
		if ci < 0 || ci >= len(b.Cols) {
			return fmt.Errorf("vec: key column %d out of range", ci)
		}
	}
	// Single string key column: hash each dictionary entry once.
	if len(cols) == 1 && b.Cols[cols[0]].Kind == value.KindString {
		c := &b.Cols[cols[0]]
		dictHash := make([]uint64, len(c.Dict))
		for di, s := range c.Dict {
			dictHash[di] = value.UpdateHash(value.HashSeed, value.NewString(s))
		}
		nullHash := value.UpdateHash(value.HashSeed, value.Null)
		for i, lane := range sel {
			if c.IsNull(int(lane)) {
				dst[i] = nullHash
			} else {
				dst[i] = dictHash[c.Codes[lane]]
			}
		}
		return nil
	}
	for i, lane := range sel {
		h := value.HashSeed
		for _, ci := range cols {
			h = value.UpdateHash(h, b.Cols[ci].Value(int(lane)))
		}
		dst[i] = h
	}
	return nil
}

// Buckets returns the hash buckets of the given key columns over every
// lane: bucket lanes stay in scan order, which the byte-exact
// accumulation order of the GMDJ engines depends on. The result is
// memoized on the batch — the site engine caches batches across rounds,
// so repeated rounds and chained operators probing the same key skip
// rehashing — and is never mutated after it is built, so concurrent
// probes share it safely.
func (b *Batch) Buckets(cols []int) (map[uint64][]int32, error) {
	if err := b.Check(); err != nil {
		return nil, err
	}
	key := fmt.Sprint(cols)
	b.bucketMu.Lock()
	defer b.bucketMu.Unlock()
	if m, ok := b.bucketMemo[key]; ok {
		return m, nil
	}
	sel := make([]int32, b.n)
	for i := range sel {
		sel[i] = int32(i)
	}
	hashes := make([]uint64, b.n)
	if err := HashLanes(b, cols, sel, hashes); err != nil {
		return nil, err
	}
	m := make(map[uint64][]int32, b.n)
	for lane, h := range hashes {
		m[h] = append(m[h], int32(lane))
	}
	if b.bucketMemo == nil {
		b.bucketMemo = make(map[string]map[uint64][]int32)
	}
	b.bucketMemo[key] = m
	return m, nil
}
