package vec

//lint:deterministic vectorized evaluation must match the row engine byte for byte
//lint:vecshape exported kernels validate batch/selection shape up front

import (
	"fmt"
	"math"

	"repro/internal/expr"
	"repro/internal/relation"
	"repro/internal/value"
)

// Stats counts kernel work for the vec.* observability counters: Batches
// is the number of kernel-batch evaluations, Rows the lanes scanned
// through them, Selected the lanes that survived condition filters.
type Stats struct {
	Batches    int64
	Rows       int64
	FilterRows int64
	Selected   int64
}

// Lanes is the result of evaluating a program node over a selection: a
// dense vector of len N, either a broadcast constant (Const/ConstV) or a
// typed payload in the same layout as Col, with Nulls marking NULL lanes
// (nil when none). Payload slices are scratch owned by the program and
// valid until its next evaluation.
type Lanes struct {
	Kind   value.Kind
	N      int
	Ints   []int64
	Floats []float64
	Codes  []int32
	Dict   []string
	Nulls  []bool
	Const  bool
	ConstV value.V

	nullBuf []bool
}

// Value boxes lane i of the vector.
func (l *Lanes) Value(i int) value.V {
	if l.Const {
		return l.ConstV
	}
	if l.Nulls != nil && l.Nulls[i] {
		return value.Null
	}
	switch l.Kind {
	case value.KindBool:
		return value.V{K: value.KindBool, I: l.Ints[i]}
	case value.KindInt:
		return value.NewInt(l.Ints[i])
	case value.KindFloat:
		return value.NewFloat(l.Floats[i])
	case value.KindString:
		return value.NewString(l.Dict[l.Codes[i]])
	default:
		return value.Null
	}
}

func (l *Lanes) isNull(i int) bool {
	if l.Const {
		return l.ConstV.IsNull()
	}
	return l.Kind == value.KindNull || (l.Nulls != nil && l.Nulls[i])
}

// truthy reports SQL WHERE truthiness of lane i, matching value.V.Bool.
func (l *Lanes) truthy(i int) bool {
	if l.Const {
		return l.ConstV.Bool()
	}
	if l.isNull(i) {
		return false
	}
	switch l.Kind {
	case value.KindBool, value.KindInt:
		return l.Ints[i] != 0
	case value.KindFloat:
		return l.Floats[i] != 0
	default:
		return false
	}
}

func (l *Lanes) effKind() value.Kind {
	if l.Const {
		return l.ConstV.K
	}
	return l.Kind
}

func growI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growB(s []bool, n int) []bool {
	if cap(s) < n {
		s = make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// reset prepares the scratch vector for n lanes of the given kind.
func (l *Lanes) reset(kind value.Kind, n int) {
	l.Kind, l.N, l.Const, l.Nulls, l.ConstV = kind, n, false, nil, value.Null
	l.Codes, l.Dict = nil, nil
	switch kind {
	case value.KindBool, value.KindInt:
		l.Ints = growI64(l.Ints, n)
	case value.KindFloat:
		l.Floats = growF64(l.Floats, n)
	}
}

func (l *Lanes) setConst(v value.V, n int) *Lanes {
	l.Kind, l.N, l.Const, l.ConstV, l.Nulls = v.K, n, true, v, nil
	return l
}

// node is one compiled operator; eval produces the node's vector over the
// selected batch lanes. Nodes own their output scratch, so a Program must
// not be shared across goroutines.
type node interface {
	eval(p *Program, sel []int32) (*Lanes, error)
}

// Program is a column-program: an expr condition or scalar compiled
// against one batch for repeated masked evaluation. A Program is bound to
// a single base row at a time via SetBase and is not safe for concurrent
// use; parallel evaluators compile one Program per worker.
type Program struct {
	batch  *Batch
	root   node
	bounds []*expr.Bound
	slots  []scalarSlot
	base   relation.Row
	stats  *Stats
}

type scalarSlot struct {
	done bool
	v    value.V
	err  error
}

// chunkLanes bounds per-node scratch: selections are evaluated in
// segments of at most this many lanes.
const chunkLanes = 4096

// Compile builds a column-program for e over batch b using the binding's
// detail side for column references; detail-free subtrees (constants and
// base-side references) become per-base-row scalars. Expressions the
// kernels cannot express report ErrUnsupported.
func Compile(e expr.Expr, bd expr.Binding, b *Batch) (*Program, error) {
	if err := b.Check(); err != nil {
		return nil, err
	}
	p := &Program{batch: b}
	root, err := p.compile(e, bd)
	if err != nil {
		return nil, err
	}
	p.root = root
	p.slots = make([]scalarSlot, len(p.bounds))
	return p, nil
}

// SetBase binds the program to a base row, invalidating cached scalar
// subtree results from the previous row.
func (p *Program) SetBase(base relation.Row) {
	p.base = base
	for i := range p.slots {
		p.slots[i] = scalarSlot{}
	}
}

// SetStats directs kernel work counters to s (nil disables counting).
func (p *Program) SetStats(s *Stats) { p.stats = s }

func (p *Program) scalarValue(slot int) (value.V, error) {
	s := &p.slots[slot]
	if !s.done {
		s.v, s.err = p.bounds[slot].Eval(p.base, nil)
		s.done = true
	}
	return s.v, s.err
}

func (p *Program) countFilter(scanned, selected int) {
	if p.stats != nil {
		p.stats.Batches++
		p.stats.Rows += int64(scanned)
		p.stats.FilterRows += int64(scanned)
		p.stats.Selected += int64(selected)
	}
}

func (p *Program) countEval(scanned int) {
	if p.stats != nil {
		p.stats.Batches++
		p.stats.Rows += int64(scanned)
	}
}

// Filter evaluates the program as a predicate over the selected lanes and
// appends the truthy lanes to dst, preserving selection order. NULL
// results are false, as in SQL WHERE semantics.
func (p *Program) Filter(sel, dst []int32) ([]int32, error) {
	if err := p.batch.checkSel(sel); err != nil {
		return nil, err
	}
	// Constant-true residuals (the common equi-join case) select
	// everything without touching the kernels.
	if c, ok := p.root.(*constNode); ok {
		n := 0
		if c.v.Bool() {
			dst = append(dst, sel...)
			n = len(sel)
		}
		p.countFilter(len(sel), n)
		return dst, nil
	}
	for start := 0; start < len(sel); start += chunkLanes {
		end := start + chunkLanes
		if end > len(sel) {
			end = len(sel)
		}
		seg := sel[start:end]
		out, err := p.root.eval(p, seg)
		if err != nil {
			return nil, err
		}
		picked := 0
		for i := range seg {
			if out.truthy(i) {
				dst = append(dst, seg[i])
				picked++
			}
		}
		p.countFilter(len(seg), picked)
	}
	return dst, nil
}

// EvalEach evaluates the program as a scalar expression over the selected
// lanes in segments, invoking fn once per segment with the resulting
// vector. The vector is scratch: fn must consume it before returning.
func (p *Program) EvalEach(sel []int32, fn func(*Lanes) error) error {
	if err := p.batch.checkSel(sel); err != nil {
		return err
	}
	for start := 0; start < len(sel); start += chunkLanes {
		end := start + chunkLanes
		if end > len(sel) {
			end = len(sel)
		}
		seg := sel[start:end]
		out, err := p.root.eval(p, seg)
		if err != nil {
			return err
		}
		p.countEval(len(seg))
		if err := fn(out); err != nil {
			return err
		}
	}
	return nil
}

func (p *Program) compile(e expr.Expr, bd expr.Binding) (node, error) {
	// Subtrees that never read the detail side evaluate once per base row
	// through the row-engine evaluator itself, so scalar semantics
	// (including error behavior) are identical by construction.
	if _, detail := expr.SidesUsed(e, bd); !detail {
		if c, ok := e.(expr.Const); ok {
			return &constNode{v: c.Val}, nil
		}
		bound, err := expr.Bind(e, bd)
		if err != nil {
			return nil, err
		}
		slot := len(p.bounds)
		p.bounds = append(p.bounds, bound)
		return &scalarNode{slot: slot}, nil
	}
	switch n := e.(type) {
	case expr.Col:
		side, ok := bd.SideOf(n)
		if !ok || side != expr.SideDetail {
			// Mirror the row binder's error for unknown/ambiguous columns.
			if _, err := expr.Bind(e, bd); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("%w: non-detail column %s in detail subtree", ErrUnsupported, n)
		}
		idx, err := p.batch.Schema.MustLookup(n.Name)
		if err != nil {
			return nil, err
		}
		return &colNode{col: idx}, nil

	case expr.Unary:
		x, err := p.compile(n.X, bd)
		if err != nil {
			return nil, err
		}
		if n.Op == "NOT" {
			return &notNode{x: x}, nil
		}
		return &negNode{x: x}, nil

	case expr.Binary:
		l, err := p.compile(n.L, bd)
		if err != nil {
			return nil, err
		}
		r, err := p.compile(n.R, bd)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case "AND", "OR":
			return &logicNode{and: n.Op == "AND", l: l, r: r}, nil
		case "=", "!=", "<", "<=", ">", ">=":
			cn := &cmpNode{l: l, r: r}
			switch n.Op {
			case "=":
				cn.eqOK = true
			case "!=":
				cn.ltOK, cn.gtOK = true, true
			case "<":
				cn.ltOK = true
			case "<=":
				cn.ltOK, cn.eqOK = true, true
			case ">":
				cn.gtOK = true
			case ">=":
				cn.gtOK, cn.eqOK = true, true
			}
			return cn, nil
		case "+", "-", "*", "/", "%":
			return &arithNode{op: n.Op[0], l: l, r: r}, nil
		default:
			return nil, fmt.Errorf("expr: unknown operator %q", n.Op)
		}

	case expr.InList:
		x, err := p.compile(n.X, bd)
		if err != nil {
			return nil, err
		}
		in := &inNode{x: x, neg: n.Neg,
			ints: make(map[int64]struct{}),
			fbit: make(map[uint64]struct{}),
			strs: make(map[string]struct{}),
		}
		for _, v := range n.Vals {
			switch v.K {
			case value.KindBool, value.KindInt:
				in.ints[v.I] = struct{}{}
			case value.KindFloat:
				if iv, ok := integralKey(v.F); ok {
					in.ints[iv] = struct{}{}
				} else if math.IsNaN(v.F) {
					in.hasNaN = true
				} else {
					in.fbit[math.Float64bits(v.F)] = struct{}{}
				}
			case value.KindString:
				in.strs[v.S] = struct{}{}
			}
		}
		return in, nil

	case expr.Like:
		x, err := p.compile(n.X, bd)
		if err != nil {
			return nil, err
		}
		return &likeNode{x: x, pattern: n.Pattern, neg: n.Neg}, nil

	case expr.Between:
		x, err := p.compile(n.X, bd)
		if err != nil {
			return nil, err
		}
		lo, err := p.compile(n.Lo, bd)
		if err != nil {
			return nil, err
		}
		hi, err := p.compile(n.Hi, bd)
		if err != nil {
			return nil, err
		}
		return &betweenNode{x: x, lo: lo, hi: hi, neg: n.Neg}, nil

	case expr.Const:
		return &constNode{v: n.Val}, nil

	case expr.Case, expr.Call:
		return nil, fmt.Errorf("%w: %T", ErrUnsupported, e)
	}
	return nil, fmt.Errorf("expr: cannot compile %T", e)
}

// integralKey mirrors value.V.Key's integral-float classification: floats
// that Key renders as integers return their int64 form.
func integralKey(f float64) (int64, bool) {
	if f == math.Trunc(f) && !math.IsInf(f, 0) &&
		f >= math.MinInt64 && f <= math.MaxInt64 {
		return int64(f), true
	}
	return 0, false
}

func numericish(k value.Kind) bool {
	return k == value.KindBool || k == value.KindInt || k == value.KindFloat
}

// floatLanes materializes the vector as float64 lanes into scratch (bool
// and int lanes convert; const broadcasts). Null lanes hold 0.
func floatLanes(l *Lanes, n int, scratch []float64) []float64 {
	scratch = growF64(scratch, n)
	if l.Const {
		f, _ := l.ConstV.AsFloat()
		for i := range scratch {
			scratch[i] = f
		}
		return scratch
	}
	if l.Kind == value.KindFloat {
		copy(scratch, l.Floats)
		return scratch
	}
	for i := 0; i < n; i++ {
		scratch[i] = float64(l.Ints[i])
	}
	return scratch
}

// intLanes materializes the vector as int64 lanes, using value.AsInt
// truncation for float lanes (the %% operator's semantics).
func intLanes(l *Lanes, n int, scratch []int64) []int64 {
	scratch = growI64(scratch, n)
	if l.Const {
		iv, _ := l.ConstV.AsInt()
		for i := range scratch {
			scratch[i] = iv
		}
		return scratch
	}
	if l.Kind == value.KindFloat {
		for i := 0; i < n; i++ {
			scratch[i] = int64(l.Floats[i])
		}
		return scratch
	}
	copy(scratch, l.Ints)
	return scratch
}

// rawIntLanes materializes int64 lanes for +,-,* over integral kinds,
// which read the int payload directly.
func rawIntLanes(l *Lanes, n int, scratch []int64) []int64 {
	scratch = growI64(scratch, n)
	if l.Const {
		for i := range scratch {
			scratch[i] = l.ConstV.I
		}
		return scratch
	}
	copy(scratch, l.Ints)
	return scratch
}

func laneStr(l *Lanes, i int) string {
	if l.Const {
		return l.ConstV.S
	}
	return l.Dict[l.Codes[i]]
}

// nullLanes merges the null masks of both operands into scratch; the
// second result reports whether any lane is null.
func nullLanes(l, r *Lanes, n int, scratch []bool) ([]bool, bool) {
	scratch = growB(scratch, n)
	any := false
	for i := 0; i < n; i++ {
		if l.isNull(i) || r.isNull(i) {
			scratch[i] = true
			any = true
		}
	}
	return scratch, any
}

type constNode struct {
	v   value.V
	out Lanes
}

func (n *constNode) eval(_ *Program, sel []int32) (*Lanes, error) {
	return n.out.setConst(n.v, len(sel)), nil
}

type scalarNode struct {
	slot int
	out  Lanes
}

func (n *scalarNode) eval(p *Program, sel []int32) (*Lanes, error) {
	v, err := p.scalarValue(n.slot)
	if err != nil {
		return nil, err
	}
	return n.out.setConst(v, len(sel)), nil
}

type colNode struct {
	col int
	out Lanes
}

func (n *colNode) eval(p *Program, sel []int32) (*Lanes, error) {
	c := &p.batch.Cols[n.col]
	ln := len(sel)
	out := &n.out
	out.reset(c.Kind, ln)
	switch c.Kind {
	case value.KindBool, value.KindInt:
		for i, lane := range sel {
			out.Ints[i] = c.Ints[lane]
		}
	case value.KindFloat:
		for i, lane := range sel {
			out.Floats[i] = c.Floats[lane]
		}
	case value.KindString:
		out.Codes = growI32(out.Codes, ln)
		for i, lane := range sel {
			out.Codes[i] = c.Codes[lane]
		}
		out.Dict = c.Dict
	}
	if c.Nulls != nil {
		nulls := growB(out.nullBuf, ln)
		any := false
		for i, lane := range sel {
			if c.Nulls.Get(int(lane)) {
				nulls[i] = true
				any = true
			}
		}
		out.nullBuf = nulls
		if any {
			out.Nulls = nulls
		}
	}
	return out, nil
}

type notNode struct {
	x   node
	out Lanes
}

func (n *notNode) eval(p *Program, sel []int32) (*Lanes, error) {
	x, err := n.x.eval(p, sel)
	if err != nil {
		return nil, err
	}
	ln := len(sel)
	if x.Const {
		return n.out.setConst(value.NewBool(!x.ConstV.Bool()), ln), nil
	}
	out := &n.out
	out.reset(value.KindBool, ln)
	for i := 0; i < ln; i++ {
		if x.truthy(i) {
			out.Ints[i] = 0
		} else {
			out.Ints[i] = 1
		}
	}
	return out, nil
}

type negNode struct {
	x   node
	out Lanes
}

func (n *negNode) eval(p *Program, sel []int32) (*Lanes, error) {
	x, err := n.x.eval(p, sel)
	if err != nil {
		return nil, err
	}
	ln := len(sel)
	out := &n.out
	if x.Const {
		v, err := value.Neg(x.ConstV)
		if err != nil {
			return nil, err
		}
		return out.setConst(v, ln), nil
	}
	switch x.Kind {
	case value.KindNull:
		return out.setConst(value.Null, ln), nil
	case value.KindInt:
		out.reset(value.KindInt, ln)
		for i := 0; i < ln; i++ {
			out.Ints[i] = -x.Ints[i]
		}
		out.Nulls = x.Nulls
	case value.KindFloat:
		out.reset(value.KindFloat, ln)
		for i := 0; i < ln; i++ {
			out.Floats[i] = -x.Floats[i]
		}
		out.Nulls = x.Nulls
	default:
		// BOOL and STRING lanes: NULL negates to NULL, anything else is
		// the row engine's error.
		for i := 0; i < ln; i++ {
			if !x.isNull(i) {
				_, err := value.Neg(x.Value(i))
				return nil, err
			}
		}
		return out.setConst(value.Null, ln), nil
	}
	return out, nil
}

type logicNode struct {
	and    bool
	l, r   node
	out    Lanes
	subsel []int32
	subpos []int32
}

func (n *logicNode) eval(p *Program, sel []int32) (*Lanes, error) {
	l, err := n.l.eval(p, sel)
	if err != nil {
		return nil, err
	}
	ln := len(sel)
	if l.Const {
		lt := l.ConstV.Bool()
		// Short-circuit: AND with false left (OR with true left) never
		// evaluates the right child, exactly like the row engine.
		if n.and && !lt {
			return n.out.setConst(value.NewBool(false), ln), nil
		}
		if !n.and && lt {
			return n.out.setConst(value.NewBool(true), ln), nil
		}
		r, err := n.r.eval(p, sel)
		if err != nil {
			return nil, err
		}
		if r.Const {
			return n.out.setConst(value.NewBool(r.ConstV.Bool()), ln), nil
		}
		out := &n.out
		out.reset(value.KindBool, ln)
		for i := 0; i < ln; i++ {
			if r.truthy(i) {
				out.Ints[i] = 1
			} else {
				out.Ints[i] = 0
			}
		}
		return out, nil
	}
	// Masked evaluation: the right child sees only the lanes the left
	// child did not decide, preserving row-engine short-circuit (and
	// therefore error) behavior.
	n.subsel = n.subsel[:0]
	n.subpos = n.subpos[:0]
	for i := 0; i < ln; i++ {
		if l.truthy(i) == n.and {
			n.subsel = append(n.subsel, sel[i])
			n.subpos = append(n.subpos, int32(i))
		}
	}
	out := &n.out
	// The left result may live in a descendant's scratch that the right
	// child's evaluation reuses, so decide left lanes before recursing.
	out.reset(value.KindBool, ln)
	base := int64(0)
	if !n.and {
		base = 1
	}
	for i := 0; i < ln; i++ {
		out.Ints[i] = base
	}
	if len(n.subsel) == 0 {
		return out, nil
	}
	r, err := n.r.eval(p, n.subsel)
	if err != nil {
		return nil, err
	}
	for k, pos := range n.subpos {
		if r.truthy(k) {
			out.Ints[pos] = 1
		} else {
			out.Ints[pos] = 0
		}
	}
	return out, nil
}

type cmpNode struct {
	l, r             node
	ltOK, eqOK, gtOK bool
	out              Lanes
	lf, rf           []float64
	li, ri           []int64
}

func (n *cmpNode) ok(c int) bool {
	switch {
	case c < 0:
		return n.ltOK
	case c > 0:
		return n.gtOK
	default:
		return n.eqOK
	}
}

func (n *cmpNode) eval(p *Program, sel []int32) (*Lanes, error) {
	l, err := n.l.eval(p, sel)
	if err != nil {
		return nil, err
	}
	r, err := n.r.eval(p, sel)
	if err != nil {
		return nil, err
	}
	ln := len(sel)
	if l.Const && r.Const {
		if l.ConstV.IsNull() || r.ConstV.IsNull() {
			return n.out.setConst(value.NewBool(false), ln), nil
		}
		c, err := value.Compare(l.ConstV, r.ConstV)
		if err != nil {
			return nil, err
		}
		return n.out.setConst(value.NewBool(n.ok(c)), ln), nil
	}
	out := &n.out
	out.reset(value.KindBool, ln)
	lk, rk := l.effKind(), r.effKind()
	switch {
	case lk == value.KindNull || rk == value.KindNull:
		// One side is all-NULL: every comparison is false.
		for i := 0; i < ln; i++ {
			out.Ints[i] = 0
		}
	case numericish(lk) && numericish(rk):
		if lk == value.KindFloat || rk == value.KindFloat {
			n.lf = floatLanes(l, ln, n.lf)
			n.rf = floatLanes(r, ln, n.rf)
			lf, rf := n.lf, n.rf
			for i := 0; i < ln; i++ {
				if l.isNull(i) || r.isNull(i) {
					out.Ints[i] = 0
					continue
				}
				c := 0
				switch {
				case lf[i] < rf[i]:
					c = -1
				case lf[i] > rf[i]:
					c = 1
				}
				if n.ok(c) {
					out.Ints[i] = 1
				} else {
					out.Ints[i] = 0
				}
			}
		} else {
			n.li = rawIntLanes(l, ln, n.li)
			n.ri = rawIntLanes(r, ln, n.ri)
			li, ri := n.li, n.ri
			for i := 0; i < ln; i++ {
				if l.isNull(i) || r.isNull(i) {
					out.Ints[i] = 0
					continue
				}
				c := 0
				switch {
				case li[i] < ri[i]:
					c = -1
				case li[i] > ri[i]:
					c = 1
				}
				if n.ok(c) {
					out.Ints[i] = 1
				} else {
					out.Ints[i] = 0
				}
			}
		}
	case lk == value.KindString && rk == value.KindString:
		for i := 0; i < ln; i++ {
			if l.isNull(i) || r.isNull(i) {
				out.Ints[i] = 0
				continue
			}
			ls, rs := laneStr(l, i), laneStr(r, i)
			c := 0
			switch {
			case ls < rs:
				c = -1
			case ls > rs:
				c = 1
			}
			if n.ok(c) {
				out.Ints[i] = 1
			} else {
				out.Ints[i] = 0
			}
		}
	default:
		// String vs number: NULL lanes are false, the first lane with
		// both sides non-NULL raises the row engine's compare error.
		for i := 0; i < ln; i++ {
			if l.isNull(i) || r.isNull(i) {
				out.Ints[i] = 0
				continue
			}
			_, err := value.Compare(l.Value(i), r.Value(i))
			return nil, err
		}
	}
	return out, nil
}

type arithNode struct {
	op     byte // + - * / %
	l, r   node
	out    Lanes
	lf, rf []float64
	li, ri []int64
	nulls  []bool
}

func (n *arithNode) apply(a, b value.V) (value.V, error) {
	switch n.op {
	case '+':
		return value.Add(a, b)
	case '-':
		return value.Sub(a, b)
	case '*':
		return value.Mul(a, b)
	case '/':
		return value.Div(a, b)
	default:
		return value.Mod(a, b)
	}
}

func (n *arithNode) eval(p *Program, sel []int32) (*Lanes, error) {
	l, err := n.l.eval(p, sel)
	if err != nil {
		return nil, err
	}
	r, err := n.r.eval(p, sel)
	if err != nil {
		return nil, err
	}
	ln := len(sel)
	out := &n.out
	if l.Const && r.Const {
		v, err := n.apply(l.ConstV, r.ConstV)
		if err != nil {
			return nil, err
		}
		return out.setConst(v, ln), nil
	}
	lk, rk := l.effKind(), r.effKind()
	if lk == value.KindNull || rk == value.KindNull {
		// NULL propagates before any numeric check.
		return out.setConst(value.Null, ln), nil
	}
	if lk == value.KindString || rk == value.KindString {
		// NULL lanes still yield NULL; the first lane with both sides
		// non-NULL raises the row engine's non-numeric error.
		for i := 0; i < ln; i++ {
			if !l.isNull(i) && !r.isNull(i) {
				_, err := n.apply(l.Value(i), r.Value(i))
				return nil, err
			}
		}
		return out.setConst(value.Null, ln), nil
	}
	nulls, anyNull := nullLanes(l, r, ln, n.nulls)
	n.nulls = nulls
	switch n.op {
	case '%':
		n.li = intLanes(l, ln, n.li)
		n.ri = intLanes(r, ln, n.ri)
		li, ri := n.li, n.ri
		out.reset(value.KindInt, ln)
		for i := 0; i < ln; i++ {
			if nulls[i] {
				out.Ints[i] = 0
				continue
			}
			if ri[i] == 0 {
				nulls[i] = true
				anyNull = true
				out.Ints[i] = 0
				continue
			}
			out.Ints[i] = li[i] % ri[i]
		}
	case '/':
		n.lf = floatLanes(l, ln, n.lf)
		n.rf = floatLanes(r, ln, n.rf)
		lf, rf := n.lf, n.rf
		out.reset(value.KindFloat, ln)
		for i := 0; i < ln; i++ {
			if nulls[i] {
				out.Floats[i] = 0
				continue
			}
			if rf[i] == 0 {
				nulls[i] = true
				anyNull = true
				out.Floats[i] = 0
				continue
			}
			out.Floats[i] = lf[i] / rf[i]
		}
	default:
		if lk == value.KindFloat || rk == value.KindFloat {
			n.lf = floatLanes(l, ln, n.lf)
			n.rf = floatLanes(r, ln, n.rf)
			lf, rf := n.lf, n.rf
			out.reset(value.KindFloat, ln)
			switch n.op {
			case '+':
				for i := 0; i < ln; i++ {
					out.Floats[i] = lf[i] + rf[i]
				}
			case '-':
				for i := 0; i < ln; i++ {
					out.Floats[i] = lf[i] - rf[i]
				}
			case '*':
				for i := 0; i < ln; i++ {
					out.Floats[i] = lf[i] * rf[i]
				}
			}
		} else {
			n.li = rawIntLanes(l, ln, n.li)
			n.ri = rawIntLanes(r, ln, n.ri)
			li, ri := n.li, n.ri
			out.reset(value.KindInt, ln)
			switch n.op {
			case '+':
				for i := 0; i < ln; i++ {
					out.Ints[i] = li[i] + ri[i]
				}
			case '-':
				for i := 0; i < ln; i++ {
					out.Ints[i] = li[i] - ri[i]
				}
			case '*':
				for i := 0; i < ln; i++ {
					out.Ints[i] = li[i] * ri[i]
				}
			}
		}
	}
	if anyNull {
		out.Nulls = nulls
	}
	return out, nil
}

type inNode struct {
	x      node
	ints   map[int64]struct{}
	fbit   map[uint64]struct{}
	strs   map[string]struct{}
	hasNaN bool
	neg    bool
	out    Lanes
}

// contains mirrors the row engine's Key()-based membership test for a
// non-NULL value.
func (n *inNode) contains(v value.V) bool {
	switch v.K {
	case value.KindBool, value.KindInt:
		_, in := n.ints[v.I]
		return in
	case value.KindFloat:
		if iv, ok := integralKey(v.F); ok {
			_, in := n.ints[iv]
			return in
		}
		if math.IsNaN(v.F) {
			return n.hasNaN
		}
		_, in := n.fbit[math.Float64bits(v.F)]
		return in
	case value.KindString:
		_, in := n.strs[v.S]
		return in
	default:
		return false
	}
}

func (n *inNode) eval(p *Program, sel []int32) (*Lanes, error) {
	x, err := n.x.eval(p, sel)
	if err != nil {
		return nil, err
	}
	ln := len(sel)
	if x.Const {
		if x.ConstV.IsNull() {
			return n.out.setConst(value.NewBool(false), ln), nil
		}
		return n.out.setConst(value.NewBool(n.contains(x.ConstV) != n.neg), ln), nil
	}
	out := &n.out
	out.reset(value.KindBool, ln)
	for i := 0; i < ln; i++ {
		if x.isNull(i) {
			out.Ints[i] = 0
			continue
		}
		if n.contains(x.Value(i)) != n.neg {
			out.Ints[i] = 1
		} else {
			out.Ints[i] = 0
		}
	}
	return out, nil
}

type likeNode struct {
	x       node
	pattern string
	neg     bool
	out     Lanes
	match   []bool // lazily computed per dictionary entry
}

func (n *likeNode) eval(p *Program, sel []int32) (*Lanes, error) {
	x, err := n.x.eval(p, sel)
	if err != nil {
		return nil, err
	}
	ln := len(sel)
	if x.Const {
		v := x.ConstV
		if v.IsNull() {
			return n.out.setConst(value.NewBool(false), ln), nil
		}
		if v.K != value.KindString {
			return nil, fmt.Errorf("expr: LIKE on %s value", v.K)
		}
		return n.out.setConst(value.NewBool(expr.LikeMatch(v.S, n.pattern) != n.neg), ln), nil
	}
	if x.Kind != value.KindString {
		// NULL lanes are false; any non-NULL lane raises the row
		// engine's LIKE type error.
		for i := 0; i < ln; i++ {
			if !x.isNull(i) {
				return nil, fmt.Errorf("expr: LIKE on %s value", x.Kind)
			}
		}
		out := &n.out
		out.reset(value.KindBool, ln)
		return out, nil
	}
	// The program is bound to one batch, so the column dictionary is
	// stable: match the pattern once per dictionary entry.
	if len(n.match) != len(x.Dict) {
		n.match = make([]bool, len(x.Dict))
		for di, s := range x.Dict {
			n.match[di] = expr.LikeMatch(s, n.pattern)
		}
	}
	out := &n.out
	out.reset(value.KindBool, ln)
	for i := 0; i < ln; i++ {
		if x.isNull(i) {
			out.Ints[i] = 0
			continue
		}
		if n.match[x.Codes[i]] != n.neg {
			out.Ints[i] = 1
		} else {
			out.Ints[i] = 0
		}
	}
	return out, nil
}

type betweenNode struct {
	x, lo, hi node
	neg       bool
	out       Lanes
}

func (n *betweenNode) eval(p *Program, sel []int32) (*Lanes, error) {
	x, err := n.x.eval(p, sel)
	if err != nil {
		return nil, err
	}
	lo, err := n.lo.eval(p, sel)
	if err != nil {
		return nil, err
	}
	hi, err := n.hi.eval(p, sel)
	if err != nil {
		return nil, err
	}
	ln := len(sel)
	out := &n.out
	if x.Const && lo.Const && hi.Const {
		v, err := betweenOne(x.ConstV, lo.ConstV, hi.ConstV, n.neg)
		if err != nil {
			return nil, err
		}
		return out.setConst(v, ln), nil
	}
	out.reset(value.KindBool, ln)
	for i := 0; i < ln; i++ {
		v, err := betweenOne(x.Value(i), lo.Value(i), hi.Value(i), n.neg)
		if err != nil {
			return nil, err
		}
		out.Ints[i] = v.I
	}
	return out, nil
}

func betweenOne(xv, lov, hiv value.V, neg bool) (value.V, error) {
	if xv.IsNull() || lov.IsNull() || hiv.IsNull() {
		return value.NewBool(false), nil
	}
	c1, err := value.Compare(lov, xv)
	if err != nil {
		return value.Null, err
	}
	c2, err := value.Compare(xv, hiv)
	if err != nil {
		return value.Null, err
	}
	return value.NewBool((c1 <= 0 && c2 <= 0) != neg), nil
}
