package core

//lint:deterministic checkpoint encoding must be byte-identical run to run
//lint:wrap-errors checkpoint I/O failures must stay inspectable with errors.Is/As

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/relation"
	"repro/internal/value"
)

// Checkpoint is the durable state of one execution after a completed
// synchronization round: the merged base-result structure X plus the
// statistics of every completed round. Theorem 2 is what makes round
// checkpoints cheap — X carries only base rows and aggregate state, never
// detail data, so the full recovery state of a round is the same small
// structure that crosses the wire anyway.
type Checkpoint struct {
	// Epoch identifies the execution (see PlanEpoch).
	Epoch string
	// Done counts completed synchronization rounds (the base round, when
	// the plan has one, counts as round 0).
	Done int
	// X is the base-result structure after round Done-1.
	X *relation.Relation
	// Rounds are the statistics of the completed rounds, so a resumed
	// execution reports the same totals as an uninterrupted one.
	Rounds []RoundStats
}

// CheckpointStore persists round checkpoints keyed by epoch. A store may
// hold checkpoints for many epochs at once (several coordinators sharing
// a directory); Save overwrites the epoch's previous checkpoint.
type CheckpointStore interface {
	Save(cp *Checkpoint) error
	// Load returns the epoch's checkpoint, or (nil, nil) when there is
	// none.
	Load(epoch string) (*Checkpoint, error)
	// Clear removes the epoch's checkpoint; clearing an absent epoch is
	// not an error.
	Clear(epoch string) error
}

// PlanEpoch derives the execution epoch from the plan itself: an FNV-64a
// hash over a deterministic rendering of everything that shapes the
// per-round exchanges. A restarted coordinator that rebuilds the same
// plan computes the same epoch and therefore finds its own checkpoint —
// no coordination or persistent counter needed. Two different plans
// colliding is harmless in the wrong direction only if they also agree
// on every round's request shape, which the site-side replay fingerprint
// re-checks.
func PlanEpoch(p *Plan) string {
	h := fnv.New64a()
	w := func(parts ...string) {
		for _, s := range parts {
			h.Write([]byte(s))
			h.Write([]byte{0})
		}
	}
	w("detail", p.Detail)
	w("keys", strings.Join(p.Keys, ","))
	w("base", fmt.Sprint(p.BaseRound), strings.Join(p.Query.Base.Cols, ","), whereText(p.Query.Base.Where))
	for _, md := range p.Query.MDs {
		for i, theta := range md.Thetas {
			w("theta", theta.String())
			for _, s := range md.Aggs[i] {
				w("agg", s.String())
			}
		}
	}
	for _, st := range p.Steps {
		w("step", fmt.Sprint(st.MDs), fmt.Sprint(st.FuseBase))
	}
	w("touched", fmt.Sprint(p.Touched))
	sites := make([]string, 0, len(p.SiteFilters))
	for site := range p.SiteFilters {
		//lint:ignore detrand keys are sorted immediately below, before hashing
		sites = append(sites, site)
	}
	sort.Strings(sites)
	for _, site := range sites {
		for step, f := range p.SiteFilters[site] {
			if f != nil {
				w("filter", site, fmt.Sprint(step), f.String())
			}
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Checkpoint wire shape. Durations and site lists follow the statsjson
// conventions (integer nanoseconds, sorted sites) so checkpoints encode
// byte-identically run to run.
type checkpointJSON struct {
	Epoch  string           `json:"epoch"`
	Done   int              `json:"done"`
	X      *relationJSON    `json:"x"`
	Rounds []roundStatsJSON `json:"rounds"`
}

type relationJSON struct {
	Cols []columnJSON `json:"cols"`
	Rows [][]ckptVal  `json:"rows"`
}

type columnJSON struct {
	Name string `json:"name"`
	Kind uint8  `json:"kind"`
}

// ckptVal is the JSON shape of one value.V: the kind plus whichever
// payload field the kind selects (the others stay at their zero values
// and are omitted).
type ckptVal struct {
	K uint8   `json:"k"`
	I int64   `json:"i,omitempty"`
	F float64 `json:"f,omitempty"`
	S string  `json:"s,omitempty"`
}

// EncodeCheckpoint renders cp as deterministic JSON.
func EncodeCheckpoint(cp *Checkpoint) ([]byte, error) {
	out := checkpointJSON{Epoch: cp.Epoch, Done: cp.Done}
	if cp.X != nil {
		r, err := relToJSON(cp.X)
		if err != nil {
			return nil, err
		}
		out.X = r
	}
	out.Rounds = make([]roundStatsJSON, 0, len(cp.Rounds))
	for _, rs := range cp.Rounds {
		out.Rounds = append(out.Rounds, roundToJSON(rs))
	}
	return json.MarshalIndent(out, "", "  ")
}

// DecodeCheckpoint parses EncodeCheckpoint's output.
func DecodeCheckpoint(b []byte) (*Checkpoint, error) {
	var in checkpointJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return nil, fmt.Errorf("core: parse checkpoint: %w", err)
	}
	cp := &Checkpoint{Epoch: in.Epoch, Done: in.Done}
	if in.X != nil {
		x, err := relFromJSON(in.X)
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint X: %w", err)
		}
		cp.X = x
	}
	for _, jr := range in.Rounds {
		cp.Rounds = append(cp.Rounds, roundFromJSON(jr))
	}
	return cp, nil
}

func relToJSON(r *relation.Relation) (*relationJSON, error) {
	if r.Schema == nil {
		return nil, fmt.Errorf("core: checkpoint relation has no schema")
	}
	out := &relationJSON{Cols: make([]columnJSON, len(r.Schema.Cols))}
	for i, c := range r.Schema.Cols {
		out.Cols[i] = columnJSON{Name: c.Name, Kind: uint8(c.Kind)}
	}
	out.Rows = make([][]ckptVal, len(r.Rows))
	for i, row := range r.Rows {
		jr := make([]ckptVal, len(row))
		for j, v := range row {
			jr[j] = ckptVal{K: uint8(v.K), I: v.I, F: v.F, S: v.S}
		}
		out.Rows[i] = jr
	}
	return out, nil
}

func relFromJSON(in *relationJSON) (*relation.Relation, error) {
	cols := make([]relation.Column, len(in.Cols))
	for i, c := range in.Cols {
		cols[i] = relation.Column{Name: c.Name, Kind: value.Kind(c.Kind)}
	}
	schema, err := relation.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	out := relation.New(schema)
	out.Rows = make([]relation.Row, len(in.Rows))
	for i, jr := range in.Rows {
		if len(jr) != len(cols) {
			return nil, fmt.Errorf("row %d has %d values for %d columns", i, len(jr), len(cols))
		}
		row := make(relation.Row, len(jr))
		for j, jv := range jr {
			row[j] = value.V{K: value.Kind(jv.K), I: jv.I, F: jv.F, S: jv.S}
		}
		out.Rows[i] = row
	}
	return out, nil
}

// MemCheckpoints is an in-memory CheckpointStore. It round-trips through
// the JSON encoding on Save, so it exercises exactly the persistence path
// of the file store and returns checkpoints that do not alias the saved
// structures.
type MemCheckpoints struct {
	mu sync.Mutex
	//lint:guarded-by mu
	m map[string][]byte
}

// NewMemCheckpoints returns an empty in-memory store.
func NewMemCheckpoints() *MemCheckpoints {
	return &MemCheckpoints{m: map[string][]byte{}}
}

// Save implements CheckpointStore.
func (s *MemCheckpoints) Save(cp *Checkpoint) error {
	b, err := EncodeCheckpoint(cp)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.m[cp.Epoch] = b
	s.mu.Unlock()
	return nil
}

// Load implements CheckpointStore.
func (s *MemCheckpoints) Load(epoch string) (*Checkpoint, error) {
	s.mu.Lock()
	b, ok := s.m[epoch]
	s.mu.Unlock()
	if !ok {
		return nil, nil
	}
	return DecodeCheckpoint(b)
}

// Clear implements CheckpointStore.
func (s *MemCheckpoints) Clear(epoch string) error {
	s.mu.Lock()
	delete(s.m, epoch)
	s.mu.Unlock()
	return nil
}

// FileCheckpoints persists checkpoints as one JSON file per epoch
// (<dir>/<epoch>.ckpt.json), written atomically via a temp file and
// rename so a crash mid-write never leaves a torn checkpoint: the
// previous round's checkpoint survives intact.
type FileCheckpoints struct {
	dir string
}

// NewFileCheckpoints returns a file-backed store rooted at dir, creating
// the directory if needed.
func NewFileCheckpoints(dir string) (*FileCheckpoints, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: checkpoint dir: %w", err)
	}
	return &FileCheckpoints{dir: dir}, nil
}

func (s *FileCheckpoints) path(epoch string) string {
	return filepath.Join(s.dir, epoch+".ckpt.json")
}

// Save implements CheckpointStore.
func (s *FileCheckpoints) Save(cp *Checkpoint) error {
	b, err := EncodeCheckpoint(cp)
	if err != nil {
		return err
	}
	// The temp file name must be unique per save, not just per epoch:
	// concurrent executions (or a replayed coordinator racing its
	// predecessor) saving the same epoch would interleave writes into a
	// shared temp file and rename a torn checkpoint into place.
	f, err := os.CreateTemp(s.dir, cp.Epoch+".ckpt.json.tmp*")
	if err != nil {
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp, s.path(cp.Epoch)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: commit checkpoint: %w", err)
	}
	return nil
}

// Load implements CheckpointStore.
func (s *FileCheckpoints) Load(epoch string) (*Checkpoint, error) {
	b, err := os.ReadFile(s.path(epoch))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: read checkpoint: %w", err)
	}
	return DecodeCheckpoint(b)
}

// Clear implements CheckpointStore.
func (s *FileCheckpoints) Clear(epoch string) error {
	err := os.Remove(s.path(epoch))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("core: clear checkpoint: %w", err)
	}
	return nil
}
