package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/agg"
	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/gmdj"
	"repro/internal/relation"
	"repro/internal/site"
	"repro/internal/transport"
	"repro/internal/value"
)

// flowSchema is the Flow-like detail schema used by the tests.
func flowSchema() *relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "SourceAS", Kind: value.KindInt},
		relation.Column{Name: "DestAS", Kind: value.KindInt},
		relation.Column{Name: "NumBytes", Kind: value.KindInt},
	)
}

func flowRow(sas, das, nb int64) relation.Row {
	return relation.Row{value.NewInt(sas), value.NewInt(das), value.NewInt(nb)}
}

// cluster builds an in-process distributed warehouse: rows are split over
// nSites either by SourceAS (partitioned=true, catalog filled with
// domains) or round-robin (partitioned=false, empty catalog).
func cluster(t *testing.T, rows []relation.Row, nSites int, partitioned bool) (*Coordinator, *catalog.Catalog, *relation.Relation) {
	t.Helper()
	whole := relation.New(flowSchema())
	whole.Rows = rows

	parts := make([]*relation.Relation, nSites)
	for i := range parts {
		parts[i] = relation.New(flowSchema())
	}
	siteDomains := make([]map[string]struct{}, nSites)
	for i := range siteDomains {
		siteDomains[i] = map[string]struct{}{}
	}
	for i, row := range rows {
		var s int
		if partitioned {
			s = int(row[0].I) % nSites
			siteDomains[s][row[0].Key()] = struct{}{}
		} else {
			s = i % nSites
		}
		parts[s].Rows = append(parts[s].Rows, row)
	}

	var clients []transport.Client
	ids := make([]string, nSites)
	for i := 0; i < nSites; i++ {
		ids[i] = fmt.Sprintf("site%d", i)
		eng := site.NewEngine(ids[i])
		eng.Load("flow", parts[i])
		clients = append(clients, transport.NewLocalClient(ids[i], eng, transport.CostModel{}))
	}
	cat := catalog.New(ids...)
	if partitioned {
		// SourceAS values are partitioned by modulo: declare exact sets.
		for i := 0; i < nSites; i++ {
			var vals []value.V
			for v := int64(i); v < 100; v += int64(nSites) {
				vals = append(vals, value.NewInt(v))
			}
			if err := cat.SetDomain(ids[i], "SourceAS", expr.DomainSet(vals...)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return NewCoordinator(clients...), cat, whole
}

// example1 is the paper's Example 1 correlated-aggregate query.
func example1() gmdj.Query {
	return gmdj.Query{
		Base: gmdj.BaseDef{Cols: []string{"SourceAS", "DestAS"}},
		MDs: []gmdj.MD{
			{
				Aggs: [][]agg.Spec{{
					agg.MustParseSpec("count(*) AS cnt1"),
					agg.MustParseSpec("sum(F.NumBytes) AS sum1"),
				}},
				Thetas: []expr.Expr{expr.MustParse("F.SourceAS = B.SourceAS AND F.DestAS = B.DestAS")},
			},
			{
				Aggs: [][]agg.Spec{{agg.MustParseSpec("count(*) AS cnt2")}},
				Thetas: []expr.Expr{expr.MustParse(
					"F.SourceAS = B.SourceAS AND F.DestAS = B.DestAS AND F.NumBytes >= B.sum1 / B.cnt1")},
			},
		},
	}
}

func testRows(n int, seed int64) []relation.Row {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]relation.Row, n)
	for i := range rows {
		rows[i] = flowRow(int64(rng.Intn(12)), int64(rng.Intn(6)), int64(rng.Intn(1000)))
	}
	return rows
}

// assertSameRelation compares two relations after sorting by the key
// columns, tolerating float rounding.
func assertSameRelation(t *testing.T, label string, got, want *relation.Relation, keys []string) {
	t.Helper()
	if !got.Schema.Equal(want.Schema) {
		t.Fatalf("%s: schema %s != %s", label, got.Schema, want.Schema)
	}
	if err := got.SortBy(keys...); err != nil {
		t.Fatal(err)
	}
	if err := want.SortBy(keys...); err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d rows, want %d\ngot:\n%swant:\n%s", label, got.Len(), want.Len(), got, want)
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			g, w := got.Rows[i][j], want.Rows[i][j]
			if g.IsNull() && w.IsNull() {
				continue
			}
			if g.K == value.KindFloat || w.K == value.KindFloat {
				gf, e1 := g.AsFloat()
				wf, e2 := w.AsFloat()
				if e1 != nil || e2 != nil || math.Abs(gf-wf) > 1e-9*(1+math.Abs(wf)) {
					t.Errorf("%s: row %d col %s: %v != %v", label, i, got.Schema.Cols[j].Name, g, w)
				}
				continue
			}
			if !value.Equal(g, w) {
				t.Errorf("%s: row %d col %s: %v != %v", label, i, got.Schema.Cols[j].Name, g, w)
			}
		}
	}
}

// allOptions enumerates all 16 optimization combinations.
func allOptions() []Options {
	var out []Options
	for i := 0; i < 16; i++ {
		out = append(out, Options{
			Coalesce:         i&1 != 0,
			GroupReduceSites: i&2 != 0,
			GroupReduceCoord: i&4 != 0,
			SyncReduce:       i&8 != 0,
		})
	}
	return out
}

func optLabel(o Options) string {
	var b strings.Builder
	for _, p := range []struct {
		on   bool
		name string
	}{{o.Coalesce, "coal"}, {o.GroupReduceSites, "grpS"}, {o.GroupReduceCoord, "grpC"}, {o.SyncReduce, "sync"}} {
		if p.on {
			b.WriteString(p.name + "+")
		}
	}
	if b.Len() == 0 {
		return "none"
	}
	return strings.TrimSuffix(b.String(), "+")
}

// TestDistributedMatchesCentralized is the core correctness property: for
// every optimization combination, on both partitioned and round-robin
// data, the distributed result equals the centralized GMDJ evaluation.
func TestDistributedMatchesCentralized(t *testing.T) {
	rows := testRows(300, 1)
	q := example1()
	for _, partitioned := range []bool{true, false} {
		coord, cat, whole := cluster(t, rows, 4, partitioned)
		want, err := gmdj.EvalQuery(whole, q)
		if err != nil {
			t.Fatal(err)
		}
		for _, opts := range allOptions() {
			label := fmt.Sprintf("partitioned=%v/%s", partitioned, optLabel(opts))
			got, _, _, err := coord.Run(context.Background(), q, "flow", Egil{Catalog: cat, Options: opts})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			assertSameRelation(t, label, got, want.Clone(), q.Keys())
		}
	}
}

// TestPlanShapes checks that the optimizer makes the decisions the paper
// describes for Example 1 / Example 5.
func TestPlanShapes(t *testing.T) {
	coord, cat, _ := cluster(t, testRows(100, 2), 4, true)
	schema, err := coord.DetailSchema(context.Background(), "flow")
	if err != nil {
		t.Fatal(err)
	}
	q := example1()

	// No optimizations: m+1 = 3 rounds.
	plan, err := Egil{Catalog: cat}.BuildPlan(q, "flow", schema)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Rounds() != 3 || !plan.BaseRound || len(plan.Steps) != 2 {
		t.Errorf("unoptimized plan: %d rounds\n%s", plan.Rounds(), plan.Explain())
	}

	// Example 5: partition attribute + key equality ⇒ single round.
	plan, err = Egil{Catalog: cat, Options: DefaultOptions}.BuildPlan(q, "flow", schema)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Rounds() != 1 || plan.BaseRound || !plan.Steps[0].FuseBase || len(plan.Steps[0].MDs) != 2 {
		t.Errorf("optimized plan should be a single fused chained round:\n%s", plan.Explain())
	}

	// Sync reduction alone (no partition knowledge): base fusion still
	// applies (Proposition 2 is distribution-independent) but no chain.
	plan, err = Egil{Catalog: catalog.New("site0"), Options: Options{SyncReduce: true}}.BuildPlan(q, "flow", schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 2 || !plan.Steps[0].FuseBase || plan.Rounds() != 2 {
		t.Errorf("sync-reduce-only plan:\n%s", plan.Explain())
	}

	// Coalescing does not apply to Example 1 (θ2 references sum1/cnt1).
	plan, err = Egil{Catalog: cat, Options: Options{Coalesce: true}}.BuildPlan(q, "flow", schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Query.MDs) != 2 {
		t.Error("correlated query wrongly coalesced")
	}

	// A coalescable query collapses to one MD, one step.
	cq := gmdj.Query{
		Base: gmdj.BaseDef{Cols: []string{"SourceAS"}},
		MDs: []gmdj.MD{
			{
				Aggs:   [][]agg.Spec{{agg.MustParseSpec("count(*) AS c1")}},
				Thetas: []expr.Expr{expr.MustParse("F.SourceAS = B.SourceAS")},
			},
			{
				Aggs:   [][]agg.Spec{{agg.MustParseSpec("count(*) AS c2")}},
				Thetas: []expr.Expr{expr.MustParse("F.SourceAS = B.SourceAS AND F.NumBytes > 500")},
			},
		},
	}
	plan, err = Egil{Catalog: cat, Options: DefaultOptions}.BuildPlan(cq, "flow", schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Query.MDs) != 1 || plan.Rounds() != 1 {
		t.Errorf("coalescable plan:\n%s", plan.Explain())
	}
}

// TestGroupReductionReducesTraffic: with site-side group reduction on,
// fewer groups come back from the sites (Example 3 of the paper).
func TestGroupReductionReducesTraffic(t *testing.T) {
	rows := testRows(400, 3)
	q := example1()
	coord, cat, _ := cluster(t, rows, 4, true)

	run := func(opts Options) *ExecStats {
		_, stats, _, err := coord.Run(context.Background(), q, "flow", Egil{Catalog: cat, Options: opts})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	off := run(Options{})
	on := run(Options{GroupReduceSites: true})
	var offRecv, onRecv int64
	for _, r := range off.Rounds {
		offRecv += r.GroupsReceived
	}
	for _, r := range on.Rounds {
		onRecv += r.GroupsReceived
	}
	if onRecv >= offRecv {
		t.Errorf("group reduction did not reduce received groups: %d >= %d", onRecv, offRecv)
	}
	if on.Bytes() >= off.Bytes() {
		t.Errorf("group reduction did not reduce bytes: %d >= %d", on.Bytes(), off.Bytes())
	}
}

// TestCoordFilterReducesShippedGroups: distribution-aware reduction ships
// fewer groups to the sites (Theorem 4 / Example 2).
func TestCoordFilterReducesShippedGroups(t *testing.T) {
	rows := testRows(400, 4)
	q := example1()
	coord, cat, _ := cluster(t, rows, 4, true)

	run := func(opts Options) *ExecStats {
		_, stats, _, err := coord.Run(context.Background(), q, "flow", Egil{Catalog: cat, Options: opts})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	off := run(Options{})
	on := run(Options{GroupReduceCoord: true})
	var offShip, onShip int64
	for _, r := range off.Rounds {
		offShip += r.GroupsShipped
	}
	for _, r := range on.Rounds {
		onShip += r.GroupsShipped
	}
	if onShip >= offShip {
		t.Errorf("coordinator filter did not reduce shipped groups: %d >= %d", onShip, offShip)
	}
	// With modulo partitioning, each site matches exactly 1/n of groups:
	// shipped should drop to about offShip/n (per round, per site).
	if onShip > offShip/3 {
		t.Errorf("filter too weak: shipped %d of %d", onShip, offShip)
	}
}

// TestUntouchedGroupsSurvive: a group whose aggregates are empty must
// still appear in the result with count 0 — including when group
// reduction filters it at every site.
func TestUntouchedGroupsSurvive(t *testing.T) {
	rows := []relation.Row{
		flowRow(1, 10, 100),
		flowRow(2, 20, 0), // group (2,20) never satisfies NumBytes > 50
	}
	q := gmdj.Query{
		Base: gmdj.BaseDef{Cols: []string{"SourceAS", "DestAS"}},
		MDs: []gmdj.MD{{
			Aggs: [][]agg.Spec{{agg.MustParseSpec("count(*) AS big")}},
			Thetas: []expr.Expr{expr.MustParse(
				"F.SourceAS = B.SourceAS AND F.DestAS = B.DestAS AND F.NumBytes > 50")},
		}},
	}
	coord, cat, whole := cluster(t, rows, 2, true)
	want, err := gmdj.EvalQuery(whole, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{{}, {GroupReduceSites: true}, DefaultOptions} {
		got, _, _, err := coord.Run(context.Background(), q, "flow", Egil{Catalog: cat, Options: opts})
		if err != nil {
			t.Fatalf("%s: %v", optLabel(opts), err)
		}
		assertSameRelation(t, optLabel(opts), got, want.Clone(), q.Keys())
		// Specifically: group (2,20) present with big = 0.
		found := false
		for _, row := range got.Rows {
			if row[0].I == 2 && row[1].I == 20 {
				found = true
				if row[2].I != 0 {
					t.Errorf("%s: group (2,20) big = %v, want 0", optLabel(opts), row[2])
				}
			}
		}
		if !found {
			t.Errorf("%s: group (2,20) missing", optLabel(opts))
		}
	}
}

// TestRandomizedDistributedEquivalence fuzzes data, partitioning, and
// site counts under full optimization.
func TestRandomizedDistributedEquivalence(t *testing.T) {
	q := example1()
	for trial := 0; trial < 10; trial++ {
		rows := testRows(50+trial*37, int64(100+trial))
		nSites := 1 + trial%5
		partitioned := trial%2 == 0
		coord, cat, whole := cluster(t, rows, nSites, partitioned)
		want, err := gmdj.EvalQuery(whole, q)
		if err != nil {
			t.Fatal(err)
		}
		got, _, _, err := coord.Run(context.Background(), q, "flow", Egil{Catalog: cat, Options: DefaultOptions})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertSameRelation(t, fmt.Sprintf("trial %d (n=%d part=%v)", trial, nSites, partitioned),
			got, want, q.Keys())
	}
}

// TestAvgAndExtremaDistributed exercises AVG/MIN/MAX/VAR across the
// distributed pipeline.
func TestAvgAndExtremaDistributed(t *testing.T) {
	rows := testRows(200, 5)
	q := gmdj.Query{
		Base: gmdj.BaseDef{Cols: []string{"SourceAS"}},
		MDs: []gmdj.MD{{
			Aggs: [][]agg.Spec{{
				agg.MustParseSpec("avg(F.NumBytes) AS avg_nb"),
				agg.MustParseSpec("min(F.NumBytes) AS min_nb"),
				agg.MustParseSpec("max(F.NumBytes) AS max_nb"),
				agg.MustParseSpec("var(F.NumBytes) AS var_nb"),
				agg.MustParseSpec("countd(F.DestAS) AS dests"),
			}},
			Thetas: []expr.Expr{expr.MustParse("F.SourceAS = B.SourceAS")},
		}},
	}
	coord, cat, whole := cluster(t, rows, 3, false)
	want, err := gmdj.EvalQuery(whole, q)
	if err != nil {
		t.Fatal(err)
	}
	got, _, _, err := coord.Run(context.Background(), q, "flow", Egil{Catalog: cat, Options: DefaultOptions})
	if err != nil {
		t.Fatal(err)
	}
	assertSameRelation(t, "aggregates", got, want, q.Keys())
}

func TestErrors(t *testing.T) {
	coord, cat, _ := cluster(t, testRows(10, 6), 2, true)
	if _, _, _, err := coord.Run(context.Background(), example1(), "nosuch", Egil{Catalog: cat}); err == nil {
		t.Error("unknown detail relation accepted")
	}
	empty := NewCoordinator()
	if _, _, err := empty.Execute(context.Background(), &Plan{}); err == nil {
		t.Error("empty coordinator accepted")
	}
	if _, err := empty.DetailSchema(context.Background(), "flow"); err == nil {
		t.Error("DetailSchema on empty coordinator accepted")
	}
	// Invalid query (bad column) must fail at planning.
	q := example1()
	q.Base.Cols = []string{"Bogus"}
	if _, _, _, err := coord.Run(context.Background(), q, "flow", Egil{Catalog: cat}); err == nil {
		t.Error("bad base column accepted")
	}
}

// TestExplain smoke-tests plan explain output.
func TestExplain(t *testing.T) {
	coord, cat, _ := cluster(t, testRows(50, 7), 2, true)
	schema, err := coord.DetailSchema(context.Background(), "flow")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Egil{Catalog: cat, Options: DefaultOptions}.BuildPlan(example1(), "flow", schema)
	if err != nil {
		t.Fatal(err)
	}
	out := plan.Explain()
	for _, want := range []string{"plan:", "Corollary 1", "Proposition 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

// TestStatsAccounting sanity-checks the execution statistics.
func TestStatsAccounting(t *testing.T) {
	coord, cat, _ := cluster(t, testRows(200, 8), 4, true)
	_, stats, plan, err := coord.Run(context.Background(), example1(), "flow", Egil{Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Rounds) != plan.Rounds() {
		t.Errorf("stats rounds = %d, plan rounds = %d", len(stats.Rounds), plan.Rounds())
	}
	if stats.Bytes() <= 0 {
		t.Error("no bytes accounted")
	}
	if stats.EvalTime() < 0 || stats.Wall <= 0 {
		t.Error("bad times")
	}
	if !strings.Contains(stats.String(), "total:") {
		t.Error("stats String() malformed")
	}
	// Base round ships no groups to sites but receives some.
	if stats.Rounds[0].GroupsShipped != 0 || stats.Rounds[0].GroupsReceived == 0 {
		t.Errorf("base round accounting: %+v", stats.Rounds[0])
	}
}

// TestMultiDetailQuery exercises the paper's R_k-varies-per-round case:
// the second MD aggregates a different detail relation.
func TestMultiDetailQuery(t *testing.T) {
	flowRows := testRows(150, 21)
	alertSchema := relation.MustSchema(
		relation.Column{Name: "SourceAS", Kind: value.KindInt},
		relation.Column{Name: "Severity", Kind: value.KindInt},
	)
	wholeAlerts := relation.New(alertSchema)
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 80; i++ {
		wholeAlerts.MustAppend(value.NewInt(int64(rng.Intn(12))), value.NewInt(int64(rng.Intn(5))))
	}

	coord, cat, wholeFlow := cluster(t, flowRows, 3, false)
	// Load alert partitions round-robin alongside the flows.
	for i, cl := range coord.Clients() {
		part := relation.New(alertSchema)
		for j, row := range wholeAlerts.Rows {
			if j%3 == i {
				part.Rows = append(part.Rows, row)
			}
		}
		resp, err := cl.Call(context.Background(), &transport.Request{Op: transport.OpLoad, Rel: "alerts", Data: part})
		if err != nil || resp.Error() != nil {
			t.Fatalf("load alerts: %v %v", err, resp.Error())
		}
	}

	q := gmdj.Query{
		Base: gmdj.BaseDef{Cols: []string{"SourceAS"}},
		MDs: []gmdj.MD{
			{
				Aggs:   [][]agg.Spec{{agg.MustParseSpec("count(*) AS flows"), agg.MustParseSpec("avg(F.NumBytes) AS avg_nb")}},
				Thetas: []expr.Expr{expr.MustParse("F.SourceAS = B.SourceAS")},
			},
			{
				Detail: "alerts",
				Aggs:   [][]agg.Spec{{agg.MustParseSpec("count(*) AS alerts"), agg.MustParseSpec("max(F.Severity) AS worst")}},
				Thetas: []expr.Expr{expr.MustParse("F.SourceAS = B.SourceAS AND F.Severity >= 2")},
			},
		},
	}
	want, err := gmdj.EvalQueryOn(map[string]*relation.Relation{
		"flow": wholeFlow, "alerts": wholeAlerts,
	}, "flow", q)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{{}, DefaultOptions} {
		got, _, _, err := coord.Run(context.Background(), q, "flow", Egil{Catalog: cat, Options: opts})
		if err != nil {
			t.Fatalf("%s: %v", optLabel(opts), err)
		}
		assertSameRelation(t, "multi-detail "+optLabel(opts), got, want.Clone(), q.Keys())
	}
	// Missing second relation surfaces as a planning error.
	q.MDs[1].Detail = "nosuch"
	if _, _, _, err := coord.Run(context.Background(), q, "flow", Egil{Catalog: cat}); err == nil {
		t.Error("unknown second detail relation accepted")
	}
}

// TestFilterDroppedWhenReferencingChainOutputs: a derived Theorem-4 filter
// that references a column generated inside a chained step cannot be
// evaluated against the shipped X; the optimizer must drop it (and stay
// correct) rather than fail.
func TestFilterDroppedWhenReferencingChainOutputs(t *testing.T) {
	rows := testRows(200, 31)
	coord, cat, whole := cluster(t, rows, 3, true)
	// Keys (SourceAS, DestAS) but equi only on SourceAS: the chain forms
	// (partition attribute) yet base fusion is impossible, so X ships.
	q := gmdj.Query{
		Base: gmdj.BaseDef{Cols: []string{"SourceAS", "DestAS"}},
		MDs: []gmdj.MD{
			{
				Aggs:   [][]agg.Spec{{agg.MustParseSpec("count(*) AS cnt1"), agg.MustParseSpec("avg(F.NumBytes) AS avg1")}},
				Thetas: []expr.Expr{expr.MustParse("F.SourceAS = B.SourceAS")},
			},
			{
				Aggs: [][]agg.Spec{{agg.MustParseSpec("count(*) AS cnt2")}},
				Thetas: []expr.Expr{expr.MustParse(
					"F.SourceAS = B.SourceAS AND B.avg1 >= 0 AND F.NumBytes >= B.avg1")},
			},
		},
	}
	egil := Egil{Catalog: cat, Options: DefaultOptions}
	schema, err := coord.DetailSchema(context.Background(), "flow")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := egil.BuildPlan(q, "flow", schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 1 || len(plan.Steps[0].MDs) != 2 || plan.Steps[0].FuseBase {
		t.Fatalf("expected one shipped chained step:\n%s", plan.Explain())
	}
	// The chained step's filter must have been dropped (it would
	// reference avg1, which the shipped X lacks).
	for site, fs := range plan.SiteFilters {
		for _, f := range fs {
			if f != nil {
				t.Errorf("site %s kept filter %s referencing chain outputs", site, f)
			}
		}
	}
	// And execution stays correct.
	want, err := gmdj.EvalQuery(whole, q)
	if err != nil {
		t.Fatal(err)
	}
	got, _, _, err := coord.Run(context.Background(), q, "flow", egil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRelation(t, "dropped-filter chain", got, want, q.Keys())
}

// TestRandomizedQueryShapes fuzzes query structure (aggregate functions,
// equi columns, residual predicates, chain length) under full
// optimization against the centralized reference.
func TestRandomizedQueryShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	aggFuncs := []string{"count(*)", "sum(F.NumBytes)", "avg(F.NumBytes)", "min(F.NumBytes)", "max(F.NumBytes)"}
	for trial := 0; trial < 15; trial++ {
		rows := testRows(120+rng.Intn(200), int64(500+trial))
		nSites := 2 + rng.Intn(3)
		partitioned := rng.Intn(2) == 0
		coord, cat, whole := cluster(t, rows, nSites, partitioned)

		// Base columns: always SourceAS, sometimes DestAS.
		baseCols := []string{"SourceAS"}
		if rng.Intn(2) == 0 {
			baseCols = append(baseCols, "DestAS")
		}
		eq := "F.SourceAS = B.SourceAS"
		if len(baseCols) == 2 {
			eq += " AND F.DestAS = B.DestAS"
		}

		nMDs := 1 + rng.Intn(3)
		q := gmdj.Query{Base: gmdj.BaseDef{Cols: baseCols}}
		var prevAvg string
		for mi := 0; mi < nMDs; mi++ {
			theta := eq
			switch rng.Intn(3) {
			case 1:
				theta += fmt.Sprintf(" AND F.NumBytes > %d", rng.Intn(800))
			case 2:
				if prevAvg != "" {
					theta += " AND F.NumBytes >= B." + prevAvg
				}
			}
			var specs []agg.Spec
			nAggs := 1 + rng.Intn(2)
			for ai := 0; ai < nAggs; ai++ {
				f := aggFuncs[rng.Intn(len(aggFuncs))]
				specs = append(specs, agg.MustParseSpec(fmt.Sprintf("%s AS a_%d_%d", f, mi, ai)))
			}
			// Guarantee an avg for later correlation half the time.
			if rng.Intn(2) == 0 {
				name := fmt.Sprintf("avg_%d", mi)
				specs = append(specs, agg.MustParseSpec("avg(F.NumBytes) AS "+name))
				prevAvg = name
			}
			q.MDs = append(q.MDs, gmdj.MD{
				Aggs:   [][]agg.Spec{specs},
				Thetas: []expr.Expr{expr.MustParse(theta)},
			})
		}

		want, err := gmdj.EvalQuery(whole, q)
		if err != nil {
			t.Fatalf("trial %d centralized: %v", trial, err)
		}
		for _, opts := range []Options{{}, DefaultOptions} {
			got, _, _, err := coord.Run(context.Background(), q, "flow", Egil{Catalog: cat, Options: opts})
			if err != nil {
				t.Fatalf("trial %d (%s): %v", trial, optLabel(opts), err)
			}
			assertSameRelation(t, fmt.Sprintf("trial %d (%s)", trial, optLabel(opts)),
				got, want.Clone(), q.Keys())
		}
	}
}

// TestEmptyData: empty partitions and fully empty warehouses must produce
// clean (empty) results under every optimization mix, not errors.
func TestEmptyData(t *testing.T) {
	q := example1()

	// One site holds everything, the others are empty.
	rows := testRows(60, 51)
	parts := make([]*relation.Relation, 3)
	for i := range parts {
		parts[i] = relation.New(flowSchema())
	}
	parts[1].Rows = rows
	var clients []transport.Client
	for i, part := range parts {
		eng := site.NewEngine(fmt.Sprintf("site%d", i))
		eng.Load("flow", part)
		clients = append(clients, transport.NewLocalClient(eng.ID(), eng, transport.CostModel{}))
	}
	coord := NewCoordinator(clients...)
	whole := relation.New(flowSchema())
	whole.Rows = rows
	want, err := gmdj.EvalQuery(whole, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{{}, DefaultOptions} {
		got, _, _, err := coord.Run(context.Background(), q, "flow", Egil{Catalog: catalog.New(), Options: opts})
		if err != nil {
			t.Fatalf("skewed data (%s): %v", optLabel(opts), err)
		}
		assertSameRelation(t, "skewed "+optLabel(opts), got, want.Clone(), q.Keys())
	}

	// Entirely empty warehouse.
	for i := range parts {
		eng := site.NewEngine(fmt.Sprintf("e%d", i))
		eng.Load("flow", relation.New(flowSchema()))
		clients[i] = transport.NewLocalClient(eng.ID(), eng, transport.CostModel{})
	}
	empty := NewCoordinator(clients...)
	for _, opts := range []Options{{}, DefaultOptions} {
		got, _, _, err := empty.Run(context.Background(), q, "flow", Egil{Catalog: catalog.New(), Options: opts})
		if err != nil {
			t.Fatalf("empty warehouse (%s): %v", optLabel(opts), err)
		}
		if got.Len() != 0 {
			t.Errorf("empty warehouse returned %d rows", got.Len())
		}
	}
}

// TestPaperExample2EndToEnd executes the paper's Example 2 (revised form):
// site domains are ranges of SourceAS, and the condition is the arithmetic
// B.DestAS + B.SourceAS < F.SourceAS * 2, whose Theorem-4 filter is the
// derived bound B.DestAS + B.SourceAS < 2·max(SourceAS at site).
func TestPaperExample2EndToEnd(t *testing.T) {
	rows := testRows(200, 61)
	// Partition by SourceAS range: site0 gets [0,5], site1 [6,11].
	parts := []*relation.Relation{relation.New(flowSchema()), relation.New(flowSchema())}
	for _, row := range rows {
		if row[0].I <= 5 {
			parts[0].Rows = append(parts[0].Rows, row)
		} else {
			parts[1].Rows = append(parts[1].Rows, row)
		}
	}
	var clients []transport.Client
	ids := []string{"s0", "s1"}
	for i, part := range parts {
		eng := site.NewEngine(ids[i])
		eng.Load("flow", part)
		clients = append(clients, transport.NewLocalClient(ids[i], eng, transport.CostModel{}))
	}
	coord := NewCoordinator(clients...)
	cat := catalog.New(ids...)
	cat.SetDomain("s0", "SourceAS", expr.DomainRange(value.NewInt(0), value.NewInt(5)))
	cat.SetDomain("s1", "SourceAS", expr.DomainRange(value.NewInt(6), value.NewInt(11)))

	q := gmdj.Query{
		Base: gmdj.BaseDef{Cols: []string{"SourceAS", "DestAS"}},
		MDs: []gmdj.MD{{
			Aggs: [][]agg.Spec{{agg.MustParseSpec("count(*) AS c")}},
			Thetas: []expr.Expr{expr.MustParse(
				"B.DestAS + B.SourceAS < F.SourceAS * 2")},
		}},
	}
	schema, err := coord.DetailSchema(context.Background(), "flow")
	if err != nil {
		t.Fatal(err)
	}
	egil := Egil{Catalog: cat, Options: Options{GroupReduceCoord: true}}
	plan, err := egil.BuildPlan(q, "flow", schema)
	if err != nil {
		t.Fatal(err)
	}
	// The derived filter for s0 must be the paper's bound: ... < 10.
	fs := plan.SiteFilters["s0"]
	if len(fs) == 0 || fs[0] == nil {
		t.Fatalf("no filter derived for s0:\n%s", plan.Explain())
	}
	if got := fs[0].String(); got != "B.DestAS + B.SourceAS < 10" {
		t.Errorf("s0 filter = %s, want B.DestAS + B.SourceAS < 10", got)
	}

	whole := relation.New(flowSchema())
	whole.Rows = rows
	want, err := gmdj.EvalQuery(whole, q)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, _, err := coord.Run(context.Background(), q, "flow", egil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRelation(t, "example 2", got, want, q.Keys())

	// And the filter actually reduced shipping vs the unfiltered run.
	_, statsOff, _, err := coord.Run(context.Background(), q, "flow", Egil{Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	var on, off int64
	for _, r := range stats.Rounds {
		on += r.GroupsShipped
	}
	for _, r := range statsOff.Rounds {
		off += r.GroupsShipped
	}
	if on >= off {
		t.Errorf("range-derived filter did not reduce shipping: %d >= %d", on, off)
	}
}
