package core

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/gmdj"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/transport"
)

func relationFromRows(rows []relation.Row) *relation.Relation {
	r := relation.New(flowSchema())
	r.Rows = rows
	return r
}

func sampleCheckpointWith(x *relation.Relation) *Checkpoint {
	return &Checkpoint{
		Epoch: "deadbeef00000000",
		Done:  2,
		X:     x,
		Rounds: []RoundStats{
			{
				Name: "base", Responded: []string{"site1", "site0"},
				BytesToSites: 10, BytesFromSites: 20, GroupsShipped: 1, GroupsReceived: 2,
				SiteTime: 3 * time.Microsecond, SiteTimeTotal: 5 * time.Microsecond,
				CoordTime: 7 * time.Microsecond, CommTime: 11 * time.Microsecond,
			},
			{
				Name: "step 1", Responded: []string{"site0"},
				Lost:     []LostSite{{Site: "site1", Err: "boom"}},
				Replayed: []string{"site0"}, Resumed: true,
			},
		},
	}
}

func TestCheckpointEncodeDecodeRoundTrip(t *testing.T) {
	x := relationFromRows(testRows(5, 9))
	cp := sampleCheckpointWith(x)

	b1, err := EncodeCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := EncodeCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("checkpoint encoding is not deterministic")
	}

	got, err := DecodeCheckpoint(b1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != cp.Epoch || got.Done != cp.Done {
		t.Errorf("decoded header = (%s, %d), want (%s, %d)", got.Epoch, got.Done, cp.Epoch, cp.Done)
	}
	if got.X.Len() != x.Len() || !got.X.Schema.Equal(x.Schema) {
		t.Errorf("decoded X: %d rows, schema %s", got.X.Len(), got.X.Schema)
	}
	if len(got.Rounds) != len(cp.Rounds) {
		t.Fatalf("decoded %d rounds, want %d", len(got.Rounds), len(cp.Rounds))
	}
	r1 := got.Rounds[1]
	if !r1.Resumed || len(r1.Replayed) != 1 || r1.Replayed[0] != "site0" {
		t.Errorf("round 1 recovery fields lost: %+v", r1)
	}
	if len(r1.Lost) != 1 || r1.Lost[0].Site != "site1" {
		t.Errorf("round 1 lost sites lost: %+v", r1.Lost)
	}
	if got.Rounds[0].SiteTime != 3*time.Microsecond || got.Rounds[0].CommTime != 11*time.Microsecond {
		t.Errorf("round 0 durations lost: %+v", got.Rounds[0])
	}
	// Re-encoding the decoded checkpoint is byte-identical: the JSON shape
	// loses nothing the encoding itself carries.
	b3, err := EncodeCheckpoint(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b3) {
		t.Error("decode → encode is not a fixed point")
	}
}

func TestCheckpointStores(t *testing.T) {
	x := relationFromRows(testRows(4, 10))
	fileStore, err := NewFileCheckpoints(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		store CheckpointStore
	}{
		{"mem", NewMemCheckpoints()},
		{"file", fileStore},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cp := sampleCheckpointWith(x)
			if got, err := tc.store.Load(cp.Epoch); err != nil || got != nil {
				t.Fatalf("load before save = (%v, %v), want (nil, nil)", got, err)
			}
			if err := tc.store.Save(cp); err != nil {
				t.Fatal(err)
			}
			got, err := tc.store.Load(cp.Epoch)
			if err != nil || got == nil {
				t.Fatalf("load: %v / %v", got, err)
			}
			if got.Done != cp.Done || got.X.Len() != x.Len() {
				t.Errorf("loaded checkpoint = done %d, %d rows", got.Done, got.X.Len())
			}
			// The loaded checkpoint must not alias the saved one.
			got.X.Rows[0][0] = got.X.Rows[0][1]
			again, err := tc.store.Load(cp.Epoch)
			if err != nil {
				t.Fatal(err)
			}
			if again.X.Rows[0][0] == got.X.Rows[0][0] && &again.X.Rows[0][0] == &got.X.Rows[0][0] {
				t.Error("loaded checkpoints alias each other")
			}
			// Overwrite with a later round.
			cp.Done = 3
			if err := tc.store.Save(cp); err != nil {
				t.Fatal(err)
			}
			if got, _ := tc.store.Load(cp.Epoch); got.Done != 3 {
				t.Errorf("overwrite: done = %d, want 3", got.Done)
			}
			if err := tc.store.Clear(cp.Epoch); err != nil {
				t.Fatal(err)
			}
			if got, err := tc.store.Load(cp.Epoch); err != nil || got != nil {
				t.Fatalf("load after clear = (%v, %v), want (nil, nil)", got, err)
			}
			// Clearing an absent epoch is not an error.
			if err := tc.store.Clear("no-such-epoch"); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestPlanEpochDeterministic(t *testing.T) {
	coord, cat, _ := cluster(t, testRows(40, 11), 3, true)
	schema, err := coord.DetailSchema(context.Background(), "flow")
	if err != nil {
		t.Fatal(err)
	}
	build := func(opts Options) *Plan {
		p, err := Egil{Catalog: cat, Options: opts}.BuildPlan(example1(), "flow", schema)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p1, p2 := build(Options{}), build(Options{})
	if PlanEpoch(p1) != PlanEpoch(p2) {
		t.Error("same plan, different epochs")
	}
	for i := 0; i < 10; i++ { // SiteFilters is a map: catch iteration-order leakage
		if PlanEpoch(p1) != PlanEpoch(p2) {
			t.Fatal("epoch unstable across calls")
		}
	}
	// A different plan shape must get a different epoch.
	if opt := build(DefaultOptions); plansDiffer(p1, opt) && PlanEpoch(p1) == PlanEpoch(opt) {
		t.Error("different plans share an epoch")
	}
	// The same plan over a different site set is a different execution.
	sub := NewCoordinator(coord.Clients()[:2]...)
	if coord.executionEpoch(p1) == sub.executionEpoch(p1) {
		t.Error("different site sets share an execution epoch")
	}
	if coord.executionEpoch(p1) != coord.executionEpoch(p1) {
		t.Error("execution epoch unstable")
	}
}

func plansDiffer(a, b *Plan) bool {
	return a.Rounds() != b.Rounds() || a.BaseRound != b.BaseRound
}

// mustPlan rebuilds the plan a coordinator's Run would execute, for
// computing its execution epoch in tests.
func mustPlan(t *testing.T, coord *Coordinator, q gmdj.Query, egil Egil) *Plan {
	t.Helper()
	schema, err := coord.DetailSchema(context.Background(), "flow")
	if err != nil {
		t.Fatal(err)
	}
	p, err := egil.BuildPlan(q, "flow", schema)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestResumeAfterInterruption is the core recovery scenario: a
// multi-round execution dies at the start of its last round, and a fresh
// coordinator over the same sites — same plan, same checkpoint store —
// completes it. The final relation and every completed round's byte and
// group counters must match an uninterrupted reference run exactly.
func TestResumeAfterInterruption(t *testing.T) {
	rows := testRows(240, 7)
	q := example1()
	egil := Egil{Catalog: newTestCatalog(3)} // no optimizations: 3 rounds

	// Reference: recovery enabled, no faults.
	ref, _, whole := chaosCluster(t, rows, 3, 100)
	ref.Checkpoints = NewMemCheckpoints()
	refRel, refStats, _, err := ref.Run(context.Background(), q, "flow", egil)
	if err != nil {
		t.Fatal(err)
	}
	if refStats.ResumedRounds() != 0 {
		t.Fatalf("reference run resumed %d rounds", refStats.ResumedRounds())
	}

	// Interrupted: the second evalRounds round (step 2) dies on site2.
	coord, chaos, _ := chaosCluster(t, rows, 3, 101)
	store := NewMemCheckpoints()
	coord.Checkpoints = store
	o := obs.New()
	coord.Obs = o
	chaos[2].InjectAt(transport.OpEvalRounds, 2, transport.Fault{Err: transport.ErrInjected})
	if _, _, _, err := coord.Run(context.Background(), q, "flow", egil); err == nil {
		t.Fatal("interrupted run should fail")
	}
	if got := o.Metrics.CounterValue("checkpoint.written"); got != 2 {
		t.Fatalf("checkpoint.written = %d, want 2 (base + step 1)", got)
	}

	// Snapshot the interrupted run's recorded rounds for exact comparison.
	interruptedCP, err := store.Load(coord.executionEpoch(mustPlan(t, coord, q, egil)))
	if err != nil || interruptedCP == nil {
		t.Fatalf("no checkpoint after interruption: %v", err)
	}

	// Resume: a fresh coordinator (same sites, same store) picks up after
	// round 2 and only executes the last round.
	coord2 := NewCoordinator(coord.Clients()...)
	coord2.Checkpoints = store
	o2 := obs.New()
	coord2.Obs = o2
	got, stats, _, err := coord2.Run(context.Background(), q, "flow", egil)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	want, err := gmdj.EvalQuery(whole, q)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRelation(t, "resumed", got, want, q.Keys())

	if stats.ResumedRounds() != 2 {
		t.Errorf("resumed rounds = %d, want 2", stats.ResumedRounds())
	}
	if got := o2.Metrics.CounterValue("checkpoint.resumed"); got != 1 {
		t.Errorf("checkpoint.resumed = %d, want 1", got)
	}
	if got := o2.Metrics.CounterValue("coord.rounds_resumed"); got != 2 {
		t.Errorf("coord.rounds_resumed = %d, want 2", got)
	}
	if len(stats.Rounds) != len(refStats.Rounds) {
		t.Fatalf("rounds = %d, want %d", len(stats.Rounds), len(refStats.Rounds))
	}
	// Byte-exactness: the interrupted-then-resumed execution moved exactly
	// the bytes and groups of the uninterrupted one, round by round —
	// restored rounds carry the original run's numbers, the re-executed
	// round recomputes them identically. The one permitted wiggle is the
	// response direction: every response carries the site's measured
	// ComputeNs, and gob's varint encoding makes that field's width vary
	// by a byte or two between ANY two runs — interrupted or not — so
	// BytesFromSites gets a small tolerance while everything structural
	// (request bytes, group counts) must match exactly.
	const computeNsJitter = 16
	for i, r := range stats.Rounds {
		rr := refStats.Rounds[i]
		if r.BytesToSites != rr.BytesToSites {
			t.Errorf("round %s: bytes to sites %d, want %d", r.Name, r.BytesToSites, rr.BytesToSites)
		}
		if d := r.BytesFromSites - rr.BytesFromSites; d < -computeNsJitter || d > computeNsJitter {
			t.Errorf("round %s: bytes from sites %d, want %d±%d",
				r.Name, r.BytesFromSites, rr.BytesFromSites, computeNsJitter)
		}
		if r.GroupsShipped != rr.GroupsShipped || r.GroupsReceived != rr.GroupsReceived {
			t.Errorf("round %s: groups %d/%d, want %d/%d",
				r.Name, r.GroupsShipped, r.GroupsReceived, rr.GroupsShipped, rr.GroupsReceived)
		}
	}
	if stats.Groups() != refStats.Groups() {
		t.Errorf("total groups = %d, want %d", stats.Groups(), refStats.Groups())
	}
	// The restored rounds are exact to the last byte against what the
	// interrupted run itself recorded: the checkpoint round-trip loses
	// nothing, jitter tolerance or not.
	for i, cr := range interruptedCP.Rounds {
		r := stats.Rounds[i]
		if r.BytesToSites != cr.BytesToSites || r.BytesFromSites != cr.BytesFromSites ||
			r.GroupsShipped != cr.GroupsShipped || r.GroupsReceived != cr.GroupsReceived {
			t.Errorf("restored round %s drifted from its checkpoint: %+v vs %+v", r.Name, r, cr)
		}
		if !r.Resumed {
			t.Errorf("restored round %s not marked resumed", r.Name)
		}
	}
	assertSameRelation(t, "reference", refRel, want.Clone(), q.Keys())

	// Completion cleared the checkpoint: a rerun is a fresh execution.
	rerun, stats2, _, err := coord2.Run(context.Background(), q, "flow", egil)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.ResumedRounds() != 0 {
		t.Errorf("rerun after completion resumed %d rounds", stats2.ResumedRounds())
	}
	assertSameRelation(t, "rerun", rerun, want.Clone(), q.Keys())
}

// TestReplayAfterTransportFailure: with Replays enabled, a transport
// failure mid-round re-issues the (epoch, round)-tagged request instead
// of aborting the execution, and the replayed site is accounted in the
// round's statistics.
func TestReplayAfterTransportFailure(t *testing.T) {
	rows := testRows(240, 8)
	q := example1()
	egil := Egil{Catalog: newTestCatalog(3)}

	coord, chaos, whole := chaosCluster(t, rows, 3, 102)
	coord.Replays = 1
	o := obs.New()
	coord.Obs = o
	// Site 1's second evalRounds call (step 2) dies at the transport; the
	// coordinator replays it within the same round.
	chaos[1].InjectAt(transport.OpEvalRounds, 2, transport.Fault{Err: transport.ErrInjected})
	got, stats, _, err := coord.Run(context.Background(), q, "flow", egil)
	if err != nil {
		t.Fatalf("run with mid-round transport failure: %v", err)
	}
	want, err := gmdj.EvalQuery(whole, q)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRelation(t, "replayed", got, want, q.Keys())
	if stats.Partial() {
		t.Errorf("replay must not degrade the result: lost %v", stats.LostSites())
	}
	if rp := stats.ReplayedSites(); len(rp) != 1 || rp[0] != "site1" {
		t.Errorf("replayed sites = %v, want [site1]", rp)
	}
	last := stats.Rounds[len(stats.Rounds)-1]
	if len(last.Replayed) != 1 || last.Replayed[0] != "site1" {
		t.Errorf("last round replayed = %v, want [site1]", last.Replayed)
	}
	if got := o.Metrics.CounterValue("coord.replays"); got != 1 {
		t.Errorf("coord.replays = %d, want 1", got)
	}
	if got := o.Events.CountKind(obs.EventReplay); got != 1 {
		t.Errorf("replay events = %d, want 1", got)
	}
	// Without Replays the same fault aborts the run (the old behavior).
	coordStrict, chaosStrict, _ := chaosCluster(t, rows, 3, 103)
	chaosStrict[1].InjectAt(transport.OpEvalRounds, 2, transport.Fault{Err: transport.ErrInjected})
	if _, _, _, err := coordStrict.Run(context.Background(), q, "flow", egil); err == nil {
		t.Fatal("replays disabled: transport failure should abort")
	}
}

// TestFileCheckpointsConcurrentExecutions: the file store is shared by
// every concurrently-running execution of the serve scheduler — each
// saves under its own epoch, and hammering the same epoch from many
// goroutines (a replayed coordinator racing its predecessor) must never
// commit a torn file. The old implementation used one fixed temp path
// per epoch, so concurrent saves interleaved their writes before rename.
func TestFileCheckpointsConcurrentExecutions(t *testing.T) {
	dir := t.TempDir()
	store, err := NewFileCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}

	const epochs = 4
	const saversPerEpoch = 8
	const rounds = 10
	var wg sync.WaitGroup
	errs := make(chan error, epochs*saversPerEpoch)
	for e := 0; e < epochs; e++ {
		epoch := fmt.Sprintf("epoch-%d", e)
		for s := 0; s < saversPerEpoch; s++ {
			wg.Add(1)
			go func(epoch string) {
				defer wg.Done()
				for r := 1; r <= rounds; r++ {
					cp := sampleCheckpointWith(relationFromRows(testRows(4, 10)))
					cp.Epoch, cp.Done = epoch, r
					if err := store.Save(cp); err != nil {
						errs <- err
						return
					}
					// Every load between saves must decode cleanly: a
					// torn rename would surface here as a JSON error.
					if _, err := store.Load(epoch); err != nil {
						errs <- err
						return
					}
				}
			}(epoch)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Each epoch's file is intact, holds that epoch, and is the only
	// artifact left — no stray temp files survive the races.
	for e := 0; e < epochs; e++ {
		epoch := fmt.Sprintf("epoch-%d", e)
		cp, err := store.Load(epoch)
		if err != nil || cp == nil {
			t.Fatalf("load %s: %v / %v", epoch, cp, err)
		}
		if cp.Epoch != epoch {
			t.Errorf("epoch %s holds checkpoint for %s", epoch, cp.Epoch)
		}
		if cp.Done < 1 || cp.Done > rounds {
			t.Errorf("epoch %s: done = %d", epoch, cp.Done)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != epochs {
		var names []string
		for _, en := range entries {
			names = append(names, en.Name())
		}
		t.Fatalf("checkpoint dir holds %v, want %d committed files", names, epochs)
	}
}
