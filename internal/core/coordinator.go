package core

//lint:wrap-errors coordinator errors must preserve site/transport causes for errors.Is/As

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"time"

	"repro/internal/agg"
	"repro/internal/expr"
	"repro/internal/gmdj"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/transport"
	"repro/internal/value"
)

// Coordinator executes distributed evaluation plans against a set of site
// clients — Alg. GMDJDistribEval of the paper. It maintains the
// base-result structure X, ships it (or per-site reductions of it) to the
// sites each round, and synchronizes the returned sub-aggregates into X
// keyed on the base relation key K (Theorem 1).
//
// Fault tolerance: every site exchange runs under a context. CallTimeout
// bounds each per-site round-trip so a hung site cannot stall a query
// forever, and in strict mode (the default) the first site failure
// cancels the in-flight calls to its siblings — their partial work is
// useless once the round is doomed. With AllowPartial set, failures are
// tolerated instead: the round proceeds with the fragments that arrived
// and the loss is recorded per round in ExecStats (Responded/Lost), so
// callers receive a partial result with explicit coverage metadata rather
// than an error.
type Coordinator struct {
	clients []transport.Client

	// CallTimeout bounds each site round-trip; 0 means no per-call bound
	// (the Execute context still applies).
	CallTimeout time.Duration
	// AllowPartial degrades gracefully when sites fail: the query answers
	// from the surviving sites and ExecStats reports the coverage.
	AllowPartial bool
	// Obs, when set, receives spans (query → round → per-site RPC → sync
	// on the trace timeline), per-round counters under "coord.*" whose
	// totals match ExecStats exactly, and site-lost / partial-result
	// events.
	Obs *obs.Obs

	// Checkpoints, when set, persists X and the round statistics after
	// every completed synchronization round and resumes an interrupted
	// execution of the same plan from its last completed round. Round
	// checkpoints are cheap by Theorem 2: X never holds detail data.
	Checkpoints CheckpointStore
	// Epoch overrides the execution epoch; empty derives it from the plan
	// (PlanEpoch), which is what lets a restarted coordinator find its
	// own checkpoint. Requests carry the epoch and round sequence number
	// only while recovery is enabled (Checkpoints set or Replays > 0), so
	// site-side replay dedup never caches for plain executions.
	Epoch string
	// Replays is how many times a site's round request is re-issued after
	// a transport failure before the site counts as lost (0 keeps the old
	// first-error behavior). Replaying is idempotent: the request carries
	// (epoch, round) and sites answer repeats from their dedup cache.
	Replays int
	// Health, when set, is consulted before fanning a round out to a
	// site. In degraded (AllowPartial) mode a not-ready site is skipped
	// without a call and recorded as lost; in strict mode the verdict is
	// advisory (an event) — the call proceeds, because a draining replica
	// sheds with CodeDraining and the Reconnector fails over anyway.
	Health HealthGate
	// QueryID, when non-empty, tags every round request with this ID so
	// sites piggy-back per-request profiles on their responses, and makes
	// Execute assemble them into ExecStats.Profile (also retained in the
	// coordinator's profile ring — see TakeProfiles — and published to
	// Obs.Profiles). Empty leaves requests untagged and wire-identical to
	// the pre-profiling protocol.
	QueryID string
	// PropagateDeadline stamps every round request with the remaining
	// per-call budget (Request.DeadlineNs, derived from CallTimeout / the
	// execution context) so sites shed already-doomed work instead of
	// computing answers nobody will read. Off by default: untagged
	// requests stay byte-identical to the pre-deadline wire encoding.
	PropagateDeadline bool

	profMu sync.Mutex
	// profiles retains the last profileRingCap assembled query profiles
	// until TakeProfiles drains them.
	//
	//lint:guarded-by profMu
	profiles []*QueryProfile
}

// profileRingCap bounds the coordinator's retained query profiles: a
// serving daemon that never drains them must not grow without bound.
const profileRingCap = 16

// storeProfile retains an assembled profile, evicting the oldest beyond
// the cap.
func (c *Coordinator) storeProfile(p *QueryProfile) {
	c.profMu.Lock()
	defer c.profMu.Unlock()
	c.profiles = append(c.profiles, p)
	if len(c.profiles) > profileRingCap {
		c.profiles = c.profiles[len(c.profiles)-profileRingCap:]
	}
}

// TakeProfiles drains and returns the retained query profiles, oldest
// first.
func (c *Coordinator) TakeProfiles() []*QueryProfile {
	c.profMu.Lock()
	defer c.profMu.Unlock()
	out := c.profiles
	c.profiles = nil
	return out
}

// HealthGate answers whether a site should receive new work. It is the
// coordinator-side consumer of the sites' /readyz endpoints (see
// transport.HTTPHealth); implementations should fail open.
type HealthGate interface {
	Ready(site string) (bool, string)
}

// NewCoordinator returns a coordinator over the given site clients. The
// clients define the participating sites S_B = S_MD.
func NewCoordinator(clients ...transport.Client) *Coordinator {
	return &Coordinator{clients: clients}
}

// Clients returns the coordinator's site clients.
func (c *Coordinator) Clients() []transport.Client { return c.clients }

// NumSites returns the number of participating sites.
func (c *Coordinator) NumSites() int { return len(c.clients) }

// DetailSchema fetches the schema of the named relation for planning. It
// asks the sites in order and returns the first answer, so a down first
// site does not block planning while any site can describe the relation.
func (c *Coordinator) DetailSchema(ctx context.Context, name string) (*relation.Schema, error) {
	if len(c.clients) == 0 {
		return nil, fmt.Errorf("core: coordinator has no sites")
	}
	var lastErr error
	for _, cl := range c.clients {
		callCtx, done := c.callContext(ctx)
		resp, err := cl.Call(callCtx, &transport.Request{Op: transport.OpRelInfo, Rel: name})
		done()
		if err == nil {
			err = resp.Error()
		}
		if err != nil {
			lastErr = fmt.Errorf("core: site %s: %w", cl.SiteID(), err)
			if ctx.Err() != nil {
				return nil, lastErr
			}
			continue
		}
		if resp.Rel == nil || resp.Rel.Schema == nil {
			return nil, fmt.Errorf("core: site returned no schema for %q", name)
		}
		return resp.Rel.Schema, nil
	}
	return nil, lastErr
}

// executionEpoch extends PlanEpoch with the participating site set: the
// same plan over a different set of sites (e.g. a cluster Subset) is a
// different execution and must not resume the other's checkpoint.
func (c *Coordinator) executionEpoch(plan *Plan) string {
	h := fnv.New64a()
	h.Write([]byte(PlanEpoch(plan)))
	for _, cl := range c.clients {
		h.Write([]byte(cl.SiteID()))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// callContext derives the per-call context from ctx under CallTimeout.
func (c *Coordinator) callContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.CallTimeout > 0 {
		return context.WithTimeout(ctx, c.CallTimeout)
	}
	return ctx, func() {}
}

// Run plans and executes a query in one call: it fetches the schemas of
// every detail relation the query references, builds the plan with the
// given optimizer, and executes it.
func (c *Coordinator) Run(ctx context.Context, q gmdj.Query, detailName string, egil Egil) (*relation.Relation, *ExecStats, *Plan, error) {
	schemas := map[string]*relation.Schema{}
	for _, name := range q.DetailNames(detailName) {
		schema, err := c.DetailSchema(ctx, name)
		if err != nil {
			return nil, nil, nil, err
		}
		schemas[name] = schema
	}
	plan, err := egil.BuildPlanSchemas(q, detailName, schemas)
	if err != nil {
		return nil, nil, nil, err
	}
	res, stats, err := c.Execute(ctx, plan)
	return res, stats, plan, err
}

// siteResult carries one site's round result back to the merger.
type siteResult struct {
	site      string
	resp      *transport.Response
	sentB     int64
	recvB     int64
	comm      time.Duration
	shipped   int64
	computeNs int64
	replays   int // round requests re-issued before this result arrived
	hedges    int // duplicate replica sends launched before this result arrived
}

// Execute runs the plan under ctx and returns the final base-result
// structure X. Cancelling ctx aborts all in-flight site calls.
//
// When Obs is set the execution is traced (a "query" span on the
// coordinator track containing one span per round, with each site's RPC
// on its own track) and the per-round statistics are published as
// "coord.*" counters that sum to exactly the returned ExecStats.
func (c *Coordinator) Execute(ctx context.Context, plan *Plan) (*relation.Relation, *ExecStats, error) {
	ctx, span := c.Obs.StartSpanTrack(ctx, "query", obs.TrackCoordinator)
	x, stats, err := c.run(ctx, plan)
	if err != nil {
		span.SetArg("error", err.Error())
	}
	span.End()
	c.publishExec(stats, err)
	if err != nil {
		return nil, nil, err
	}
	return x, stats, nil
}

// run is Execute's body; unlike Execute it returns the partially filled
// statistics alongside an error so the obs layer can publish the rounds
// that did complete.
func (c *Coordinator) run(ctx context.Context, plan *Plan) (*relation.Relation, *ExecStats, error) {
	if len(c.clients) == 0 {
		return nil, nil, fmt.Errorf("core: coordinator has no sites")
	}
	start := time.Now()
	stats := &ExecStats{}

	// A QueryID-tagged execution assembles a profile tree congruent with
	// stats: rounds join both at the same points, so the tree's totals
	// equal ExecStats even on error paths.
	var qp *QueryProfile
	if c.QueryID != "" {
		qp = &QueryProfile{QueryID: c.QueryID}
		stats.Profile = qp
	}

	var x *relation.Relation
	q := plan.Query

	// Execution identity: the epoch names this execution across restarts,
	// and each round's sequence number makes (epoch, round) an idempotency
	// key for site-side replay dedup. Plain executions (no recovery) leave
	// requests untagged so sites never cache for them.
	epoch := c.Epoch
	if epoch == "" {
		epoch = c.executionEpoch(plan)
	}
	tagEpoch := ""
	if c.Checkpoints != nil || c.Replays > 0 {
		tagEpoch = epoch
	}

	// Resume: an interrupted execution of this plan left a checkpoint of
	// its last completed round — restore X and the completed rounds'
	// statistics and skip straight to the first unfinished round.
	done := 0
	if c.Checkpoints != nil {
		cp, err := c.Checkpoints.Load(epoch)
		switch {
		case err != nil:
			c.Obs.Count("checkpoint.errors", 1)
			c.Obs.Event(obs.EventCheckpoint, "", "checkpoint load failed; starting fresh",
				map[string]string{"epoch": epoch, "action": "load-error", "error": err.Error()})
		case cp != nil && cp.Done > 0 && cp.Done <= plan.Rounds():
			x = cp.X
			done = cp.Done
			for _, rs := range cp.Rounds {
				rs.Resumed = true
				stats.Rounds = append(stats.Rounds, rs)
				qp.appendResumed(rs)
			}
			c.Obs.Count("checkpoint.resumed", 1)
			c.Obs.Event(obs.EventCheckpoint, "",
				fmt.Sprintf("resumed execution after %d completed round(s)", done),
				map[string]string{"epoch": epoch, "round": fmt.Sprint(done - 1), "action": "resumed"})
		}
	}
	saveCkpt := func() {
		if c.Checkpoints == nil {
			return
		}
		cp := &Checkpoint{Epoch: epoch, Done: done, X: x, Rounds: stats.Rounds}
		if err := c.Checkpoints.Save(cp); err != nil {
			c.Obs.Count("checkpoint.errors", 1)
			c.Obs.Event(obs.EventCheckpoint, "", "checkpoint write failed",
				map[string]string{"epoch": epoch, "round": fmt.Sprint(done - 1), "action": "write-error", "error": err.Error()})
			return
		}
		c.Obs.Count("checkpoint.written", 1)
		c.Obs.Event(obs.EventCheckpoint, "", "checkpoint written",
			map[string]string{"epoch": epoch, "round": fmt.Sprint(done - 1), "action": "written"})
	}

	// Round 0: compute and synchronize the base-values relation.
	if plan.BaseRound && done == 0 {
		rs := RoundStats{Name: "base"}
		rp := qp.newRound()
		roundCtx, rspan := c.Obs.StartSpanTrack(ctx, "round:base", obs.TrackCoordinator)
		results, err := c.fanout(roundCtx, &rs, rp, tagEpoch, 0, func(cl transport.Client) (*transport.Request, error) {
			return &transport.Request{
				Op:        transport.OpEvalBase,
				Detail:    plan.Detail,
				BaseCols:  q.Base.Cols,
				BaseWhere: whereText(q.Base.Where),
			}, nil
		})
		if err != nil {
			rspan.End()
			return nil, stats, err
		}
		coordStart := time.Now()
		_, sspan := c.Obs.StartSpanTrack(roundCtx, "sync:base", obs.TrackCoordinator)
		var parts []*relation.Relation
		for _, r := range results {
			accountRound(&rs, rp, r)
			parts = append(parts, r.resp.Rel)
		}
		x, err = unionDistinct(parts)
		sspan.End()
		rspan.End()
		if err != nil {
			return nil, stats, fmt.Errorf("core: base synchronization: %w", err)
		}
		rs.CoordTime = time.Since(coordStart)
		stats.Rounds = append(stats.Rounds, rs)
		qp.finishRound(rp, rs)
		done = 1
		saveCkpt()
	}

	baseOff := 0
	if plan.BaseRound {
		baseOff = 1
	}
	for si, step := range plan.Steps {
		seq := si + baseOff
		if seq < done {
			continue // completed before the interruption; restored from checkpoint
		}
		rs := RoundStats{Name: fmt.Sprintf("step %d", si+1)}
		rp := qp.newRound()
		roundCtx, rspan := c.Obs.StartSpanTrack(ctx, "round:"+rs.Name, obs.TrackCoordinator)

		// Collect the step's MDs and aggregate specs.
		var specs []agg.Spec
		rounds := make([]transport.RoundSpec, 0, len(step.MDs))
		chained := len(step.MDs) > 1
		for _, mi := range step.MDs {
			md := q.MDs[mi]
			specs = append(specs, md.Specs()...)
			bAlias, dAlias := md.Aliases()
			spec := transport.RoundSpec{
				Detail:      md.DetailName(plan.Detail),
				BaseAlias:   bAlias,
				DetailAlias: dAlias,
				Finalize:    chained,
				// Dropping untouched groups is unsafe when the
				// coordinator never sees the full base (fused step):
				// a group untouched at every site would vanish from
				// the result instead of keeping empty aggregates.
				Touched: plan.Touched && !step.FuseBase,
			}
			for i, theta := range md.Thetas {
				spec.Thetas = append(spec.Thetas, theta.String())
				var aggs []string
				for _, s := range md.Aggs[i] {
					aggs = append(aggs, s.String())
				}
				spec.Aggs = append(spec.Aggs, aggs)
			}
			rounds = append(rounds, spec)
		}

		// Per-site filtering of the shipped base structure (Theorem 4).
		coordStart := time.Now()
		frags := map[string]*relation.Relation{}
		if !step.FuseBase {
			for _, cl := range c.clients {
				frag := x
				if fs, ok := plan.SiteFilters[cl.SiteID()]; ok && si < len(fs) && fs[si] != nil {
					var err error
					frag, err = filterBase(x, fs[si], q.MDs[step.MDs[0]])
					if err != nil {
						rspan.End()
						return nil, stats, fmt.Errorf("core: site filter for %s: %w", cl.SiteID(), err)
					}
				}
				frags[cl.SiteID()] = frag
			}
		}
		prepTime := time.Since(coordStart)

		// Stream fragments into the synchronizer as sites finish: the
		// coordinator merges early arrivals while slower sites still
		// compute (the incremental synchronization §3.2 describes).
		stream := c.fanoutStream(roundCtx, tagEpoch, seq, func(cl transport.Client) (*transport.Request, error) {
			req := &transport.Request{Op: transport.OpEvalRounds, Rounds: rounds, Keys: plan.Keys}
			if step.FuseBase {
				req.Detail = plan.Detail
				req.BaseCols = q.Base.Cols
				req.BaseWhere = whereText(q.Base.Where)
			} else {
				req.Base = frags[cl.SiteID()]
			}
			return req, nil
		})

		// Synchronize: merge primitive states into X keyed on K.
		_, sspan := c.Obs.StartSpanTrack(roundCtx, "sync:"+rs.Name, obs.TrackCoordinator)
		merged, mergeTime, err := c.synchronize(x, stream, specs, plan, step.FuseBase, &rs, rp)
		sspan.End()
		rspan.End()
		if err != nil {
			return nil, stats, fmt.Errorf("core: synchronization of step %d: %w", si+1, err)
		}
		x = merged
		rs.CoordTime = prepTime + mergeTime
		stats.Rounds = append(stats.Rounds, rs)
		qp.finishRound(rp, rs)
		done = seq + 1
		saveCkpt()
	}

	// The execution completed: sites can evict its replay-dedup entries
	// now instead of waiting for them to age out under concurrent load.
	if tagEpoch != "" {
		c.notifyEpochDone(ctx, tagEpoch)
	}

	// The execution completed: its checkpoint can never be resumed again
	// (a rerun of the same plan is a fresh execution, not a recovery).
	if c.Checkpoints != nil {
		if err := c.Checkpoints.Clear(epoch); err != nil {
			c.Obs.Count("checkpoint.errors", 1)
			c.Obs.Event(obs.EventCheckpoint, "", "checkpoint clear failed",
				map[string]string{"epoch": epoch, "action": "clear-error", "error": err.Error()})
		} else {
			c.Obs.Count("checkpoint.cleared", 1)
			c.Obs.Event(obs.EventCheckpoint, "", "checkpoint cleared after completion",
				map[string]string{"epoch": epoch, "action": "cleared"})
		}
	}

	stats.Wall = time.Since(start)
	return x, stats, nil
}

// fanout sends one request per site in parallel and collects all results,
// recording coverage in rs. In strict mode any site failure aborts (and
// cancels the siblings); with AllowPartial the survivors' results are
// returned and the losses recorded, failing only when nothing survived.
func (c *Coordinator) fanout(ctx context.Context, rs *RoundStats, rp *RoundProfile, epoch string, round int, build func(cl transport.Client) (*transport.Request, error)) ([]*siteResult, error) {
	var results []*siteResult
	var firstErr error
	for sr := range c.fanoutStream(ctx, epoch, round, build) {
		if sr.err != nil {
			firstErr = betterErr(firstErr, sr.err)
			rs.Lost = append(rs.Lost, LostSite{Site: sr.site, Err: sr.err.Error()})
			rp.addLost(sr.site, sr.err)
			continue
		}
		rs.Responded = append(rs.Responded, sr.site)
		results = append(results, sr.res)
	}
	if !c.AllowPartial && firstErr != nil {
		return nil, firstErr
	}
	if len(results) == 0 && firstErr != nil {
		return nil, fmt.Errorf("core: all sites lost: %w", firstErr)
	}
	return results, nil
}

// streamItem is one arrival on a fan-out stream.
type streamItem struct {
	site string
	res  *siteResult
	err  error
}

// fanoutStream sends one request per site in parallel and delivers each
// site's result the moment it arrives. The channel closes after all
// sites have answered (successfully or not). Each call is bounded by
// CallTimeout; in strict mode the first failure cancels the in-flight
// calls of the remaining sites, so a doomed round aborts promptly instead
// of waiting for its slowest member.
//
// Requests are tagged with (epoch, round) when epoch is non-empty, and a
// transport-level failure is replayed up to c.Replays times before the
// site counts as lost: because the tag makes the exchange idempotent, a
// replica can answer the replayed round (from its dedup cache if the
// original site already did the work) instead of the whole round
// aborting on the first death.
func (c *Coordinator) fanoutStream(ctx context.Context, epoch string, round int, build func(cl transport.Client) (*transport.Request, error)) <-chan streamItem {
	roundCtx, cancelRound := context.WithCancel(ctx)
	out := make(chan streamItem, len(c.clients))
	var wg sync.WaitGroup
	for _, cl := range c.clients {
		wg.Add(1)
		go func(cl transport.Client) {
			defer wg.Done()
			fail := func(err error) {
				if !c.AllowPartial {
					cancelRound()
				}
				out <- streamItem{site: cl.SiteID(), err: err}
			}
			if c.Health != nil {
				if ready, reason := c.Health.Ready(cl.SiteID()); !ready {
					c.Obs.Event(obs.EventDrain, cl.SiteID(), "site reports not ready",
						map[string]string{"reason": reason, "skipped": fmt.Sprint(c.AllowPartial)})
					if c.AllowPartial {
						// Skip the call entirely: the site asked not to be
						// sent work, and the round can answer without it.
						c.Obs.Count("coord.sites_skipped", 1)
						fail(fmt.Errorf("core: site %s skipped: not ready: %s", cl.SiteID(), reason))
						return
					}
					// Strict mode cannot afford to drop the site; proceed
					// and let shed responses drive replica failover.
				}
			}
			req, err := build(cl)
			if err != nil {
				fail(err)
				return
			}
			req.Epoch, req.Round = epoch, round
			req.QueryID = c.QueryID
			s0, r0, _, t0 := cl.Stats().Snapshot()
			// A hedging client exposes its duplicate-send counters; the
			// delta across this call links the hedges to this round in
			// the profile tree, mirroring the replay linkage.
			hc, hasHC := cl.(interface{ HedgeCounts() (int64, int64) })
			var hedges0 int64
			if hasHC {
				hedges0, _ = hc.HedgeCounts()
			}
			_, span := c.Obs.StartSpanTrack(roundCtx, "rpc:"+req.Op.String(), obs.SiteTrack(cl.SiteID()))
			var resp *transport.Response
			replays := 0
			for {
				callCtx, done := c.callContext(roundCtx)
				if c.PropagateDeadline {
					// Stamp the remaining budget at send time: each
					// replay attempt recomputes it, so a late replay
					// carries its true (smaller) budget. -1 expresses
					// "already expired" (zero would mean "no deadline"
					// on the wire).
					if dl, ok := callCtx.Deadline(); ok {
						if rem := time.Until(dl); rem > 0 {
							req.DeadlineNs = rem.Nanoseconds()
						} else {
							req.DeadlineNs = -1
						}
					}
				}
				resp, err = cl.Call(callCtx, req)
				done()
				if err == nil || resp != nil {
					// Success, or a site-side error: site-side errors are
					// deterministic answers, so replaying cannot change them.
					break
				}
				if replays >= c.Replays || roundCtx.Err() != nil {
					break
				}
				replays++
				c.Obs.Count("coord.replays", 1)
				c.Obs.Event(obs.EventReplay, cl.SiteID(),
					fmt.Sprintf("replaying round %d request after transport failure", round),
					map[string]string{
						"epoch": epoch, "round": fmt.Sprint(round),
						"attempt": fmt.Sprint(replays), "error": err.Error(),
					})
			}
			if err == nil {
				err = resp.Error()
			}
			if err != nil {
				span.SetArg("error", err.Error())
				span.End()
				fail(fmt.Errorf("core: site %s: %w", cl.SiteID(), err))
				return
			}
			s1, r1, _, t1 := cl.Stats().Snapshot()
			span.SetArg("bytes_sent", fmt.Sprint(s1-s0))
			span.SetArg("bytes_received", fmt.Sprint(r1-r0))
			if replays > 0 {
				span.SetArg("replays", fmt.Sprint(replays))
			}
			hedges := 0
			if hasHC {
				h1, _ := hc.HedgeCounts()
				hedges = int(h1 - hedges0)
			}
			if hedges > 0 {
				span.SetArg("hedges", fmt.Sprint(hedges))
			}
			span.End()
			res := &siteResult{
				site: cl.SiteID(), resp: resp,
				sentB: s1 - s0, recvB: r1 - r0, comm: t1 - t0,
				computeNs: resp.ComputeNs,
				replays:   replays,
				hedges:    hedges,
			}
			if req.Base != nil {
				res.shipped = int64(req.Base.Len())
			}
			out <- streamItem{site: cl.SiteID(), res: res}
		}(cl)
	}
	go func() {
		wg.Wait()
		cancelRound()
		close(out)
	}()
	return out
}

// notifyEpochDone tells every site, in parallel and best-effort, that the
// tagged execution completed so its (epoch, round) dedup entries can be
// evicted immediately. Failures are ignored: OpEpochDone is a memory
// optimization, not a correctness requirement — a site that never hears
// it ages the epoch out on its own.
func (c *Coordinator) notifyEpochDone(ctx context.Context, epoch string) {
	var wg sync.WaitGroup
	for _, cl := range c.clients {
		wg.Add(1)
		go func(cl transport.Client) {
			defer wg.Done()
			callCtx, done := c.callContext(ctx)
			if c.CallTimeout <= 0 {
				// Never let a hung site stall a completed query on a
				// courtesy notification.
				callCtx, done = context.WithTimeout(ctx, 2*time.Second)
			}
			defer done()
			resp, err := cl.Call(callCtx, &transport.Request{Op: transport.OpEpochDone, Epoch: epoch})
			if err == nil && resp != nil {
				c.Obs.Count("coord.epoch_done_acks", 1)
			}
		}(cl)
	}
	wg.Wait()
}

// betterErr keeps the most informative of two round errors: cancellation
// fallout ("context canceled" from a sibling aborted by first-error
// cancellation) never shadows the root cause.
func betterErr(cur, next error) error {
	switch {
	case cur == nil:
		return next
	case errors.Is(cur, context.Canceled) && !errors.Is(next, context.Canceled):
		return next
	default:
		return cur
	}
}

// publishExec publishes one execution's statistics into the obs sinks:
// counters under "coord.*" summed from the completed rounds (so the
// registry totals always match what ExecStats reports), histograms of
// the per-round time breakdown, and events for lost sites and degraded
// results.
func (c *Coordinator) publishExec(stats *ExecStats, execErr error) {
	if stats == nil {
		return
	}
	if p := stats.Profile; p != nil {
		p.WallNs = int64(stats.Wall)
		p.Partial = stats.Partial()
		c.storeProfile(p)
		c.publishProfile(p)
	}
	o := c.Obs
	if o == nil {
		return
	}
	o.Count("coord.queries", 1)
	if execErr != nil {
		o.Count("coord.queries_failed", 1)
	}
	for _, r := range stats.Rounds {
		o.Count("coord.rounds", 1)
		if r.Resumed {
			o.Count("coord.rounds_resumed", 1)
		}
		o.Count("coord.bytes_to_sites", r.BytesToSites)
		o.Count("coord.bytes_from_sites", r.BytesFromSites)
		o.Count("coord.groups_shipped", r.GroupsShipped)
		o.Count("coord.groups_received", r.GroupsReceived)
		o.Count("coord.sites_lost", int64(len(r.Lost)))
		o.Observe("coord.round_site_ns", r.SiteTime.Nanoseconds())
		o.Observe("coord.round_coord_ns", r.CoordTime.Nanoseconds())
		o.Observe("coord.round_comm_ns", r.CommTime.Nanoseconds())
		for _, l := range r.Lost {
			o.Event(obs.EventSiteLost, l.Site, "site contributed nothing to round "+r.Name,
				map[string]string{"round": r.Name, "error": l.Err})
		}
	}
	if stats.Partial() {
		o.Count("coord.queries_partial", 1)
		o.Event(obs.EventPartial, "", "query degraded to a partial result",
			map[string]string{"lost": strings.Join(stats.LostSites(), ",")})
	}
}

// Straggler events fire only when the skew is both large
// (stragglerEventRatio: slowest site at N× the round median) and material
// (stragglerEventMinSite: the slowest site's time itself) — microsecond
// rounds produce huge ratios out of clock noise, not out of skew.
const (
	stragglerEventRatio   = 4.0
	stragglerEventMinSite = 5 * time.Millisecond
)

// publishProfile publishes a finished query profile's skew telemetry:
// per-round straggler and row-imbalance histograms (×1000 fixed point),
// straggler events for rounds one site dominated, the encoded profile
// into the obs /profiles ring, and a per-query latency histogram.
func (c *Coordinator) publishProfile(p *QueryProfile) {
	o := c.Obs
	if o == nil {
		return
	}
	o.Count("coord.queries_profiled", 1)
	o.Observe("profile.query_wall_ns", p.WallNs)
	for i := range p.Rounds {
		rp := &p.Rounds[i]
		if rp.Resumed || len(rp.Sites) == 0 {
			continue
		}
		ratio := rp.StragglerRatio()
		if ratio > 0 {
			o.Observe("profile.straggler_x1000", int64(ratio*1000))
		}
		if imb := rp.RowImbalance(); imb > 0 {
			o.Observe("profile.row_imbalance_x1000", int64(imb*1000))
		}
		if ratio >= stragglerEventRatio && time.Duration(rp.SiteNs) >= stragglerEventMinSite {
			o.Event(obs.EventStraggler, rp.SlowestSite(),
				fmt.Sprintf("site dominated round %s at %.1fx the median", rp.Name, ratio),
				map[string]string{
					"query_id": p.QueryID, "round": rp.Name,
					"ratio_x1000": fmt.Sprint(int64(ratio * 1000)),
				})
		}
	}
	if b, err := p.JSON(); err == nil {
		o.AddProfile(b)
	}
}

// accountRound folds one site's wire and compute statistics into the
// round's statistics, and (when the execution is profiled) appends the
// matching per-site profile entry — one shared accounting point is what
// guarantees the profile tree and RoundStats can never disagree.
func accountRound(rs *RoundStats, rp *RoundProfile, r *siteResult) {
	rp.addSite(r)
	rs.BytesToSites += r.sentB
	rs.BytesFromSites += r.recvB
	rs.GroupsShipped += r.shipped
	if r.resp.Rel != nil {
		rs.GroupsReceived += int64(r.resp.Rel.Len())
	}
	d := time.Duration(r.computeNs)
	rs.SiteTimeTotal += d
	if d > rs.SiteTime {
		rs.SiteTime = d
	}
	if r.comm > rs.CommTime {
		rs.CommTime = r.comm
	}
	if r.replays > 0 {
		rs.Replayed = append(rs.Replayed, r.site)
	}
	if r.hedges > 0 {
		rs.Hedged = append(rs.Hedged, r.site)
	}
}

// synchronize merges the sites' sub-aggregate fragments into X as they
// arrive on the stream and appends the step's finalized aggregate columns
// (Theorem 1). Incremental consumption is the behavior §3.2 describes:
// the coordinator synchronizes early fragments while slower sites are
// still computing. It returns the new X and the coordinator time spent
// merging (excluding time blocked waiting on the stream).
func (c *Coordinator) synchronize(x *relation.Relation, stream <-chan streamItem, specs []agg.Spec, plan *Plan, fused bool, rs *RoundStats, rp *RoundProfile) (*relation.Relation, time.Duration, error) {
	var mergeTime time.Duration
	var firstErr error

	// Merge state, initialized lazily for fused steps (the base schema
	// comes from the first fragment).
	var keyIdx []int
	index := map[string]int{}
	var accs [][][]*agg.Acc
	newAccs := func() [][]*agg.Acc {
		a := make([][]*agg.Acc, len(specs))
		for i, sp := range specs {
			a[i] = agg.NewAccs(sp)
		}
		return a
	}
	ready := false

	initState := func(firstFrag *relation.Relation) error {
		if fused {
			baseSchema, _, err := firstFrag.Schema.Project(plan.Query.Base.Cols)
			if err != nil {
				return fmt.Errorf("fused step base schema: %w", err)
			}
			x = relation.New(baseSchema)
		} else if x == nil {
			return fmt.Errorf("no base-result structure before non-fused step")
		}
		keyIdx = make([]int, len(plan.Keys))
		for i, k := range plan.Keys {
			p, err := x.Schema.MustLookup(k)
			if err != nil {
				return fmt.Errorf("key %q: %w", k, err)
			}
			keyIdx[i] = p
		}
		for pos, row := range x.Rows {
			index[relation.RowKey(row, keyIdx)] = pos
		}
		accs = make([][][]*agg.Acc, len(x.Rows))
		for i := range accs {
			accs[i] = newAccs()
		}
		ready = true
		return nil
	}

	mergeFragment := func(r *siteResult) error {
		h := r.resp.Rel
		if h == nil {
			return fmt.Errorf("site %s returned no relation", r.site)
		}
		if !ready {
			if err := initState(h); err != nil {
				return err
			}
		}
		// Resolve column positions in this fragment by name.
		hKey := make([]int, len(plan.Keys))
		for i, k := range plan.Keys {
			p, err := h.Schema.MustLookup(k)
			if err != nil {
				return fmt.Errorf("site %s fragment: key %q: %w", r.site, k, err)
			}
			hKey[i] = p
		}
		var hBase []int
		if fused {
			hBase = make([]int, x.Schema.Len())
			for i, col := range x.Schema.Cols {
				p, err := h.Schema.MustLookup(col.Name)
				if err != nil {
					return fmt.Errorf("site %s fragment: base column %q: %w", r.site, col.Name, err)
				}
				hBase[i] = p
			}
		}
		prims := make([][]int, len(specs))
		for si, sp := range specs {
			prims[si] = make([]int, len(sp.Prims()))
			for pi := range sp.Prims() {
				p, err := h.Schema.MustLookup(sp.SubColName(pi))
				if err != nil {
					return fmt.Errorf("site %s fragment: %w", r.site, err)
				}
				prims[si][pi] = p
			}
		}
		for _, row := range h.Rows {
			key := relation.RowKey(row, hKey)
			pos, ok := index[key]
			if !ok {
				if !fused {
					// A fragment group the coordinator never shipped:
					// only legal in fused mode.
					return fmt.Errorf("site %s returned unknown group", r.site)
				}
				nr := make(relation.Row, len(hBase))
				for i, p := range hBase {
					nr[i] = row[p]
				}
				x.Rows = append(x.Rows, nr)
				accs = append(accs, newAccs())
				pos = len(x.Rows) - 1
				index[key] = pos
			}
			for si := range specs {
				for pi, p := range prims[si] {
					if err := accs[pos][si][pi].Merge(row[p]); err != nil {
						return fmt.Errorf("site %s group merge: %w", r.site, err)
					}
				}
			}
		}
		return nil
	}

	// Consume arrivals; merge each as soon as it lands. Site failures are
	// fatal in strict mode but only coverage loss in degraded mode; merge
	// failures (corrupt or inconsistent fragments) are always fatal.
	var mergeErr error
	for sr := range stream {
		if sr.err != nil {
			firstErr = betterErr(firstErr, sr.err)
			rs.Lost = append(rs.Lost, LostSite{Site: sr.site, Err: sr.err.Error()})
			rp.addLost(sr.site, sr.err)
			continue
		}
		t0 := time.Now()
		accountRound(rs, rp, sr.res)
		if mergeErr == nil && (c.AllowPartial || firstErr == nil) {
			if err := mergeFragment(sr.res); err != nil {
				mergeErr = err
			} else {
				rs.Responded = append(rs.Responded, sr.site)
			}
		}
		mergeTime += time.Since(t0)
	}
	if mergeErr != nil {
		return nil, mergeTime, mergeErr
	}
	if firstErr != nil && !c.AllowPartial {
		return nil, mergeTime, firstErr
	}
	if !ready {
		if firstErr != nil {
			return nil, mergeTime, fmt.Errorf("all sites lost: %w", firstErr)
		}
		return nil, mergeTime, fmt.Errorf("no fragments arrived")
	}

	// Finalize the step's aggregates into new X columns.
	t0 := time.Now()
	outCols := make([]relation.Column, len(specs))
	for i, sp := range specs {
		outCols[i] = sp.OutColumn()
	}
	outSchema, err := x.Schema.Concat(outCols...)
	if err != nil {
		return nil, mergeTime, err
	}
	out := relation.New(outSchema)
	out.Rows = make([]relation.Row, len(x.Rows))
	for gi, row := range x.Rows {
		nr := make(relation.Row, 0, outSchema.Len())
		nr = append(nr, row...)
		for si, sp := range specs {
			states := make([]value.V, len(accs[gi][si]))
			for pi, a := range accs[gi][si] {
				states[pi] = a.Result()
			}
			v, err := sp.Finalize(states)
			if err != nil {
				return nil, mergeTime, fmt.Errorf("finalize %s: %w", sp.As, err)
			}
			nr = append(nr, v)
		}
		out.Rows[gi] = nr
	}
	mergeTime += time.Since(t0)
	return out, mergeTime, nil
}

// filterBase applies a Theorem-4 site filter to the base structure.
func filterBase(x *relation.Relation, f expr.Expr, md gmdj.MD) (*relation.Relation, error) {
	bAlias, _ := md.Aliases()
	bound, err := expr.Bind(f, expr.Binding{Base: x.Schema, BaseAliases: []string{bAlias}})
	if err != nil {
		return nil, err
	}
	out := relation.New(x.Schema)
	for _, row := range x.Rows {
		ok, err := bound.EvalBool(row, nil)
		if err != nil {
			return nil, err
		}
		if ok {
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// unionDistinct merges base fragments with set semantics.
func unionDistinct(parts []*relation.Relation) (*relation.Relation, error) {
	var out *relation.Relation
	for _, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("missing base fragment")
		}
		if out == nil {
			out = relation.New(p.Schema)
		}
		if err := out.Union(p); err != nil {
			return nil, err
		}
	}
	if out == nil {
		return nil, fmt.Errorf("no base fragments")
	}
	return out.DistinctProject(out.Schema.Names())
}

func whereText(e expr.Expr) string {
	if e == nil {
		return ""
	}
	return e.String()
}
