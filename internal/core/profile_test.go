package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/relation"
	"repro/internal/site"
	"repro/internal/transport"
)

// TestProfileByteExact is the tentpole invariant: a QueryID-tagged
// execution's profile tree must sum to ExecStats byte for byte — round
// totals are verbatim copies, and the per-site entries decompose them
// exactly.
func TestProfileByteExact(t *testing.T) {
	coord, cat, _ := cluster(t, testRows(200, 8), 4, true)
	coord.QueryID = "q-exact"
	_, stats, _, err := coord.Run(context.Background(), example1(), "flow", Egil{Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	p := stats.Profile
	if p == nil {
		t.Fatal("tagged execution produced no profile")
	}
	if p.QueryID != "q-exact" {
		t.Errorf("profile QueryID = %q", p.QueryID)
	}
	if p.WallNs != int64(stats.Wall) {
		t.Errorf("profile wall = %d, stats wall = %d", p.WallNs, int64(stats.Wall))
	}
	assertProfileMatchesStats(t, p, stats)
	if _, err := p.JSON(); err != nil {
		t.Fatalf("profile JSON: %v", err)
	}

	// The coordinator retains the profile for TakeProfiles; draining twice
	// yields it exactly once.
	got := coord.TakeProfiles()
	if len(got) != 1 || got[0] != p {
		t.Errorf("TakeProfiles = %v, want the one profile", got)
	}
	if again := coord.TakeProfiles(); len(again) != 0 {
		t.Errorf("second TakeProfiles = %v, want empty", again)
	}
}

// assertProfileMatchesStats checks every round of the tree against
// ExecStats: totals equal, per-site entries sum to the totals.
func assertProfileMatchesStats(t *testing.T, p *QueryProfile, stats *ExecStats) {
	t.Helper()
	if len(p.Rounds) != len(stats.Rounds) {
		t.Fatalf("profile rounds = %d, stats rounds = %d", len(p.Rounds), len(stats.Rounds))
	}
	for i, rs := range stats.Rounds {
		rp := &p.Rounds[i]
		if rp.Name != rs.Name || rp.Resumed != rs.Resumed {
			t.Errorf("round %d: name/resumed %q/%v != %q/%v", i, rp.Name, rp.Resumed, rs.Name, rs.Resumed)
		}
		if rp.BytesToSites != rs.BytesToSites || rp.BytesFromSites != rs.BytesFromSites ||
			rp.GroupsShipped != rs.GroupsShipped || rp.GroupsReceived != rs.GroupsReceived ||
			rp.SiteNs != int64(rs.SiteTime) || rp.SiteTotalNs != int64(rs.SiteTimeTotal) ||
			rp.CoordNs != int64(rs.CoordTime) || rp.CommNs != int64(rs.CommTime) {
			t.Errorf("round %q totals diverge from stats:\nprofile %+v\nstats   %+v", rs.Name, *rp, rs)
		}
		if rs.Resumed {
			if len(rp.Sites) != 0 {
				t.Errorf("resumed round %q carries %d site entries", rs.Name, len(rp.Sites))
			}
			continue
		}
		var sent, recv, shipped, returned, computeSum, computeMax int64
		live := 0
		for j, s := range rp.Sites {
			if j > 0 && rp.Sites[j-1].Site >= s.Site {
				t.Errorf("round %q: sites not sorted: %q >= %q", rs.Name, rp.Sites[j-1].Site, s.Site)
			}
			if s.Lost {
				if s.BytesSent != 0 || s.BytesRecv != 0 || s.RowsReturned != 0 {
					t.Errorf("lost site %q carries nonzero numbers: %+v", s.Site, s)
				}
				continue
			}
			live++
			sent += s.BytesSent
			recv += s.BytesRecv
			shipped += s.RowsShipped
			returned += s.RowsReturned
			computeSum += s.ComputeNs
			if s.ComputeNs > computeMax {
				computeMax = s.ComputeNs
			}
			if s.Remote == nil {
				t.Errorf("round %q site %q: no piggy-backed site profile", rs.Name, s.Site)
			} else {
				if s.Remote.Outcome != transport.OutcomeOK {
					t.Errorf("round %q site %q outcome = %q", rs.Name, s.Site, s.Remote.Outcome)
				}
				if int64(s.Remote.RowsOut) != s.RowsReturned {
					t.Errorf("round %q site %q: remote rows_out %d != returned %d",
						rs.Name, s.Site, s.Remote.RowsOut, s.RowsReturned)
				}
			}
		}
		if live != len(rs.Responded) {
			t.Errorf("round %q: %d live entries, %d responded", rs.Name, live, len(rs.Responded))
		}
		if sent != rs.BytesToSites || recv != rs.BytesFromSites ||
			shipped != rs.GroupsShipped || returned != rs.GroupsReceived ||
			computeSum != int64(rs.SiteTimeTotal) || computeMax != int64(rs.SiteTime) {
			t.Errorf("round %q: site sums (sent %d recv %d shipped %d returned %d computeSum %d computeMax %d) do not decompose stats %+v",
				rs.Name, sent, recv, shipped, returned, computeSum, computeMax, rs)
		}
	}
}

// TestUntaggedRunHasNoProfile: without a QueryID the execution must not
// profile — no tree on the stats, nothing retained.
func TestUntaggedRunHasNoProfile(t *testing.T) {
	coord, cat, _ := cluster(t, testRows(60, 3), 2, true)
	_, stats, _, err := coord.Run(context.Background(), example1(), "flow", Egil{Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Profile != nil {
		t.Error("untagged execution grew a profile")
	}
	if got := coord.TakeProfiles(); len(got) != 0 {
		t.Errorf("TakeProfiles = %v, want empty", got)
	}
}

// TestConcurrentProfilesNoBleed runs tagged queries concurrently through
// separate coordinators over the SAME site engines and asserts every
// profile carries its own QueryID and decomposes its own ExecStats —
// i.e. no cross-query contamination. Run with -race.
func TestConcurrentProfilesNoBleed(t *testing.T) {
	rows := testRows(150, 11)
	const nSites = 3
	parts := make([]*relation.Relation, nSites)
	for i := range parts {
		parts[i] = relation.New(flowSchema())
	}
	for _, row := range rows {
		s := int(row[0].I) % nSites
		parts[s].Rows = append(parts[s].Rows, row)
	}
	var clients []transport.Client
	ids := make([]string, nSites)
	for i := 0; i < nSites; i++ {
		ids[i] = fmt.Sprintf("site%d", i)
		eng := site.NewEngine(ids[i])
		eng.Load("flow", parts[i])
		clients = append(clients, transport.NewLocalClient(ids[i], eng, transport.CostModel{}))
	}
	cat := catalog.New(ids...)

	const queries = 8
	var wg sync.WaitGroup
	errs := make([]error, queries)
	for q := 0; q < queries; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			coord := NewCoordinator(clients...)
			coord.QueryID = fmt.Sprintf("conc-%03d", q)
			coord.Epoch = fmt.Sprintf("e%03d", q)
			_, stats, _, err := coord.Run(context.Background(), example1(), "flow", Egil{Catalog: cat})
			if err != nil {
				errs[q] = err
				return
			}
			p := stats.Profile
			if p == nil {
				errs[q] = fmt.Errorf("query %d: no profile", q)
				return
			}
			if p.QueryID != coord.QueryID {
				errs[q] = fmt.Errorf("query %d: profile carries %q", q, p.QueryID)
				return
			}
			for _, rp := range p.Rounds {
				for _, s := range rp.Sites {
					if s.Remote == nil {
						errs[q] = fmt.Errorf("query %d: site %s has no remote profile", q, s.Site)
						return
					}
				}
			}
			// Byte-exactness must hold per query even under contention.
			sub := &testing.T{}
			assertProfileMatchesStats(sub, p, stats)
			if sub.Failed() {
				errs[q] = fmt.Errorf("query %d: profile does not decompose its own stats", q)
			}
		}(q)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestRenderAnalyzeGolden pins the timing-free report byte for byte on a
// handcrafted execution, so renderer drift cannot hide behind real runs.
func TestRenderAnalyzeGolden(t *testing.T) {
	plan := &Plan{Detail: "flow", Keys: []string{"SourceAS"}, BaseRound: true}
	stats := &ExecStats{
		Rounds: []RoundStats{{
			Name:           "base",
			Responded:      []string{"site0", "site1"},
			BytesToSites:   100,
			BytesFromSites: 300,
			GroupsReceived: 12,
		}},
		Wall: 5 * time.Millisecond,
		Profile: &QueryProfile{
			QueryID: "q-golden",
			Rounds: []RoundProfile{{
				Name:           "base",
				BytesToSites:   100,
				BytesFromSites: 300,
				GroupsReceived: 12,
				Sites: []SiteRoundProfile{
					{Site: "site0", BytesSent: 50, BytesRecv: 200, RowsReturned: 9,
						Remote: &transport.SiteProfile{Outcome: transport.OutcomeOK, Engine: "vector",
							RowsOut: 9, VecRows: 40, VecSelected: 30, Rounds: 1}},
					{Site: "site1", BytesSent: 50, BytesRecv: 100, RowsReturned: 3, Replays: 1,
						Remote: &transport.SiteProfile{Outcome: transport.OutcomeOK, Engine: "row",
							RowsOut: 3, Rounds: 1}},
				},
			}},
		},
	}
	got := RenderAnalyze(plan, stats, AnalyzeOptions{})
	want := plan.Explain() +
		"analyze: 1 round(s) executed\n" +
		"  round base: 2/2 sites, 100 B to sites / 300 B from sites, 0 groups shipped / 12 received\n" +
		"    site0: shipped 0 rows, returned 9 rows, engine vector, vec rows 40 (selected 30), outcome ok\n" +
		"    site1: shipped 0 rows, returned 3 rows, 1 replay(s), engine row, outcome ok\n" +
		"    row imbalance 1.50x\n" +
		"totals: 400 bytes moved, 12 groups moved\n"
	if got != want {
		t.Errorf("RenderAnalyze =\n%s\nwant\n%s", got, want)
	}
	// The same input must render identically on repeat — the determinism
	// contract behind golden EXPLAIN ANALYZE output.
	if again := RenderAnalyze(plan, stats, AnalyzeOptions{}); again != got {
		t.Error("RenderAnalyze is not deterministic for fixed input")
	}
	// Timing mode adds clock readings.
	timed := RenderAnalyze(plan, stats, AnalyzeOptions{Timing: true})
	if !strings.Contains(timed, "wall 5ms") || !strings.Contains(timed, "site(max)") {
		t.Errorf("timed report missing durations:\n%s", timed)
	}
}
