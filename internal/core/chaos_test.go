package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/gmdj"
	"repro/internal/relation"
	"repro/internal/site"
	"repro/internal/transport"
)

func newTestCatalog(nSites int) *catalog.Catalog {
	ids := make([]string, nSites)
	for i := range ids {
		ids[i] = fmt.Sprintf("site%d", i)
	}
	return catalog.New(ids...)
}

// chaosCluster builds an in-process cluster whose site clients are each
// wrapped in a seeded chaos injector, rows split round-robin. It returns
// the injectors (indexed by site) for scripting faults and the whole
// relation for computing expected results.
func chaosCluster(t *testing.T, rows []relation.Row, nSites int, seed int64) (*Coordinator, []*transport.Chaos, *relation.Relation) {
	t.Helper()
	whole := relation.New(flowSchema())
	whole.Rows = rows
	parts := make([]*relation.Relation, nSites)
	for i := range parts {
		parts[i] = relation.New(flowSchema())
	}
	for i, row := range rows {
		parts[i%nSites].Rows = append(parts[i%nSites].Rows, row)
	}
	chaos := make([]*transport.Chaos, nSites)
	clients := make([]transport.Client, nSites)
	for i := 0; i < nSites; i++ {
		id := fmt.Sprintf("site%d", i)
		eng := site.NewEngine(id)
		eng.Load("flow", parts[i])
		chaos[i] = transport.NewChaos(transport.NewLocalClient(id, eng, transport.CostModel{}), seed+int64(i))
		clients[i] = chaos[i]
	}
	return NewCoordinator(clients...), chaos, whole
}

// retryingChaosCluster additionally wraps every chaos client in a
// reconnector, so transient injected faults are retried like real
// transport failures.
func retryingChaosCluster(t *testing.T, rows []relation.Row, nSites int, attempts int) (*Coordinator, []*transport.Chaos, *relation.Relation) {
	t.Helper()
	inner, chaos, whole := chaosCluster(t, rows, nSites, 1)
	clients := make([]transport.Client, nSites)
	for i, cl := range inner.Clients() {
		cl := cl
		clients[i] = transport.NewReconnector(cl.SiteID(), func() (transport.Client, error) { return cl, nil }, attempts, 0)
	}
	return NewCoordinator(clients...), chaos, whole
}

// TestExecuteSurvivesOneShotSiteErrors: transient transport failures on
// several sites mid-query are absorbed by retries; the result is
// identical to the no-fault run.
func TestExecuteSurvivesOneShotSiteErrors(t *testing.T) {
	rows := testRows(240, 3)
	q := example1()
	coord, chaos, whole := retryingChaosCluster(t, rows, 3, 3)
	// One-shot failures scattered across ops and sites: the schema fetch,
	// a base-round call, and two evalRounds calls.
	chaos[0].FailNext(transport.OpRelInfo, 1)
	chaos[1].FailNext(transport.OpEvalBase, 1)
	chaos[1].FailNext(transport.OpEvalRounds, 2)
	chaos[2].FailNext(transport.OpEvalRounds, 1)

	want, err := gmdj.EvalQuery(whole, q)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, _, err := coord.Run(context.Background(), q, "flow", Egil{Catalog: newTestCatalog(3)})
	if err != nil {
		t.Fatalf("query under one-shot faults: %v", err)
	}
	assertSameRelation(t, "one-shot faults", got, want, q.Keys())
	if stats.Partial() {
		t.Errorf("retried faults must not degrade the result: lost %v", stats.LostSites())
	}
	if chaos[1].Injected() != 3 {
		t.Errorf("site1 injected %d faults, want 3", chaos[1].Injected())
	}
}

// TestReplicaFailoverMidQuery: a logical site whose primary endpoint dies
// after the base round transparently fails over to its replica; the
// multi-round query completes with results identical to the no-fault run.
func TestReplicaFailoverMidQuery(t *testing.T) {
	rows := testRows(240, 4)
	q := example1()
	nSites := 3
	whole := relation.New(flowSchema())
	whole.Rows = rows
	parts := make([]*relation.Relation, nSites)
	for i := range parts {
		parts[i] = relation.New(flowSchema())
	}
	for i, row := range rows {
		parts[i%nSites].Rows = append(parts[i%nSites].Rows, row)
	}

	var failover *transport.Reconnector
	clients := make([]transport.Client, nSites)
	for i := 0; i < nSites; i++ {
		id := fmt.Sprintf("site%d", i)
		mkReplica := func() transport.Client {
			eng := site.NewEngine(id)
			eng.Load("flow", parts[i].Clone())
			return transport.NewLocalClient(id, eng, transport.CostModel{})
		}
		if i != 1 {
			clients[i] = mkReplica()
			continue
		}
		// Site 1 is a replica set: the primary answers the base round and
		// then fails every evalRounds call; the secondary holds the same
		// partition.
		primary := transport.NewChaos(mkReplica(), 11)
		primary.FailNext(transport.OpEvalRounds, 1000)
		secondary := mkReplica()
		failover = transport.NewReplicaSet(id, []func() (transport.Client, error){
			func() (transport.Client, error) { return primary, nil },
			func() (transport.Client, error) { return secondary, nil },
		}, 2, 0)
		clients[i] = failover
	}
	coord := NewCoordinator(clients...)

	want, err := gmdj.EvalQuery(whole, q)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, _, err := coord.Run(context.Background(), q, "flow", Egil{Catalog: newTestCatalog(nSites)})
	if err != nil {
		t.Fatalf("query with mid-query replica failover: %v", err)
	}
	assertSameRelation(t, "replica failover", got, want, q.Keys())
	if stats.Partial() {
		t.Errorf("failover must not degrade the result: lost %v", stats.LostSites())
	}
	if failover.Endpoint() != 1 {
		t.Errorf("endpoint = %d, want 1 (failed over to the replica)", failover.Endpoint())
	}
}

// TestDeadlineExpiryOnHungSite: a site that accepts a round request and
// never answers cannot stall the query — the per-call timeout expires and
// the query fails promptly (strict mode) naming the site.
func TestDeadlineExpiryOnHungSite(t *testing.T) {
	rows := testRows(120, 5)
	coord, chaos, _ := chaosCluster(t, rows, 3, 1)
	coord.CallTimeout = 50 * time.Millisecond
	chaos[2].HangNext(transport.OpEvalRounds)

	start := time.Now()
	_, _, _, err := coord.Run(context.Background(), example1(), "flow", Egil{Catalog: newTestCatalog(3)})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if !strings.Contains(err.Error(), "site2") {
		t.Errorf("error does not name the hung site: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("hung site stalled the query for %v", elapsed)
	}
}

// TestFirstErrorCancelsSiblings: in strict mode the first site failure
// cancels the in-flight calls of its siblings — here a sibling hung with
// no timeout at all, which only first-error cancellation can release.
func TestFirstErrorCancelsSiblings(t *testing.T) {
	rows := testRows(120, 6)
	coord, chaos, _ := chaosCluster(t, rows, 3, 1)
	chaos[0].FailNext(transport.OpEvalRounds, 1)
	chaos[1].HangNext(transport.OpEvalRounds)

	done := make(chan error, 1)
	go func() {
		_, _, _, err := coord.Run(context.Background(), example1(), "flow", Egil{Catalog: newTestCatalog(3)})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected failure")
		}
		// The root cause, not the cancellation fallout, is reported.
		if !errors.Is(err, transport.ErrInjected) {
			t.Errorf("err = %v, want the injected root cause", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("first-error cancellation did not release the hung sibling")
	}
}

// TestDegradedPartialResult: with AllowPartial, losing a site (and all
// its retries) yields a partial result covering the surviving sites, with
// the loss named per round in ExecStats.
func TestDegradedPartialResult(t *testing.T) {
	rows := testRows(240, 7)
	q := example1()
	nSites := 3
	coord, chaos, _ := chaosCluster(t, rows, nSites, 1)
	coord.AllowPartial = true
	chaos[2].FailNext(transport.OpAny, 1000) // site2 is down for the whole query

	// Expected: the centralized evaluation over the surviving partitions.
	survivors := relation.New(flowSchema())
	for i, row := range rows {
		if i%nSites != 2 {
			survivors.Rows = append(survivors.Rows, row)
		}
	}
	want, err := gmdj.EvalQuery(survivors, q)
	if err != nil {
		t.Fatal(err)
	}

	got, stats, _, err := coord.Run(context.Background(), q, "flow", Egil{Catalog: newTestCatalog(nSites)})
	if err != nil {
		t.Fatalf("degraded query failed instead of returning a partial result: %v", err)
	}
	assertSameRelation(t, "degraded", got, want, q.Keys())

	if !stats.Partial() {
		t.Fatal("stats do not mark the result partial")
	}
	if lost := stats.LostSites(); len(lost) != 1 || lost[0] != "site2" {
		t.Errorf("LostSites = %v, want [site2]", lost)
	}
	if len(stats.Rounds) == 0 {
		t.Fatal("no rounds recorded")
	}
	for _, r := range stats.Rounds {
		if len(r.Lost) != 1 || r.Lost[0].Site != "site2" || r.Lost[0].Err == "" {
			t.Errorf("round %s: Lost = %v, want site2 with an error", r.Name, r.Lost)
		}
		if len(r.Responded) != 2 {
			t.Errorf("round %s: Responded = %v, want the two survivors", r.Name, r.Responded)
		}
	}
	if cov := stats.Coverage(); !strings.Contains(cov, "site2") || !strings.Contains(cov, "2/3") {
		t.Errorf("coverage rendering: %q", cov)
	}
	if !strings.Contains(stats.String(), "PARTIAL RESULT") {
		t.Error("stats table does not flag the partial result")
	}
}

// TestDegradedAllSitesLost: degraded mode still fails when nothing
// survives — a partial result needs at least one fragment.
func TestDegradedAllSitesLost(t *testing.T) {
	rows := testRows(60, 8)
	coord, chaos, _ := chaosCluster(t, rows, 2, 1)
	coord.AllowPartial = true
	for _, ch := range chaos {
		ch.FailNext(transport.OpEvalBase, 1000)
		ch.FailNext(transport.OpEvalRounds, 1000)
	}
	_, _, _, err := coord.Run(context.Background(), example1(), "flow", Egil{Catalog: newTestCatalog(2)})
	if err == nil {
		t.Fatal("query with zero surviving sites must fail even in degraded mode")
	}
}

// TestStrictModeStillFails: without AllowPartial a lost site aborts the
// query (the pre-existing strict behavior is the default).
func TestStrictModeStillFails(t *testing.T) {
	rows := testRows(60, 9)
	coord, chaos, _ := chaosCluster(t, rows, 3, 1)
	chaos[1].FailNext(transport.OpEvalRounds, 1000)
	_, _, _, err := coord.Run(context.Background(), example1(), "flow", Egil{Catalog: newTestCatalog(3)})
	if !errors.Is(err, transport.ErrInjected) {
		t.Fatalf("err = %v, want the injected failure", err)
	}
}

// TestExecuteContextCancel: cancelling the caller's context aborts the
// whole execution promptly, even with a site hung and no timeouts set.
func TestExecuteContextCancel(t *testing.T) {
	rows := testRows(120, 10)
	coord, chaos, _ := chaosCluster(t, rows, 3, 1)
	chaos[0].HangNext(transport.OpEvalRounds)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		_, _, _, err := coord.Run(ctx, example1(), "flow", Egil{Catalog: newTestCatalog(3)})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancel did not abort the execution")
	}
}
