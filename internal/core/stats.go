package core

import (
	"fmt"
	"strings"
	"time"
)

// LostSite records a site that contributed nothing to a round: it (and
// all its replicas, when it is a replica set) failed or timed out.
type LostSite struct {
	// Site is the logical site identifier.
	Site string
	// Err is the failure that lost the site.
	Err string
}

// String renders "site (error)".
func (l LostSite) String() string { return fmt.Sprintf("%s (%s)", l.Site, l.Err) }

// RoundStats records one synchronization round of a plan execution.
type RoundStats struct {
	// Name labels the round ("base", "step 1", ...).
	Name string
	// Responded lists the sites whose fragments were merged this round.
	Responded []string
	// Lost lists the sites that contributed nothing this round. Non-empty
	// only in degraded (allow-partial) executions — otherwise a lost site
	// aborts the query.
	Lost []LostSite
	// BytesToSites / BytesFromSites are exact wire sizes.
	BytesToSites   int64
	BytesFromSites int64
	// GroupsShipped / GroupsReceived count base-result rows moved.
	GroupsShipped  int64
	GroupsReceived int64
	// SiteTime is the slowest site's computation time (sites run in
	// parallel); SiteTimeTotal sums all sites' computation.
	SiteTime      time.Duration
	SiteTimeTotal time.Duration
	// CommTime is the slowest site's modeled transfer time this round.
	CommTime time.Duration
	// CoordTime is the coordinator's own work (filtering, merging).
	CoordTime time.Duration
	// Resumed marks a round restored from a checkpoint instead of
	// executed: its numbers were carried over from the interrupted run,
	// so totals still match an uninterrupted execution.
	Resumed bool
	// Replayed lists the sites whose round request had to be re-issued
	// (after a transport failure) before their fragment arrived.
	Replayed []string
	// Hedged lists the sites whose round request was duplicated to a
	// replica (hedged or failed over) before their fragment arrived.
	Hedged []string
}

// ExecStats aggregates a full plan execution.
type ExecStats struct {
	Rounds []RoundStats
	// Wall is the measured end-to-end wall-clock time of Execute.
	Wall time.Duration
	// Profile is the assembled per-round × per-site execution profile
	// when the coordinator tagged this execution with a QueryID; nil
	// otherwise. It is deliberately excluded from JSON — the profile has
	// its own deterministic encoding (QueryProfile.JSON), and keeping it
	// out preserves the byte stability of existing ExecStats consumers.
	Profile *QueryProfile
}

// Partial reports whether any round lost a site, i.e. the result is a
// degraded partial answer covering only the responding sites.
func (s *ExecStats) Partial() bool {
	for _, r := range s.Rounds {
		if len(r.Lost) > 0 {
			return true
		}
	}
	return false
}

// LostSites returns the distinct logical sites lost in any round, in
// first-loss order.
func (s *ExecStats) LostSites() []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range s.Rounds {
		for _, l := range r.Lost {
			if !seen[l.Site] {
				seen[l.Site] = true
				out = append(out, l.Site)
			}
		}
	}
	return out
}

// ResumedRounds counts the rounds restored from a checkpoint rather than
// executed.
func (s *ExecStats) ResumedRounds() int {
	n := 0
	for _, r := range s.Rounds {
		if r.Resumed {
			n++
		}
	}
	return n
}

// ReplayedSites returns the distinct sites whose round request was
// re-issued in any round, in first-replay order.
func (s *ExecStats) ReplayedSites() []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range s.Rounds {
		for _, site := range r.Replayed {
			if !seen[site] {
				seen[site] = true
				out = append(out, site)
			}
		}
	}
	return out
}

// HedgedSites returns the distinct sites whose round request was
// duplicated to a replica in any round, in first-hedge order.
func (s *ExecStats) HedgedSites() []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range s.Rounds {
		for _, site := range r.Hedged {
			if !seen[site] {
				seen[site] = true
				out = append(out, site)
			}
		}
	}
	return out
}

// Coverage renders per-round coverage ("round base: 3/4 sites, lost
// site2 (...)") for degraded executions; empty when nothing was lost.
func (s *ExecStats) Coverage() string {
	if !s.Partial() {
		return ""
	}
	var b strings.Builder
	for _, r := range s.Rounds {
		if len(r.Lost) == 0 {
			continue
		}
		var lost []string
		for _, l := range r.Lost {
			lost = append(lost, l.String())
		}
		fmt.Fprintf(&b, "round %s: %d/%d sites answered, lost %s\n",
			r.Name, len(r.Responded), len(r.Responded)+len(r.Lost), strings.Join(lost, ", "))
	}
	return b.String()
}

// Bytes returns total bytes moved in both directions.
func (s *ExecStats) Bytes() int64 {
	var n int64
	for _, r := range s.Rounds {
		n += r.BytesToSites + r.BytesFromSites
	}
	return n
}

// Groups returns the total number of base-result rows shipped either way.
func (s *ExecStats) Groups() int64 {
	var n int64
	for _, r := range s.Rounds {
		n += r.GroupsShipped + r.GroupsReceived
	}
	return n
}

// SiteTime returns the response-time contribution of site computation:
// the per-round maxima summed over rounds.
func (s *ExecStats) SiteTime() time.Duration {
	var d time.Duration
	for _, r := range s.Rounds {
		d += r.SiteTime
	}
	return d
}

// CoordTime returns total coordinator computation time.
func (s *ExecStats) CoordTime() time.Duration {
	var d time.Duration
	for _, r := range s.Rounds {
		d += r.CoordTime
	}
	return d
}

// CommTime returns the response-time contribution of communication: the
// per-round maxima summed over rounds.
func (s *ExecStats) CommTime() time.Duration {
	var d time.Duration
	for _, r := range s.Rounds {
		d += r.CommTime
	}
	return d
}

// EvalTime is the modeled query evaluation time the experiments report:
// site computation + coordinator computation + communication, composed
// per round as the paper's response-time model does.
func (s *ExecStats) EvalTime() time.Duration {
	return s.SiteTime() + s.CoordTime() + s.CommTime()
}

// String renders a per-round breakdown table.
func (s *ExecStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %12s %12s %8s %8s %12s %12s %12s\n",
		"round", "bytes→sites", "bytes←sites", "grp→", "grp←", "site(max)", "coord", "comm")
	for _, r := range s.Rounds {
		fmt.Fprintf(&b, "%-8s %12d %12d %8d %8d %12s %12s %12s\n",
			r.Name, r.BytesToSites, r.BytesFromSites, r.GroupsShipped, r.GroupsReceived,
			r.SiteTime.Round(time.Microsecond), r.CoordTime.Round(time.Microsecond),
			r.CommTime.Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "total: %d bytes, eval time %s (site %s + coord %s + comm %s), wall %s\n",
		s.Bytes(), s.EvalTime().Round(time.Microsecond),
		s.SiteTime().Round(time.Microsecond), s.CoordTime().Round(time.Microsecond),
		s.CommTime().Round(time.Microsecond), s.Wall.Round(time.Microsecond))
	if s.Partial() {
		fmt.Fprintf(&b, "PARTIAL RESULT — coverage:\n%s", s.Coverage())
	}
	return b.String()
}
