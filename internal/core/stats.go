package core

import (
	"fmt"
	"strings"
	"time"
)

// RoundStats records one synchronization round of a plan execution.
type RoundStats struct {
	// Name labels the round ("base", "step 1", ...).
	Name string
	// BytesToSites / BytesFromSites are exact wire sizes.
	BytesToSites   int64
	BytesFromSites int64
	// GroupsShipped / GroupsReceived count base-result rows moved.
	GroupsShipped  int64
	GroupsReceived int64
	// SiteTime is the slowest site's computation time (sites run in
	// parallel); SiteTimeTotal sums all sites' computation.
	SiteTime      time.Duration
	SiteTimeTotal time.Duration
	// CommTime is the slowest site's modeled transfer time this round.
	CommTime time.Duration
	// CoordTime is the coordinator's own work (filtering, merging).
	CoordTime time.Duration
}

// ExecStats aggregates a full plan execution.
type ExecStats struct {
	Rounds []RoundStats
	// Wall is the measured end-to-end wall-clock time of Execute.
	Wall time.Duration
}

// Bytes returns total bytes moved in both directions.
func (s *ExecStats) Bytes() int64 {
	var n int64
	for _, r := range s.Rounds {
		n += r.BytesToSites + r.BytesFromSites
	}
	return n
}

// Groups returns the total number of base-result rows shipped either way.
func (s *ExecStats) Groups() int64 {
	var n int64
	for _, r := range s.Rounds {
		n += r.GroupsShipped + r.GroupsReceived
	}
	return n
}

// SiteTime returns the response-time contribution of site computation:
// the per-round maxima summed over rounds.
func (s *ExecStats) SiteTime() time.Duration {
	var d time.Duration
	for _, r := range s.Rounds {
		d += r.SiteTime
	}
	return d
}

// CoordTime returns total coordinator computation time.
func (s *ExecStats) CoordTime() time.Duration {
	var d time.Duration
	for _, r := range s.Rounds {
		d += r.CoordTime
	}
	return d
}

// CommTime returns the response-time contribution of communication: the
// per-round maxima summed over rounds.
func (s *ExecStats) CommTime() time.Duration {
	var d time.Duration
	for _, r := range s.Rounds {
		d += r.CommTime
	}
	return d
}

// EvalTime is the modeled query evaluation time the experiments report:
// site computation + coordinator computation + communication, composed
// per round as the paper's response-time model does.
func (s *ExecStats) EvalTime() time.Duration {
	return s.SiteTime() + s.CoordTime() + s.CommTime()
}

// String renders a per-round breakdown table.
func (s *ExecStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %12s %12s %8s %8s %12s %12s %12s\n",
		"round", "bytes→sites", "bytes←sites", "grp→", "grp←", "site(max)", "coord", "comm")
	for _, r := range s.Rounds {
		fmt.Fprintf(&b, "%-8s %12d %12d %8d %8d %12s %12s %12s\n",
			r.Name, r.BytesToSites, r.BytesFromSites, r.GroupsShipped, r.GroupsReceived,
			r.SiteTime.Round(time.Microsecond), r.CoordTime.Round(time.Microsecond),
			r.CommTime.Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "total: %d bytes, eval time %s (site %s + coord %s + comm %s), wall %s\n",
		s.Bytes(), s.EvalTime().Round(time.Microsecond),
		s.SiteTime().Round(time.Microsecond), s.CoordTime().Round(time.Microsecond),
		s.CommTime().Round(time.Microsecond), s.Wall.Round(time.Microsecond))
	return b.String()
}
