package core

//lint:wrap-errors relay errors must preserve child causes for errors.Is/As

import (
	"context"
	"fmt"

	"sync"
	"time"

	"repro/internal/agg"
	"repro/internal/gmdj"
	"repro/internal/relation"
	"repro/internal/transport"
	"repro/internal/value"
)

// Relay is a middle tier of a multi-tier (spanning-tree) coordinator
// architecture — the future-work direction of Section 6 of the paper. A
// relay looks like a single site to its parent (it implements
// transport.Handler) while fanning requests out to its children and
// pre-merging their sub-aggregate fragments before answering, so upstream
// traffic shrinks from the sum of the children's fragments to one merged
// fragment per round.
//
// Pre-merging is possible for exactly the same reason coordinator
// synchronization is (Theorem 1): primitive aggregate states merge
// associatively, so any intermediate tier may combine them keyed on K.
// The parent must set Request.Keys on OpEvalRounds for the relay to merge;
// without keys the relay degrades to pass-through unioning.
//
// A relay threads the request context it receives into every child call,
// so cancellation and deadlines propagate down the whole coordinator
// tree: when a parent abandons a relay call, the relay's own fan-out is
// cancelled and the subtree stops working on the discarded request
// instead of finishing it in the background.
type Relay struct {
	children []transport.Client

	// leafOffset and totalLeaves describe where this relay's leaves sit
	// in the global leaf numbering, so OpGenerate partitions correctly
	// across the whole tree.
	leafOffset  int
	totalLeaves int
}

// NewRelay builds a relay over child clients. The relay's children
// generate partitions leafOffset..leafOffset+len(children)-1 of
// totalLeaves when asked to synthesize datasets.
func NewRelay(children []transport.Client, leafOffset, totalLeaves int) (*Relay, error) {
	if len(children) == 0 {
		return nil, fmt.Errorf("core: relay needs children")
	}
	if leafOffset < 0 || totalLeaves < leafOffset+len(children) {
		return nil, fmt.Errorf("core: relay leaves %d..%d exceed total %d",
			leafOffset, leafOffset+len(children)-1, totalLeaves)
	}
	return &Relay{children: children, leafOffset: leafOffset, totalLeaves: totalLeaves}, nil
}

// Handle implements transport.Handler.
func (r *Relay) Handle(ctx context.Context, req *transport.Request) *transport.Response {
	resp, err := r.handle(ctx, req)
	if err != nil {
		return &transport.Response{Err: fmt.Sprintf("relay: %v", err)}
	}
	return resp
}

func (r *Relay) handle(ctx context.Context, req *transport.Request) (*transport.Response, error) {
	switch req.Op {
	case transport.OpPing:
		_, err := r.fanout(ctx, req)
		return &transport.Response{}, err

	case transport.OpRelInfo:
		resp, err := r.children[0].Call(ctx, req)
		if err != nil {
			return nil, err
		}
		return resp, resp.Error()

	case transport.OpDrop:
		_, err := r.fanout(ctx, req)
		return &transport.Response{}, err

	case transport.OpLoad:
		// A relay cannot split a shipped relation meaningfully; load
		// data at the leaves (or use OpGenerate).
		return nil, fmt.Errorf("cannot load through a relay; load at the leaf sites")

	case transport.OpGenerate:
		if req.Gen == nil {
			return nil, fmt.Errorf("no generator spec")
		}
		start := time.Now()
		resps := make([]*transport.Response, len(r.children))
		errs := make([]error, len(r.children))
		var wg sync.WaitGroup
		for i, child := range r.children {
			wg.Add(1)
			go func(i int, child transport.Client) {
				defer wg.Done()
				sub := *req
				gen := *req.Gen
				gen.Site = r.leafOffset + i
				gen.NumSites = r.totalLeaves
				sub.Gen = &gen
				resp, err := child.Call(ctx, &sub)
				if err == nil {
					err = resp.Error()
				}
				resps[i], errs[i] = resp, err
			}(i, child)
		}
		wg.Wait()
		total := 0
		for i, err := range errs {
			if err != nil {
				return nil, err
			}
			total += resps[i].RowCount
		}
		return &transport.Response{RowCount: total, ComputeNs: time.Since(start).Nanoseconds()}, nil

	case transport.OpEvalBase:
		start := time.Now()
		resps, err := r.fanout(ctx, req)
		if err != nil {
			return nil, err
		}
		var parts []*relation.Relation
		for _, resp := range resps {
			parts = append(parts, resp.Rel)
		}
		merged, err := unionDistinct(parts)
		if err != nil {
			return nil, err
		}
		return &transport.Response{Rel: merged, ComputeNs: time.Since(start).Nanoseconds()}, nil

	case transport.OpEvalRounds:
		return r.evalRounds(ctx, req)

	default:
		return nil, fmt.Errorf("unsupported op %s", req.Op)
	}
}

// fanout sends the same request to every child in parallel under the
// caller's context.
func (r *Relay) fanout(ctx context.Context, req *transport.Request) ([]*transport.Response, error) {
	resps := make([]*transport.Response, len(r.children))
	errs := make([]error, len(r.children))
	var wg sync.WaitGroup
	for i, child := range r.children {
		wg.Add(1)
		go func(i int, child transport.Client) {
			defer wg.Done()
			resp, err := child.Call(ctx, req)
			if err == nil {
				err = resp.Error()
			}
			resps[i], errs[i] = resp, err
		}(i, child)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return resps, nil
}

// evalRounds forwards the round request and pre-merges the children's
// fragments keyed on Request.Keys.
func (r *Relay) evalRounds(ctx context.Context, req *transport.Request) (*transport.Response, error) {
	start := time.Now()
	resps, err := r.fanout(ctx, req)
	if err != nil {
		return nil, err
	}
	frags := make([]*relation.Relation, len(resps))
	for i, resp := range resps {
		if resp.Rel == nil {
			return nil, fmt.Errorf("child %d returned no relation", i)
		}
		frags[i] = resp.Rel
	}
	if len(req.Keys) == 0 {
		// No merge keys: pass-through union (still one message upstream).
		out := relation.New(frags[0].Schema)
		for _, f := range frags {
			if err := out.Union(f); err != nil {
				return nil, err
			}
		}
		return &transport.Response{Rel: out, ComputeNs: time.Since(start).Nanoseconds()}, nil
	}
	merged, err := mergeFragments(frags, req)
	if err != nil {
		return nil, err
	}
	return &transport.Response{Rel: merged, ComputeNs: time.Since(start).Nanoseconds()}, nil
}

// mergeFragments combines sub-aggregate fragments: primitive columns
// merge via their accumulators, the touched counter sums, and all other
// columns (base values, earlier finalized aggregates) are identical per
// group and taken from the first occurrence.
func mergeFragments(frags []*relation.Relation, req *transport.Request) (*relation.Relation, error) {
	schema := frags[0].Schema

	// Parse the round specs to learn which columns are primitive states.
	type primCol struct {
		idx int
		acc func() *agg.Acc
	}
	var primCols []primCol
	for _, round := range req.Rounds {
		for _, list := range round.Aggs {
			for _, text := range list {
				spec, err := agg.ParseSpec(text)
				if err != nil {
					return nil, err
				}
				for pi, prim := range spec.Prims() {
					idx, err := schema.MustLookup(spec.SubColName(pi))
					if err != nil {
						return nil, err
					}
					prim := prim
					star := spec.Star()
					primCols = append(primCols, primCol{
						idx: idx,
						acc: func() *agg.Acc { return agg.NewAcc(prim, star) },
					})
				}
			}
		}
	}
	touchedIdx := -1
	if i, ok := schema.Lookup(gmdj.TouchedCol); ok {
		touchedIdx = i
	}
	keyIdx := make([]int, len(req.Keys))
	for i, k := range req.Keys {
		p, err := schema.MustLookup(k)
		if err != nil {
			return nil, fmt.Errorf("merge key %q: %w", k, err)
		}
		keyIdx[i] = p
	}

	type group struct {
		row     relation.Row // first-seen row (copied)
		accs    []*agg.Acc
		touched int64
	}
	index := map[string]*group{}
	var order []*group
	for _, f := range frags {
		if !f.Schema.Equal(schema) {
			return nil, fmt.Errorf("fragment schemas differ: %s vs %s", f.Schema, schema)
		}
		for _, row := range f.Rows {
			key := relation.RowKey(row, keyIdx)
			g, ok := index[key]
			if !ok {
				g = &group{row: append(relation.Row(nil), row...), accs: make([]*agg.Acc, len(primCols))}
				for i, pc := range primCols {
					g.accs[i] = pc.acc()
				}
				index[key] = g
				order = append(order, g)
			}
			for i, pc := range primCols {
				if err := g.accs[i].Merge(row[pc.idx]); err != nil {
					return nil, fmt.Errorf("merge column %s: %w", schema.Cols[pc.idx].Name, err)
				}
			}
			if touchedIdx >= 0 {
				t, err := row[touchedIdx].AsInt()
				if err != nil {
					return nil, err
				}
				g.touched += t
			}
		}
	}

	out := relation.New(schema)
	out.Rows = make([]relation.Row, 0, len(order))
	for _, g := range order {
		for i, pc := range primCols {
			g.row[pc.idx] = g.accs[i].Result()
		}
		if touchedIdx >= 0 {
			g.row[touchedIdx] = value.NewInt(g.touched)
		}
		out.Rows = append(out.Rows, g.row)
	}
	return out, nil
}
