package core

//lint:wrap-errors admission refusals must stay inspectable with errors.Is

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
)

// ErrAdmission is the sentinel every admission refusal matches with
// errors.Is: the scheduler declined to start (or keep queueing) a query
// because the cluster is saturated. It is a load signal, not a failure of
// the query itself — the caller should shed upstream (HTTP 429), back
// off, and retry later.
var ErrAdmission = errors.New("core: admission rejected")

// AdmissionError is the concrete admission refusal, carrying why the
// query was turned away. errors.Is(err, ErrAdmission) matches it.
type AdmissionError struct {
	// Reason is a human-readable refusal cause ("queue full", "queue
	// wait exceeded 2s", ...).
	Reason string
}

// Error implements error.
func (e *AdmissionError) Error() string { return "core: admission rejected: " + e.Reason }

// Is makes errors.Is(err, ErrAdmission) true for every admission
// refusal without forcing callers through errors.As.
func (e *AdmissionError) Is(target error) bool { return target == ErrAdmission }

// SchedulerConfig tunes the admission scheduler.
type SchedulerConfig struct {
	// MaxConcurrent is how many executions may run at once. Values < 1
	// are treated as 1.
	MaxConcurrent int
	// QueueDepth is how many admissions may wait for a slot beyond
	// MaxConcurrent before new arrivals are rejected outright. 0 means
	// no queue: a full scheduler fails fast.
	QueueDepth int
	// QueueTimeout bounds how long a queued admission waits for a slot
	// before it is rejected; 0 waits as long as the caller's context
	// allows.
	QueueTimeout time.Duration
	// SiteMaxInflight is the per-site concurrency window ceiling for
	// WrapClients gates. Values < 1 are treated as 1.
	SiteMaxInflight int
	// BreakerFailures enables per-site circuit breakers in WrapClients:
	// after this many consecutive failures or sheds the site's breaker
	// opens and calls fail fast with transport.ErrBreakerOpen until a
	// post-cooldown probe succeeds. 0 disables breakers.
	BreakerFailures int
	// BreakerCooldown is how long an open breaker refuses calls before
	// letting one probe through (default 1s when breakers are enabled).
	BreakerCooldown time.Duration
	// Obs, when set, receives admission counters ("sched.admitted",
	// "sched.rejected", "sched.queue_timeouts", "sched.completed"),
	// the "sched.running"/"sched.queued" gauges, backpressure counters
	// ("sched.site_backoffs"), and admission events.
	Obs *obs.Obs
}

// Scheduler admits concurrent query executions against a shared site
// fleet: a bounded number run at once, a bounded queue absorbs bursts,
// and everything beyond that is rejected fast with a typed ErrAdmission
// instead of piling latency onto queries already running. Per-site
// backpressure is separate — see WrapClients — so one slow or shedding
// site throttles calls to itself without stalling admission globally.
//
// The zero Scheduler is not usable; construct with NewScheduler.
type Scheduler struct {
	cfg   SchedulerConfig
	slots chan struct{} // running-execution tokens

	seq int64 // epoch sequence, atomic

	mu sync.Mutex
	//lint:guarded-by mu
	queued int
	//lint:guarded-by mu
	gates map[string]*SiteGate
	//lint:guarded-by mu
	breakers map[string]*transport.Breaker
}

// NewScheduler returns a scheduler for cfg.
func NewScheduler(cfg SchedulerConfig) *Scheduler {
	if cfg.MaxConcurrent < 1 {
		cfg.MaxConcurrent = 1
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	if cfg.SiteMaxInflight < 1 {
		cfg.SiteMaxInflight = 1
	}
	return &Scheduler{
		cfg:      cfg,
		slots:    make(chan struct{}, cfg.MaxConcurrent),
		gates:    map[string]*SiteGate{},
		breakers: map[string]*transport.Breaker{},
	}
}

// Running reports how many executions hold an admission slot.
func (s *Scheduler) Running() int { return len(s.slots) }

// Queued reports how many admissions are waiting for a slot.
func (s *Scheduler) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// NextEpoch derives a unique execution epoch from base. Concurrent
// executions of the same plan would otherwise derive identical epochs
// (the epoch is a deterministic plan hash, which is what lets a restarted
// coordinator find its checkpoint) and poison each other's site-side
// replay dedup; the scheduler's sequence number keeps them distinct.
func (s *Scheduler) NextEpoch(base string) string {
	return fmt.Sprintf("%s-c%06d", base, atomic.AddInt64(&s.seq, 1))
}

// Admit blocks until the caller may start an execution, the queue policy
// rejects it, or ctx is done. On success the returned release function
// must be called exactly once when the execution finishes. On refusal the
// error matches errors.Is(err, ErrAdmission); a caller-cancelled ctx
// surfaces as the context error instead.
func (s *Scheduler) Admit(ctx context.Context) (release func(), err error) {
	o := s.cfg.Obs
	select {
	case s.slots <- struct{}{}:
		return s.admitted(), nil
	default:
	}

	// Saturated: queue if the queue has room, else fail fast.
	s.mu.Lock()
	if s.queued >= s.cfg.QueueDepth {
		queued := s.queued
		s.mu.Unlock()
		o.Count("sched.rejected", 1)
		o.Event(obs.EventAdmission, "", "query rejected: scheduler saturated and queue full",
			map[string]string{"reason": "queue-full", "running": fmt.Sprint(len(s.slots)), "queued": fmt.Sprint(queued)})
		return nil, &AdmissionError{Reason: fmt.Sprintf("%d running, queue full (%d waiting)", len(s.slots), queued)}
	}
	s.queued++
	o.SetGauge("sched.queued", int64(s.queued))
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.queued--
		o.SetGauge("sched.queued", int64(s.queued))
		s.mu.Unlock()
	}()

	wait := ctx.Done()
	var timeout <-chan time.Time
	if s.cfg.QueueTimeout > 0 {
		t := time.NewTimer(s.cfg.QueueTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case s.slots <- struct{}{}:
		return s.admitted(), nil
	case <-timeout:
		o.Count("sched.queue_timeouts", 1)
		o.Event(obs.EventAdmission, "", "queued query timed out waiting for an execution slot",
			map[string]string{"reason": "queue-timeout", "running": fmt.Sprint(len(s.slots))})
		return nil, &AdmissionError{Reason: fmt.Sprintf("queue wait exceeded %v", s.cfg.QueueTimeout)}
	case <-wait:
		return nil, fmt.Errorf("core: admission wait: %w", ctx.Err())
	}
}

// admitted records a successful admission and builds its release func.
func (s *Scheduler) admitted() func() {
	o := s.cfg.Obs
	o.Count("sched.admitted", 1)
	o.SetGauge("sched.running", int64(len(s.slots)))
	var once sync.Once
	return func() {
		once.Do(func() {
			<-s.slots
			o.Count("sched.completed", 1)
			o.SetGauge("sched.running", int64(len(s.slots)))
		})
	}
}

// gate returns (lazily creating) the backpressure gate for one site. All
// executions share the gates, so one query's shed responses slow every
// query's calls to that site — which is the point.
func (s *Scheduler) gate(site string) *SiteGate {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.gates[site]
	if !ok {
		g = NewSiteGate(site, s.cfg.SiteMaxInflight, s.cfg.Obs)
		s.gates[site] = g
	}
	return g
}

// breaker returns (lazily creating) the circuit breaker for one site, or
// nil when breakers are disabled. Like gates, breakers are shared across
// executions: consecutive failures from any query trip the same breaker.
func (s *Scheduler) breaker(site string) *transport.Breaker {
	if s.cfg.BreakerFailures <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.breakers[site]
	if !ok {
		b = transport.NewBreaker(site, s.cfg.BreakerFailures, s.cfg.BreakerCooldown)
		b.SetObs(s.cfg.Obs)
		s.breakers[site] = b
	}
	return b
}

// BreakerState reports one site's breaker position and whether a breaker
// exists for it (false when breakers are disabled or the site has never
// been wrapped).
func (s *Scheduler) BreakerState(site string) (transport.BreakerState, bool) {
	s.mu.Lock()
	b, ok := s.breakers[site]
	s.mu.Unlock()
	if !ok {
		return transport.BreakerClosed, false
	}
	return b.State(), true
}

// OpenBreakers lists the sites whose breaker is currently refusing calls
// (open and still cooling down), sorted for deterministic output.
func (s *Scheduler) OpenBreakers() []string {
	s.mu.Lock()
	breakers := make(map[string]*transport.Breaker, len(s.breakers))
	for site, b := range s.breakers {
		breakers[site] = b
	}
	s.mu.Unlock()
	var out []string
	for site, b := range breakers {
		if b.State() == transport.BreakerOpen {
			out = append(out, site)
		}
	}
	sort.Strings(out)
	return out
}

// WrapClients wraps each client with its site's shared backpressure gate:
// calls through the wrapped clients respect the site's current
// concurrency window, and shed responses (CodeOverloaded/CodeDraining)
// shrink it. Clients belonging to the same SiteID — across concurrent
// executions — share one gate. With BreakerFailures set, the site's
// shared circuit breaker wraps outermost, so an open breaker fails fast
// before the call consumes gate window or queues at the site.
func (s *Scheduler) WrapClients(clients []transport.Client) []transport.Client {
	out := make([]transport.Client, len(clients))
	for i, cl := range clients {
		var wrapped transport.Client = &gatedClient{Client: cl, gate: s.gate(cl.SiteID())}
		if b := s.breaker(cl.SiteID()); b != nil {
			wrapped = transport.NewBreakerClient(wrapped, b)
		}
		out[i] = wrapped
	}
	return out
}

// SiteGate is an AIMD concurrency window for one site, shared by every
// execution calling it. A shed response halves the window (multiplicative
// decrease — the site told us to back off), and a full window of
// consecutive successes grows it by one (additive increase), so
// throughput re-probes upward only as fast as the site keeps absorbing
// it. There is no timer: recovery is driven by successful responses,
// which keeps the gate deterministic under test.
type SiteGate struct {
	site string
	max  int
	obs  *obs.Obs

	mu sync.Mutex
	//lint:guarded-by mu
	window int
	//lint:guarded-by mu
	inUse int
	//lint:guarded-by mu
	streak int
	// wake is closed and replaced whenever capacity may free.
	//
	//lint:guarded-by mu
	wake chan struct{}
}

// NewSiteGate returns a gate for site with the given window ceiling
// (values < 1 are treated as 1). The window starts fully open.
func NewSiteGate(site string, max int, o *obs.Obs) *SiteGate {
	if max < 1 {
		max = 1
	}
	return &SiteGate{site: site, max: max, obs: o, window: max, wake: make(chan struct{})}
}

// Window reports the current concurrency window.
func (g *SiteGate) Window() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.window
}

// Acquire blocks until the site's window has room or ctx is done.
func (g *SiteGate) Acquire(ctx context.Context) error {
	for {
		g.mu.Lock()
		if g.inUse < g.window {
			g.inUse++
			g.mu.Unlock()
			return nil
		}
		wake := g.wake
		g.mu.Unlock()
		g.obs.Count("sched.site_gate_waits", 1)
		select {
		case <-wake:
		case <-ctx.Done():
			return fmt.Errorf("core: site %s gate: %w", g.site, ctx.Err())
		}
	}
}

// Release returns one acquisition, adjusting the window: shed marks the
// call as refused by the site (overloaded or draining), everything else
// counts toward reopening it.
func (g *SiteGate) Release(shed bool) {
	g.mu.Lock()
	g.inUse--
	if shed {
		g.streak = 0
		if g.window > 1 {
			g.window /= 2
		}
		g.obs.Count("sched.site_backoffs", 1)
		g.obs.Event(obs.EventOverload, g.site, "site shed: concurrency window halved",
			map[string]string{"window": fmt.Sprint(g.window)})
	} else {
		g.streak++
		if g.streak >= g.window && g.window < g.max {
			g.window++
			g.streak = 0
		}
	}
	close(g.wake)
	g.wake = make(chan struct{})
	g.mu.Unlock()
}

// gatedClient threads every Call through the site's backpressure gate.
type gatedClient struct {
	transport.Client
	gate *SiteGate
}

// Call implements transport.Client: acquire the site window, perform the
// exchange, and classify the outcome for the AIMD window. Only an
// explicit shed response shrinks the window — transport failures mean
// the site is unreachable, not overloaded, and are the Reconnector's
// problem.
func (c *gatedClient) Call(ctx context.Context, req *transport.Request) (*transport.Response, error) {
	if err := c.gate.Acquire(ctx); err != nil {
		return nil, err
	}
	resp, err := c.Client.Call(ctx, req)
	c.gate.Release(resp.Shed())
	return resp, err
}
