package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/gmdj"
	"repro/internal/relation"
)

// Egil is the GMDJ query optimizer of the Skalla system. Given a query,
// the detail schema, and catalog knowledge, it produces a distributed
// evaluation Plan applying the optimizations enabled in Options.
type Egil struct {
	Catalog *catalog.Catalog
	Options Options
}

// BuildPlan compiles a query over a single detail relation into a
// distributed evaluation plan.
func (e Egil) BuildPlan(q gmdj.Query, detailName string, detail *relation.Schema) (*Plan, error) {
	return e.BuildPlanSchemas(q, detailName, map[string]*relation.Schema{detailName: detail})
}

// BuildPlanSchemas compiles a query whose MDs may run against different
// detail relations (the paper's R_k varying across rounds). schemas maps
// every referenced detail relation name to its schema; detailName is the
// default (the relation the base-values query runs over).
func (e Egil) BuildPlanSchemas(q gmdj.Query, detailName string, schemas map[string]*relation.Schema) (*Plan, error) {
	if err := q.ValidateOn(schemas, detailName); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	detail, err := detailSchema(schemas, detailName)
	if err != nil {
		return nil, err
	}
	mdSchemas := make([]*relation.Schema, len(q.MDs))
	for i, md := range q.MDs {
		mdSchemas[i], err = detailSchema(schemas, md.DetailName(detailName))
		if err != nil {
			return nil, err
		}
	}
	plan := &Plan{Detail: detailName, Keys: q.Keys()}

	// O3: coalesce adjacent GMDJs (the transform itself refuses to merge
	// MDs over different detail relations).
	if e.Options.Coalesce {
		cq, merged, err := gmdj.Coalesce(q, detail)
		if err != nil {
			return nil, fmt.Errorf("core: coalesce: %w", err)
		}
		if merged > 0 {
			plan.Notes = append(plan.Notes,
				fmt.Sprintf("coalesced %d GMDJ(s) (%d → %d operators)", merged, len(q.MDs), len(cq.MDs)))
			// Recompute per-MD schemas for the rewritten chain.
			mdSchemas = mdSchemas[:0]
			for _, md := range cq.MDs {
				ds, err := detailSchema(schemas, md.DetailName(detailName))
				if err != nil {
					return nil, err
				}
				mdSchemas = append(mdSchemas, ds)
			}
		}
		q = cq
	}
	plan.Query = q

	// Cumulative base schemas: schema seen by MD k.
	baseSchemas, err := cumulativeSchemas(q, detail)
	if err != nil {
		return nil, err
	}

	// O5: synchronization reduction — find maximal runs of consecutive
	// MDs that all carry an equality on a common partition attribute
	// (Theorem 5 / Corollary 1). MDs inside a run evaluate locally with
	// no synchronization in between.
	var steps []Step
	if e.Options.SyncReduce && e.Catalog != nil {
		steps = e.chainSteps(q, mdSchemas, baseSchemas, plan)
	} else {
		for i := range q.MDs {
			steps = append(steps, Step{MDs: []int{i}})
		}
	}

	// O4: base-synchronization elision (Proposition 2) — fuse the base
	// computation into the first step when every θ of the first step's
	// MDs entails equality on the full key K. (All MDs of the first
	// step matter: they all run against the locally computed base.)
	fuse := false
	if e.Options.SyncReduce && len(steps) > 0 {
		fuse = true
		for _, mi := range steps[0].MDs {
			md := q.MDs[mi]
			bd := md.Binding(baseSchemas[mi], mdSchemas[mi])
			for _, theta := range md.Thetas {
				if !expr.EntailsKeyEquality(theta, bd, q.Keys()) {
					fuse = false
				}
			}
		}
		if fuse {
			steps[0].FuseBase = true
			plan.Notes = append(plan.Notes,
				"base synchronization elided (Proposition 2): every θ of step 1 entails key equality")
		}
	}
	plan.BaseRound = !fuse
	plan.Steps = steps

	// O2: distribution-independent group reduction.
	plan.Touched = e.Options.GroupReduceSites

	// O1: distribution-aware group reduction — derive per-site base
	// filters from catalog domains for every step that ships the base.
	if e.Options.GroupReduceCoord && e.Catalog != nil {
		e.deriveFilters(q, mdSchemas, baseSchemas, plan)
	}
	return plan, nil
}

// detailSchema picks a schema by relation name, case-insensitively.
func detailSchema(schemas map[string]*relation.Schema, name string) (*relation.Schema, error) {
	for k, s := range schemas {
		if strings.EqualFold(k, name) {
			return s, nil
		}
	}
	return nil, fmt.Errorf("core: no schema for detail relation %q", name)
}

// cumulativeSchemas returns, for each MD index, the base schema that MD
// sees (B0's columns plus the outputs of all earlier MDs).
func cumulativeSchemas(q gmdj.Query, detail *relation.Schema) ([]*relation.Schema, error) {
	s, err := q.BaseSchema(detail)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	out := make([]*relation.Schema, len(q.MDs))
	for i, md := range q.MDs {
		out[i] = s
		var cols []relation.Column
		for _, spec := range md.Specs() {
			cols = append(cols, spec.OutColumn())
		}
		s, err = s.Concat(cols...)
		if err != nil {
			return nil, fmt.Errorf("core: MD_%d outputs: %w", i+1, err)
		}
	}
	return out, nil
}

// chainSteps groups consecutive MDs into synchronization-free runs.
func (e Egil) chainSteps(q gmdj.Query, mdSchemas []*relation.Schema, baseSchemas []*relation.Schema, plan *Plan) []Step {
	// partAttrs[i] = the set of partition attributes A with an
	// R.A = B.A equality in every θ of MD i.
	partAttrs := make([]map[string]struct{}, len(q.MDs))
	for i, md := range q.MDs {
		bd := md.Binding(baseSchemas[i], mdSchemas[i])
		var common map[string]struct{}
		for _, theta := range md.Thetas {
			cur := map[string]struct{}{}
			for det, base := range expr.EquiDetailAttrs(theta, bd) {
				if det == base && e.Catalog.IsPartitionAttr(det) {
					cur[det] = struct{}{}
				}
			}
			if common == nil {
				common = cur
			} else {
				for a := range common {
					if _, ok := cur[a]; !ok {
						delete(common, a)
					}
				}
			}
		}
		partAttrs[i] = common
	}

	var steps []Step
	i := 0
	for i < len(q.MDs) {
		run := []int{i}
		shared := partAttrs[i]
		j := i + 1
		for j < len(q.MDs) && len(shared) > 0 {
			next := intersect(shared, partAttrs[j])
			if len(next) == 0 {
				break
			}
			shared = next
			run = append(run, j)
			j++
		}
		if len(run) > 1 {
			plan.Notes = append(plan.Notes, fmt.Sprintf(
				"synchronization reduction (Corollary 1): MDs %v chained locally on partition attribute(s) %s",
				mdNums(run), strings.Join(sortedKeys(shared), ", ")))
		}
		steps = append(steps, Step{MDs: run})
		i = j
	}
	return steps
}

func intersect(a, b map[string]struct{}) map[string]struct{} {
	out := map[string]struct{}{}
	for k := range a {
		if _, ok := b[k]; ok {
			out[k] = struct{}{}
		}
	}
	return out
}

func sortedKeys(m map[string]struct{}) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// deriveFilters computes Theorem 4 site filters for each step that ships
// the base structure.
func (e Egil) deriveFilters(q gmdj.Query, mdSchemas []*relation.Schema, baseSchemas []*relation.Schema, plan *Plan) {
	filters := map[string][]expr.Expr{}
	any := false
	for _, siteInfo := range e.Catalog.Sites {
		domains := siteInfo.Domains
		if len(domains) == 0 {
			continue
		}
		perStep := make([]expr.Expr, len(plan.Steps))
		for si, step := range plan.Steps {
			if step.FuseBase {
				continue // nothing is shipped for a fused step
			}
			// The filter must be safe for every θ of every MD in the
			// step: a group is shippable only if no θ can match it.
			// Side classification uses the widest binding of the step
			// (later MDs of a chain reference columns the first MD's
			// schema lacks).
			// Steps mixing detail relations would need per-θ bindings;
			// stay conservative and skip them.
			mixed := false
			for _, mi := range step.MDs[1:] {
				if mdSchemas[mi] != mdSchemas[step.MDs[0]] {
					mixed = true
				}
			}
			if mixed {
				continue
			}
			var thetas []expr.Expr
			last := step.MDs[len(step.MDs)-1]
			bd := q.MDs[last].Binding(baseSchemas[last], mdSchemas[last])
			for _, mi := range step.MDs {
				thetas = append(thetas, q.MDs[mi].Thetas...)
			}
			f := expr.DeriveSiteFilter(thetas, bd, domains)
			if f == nil {
				continue
			}
			// The filter runs at the coordinator against the X shipped
			// at this step, whose schema is that of the step's first
			// MD. A derived constraint referencing a column generated
			// inside the step (e.g. B.sum1 from a chained MD1) cannot
			// be evaluated there; drop the filter in that case.
			first := step.MDs[0]
			bAlias, _ := q.MDs[first].Aliases()
			shipBd := expr.Binding{Base: baseSchemas[first], BaseAliases: []string{bAlias}}
			if _, err := expr.Bind(f, shipBd); err != nil {
				continue
			}
			perStep[si] = f
			any = true
		}
		filters[siteInfo.ID] = perStep
	}
	if any {
		plan.SiteFilters = filters
		plan.Notes = append(plan.Notes,
			"distribution-aware group reduction (Theorem 4): per-site base filters derived from catalog domains")
	}
}
