package core

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// partialStats builds an ExecStats fixture: round "base" loses site2,
// round "step 1" loses site2 again plus site0, round "step 2" is full.
func partialStats() *ExecStats {
	return &ExecStats{Rounds: []RoundStats{
		{
			Name:      "base",
			Responded: []string{"site0", "site1"},
			Lost:      []LostSite{{Site: "site2", Err: "dial refused"}},
		},
		{
			Name:      "step 1",
			Responded: []string{"site1"},
			Lost: []LostSite{
				{Site: "site2", Err: "dial refused"},
				{Site: "site0", Err: "timeout"},
			},
		},
		{
			Name:      "step 2",
			Responded: []string{"site0", "site1", "site2"},
		},
	}}
}

func TestExecStatsPartialAccounting(t *testing.T) {
	s := partialStats()
	if !s.Partial() {
		t.Fatal("stats with lost sites not marked partial")
	}

	// LostSites dedups across rounds and keeps first-loss order: site2 was
	// lost in round 1, site0 only in round 2.
	if lost := s.LostSites(); len(lost) != 2 || lost[0] != "site2" || lost[1] != "site0" {
		t.Errorf("LostSites = %v, want [site2 site0]", lost)
	}

	cov := s.Coverage()
	// Per-round coverage counts Responded against Responded+Lost, so a
	// round's denominator reflects that round's own losses.
	if !strings.Contains(cov, "round base: 2/3 sites answered") {
		t.Errorf("coverage misses base round accounting:\n%s", cov)
	}
	if !strings.Contains(cov, "round step 1: 1/3 sites answered") {
		t.Errorf("coverage misses step 1 accounting:\n%s", cov)
	}
	// A fully-answered round must not appear in the coverage report.
	if strings.Contains(cov, "step 2") {
		t.Errorf("coverage lists the complete round:\n%s", cov)
	}
	// Both failure causes are named.
	if !strings.Contains(cov, "site2 (dial refused)") || !strings.Contains(cov, "site0 (timeout)") {
		t.Errorf("coverage drops failure causes:\n%s", cov)
	}
	if !strings.Contains(s.String(), "PARTIAL RESULT") {
		t.Error("String() does not flag the partial result")
	}
}

func TestExecStatsCompleteExecution(t *testing.T) {
	s := &ExecStats{Rounds: []RoundStats{
		{Name: "base", Responded: []string{"site0", "site1"}},
		{Name: "step 1", Responded: []string{"site0", "site1"}},
	}}
	if s.Partial() {
		t.Error("complete execution marked partial")
	}
	if lost := s.LostSites(); len(lost) != 0 {
		t.Errorf("LostSites = %v, want none", lost)
	}
	if cov := s.Coverage(); cov != "" {
		t.Errorf("Coverage() = %q, want empty for a complete execution", cov)
	}
	if strings.Contains(s.String(), "PARTIAL RESULT") {
		t.Error("String() flags a complete execution as partial")
	}
}

func TestExecStatsRepeatedLossDedup(t *testing.T) {
	// The same logical site lost in every round counts once.
	s := &ExecStats{Rounds: []RoundStats{
		{Name: "base", Lost: []LostSite{{Site: "site1", Err: "down"}}},
		{Name: "step 1", Lost: []LostSite{{Site: "site1", Err: "down"}}},
		{Name: "step 2", Lost: []LostSite{{Site: "site1", Err: "down"}}},
	}}
	if lost := s.LostSites(); len(lost) != 1 || lost[0] != "site1" {
		t.Errorf("LostSites = %v, want [site1] exactly once", lost)
	}
	// Every degraded round still gets its own coverage line.
	if n := strings.Count(s.Coverage(), "site1 (down)"); n != 3 {
		t.Errorf("coverage lines = %d, want 3:\n%s", n, s.Coverage())
	}
}

func TestExecStatsTimeAndByteTotals(t *testing.T) {
	s := &ExecStats{Rounds: []RoundStats{
		{BytesToSites: 100, BytesFromSites: 40, GroupsShipped: 10, GroupsReceived: 4,
			SiteTime: 3 * time.Millisecond, CoordTime: time.Millisecond, CommTime: 2 * time.Millisecond},
		{BytesToSites: 50, BytesFromSites: 60, GroupsShipped: 5, GroupsReceived: 6,
			SiteTime: 2 * time.Millisecond, CoordTime: time.Millisecond, CommTime: time.Millisecond},
	}}
	if got := s.Bytes(); got != 250 {
		t.Errorf("Bytes() = %d, want 250", got)
	}
	if got := s.Groups(); got != 25 {
		t.Errorf("Groups() = %d, want 25", got)
	}
	if got := s.EvalTime(); got != 10*time.Millisecond {
		t.Errorf("EvalTime() = %v, want 10ms (site 5 + coord 2 + comm 3)", got)
	}
}

func TestExecStatsJSONDeterministic(t *testing.T) {
	// Responded/Lost arrive in fan-out completion order, which varies run
	// to run; the JSON encoding must not.
	a := &ExecStats{Rounds: []RoundStats{{
		Name:      "base",
		Responded: []string{"site2", "site0", "site1"},
		Lost: []LostSite{
			{Site: "site4", Err: "dial refused"},
			{Site: "site3", Err: "timeout"},
		},
		BytesToSites: 100, BytesFromSites: 40,
		SiteTime: 3 * time.Millisecond,
	}}, Wall: 5 * time.Millisecond}
	b := &ExecStats{Rounds: []RoundStats{{
		Name:      "base",
		Responded: []string{"site1", "site2", "site0"},
		Lost: []LostSite{
			{Site: "site3", Err: "timeout"},
			{Site: "site4", Err: "dial refused"},
		},
		BytesToSites: 100, BytesFromSites: 40,
		SiteTime: 3 * time.Millisecond,
	}}, Wall: 5 * time.Millisecond}

	ja, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Errorf("permuted site order changed JSON:\n%s\nvs\n%s", ja, jb)
	}
	var decoded struct {
		Rounds []struct {
			Responded []string `json:"responded"`
		} `json:"rounds"`
		Bytes     int64    `json:"bytes"`
		Partial   bool     `json:"partial"`
		LostSites []string `json:"lost_sites"`
	}
	if err := json.Unmarshal(ja, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded.Bytes != 140 || !decoded.Partial {
		t.Errorf("bytes=%d partial=%v, want 140 true", decoded.Bytes, decoded.Partial)
	}
	if len(decoded.Rounds) != 1 || strings.Join(decoded.Rounds[0].Responded, ",") != "site0,site1,site2" {
		t.Errorf("responded not sorted: %+v", decoded.Rounds)
	}
	if strings.Join(decoded.LostSites, ",") != "site3,site4" {
		t.Errorf("lost_sites not sorted: %v", decoded.LostSites)
	}
}
