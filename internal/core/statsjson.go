package core

//lint:deterministic stats JSON must encode identically run to run

import (
	"encoding/json"
	"sort"
	"time"
)

// roundStatsJSON is the wire shape of one round in ExecStats JSON.
// Durations are emitted as integer nanoseconds so consumers never parse
// Go duration strings, and site lists are sorted so the encoding is
// byte-identical across runs regardless of fan-out completion order.
type roundStatsJSON struct {
	Name           string         `json:"name"`
	Responded      []string       `json:"responded"`
	Lost           []lostSiteJSON `json:"lost,omitempty"`
	BytesToSites   int64          `json:"bytes_to_sites"`
	BytesFromSites int64          `json:"bytes_from_sites"`
	GroupsShipped  int64          `json:"groups_shipped"`
	GroupsReceived int64          `json:"groups_received"`
	SiteNs         int64          `json:"site_ns"`
	SiteTotalNs    int64          `json:"site_total_ns"`
	CoordNs        int64          `json:"coord_ns"`
	CommNs         int64          `json:"comm_ns"`
	Resumed        bool           `json:"resumed,omitempty"`
	Replayed       []string       `json:"replayed,omitempty"`
	Hedged         []string       `json:"hedged,omitempty"`
}

type lostSiteJSON struct {
	Site string `json:"site"`
	Err  string `json:"err"`
}

type execStatsJSON struct {
	Rounds    []roundStatsJSON `json:"rounds"`
	Bytes     int64            `json:"bytes"`
	Groups    int64            `json:"groups"`
	SiteNs    int64            `json:"site_ns"`
	CoordNs   int64            `json:"coord_ns"`
	CommNs    int64            `json:"comm_ns"`
	EvalNs    int64            `json:"eval_ns"`
	WallNs    int64            `json:"wall_ns"`
	Partial   bool             `json:"partial"`
	LostSites []string         `json:"lost_sites,omitempty"`
}

// JSON renders the statistics as deterministic, machine-readable JSON:
// fixed field order, integer-nanosecond durations, and sorted site
// lists. Only Wall varies between runs of the same query; scripts that
// diff stats byte-for-byte should mask wall_ns.
func (s *ExecStats) JSON() ([]byte, error) {
	out := execStatsJSON{
		Rounds:    make([]roundStatsJSON, 0, len(s.Rounds)),
		Bytes:     s.Bytes(),
		Groups:    s.Groups(),
		SiteNs:    int64(s.SiteTime()),
		CoordNs:   int64(s.CoordTime()),
		CommNs:    int64(s.CommTime()),
		EvalNs:    int64(s.EvalTime()),
		WallNs:    int64(s.Wall),
		Partial:   s.Partial(),
		LostSites: s.LostSites(),
	}
	sort.Strings(out.LostSites)
	for _, r := range s.Rounds {
		out.Rounds = append(out.Rounds, roundToJSON(r))
	}
	return json.MarshalIndent(out, "", "  ")
}

// roundToJSON converts one round's statistics to the wire shape, sorting
// the site lists for deterministic encoding. Shared by ExecStats.JSON and
// the checkpoint encoding.
func roundToJSON(r RoundStats) roundStatsJSON {
	jr := roundStatsJSON{
		Name:           r.Name,
		Responded:      append([]string(nil), r.Responded...),
		BytesToSites:   r.BytesToSites,
		BytesFromSites: r.BytesFromSites,
		GroupsShipped:  r.GroupsShipped,
		GroupsReceived: r.GroupsReceived,
		SiteNs:         int64(r.SiteTime),
		SiteTotalNs:    int64(r.SiteTimeTotal),
		CoordNs:        int64(r.CoordTime),
		CommNs:         int64(r.CommTime),
		Resumed:        r.Resumed,
		Replayed:       append([]string(nil), r.Replayed...),
		Hedged:         append([]string(nil), r.Hedged...),
	}
	if jr.Responded == nil {
		jr.Responded = []string{}
	}
	sort.Strings(jr.Responded)
	sort.Strings(jr.Replayed)
	sort.Strings(jr.Hedged)
	for _, l := range r.Lost {
		jr.Lost = append(jr.Lost, lostSiteJSON{Site: l.Site, Err: l.Err})
	}
	sort.Slice(jr.Lost, func(i, j int) bool { return jr.Lost[i].Site < jr.Lost[j].Site })
	return jr
}

// roundFromJSON is roundToJSON's inverse, used when a checkpoint restores
// completed rounds into a resumed execution's statistics.
func roundFromJSON(jr roundStatsJSON) RoundStats {
	r := RoundStats{
		Name:           jr.Name,
		Responded:      append([]string(nil), jr.Responded...),
		BytesToSites:   jr.BytesToSites,
		BytesFromSites: jr.BytesFromSites,
		GroupsShipped:  jr.GroupsShipped,
		GroupsReceived: jr.GroupsReceived,
		SiteTime:       time.Duration(jr.SiteNs),
		SiteTimeTotal:  time.Duration(jr.SiteTotalNs),
		CoordTime:      time.Duration(jr.CoordNs),
		CommTime:       time.Duration(jr.CommNs),
		Resumed:        jr.Resumed,
		Replayed:       append([]string(nil), jr.Replayed...),
		Hedged:         append([]string(nil), jr.Hedged...),
	}
	for _, l := range jr.Lost {
		r.Lost = append(r.Lost, LostSite{Site: l.Site, Err: l.Err})
	}
	return r
}
