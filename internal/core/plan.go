// Package core implements the paper's primary contribution: distributed
// evaluation of complex OLAP queries expressed as GMDJ expressions.
//
// It contains the Egil query optimizer, which turns a gmdj.Query plus
// catalog knowledge into a distributed evaluation Plan applying the
// paper's optimizations (coalescing §4.3, distribution-aware group
// reduction Theorem 4, distribution-independent group reduction
// Proposition 1, base-synchronization elision Proposition 2, and
// synchronization reduction Theorem 5/Corollary 1), and the coordinator
// implementing Alg. GMDJDistribEval: rounds of local site computation
// followed by synchronization of sub-aggregates into the base-result
// structure, keyed on the base relation key K (Theorem 1).
package core

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/gmdj"
)

// Options selects which of the paper's optimizations the optimizer may
// apply. The zero value disables everything (the baseline the paper's
// experiments compare against); DefaultOptions enables all.
type Options struct {
	// Coalesce merges adjacent GMDJs into one operator when the second
	// does not reference the first's outputs (§4.3).
	Coalesce bool
	// GroupReduceSites enables distribution-independent group reduction
	// (Proposition 1): sites return only groups with |RNG| > 0.
	GroupReduceSites bool
	// GroupReduceCoord enables distribution-aware group reduction
	// (Theorem 4): the coordinator ships each site only the base tuples
	// its partition can possibly match, using catalog domains.
	GroupReduceCoord bool
	// SyncReduce enables base-synchronization elision (Proposition 2)
	// and full synchronization reduction (Theorem 5 / Corollary 1).
	SyncReduce bool
}

// DefaultOptions enables every optimization.
var DefaultOptions = Options{
	Coalesce:         true,
	GroupReduceSites: true,
	GroupReduceCoord: true,
	SyncReduce:       true,
}

// Step is one network round of a plan: the coordinator ships the current
// base-result structure (or, for a fused first step, nothing), each
// participating site evaluates the listed MDs of the (possibly rewritten)
// query as a local chain, and the coordinator synchronizes the returned
// sub-aggregates. Steps with more than one MD are the synchronization
// reduction of Theorem 5: no synchronization happens between their MDs.
type Step struct {
	// MDs are indices into Plan.Query.MDs evaluated in this round.
	MDs []int
	// FuseBase makes the sites compute the base-values relation locally
	// at the start of this step instead of receiving it (Proposition 2).
	// Only valid on the first step.
	FuseBase bool
}

// Plan is a distributed evaluation plan for a GMDJ query.
type Plan struct {
	// Query is the (possibly coalesced) query to evaluate.
	Query gmdj.Query
	// Detail names the detail relation at the sites.
	Detail string
	// Keys are the key attributes K of the base-values relation.
	Keys []string
	// BaseRound is true when an initial synchronization round computes
	// and merges the base-values relation before any MD runs.
	BaseRound bool
	// Steps are the MD rounds, in order.
	Steps []Step
	// Touched enables distribution-independent group reduction on every
	// step (sites filter untouched groups before shipping).
	Touched bool
	// SiteFilters maps site ID to a per-step base filter (Theorem 4);
	// nil entries mean "ship everything". Filters are expressions over
	// the base relation with alias B.
	SiteFilters map[string][]expr.Expr
	// Notes records the optimizer's decisions for explain output.
	Notes []string
}

// Rounds returns the number of synchronization rounds the plan performs:
// one per step plus one for a separate base round. (The paper counts an
// m-operator expression as m+1 rounds unoptimized.)
func (p *Plan) Rounds() int {
	n := len(p.Steps)
	if p.BaseRound {
		n++
	}
	return n
}

// Explain renders a human-readable description of the plan.
func (p *Plan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: %d round(s) over detail %q, keys (%s)\n",
		p.Rounds(), p.Detail, strings.Join(p.Keys, ", "))
	if p.BaseRound {
		fmt.Fprintf(&b, "  round 0: compute base π{%s} at sites, synchronize\n",
			strings.Join(p.Query.Base.Cols, ", "))
	}
	for i, s := range p.Steps {
		fmt.Fprintf(&b, "  step %d: MDs %v", i+1, mdNums(s.MDs))
		if len(s.MDs) > 1 {
			b.WriteString(" as local chain (sync reduction)")
		}
		if s.FuseBase {
			b.WriteString(", base fused (no base sync)")
		}
		b.WriteByte('\n')
	}
	if p.Touched {
		b.WriteString("  site-side group reduction: on (|RNG|>0 filter)\n")
	}
	if len(p.SiteFilters) > 0 {
		b.WriteString("  coordinator-side group reduction filters:\n")
		for site, fs := range p.SiteFilters {
			for step, f := range fs {
				if f != nil {
					fmt.Fprintf(&b, "    %s step %d: %s\n", site, step+1, f)
				}
			}
		}
	}
	for _, n := range p.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

func mdNums(idx []int) []int {
	out := make([]int, len(idx))
	for i, v := range idx {
		out[i] = v + 1
	}
	return out
}
