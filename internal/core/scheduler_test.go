package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/testutil"
	"repro/internal/transport"
)

func TestSchedulerAdmitFailFast(t *testing.T) {
	o := obs.New()
	s := NewScheduler(SchedulerConfig{MaxConcurrent: 1, QueueDepth: 0, Obs: o})

	rel1, err := s.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Saturated with no queue: the second admission fails fast and typed.
	if _, err := s.Admit(context.Background()); !errors.Is(err, ErrAdmission) {
		t.Fatalf("err = %v, want ErrAdmission", err)
	}
	var ae *AdmissionError
	if _, err := s.Admit(context.Background()); !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *AdmissionError", err)
	}
	if got := o.Metrics.CounterValue("sched.rejected"); got != 2 {
		t.Errorf("rejected = %d, want 2", got)
	}
	if got := o.Events.CountKind(obs.EventAdmission); got != 2 {
		t.Errorf("admission events = %d, want 2", got)
	}

	rel1()
	rel1() // release is idempotent
	rel2, err := s.Admit(context.Background())
	if err != nil {
		t.Fatalf("slot not freed by release: %v", err)
	}
	rel2()
	if got := o.Metrics.CounterValue("sched.admitted"); got != 2 {
		t.Errorf("admitted = %d, want 2", got)
	}
	if got := o.Metrics.CounterValue("sched.completed"); got != 2 {
		t.Errorf("completed = %d, want 2", got)
	}
}

func TestSchedulerQueueAdmitsWhenFreed(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := NewScheduler(SchedulerConfig{MaxConcurrent: 1, QueueDepth: 2})

	rel, err := s.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		r2, err := s.Admit(context.Background())
		if err == nil {
			r2()
		}
		got <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s.Queued() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.Queued() != 1 {
		t.Fatalf("queued = %d, want 1", s.Queued())
	}
	rel()
	if err := <-got; err != nil {
		t.Fatalf("queued admission failed after slot freed: %v", err)
	}
}

func TestSchedulerQueueTimeout(t *testing.T) {
	o := obs.New()
	s := NewScheduler(SchedulerConfig{MaxConcurrent: 1, QueueDepth: 1, QueueTimeout: 20 * time.Millisecond, Obs: o})

	rel, err := s.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	if _, err := s.Admit(context.Background()); !errors.Is(err, ErrAdmission) {
		t.Fatalf("err = %v, want ErrAdmission after queue timeout", err)
	}
	if got := o.Metrics.CounterValue("sched.queue_timeouts"); got != 1 {
		t.Errorf("queue_timeouts = %d, want 1", got)
	}
	if s.Queued() != 0 {
		t.Errorf("queued = %d after timeout, want 0", s.Queued())
	}
}

func TestSchedulerQueueCancellation(t *testing.T) {
	s := NewScheduler(SchedulerConfig{MaxConcurrent: 1, QueueDepth: 1})

	rel, err := s.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		deadline := time.Now().Add(2 * time.Second)
		for s.Queued() < 1 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	_, err = s.Admit(ctx)
	// Caller cancellation is the caller's choice, not an admission verdict.
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if errors.Is(err, ErrAdmission) {
		t.Fatal("cancellation misclassified as admission rejection")
	}
}

func TestSchedulerNextEpochUnique(t *testing.T) {
	s := NewScheduler(SchedulerConfig{MaxConcurrent: 4})
	const n = 64
	seen := make(map[string]bool, n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := s.NextEpoch("base")
			mu.Lock()
			seen[e] = true
			mu.Unlock()
		}()
	}
	wg.Wait()
	if len(seen) != n {
		t.Fatalf("%d unique epochs from %d concurrent executions", len(seen), n)
	}
}

// shedClient answers OpPing and sheds every OpDrop with CodeOverloaded.
type shedClient struct {
	id string
}

func (c *shedClient) SiteID() string              { return c.id }
func (c *shedClient) Stats() *transport.WireStats { return &transport.WireStats{} }
func (c *shedClient) Close() error                { return nil }
func (c *shedClient) Call(ctx context.Context, req *transport.Request) (*transport.Response, error) {
	if req.Op == transport.OpDrop {
		return &transport.Response{Err: "overloaded", Code: transport.CodeOverloaded}, nil
	}
	return &transport.Response{}, nil
}

func TestSiteGateAIMD(t *testing.T) {
	o := obs.New()
	g := NewSiteGate("s0", 8, o)
	ctx := context.Background()

	// Two sheds halve twice: 8 → 4 → 2.
	for i := 0; i < 2; i++ {
		if err := g.Acquire(ctx); err != nil {
			t.Fatal(err)
		}
		g.Release(true)
	}
	if got := g.Window(); got != 2 {
		t.Fatalf("window = %d after 2 sheds, want 2", got)
	}
	if got := o.Metrics.CounterValue("sched.site_backoffs"); got != 2 {
		t.Errorf("site_backoffs = %d, want 2", got)
	}

	// Successes reopen additively: a full window of successes adds one.
	for g.Window() < 8 {
		before := g.Window()
		for i := 0; i < before; i++ {
			if err := g.Acquire(ctx); err != nil {
				t.Fatal(err)
			}
			g.Release(false)
		}
		if got := g.Window(); got != before+1 {
			t.Fatalf("window = %d after %d successes at window %d, want %d", got, before, before, before+1)
		}
	}
}

func TestSiteGateBlocksAtWindow(t *testing.T) {
	g := NewSiteGate("s0", 2, nil)
	ctx := context.Background()
	if err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	short, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := g.Acquire(short); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("third acquire err = %v, want deadline exceeded", err)
	}
	g.Release(false)
	if err := g.Acquire(ctx); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestWrapClientsSharedGateBackoff(t *testing.T) {
	o := obs.New()
	s := NewScheduler(SchedulerConfig{MaxConcurrent: 4, SiteMaxInflight: 8, Obs: o})

	// Two executions each get their own wrapped view of the same site.
	a := s.WrapClients([]transport.Client{&shedClient{id: "s0"}})
	b := s.WrapClients([]transport.Client{&shedClient{id: "s0"}})
	ctx := context.Background()

	// Execution A sees a shed; the shared window halves.
	resp, err := a[0].Call(ctx, &transport.Request{Op: transport.OpDrop})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Shed() {
		t.Fatal("expected shed response")
	}
	if got := s.gate("s0").Window(); got != 4 {
		t.Fatalf("shared window = %d after shed, want 4", got)
	}

	// Execution B inherits the backoff on the same site…
	if got := s.WrapClients([]transport.Client{&shedClient{id: "s0"}}); len(got) != 1 {
		t.Fatal("wrap")
	}
	if _, err := b[0].Call(ctx, &transport.Request{Op: transport.OpPing}); err != nil {
		t.Fatal(err)
	}
	// …and a different site is untouched.
	if got := s.gate("s1").Window(); got != 8 {
		t.Fatalf("unrelated site window = %d, want 8", got)
	}
}

// TestSiteGateAIMDStress hammers one gate from many goroutines mixing
// shed and clean releases; run under -race it checks the AIMD window
// bookkeeping (window, streak, inUse, wake rotation) for data races and
// asserts the window never leaves [1, max] and the gate stays usable.
func TestSiteGateAIMDStress(t *testing.T) {
	testutil.CheckGoroutines(t)
	const max = 8
	g := NewSiteGate("s0", max, obs.New())
	ctx := context.Background()

	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := g.Acquire(ctx); err != nil {
					t.Error(err)
					return
				}
				if win := g.Window(); win < 1 || win > max {
					t.Errorf("window = %d, want 1..%d", win, max)
				}
				// Deterministic shed mix: roughly one release in seven
				// halves the window, the rest feed the success streak.
				g.Release((w+i)%7 == 0)
			}
		}(w)
	}
	wg.Wait()

	if win := g.Window(); win < 1 || win > max {
		t.Fatalf("final window = %d, want 1..%d", win, max)
	}
	if err := g.Acquire(ctx); err != nil {
		t.Fatalf("gate unusable after stress: %v", err)
	}
	g.Release(false)
}

// TestWrapClientsBreakerFailsFast: with per-site breakers enabled, a run
// of sheds on one site opens its breaker, every execution's wrapped view
// of that site is refused locally with the typed error, and the open
// breaker is visible through the scheduler's state accessors — while
// other sites stay unaffected.
func TestWrapClientsBreakerFailsFast(t *testing.T) {
	o := obs.New()
	s := NewScheduler(SchedulerConfig{MaxConcurrent: 4, SiteMaxInflight: 8, Obs: o,
		BreakerFailures: 2, BreakerCooldown: time.Hour})
	ctx := context.Background()

	a := s.WrapClients([]transport.Client{&shedClient{id: "s0"}, &shedClient{id: "s1"}})
	for i := 0; i < 2; i++ {
		resp, err := a[0].Call(ctx, &transport.Request{Op: transport.OpDrop})
		if err != nil || !resp.Shed() {
			t.Fatalf("shed call %d: %v / %+v", i, err, resp)
		}
	}
	if st, ok := s.BreakerState("s0"); !ok || st != transport.BreakerOpen {
		t.Fatalf("breaker state = %v/%v, want open", st, ok)
	}
	if open := s.OpenBreakers(); len(open) != 1 || open[0] != "s0" {
		t.Fatalf("OpenBreakers() = %v, want [s0]", open)
	}

	// A second execution shares the breaker: its call is refused before
	// reaching the site.
	b := s.WrapClients([]transport.Client{&shedClient{id: "s0"}})
	if _, err := b[0].Call(ctx, &transport.Request{Op: transport.OpPing}); !errors.Is(err, transport.ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	// The healthy site keeps serving.
	if _, err := a[1].Call(ctx, &transport.Request{Op: transport.OpPing}); err != nil {
		t.Fatalf("healthy site refused: %v", err)
	}
	if _, ok := s.BreakerState("s1"); !ok {
		t.Error("healthy site has no breaker state")
	}

	// Breakers default off: a zero BreakerFailures scheduler never trips.
	off := NewScheduler(SchedulerConfig{MaxConcurrent: 4, SiteMaxInflight: 8})
	c := off.WrapClients([]transport.Client{&shedClient{id: "s0"}})
	for i := 0; i < 5; i++ {
		if _, err := c[0].Call(ctx, &transport.Request{Op: transport.OpDrop}); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := off.BreakerState("s0"); ok {
		t.Error("breaker state reported with breakers disabled")
	}
	if open := off.OpenBreakers(); len(open) != 0 {
		t.Errorf("OpenBreakers() = %v, want none with breakers disabled", open)
	}
}
