package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/gmdj"
	"repro/internal/relation"
	"repro/internal/site"
	"repro/internal/transport"
)

// TestHedgedQueryOverTCP is the end-to-end tail-tolerance check: a full
// GMDJ query over real TCP servers where one site's primary replica
// straggles on every round call. The hedger races a clean replica of the
// same partition and must (a) produce exactly the centralized answer —
// duplicated round evaluation is idempotent — (b) beat the injected
// straggler latency, and (c) surface the hedges in the execution stats.
func TestHedgedQueryOverTCP(t *testing.T) {
	rows := testRows(240, 5)
	q := example1()
	nSites := 3
	const straggle = 150 * time.Millisecond

	whole := relation.New(flowSchema())
	whole.Rows = rows
	parts := make([]*relation.Relation, nSites)
	for i := range parts {
		parts[i] = relation.New(flowSchema())
	}
	for i, row := range rows {
		parts[i%nSites].Rows = append(parts[i%nSites].Rows, row)
	}

	clients := make([]transport.Client, nSites)
	for i := 0; i < nSites; i++ {
		id := fmt.Sprintf("site%d", i)
		eng := site.NewEngine(id)
		eng.Load("flow", parts[i])
		srv := transport.NewServer(eng)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })

		if i != 1 {
			cl, err := transport.DialTCP(id, addr, transport.CostModel{})
			if err != nil {
				t.Fatal(err)
			}
			clients[i] = cl
			continue
		}
		// Site 1 is a replica set over one shared server: the primary
		// connection straggles on every round call, the secondary is
		// clean. Both hit the same engine, so a duplicated (epoch, round)
		// request is answered from the site's dedup cache.
		primaryTCP, err := transport.DialTCP(id, addr, transport.CostModel{})
		if err != nil {
			t.Fatal(err)
		}
		primary := transport.NewChaos(primaryTCP, 1)
		primary.DelayN(transport.OpEvalRounds, 1000, straggle)
		secondary, err := transport.DialTCP(id, addr, transport.CostModel{})
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = transport.NewHedger(id, []transport.Client{primary, secondary},
			transport.HedgeConfig{Delay: 10 * time.Millisecond})
	}
	coord := NewCoordinator(clients...)
	defer func() {
		for _, cl := range clients {
			cl.Close() // the hedger closes both of site 1's connections
		}
	}()

	want, err := gmdj.EvalQuery(whole, q)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	got, stats, _, err := coord.Run(context.Background(), q, "flow", Egil{Catalog: newTestCatalog(nSites)})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("hedged query over TCP: %v", err)
	}
	assertSameRelation(t, "hedged TCP query", got, want, q.Keys())
	if stats.Partial() {
		t.Errorf("hedging must not degrade the result: lost %v", stats.LostSites())
	}

	h := clients[1].(*transport.Hedger)
	hedges, wins := h.HedgeCounts()
	if hedges < 1 {
		t.Errorf("hedges = %d, want at least 1 against a %s straggler", hedges, straggle)
	}
	if wins < 1 {
		t.Errorf("hedge wins = %d, want at least 1 (the clean replica must beat the straggler)", wins)
	}
	if got := stats.HedgedSites(); len(got) == 0 || got[0] != "site1" {
		t.Errorf("stats.HedgedSites() = %v, want [site1]", got)
	}
	// Every round call on site 1's primary is delayed by 150ms; with the
	// hedge racing after 10ms, the query must finish well under the
	// serial straggler cost. Generous bound to stay robust on slow CI.
	if limit := time.Duration(len(stats.Rounds)) * straggle; elapsed >= limit {
		t.Errorf("hedged query took %s, want < %s (hedges should hide the straggler)", elapsed, limit)
	}
}
