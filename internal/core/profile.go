package core

//lint:deterministic profile JSON and EXPLAIN ANALYZE must encode identically run to run

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/transport"
)

// QueryProfile is the assembled execution profile of one QueryID-tagged
// query: a per-round × per-site tree built from the coordinator's own
// exact wire measurements plus the SiteProfile each site piggy-backed on
// its round response. Every round's totals are copied from the finalized
// RoundStats at the moment the round is appended to ExecStats, so the
// tree's per-round rows/bytes/time totals equal ExecStats byte for byte
// by construction — the profile is a decomposition of the stats, never a
// second measurement that could drift.
type QueryProfile struct {
	// QueryID is the tag the coordinator propagated on the wire.
	QueryID string
	// Rounds mirror ExecStats.Rounds one to one, in execution order.
	Rounds []RoundProfile
	// WallNs is the end-to-end wall time (ExecStats.Wall).
	WallNs int64
	// Partial marks a degraded execution (ExecStats.Partial).
	Partial bool
}

// RoundProfile is one synchronization round of the profile tree. The
// total fields are verbatim copies of the round's RoundStats; Sites
// decomposes them per site for live rounds and is empty for rounds
// restored from a checkpoint (their per-site breakdown died with the
// interrupted coordinator, only the totals were persisted).
type RoundProfile struct {
	Name           string
	Resumed        bool
	BytesToSites   int64
	BytesFromSites int64
	GroupsShipped  int64
	GroupsReceived int64
	SiteNs         int64
	SiteTotalNs    int64
	CoordNs        int64
	CommNs         int64
	// Sites are the per-site contributions, sorted by site ID.
	Sites []SiteRoundProfile
}

// SiteRoundProfile is one site's contribution to one round: the
// coordinator-side exact wire/compute measurements, plus the site-side
// capture that rode back on the response (nil when the site predates the
// QueryID protocol or the site was lost).
type SiteRoundProfile struct {
	Site string
	// Lost marks a site that contributed nothing (degraded rounds only);
	// Err is its failure. A lost site's numeric fields are all zero, so
	// the live entries alone sum to the round totals.
	Lost bool
	Err  string
	// BytesSent / BytesRecv are this site's exact wire bytes, measured as
	// transport-stats deltas around the call.
	BytesSent int64
	BytesRecv int64
	// RowsShipped / RowsReturned count base-result rows moved.
	RowsShipped  int64
	RowsReturned int64
	// ComputeNs is the site's self-reported evaluation time; CommNs the
	// modeled transfer time of its exchange.
	ComputeNs int64
	CommNs    int64
	// Replays is how many times the round request was re-issued before
	// this result arrived.
	Replays int
	// Hedges is how many duplicate replica sends (hedges or failovers)
	// were launched for the round request before this result arrived.
	Hedges int
	// Remote is the site-side profile piggy-backed on the response.
	Remote *transport.SiteProfile
}

// roundProfileFromStats copies a finalized round's totals into a profile
// round — the byte-exactness contract in one place.
func roundProfileFromStats(rp *RoundProfile, rs RoundStats) {
	rp.Name = rs.Name
	rp.Resumed = rs.Resumed
	rp.BytesToSites = rs.BytesToSites
	rp.BytesFromSites = rs.BytesFromSites
	rp.GroupsShipped = rs.GroupsShipped
	rp.GroupsReceived = rs.GroupsReceived
	rp.SiteNs = int64(rs.SiteTime)
	rp.SiteTotalNs = int64(rs.SiteTimeTotal)
	rp.CoordNs = int64(rs.CoordTime)
	rp.CommNs = int64(rs.CommTime)
}

// newRound opens a live round's profile. Safe on a nil receiver (untagged
// execution): returns nil, and every downstream append is a no-op.
func (p *QueryProfile) newRound() *RoundProfile {
	if p == nil {
		return nil
	}
	return &RoundProfile{}
}

// finishRound seals a live round: totals are copied from the finalized
// RoundStats, the per-site entries are sorted by site ID for
// deterministic encoding, and the round joins the tree. Appending here —
// at exactly the point the round joins ExecStats.Rounds — is what keeps
// the tree congruent with the stats on both success and error paths.
func (p *QueryProfile) finishRound(rp *RoundProfile, rs RoundStats) {
	if p == nil || rp == nil {
		return
	}
	roundProfileFromStats(rp, rs)
	sort.Slice(rp.Sites, func(i, j int) bool { return rp.Sites[i].Site < rp.Sites[j].Site })
	p.Rounds = append(p.Rounds, *rp)
}

// appendResumed records a checkpoint-restored round: totals only, no
// per-site breakdown.
func (p *QueryProfile) appendResumed(rs RoundStats) {
	if p == nil {
		return
	}
	var rp RoundProfile
	roundProfileFromStats(&rp, rs)
	p.Rounds = append(p.Rounds, rp)
}

// addSite folds one site arrival into the round profile; nil-safe.
func (rp *RoundProfile) addSite(r *siteResult) {
	if rp == nil {
		return
	}
	sp := SiteRoundProfile{
		Site:        r.site,
		BytesSent:   r.sentB,
		BytesRecv:   r.recvB,
		RowsShipped: r.shipped,
		ComputeNs:   r.computeNs,
		CommNs:      int64(r.comm),
		Replays:     r.replays,
		Hedges:      r.hedges,
		Remote:      r.resp.Profile,
	}
	if r.resp.Rel != nil {
		sp.RowsReturned = int64(r.resp.Rel.Len())
	}
	rp.Sites = append(rp.Sites, sp)
}

// addLost records a site that contributed nothing; nil-safe.
func (rp *RoundProfile) addLost(site string, err error) {
	if rp == nil {
		return
	}
	rp.Sites = append(rp.Sites, SiteRoundProfile{Site: site, Lost: true, Err: err.Error()})
}

// liveSites returns the non-lost entries.
func (rp *RoundProfile) liveSites() []SiteRoundProfile {
	var out []SiteRoundProfile
	for _, s := range rp.Sites {
		if !s.Lost {
			out = append(out, s)
		}
	}
	return out
}

// StragglerRatio measures how much the round's slowest site dominated:
// max site compute time over the median site compute time across the
// live sites. 1.0 means a perfectly balanced round; 0 when fewer than
// two sites answered or the median is zero (sub-resolution rounds carry
// no straggler signal).
func (rp *RoundProfile) StragglerRatio() float64 {
	live := rp.liveSites()
	if len(live) < 2 {
		return 0
	}
	ns := make([]int64, len(live))
	for i, s := range live {
		ns[i] = s.ComputeNs
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	var median float64
	if n := len(ns); n%2 == 1 {
		median = float64(ns[n/2])
	} else {
		median = float64(ns[n/2-1]+ns[n/2]) / 2
	}
	if median <= 0 {
		return 0
	}
	return float64(ns[len(ns)-1]) / median
}

// SlowestSite returns the live site with the largest compute time (ties
// break to the lexically first ID, keeping the answer deterministic), or
// "" when no site answered.
func (rp *RoundProfile) SlowestSite() string {
	best := ""
	var bestNs int64 = -1
	for _, s := range rp.liveSites() {
		if s.ComputeNs > bestNs || (s.ComputeNs == bestNs && (best == "" || s.Site < best)) {
			best, bestNs = s.Site, s.ComputeNs
		}
	}
	return best
}

// RowImbalance measures data skew: the maximum rows returned by any live
// site over the mean across live sites. 1.0 is a perfectly even spread;
// 0 when fewer than two sites answered or no rows came back.
func (rp *RoundProfile) RowImbalance() float64 {
	live := rp.liveSites()
	if len(live) < 2 {
		return 0
	}
	var sum, max int64
	for _, s := range live {
		sum += s.RowsReturned
		if s.RowsReturned > max {
			max = s.RowsReturned
		}
	}
	if sum <= 0 {
		return 0
	}
	mean := float64(sum) / float64(len(live))
	return float64(max) / mean
}

// --- deterministic JSON ---------------------------------------------------

// The JSON shapes follow the statsjson conventions: fixed field order,
// integer nanoseconds, sorted site lists. Only the *_ns timing fields
// vary between identical runs.

type remoteProfileJSON struct {
	Outcome  string `json:"outcome"`
	WallNs   int64  `json:"wall_ns"`
	RowsIn   int    `json:"rows_in"`
	RowsOut  int    `json:"rows_out"`
	BytesIn  int64  `json:"bytes_in_approx"`
	BytesOut int64  `json:"bytes_out_approx"`
	Rounds   int    `json:"rounds"`
	Engine   string `json:"engine,omitempty"`
	Workers  int    `json:"workers,omitempty"`
	VecBatch int64  `json:"vec_batches"`
	VecRows  int64  `json:"vec_rows"`
	VecFRows int64  `json:"vec_filter_rows"`
	VecSel   int64  `json:"vec_selected"`
}

type siteRoundProfileJSON struct {
	Site     string             `json:"site"`
	Lost     bool               `json:"lost,omitempty"`
	Err      string             `json:"err,omitempty"`
	Sent     int64              `json:"bytes_to_site"`
	Recv     int64              `json:"bytes_from_site"`
	Shipped  int64              `json:"rows_shipped"`
	Returned int64              `json:"rows_returned"`
	Compute  int64              `json:"compute_ns"`
	Comm     int64              `json:"comm_ns"`
	Replays  int                `json:"replays,omitempty"`
	Hedges   int                `json:"hedges,omitempty"`
	Remote   *remoteProfileJSON `json:"remote,omitempty"`
}

type roundProfileJSON struct {
	Name           string                 `json:"name"`
	Resumed        bool                   `json:"resumed,omitempty"`
	BytesToSites   int64                  `json:"bytes_to_sites"`
	BytesFromSites int64                  `json:"bytes_from_sites"`
	GroupsShipped  int64                  `json:"groups_shipped"`
	GroupsReceived int64                  `json:"groups_received"`
	SiteNs         int64                  `json:"site_ns"`
	SiteTotalNs    int64                  `json:"site_total_ns"`
	CoordNs        int64                  `json:"coord_ns"`
	CommNs         int64                  `json:"comm_ns"`
	StragglerX1000 int64                  `json:"straggler_ratio_x1000,omitempty"`
	ImbalanceX1000 int64                  `json:"row_imbalance_x1000,omitempty"`
	Sites          []siteRoundProfileJSON `json:"sites,omitempty"`
}

type queryProfileJSON struct {
	QueryID string             `json:"query_id"`
	WallNs  int64              `json:"wall_ns"`
	Partial bool               `json:"partial,omitempty"`
	Rounds  []roundProfileJSON `json:"rounds"`
}

// JSON renders the profile tree deterministically (statsjson
// conventions). Scripts diffing profiles byte for byte should mask the
// *_ns fields, which measure real time.
func (p *QueryProfile) JSON() ([]byte, error) {
	out := queryProfileJSON{
		QueryID: p.QueryID,
		WallNs:  p.WallNs,
		Partial: p.Partial,
		Rounds:  make([]roundProfileJSON, 0, len(p.Rounds)),
	}
	for i := range p.Rounds {
		rp := &p.Rounds[i]
		jr := roundProfileJSON{
			Name:           rp.Name,
			Resumed:        rp.Resumed,
			BytesToSites:   rp.BytesToSites,
			BytesFromSites: rp.BytesFromSites,
			GroupsShipped:  rp.GroupsShipped,
			GroupsReceived: rp.GroupsReceived,
			SiteNs:         rp.SiteNs,
			SiteTotalNs:    rp.SiteTotalNs,
			CoordNs:        rp.CoordNs,
			CommNs:         rp.CommNs,
			StragglerX1000: int64(rp.StragglerRatio() * 1000),
			ImbalanceX1000: int64(rp.RowImbalance() * 1000),
		}
		for _, s := range rp.Sites {
			js := siteRoundProfileJSON{
				Site: s.Site, Lost: s.Lost, Err: s.Err,
				Sent: s.BytesSent, Recv: s.BytesRecv,
				Shipped: s.RowsShipped, Returned: s.RowsReturned,
				Compute: s.ComputeNs, Comm: s.CommNs,
				Replays: s.Replays, Hedges: s.Hedges,
			}
			if r := s.Remote; r != nil {
				js.Remote = &remoteProfileJSON{
					Outcome: r.Outcome, WallNs: r.WallNs,
					RowsIn: r.RowsIn, RowsOut: r.RowsOut,
					BytesIn: r.BytesInApprox, BytesOut: r.BytesOutApprox,
					Rounds: r.Rounds, Engine: r.Engine, Workers: r.Workers,
					VecBatch: r.VecBatches, VecRows: r.VecRows,
					VecFRows: r.VecFilterRows, VecSel: r.VecSelected,
				}
			}
			jr.Sites = append(jr.Sites, js)
		}
		out.Rounds = append(out.Rounds, jr)
	}
	return json.MarshalIndent(out, "", "  ")
}

// --- EXPLAIN ANALYZE ------------------------------------------------------

// AnalyzeOptions controls RenderAnalyze.
type AnalyzeOptions struct {
	// Timing includes the measured durations (site/coord/comm/wall times
	// and the straggler ratio). Off by default: the timing-free output is
	// fully deterministic for a fixed input, which is what golden tests
	// and diffable tooling need.
	Timing bool
}

// RenderAnalyze renders the EXPLAIN ANALYZE report: the optimizer's plan
// followed by what actually happened — per-round coverage, exact wire
// bytes, group movement, and (when the execution was QueryID-tagged) the
// per-site breakdown with each site's self-reported engine, kernel rows,
// and outcome. Without AnalyzeOptions.Timing the output contains no
// clock readings and is deterministic across runs of the same query on
// the same data, up to the exact wire byte counts (responses carry
// varint-encoded timing fields, so their measured size can shift by a
// few bytes run to run).
func RenderAnalyze(plan *Plan, stats *ExecStats, opt AnalyzeOptions) string {
	var b strings.Builder
	b.WriteString(plan.Explain())
	if stats == nil {
		return b.String()
	}
	fmt.Fprintf(&b, "analyze: %d round(s) executed\n", len(stats.Rounds))
	for i, r := range stats.Rounds {
		fmt.Fprintf(&b, "  round %s: %d/%d sites, %d B to sites / %d B from sites, %d groups shipped / %d received",
			r.Name, len(r.Responded), len(r.Responded)+len(r.Lost),
			r.BytesToSites, r.BytesFromSites, r.GroupsShipped, r.GroupsReceived)
		if r.Resumed {
			b.WriteString(" (resumed)")
		}
		if opt.Timing {
			fmt.Fprintf(&b, ", site(max) %s, coord %s, comm %s",
				r.SiteTime.Round(time.Microsecond),
				r.CoordTime.Round(time.Microsecond),
				r.CommTime.Round(time.Microsecond))
		}
		b.WriteByte('\n')
		if stats.Profile == nil || i >= len(stats.Profile.Rounds) {
			continue
		}
		rp := &stats.Profile.Rounds[i]
		for _, s := range rp.Sites {
			if s.Lost {
				fmt.Fprintf(&b, "    %s: lost (%s)\n", s.Site, s.Err)
				continue
			}
			fmt.Fprintf(&b, "    %s: shipped %d rows, returned %d rows", s.Site, s.RowsShipped, s.RowsReturned)
			if s.Replays > 0 {
				fmt.Fprintf(&b, ", %d replay(s)", s.Replays)
			}
			if s.Hedges > 0 {
				fmt.Fprintf(&b, ", %d hedge(s)", s.Hedges)
			}
			if r := s.Remote; r != nil {
				if r.Engine != "" {
					fmt.Fprintf(&b, ", engine %s", r.Engine)
				}
				if r.VecRows > 0 {
					fmt.Fprintf(&b, ", vec rows %d (selected %d)", r.VecRows, r.VecSelected)
				}
				fmt.Fprintf(&b, ", outcome %s", r.Outcome)
			}
			if opt.Timing {
				fmt.Fprintf(&b, ", compute %s", time.Duration(s.ComputeNs).Round(time.Microsecond))
			}
			b.WriteByte('\n')
		}
		if opt.Timing {
			if ratio := rp.StragglerRatio(); ratio > 0 {
				fmt.Fprintf(&b, "    straggler ratio %.2fx (slowest %s)\n", ratio, rp.SlowestSite())
			}
		}
		if imb := rp.RowImbalance(); imb > 0 {
			fmt.Fprintf(&b, "    row imbalance %.2fx\n", imb)
		}
	}
	fmt.Fprintf(&b, "totals: %d bytes moved, %d groups moved", stats.Bytes(), stats.Groups())
	if opt.Timing {
		fmt.Fprintf(&b, ", eval %s, wall %s",
			stats.EvalTime().Round(time.Microsecond), stats.Wall.Round(time.Microsecond))
	}
	if stats.Partial() {
		fmt.Fprintf(&b, " (PARTIAL: lost %s)", strings.Join(stats.LostSites(), ", "))
	}
	b.WriteByte('\n')
	return b.String()
}
