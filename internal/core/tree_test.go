package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/gmdj"
	"repro/internal/relation"
	"repro/internal/site"
	"repro/internal/tpcr"
	"repro/internal/transport"
)

func init() {
	// The skalla facade registers generators for applications; this test
	// binary drives the site engines directly.
	site.RegisterGenerator("tpcr", tpcr.Generator)
}

// treeCluster builds leaves engines grouped under relays of the given
// fanout, returning the root coordinator and the flat coordinator over
// the same engines for comparison.
func treeCluster(t *testing.T, rows []relation.Row, leaves, fanout int) (tree, flat *Coordinator) {
	t.Helper()
	parts := make([]*relation.Relation, leaves)
	for i := range parts {
		parts[i] = relation.New(flowSchema())
	}
	for i, row := range rows {
		parts[i%leaves].Rows = append(parts[i%leaves].Rows, row)
	}
	var leafClients []transport.Client
	for i := 0; i < leaves; i++ {
		eng := site.NewEngine(fmt.Sprintf("leaf%d", i))
		eng.Load("flow", parts[i])
		leafClients = append(leafClients, transport.NewLocalClient(eng.ID(), eng, transport.CostModel{}))
	}

	var relayClients []transport.Client
	for off := 0; off < leaves; off += fanout {
		end := off + fanout
		if end > leaves {
			end = leaves
		}
		relay, err := NewRelay(leafClients[off:end], off, leaves)
		if err != nil {
			t.Fatal(err)
		}
		relayClients = append(relayClients,
			transport.NewLocalClient(fmt.Sprintf("relay%d", off/fanout), relay, transport.CostModel{}))
	}
	return NewCoordinator(relayClients...), NewCoordinator(leafClients...)
}

func TestRelayTreeMatchesFlat(t *testing.T) {
	rows := testRows(400, 11)
	q := example1()
	tree, flat := treeCluster(t, rows, 4, 2)
	egil := Egil{Catalog: catalog.New("relay0", "relay1"), Options: Options{GroupReduceSites: true}}

	want, _, _, err := flat.Run(context.Background(), q, "flow", Egil{Catalog: catalog.New()})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, _, err := tree.Run(context.Background(), q, "flow", egil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRelation(t, "tree vs flat", got, want, q.Keys())
	if stats.Bytes() <= 0 {
		t.Error("no traffic accounted at root")
	}
}

// TestRelayPreMergeShrinksUpstream: with round-robin data every leaf
// holds every group, so a relay's merged fragment is ~1/fanout the size
// of its children's combined fragments.
func TestRelayPreMergeShrinksUpstream(t *testing.T) {
	rows := testRows(600, 12)
	q := example1()
	tree, flat := treeCluster(t, rows, 4, 2)

	_, flatStats, _, err := flat.Run(context.Background(), q, "flow", Egil{Catalog: catalog.New()})
	if err != nil {
		t.Fatal(err)
	}
	_, treeStats, _, err := tree.Run(context.Background(), q, "flow", Egil{Catalog: catalog.New()})
	if err != nil {
		t.Fatal(err)
	}
	var flatRecv, treeRecv int64
	for _, r := range flatStats.Rounds {
		flatRecv += r.GroupsReceived
	}
	for _, r := range treeStats.Rounds {
		treeRecv += r.GroupsReceived
	}
	// 4 leaves → 2 relays: upstream group rows should halve.
	if treeRecv*3 > flatRecv*2 {
		t.Errorf("relay pre-merge weak: tree received %d rows, flat %d", treeRecv, flatRecv)
	}
}

func TestRelayChainedRounds(t *testing.T) {
	// Sync-reduced chains also merge correctly through a relay (prims of
	// all MDs in one fragment).
	rows := testRows(300, 13)
	q := example1()
	tree, flat := treeCluster(t, rows, 4, 2)

	want, _, _, err := flat.Run(context.Background(), q, "flow", Egil{Catalog: catalog.New()})
	if err != nil {
		t.Fatal(err)
	}
	// Force a fused+chained single round through relays: partition
	// knowledge is absent, so only Prop 2 fusion applies; that's enough
	// to exercise fused-step merging at the relay.
	got, _, plan, err := tree.Run(context.Background(), q, "flow", Egil{Catalog: catalog.New(), Options: Options{SyncReduce: true}})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Steps[0].FuseBase {
		t.Fatalf("expected fused first step:\n%s", plan.Explain())
	}
	assertSameRelation(t, "tree chained", got, want, q.Keys())
}

func TestRelayGenerate(t *testing.T) {
	leaves := 4
	var leafClients []transport.Client
	engines := make([]*site.Engine, leaves)
	for i := 0; i < leaves; i++ {
		engines[i] = site.NewEngine(fmt.Sprintf("leaf%d", i))
		leafClients = append(leafClients, transport.NewLocalClient(engines[i].ID(), engines[i], transport.CostModel{}))
	}
	var relays []transport.Client
	for off := 0; off < leaves; off += 2 {
		relay, err := NewRelay(leafClients[off:off+2], off, leaves)
		if err != nil {
			t.Fatal(err)
		}
		relays = append(relays, transport.NewLocalClient(fmt.Sprintf("relay%d", off/2), relay, transport.CostModel{}))
	}

	cfg := tpcr.Config{Rows: 2000, Customers: 50, Seed: 3}
	total := 0
	for i, rc := range relays {
		resp, err := rc.Call(context.Background(), &transport.Request{
			Op:  transport.OpGenerate,
			Gen: &transport.GenSpec{Kind: "tpcr", Rel: "tpcr", Params: tpcr.GenParams(cfg), Site: i, NumSites: len(relays)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := resp.Error(); err != nil {
			t.Fatal(err)
		}
		total += resp.RowCount
	}
	if want := tpcr.Generate(cfg).Len(); total != want {
		t.Errorf("tree generated %d rows, want %d", total, want)
	}
	// Every leaf holds a disjoint nation set.
	nk, _ := tpcr.Schema().MustLookup("NationKey")
	seen := map[int64]string{}
	for _, eng := range engines {
		rel, err := eng.Relation("tpcr")
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range rel.Rows {
			if prev, dup := seen[row[nk].I]; dup && prev != eng.ID() {
				t.Fatalf("nation %d at both %s and %s", row[nk].I, prev, eng.ID())
			}
			seen[row[nk].I] = eng.ID()
		}
	}
}

func TestRelayErrors(t *testing.T) {
	if _, err := NewRelay(nil, 0, 0); err == nil {
		t.Error("relay without children accepted")
	}
	eng := site.NewEngine("leaf")
	child := transport.NewLocalClient("leaf", eng, transport.CostModel{})
	if _, err := NewRelay([]transport.Client{child}, 2, 2); err == nil {
		t.Error("bad leaf range accepted")
	}
	relay, err := NewRelay([]transport.Client{child}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if resp := relay.Handle(context.Background(), &transport.Request{Op: transport.OpLoad, Rel: "x", Data: relation.New(flowSchema())}); resp.Error() == nil {
		t.Error("load through relay accepted")
	}
	if resp := relay.Handle(context.Background(), &transport.Request{Op: transport.OpGenerate}); resp.Error() == nil {
		t.Error("generate without spec accepted")
	}
	// Child errors surface.
	if resp := relay.Handle(context.Background(), &transport.Request{Op: transport.OpRelInfo, Rel: "missing"}); resp.Error() == nil {
		t.Error("child error not propagated")
	}
}

// TestRelayPassThroughWithoutKeys: a round request without merge keys
// degrades to a pass-through union at the relay (still one message
// upstream).
func TestRelayPassThroughWithoutKeys(t *testing.T) {
	rows := testRows(100, 41)
	parts := []*relation.Relation{relation.New(flowSchema()), relation.New(flowSchema())}
	for i, row := range rows {
		parts[i%2].Rows = append(parts[i%2].Rows, row)
	}
	var children []transport.Client
	for i, part := range parts {
		eng := site.NewEngine(fmt.Sprintf("leaf%d", i))
		eng.Load("flow", part)
		children = append(children, transport.NewLocalClient(eng.ID(), eng, transport.CostModel{}))
	}
	relay, err := NewRelay(children, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	whole := relation.New(flowSchema())
	whole.Rows = rows
	b, err := gmdj.EvalBase(whole, gmdj.BaseDef{Cols: []string{"SourceAS"}})
	if err != nil {
		t.Fatal(err)
	}
	resp := relay.Handle(context.Background(), &transport.Request{
		Op:   transport.OpEvalRounds,
		Base: b,
		Rounds: []transport.RoundSpec{{
			Detail: "flow",
			Aggs:   [][]string{{"count(*) AS c"}},
			Thetas: []string{"F.SourceAS = B.SourceAS"},
		}},
		// No Keys: pass-through union of both children's fragments.
	})
	if resp.Error() != nil {
		t.Fatal(resp.Error())
	}
	if resp.Rel.Len() != 2*b.Len() {
		t.Errorf("pass-through rows = %d, want %d", resp.Rel.Len(), 2*b.Len())
	}
}

// ctxProbeHandler blocks every request until its context is cancelled,
// recording whether cancellation ever reached it.
type ctxProbeHandler struct {
	started chan struct{} // closed when the request arrives
	saw     chan struct{} // closed when ctx.Done() fires
}

func newCtxProbeHandler() *ctxProbeHandler {
	return &ctxProbeHandler{started: make(chan struct{}), saw: make(chan struct{})}
}

func (h *ctxProbeHandler) Handle(ctx context.Context, req *transport.Request) *transport.Response {
	close(h.started)
	select {
	case <-ctx.Done():
		close(h.saw)
		return &transport.Response{Err: ctx.Err().Error()}
	case <-time.After(10 * time.Second):
		return &transport.Response{Err: "leaf never saw cancellation"}
	}
}

// TestRelayCancellationPropagates: cancelling the root context of a
// tree-mode query must reach the leaves through the relay tier. This
// guards the context threading in Relay.fanout — with child calls made
// under context.Background() (the pre-refactor behavior flagged by the
// ctxflow analyzer) the leaves would block until their own timeout and
// this test fails.
func TestRelayCancellationPropagates(t *testing.T) {
	leaves := []*ctxProbeHandler{newCtxProbeHandler(), newCtxProbeHandler()}
	var children []transport.Client
	for i, h := range leaves {
		children = append(children, transport.NewLocalClient(fmt.Sprintf("leaf%d", i), h, transport.CostModel{}))
	}
	relay, err := NewRelay(children, 0, len(children))
	if err != nil {
		t.Fatal(err)
	}
	root := transport.NewLocalClient("relay0", relay, transport.CostModel{})

	ctx, cancel := context.WithCancel(context.Background())
	callDone := make(chan error, 1)
	go func() {
		_, err := root.Call(ctx, &transport.Request{Op: transport.OpPing})
		callDone <- err
	}()

	// Wait until the request has fanned out to every leaf, then cancel.
	for i, h := range leaves {
		select {
		case <-h.started:
		case <-time.After(5 * time.Second):
			t.Fatalf("leaf%d never received the request", i)
		}
	}
	cancel()

	// The root call aborts promptly...
	select {
	case err := <-callDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("root call error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("root call did not abort on cancellation")
	}
	// ...and, crucially, the cancellation reached every leaf through the
	// relay instead of leaving the subtree working on a discarded request.
	for i, h := range leaves {
		select {
		case <-h.saw:
		case <-time.After(5 * time.Second):
			t.Fatalf("leaf%d never observed cancellation: relay did not thread the request context", i)
		}
	}
}

func TestCoordinatorNumSitesAndStatsGroups(t *testing.T) {
	coord, cat, _ := cluster(t, testRows(50, 42), 3, false)
	if coord.NumSites() != 3 {
		t.Errorf("NumSites = %d", coord.NumSites())
	}
	_, stats, _, err := coord.Run(context.Background(), example1(), "flow", Egil{Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Groups() <= 0 {
		t.Error("Groups() accounting empty")
	}
}
