package core
