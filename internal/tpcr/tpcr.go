// Package tpcr generates the denormalized TPC-R-style dataset the paper's
// experiments use. The original evaluation derived a 900 MB, 6 M tuple
// relation from the TPC(R) dbgen program — a denormalized join of
// lineitem, orders, and customer — partitioned on NationKey (and therefore
// on CustKey, which functionally determines it).
//
// This generator reproduces the properties the experiments depend on:
//
//   - NationKey partitions the data across sites; CustKey → NationKey and
//     CustName → CustKey are functional dependencies, making CustName a
//     (derived) partition attribute — the high-cardinality grouping
//     attribute (100,000 unique values in the paper, scaled here).
//   - PartKey has a few thousand unique values spread over all sites —
//     the low-cardinality, non-partitioned grouping attribute.
//   - Measures (Quantity, ExtendedPrice, ...) follow dbgen-like uniform
//     distributions.
//
// Generation is deterministic in Config.Seed, and a site generating its
// partition produces exactly the rows of the full dataset that fall in
// its nation set, independent of the number of sites.
package tpcr

import (
	"fmt"
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/relation"
	"repro/internal/transport"
	"repro/internal/value"
)

// Config parameterizes the generator.
type Config struct {
	// Rows is the total number of lineitem rows in the full dataset.
	Rows int
	// Customers is the number of distinct customers (CustName values).
	// The paper's high-cardinality experiments use 100,000.
	Customers int
	// Parts is the number of distinct PartKey values — the
	// low-cardinality grouping attribute (paper: 2000–4000).
	Parts int
	// Suppliers is the number of distinct SuppKey values.
	Suppliers int
	// Nations is the number of nations; NationKey is the partition
	// attribute. TPC uses 25.
	Nations int
	// LowCardGroups is the cardinality of the derived CustGroup column
	// (CustKey mod LowCardGroups) — the low-cardinality grouping
	// attribute of the experiments. When it is a multiple of Nations,
	// CustGroup functionally determines NationKey and is therefore a
	// partition attribute.
	LowCardGroups int
	// Seed makes generation deterministic.
	Seed int64
}

// Defaults fills zero fields with scaled-down defaults.
func (c Config) Defaults() Config {
	if c.Rows == 0 {
		c.Rows = 60000
	}
	if c.Customers == 0 {
		c.Customers = 1000
	}
	if c.Parts == 0 {
		c.Parts = 2000
	}
	if c.Suppliers == 0 {
		c.Suppliers = 100
	}
	if c.Nations == 0 {
		c.Nations = 25
	}
	if c.LowCardGroups == 0 {
		c.LowCardGroups = 2000
	}
	return c
}

var mktSegments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
var returnFlags = []string{"A", "N", "R"}
var lineStatus = []string{"F", "O"}
var shipModes = []string{"AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"}

// Schema returns the denormalized TPCR schema.
func Schema() *relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "OrderKey", Kind: value.KindInt},
		relation.Column{Name: "LineNumber", Kind: value.KindInt},
		relation.Column{Name: "CustKey", Kind: value.KindInt},
		relation.Column{Name: "CustName", Kind: value.KindString},
		relation.Column{Name: "CustGroup", Kind: value.KindInt},
		relation.Column{Name: "NationKey", Kind: value.KindInt},
		relation.Column{Name: "RegionKey", Kind: value.KindInt},
		relation.Column{Name: "MktSegment", Kind: value.KindString},
		relation.Column{Name: "PartKey", Kind: value.KindInt},
		relation.Column{Name: "SuppKey", Kind: value.KindInt},
		relation.Column{Name: "Quantity", Kind: value.KindInt},
		relation.Column{Name: "ExtendedPrice", Kind: value.KindFloat},
		relation.Column{Name: "Discount", Kind: value.KindFloat},
		relation.Column{Name: "Tax", Kind: value.KindFloat},
		relation.Column{Name: "ShipDate", Kind: value.KindInt},
		relation.Column{Name: "OrderDate", Kind: value.KindInt},
		relation.Column{Name: "ReturnFlag", Kind: value.KindString},
		relation.Column{Name: "LineStatus", Kind: value.KindString},
		relation.Column{Name: "ShipMode", Kind: value.KindString},
	)
}

// CustNationKey is the functional dependency CustKey → NationKey.
func CustNationKey(custKey int64, nations int) int64 {
	return custKey % int64(nations)
}

// CustName renders the dbgen-style customer name for a key.
func CustName(custKey int64) string {
	return fmt.Sprintf("Customer#%09d", custKey)
}

// NationsFor returns the nation keys assigned to one of numSites sites
// under the round-robin partitioning the experiments use.
func NationsFor(siteIdx, numSites, nations int) []int64 {
	var out []int64
	for n := siteIdx; n < nations; n += numSites {
		out = append(out, int64(n))
	}
	return out
}

// Generate produces the full dataset.
func Generate(cfg Config) *relation.Relation {
	return generate(cfg, nil)
}

// GeneratePartition produces the rows of the full dataset whose NationKey
// belongs to site siteIdx of numSites. The union over all sites is
// exactly Generate(cfg).
func GeneratePartition(cfg Config, siteIdx, numSites int) (*relation.Relation, error) {
	cfg = cfg.Defaults()
	if numSites <= 0 || siteIdx < 0 || siteIdx >= numSites {
		return nil, fmt.Errorf("tpcr: bad partition %d/%d", siteIdx, numSites)
	}
	keep := map[int64]bool{}
	for _, n := range NationsFor(siteIdx, numSites, cfg.Nations) {
		keep[n] = true
	}
	return generate(cfg, keep), nil
}

func generate(cfg Config, keepNations map[int64]bool) *relation.Relation {
	cfg = cfg.Defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := relation.New(Schema())

	orderKey := int64(0)
	lineNumber := int64(7) // forces a new order on the first row
	var custKey, orderDate int64
	for i := 0; i < cfg.Rows; i++ {
		// Orders have 1..7 lineitems; a new order picks a new customer.
		lineNumber++
		if lineNumber > 1+int64(rng.Intn(7)) {
			orderKey++
			lineNumber = 1
			custKey = int64(rng.Intn(cfg.Customers))
			orderDate = int64(rng.Intn(2400))
		}
		nationKey := CustNationKey(custKey, cfg.Nations)
		quantity := int64(1 + rng.Intn(50))
		price := float64(quantity) * (900 + float64(rng.Intn(100000))/100)
		row := relation.Row{
			value.NewInt(orderKey),
			value.NewInt(lineNumber),
			value.NewInt(custKey),
			value.NewString(CustName(custKey)),
			value.NewInt(custKey % int64(cfg.LowCardGroups)),
			value.NewInt(nationKey),
			value.NewInt(nationKey % 5),
			value.NewString(mktSegments[(custKey/5)%int64(len(mktSegments))]),
			value.NewInt(int64(rng.Intn(cfg.Parts))),
			value.NewInt(int64(rng.Intn(cfg.Suppliers))),
			value.NewInt(quantity),
			value.NewFloat(price),
			value.NewFloat(float64(rng.Intn(11)) / 100),
			value.NewFloat(float64(rng.Intn(9)) / 100),
			value.NewInt(orderDate + int64(1+rng.Intn(121))),
			value.NewInt(orderDate),
			value.NewString(returnFlags[rng.Intn(len(returnFlags))]),
			value.NewString(lineStatus[rng.Intn(len(lineStatus))]),
			value.NewString(shipModes[rng.Intn(len(shipModes))]),
		}
		if keepNations != nil && !keepNations[nationKey] {
			continue
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// GenParams converts a Config into transport.GenSpec parameters.
func GenParams(cfg Config) map[string]int64 {
	cfg = cfg.Defaults()
	return map[string]int64{
		"rows":      int64(cfg.Rows),
		"customers": int64(cfg.Customers),
		"parts":     int64(cfg.Parts),
		"suppliers": int64(cfg.Suppliers),
		"nations":   int64(cfg.Nations),
		"lowcard":   int64(cfg.LowCardGroups),
		"seed":      cfg.Seed,
	}
}

// ConfigFromParams is the inverse of GenParams.
func ConfigFromParams(p map[string]int64) Config {
	return Config{
		Rows:          int(p["rows"]),
		Customers:     int(p["customers"]),
		Parts:         int(p["parts"]),
		Suppliers:     int(p["suppliers"]),
		Nations:       int(p["nations"]),
		LowCardGroups: int(p["lowcard"]),
		Seed:          p["seed"],
	}.Defaults()
}

// Generator adapts the package to the site generator registry: sites
// synthesize their own partition locally so no detail data ever crosses
// the wire.
func Generator(spec *transport.GenSpec) (*relation.Relation, error) {
	return GeneratePartition(ConfigFromParams(spec.Params), spec.Site, spec.NumSites)
}

// FillCatalog records the TPCR distribution knowledge for numSites sites:
// per-site NationKey domains (value sets) and the functional dependencies
// CustKey → NationKey and CustName → CustKey.
func FillCatalog(cat *catalog.Catalog, siteIDs []string, cfg Config) error {
	cfg = cfg.Defaults()
	for i, id := range siteIDs {
		var vals []value.V
		for _, n := range NationsFor(i, len(siteIDs), cfg.Nations) {
			vals = append(vals, value.NewInt(n))
		}
		if err := cat.SetDomain(id, "NationKey", expr.DomainSet(vals...)); err != nil {
			return err
		}
	}
	cat.AddFD("CustKey", "NationKey")
	cat.AddFD("CustName", "CustKey")
	if cfg.LowCardGroups%cfg.Nations == 0 {
		// CustKey mod LowCardGroups determines CustKey mod Nations.
		cat.AddFD("CustGroup", "NationKey")
	}
	return nil
}

// FillValueDomains adds per-site value-set domains for CustKey, CustName,
// and CustGroup to the catalog — the finer-grained distribution knowledge
// Section 4.1 of the paper contemplates ("any given value ... might occur
// at only a few sites"), which lets the optimizer derive coordinator-side
// group reduction filters for queries grouped on those attributes. The
// set sizes are bounded by cfg.Customers, so this suits deployments where
// the grouping-value directory is small enough to catalog.
func FillValueDomains(cat *catalog.Catalog, siteIDs []string, cfg Config) error {
	cfg = cfg.Defaults()
	n := len(siteIDs)
	keys := make([][]value.V, n)
	names := make([][]value.V, n)
	groups := make([][]value.V, n)
	seenGroup := make([]map[int64]bool, n)
	for i := range seenGroup {
		seenGroup[i] = map[int64]bool{}
	}
	for ck := int64(0); ck < int64(cfg.Customers); ck++ {
		s := int(CustNationKey(ck, cfg.Nations)) % n
		keys[s] = append(keys[s], value.NewInt(ck))
		names[s] = append(names[s], value.NewString(CustName(ck)))
		g := ck % int64(cfg.LowCardGroups)
		if !seenGroup[s][g] {
			seenGroup[s][g] = true
			groups[s] = append(groups[s], value.NewInt(g))
		}
	}
	for i, id := range siteIDs {
		if err := cat.SetDomain(id, "CustKey", expr.DomainSet(keys[i]...)); err != nil {
			return err
		}
		if err := cat.SetDomain(id, "CustName", expr.DomainSet(names[i]...)); err != nil {
			return err
		}
		// CustGroup sets are only disjoint (and thus only safe to use
		// for reduction per Theorem 4) when they partition; they always
		// over-approximate correctly, so recording them is sound.
		if err := cat.SetDomain(id, "CustGroup", expr.DomainSet(groups[i]...)); err != nil {
			return err
		}
	}
	return nil
}
