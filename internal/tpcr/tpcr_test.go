package tpcr

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/relation"
	"repro/internal/transport"
	"repro/internal/value"
)

func TestDeterminism(t *testing.T) {
	cfg := Config{Rows: 2000, Seed: 7}
	a := Generate(cfg)
	b := Generate(cfg)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if !value.Equal(a.Rows[i][j], b.Rows[i][j]) {
				t.Fatalf("row %d col %d differs", i, j)
			}
		}
	}
	c := Generate(Config{Rows: 2000, Seed: 8})
	same := true
	for i := range a.Rows {
		if !value.Equal(a.Rows[i][10], c.Rows[i][10]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

// TestPartitionUnion: the per-site partitions are a partition of the full
// dataset — disjoint and complete.
func TestPartitionUnion(t *testing.T) {
	cfg := Config{Rows: 3000, Seed: 3}
	whole := Generate(cfg)
	nSites := 4
	total := 0
	nkIdx, _ := Schema().MustLookup("NationKey")
	seenNations := map[int64]int{}
	for s := 0; s < nSites; s++ {
		part, err := GeneratePartition(cfg, s, nSites)
		if err != nil {
			t.Fatal(err)
		}
		total += part.Len()
		for _, row := range part.Rows {
			nk := row[nkIdx].I
			if int(nk)%nSites != s {
				t.Fatalf("site %d has nation %d", s, nk)
			}
			seenNations[nk] = s
		}
	}
	if total != whole.Len() {
		t.Errorf("partitions have %d rows, whole has %d", total, whole.Len())
	}
	if _, err := GeneratePartition(cfg, 9, 4); err == nil {
		t.Error("bad partition index accepted")
	}
}

func TestFunctionalDependencies(t *testing.T) {
	cfg := Config{Rows: 2000, Seed: 5}.Defaults()
	r := Generate(cfg)
	ck, _ := Schema().MustLookup("CustKey")
	cn, _ := Schema().MustLookup("CustName")
	nk, _ := Schema().MustLookup("NationKey")
	rk, _ := Schema().MustLookup("RegionKey")
	nameToKey := map[string]int64{}
	keyToNation := map[int64]int64{}
	for _, row := range r.Rows {
		if prev, ok := nameToKey[row[cn].S]; ok && prev != row[ck].I {
			t.Fatal("CustName does not determine CustKey")
		}
		nameToKey[row[cn].S] = row[ck].I
		if prev, ok := keyToNation[row[ck].I]; ok && prev != row[nk].I {
			t.Fatal("CustKey does not determine NationKey")
		}
		keyToNation[row[ck].I] = row[nk].I
		if row[rk].I != row[nk].I%5 {
			t.Fatal("RegionKey != NationKey % 5")
		}
		if row[nk].I < 0 || row[nk].I >= int64(cfg.Nations) {
			t.Fatalf("NationKey %d out of range", row[nk].I)
		}
	}
}

func TestCardinalities(t *testing.T) {
	cfg := Config{Rows: 20000, Customers: 150, Parts: 40, Seed: 11}
	r := Generate(cfg)
	ck, _ := Schema().MustLookup("CustKey")
	pk, _ := Schema().MustLookup("PartKey")
	custs := map[int64]struct{}{}
	parts := map[int64]struct{}{}
	for _, row := range r.Rows {
		custs[row[ck].I] = struct{}{}
		parts[row[pk].I] = struct{}{}
	}
	if len(custs) != 150 {
		t.Errorf("distinct customers = %d, want 150", len(custs))
	}
	if len(parts) != 40 {
		t.Errorf("distinct parts = %d, want 40", len(parts))
	}
}

func TestMeasureRanges(t *testing.T) {
	r := Generate(Config{Rows: 5000, Seed: 13})
	q, _ := Schema().MustLookup("Quantity")
	d, _ := Schema().MustLookup("Discount")
	sd, _ := Schema().MustLookup("ShipDate")
	od, _ := Schema().MustLookup("OrderDate")
	for _, row := range r.Rows {
		if row[q].I < 1 || row[q].I > 50 {
			t.Fatalf("Quantity %d out of range", row[q].I)
		}
		if row[d].F < 0 || row[d].F > 0.1 {
			t.Fatalf("Discount %v out of range", row[d])
		}
		if row[sd].I <= row[od].I {
			t.Fatal("ShipDate not after OrderDate")
		}
	}
}

func TestGenParamsRoundTrip(t *testing.T) {
	cfg := Config{Rows: 123, Customers: 45, Parts: 6, Suppliers: 7, Nations: 8, LowCardGroups: 16, Seed: 9}
	back := ConfigFromParams(GenParams(cfg))
	if back != cfg {
		t.Errorf("round trip: %+v != %+v", back, cfg)
	}
}

func TestGeneratorAdapter(t *testing.T) {
	spec := &transport.GenSpec{
		Kind: "tpcr", Params: GenParams(Config{Rows: 500, Seed: 1}),
		Site: 1, NumSites: 2,
	}
	r, err := Generator(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() == 0 {
		t.Error("empty partition")
	}
	var _ *relation.Relation = r
}

func TestFillCatalog(t *testing.T) {
	ids := []string{"s0", "s1", "s2"}
	cat := catalog.New(ids...)
	if err := FillCatalog(cat, ids, Config{}); err != nil {
		t.Fatal(err)
	}
	if !cat.IsPartitionAttr("NationKey") {
		t.Error("NationKey not a partition attribute")
	}
	if !cat.IsPartitionAttr("CustKey") || !cat.IsPartitionAttr("CustName") {
		t.Error("FD-derived partition attributes missing")
	}
	if cat.IsPartitionAttr("PartKey") {
		t.Error("PartKey wrongly a partition attribute")
	}
}

func TestNationsFor(t *testing.T) {
	all := map[int64]bool{}
	for s := 0; s < 8; s++ {
		for _, n := range NationsFor(s, 8, 25) {
			if all[n] {
				t.Fatalf("nation %d assigned twice", n)
			}
			all[n] = true
		}
	}
	if len(all) != 25 {
		t.Errorf("assigned %d nations, want 25", len(all))
	}
}

func TestFillValueDomains(t *testing.T) {
	ids := []string{"s0", "s1", "s2", "s3"}
	cat := catalog.New(ids...)
	cfg := Config{Customers: 100, LowCardGroups: 20, Nations: 20}
	if err := FillValueDomains(cat, ids, cfg); err != nil {
		t.Fatal(err)
	}
	// CustKey/CustName value sets are per-site disjoint → partition attrs
	// even without the FD route.
	for _, attr := range []string{"CustKey", "CustName", "CustGroup"} {
		if !cat.IsPartitionAttr(attr) {
			t.Errorf("%s not a partition attribute from value domains", attr)
		}
	}
	// Every customer lands at exactly one site, consistent with the
	// generator's placement.
	seen := map[string]bool{}
	total := 0
	for _, id := range ids {
		d := cat.DomainsFor(id)["custname"]
		for _, v := range d.Set {
			if seen[v.S] {
				t.Fatalf("customer %s at two sites", v.S)
			}
			seen[v.S] = true
			total++
		}
	}
	if total != 100 {
		t.Errorf("catalogued %d customers, want 100", total)
	}
	// The domains agree with generated data: each site's rows only use
	// its catalogued CustGroup values.
	for i, id := range ids {
		part, err := GeneratePartition(Config{Rows: 1000, Customers: 100, LowCardGroups: 20, Nations: 20, Seed: 4}, i, len(ids))
		if err != nil {
			t.Fatal(err)
		}
		allowed := map[string]bool{}
		for _, v := range cat.DomainsFor(id)["custgroup"].Set {
			allowed[v.Key()] = true
		}
		gi, _ := Schema().MustLookup("CustGroup")
		for _, row := range part.Rows {
			if !allowed[row[gi].Key()] {
				t.Fatalf("site %s has CustGroup %v outside its catalogued domain", id, row[gi])
			}
		}
	}
	// Unknown site id errors.
	if err := FillValueDomains(catalog.New("other"), []string{"nope"}, cfg); err == nil {
		t.Error("unknown site accepted")
	}
}
