package site

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/relation"
)

// Snapshot durability: a site can persist its stored relations to disk
// and restore them at startup, so a restarted warehouse site comes back
// with its partition intact without re-ingesting or regenerating. The
// snapshot format is a single gob stream (a header plus the relation
// map), written atomically via a temp file + rename.

// snapshotMagic guards against restoring something that is not a Skalla
// snapshot.
const snapshotMagic = "skalla-site-snapshot-v1"

type snapshotFile struct {
	Magic  string
	SiteID string
	Rels   map[string]*relation.Relation
}

// Snapshot writes every stored relation to path, atomically.
func (e *Engine) Snapshot(path string) error {
	e.mu.RLock()
	snap := snapshotFile{Magic: snapshotMagic, SiteID: e.id, Rels: make(map[string]*relation.Relation, len(e.rels))}
	for name, rel := range e.rels {
		snap.Rels[name] = rel
	}
	e.mu.RUnlock()

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".skalla-snapshot-*")
	if err != nil {
		return fmt.Errorf("site: snapshot: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename

	w := bufio.NewWriter(tmp)
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		tmp.Close()
		return fmt.Errorf("site: snapshot encode: %w", err)
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("site: snapshot flush: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("site: snapshot close: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("site: snapshot rename: %w", err)
	}
	return nil
}

// Restore replaces the engine's relations with the snapshot's contents.
func (e *Engine) Restore(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("site: restore: %w", err)
	}
	defer f.Close()
	var snap snapshotFile
	if err := gob.NewDecoder(bufio.NewReader(f)).Decode(&snap); err != nil {
		return fmt.Errorf("site: restore decode: %w", err)
	}
	if snap.Magic != snapshotMagic {
		return fmt.Errorf("site: %s is not a site snapshot", path)
	}
	e.mu.Lock()
	e.rels = snap.Rels
	if e.rels == nil {
		e.rels = map[string]*relation.Relation{}
	}
	e.mu.Unlock()
	return nil
}

// RelationNames lists the stored relations, for diagnostics.
func (e *Engine) RelationNames() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.rels))
	for name := range e.rels {
		out = append(out, name)
	}
	return out
}
