// Package site implements a Skalla site: the local data warehouse adjacent
// to a data collection point. A site stores its horizontal partition of
// the detail relation(s) and evaluates GMDJ rounds against it, shipping
// only base-result structures and sub-aggregates back to the coordinator —
// never detail tuples.
//
// The original system used the Daytona DBMS as the local warehouse; here
// the local evaluator is the gmdj package over in-memory relations, which
// exposes the same contract (local evaluation of GMDJ expressions and of
// base-values queries).
package site

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/agg"
	"repro/internal/expr"
	"repro/internal/gmdj"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/transport"
	"repro/internal/vec"
)

// Generator synthesizes one site's partition of a dataset; generators are
// registered by kind (e.g. "tpcr", "ipflow") so sites can build their data
// locally instead of having it shipped.
type Generator func(spec *transport.GenSpec) (*relation.Relation, error)

var (
	genMu sync.RWMutex
	//lint:guarded-by genMu
	generators = map[string]Generator{}
)

// RegisterGenerator makes a dataset generator available to all engines
// under the given kind. It panics on duplicate registration, mirroring
// database/sql driver registration.
func RegisterGenerator(kind string, g Generator) {
	genMu.Lock()
	defer genMu.Unlock()
	if _, dup := generators[kind]; dup {
		panic(fmt.Sprintf("site: generator %q registered twice", kind))
	}
	generators[kind] = g
}

func lookupGenerator(kind string) (Generator, bool) {
	genMu.RLock()
	defer genMu.RUnlock()
	g, ok := generators[kind]
	return g, ok
}

// Limits bounds what a single request may produce. Zero fields are
// unlimited. A request whose result exceeds a limit is refused with an
// error wrapping transport.ErrOverloaded (wire code CodeOverloaded), so
// retrying wrappers fail over instead of re-asking for the same
// oversized answer.
type Limits struct {
	// MaxResultRows caps the number of rows in one response relation.
	MaxResultRows int
	// MaxResultBytes caps the approximate payload size of one response
	// relation (cheap pre-encode estimate, not exact wire bytes).
	MaxResultBytes int64
}

// replayCacheCap bounds each epoch's replay cache. Replays target the
// current round, so only a handful of recent responses ever matter; the
// cap keeps a misbehaving coordinator from growing site memory.
const replayCacheCap = 16

// replayEpochCap bounds how many concurrent epochs the replay cache
// tracks. Concurrent executions interleave their rounds, so the cache is
// keyed per epoch; the least-recently-touched epoch ages out when a new
// one would exceed the cap, so abandoned executions (a coordinator that
// died before sending OpEpochDone) cannot grow site memory without bound.
const replayEpochCap = 8

// epochCache holds one epoch's replay-dedup entries in FIFO order.
type epochCache struct {
	entries map[string]*transport.Response
	order   []string
	lastSeq int64 // logical access clock, for LRU epoch age-out
}

// Engine is one site's local warehouse. It implements transport.Handler.
type Engine struct {
	id string

	mu sync.RWMutex
	//lint:guarded-by mu
	rels map[string]*relation.Relation
	//lint:guarded-by mu
	obs *obs.Obs
	//lint:guarded-by mu
	limits Limits
	//lint:guarded-by mu
	engine gmdj.Engine
	// batches caches the columnar form of loaded relations, keyed by
	// lowercase name and validated by relation pointer identity (Load
	// replaces the pointer, invalidating the entry on next access). A nil
	// cached batch records that conversion failed, so unsupported
	// relations are not re-converted per round.
	//lint:guarded-by mu
	batches map[string]*batchEntry

	// Replay cache: responses to epoch-tagged rounds, so a coordinator
	// replaying (epoch, round) after a failure gets the cached answer
	// instead of a recomputation. Keyed per epoch because concurrent
	// executions interleave; bounded per epoch (replayCacheCap) and
	// across epochs (replayEpochCap), with epochs evicted when their
	// execution completes (OpEpochDone) or ages out.
	replayMu sync.Mutex
	//lint:guarded-by replayMu
	replaySeq int64
	//lint:guarded-by replayMu
	replayEpochs map[string]*epochCache
}

// batchEntry is one cached columnar conversion.
type batchEntry struct {
	rel   *relation.Relation // the exact relation the batch was built from
	batch *vec.Batch         // nil: conversion unsupported, use rows
}

// NewEngine returns an empty site engine.
func NewEngine(id string) *Engine {
	return &Engine{
		id:      id,
		rels:    map[string]*relation.Relation{},
		batches: map[string]*batchEntry{},
	}
}

// SetEvalEngine selects the GMDJ evaluation engine for this site
// (gmdj.EngineAuto defers to the process default, the vectorized engine).
func (e *Engine) SetEvalEngine(eng gmdj.Engine) {
	e.mu.Lock()
	e.engine = eng
	e.mu.Unlock()
}

func (e *Engine) getEvalEngine() gmdj.Engine {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.engine
}

// detailBatch returns the cached columnar form of the named relation,
// converting on first use. nil means the relation cannot be vectorized
// (mixed-kind columns); gmdj then converts nothing and falls back to rows.
func (e *Engine) detailBatch(name string, r *relation.Relation) *vec.Batch {
	key := strings.ToLower(name)
	e.mu.RLock()
	ent := e.batches[key]
	e.mu.RUnlock()
	if ent != nil && ent.rel == r {
		return ent.batch
	}
	b, err := vec.FromRelation(r)
	if err != nil {
		b = nil
	}
	e.mu.Lock()
	e.batches[key] = &batchEntry{rel: r, batch: b}
	e.mu.Unlock()
	return b
}

// SetLimits installs per-request resource limits (zero fields disable).
func (e *Engine) SetLimits(l Limits) {
	e.mu.Lock()
	e.limits = l
	e.mu.Unlock()
}

func (e *Engine) getLimits() Limits {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.limits
}

// ID returns the site identifier.
func (e *Engine) ID() string { return e.id }

// SetObs publishes the engine's activity into o: per-op request counters
// ("site.op.<op>"), rounds served ("site.rounds_served"), base groups
// received and sub-aggregate groups returned ("site.groups_in",
// "site.groups_out"), a per-request compute-time histogram
// ("site.compute_ns"), and one tracer span per handled request on the
// site's own track.
func (e *Engine) SetObs(o *obs.Obs) {
	e.mu.Lock()
	e.obs = o
	e.mu.Unlock()
}

func (e *Engine) getObs() *obs.Obs {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.obs
}

// Load stores a relation under the given name, replacing any previous one
// (and dropping any cached columnar form of the replaced relation).
func (e *Engine) Load(name string, r *relation.Relation) {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := strings.ToLower(name)
	e.rels[key] = r
	delete(e.batches, key)
}

// Relation returns the stored relation with the given name.
func (e *Engine) Relation(name string) (*relation.Relation, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	r, ok := e.rels[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("site %s: no relation %q", e.id, name)
	}
	return r, nil
}

// Handle implements transport.Handler. Errors travel in Response.Err so
// they cross the wire. A cancelled context short-circuits before (and,
// for multi-round evaluation, between) local evaluation steps: a leaf
// engine cannot interrupt a single in-flight gmdj evaluation, but it
// stops starting new work for a caller that has already hung up.
func (e *Engine) Handle(ctx context.Context, req *transport.Request) *transport.Response {
	o := e.getObs()
	o.Count("site.op."+req.Op.String(), 1)
	ctx, span := o.StartSpanTrack(ctx, req.Op.String(), obs.SiteTrack(e.id))
	defer span.End()

	// A QueryID-tagged request gets a per-request execution profile
	// piggy-backed on its response; untagged requests take none (and pay
	// for none — the response stays wire-identical).
	var prof *transport.SiteProfile
	var profStart time.Time
	if req.QueryID != "" {
		prof = &transport.SiteProfile{}
		profStart = time.Now()
	}

	// Deadline propagation (PROTOCOL.md, "Tail tolerance"): the request
	// carries the coordinator's remaining call budget. Already expired
	// (negative) means nobody will read the answer — shed it with the
	// typed expiry before touching the cache or evaluating anything; a
	// positive budget bounds the local evaluation so chained rounds stop
	// the moment they become doomed mid-request.
	if req.DeadlineNs < 0 {
		o.Count("site.deadline_sheds", 1)
		span.SetArg("deadline", "expired-on-arrival")
		err := fmt.Errorf("propagated deadline already expired: %w", transport.ErrExpired)
		resp := &transport.Response{Err: fmt.Sprintf("%s: %v", req.Op, err), Code: transport.ErrCode(err)}
		if prof != nil {
			prof.Outcome = transport.OutcomeExpired
			prof.WallNs = time.Since(profStart).Nanoseconds()
			resp.Profile = prof
			e.recordProfile(req, prof)
		}
		return resp
	}
	if req.DeadlineNs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineNs))
		defer cancel()
	}

	if resp := e.replayHit(req); resp != nil {
		o.Count("site.dedup_hits", 1)
		o.Event(obs.EventReplay, e.id, "served replayed round from cache",
			map[string]string{"epoch": req.Epoch, "round": strconv.Itoa(req.Round)})
		span.SetArg("replay", "cache-hit")
		// The caller's tagging decides whether a profile rides along, and
		// the cached response is shared — so clone before retagging. Only
		// the matching case (untagged caller, profile-free cache entry)
		// hands out the cached response directly.
		if prof == nil && resp.Profile == nil {
			return resp
		}
		cp := *resp
		if prof != nil {
			if resp.Profile != nil {
				p := *resp.Profile // the original evaluation's numbers
				prof = &p
			}
			prof.Outcome = transport.OutcomeDedup
			prof.WallNs = time.Since(profStart).Nanoseconds()
			cp.Profile = prof
			e.recordProfile(req, prof)
		} else {
			cp.Profile = nil
		}
		return &cp
	}
	resp, err := e.handle(ctx, req, prof)
	if err != nil {
		if req.DeadlineNs > 0 && errors.Is(err, context.DeadlineExceeded) {
			// The propagated budget ran out mid-evaluation: classify as
			// the typed expiry so the coordinator sees CodeExpired (a
			// doomed-work shed), not a generic site error.
			o.Count("site.deadline_sheds", 1)
			err = fmt.Errorf("propagated deadline expired during evaluation: %w", transport.ErrExpired)
		}
		o.Count("site.errors", 1)
		if errors.Is(err, transport.ErrOverloaded) {
			o.Count("site.overloads", 1)
			o.Event(obs.EventOverload, e.id, "request shed by resource limit",
				map[string]string{"op": req.Op.String(), "error": err.Error()})
		}
		span.SetArg("error", err.Error())
		resp := &transport.Response{Err: fmt.Sprintf("%s: %v", req.Op, err), Code: transport.ErrCode(err)}
		if prof != nil {
			prof.Outcome = transport.ErrOutcome(err)
			prof.WallNs = time.Since(profStart).Nanoseconds()
			resp.Profile = prof
			e.recordProfile(req, prof)
		}
		return resp
	}
	if resp.ComputeNs > 0 {
		o.Observe("site.compute_ns", resp.ComputeNs)
	}
	if prof != nil {
		prof.Outcome = transport.OutcomeOK
		prof.WallNs = time.Since(profStart).Nanoseconds()
		resp.Profile = prof
		e.recordProfile(req, prof)
	}
	e.replayStore(req, resp)
	return resp
}

// siteProfileJSON is the deterministic shape of one site-side profile
// entry in the /profiles ring: fixed field order, integer nanoseconds.
// Only wall_ns varies between identical runs.
type siteProfileJSON struct {
	QueryID  string `json:"query_id"`
	Site     string `json:"site"`
	Op       string `json:"op"`
	Epoch    string `json:"epoch,omitempty"`
	Round    int    `json:"round"`
	Outcome  string `json:"outcome"`
	WallNs   int64  `json:"wall_ns"`
	RowsIn   int    `json:"rows_in"`
	RowsOut  int    `json:"rows_out"`
	BytesIn  int64  `json:"bytes_in_approx"`
	BytesOut int64  `json:"bytes_out_approx"`
	Rounds   int    `json:"rounds"`
	Engine   string `json:"engine,omitempty"`
	Workers  int    `json:"workers,omitempty"`
	VecBatch int64  `json:"vec_batches"`
	VecRows  int64  `json:"vec_rows"`
	VecFRows int64  `json:"vec_filter_rows"`
	VecSel   int64  `json:"vec_selected"`
}

// recordProfile publishes one tagged request's profile into the obs
// profile ring (the site daemon's /profiles endpoint) and counters.
func (e *Engine) recordProfile(req *transport.Request, p *transport.SiteProfile) {
	o := e.getObs()
	if o == nil {
		return
	}
	o.Count("site.profiled_requests", 1)
	b, err := json.MarshalIndent(siteProfileJSON{
		QueryID: req.QueryID, Site: e.id, Op: req.Op.String(),
		Epoch: req.Epoch, Round: req.Round,
		Outcome: p.Outcome, WallNs: p.WallNs,
		RowsIn: p.RowsIn, RowsOut: p.RowsOut,
		BytesIn: p.BytesInApprox, BytesOut: p.BytesOutApprox,
		Rounds: p.Rounds, Engine: p.Engine, Workers: p.Workers,
		VecBatch: p.VecBatches, VecRows: p.VecRows,
		VecFRows: p.VecFilterRows, VecSel: p.VecSelected,
	}, "", "  ")
	if err != nil {
		return
	}
	o.AddProfile(b)
}

// replayKey returns the dedup key for an epoch-tagged evaluation request,
// or "" when the request is not replayable. The key is (epoch, round, op)
// plus a cheap request fingerprint, so a replay that somehow carries a
// different request is recomputed rather than answered with stale state.
func replayKey(req *transport.Request) string {
	if req.Epoch == "" {
		return ""
	}
	if req.Op != transport.OpEvalRounds && req.Op != transport.OpEvalBase {
		return ""
	}
	var b strings.Builder
	b.WriteString(req.Epoch)
	b.WriteString("|")
	b.WriteString(strconv.Itoa(req.Round))
	b.WriteString("|")
	b.WriteString(req.Op.String())
	b.WriteString("|")
	b.WriteString(req.Detail)
	for _, rs := range req.Rounds {
		b.WriteString(";")
		b.WriteString(rs.Detail)
		for _, th := range rs.Thetas {
			b.WriteString(",")
			b.WriteString(th)
		}
	}
	if req.Base != nil {
		b.WriteString("|base=")
		b.WriteString(strconv.Itoa(req.Base.Len()))
	}
	b.WriteString("|cols=")
	b.WriteString(strings.Join(req.BaseCols, ","))
	return b.String()
}

// replayHit returns the cached response for a replayed (epoch, round)
// request, or nil on a miss.
func (e *Engine) replayHit(req *transport.Request) *transport.Response {
	key := replayKey(req)
	if key == "" {
		return nil
	}
	e.replayMu.Lock()
	defer e.replayMu.Unlock()
	ec := e.replayEpochs[req.Epoch]
	if ec == nil {
		return nil
	}
	e.replaySeq++
	ec.lastSeq = e.replaySeq
	return ec.entries[key]
}

// replayStore caches a successful response under its (epoch, round) key.
// Each epoch keeps at most replayCacheCap entries (FIFO — replays target
// recent rounds), and at most replayEpochCap epochs are tracked at once:
// admitting a new epoch beyond the cap evicts the least-recently-touched
// one, so interleaved queries cannot grow the cache without bound.
func (e *Engine) replayStore(req *transport.Request, resp *transport.Response) {
	key := replayKey(req)
	if key == "" || resp == nil || resp.Err != "" {
		return
	}
	e.replayMu.Lock()
	defer e.replayMu.Unlock()
	if e.replayEpochs == nil {
		e.replayEpochs = map[string]*epochCache{}
	}
	ec := e.replayEpochs[req.Epoch]
	if ec == nil {
		for len(e.replayEpochs) >= replayEpochCap {
			e.evictOldestEpochLocked()
		}
		ec = &epochCache{entries: map[string]*transport.Response{}}
		e.replayEpochs[req.Epoch] = ec
	}
	e.replaySeq++
	ec.lastSeq = e.replaySeq
	if _, exists := ec.entries[key]; !exists {
		ec.order = append(ec.order, key)
		for len(ec.order) > replayCacheCap {
			delete(ec.entries, ec.order[0])
			ec.order = ec.order[1:]
			e.getObs().Count("site.dedup_evictions", 1)
		}
	}
	ec.entries[key] = resp
}

// evictOldestEpochLocked drops the least-recently-touched epoch's entries.
// Caller holds replayMu.
func (e *Engine) evictOldestEpochLocked() {
	var victim string
	var victimSeq int64
	first := true
	for epoch, ec := range e.replayEpochs {
		if first || ec.lastSeq < victimSeq {
			victim, victimSeq, first = epoch, ec.lastSeq, false
		}
	}
	if first {
		return
	}
	n := len(e.replayEpochs[victim].entries)
	delete(e.replayEpochs, victim)
	o := e.getObs()
	o.Count("site.dedup_epochs_evicted", 1)
	o.Count("site.dedup_evictions", int64(n))
	o.Event(obs.EventReplay, e.id, "replay cache epoch aged out",
		map[string]string{"epoch": victim, "entries": strconv.Itoa(n), "reason": "age-out"})
}

// epochDone evicts a completed execution's replay entries, returning how
// many entries were dropped.
func (e *Engine) epochDone(epoch string) int {
	e.replayMu.Lock()
	ec := e.replayEpochs[epoch]
	n := 0
	if ec != nil {
		n = len(ec.entries)
		delete(e.replayEpochs, epoch)
	}
	e.replayMu.Unlock()
	if ec != nil {
		o := e.getObs()
		o.Count("site.dedup_epochs_completed", 1)
		o.Count("site.dedup_evictions", int64(n))
	}
	return n
}

// ReplayCacheSize reports the total replay-dedup entries across epochs
// (tests and debugging).
func (e *Engine) ReplayCacheSize() int {
	e.replayMu.Lock()
	defer e.replayMu.Unlock()
	n := 0
	for _, ec := range e.replayEpochs {
		n += len(ec.entries)
	}
	return n
}

// checkLimits enforces the per-request result caps on an outgoing
// relation.
func (e *Engine) checkLimits(out *relation.Relation) error {
	l := e.getLimits()
	if l.MaxResultRows > 0 && out.Len() > l.MaxResultRows {
		return fmt.Errorf("site %s: result of %d rows exceeds max-result-rows %d: %w",
			e.id, out.Len(), l.MaxResultRows, transport.ErrOverloaded)
	}
	if l.MaxResultBytes > 0 {
		if n := approxRelBytes(out); n > l.MaxResultBytes {
			return fmt.Errorf("site %s: result of ~%d bytes exceeds max-result-bytes %d: %w",
				e.id, n, l.MaxResultBytes, transport.ErrOverloaded)
		}
	}
	return nil
}

// approxRelBytes estimates a relation's payload size without encoding it:
// eight bytes per numeric value, string lengths as-is, plus a small
// per-row overhead. Deliberately cheap — the limit protects the site from
// shipping runaway results, not from being off by a framing constant.
func approxRelBytes(r *relation.Relation) int64 {
	var n int64
	for _, row := range r.Rows {
		n += 8 // per-row overhead
		for _, v := range row {
			n += 8 + int64(len(v.S))
		}
	}
	return n
}

func (e *Engine) handle(ctx context.Context, req *transport.Request, prof *transport.SiteProfile) (*transport.Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch req.Op {
	case transport.OpPing:
		return &transport.Response{}, nil

	case transport.OpLoad:
		if req.Data == nil || req.Data.Schema == nil {
			return nil, fmt.Errorf("no relation payload")
		}
		if req.Rel == "" {
			return nil, fmt.Errorf("no relation name")
		}
		e.Load(req.Rel, req.Data)
		return &transport.Response{RowCount: req.Data.Len()}, nil

	case transport.OpGenerate:
		if req.Gen == nil {
			return nil, fmt.Errorf("no generator spec")
		}
		g, ok := lookupGenerator(req.Gen.Kind)
		if !ok {
			return nil, fmt.Errorf("unknown generator %q", req.Gen.Kind)
		}
		start := time.Now()
		r, err := g(req.Gen)
		if err != nil {
			return nil, fmt.Errorf("generate %s: %w", req.Gen.Kind, err)
		}
		name := req.Gen.Rel
		if name == "" {
			name = req.Gen.Kind
		}
		e.Load(name, r)
		return &transport.Response{RowCount: r.Len(), ComputeNs: time.Since(start).Nanoseconds()}, nil

	case transport.OpDrop:
		e.mu.Lock()
		defer e.mu.Unlock()
		delete(e.rels, strings.ToLower(req.Rel))
		delete(e.batches, strings.ToLower(req.Rel))
		return &transport.Response{}, nil

	case transport.OpRelInfo:
		r, err := e.Relation(req.Rel)
		if err != nil {
			return nil, err
		}
		return &transport.Response{
			RowCount: r.Len(),
			Rel:      &relation.Relation{Schema: r.Schema},
		}, nil

	case transport.OpEpochDone:
		if req.Epoch == "" {
			return nil, fmt.Errorf("no epoch")
		}
		n := e.epochDone(req.Epoch)
		return &transport.Response{RowCount: n}, nil

	case transport.OpEvalBase:
		return e.evalBase(req, prof)

	case transport.OpEvalRounds:
		return e.evalRounds(ctx, req, prof)

	default:
		return nil, fmt.Errorf("unknown op %d", req.Op)
	}
}

// evalBase computes the base-values query over the local detail relation.
func (e *Engine) evalBase(req *transport.Request, prof *transport.SiteProfile) (*transport.Response, error) {
	detail, err := e.Relation(req.Detail)
	if err != nil {
		return nil, err
	}
	def, err := baseDef(req)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	b, err := gmdj.EvalBase(detail, def)
	if err != nil {
		return nil, err
	}
	if err := e.checkLimits(b); err != nil {
		return nil, err
	}
	if prof != nil {
		prof.RowsOut = b.Len()
		prof.BytesOutApprox = approxRelBytes(b)
	}
	return &transport.Response{Rel: b, ComputeNs: time.Since(start).Nanoseconds()}, nil
}

func baseDef(req *transport.Request) (gmdj.BaseDef, error) {
	def := gmdj.BaseDef{Cols: req.BaseCols}
	if req.BaseWhere != "" {
		w, err := expr.Parse(req.BaseWhere)
		if err != nil {
			return def, fmt.Errorf("base filter: %w", err)
		}
		def.Where = w
	}
	return def, nil
}

// evalRounds runs one or more GMDJ rounds locally. With req.Base set the
// shipped base-result fragment is used; with req.BaseCols set the base is
// computed locally first (Proposition 2 fusion). Multiple rounds evaluate
// as a local chain without intermediate synchronization (Theorem 5 /
// Corollary 1); later rounds see the finalized aggregates of earlier ones.
func (e *Engine) evalRounds(ctx context.Context, req *transport.Request, prof *transport.SiteProfile) (*transport.Response, error) {
	if len(req.Rounds) == 0 {
		return nil, fmt.Errorf("no rounds")
	}
	start := time.Now()

	base := req.Base
	if len(req.BaseCols) > 0 {
		detail, err := e.Relation(firstDetail(req))
		if err != nil {
			return nil, err
		}
		def, err := baseDef(req)
		if err != nil {
			return nil, err
		}
		base, err = gmdj.EvalBase(detail, def)
		if err != nil {
			return nil, fmt.Errorf("fused base: %w", err)
		}
	}
	if base == nil || base.Schema == nil {
		return nil, fmt.Errorf("no base relation (ship Base or set BaseCols)")
	}

	// Accumulated |RNG| counts across rounds (Proposition 1 over
	// θ_1 ∨ ... ∨ θ_m of the whole chain).
	var touchedTotals []int64
	anyTouched := false
	var finalCols []string

	o := e.getObs()
	engine := e.getEvalEngine()
	workers := runtime.GOMAXPROCS(0)
	o.SetGauge("site.eval_workers", int64(workers))

	// Per-request kernel statistics for the query profiler: unlike the
	// global vec.* counters above, these scope to exactly this request.
	var vecStats *vec.Stats
	if prof != nil {
		vecStats = &vec.Stats{}
		prof.Rounds = len(req.Rounds)
		prof.Workers = workers
		eng := engine
		if eng == gmdj.EngineAuto {
			eng = gmdj.DefaultEngine()
		}
		prof.Engine = eng.String()
		if req.Base != nil {
			prof.RowsIn = req.Base.Len()
			prof.BytesInApprox = approxRelBytes(req.Base)
		}
	}

	for ri, spec := range req.Rounds {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("round %d: %w", ri+1, err)
		}
		md, err := parseRound(spec)
		if err != nil {
			return nil, fmt.Errorf("round %d: %w", ri+1, err)
		}
		detail, err := e.Relation(spec.Detail)
		if err != nil {
			return nil, fmt.Errorf("round %d: %w", ri+1, err)
		}
		h, err := gmdj.EvalSub(base, detail, md, gmdj.SubOpts{
			Finalize:    spec.Finalize,
			Touched:     spec.Touched,
			Engine:      engine,
			Workers:     workers,
			Obs:         o,
			Stats:       vecStats,
			DetailBatch: e.detailBatch(spec.Detail, detail),
		})
		if err != nil {
			return nil, fmt.Errorf("round %d: %w", ri+1, err)
		}
		if spec.Finalize {
			for _, s := range md.Specs() {
				finalCols = append(finalCols, s.As)
			}
		}
		if spec.Touched {
			anyTouched = true
			h, touchedTotals, err = absorbTouched(h, touchedTotals)
			if err != nil {
				return nil, fmt.Errorf("round %d: %w", ri+1, err)
			}
		} else if touchedTotals != nil {
			// Keep alignment: rows per base tuple are stable across rounds.
			if len(touchedTotals) != h.Len() {
				return nil, fmt.Errorf("round %d: row count changed mid-chain", ri+1)
			}
		}
		base = h
	}

	out := base
	// Strip locally-finalized columns before shipping unless the plan
	// wants them (plans that merge primitives recompute finals at the
	// coordinator; shipping both would waste traffic).
	if len(finalCols) > 0 && !req.KeepFinal {
		var err error
		out, err = dropColumns(out, finalCols)
		if err != nil {
			return nil, err
		}
	}
	if anyTouched {
		out = filterByTotals(out, touchedTotals)
	}
	if err := e.checkLimits(out); err != nil {
		return nil, err
	}
	o.Count("site.rounds_served", int64(len(req.Rounds)))
	if req.Base != nil {
		o.Count("site.groups_in", int64(req.Base.Len()))
	}
	o.Count("site.groups_out", int64(out.Len()))
	if prof != nil {
		prof.RowsOut = out.Len()
		prof.BytesOutApprox = approxRelBytes(out)
		prof.VecBatches = vecStats.Batches
		prof.VecRows = vecStats.Rows
		prof.VecFilterRows = vecStats.FilterRows
		prof.VecSelected = vecStats.Selected
	}
	return &transport.Response{Rel: out, ComputeNs: time.Since(start).Nanoseconds()}, nil
}

func firstDetail(req *transport.Request) string {
	if req.Detail != "" {
		return req.Detail
	}
	return req.Rounds[0].Detail
}

// parseRound converts the wire form of a round into an MD operator.
func parseRound(spec transport.RoundSpec) (gmdj.MD, error) {
	md := gmdj.MD{BaseAlias: spec.BaseAlias, DetailAlias: spec.DetailAlias}
	if len(spec.Aggs) != len(spec.Thetas) {
		return md, fmt.Errorf("%d aggregate lists vs %d conditions", len(spec.Aggs), len(spec.Thetas))
	}
	for i, thetaText := range spec.Thetas {
		theta, err := expr.Parse(thetaText)
		if err != nil {
			return md, fmt.Errorf("θ_%d: %w", i+1, err)
		}
		var specs []agg.Spec
		for _, at := range spec.Aggs[i] {
			s, err := agg.ParseSpec(at)
			if err != nil {
				return md, err
			}
			specs = append(specs, s)
		}
		md.Thetas = append(md.Thetas, theta)
		md.Aggs = append(md.Aggs, specs)
	}
	return md, nil
}

// absorbTouched removes the touched column from h, adding its counts into
// the running totals.
func absorbTouched(h *relation.Relation, totals []int64) (*relation.Relation, []int64, error) {
	ti, err := h.Schema.MustLookup(gmdj.TouchedCol)
	if err != nil {
		return nil, nil, err
	}
	if totals == nil {
		totals = make([]int64, h.Len())
	}
	if len(totals) != h.Len() {
		return nil, nil, fmt.Errorf("touched totals misaligned: %d vs %d rows", len(totals), h.Len())
	}
	for i, row := range h.Rows {
		t, err := row[ti].AsInt()
		if err != nil {
			return nil, nil, err
		}
		totals[i] += t
	}
	out, err := dropColumns(h, []string{gmdj.TouchedCol})
	if err != nil {
		return nil, nil, err
	}
	return out, totals, nil
}

// filterByTotals drops groups whose accumulated |RNG| count is zero — the
// site-side half of Proposition 1. The count itself is a local detection
// mechanism and is not shipped.
func filterByTotals(h *relation.Relation, totals []int64) *relation.Relation {
	out := relation.New(h.Schema)
	for i, row := range h.Rows {
		if totals[i] > 0 {
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// dropColumns projects away the named columns.
func dropColumns(r *relation.Relation, names []string) (*relation.Relation, error) {
	drop := make(map[string]struct{}, len(names))
	for _, n := range names {
		drop[strings.ToLower(n)] = struct{}{}
	}
	var keep []string
	for _, c := range r.Schema.Cols {
		if _, d := drop[strings.ToLower(c.Name)]; !d {
			keep = append(keep, c.Name)
		}
	}
	if len(keep) == r.Schema.Len() {
		return r, nil
	}
	s, idx, err := r.Schema.Project(keep)
	if err != nil {
		return nil, err
	}
	out := relation.New(s)
	out.Rows = make([]relation.Row, len(r.Rows))
	for i, row := range r.Rows {
		nr := make(relation.Row, len(idx))
		for j, p := range idx {
			nr[j] = row[p]
		}
		out.Rows[i] = nr
	}
	return out, nil
}
