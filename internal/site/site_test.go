package site

import (
	"context"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/gmdj"
	"repro/internal/relation"
	"repro/internal/transport"
	"repro/internal/value"
)

func flowRel(rows ...[3]int64) *relation.Relation {
	s := relation.MustSchema(
		relation.Column{Name: "SourceAS", Kind: value.KindInt},
		relation.Column{Name: "DestAS", Kind: value.KindInt},
		relation.Column{Name: "NumBytes", Kind: value.KindInt},
	)
	r := relation.New(s)
	for _, t := range rows {
		r.MustAppend(value.NewInt(t[0]), value.NewInt(t[1]), value.NewInt(t[2]))
	}
	return r
}

var testFlow = [][3]int64{
	{1, 10, 100}, {1, 10, 300}, {2, 10, 50}, {1, 20, 500},
}

func loadedEngine(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine("s1")
	e.Load("flow", flowRel(testFlow...))
	return e
}

func TestPingAndUnknownOp(t *testing.T) {
	e := loadedEngine(t)
	if resp := e.Handle(context.Background(), &transport.Request{Op: transport.OpPing}); resp.Error() != nil {
		t.Error(resp.Error())
	}
	if resp := e.Handle(context.Background(), &transport.Request{Op: transport.Op(99)}); resp.Error() == nil {
		t.Error("unknown op accepted")
	}
}

func TestLoadDropInfo(t *testing.T) {
	e := NewEngine("s1")
	rel := flowRel(testFlow...)
	resp := e.Handle(context.Background(), &transport.Request{Op: transport.OpLoad, Rel: "f", Data: rel})
	if resp.Error() != nil || resp.RowCount != 4 {
		t.Fatalf("load: %v, count %d", resp.Error(), resp.RowCount)
	}
	resp = e.Handle(context.Background(), &transport.Request{Op: transport.OpRelInfo, Rel: "F"}) // case-insensitive
	if resp.Error() != nil || resp.RowCount != 4 {
		t.Fatalf("info: %v", resp.Error())
	}
	resp = e.Handle(context.Background(), &transport.Request{Op: transport.OpDrop, Rel: "f"})
	if resp.Error() != nil {
		t.Fatal(resp.Error())
	}
	resp = e.Handle(context.Background(), &transport.Request{Op: transport.OpRelInfo, Rel: "f"})
	if resp.Error() == nil {
		t.Error("info after drop should fail")
	}
	// Bad loads.
	if resp := e.Handle(context.Background(), &transport.Request{Op: transport.OpLoad, Rel: "x"}); resp.Error() == nil {
		t.Error("load without payload accepted")
	}
	if resp := e.Handle(context.Background(), &transport.Request{Op: transport.OpLoad, Data: rel}); resp.Error() == nil {
		t.Error("load without name accepted")
	}
}

func TestEvalBase(t *testing.T) {
	e := loadedEngine(t)
	resp := e.Handle(context.Background(), &transport.Request{
		Op: transport.OpEvalBase, Detail: "flow",
		BaseCols: []string{"SourceAS", "DestAS"},
	})
	if resp.Error() != nil {
		t.Fatal(resp.Error())
	}
	if resp.Rel.Len() != 3 {
		t.Errorf("base rows = %d, want 3", resp.Rel.Len())
	}
	if resp.ComputeNs < 0 {
		t.Error("no compute time")
	}
	// With filter.
	resp = e.Handle(context.Background(), &transport.Request{
		Op: transport.OpEvalBase, Detail: "flow",
		BaseCols: []string{"SourceAS"}, BaseWhere: "F.NumBytes >= 300",
	})
	if resp.Error() != nil {
		t.Fatal(resp.Error())
	}
	if resp.Rel.Len() != 1 {
		t.Errorf("filtered base rows = %d", resp.Rel.Len())
	}
	// Errors.
	if resp := e.Handle(context.Background(), &transport.Request{Op: transport.OpEvalBase, Detail: "none", BaseCols: []string{"x"}}); resp.Error() == nil {
		t.Error("missing detail accepted")
	}
	if resp := e.Handle(context.Background(), &transport.Request{Op: transport.OpEvalBase, Detail: "flow", BaseCols: []string{"SourceAS"}, BaseWhere: "(("}); resp.Error() == nil {
		t.Error("bad filter accepted")
	}
}

func roundSpec(touched, finalize bool) transport.RoundSpec {
	return transport.RoundSpec{
		Detail:  "flow",
		Aggs:    [][]string{{"count(*) AS cnt1", "sum(F.NumBytes) AS sum1"}},
		Thetas:  []string{"F.SourceAS = B.SourceAS AND F.DestAS = B.DestAS"},
		Touched: touched, Finalize: finalize,
	}
}

func TestEvalRoundsShippedBase(t *testing.T) {
	e := loadedEngine(t)
	b, err := gmdj.EvalBase(flowRel(testFlow...), gmdj.BaseDef{Cols: []string{"SourceAS", "DestAS"}})
	if err != nil {
		t.Fatal(err)
	}
	resp := e.Handle(context.Background(), &transport.Request{
		Op: transport.OpEvalRounds, Base: b,
		Rounds: []transport.RoundSpec{roundSpec(false, false)},
	})
	if resp.Error() != nil {
		t.Fatal(resp.Error())
	}
	h := resp.Rel
	for _, col := range []string{"SourceAS", "DestAS", "cnt1__p0", "sum1__p0"} {
		if _, ok := h.Schema.Lookup(col); !ok {
			t.Errorf("missing column %s in %s", col, h.Schema)
		}
	}
	if _, ok := h.Schema.Lookup("cnt1"); ok {
		t.Error("finalized column shipped without Finalize")
	}
	if h.Len() != 3 {
		t.Errorf("rows = %d", h.Len())
	}
}

func TestEvalRoundsFusedBase(t *testing.T) {
	e := loadedEngine(t)
	resp := e.Handle(context.Background(), &transport.Request{
		Op: transport.OpEvalRounds, Detail: "flow",
		BaseCols: []string{"SourceAS", "DestAS"},
		Rounds:   []transport.RoundSpec{roundSpec(false, false)},
	})
	if resp.Error() != nil {
		t.Fatal(resp.Error())
	}
	if resp.Rel.Len() != 3 {
		t.Errorf("fused rows = %d", resp.Rel.Len())
	}
}

func TestEvalRoundsChained(t *testing.T) {
	e := loadedEngine(t)
	rounds := []transport.RoundSpec{
		{
			Detail:   "flow",
			Aggs:     [][]string{{"count(*) AS cnt1", "sum(F.NumBytes) AS sum1"}},
			Thetas:   []string{"F.SourceAS = B.SourceAS AND F.DestAS = B.DestAS"},
			Finalize: true, Touched: true,
		},
		{
			Detail:   "flow",
			Aggs:     [][]string{{"count(*) AS cnt2"}},
			Thetas:   []string{"F.SourceAS = B.SourceAS AND F.DestAS = B.DestAS AND F.NumBytes >= B.sum1 / B.cnt1"},
			Finalize: true, Touched: true,
		},
	}
	resp := e.Handle(context.Background(), &transport.Request{
		Op: transport.OpEvalRounds, Detail: "flow",
		BaseCols: []string{"SourceAS", "DestAS"},
		Rounds:   rounds,
	})
	if resp.Error() != nil {
		t.Fatal(resp.Error())
	}
	h := resp.Rel
	// Finalized columns stripped, prims of both rounds present; the
	// touched counter is local-only and never shipped.
	for _, col := range []string{"cnt1__p0", "sum1__p0", "cnt2__p0"} {
		if _, ok := h.Schema.Lookup(col); !ok {
			t.Errorf("missing %s in %s", col, h.Schema)
		}
	}
	for _, col := range []string{"cnt1", "sum1", "cnt2", gmdj.TouchedCol} {
		if _, ok := h.Schema.Lookup(col); ok {
			t.Errorf("column %s not stripped", col)
		}
	}
	// Local chain: group (1,10) has cnt1=2 (rows 100,300), avg=200,
	// cnt2 = #{300} = 1.
	h.SortBy("SourceAS", "DestAS")
	c2, _ := h.Schema.MustLookup("cnt2__p0")
	if h.Rows[0][c2].I != 1 {
		t.Errorf("chained cnt2 = %v, want 1\n%s", h.Rows[0][c2], h)
	}
}

func TestEvalRoundsKeepFinal(t *testing.T) {
	e := loadedEngine(t)
	resp := e.Handle(context.Background(), &transport.Request{
		Op: transport.OpEvalRounds, Detail: "flow",
		BaseCols:  []string{"SourceAS", "DestAS"},
		Rounds:    []transport.RoundSpec{roundSpec(false, true)},
		KeepFinal: true,
	})
	if resp.Error() != nil {
		t.Fatal(resp.Error())
	}
	if _, ok := resp.Rel.Schema.Lookup("cnt1"); !ok {
		t.Error("KeepFinal did not keep finalized columns")
	}
}

func TestEvalRoundsTouchedFilter(t *testing.T) {
	e := loadedEngine(t)
	// Shipped base contains a foreign group (9,9) this site never matches.
	b, err := gmdj.EvalBase(flowRel(testFlow...), gmdj.BaseDef{Cols: []string{"SourceAS", "DestAS"}})
	if err != nil {
		t.Fatal(err)
	}
	b.MustAppend(value.NewInt(9), value.NewInt(9))
	resp := e.Handle(context.Background(), &transport.Request{
		Op: transport.OpEvalRounds, Base: b,
		Rounds: []transport.RoundSpec{roundSpec(true, false)},
	})
	if resp.Error() != nil {
		t.Fatal(resp.Error())
	}
	if resp.Rel.Len() != 3 {
		t.Errorf("touched filter kept %d rows, want 3", resp.Rel.Len())
	}
}

func TestEvalRoundsErrors(t *testing.T) {
	e := loadedEngine(t)
	cases := []*transport.Request{
		{Op: transport.OpEvalRounds}, // no rounds
		{Op: transport.OpEvalRounds, Rounds: []transport.RoundSpec{roundSpec(false, false)}}, // no base
		{Op: transport.OpEvalRounds, Detail: "flow", BaseCols: []string{"SourceAS"},
			Rounds: []transport.RoundSpec{{Detail: "missing", Aggs: [][]string{{"count(*) AS c"}}, Thetas: []string{"TRUE"}}}},
		{Op: transport.OpEvalRounds, Detail: "flow", BaseCols: []string{"SourceAS"},
			Rounds: []transport.RoundSpec{{Detail: "flow", Aggs: [][]string{{"count(*) AS c"}}, Thetas: []string{"((bad"}}}},
		{Op: transport.OpEvalRounds, Detail: "flow", BaseCols: []string{"SourceAS"},
			Rounds: []transport.RoundSpec{{Detail: "flow", Aggs: [][]string{{"nope(*) AS c"}}, Thetas: []string{"TRUE"}}}},
		{Op: transport.OpEvalRounds, Detail: "flow", BaseCols: []string{"SourceAS"},
			Rounds: []transport.RoundSpec{{Detail: "flow", Aggs: [][]string{{"count(*) AS c"}, {"count(*) AS d"}}, Thetas: []string{"TRUE"}}}},
	}
	for i, req := range cases {
		if resp := e.Handle(context.Background(), req); resp.Error() == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestGeneratorRegistry(t *testing.T) {
	kind := fmt.Sprintf("test-gen-%d", len(generators))
	RegisterGenerator(kind, func(spec *transport.GenSpec) (*relation.Relation, error) {
		if spec.Params["fail"] == 1 {
			return nil, fmt.Errorf("boom")
		}
		return flowRel(testFlow...), nil
	})
	e := NewEngine("s1")
	resp := e.Handle(context.Background(), &transport.Request{Op: transport.OpGenerate, Gen: &transport.GenSpec{Kind: kind, Rel: "g"}})
	if resp.Error() != nil || resp.RowCount != 4 {
		t.Fatalf("generate: %v", resp.Error())
	}
	if _, err := e.Relation("g"); err != nil {
		t.Error(err)
	}
	// Default name = kind.
	resp = e.Handle(context.Background(), &transport.Request{Op: transport.OpGenerate, Gen: &transport.GenSpec{Kind: kind}})
	if resp.Error() != nil {
		t.Fatal(resp.Error())
	}
	if _, err := e.Relation(kind); err != nil {
		t.Error(err)
	}
	// Failure paths.
	resp = e.Handle(context.Background(), &transport.Request{Op: transport.OpGenerate, Gen: &transport.GenSpec{Kind: kind, Params: map[string]int64{"fail": 1}}})
	if resp.Error() == nil || !strings.Contains(resp.Error().Error(), "boom") {
		t.Errorf("generator failure not surfaced: %v", resp.Error())
	}
	if resp := e.Handle(context.Background(), &transport.Request{Op: transport.OpGenerate, Gen: &transport.GenSpec{Kind: "unregistered"}}); resp.Error() == nil {
		t.Error("unknown generator accepted")
	}
	if resp := e.Handle(context.Background(), &transport.Request{Op: transport.OpGenerate}); resp.Error() == nil {
		t.Error("missing GenSpec accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	RegisterGenerator(kind, nil)
}

func TestSnapshotRestore(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/site.snap"

	e := loadedEngine(t)
	e.Load("extra", flowRel([3]int64{9, 9, 9}))
	if err := e.Snapshot(path); err != nil {
		t.Fatal(err)
	}

	fresh := NewEngine("s2")
	if err := fresh.Restore(path); err != nil {
		t.Fatal(err)
	}
	names := fresh.RelationNames()
	if len(names) != 2 {
		t.Fatalf("restored relations: %v", names)
	}
	rel, err := fresh.Relation("flow")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 4 {
		t.Errorf("restored flow rows = %d", rel.Len())
	}
	// Restored engine answers queries identically.
	resp := fresh.Handle(context.Background(), &transport.Request{
		Op: transport.OpEvalBase, Detail: "flow",
		BaseCols: []string{"SourceAS"},
	})
	if resp.Error() != nil || resp.Rel.Len() != 2 {
		t.Errorf("restored eval: %v, %d rows", resp.Error(), resp.Rel.Len())
	}
}

func TestRestoreErrors(t *testing.T) {
	e := NewEngine("s1")
	if err := e.Restore("/nonexistent/path"); err == nil {
		t.Error("restore of missing file accepted")
	}
	dir := t.TempDir()
	bad := dir + "/bad.snap"
	if err := os.WriteFile(bad, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := e.Restore(bad); err == nil {
		t.Error("restore of garbage accepted")
	}
	// Snapshot into a nonexistent directory fails cleanly.
	if err := e.Snapshot("/nonexistent/dir/x.snap"); err == nil {
		t.Error("snapshot into missing dir accepted")
	}
}
