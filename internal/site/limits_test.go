package site

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/internal/transport"
)

func baseReq(epoch string, round int) *transport.Request {
	return &transport.Request{
		Op: transport.OpEvalBase, Detail: "flow",
		BaseCols: []string{"SourceAS", "DestAS"},
		Epoch:    epoch, Round: round,
	}
}

func TestLimitsMaxResultRows(t *testing.T) {
	e := loadedEngine(t)
	o := obs.New()
	e.SetObs(o)
	e.SetLimits(Limits{MaxResultRows: 2}) // base query yields 3 groups

	resp := e.Handle(context.Background(), baseReq("", 0))
	err := resp.Error()
	if err == nil {
		t.Fatal("oversized result not refused")
	}
	if !errors.Is(err, transport.ErrOverloaded) {
		t.Fatalf("err = %v, want wrapped ErrOverloaded", err)
	}
	if resp.Code != transport.CodeOverloaded {
		t.Errorf("code = %d, want CodeOverloaded", resp.Code)
	}
	if got := o.Metrics.CounterValue("site.overloads"); got != 1 {
		t.Errorf("site.overloads = %d, want 1", got)
	}
	if got := o.Events.CountKind(obs.EventOverload); got != 1 {
		t.Errorf("overload events = %d, want 1", got)
	}

	// Raising the cap lets the same request through.
	e.SetLimits(Limits{MaxResultRows: 3})
	if resp := e.Handle(context.Background(), baseReq("", 0)); resp.Error() != nil {
		t.Fatalf("within-limit request refused: %v", resp.Error())
	}
}

func TestLimitsMaxResultBytes(t *testing.T) {
	e := loadedEngine(t)
	e.SetLimits(Limits{MaxResultBytes: 10}) // 3 groups × 2 int cols ≫ 10 bytes
	resp := e.Handle(context.Background(), baseReq("", 0))
	if !errors.Is(resp.Error(), transport.ErrOverloaded) {
		t.Fatalf("err = %v, want wrapped ErrOverloaded", resp.Error())
	}
	e.SetLimits(Limits{}) // zero = unlimited
	if resp := e.Handle(context.Background(), baseReq("", 0)); resp.Error() != nil {
		t.Fatalf("unlimited request refused: %v", resp.Error())
	}
}

func TestReplayDedup(t *testing.T) {
	e := loadedEngine(t)
	o := obs.New()
	e.SetObs(o)

	first := e.Handle(context.Background(), baseReq("ep1", 0))
	if first.Error() != nil {
		t.Fatal(first.Error())
	}
	// Same (epoch, round): served from cache, not recomputed.
	second := e.Handle(context.Background(), baseReq("ep1", 0))
	if second != first {
		t.Error("replayed round recomputed instead of served from cache")
	}
	if got := o.Metrics.CounterValue("site.dedup_hits"); got != 1 {
		t.Errorf("dedup_hits = %d, want 1", got)
	}
	if got := o.Events.CountKind(obs.EventReplay); got != 1 {
		t.Errorf("replay events = %d, want 1", got)
	}

	// A different round of the same epoch is fresh work.
	if r := e.Handle(context.Background(), baseReq("ep1", 1)); r == first {
		t.Error("different round served stale cache entry")
	}
	// A second epoch gets its own cache — and does not evict the first:
	// concurrent executions interleave rounds on the same site.
	if r := e.Handle(context.Background(), baseReq("ep2", 0)); r == first {
		t.Error("new epoch served old epoch's cache")
	}
	if r := e.Handle(context.Background(), baseReq("ep1", 0)); r != first {
		t.Error("concurrent epoch evicted a live epoch's cache")
	}

	// Epoch completion drops exactly that epoch's entries.
	done := e.Handle(context.Background(), &transport.Request{Op: transport.OpEpochDone, Epoch: "ep1"})
	if done.Error() != nil {
		t.Fatalf("epoch done: %v", done.Error())
	}
	if done.RowCount != 2 {
		t.Errorf("epoch done evicted %d entries, want 2", done.RowCount)
	}
	if r := e.Handle(context.Background(), baseReq("ep1", 0)); r == first {
		t.Error("completed epoch's entry survived eviction")
	}
	if got := o.Metrics.CounterValue("site.dedup_evictions"); got != 2 {
		t.Errorf("dedup_evictions = %d, want 2", got)
	}
}

func TestReplayUntaggedNotCached(t *testing.T) {
	e := loadedEngine(t)
	o := obs.New()
	e.SetObs(o)
	a := e.Handle(context.Background(), baseReq("", 0))
	b := e.Handle(context.Background(), baseReq("", 0))
	if a == b {
		t.Error("untagged request was cached")
	}
	if got := o.Metrics.CounterValue("site.dedup_hits"); got != 0 {
		t.Errorf("dedup_hits = %d, want 0", got)
	}
}

func TestReplayErrorsNotCached(t *testing.T) {
	e := loadedEngine(t)
	e.SetLimits(Limits{MaxResultRows: 1})
	a := e.Handle(context.Background(), baseReq("ep1", 0))
	if a.Error() == nil {
		t.Fatal("expected overload")
	}
	// After the overload clears, the same (epoch, round) must recompute
	// rather than replay the cached failure.
	e.SetLimits(Limits{})
	b := e.Handle(context.Background(), baseReq("ep1", 0))
	if b.Error() != nil {
		t.Fatalf("error response was cached: %v", b.Error())
	}
}

func TestReplayCacheEviction(t *testing.T) {
	e := loadedEngine(t)
	for round := 0; round < replayCacheCap+1; round++ {
		if r := e.Handle(context.Background(), baseReq("ep", round)); r.Error() != nil {
			t.Fatal(r.Error())
		}
	}
	// Round 0 was evicted (FIFO): a replay recomputes it.
	o := obs.New()
	e.SetObs(o)
	if r := e.Handle(context.Background(), baseReq("ep", 0)); r.Error() != nil {
		t.Fatal(r.Error())
	}
	if got := o.Metrics.CounterValue("site.dedup_hits"); got != 0 {
		t.Errorf("evicted entry still hit: dedup_hits = %d", got)
	}
	// The newest round is still cached.
	if r := e.Handle(context.Background(), baseReq("ep", replayCacheCap)); r.Error() != nil {
		t.Fatal(r.Error())
	}
	if got := o.Metrics.CounterValue("site.dedup_hits"); got != 1 {
		t.Errorf("newest entry not cached: dedup_hits = %d", got)
	}
}

func TestReplayEpochAgeOut(t *testing.T) {
	e := loadedEngine(t)
	o := obs.New()
	e.SetObs(o)

	// Fill the epoch cap, then one more: the least-recently-touched epoch
	// (ep0) must age out so site memory stays bounded even when a
	// coordinator dies before sending OpEpochDone.
	original := e.Handle(context.Background(), baseReq("ep0", 0))
	if original.Error() != nil {
		t.Fatal(original.Error())
	}
	for i := 1; i <= replayEpochCap; i++ {
		epoch := fmt.Sprintf("ep%d", i)
		if r := e.Handle(context.Background(), baseReq(epoch, 0)); r.Error() != nil {
			t.Fatalf("epoch %s: %v", epoch, r.Error())
		}
	}
	if got := o.Metrics.CounterValue("site.dedup_epochs_evicted"); got != 1 {
		t.Errorf("dedup_epochs_evicted = %d, want 1", got)
	}
	if r := e.Handle(context.Background(), baseReq("ep0", 0)); r == original {
		t.Error("aged-out epoch still served from cache")
	}
	if got := e.ReplayCacheSize(); got > replayEpochCap*replayCacheCap {
		t.Errorf("cache size %d exceeds bound", got)
	}
}

func TestReplayLRUTouchKeepsEpochAlive(t *testing.T) {
	e := loadedEngine(t)

	keep := e.Handle(context.Background(), baseReq("keep", 0))
	if keep.Error() != nil {
		t.Fatal(keep.Error())
	}
	// Fill the remaining capacity, re-touching "keep" between admissions
	// so it is never the least-recently-used epoch.
	for i := 0; i < replayEpochCap+2; i++ {
		if r := e.Handle(context.Background(), baseReq(fmt.Sprintf("f%d", i), 0)); r.Error() != nil {
			t.Fatal(r.Error())
		}
		if r := e.Handle(context.Background(), baseReq("keep", 0)); r != keep {
			t.Fatalf("touched epoch evicted after admitting f%d", i)
		}
	}
}

func TestReplayPerEpochFIFOBound(t *testing.T) {
	e := loadedEngine(t)
	o := obs.New()
	e.SetObs(o)

	for round := 0; round <= replayCacheCap+1; round++ {
		if r := e.Handle(context.Background(), baseReq("ep", round)); r.Error() != nil {
			t.Fatal(r.Error())
		}
	}
	if got := e.ReplayCacheSize(); got != replayCacheCap {
		t.Errorf("cache size = %d, want %d", got, replayCacheCap)
	}
	if got := o.Metrics.CounterValue("site.dedup_evictions"); got != 2 {
		t.Errorf("dedup_evictions = %d, want 2", got)
	}
}

func TestEpochDoneUnknownEpoch(t *testing.T) {
	e := loadedEngine(t)
	resp := e.Handle(context.Background(), &transport.Request{Op: transport.OpEpochDone, Epoch: "never-seen"})
	if resp.Error() != nil {
		t.Fatalf("epoch done on unknown epoch: %v", resp.Error())
	}
	if resp.RowCount != 0 {
		t.Errorf("evicted %d entries from unknown epoch, want 0", resp.RowCount)
	}
}
