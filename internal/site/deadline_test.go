package site

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
)

// TestDeadlineExpiredOnArrival: a request whose propagated deadline is
// already spent (DeadlineNs < 0) is shed before any evaluation, with the
// typed expiry code — doomed work never touches the engine.
func TestDeadlineExpiredOnArrival(t *testing.T) {
	e := loadedEngine(t)
	o := obs.New()
	e.SetObs(o)

	resp := e.Handle(context.Background(), &transport.Request{
		Op: transport.OpEvalBase, Detail: "flow",
		BaseCols: []string{"SourceAS"}, DeadlineNs: -1,
	})
	err := resp.Error()
	if err == nil {
		t.Fatal("expired-on-arrival request was evaluated")
	}
	if resp.Code != transport.CodeExpired {
		t.Errorf("code = %d, want CodeExpired", resp.Code)
	}
	// The expiry is inspectable both as the transport's typed error and
	// as the standard deadline sentinel.
	if !errors.Is(err, transport.ErrExpired) {
		t.Errorf("err = %v, want ErrExpired in the chain", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded in the chain", err)
	}
	// An expiry is not an overload shed: it must not trip overload
	// handling (breakers treat it as neutral, gates don't back off).
	if resp.Shed() {
		t.Error("expiry classified as an overload shed")
	}
	if resp.Rel != nil {
		t.Error("expired request still produced rows")
	}
	if got := o.Metrics.CounterValue("site.deadline_sheds"); got != 1 {
		t.Errorf("site.deadline_sheds = %d, want 1", got)
	}
}

// TestDeadlineExpiredProfileOutcome: a profiled request that arrives
// expired still reports a profile, tagged with the expiry outcome.
func TestDeadlineExpiredProfileOutcome(t *testing.T) {
	e := loadedEngine(t)
	resp := e.Handle(context.Background(), &transport.Request{
		Op: transport.OpEvalBase, Detail: "flow",
		BaseCols: []string{"SourceAS"}, QueryID: "q1", DeadlineNs: -1,
	})
	if resp.Code != transport.CodeExpired {
		t.Fatalf("code = %d, want CodeExpired", resp.Code)
	}
	if resp.Profile == nil || resp.Profile.Outcome != transport.OutcomeExpired {
		t.Errorf("profile = %+v, want OutcomeExpired", resp.Profile)
	}
}

// TestDeadlineGenerousBudgetEvaluates: a positive remaining budget bounds
// the evaluation but otherwise changes nothing — a comfortable deadline
// returns the same answer as no deadline at all.
func TestDeadlineGenerousBudgetEvaluates(t *testing.T) {
	e := loadedEngine(t)
	plain := e.Handle(context.Background(), &transport.Request{
		Op: transport.OpEvalBase, Detail: "flow", BaseCols: []string{"SourceAS"},
	})
	if plain.Error() != nil {
		t.Fatal(plain.Error())
	}
	bounded := e.Handle(context.Background(), &transport.Request{
		Op: transport.OpEvalBase, Detail: "flow", BaseCols: []string{"SourceAS"},
		DeadlineNs: int64(time.Minute),
	})
	if bounded.Error() != nil {
		t.Fatal(bounded.Error())
	}
	if bounded.Rel.Len() != plain.Rel.Len() {
		t.Errorf("bounded eval rows = %d, plain = %d", bounded.Rel.Len(), plain.Rel.Len())
	}
}

// TestDeadlineExpiryDuringEvaluation: when the budget runs out while the
// site is computing, the resulting deadline error is reclassified as the
// typed expiry shed instead of surfacing as a generic site error.
func TestDeadlineExpiryDuringEvaluation(t *testing.T) {
	e := loadedEngine(t)
	o := obs.New()
	e.SetObs(o)

	// An outer context whose deadline has already passed stands in for
	// the budget expiring mid-evaluation: the eval loop's context check
	// fails with DeadlineExceeded on its first iteration.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	resp := e.Handle(ctx, &transport.Request{
		Op: transport.OpEvalRounds, Detail: "flow",
		BaseCols:   []string{"SourceAS", "DestAS"},
		Rounds:     []transport.RoundSpec{roundSpec(false, false)},
		DeadlineNs: int64(time.Minute),
	})
	err := resp.Error()
	if err == nil {
		t.Fatal("evaluation succeeded under an expired context")
	}
	if resp.Code != transport.CodeExpired {
		t.Errorf("code = %d, want CodeExpired for a mid-eval expiry", resp.Code)
	}
	if !errors.Is(err, transport.ErrExpired) {
		t.Errorf("err = %v, want ErrExpired in the chain", err)
	}
	if got := o.Metrics.CounterValue("site.deadline_sheds"); got != 1 {
		t.Errorf("site.deadline_sheds = %d, want 1", got)
	}

	// Without a propagated deadline the same failure stays a plain
	// context error — the reclassification is gated on DeadlineNs.
	resp = e.Handle(ctx, &transport.Request{
		Op: transport.OpEvalRounds, Detail: "flow",
		BaseCols: []string{"SourceAS", "DestAS"},
		Rounds:   []transport.RoundSpec{roundSpec(false, false)},
	})
	if resp.Error() == nil {
		t.Fatal("evaluation succeeded under an expired context")
	}
	if resp.Code == transport.CodeExpired {
		t.Error("plain context expiry misclassified as a propagated-deadline shed")
	}
}
