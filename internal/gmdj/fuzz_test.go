package gmdj

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
	"repro/internal/value"
)

// FuzzVecVsRow is the differential fuzzer: a seeded generator expands
// (seed, size, shape) into a mixed-kind detail relation and an MD, and
// both engines must agree — byte-exact results on success, and matching
// error presence on failure. Shapes rotate through the kernel families
// (equi probe, nested loop, string keys, LIKE/IN/BETWEEN, arithmetic
// with NULLs, multi-θ).
func FuzzVecVsRow(f *testing.F) {
	f.Add(int64(1), uint8(20), uint8(0))
	f.Add(int64(2), uint8(50), uint8(1))
	f.Add(int64(3), uint8(7), uint8(2))
	f.Add(int64(4), uint8(120), uint8(3))
	f.Add(int64(5), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, size, shape uint8) {
		rng := rand.New(rand.NewSource(seed))
		detail := fuzzDetail(rng, int(size))
		b, err := EvalBase(detail, BaseDef{Cols: []string{"K", "G"}})
		if err != nil {
			t.Skip()
		}
		mds := diffMDs()
		md := mds[int(shape)%len(mds)]
		for _, workers := range []int{1, 3} {
			want, rowErr := EvalSub(b, detail, md, SubOpts{Engine: EngineRow, Finalize: true, Touched: true})
			got, vecErr := EvalSub(b, detail, md,
				SubOpts{Engine: EngineVector, Workers: workers, Finalize: true, Touched: true})
			if (rowErr != nil) != (vecErr != nil) {
				t.Fatalf("W=%d: row err %v, vec err %v", workers, rowErr, vecErr)
			}
			if rowErr != nil {
				return
			}
			if d := exactRows(want, got); d != "" {
				t.Fatalf("W=%d: engines diverge: %s", workers, d)
			}
		}
	})
}

// fuzzDetail is randDetail plus fuzz-only hostility: occasional kind
// strays in the Q column (forcing the row fallback) and duplicated rows.
// Floats stay within int64 range: Key() overflows int64 conversion on
// out-of-range integral floats, which is platform-defined and not a
// contract either engine needs to chase.
func fuzzDetail(rng *rand.Rand, n int) *relation.Relation {
	r := randDetail(rng, n)
	for i := range r.Rows {
		if rng.Intn(40) == 0 {
			r.Rows[i][2] = value.NewFloat(float64(rng.Intn(100)) / 4) // Float straying into the Int column
		}
		if rng.Intn(20) == 0 && i > 0 {
			r.Rows[i] = r.Rows[i-1]
		}
	}
	return r
}
