package gmdj

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/agg"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/value"
	"repro/internal/vec"
)

// Differential tests: the vectorized engine must be byte-exact with the
// row engine — identical value kinds, identical float bit patterns
// (accumulation order preserved), identical NULLs — for any worker count.

// exactRows compares two relations value-by-value with bit-level float
// equality; it returns "" when identical.
func exactRows(a, b *relation.Relation) string {
	if a.Schema.String() != b.Schema.String() {
		return fmt.Sprintf("schema %s vs %s", a.Schema, b.Schema)
	}
	if len(a.Rows) != len(b.Rows) {
		return fmt.Sprintf("%d rows vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			x, y := a.Rows[i][j], b.Rows[i][j]
			if x.K != y.K || x.I != y.I || x.S != y.S ||
				math.Float64bits(x.F) != math.Float64bits(y.F) {
				return fmt.Sprintf("row %d col %d: %#v vs %#v", i, j, x, y)
			}
		}
	}
	return ""
}

// randDetail builds a mixed-kind detail relation with NULLs:
// (K Int, G String, Q Int, P Float, Flag Bool).
func randDetail(rng *rand.Rand, n int) *relation.Relation {
	s := relation.MustSchema(
		relation.Column{Name: "K", Kind: value.KindInt},
		relation.Column{Name: "G", Kind: value.KindString},
		relation.Column{Name: "Q", Kind: value.KindInt},
		relation.Column{Name: "P", Kind: value.KindFloat},
		relation.Column{Name: "Flag", Kind: value.KindBool},
	)
	r := relation.New(s)
	groups := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < n; i++ {
		row := relation.Row{
			value.NewInt(int64(rng.Intn(5))),
			value.NewString(groups[rng.Intn(len(groups))]),
			value.NewInt(int64(rng.Intn(1000) - 500)),
			value.NewFloat(float64(rng.Intn(2000))/8 - 100),
			value.NewBool(rng.Intn(2) == 0),
		}
		// Sprinkle NULLs on the non-key columns.
		for j := 2; j < len(row); j++ {
			if rng.Intn(10) == 0 {
				row[j] = value.Null
			}
		}
		r.MustAppend(row...)
	}
	return r
}

// diffMDs is the shape battery: equi probes, pure nested-loop θ,
// arithmetic, IN/LIKE/BETWEEN, base-side scalar references, multi-θ, and
// every aggregate family.
func diffMDs() []MD {
	return []MD{
		{ // equi + residual with base reference
			Aggs: [][]agg.Spec{{
				agg.MustParseSpec("count(*) AS cnt"),
				agg.MustParseSpec("sum(F.Q) AS sq"),
				agg.MustParseSpec("avg(F.P) AS ap"),
			}},
			Thetas: []expr.Expr{expr.MustParse("F.K = B.K AND F.Q >= B.K * 10")},
		},
		{ // no equi pairs: nested loop over every lane
			Aggs:   [][]agg.Spec{{agg.MustParseSpec("count(*) AS c2"), agg.MustParseSpec("min(F.P) AS mp")}},
			Thetas: []expr.Expr{expr.MustParse("F.Q + B.K > 100 OR F.Flag")},
		},
		{ // string equi key, string aggregates, LIKE / IN / BETWEEN
			Aggs: [][]agg.Spec{{
				agg.MustParseSpec("max(F.G) AS mg"),
				agg.MustParseSpec("count(F.P) AS cp"),
			}},
			Thetas: []expr.Expr{expr.MustParse(
				"F.G = B.G AND (F.G LIKE '%a%' OR F.K IN (1, 2)) AND F.Q BETWEEN -250 AND 250")},
		},
		{ // two θ in one MD, arithmetic with NULL propagation and division
			Aggs: [][]agg.Spec{
				{agg.MustParseSpec("sum(F.P / 3) AS sp")},
				{agg.MustParseSpec("count(*) AS ch"), agg.MustParseSpec("avg(F.Q % 7) AS aq")},
			},
			Thetas: []expr.Expr{
				expr.MustParse("F.K = B.K AND NOT (F.Q < -400)"),
				expr.MustParse("F.K = B.K AND F.P * 2 > B.K - 1"),
			},
		},
	}
}

func diffBase(t *testing.T, detail *relation.Relation) *relation.Relation {
	t.Helper()
	b, err := EvalBase(detail, BaseDef{Cols: []string{"K", "G"}})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestVecMatchesRowDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		detail := randDetail(rng, rng.Intn(200)+1)
		b := diffBase(t, detail)
		for mi, md := range diffMDs() {
			for _, opts := range []SubOpts{
				{},
				{Finalize: true, Touched: true},
			} {
				rowOpts := opts
				rowOpts.Engine = EngineRow
				want, rowErr := EvalSub(b, detail, md, rowOpts)
				for _, workers := range []int{1, 4} {
					vecOpts := opts
					vecOpts.Engine = EngineVector
					vecOpts.Workers = workers
					got, vecErr := EvalSub(b, detail, md, vecOpts)
					if (rowErr != nil) != (vecErr != nil) {
						t.Fatalf("trial %d md %d W=%d: row err %v, vec err %v", trial, mi, workers, rowErr, vecErr)
					}
					if rowErr != nil {
						continue
					}
					if d := exactRows(want, got); d != "" {
						t.Fatalf("trial %d md %d W=%d opts=%+v: %s", trial, mi, workers, opts, d)
					}
				}
			}
		}
	}
}

// TestVecParallelMerge exercises the worker-partitioned path with many
// workers on one shared accumulator grid — run under -race, this is the
// data-race check for the parallel per-site evaluation.
func TestVecParallelMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	detail := randDetail(rng, 500)
	b := diffBase(t, detail)
	md := diffMDs()[0]
	want, err := EvalSub(b, detail, md, SubOpts{Engine: EngineRow, Finalize: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 64} {
		got, err := EvalSub(b, detail, md, SubOpts{Engine: EngineVector, Workers: workers, Finalize: true})
		if err != nil {
			t.Fatalf("W=%d: %v", workers, err)
		}
		if d := exactRows(want, got); d != "" {
			t.Fatalf("W=%d: %s", workers, d)
		}
	}
}

// TestVecFallbackMixedKindColumn: a column whose values stray from the
// declared kind cannot be vectorized; the vector engine must silently
// fall back to rows and still produce the row-exact answer.
func TestVecFallbackMixedKindColumn(t *testing.T) {
	s := relation.MustSchema(
		relation.Column{Name: "K", Kind: value.KindInt},
		relation.Column{Name: "Q", Kind: value.KindInt},
	)
	detail := relation.New(s)
	detail.Rows = append(detail.Rows,
		relation.Row{value.NewInt(1), value.NewInt(10)},
		relation.Row{value.NewInt(1), value.NewFloat(2.5)}, // Float in an Int column
		relation.Row{value.NewInt(2), value.NewInt(30)},
	)
	if _, err := vec.FromRelation(detail); err == nil {
		t.Fatal("expected FromRelation to reject the mixed-kind column")
	}
	b := diffBase0(t, detail)
	md := MD{
		Aggs:   [][]agg.Spec{{agg.MustParseSpec("count(*) AS c"), agg.MustParseSpec("sum(F.Q) AS s")}},
		Thetas: []expr.Expr{expr.MustParse("F.K = B.K")},
	}
	want, err := EvalSub(b, detail, md, SubOpts{Engine: EngineRow})
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvalSub(b, detail, md, SubOpts{Engine: EngineVector})
	if err != nil {
		t.Fatal(err)
	}
	if d := exactRows(want, got); d != "" {
		t.Fatal(d)
	}
}

func diffBase0(t *testing.T, detail *relation.Relation) *relation.Relation {
	t.Helper()
	b, err := EvalBase(detail, BaseDef{Cols: []string{"K"}})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestVecFallbackUnsupportedExpr: CASE expressions are outside the
// kernels' reach; the vector engine falls back per call.
func TestVecFallbackUnsupportedExpr(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	detail := randDetail(rng, 60)
	b := diffBase(t, detail)
	md := MD{
		Aggs: [][]agg.Spec{{
			agg.MustParseSpec("sum(CASE WHEN F.Q > 0 THEN F.Q ELSE 0 END) AS pos"),
		}},
		Thetas: []expr.Expr{expr.MustParse("F.K = B.K")},
	}
	want, err := EvalSub(b, detail, md, SubOpts{Engine: EngineRow})
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvalSub(b, detail, md, SubOpts{Engine: EngineVector})
	if err != nil {
		t.Fatal(err)
	}
	if d := exactRows(want, got); d != "" {
		t.Fatal(d)
	}
}

// TestDefaultEngineSwitch covers the -row-engine escape hatch: the
// process default flips EvalSub's Auto resolution.
func TestDefaultEngineSwitch(t *testing.T) {
	if DefaultEngine() != EngineVector {
		t.Fatalf("default engine = %v, want vector", DefaultEngine())
	}
	SetDefaultEngine(EngineRow)
	defer SetDefaultEngine(EngineAuto)
	if DefaultEngine() != EngineRow {
		t.Fatalf("default engine after SetDefaultEngine = %v, want row", DefaultEngine())
	}
	rng := rand.New(rand.NewSource(5))
	detail := randDetail(rng, 40)
	b := diffBase(t, detail)
	md := diffMDs()[0]
	// Auto now resolves to the row engine: the vec.* counters must stay
	// silent even with an Obs attached.
	o := obs.New()
	if _, err := EvalSub(b, detail, md, SubOpts{Obs: o}); err != nil {
		t.Fatal(err)
	}
	if got := metricValue(o, "vec.rows"); got != 0 {
		t.Fatalf("vec.rows = %d under the row engine, want 0", got)
	}
}

// TestVecObsCounters: a vectorized evaluation publishes its work.
func TestVecObsCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	detail := randDetail(rng, 100)
	b := diffBase(t, detail)
	o := obs.New()
	if _, err := EvalSub(b, detail, diffMDs()[0], SubOpts{Engine: EngineVector, Obs: o}); err != nil {
		t.Fatal(err)
	}
	if got := metricValue(o, "vec.batches"); got <= 0 {
		t.Fatalf("vec.batches = %d, want > 0", got)
	}
	if got := metricValue(o, "vec.rows"); got <= 0 {
		t.Fatalf("vec.rows = %d, want > 0", got)
	}
}

// metricValue reads one counter from an Obs registry.
func metricValue(o *obs.Obs, name string) int64 {
	return o.Metrics.CounterValue(name)
}

// TestVecDetailBatchReuse: a pre-built batch (the site-side cache) gives
// the same answer as on-the-fly conversion.
func TestVecDetailBatchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	detail := randDetail(rng, 80)
	b := diffBase(t, detail)
	batch, err := vec.FromRelation(detail)
	if err != nil {
		t.Fatal(err)
	}
	md := diffMDs()[0]
	want, err := EvalSub(b, detail, md, SubOpts{Engine: EngineVector})
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvalSub(b, detail, md, SubOpts{Engine: EngineVector, DetailBatch: batch})
	if err != nil {
		t.Fatal(err)
	}
	if d := exactRows(want, got); d != "" {
		t.Fatal(d)
	}
}

// TestVecErrorPresenceMatchesRow: evaluation errors (here a string
// compared against a number) surface from both engines.
func TestVecErrorPresenceMatchesRow(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	detail := randDetail(rng, 30)
	b := diffBase(t, detail)
	md := MD{
		Aggs:   [][]agg.Spec{{agg.MustParseSpec("count(*) AS c")}},
		Thetas: []expr.Expr{expr.MustParse("F.K = B.K AND F.G > 5")},
	}
	_, rowErr := EvalSub(b, detail, md, SubOpts{Engine: EngineRow})
	_, vecErr := EvalSub(b, detail, md, SubOpts{Engine: EngineVector})
	if rowErr == nil || vecErr == nil {
		t.Fatalf("row err %v, vec err %v: both engines must fail", rowErr, vecErr)
	}
	if !strings.Contains(vecErr.Error(), "θ_1") {
		t.Fatalf("vec error %q not attributed to its condition", vecErr)
	}
}
