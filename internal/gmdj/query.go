package gmdj

//lint:deterministic rendered query text must be stable for plan caching and tests

import (
	"fmt"
	"strings"

	"repro/internal/agg"
	"repro/internal/expr"
	"repro/internal/relation"
)

// BaseDef defines how the base-values relation B_0 is computed from the
// detail relation: a set (duplicate-eliminating) projection of the listed
// columns, optionally restricted by a filter over the detail relation.
// This covers the paper's base-values queries (e.g. π_{SAS,DAS}(Flow)).
type BaseDef struct {
	Cols  []string
	Where expr.Expr // optional, over the detail relation only
}

// Query is a complex GMDJ expression in the paper's canonical shape: the
// result of each (inner) GMDJ is the base-values relation of the next.
type Query struct {
	Base BaseDef
	MDs  []MD
}

// Keys returns the key attributes K of the base-values relation. Because
// B_0 is a set projection, its projection columns form a key.
func (q Query) Keys() []string { return q.Base.Cols }

// DetailName resolves the detail relation an MD runs against, given the
// query's default detail name.
func (md MD) DetailName(def string) string {
	if md.Detail != "" {
		return md.Detail
	}
	return def
}

// DetailNames returns the distinct detail relation names the query
// touches, given the default name; the default (used by the base-values
// computation) always comes first.
func (q Query) DetailNames(def string) []string {
	out := []string{def}
	seen := map[string]struct{}{strings.ToLower(def): {}}
	for _, md := range q.MDs {
		n := md.DetailName(def)
		key := strings.ToLower(n)
		if _, dup := seen[key]; !dup {
			seen[key] = struct{}{}
			out = append(out, n)
		}
	}
	return out
}

// schemaFor picks an MD's detail schema out of a name-keyed map.
func schemaFor(schemas map[string]*relation.Schema, name string) (*relation.Schema, error) {
	for k, s := range schemas {
		if strings.EqualFold(k, name) {
			return s, nil
		}
	}
	return nil, fmt.Errorf("gmdj: no schema for detail relation %q", name)
}

// Validate checks the whole query against a single detail schema (the
// common case where every round uses the same detail relation),
// simulating the base schema growth across the MD chain.
func (q Query) Validate(detail *relation.Schema) error {
	return q.ValidateOn(map[string]*relation.Schema{"": detail}, "")
}

// ValidateOn validates a query whose MDs may name different detail
// relations (the paper's R_k varying across rounds). schemas maps
// relation names to schemas; def is the default detail name (also the
// relation the base-values query runs over).
func (q Query) ValidateOn(schemas map[string]*relation.Schema, def string) error {
	defSchema, err := schemaFor(schemas, def)
	if err != nil {
		return err
	}
	base, err := q.BaseSchema(defSchema)
	if err != nil {
		return err
	}
	for i, md := range q.MDs {
		detail, err := schemaFor(schemas, md.DetailName(def))
		if err != nil {
			return fmt.Errorf("gmdj: MD_%d: %w", i+1, err)
		}
		if err := md.Validate(base, detail); err != nil {
			return fmt.Errorf("gmdj: MD_%d: %w", i+1, err)
		}
		base, err = base.Concat(outColumns(md)...)
		if err != nil {
			return fmt.Errorf("gmdj: MD_%d: %w", i+1, err)
		}
	}
	return nil
}

// BaseSchema returns the schema of B_0 for a given detail schema and
// validates the base definition.
func (q Query) BaseSchema(detail *relation.Schema) (*relation.Schema, error) {
	if len(q.Base.Cols) == 0 {
		return nil, fmt.Errorf("gmdj: base definition has no columns")
	}
	s, _, err := detail.Project(q.Base.Cols)
	if err != nil {
		return nil, fmt.Errorf("gmdj: base definition: %w", err)
	}
	if q.Base.Where != nil {
		bd := expr.SingleRelation(detail, "R", "F")
		if _, err := expr.Bind(q.Base.Where, bd); err != nil {
			return nil, fmt.Errorf("gmdj: base filter: %w", err)
		}
	}
	return s, nil
}

// ResultSchema returns the schema of the full query result.
func (q Query) ResultSchema(detail *relation.Schema) (*relation.Schema, error) {
	s, err := q.BaseSchema(detail)
	if err != nil {
		return nil, err
	}
	for i, md := range q.MDs {
		s, err = s.Concat(outColumns(md)...)
		if err != nil {
			return nil, fmt.Errorf("gmdj: MD_%d: %w", i+1, err)
		}
	}
	return s, nil
}

func outColumns(md MD) []relation.Column {
	var cols []relation.Column
	for _, s := range md.Specs() {
		cols = append(cols, s.OutColumn())
	}
	return cols
}

// EvalBase computes B_0 over a detail relation: filter then distinct
// projection.
func EvalBase(detail *relation.Relation, def BaseDef) (*relation.Relation, error) {
	src := detail
	if def.Where != nil {
		bd := expr.SingleRelation(detail.Schema, "R", "F")
		bound, err := expr.Bind(def.Where, bd)
		if err != nil {
			return nil, fmt.Errorf("gmdj: base filter: %w", err)
		}
		filtered := relation.New(detail.Schema)
		for _, row := range detail.Rows {
			ok, err := bound.EvalBool(nil, row)
			if err != nil {
				return nil, fmt.Errorf("gmdj: base filter: %w", err)
			}
			if ok {
				filtered.Rows = append(filtered.Rows, row)
			}
		}
		src = filtered
	}
	return src.DistinctProject(def.Cols)
}

// EvalQuery evaluates the complete GMDJ expression against a single
// (centralized) detail relation — the reference semantics the distributed
// executor must agree with.
func EvalQuery(detail *relation.Relation, q Query) (*relation.Relation, error) {
	return EvalQueryOn(map[string]*relation.Relation{"": detail}, "", q)
}

// EvalQueryOn is EvalQuery for queries spanning several detail relations:
// rels maps relation names to their (whole, centralized) contents and def
// names the default detail relation.
func EvalQueryOn(rels map[string]*relation.Relation, def string, q Query) (*relation.Relation, error) {
	schemas := make(map[string]*relation.Schema, len(rels))
	for k, r := range rels {
		schemas[k] = r.Schema
	}
	if err := q.ValidateOn(schemas, def); err != nil {
		return nil, err
	}
	relFor := func(name string) (*relation.Relation, error) {
		for k, r := range rels {
			if strings.EqualFold(k, name) {
				return r, nil
			}
		}
		return nil, fmt.Errorf("gmdj: no relation %q", name)
	}
	detail, err := relFor(def)
	if err != nil {
		return nil, err
	}
	b, err := EvalBase(detail, q.Base)
	if err != nil {
		return nil, err
	}
	for i, md := range q.MDs {
		r, err := relFor(md.DetailName(def))
		if err != nil {
			return nil, fmt.Errorf("gmdj: MD_%d: %w", i+1, err)
		}
		b, err = Eval(b, r, md)
		if err != nil {
			return nil, fmt.Errorf("gmdj: MD_%d: %w", i+1, err)
		}
	}
	return b, nil
}

// CanCoalesce reports whether two adjacent GMDJs can merge into one
// (Section 4.3): the second MD's conditions and aggregate arguments must
// not reference any attribute generated by the first. generated is the set
// of output column names of the first MD.
func CanCoalesce(md1, md2 MD, baseSchema *relation.Schema, detailSchema *relation.Schema) bool {
	generated := make(map[string]struct{})
	for _, s := range md1.Specs() {
		generated[strings.ToLower(s.As)] = struct{}{}
	}
	// Build the binding md2 sees: base extended with md1's outputs.
	ext, err := baseSchema.Concat(outColumns(md1)...)
	if err != nil {
		return false
	}
	bd := md2.Binding(ext, detailSchema)
	refsGenerated := func(e expr.Expr) bool {
		found := false
		expr.Walk(e, func(x expr.Expr) {
			c, ok := x.(expr.Col)
			if !ok {
				return
			}
			side, ok := bd.SideOf(c)
			if ok && side != expr.SideBase {
				return
			}
			// Base-side (or unresolvable) reference: generated?
			if _, gen := generated[strings.ToLower(c.Name)]; gen {
				found = true
			}
		})
		return found
	}
	for _, theta := range md2.Thetas {
		if refsGenerated(theta) {
			return false
		}
	}
	for _, s := range md2.Specs() {
		if s.Arg != nil && refsGenerated(s.Arg) {
			return false
		}
	}
	// Coalescing concatenates condition lists; both MDs must agree on
	// aliases (for identical binding) and on the detail relation (a
	// single operator scans a single R).
	if !strings.EqualFold(md1.Detail, md2.Detail) {
		return false
	}
	b1, d1 := md1.Aliases()
	b2, d2 := md2.Aliases()
	return strings.EqualFold(b1, b2) && strings.EqualFold(d1, d2)
}

// Coalesce merges adjacent coalescable MDs of the query (Section 4.3):
// MD2(MD1(B, R, l1, θ1), R, l2, θ2) = MD(B, R, l1·l2, θ1·θ2) whenever θ2
// does not reference attributes generated by MD1. It returns the rewritten
// query and the number of merges performed.
func Coalesce(q Query, detail *relation.Schema) (Query, int, error) {
	base, err := q.BaseSchema(detail)
	if err != nil {
		return q, 0, err
	}
	if len(q.MDs) == 0 {
		return q, 0, nil
	}
	merged := 0
	out := []MD{cloneMD(q.MDs[0])}
	for _, next := range q.MDs[1:] {
		last := &out[len(out)-1]
		if CanCoalesce(*last, next, base, detail) {
			last.Aggs = append(last.Aggs, next.Aggs...)
			last.Thetas = append(last.Thetas, next.Thetas...)
			merged++
			continue
		}
		// The base schema the following MD sees includes all outputs so far.
		base, err = base.Concat(outColumns(*last)...)
		if err != nil {
			return q, 0, err
		}
		out = append(out, cloneMD(next))
	}
	return Query{Base: q.Base, MDs: out}, merged, nil
}

func cloneMD(md MD) MD {
	out := md
	out.Aggs = append([][]agg.Spec(nil), md.Aggs...)
	out.Thetas = append([]expr.Expr(nil), md.Thetas...)
	return out
}
