package gmdj

import (
	"math/rand"
	"testing"

	"repro/internal/agg"
	"repro/internal/expr"
	"repro/internal/relation"
	"repro/internal/value"
)

// benchDetail builds an n-row detail relation with g distinct groups.
func benchDetail(n, g int) *relation.Relation {
	rng := rand.New(rand.NewSource(1))
	r := relation.New(relation.MustSchema(
		relation.Column{Name: "SourceAS", Kind: value.KindInt},
		relation.Column{Name: "DestAS", Kind: value.KindInt},
		relation.Column{Name: "NumBytes", Kind: value.KindInt},
	))
	r.Rows = make([]relation.Row, n)
	for i := range r.Rows {
		r.Rows[i] = relation.Row{
			value.NewInt(int64(rng.Intn(g))),
			value.NewInt(int64(rng.Intn(8))),
			value.NewInt(int64(rng.Intn(100000))),
		}
	}
	return r
}

// BenchmarkEvalHashPath measures the hash-partitioned GMDJ scan (equality
// conjuncts present): the hot path of every site round.
func BenchmarkEvalHashPath(b *testing.B) {
	detail := benchDetail(20000, 500)
	base, err := EvalBase(detail, BaseDef{Cols: []string{"SourceAS"}})
	if err != nil {
		b.Fatal(err)
	}
	md := MD{
		Aggs: [][]agg.Spec{{
			agg.MustParseSpec("count(*) AS c"),
			agg.MustParseSpec("avg(F.NumBytes) AS a"),
		}},
		Thetas: []expr.Expr{expr.MustParse("F.SourceAS = B.SourceAS")},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Eval(base, detail, md); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(detail.Len()))
}

// BenchmarkEvalNestedLoop measures the fallback path without equality
// conjuncts (every base row tested per detail row).
func BenchmarkEvalNestedLoop(b *testing.B) {
	detail := benchDetail(2000, 20)
	base, err := EvalBase(detail, BaseDef{Cols: []string{"SourceAS"}})
	if err != nil {
		b.Fatal(err)
	}
	md := MD{
		Aggs:   [][]agg.Spec{{agg.MustParseSpec("count(*) AS c")}},
		Thetas: []expr.Expr{expr.MustParse("F.NumBytes > B.SourceAS * 1000")},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Eval(base, detail, md); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalSubTouched measures the sub-aggregate site path with the
// group-reduction counter on.
func BenchmarkEvalSubTouched(b *testing.B) {
	detail := benchDetail(20000, 500)
	base, err := EvalBase(detail, BaseDef{Cols: []string{"SourceAS"}})
	if err != nil {
		b.Fatal(err)
	}
	md := MD{
		Aggs: [][]agg.Spec{{
			agg.MustParseSpec("count(*) AS c"),
			agg.MustParseSpec("avg(F.NumBytes) AS a"),
		}},
		Thetas: []expr.Expr{expr.MustParse("F.SourceAS = B.SourceAS")},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EvalSub(base, detail, md, SubOpts{Touched: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalBase measures distinct projection over the detail scan.
func BenchmarkEvalBase(b *testing.B) {
	detail := benchDetail(20000, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EvalBase(detail, BaseDef{Cols: []string{"SourceAS", "DestAS"}}); err != nil {
			b.Fatal(err)
		}
	}
}
