package gmdj

//lint:deterministic vectorized evaluation must match the row engine byte-for-byte

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/agg"
	"repro/internal/expr"
	"repro/internal/relation"
	"repro/internal/value"
	"repro/internal/vec"
)

// Vectorized GMDJ evaluation. The plan per θ_i mirrors the row engine:
// equality conjuncts are extracted, the residual is evaluated per candidate
// pair, and matched detail rows feed the aggregate accumulators. The
// orientation flips, though: instead of hashing B and scanning R row by
// row, the DETAIL side is bucketed by equi-key hash once, and each base
// row probes its bucket, filters candidates with a compiled
// column-program, and accumulates the matched lanes column-wise.
//
// Byte-exactness with the row engine follows from two invariants:
//   - bucket lanes are kept in detail scan order and Filter preserves
//     selection order, so every accumulator folds exactly the values the
//     row engine's detail scan would feed it, in the same order (float
//     accumulation is order-sensitive);
//   - each base row is owned by exactly one worker (full-row hash mod W),
//     so accumulator state is single-writer and the merge-free result is
//     identical for any worker count.
//
// On evaluation errors the two engines agree on error presence (the same
// (base row, detail row, θ) combinations are evaluated), but may surface a
// different one first because iteration order differs.

// evalVec is the vectorized counterpart of eval. handled=false means the
// detail relation or a condition is outside the kernels' reach and the
// caller must fall back to the row engine.
func evalVec(b, r *relation.Relation, md MD, prims, final, touched bool, opts SubOpts) (*relation.Relation, error, bool) {
	if err := md.Validate(b.Schema, r.Schema); err != nil {
		return nil, err, true
	}
	batch := opts.DetailBatch
	if batch == nil || batch.Schema != r.Schema || batch.Len() != len(r.Rows) {
		var err error
		batch, err = vec.FromRelation(r)
		if err != nil {
			return nil, nil, false
		}
	}
	specs := md.Specs()
	outSchema, err := outputSchema(b.Schema, specs, prims, final, touched)
	if err != nil {
		return nil, err, true
	}

	bd := md.Binding(b.Schema, r.Schema)
	detailOnly := expr.Binding{Detail: r.Schema, DetailAliases: bd.DetailAliases}

	plans, ok := planThetas(b, r, md, bd, batch)
	if !ok {
		return nil, nil, false
	}

	accs := newAccState(len(b.Rows), specs)
	matched := make([]int64, len(b.Rows))

	// Worker partitioning: each base row is owned by exactly one worker
	// (full-row hash mod W), so the shared accs/matched slots a worker
	// writes are disjoint from every other worker's — single-owner state,
	// no locks, and a result independent of W.
	W := opts.Workers
	if W <= 0 {
		W = runtime.GOMAXPROCS(0)
	}
	if W > len(b.Rows) {
		W = len(b.Rows)
	}
	if W < 1 {
		W = 1
	}
	var assign []int
	if W > 1 {
		baseCols := make([]int, b.Schema.Len())
		for i := range baseCols {
			baseCols[i] = i
		}
		assign = make([]int, len(b.Rows))
		for g, row := range b.Rows {
			assign[g] = int(relation.HashRow(row, baseCols) % uint64(W))
		}
	}

	states := make([]vecWorker, W)
	if W == 1 {
		states[0].run(0, b, batch, bd, detailOnly, plans, assign, accs, matched)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < W; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				states[w].run(w, b, batch, bd, detailOnly, plans, assign, accs, matched)
			}(w)
		}
		wg.Wait()
	}

	// Deterministic error choice for a fixed W: each worker records its
	// first error in its own (base row, θ) iteration order; pick the
	// minimum (θ, base row) across workers.
	var total vec.Stats
	best := -1
	for w := range states {
		total.Batches += states[w].stats.Batches
		total.Rows += states[w].stats.Rows
		total.FilterRows += states[w].stats.FilterRows
		total.Selected += states[w].stats.Selected
		if states[w].err == nil {
			continue
		}
		if best < 0 ||
			states[w].errTheta < states[best].errTheta ||
			(states[w].errTheta == states[best].errTheta && states[w].errG < states[best].errG) {
			best = w
		}
	}
	if opts.Obs != nil {
		opts.Obs.Count("vec.batches", total.Batches)
		opts.Obs.Count("vec.rows", total.Rows)
		if total.FilterRows > 0 {
			opts.Obs.SetGauge("vec.selectivity", total.Selected*1000/total.FilterRows)
		}
	}
	if opts.Stats != nil {
		opts.Stats.Batches += total.Batches
		opts.Stats.Rows += total.Rows
		opts.Stats.FilterRows += total.FilterRows
		opts.Stats.Selected += total.Selected
	}
	if best >= 0 {
		return nil, states[best].err, true
	}

	out, err := assemble(outSchema, b, specs, accs, matched, prims, final, touched)
	return out, err, true
}

// thetaPlan is the static, worker-shared plan for one θ_i.
type thetaPlan struct {
	residual expr.Expr
	// trivial marks a constant-TRUE residual (a pure equi condition):
	// every bucket candidate matches and the filter pass is skipped.
	trivial  bool
	args     []vecArg
	bIdx     []int // base positions of the equi key; nil when no equi pairs
	rIdx     []int // detail positions of the equi key
	matchers []keyMatcher
	// buckets maps the chained key hash to detail lanes in scan order;
	// nil when the condition has no equi pairs (every lane is a
	// candidate). Probed concurrently, never mutated after planning.
	buckets map[uint64][]int32
}

// vecArg is one aggregate argument of a θ: the flattened spec index and
// the argument expression (nil for COUNT(*)).
type vecArg struct {
	spec int
	arg  expr.Expr
}

// planThetas builds the shared per-θ plans: equi keys, detail-side hash
// buckets, and a compile probe of every residual and argument so
// unsupported expressions are discovered before any worker starts. ok is
// false when the row engine must take over.
func planThetas(b, r *relation.Relation, md MD, bd expr.Binding, batch *vec.Batch) ([]thetaPlan, bool) {
	detailOnly := expr.Binding{Detail: r.Schema, DetailAliases: bd.DetailAliases}
	plans := make([]thetaPlan, len(md.Thetas))
	specBase := 0
	for ti, theta := range md.Thetas {
		pl := &plans[ti]
		pairs := expr.EquiPairs(theta, bd)
		pl.residual = expr.Residual(theta, bd, pairs)
		pl.trivial = expr.IsTrue(pl.residual)
		if _, err := vec.Compile(pl.residual, bd, batch); err != nil {
			return nil, false
		}
		if len(pairs) > 0 {
			pl.bIdx = make([]int, len(pairs))
			pl.rIdx = make([]int, len(pairs))
			for i, p := range pairs {
				bi, err := b.Schema.MustLookup(p.Base.Name)
				if err != nil {
					return nil, false
				}
				ri, err := r.Schema.MustLookup(p.Detail.Name)
				if err != nil {
					return nil, false
				}
				pl.bIdx[i], pl.rIdx[i] = bi, ri
			}
			var err error
			pl.buckets, err = batch.Buckets(pl.rIdx)
			if err != nil {
				return nil, false
			}
			pl.matchers = make([]keyMatcher, len(pairs))
			for i := range pairs {
				pl.matchers[i] = keyMatcher{col: &batch.Cols[pl.rIdx[i]], bIdx: pl.bIdx[i]}
			}
		}
		for j, s := range md.Aggs[ti] {
			if s.Arg != nil {
				if _, err := vec.Compile(s.Arg, detailOnly, batch); err != nil {
					return nil, false
				}
			}
			pl.args = append(pl.args, vecArg{spec: specBase + j, arg: s.Arg})
		}
		specBase += len(md.Aggs[ti])
	}
	return plans, true
}

func allLanesOf(batch *vec.Batch) []int32 {
	all := make([]int32, batch.Len())
	for i := range all {
		all[i] = int32(i)
	}
	return all
}

// vecWorker is the per-worker state: its own compiled programs and
// scratch, plus the first error it hit (errTheta/errG locate it for the
// deterministic cross-worker pick).
type vecWorker struct {
	stats    vec.Stats
	err      error
	errTheta int
	errG     int
}

// errAccStop aborts EvalEach when an accumulator rejects a value, so the
// accumulator error is distinguishable from an argument evaluation error
// (the row engine wraps the two differently).
var errAccStop = errors.New("gmdj: accumulator stop")

func (ws *vecWorker) fail(ti, g int, err error) {
	ws.err = err
	ws.errTheta = ti
	ws.errG = g
}

func (ws *vecWorker) run(w int, b *relation.Relation, batch *vec.Batch,
	bd, detailOnly expr.Binding, plans []thetaPlan, assign []int,
	accs [][][]*agg.Acc, matched []int64) {
	// Per-worker program instances: compiled nodes carry scratch vectors
	// and per-base-row scalar caches, so they cannot be shared.
	res := make([]*vec.Program, len(plans))
	argProgs := make([][]*vec.Program, len(plans))
	for ti := range plans {
		p, err := vec.Compile(plans[ti].residual, bd, batch)
		if err != nil {
			ws.fail(ti, 0, fmt.Errorf("gmdj: θ_%d residual: %w", ti+1, err))
			return
		}
		p.SetStats(&ws.stats)
		res[ti] = p
		argProgs[ti] = make([]*vec.Program, len(plans[ti].args))
		for j, ap := range plans[ti].args {
			if ap.arg == nil {
				continue
			}
			q, err := vec.Compile(ap.arg, detailOnly, batch)
			if err != nil {
				ws.fail(ti, 0, fmt.Errorf("gmdj: aggregate arg: %w", err))
				return
			}
			q.SetStats(&ws.stats)
			argProgs[ti][j] = q
		}
	}

	allLanes := allLanesOf(batch)
	maxKeys := 0
	for ti := range plans {
		if len(plans[ti].matchers) > maxKeys {
			maxKeys = len(plans[ti].matchers)
		}
	}
	needles := make([]needle, maxKeys)
	var candBuf, matchBuf []int32
	for g, row := range b.Rows {
		if assign != nil && assign[g] != w {
			continue
		}
		for ti := range plans {
			pl := &plans[ti]
			cands := allLanes
			if pl.buckets != nil {
				bucket := pl.buckets[relation.HashRow(row, pl.bIdx)]
				candBuf = candBuf[:0]
				if len(bucket) > 0 {
					// Hoist the base-side key classification out of the
					// candidate loop; each lane then verifies on raw
					// payloads.
					for k := range pl.matchers {
						needles[k] = pl.matchers[k].resolve(row[pl.matchers[k].bIdx])
					}
					for _, lane := range bucket {
						ok := true
						for k := range pl.matchers {
							if !pl.matchers[k].matches(needles[k], lane) {
								ok = false
								break
							}
						}
						if ok {
							candBuf = append(candBuf, lane)
						}
					}
				}
				cands = candBuf
			}
			if len(cands) == 0 {
				// No candidate pairs: the row engine evaluates nothing
				// for this base row, not even scalar subtrees.
				continue
			}
			sel := cands
			if !pl.trivial {
				res[ti].SetBase(row)
				matchBuf = matchBuf[:0]
				var err error
				matchBuf, err = res[ti].Filter(cands, matchBuf)
				if err != nil {
					ws.fail(ti, g, fmt.Errorf("gmdj: θ_%d: %w", ti+1, err))
					return
				}
				sel = matchBuf
			}
			matched[g] += int64(len(sel))
			if len(sel) == 0 {
				continue
			}
			for j, ap := range pl.args {
				accList := accs[g][ap.spec]
				prog := argProgs[ti][j]
				if prog == nil {
					// COUNT(*): the row engine adds a non-NULL int
					// marker per matched pair.
					for _, a := range accList {
						aerr := a.AddRows(len(sel))
						if aerr != nil {
							aerr = a.AddRepeat(value.NewInt(1), len(sel))
						}
						if aerr != nil {
							ws.fail(ti, g, fmt.Errorf("gmdj: %w", aerr))
							return
						}
					}
					continue
				}
				prog.SetBase(row)
				var accErr error
				err := prog.EvalEach(sel, func(l *vec.Lanes) error {
					for _, a := range accList {
						if e := feedAcc(a, l); e != nil {
							accErr = e
							return errAccStop
						}
					}
					return nil
				})
				if err != nil {
					if errors.Is(err, errAccStop) {
						err = fmt.Errorf("gmdj: %w", accErr)
					} else {
						err = fmt.Errorf("gmdj: aggregate arg: %w", err)
					}
					ws.fail(ti, g, err)
					return
				}
			}
		}
	}
}

// keyMatcher verifies hash-bucket candidates for one equi-key column:
// the detail lane must fall in the same Key() equivalence class as the
// base row's value — the exact match rule of the row engine's string-key
// probe (NULL matches NULL, integral floats match ints, NaN matches NaN
// and nothing else). value.Equal is not usable here: Compare returns 0
// for NaN-vs-number (no float ordering), but their Key() strings differ.
// The matcher works on raw column payloads; the base side is classified
// once per base row (resolve) and each candidate lane is then a direct
// payload comparison (matches).
type keyMatcher struct {
	col  *vec.Col
	bIdx int
}

// needle is a base-row key value resolved against a detail column: its
// Key() class plus, for string columns, the dictionary code (-1 when the
// string is absent from the dictionary, so no lane can match).
type needle struct {
	tag  byte
	i    int64
	f    float64
	code int32
}

func (m *keyMatcher) resolve(v value.V) needle {
	tag, i, f := keyClass(v)
	nd := needle{tag: tag, i: i, f: f, code: -1}
	if tag == 3 {
		nd.f = 0
		if c, ok := m.col.DictCode(v.S); ok {
			nd.code = c
		}
	}
	return nd
}

func (m *keyMatcher) matches(nd needle, lane int32) bool {
	c := m.col
	if c.IsNull(int(lane)) {
		return nd.tag == 0
	}
	switch c.Kind {
	case value.KindBool, value.KindInt:
		return nd.tag == 1 && nd.i == c.Ints[lane]
	case value.KindFloat:
		f := c.Floats[lane]
		if f == math.Trunc(f) && !math.IsInf(f, 0) &&
			f >= math.MinInt64 && f <= math.MaxInt64 {
			return nd.tag == 1 && nd.i == int64(f)
		}
		if nd.tag != 2 {
			return false
		}
		// Non-integral floats: Key() formats with 'g'/-1, which is
		// injective on non-NaN values; every NaN prints "NaN".
		if math.IsNaN(f) || math.IsNaN(nd.f) {
			return math.IsNaN(f) && math.IsNaN(nd.f)
		}
		return nd.f == f
	case value.KindString:
		return nd.tag == 3 && nd.code == c.Codes[lane]
	default:
		// A KindNull column holds no non-NULL lanes.
		return false
	}
}

// keyClass mirrors value.V.Key's tagging: 0 NULL, 1 integral (ints,
// bools, and in-range integral floats), 2 non-integral float, 3 string.
func keyClass(v value.V) (tag byte, i int64, f float64) {
	switch v.K {
	case value.KindNull:
		return 0, 0, 0
	case value.KindBool, value.KindInt:
		return 1, v.I, 0
	case value.KindFloat:
		if f := v.F; f == math.Trunc(f) && !math.IsInf(f, 0) &&
			f >= math.MinInt64 && f <= math.MaxInt64 {
			return 1, int64(f), 0
		}
		return 2, 0, v.F
	case value.KindString:
		return 3, 0, 0
	}
	return 0, 0, 0
}

// feedAcc folds an evaluated argument vector into one accumulator,
// column-wise when the accumulator supports it and boxed per lane
// otherwise.
func feedAcc(a *agg.Acc, l *vec.Lanes) error {
	if l.Const {
		return a.AddRepeat(l.ConstV, l.N)
	}
	switch l.Kind {
	case value.KindBool, value.KindInt:
		return a.AddInts(l.Kind, l.Ints[:l.N], l.Nulls)
	case value.KindFloat:
		return a.AddFloats(l.Floats[:l.N], l.Nulls)
	case value.KindString:
		return addDictLanes(a, l)
	default:
		// A KindNull vector: every lane is NULL.
		return a.AddRepeat(value.Null, l.N)
	}
}

// addDictLanes feeds dictionary-encoded string lanes per value; min/max
// and distinct-count accumulators need the boxed string anyway.
func addDictLanes(a *agg.Acc, l *vec.Lanes) error {
	for i := 0; i < l.N; i++ {
		if err := a.Add(l.Value(i)); err != nil {
			return err
		}
	}
	return nil
}
