package gmdj

import "sync/atomic"

// Engine selects the GMDJ evaluation engine for EvalSub.
type Engine int

const (
	// EngineAuto defers to the process-wide default engine.
	EngineAuto Engine = iota
	// EngineVector evaluates with the columnar kernels of internal/vec,
	// falling back to rows per call when a relation or condition is
	// outside their reach.
	EngineVector
	// EngineRow forces the single-threaded row-at-a-time reference
	// engine (the -row-engine escape hatch).
	EngineRow
)

func (e Engine) String() string {
	switch e {
	case EngineVector:
		return "vector"
	case EngineRow:
		return "row"
	default:
		return "auto"
	}
}

// defaultEngine holds the process-wide default; the zero value (Auto)
// resolves to EngineVector.
var defaultEngine atomic.Int32

// SetDefaultEngine sets the engine EngineAuto resolves to process-wide.
// Passing EngineAuto restores the built-in default (vectorized).
func SetDefaultEngine(e Engine) { defaultEngine.Store(int32(e)) }

// DefaultEngine returns the engine EngineAuto currently resolves to.
func DefaultEngine() Engine {
	if e := Engine(defaultEngine.Load()); e != EngineAuto {
		return e
	}
	return EngineVector
}

func resolveEngine(e Engine) Engine {
	if e == EngineAuto {
		return DefaultEngine()
	}
	return e
}
