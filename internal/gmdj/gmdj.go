// Package gmdj implements the GMDJ operator (Definition 1 of the paper):
// MD(B, R, (l_1..l_m), (θ_1..θ_m)) extends each base tuple b ∈ B with
// aggregates over RNG(b, R, θ_i) = {r ∈ R | θ_i(b, r)}.
//
// The package provides centralized evaluation (used both by the Skalla
// sites against their local partitions and as the reference implementation
// the distributed executor is tested against), the sub-aggregate variant
// that ships primitive states (Theorem 1), and the coalescing transform of
// Section 4.3.
//
// Evaluation follows the efficient strategy of [2,7]: equality conjuncts
// of θ_i are extracted and used to hash-partition B, so each scan of the
// detail relation probes matching base tuples instead of testing all of B.
// RNG sets may still overlap across base tuples (the residual condition is
// evaluated per candidate pair), which is exactly what makes GMDJ strictly
// more general than SQL GROUP BY.
package gmdj

//lint:deterministic GMDJ evaluation output must not depend on run or iteration order

import (
	"fmt"
	"strings"

	"repro/internal/agg"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/value"
	"repro/internal/vec"
)

// MD is one GMDJ operator: m condition/aggregate-list pairs evaluated
// against a detail relation. Thetas[i] is θ_i and Aggs[i] its aggregate
// list l_i.
type MD struct {
	Aggs   [][]agg.Spec
	Thetas []expr.Expr

	// BaseAlias and DetailAlias are the qualifiers conditions use to
	// reference the two sides; they default to "B" and "R".
	BaseAlias   string
	DetailAlias string

	// Detail optionally names a different detail relation for this
	// operator (the paper's R_k may change across rounds); empty means
	// the query's default detail relation.
	Detail string
}

// Aliases returns the effective base and detail aliases.
func (md MD) Aliases() (string, string) {
	b, d := md.BaseAlias, md.DetailAlias
	if b == "" {
		b = "B"
	}
	if d == "" {
		d = "R"
	}
	return b, d
}

// Binding returns the expression binding for this MD over the given
// schemas.
func (md MD) Binding(base, detail *relation.Schema) expr.Binding {
	b, d := md.Aliases()
	return expr.Binding{
		Base: base, Detail: detail,
		BaseAliases:   []string{b},
		DetailAliases: []string{d, "F"}, // the paper's examples write F for Flow
	}
}

// Specs returns all aggregate specs of the MD in evaluation order.
func (md MD) Specs() []agg.Spec {
	var out []agg.Spec
	for _, l := range md.Aggs {
		out = append(out, l...)
	}
	return out
}

// Validate checks structural consistency and that every condition and
// aggregate argument binds against the schemas.
func (md MD) Validate(base, detail *relation.Schema) error {
	if len(md.Aggs) != len(md.Thetas) {
		return fmt.Errorf("gmdj: %d aggregate lists but %d conditions", len(md.Aggs), len(md.Thetas))
	}
	if len(md.Thetas) == 0 {
		return fmt.Errorf("gmdj: MD with no conditions")
	}
	bd := md.Binding(base, detail)
	detailOnly := expr.Binding{Detail: detail, DetailAliases: bd.DetailAliases}
	seen := make(map[string]struct{})
	for _, c := range base.Cols {
		seen[strings.ToLower(c.Name)] = struct{}{}
	}
	for i, theta := range md.Thetas {
		if theta == nil {
			return fmt.Errorf("gmdj: θ_%d is nil", i+1)
		}
		if _, err := expr.Bind(theta, bd); err != nil {
			return fmt.Errorf("gmdj: θ_%d: %w", i+1, err)
		}
		for _, s := range md.Aggs[i] {
			if s.As == "" {
				return fmt.Errorf("gmdj: aggregate %s in l_%d has no output name", s, i+1)
			}
			key := strings.ToLower(s.As)
			if _, dup := seen[key]; dup {
				return fmt.Errorf("gmdj: duplicate output column %q", s.As)
			}
			seen[key] = struct{}{}
			if s.Arg != nil {
				if _, err := expr.Bind(s.Arg, detailOnly); err != nil {
					return fmt.Errorf("gmdj: aggregate %s: %w", s, err)
				}
			}
		}
	}
	return nil
}

// SubOpts selects what EvalSub appends to the base columns and how the
// evaluation runs.
type SubOpts struct {
	// Finalize appends the finalized aggregate columns (named Spec.As) in
	// addition to the primitive state columns. Local chained evaluation
	// (synchronization reduction) needs finalized values because later
	// conditions reference them.
	Finalize bool
	// Touched appends a TouchedCol count of detail matches across all θ_i.
	// It is positive iff |RNG(b, R, θ_1 ∨ ... ∨ θ_m)| > 0, the test of
	// Proposition 1 (distribution-independent group reduction).
	Touched bool
	// Engine selects the evaluation engine; EngineAuto uses the process
	// default (the vectorized engine unless SetDefaultEngine changed it).
	Engine Engine
	// Workers bounds the vectorized engine's parallelism; <= 0 means
	// GOMAXPROCS. The row engine is always single-threaded.
	Workers int
	// Obs, when set, receives the vec.batches / vec.rows /
	// vec.selectivity counters of the vectorized evaluation. These are
	// process-global totals; use Stats for per-request numbers.
	Obs *obs.Obs
	// Stats, when set, accumulates this evaluation's vectorized kernel
	// statistics into the pointed-to struct — the per-request scope the
	// query profiler reports, unlike the global Obs counters. The row
	// engine leaves it untouched.
	Stats *vec.Stats
	// DetailBatch optionally supplies a pre-built columnar batch of the
	// detail relation (it must have been built from exactly this
	// relation); nil converts on the fly.
	DetailBatch *vec.Batch
}

// TouchedCol is the name of the match-count column appended by
// SubOpts.Touched.
const TouchedCol = "__touched"

// Eval computes the GMDJ with fully finalized aggregate columns: the
// result schema is B's columns followed by one column per aggregate. This
// is Definition 1, and the centralized reference implementation.
func Eval(b, r *relation.Relation, md MD) (*relation.Relation, error) {
	return eval(b, r, md, false, true, false)
}

// EvalSub computes the sub-aggregate GMDJ of Theorem 1: the result schema
// is B's columns followed by primitive state columns per aggregate (and
// optionally finalized columns and the touched count). Primitive states
// from disjoint partitions of R merge at the coordinator into the same
// result Eval would give on the whole of R.
func EvalSub(b, r *relation.Relation, md MD, opts SubOpts) (*relation.Relation, error) {
	if resolveEngine(opts.Engine) == EngineVector {
		out, err, handled := evalVec(b, r, md, true, opts.Finalize, opts.Touched, opts)
		if handled {
			return out, err
		}
		// Fall back to the row engine: the detail relation or a condition
		// is outside the vectorized kernels' reach.
	}
	return eval(b, r, md, true, opts.Finalize, opts.Touched)
}

// outputSchema builds the result schema shared by both engines: base
// columns, then per-spec prim columns and/or finalized columns, then the
// touched counter.
func outputSchema(base *relation.Schema, specs []agg.Spec, prims, final, touched bool) (*relation.Schema, error) {
	outCols := append([]relation.Column(nil), base.Cols...)
	if prims {
		for _, s := range specs {
			outCols = append(outCols, s.SubColumns()...)
		}
	}
	if final {
		for _, s := range specs {
			outCols = append(outCols, s.OutColumn())
		}
	}
	if touched {
		outCols = append(outCols, relation.Column{Name: TouchedCol, Kind: value.KindInt})
	}
	outSchema, err := relation.NewSchema(outCols...)
	if err != nil {
		return nil, fmt.Errorf("gmdj: output schema: %w", err)
	}
	return outSchema, nil
}

// assemble materializes the output rows from the per-base-row accumulator
// and match-count state — shared by both engines so their outputs are
// byte-identical.
func assemble(outSchema *relation.Schema, b *relation.Relation, specs []agg.Spec,
	accs [][][]*agg.Acc, matched []int64, prims, final, touched bool) (*relation.Relation, error) {
	out := relation.New(outSchema)
	out.Rows = make([]relation.Row, 0, len(b.Rows))
	for gi, bRow := range b.Rows {
		row := make(relation.Row, 0, outSchema.Len())
		row = append(row, bRow...)
		if prims {
			for si := range specs {
				for _, a := range accs[gi][si] {
					row = append(row, a.Result())
				}
			}
		}
		if final {
			for si, s := range specs {
				states := make([]value.V, len(accs[gi][si]))
				for pi, a := range accs[gi][si] {
					states[pi] = a.Result()
				}
				v, err := s.Finalize(states)
				if err != nil {
					return nil, fmt.Errorf("gmdj: finalize %s: %w", s, err)
				}
				row = append(row, v)
			}
		}
		if touched {
			row = append(row, value.NewInt(matched[gi]))
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// newAccState allocates the per-base-row per-spec accumulator grid.
func newAccState(nBase int, specs []agg.Spec) [][][]*agg.Acc {
	accs := make([][][]*agg.Acc, nBase)
	for gi := range accs {
		accs[gi] = make([][]*agg.Acc, len(specs))
		for si, s := range specs {
			accs[gi][si] = agg.NewAccs(s)
		}
	}
	return accs
}

func eval(b, r *relation.Relation, md MD, prims, final, touched bool) (*relation.Relation, error) {
	if err := md.Validate(b.Schema, r.Schema); err != nil {
		return nil, err
	}
	specs := md.Specs()
	outSchema, err := outputSchema(b.Schema, specs, prims, final, touched)
	if err != nil {
		return nil, err
	}

	// Accumulator state per base row per spec.
	accs := newAccState(len(b.Rows), specs)
	matched := make([]int64, len(b.Rows))

	bd := md.Binding(b.Schema, r.Schema)
	detailOnly := expr.Binding{Detail: r.Schema, DetailAliases: bd.DetailAliases}

	// One scan of the detail relation per θ_i.
	specBase := 0
	for ti, theta := range md.Thetas {
		pairs := expr.EquiPairs(theta, bd)
		residual, err := expr.Bind(expr.Residual(theta, bd, pairs), bd)
		if err != nil {
			return nil, fmt.Errorf("gmdj: θ_%d residual: %w", ti+1, err)
		}

		// Bind this θ's aggregate arguments once.
		type argEval struct {
			spec  int
			bound *expr.Bound // nil for COUNT(*)
		}
		args := make([]argEval, len(md.Aggs[ti]))
		for j, s := range md.Aggs[ti] {
			ae := argEval{spec: specBase + j}
			if s.Arg != nil {
				bnd, err := expr.Bind(s.Arg, detailOnly)
				if err != nil {
					return nil, fmt.Errorf("gmdj: aggregate %s: %w", s, err)
				}
				ae.bound = bnd
			}
			args[j] = ae
		}

		// Candidate lookup: hash B on the equi columns when available.
		var probe func(rRow relation.Row) ([]int, error)
		if len(pairs) > 0 {
			bIdx := make([]int, len(pairs))
			rIdx := make([]int, len(pairs))
			for i, p := range pairs {
				bi, err := b.Schema.MustLookup(p.Base.Name)
				if err != nil {
					return nil, fmt.Errorf("gmdj: θ_%d: %w", ti+1, err)
				}
				ri, err := r.Schema.MustLookup(p.Detail.Name)
				if err != nil {
					return nil, fmt.Errorf("gmdj: θ_%d: %w", ti+1, err)
				}
				bIdx[i], rIdx[i] = bi, ri
			}
			index := make(map[string][]int, len(b.Rows))
			for pos, row := range b.Rows {
				k := relation.RowKey(row, bIdx)
				index[k] = append(index[k], pos)
			}
			keyBuf := make([]value.V, len(rIdx))
			probe = func(rRow relation.Row) ([]int, error) {
				for i, ri := range rIdx {
					keyBuf[i] = rRow[ri]
				}
				var sb strings.Builder
				for _, v := range keyBuf {
					sb.WriteString(v.Key())
					sb.WriteByte('\x1f')
				}
				return index[sb.String()], nil
			}
		} else {
			all := make([]int, len(b.Rows))
			for i := range all {
				all[i] = i
			}
			probe = func(relation.Row) ([]int, error) { return all, nil }
		}

		for _, rRow := range r.Rows {
			cands, err := probe(rRow)
			if err != nil {
				return nil, err
			}
			for _, gi := range cands {
				ok, err := residual.EvalBool(b.Rows[gi], rRow)
				if err != nil {
					return nil, fmt.Errorf("gmdj: θ_%d: %w", ti+1, err)
				}
				if !ok {
					continue
				}
				matched[gi]++
				for _, ae := range args {
					var v value.V
					if ae.bound == nil {
						v = value.NewInt(1) // COUNT(*): any non-NULL marker
					} else {
						v, err = ae.bound.Eval(nil, rRow)
						if err != nil {
							return nil, fmt.Errorf("gmdj: aggregate arg: %w", err)
						}
					}
					for _, a := range accs[gi][ae.spec] {
						if err := a.Add(v); err != nil {
							return nil, fmt.Errorf("gmdj: %w", err)
						}
					}
				}
			}
		}
		specBase += len(md.Aggs[ti])
	}

	return assemble(outSchema, b, specs, accs, matched, prims, final, touched)
}

// FilterTouched returns only the rows with a positive touched count,
// dropping the touched column itself when drop is true — the site-side
// half of Proposition 1.
func FilterTouched(h *relation.Relation, drop bool) (*relation.Relation, error) {
	ti, err := h.Schema.MustLookup(TouchedCol)
	if err != nil {
		return nil, fmt.Errorf("gmdj: filter touched: %w", err)
	}
	outSchema := h.Schema
	if drop {
		cols := make([]relation.Column, 0, h.Schema.Len()-1)
		for i, c := range h.Schema.Cols {
			if i != ti {
				cols = append(cols, c)
			}
		}
		outSchema, err = relation.NewSchema(cols...)
		if err != nil {
			return nil, err
		}
	}
	out := relation.New(outSchema)
	for _, row := range h.Rows {
		t, err := row[ti].AsInt()
		if err != nil {
			return nil, fmt.Errorf("gmdj: touched column: %w", err)
		}
		if t <= 0 {
			continue
		}
		if drop {
			nr := make(relation.Row, 0, len(row)-1)
			nr = append(nr, row[:ti]...)
			nr = append(nr, row[ti+1:]...)
			out.Rows = append(out.Rows, nr)
		} else {
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}
