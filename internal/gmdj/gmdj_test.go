package gmdj

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/agg"
	"repro/internal/expr"
	"repro/internal/relation"
	"repro/internal/value"
)

// flowRel builds a small Flow-like detail relation:
// (SourceAS, DestAS, NumBytes).
func flowRel(rows ...[3]int64) *relation.Relation {
	s := relation.MustSchema(
		relation.Column{Name: "SourceAS", Kind: value.KindInt},
		relation.Column{Name: "DestAS", Kind: value.KindInt},
		relation.Column{Name: "NumBytes", Kind: value.KindInt},
	)
	r := relation.New(s)
	for _, t := range rows {
		r.MustAppend(value.NewInt(t[0]), value.NewInt(t[1]), value.NewInt(t[2]))
	}
	return r
}

var testFlow = [][3]int64{
	{1, 10, 100}, {1, 10, 300}, {1, 10, 200},
	{2, 10, 50}, {2, 10, 150},
	{1, 20, 500},
}

// example1Query is the paper's Example 1: per (SourceAS, DestAS), the
// total number of flows and the number of flows with NumBytes above the
// group average.
func example1Query() Query {
	return Query{
		Base: BaseDef{Cols: []string{"SourceAS", "DestAS"}},
		MDs: []MD{
			{
				Aggs: [][]agg.Spec{{
					agg.MustParseSpec("count(*) AS cnt1"),
					agg.MustParseSpec("sum(F.NumBytes) AS sum1"),
				}},
				Thetas: []expr.Expr{expr.MustParse("F.SourceAS = B.SourceAS AND F.DestAS = B.DestAS")},
			},
			{
				Aggs: [][]agg.Spec{{agg.MustParseSpec("count(*) AS cnt2")}},
				Thetas: []expr.Expr{expr.MustParse(
					"F.SourceAS = B.SourceAS AND F.DestAS = B.DestAS AND F.NumBytes >= B.sum1 / B.cnt1")},
			},
		},
	}
}

func TestExample1Centralized(t *testing.T) {
	detail := flowRel(testFlow...)
	out, err := EvalQuery(detail, example1Query())
	if err != nil {
		t.Fatal(err)
	}
	if err := out.SortBy("SourceAS", "DestAS"); err != nil {
		t.Fatal(err)
	}
	// Groups: (1,10): cnt1=3 sum1=600 avg=200 → cnt2 = #{300,200} = 2
	//         (1,20): cnt1=1 sum1=500 avg=500 → cnt2 = 1
	//         (2,10): cnt1=2 sum1=200 avg=100 → cnt2 = 1
	want := [][5]int64{
		{1, 10, 3, 600, 2},
		{1, 20, 1, 500, 1},
		{2, 10, 2, 200, 1},
	}
	if out.Len() != len(want) {
		t.Fatalf("rows = %d, want %d\n%s", out.Len(), len(want), out)
	}
	for i, w := range want {
		for j := 0; j < 5; j++ {
			got, err := out.Rows[i][j].AsInt()
			if err != nil || got != w[j] {
				t.Errorf("row %d col %d = %v, want %d", i, j, out.Rows[i][j], w[j])
			}
		}
	}
}

// TestTheorem1 verifies the synchronization theorem: evaluating
// sub-aggregates against each partition and merging equals evaluating
// against the whole relation.
func TestTheorem1(t *testing.T) {
	detail := flowRel(testFlow...)
	md := example1Query().MDs[0]
	b, err := EvalBase(detail, BaseDef{Cols: []string{"SourceAS", "DestAS"}})
	if err != nil {
		t.Fatal(err)
	}

	whole, err := Eval(b, detail, md)
	if err != nil {
		t.Fatal(err)
	}

	// Partition rows round-robin over 3 "sites".
	parts := make([]*relation.Relation, 3)
	for i := range parts {
		parts[i] = relation.New(detail.Schema)
	}
	for i, row := range detail.Rows {
		parts[i%3].Rows = append(parts[i%3].Rows, row)
	}

	// Merge sub-aggregate fragments keyed on (SourceAS, DestAS).
	specs := md.Specs()
	merged := make(map[string][][]*agg.Acc)
	order := []string{}
	for _, part := range parts {
		h, err := EvalSub(b, part, md, SubOpts{})
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range h.Rows {
			key := relation.RowKey(row, []int{0, 1})
			accs, ok := merged[key]
			if !ok {
				accs = make([][]*agg.Acc, len(specs))
				for si, s := range specs {
					accs[si] = agg.NewAccs(s)
				}
				merged[key] = accs
				order = append(order, key)
			}
			col := 2
			for si, s := range specs {
				for pi := range s.Prims() {
					if err := accs[si][pi].Merge(row[col]); err != nil {
						t.Fatal(err)
					}
					col++
				}
			}
		}
	}
	_ = order

	for _, wrow := range whole.Rows {
		key := relation.RowKey(wrow, []int{0, 1})
		accs := merged[key]
		if accs == nil {
			t.Fatalf("group %v missing from merged result", wrow[:2])
		}
		col := 2
		for si, s := range specs {
			states := make([]value.V, len(accs[si]))
			for pi, a := range accs[si] {
				states[pi] = a.Result()
			}
			got, err := s.Finalize(states)
			if err != nil {
				t.Fatal(err)
			}
			if !value.Equal(got, wrow[col]) && !(got.IsNull() && wrow[col].IsNull()) {
				t.Errorf("group %v agg %s: merged %v, whole %v", wrow[:2], s.As, got, wrow[col])
			}
			col++
		}
	}
}

func TestEvalSubTouched(t *testing.T) {
	detail := flowRel(testFlow...)
	// Base contains a group with no matching detail rows.
	b, err := EvalBase(detail, BaseDef{Cols: []string{"SourceAS", "DestAS"}})
	if err != nil {
		t.Fatal(err)
	}
	b.MustAppend(value.NewInt(99), value.NewInt(99))

	md := example1Query().MDs[0]
	h, err := EvalSub(b, detail, md, SubOpts{Touched: true})
	if err != nil {
		t.Fatal(err)
	}
	ti, err := h.Schema.MustLookup(TouchedCol)
	if err != nil {
		t.Fatal(err)
	}
	var untouched int
	for _, row := range h.Rows {
		if row[ti].I == 0 {
			untouched++
			if row[0].I != 99 {
				t.Errorf("unexpected untouched group %v", row[:2])
			}
		}
	}
	if untouched != 1 {
		t.Errorf("untouched groups = %d, want 1", untouched)
	}

	f, err := FilterTouched(h, true)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != h.Len()-1 {
		t.Errorf("filtered len = %d, want %d", f.Len(), h.Len()-1)
	}
	if _, ok := f.Schema.Lookup(TouchedCol); ok {
		t.Error("touched column not dropped")
	}
}

func TestFilterTouchedKeep(t *testing.T) {
	detail := flowRel(testFlow...)
	b, _ := EvalBase(detail, BaseDef{Cols: []string{"SourceAS"}})
	md := MD{
		Aggs:   [][]agg.Spec{{agg.MustParseSpec("count(*) AS c")}},
		Thetas: []expr.Expr{expr.MustParse("F.SourceAS = B.SourceAS")},
	}
	h, err := EvalSub(b, detail, md, SubOpts{Touched: true})
	if err != nil {
		t.Fatal(err)
	}
	f, err := FilterTouched(h, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.Schema.Lookup(TouchedCol); !ok {
		t.Error("touched column should remain with drop=false")
	}
	if _, err := FilterTouched(b, true); err == nil {
		t.Error("FilterTouched without the column should error")
	}
}

func TestEvalSubFinalize(t *testing.T) {
	detail := flowRel(testFlow...)
	b, _ := EvalBase(detail, BaseDef{Cols: []string{"SourceAS", "DestAS"}})
	md := example1Query().MDs[0]
	h, err := EvalSub(b, detail, md, SubOpts{Finalize: true})
	if err != nil {
		t.Fatal(err)
	}
	// Prim columns and finalized columns both present.
	for _, name := range []string{"cnt1__p0", "sum1__p0", "cnt1", "sum1"} {
		if _, ok := h.Schema.Lookup(name); !ok {
			t.Errorf("column %s missing from finalized sub result (%s)", name, h.Schema)
		}
	}
	// Finalized values match full Eval.
	full, err := Eval(b, detail, md)
	if err != nil {
		t.Fatal(err)
	}
	ci, _ := h.Schema.MustLookup("cnt1")
	cj, _ := full.Schema.MustLookup("cnt1")
	for i := range h.Rows {
		if h.Rows[i][ci] != full.Rows[i][cj] {
			t.Errorf("row %d cnt1: sub %v full %v", i, h.Rows[i][ci], full.Rows[i][cj])
		}
	}
}

func TestValidateErrors(t *testing.T) {
	detail := flowRel(testFlow...)
	b, _ := EvalBase(detail, BaseDef{Cols: []string{"SourceAS"}})

	bad := []MD{
		{ // arity mismatch
			Aggs:   [][]agg.Spec{{agg.MustParseSpec("count(*) AS c")}},
			Thetas: []expr.Expr{expr.MustParse("F.SourceAS = B.SourceAS"), expr.MustParse("TRUE")},
		},
		{ // no conditions
		},
		{ // unbindable condition
			Aggs:   [][]agg.Spec{{agg.MustParseSpec("count(*) AS c")}},
			Thetas: []expr.Expr{expr.MustParse("F.Nope = B.SourceAS")},
		},
		{ // duplicate output name vs base column
			Aggs:   [][]agg.Spec{{agg.MustParseSpec("count(*) AS SourceAS")}},
			Thetas: []expr.Expr{expr.MustParse("F.SourceAS = B.SourceAS")},
		},
		{ // aggregate arg referencing base side
			Aggs:   [][]agg.Spec{{agg.MustParseSpec("sum(B.SourceAS) AS s")}},
			Thetas: []expr.Expr{expr.MustParse("F.SourceAS = B.SourceAS")},
		},
		{ // empty output name
			Aggs:   [][]agg.Spec{{{Func: agg.Count}}},
			Thetas: []expr.Expr{expr.MustParse("F.SourceAS = B.SourceAS")},
		},
	}
	for i, md := range bad {
		if _, err := Eval(b, detail, md); err == nil {
			t.Errorf("bad MD %d accepted", i)
		}
	}
}

func TestNoEquiConditionFallsBackToNestedLoop(t *testing.T) {
	detail := flowRel(testFlow...)
	b, _ := EvalBase(detail, BaseDef{Cols: []string{"SourceAS"}})
	// Pure inequality: every r is compared against every b.
	md := MD{
		Aggs:   [][]agg.Spec{{agg.MustParseSpec("count(*) AS c")}},
		Thetas: []expr.Expr{expr.MustParse("F.NumBytes > B.SourceAS * 100")},
	}
	out, err := Eval(b, detail, md)
	if err != nil {
		t.Fatal(err)
	}
	out.SortBy("SourceAS")
	// SourceAS=1: rows with NumBytes>100: {300,200,150,500} = 4
	// SourceAS=2: rows with NumBytes>200: {300,500} = 2
	if out.Rows[0][1].I != 4 || out.Rows[1][1].I != 2 {
		t.Errorf("nested-loop GMDJ wrong:\n%s", out)
	}
}

// TestOverlappingRNG exercises the case the paper highlights: RNG sets of
// different base tuples overlap, which plain GROUP BY cannot express.
func TestOverlappingRNG(t *testing.T) {
	detail := flowRel([3]int64{1, 0, 10}, [3]int64{2, 0, 20}, [3]int64{3, 0, 30})
	b, _ := EvalBase(detail, BaseDef{Cols: []string{"SourceAS"}})
	// Count rows whose SourceAS is within 1 of b's: windows overlap.
	md := MD{
		Aggs:   [][]agg.Spec{{agg.MustParseSpec("count(*) AS c")}},
		Thetas: []expr.Expr{expr.MustParse("F.SourceAS >= B.SourceAS - 1 AND F.SourceAS <= B.SourceAS + 1")},
	}
	out, err := Eval(b, detail, md)
	if err != nil {
		t.Fatal(err)
	}
	out.SortBy("SourceAS")
	want := []int64{2, 3, 2}
	for i, w := range want {
		if out.Rows[i][1].I != w {
			t.Errorf("window count for AS %d = %v, want %d", i+1, out.Rows[i][1], w)
		}
	}
}

func TestEvalBaseWhere(t *testing.T) {
	detail := flowRel(testFlow...)
	b, err := EvalBase(detail, BaseDef{
		Cols:  []string{"SourceAS"},
		Where: expr.MustParse("F.NumBytes >= 200"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1 || b.Rows[0][0].I != 1 {
		t.Errorf("filtered base = %s", b)
	}
	if _, err := EvalBase(detail, BaseDef{Cols: []string{"Nope"}}); err == nil {
		t.Error("bad base column accepted")
	}
	if _, err := EvalBase(detail, BaseDef{Cols: []string{"SourceAS"}, Where: expr.MustParse("B.x = 1")}); err == nil {
		t.Error("base filter referencing base side accepted")
	}
}

func TestQuerySchemas(t *testing.T) {
	detail := flowRel(testFlow...)
	q := example1Query()
	rs, err := q.ResultSchema(detail.Schema)
	if err != nil {
		t.Fatal(err)
	}
	wantCols := []string{"SourceAS", "DestAS", "cnt1", "sum1", "cnt2"}
	if rs.Len() != len(wantCols) {
		t.Fatalf("result schema = %s", rs)
	}
	for i, w := range wantCols {
		if rs.Cols[i].Name != w {
			t.Errorf("col %d = %s, want %s", i, rs.Cols[i].Name, w)
		}
	}
	if got := q.Keys(); len(got) != 2 || got[0] != "SourceAS" {
		t.Errorf("Keys = %v", got)
	}
	if err := q.Validate(detail.Schema); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

// coalescableQuery has two MDs whose second condition does not reference
// the first MD's outputs.
func coalescableQuery() Query {
	return Query{
		Base: BaseDef{Cols: []string{"SourceAS", "DestAS"}},
		MDs: []MD{
			{
				Aggs:   [][]agg.Spec{{agg.MustParseSpec("count(*) AS cnt1")}},
				Thetas: []expr.Expr{expr.MustParse("F.SourceAS = B.SourceAS AND F.DestAS = B.DestAS")},
			},
			{
				Aggs:   [][]agg.Spec{{agg.MustParseSpec("count(*) AS cnt2")}},
				Thetas: []expr.Expr{expr.MustParse("F.SourceAS = B.SourceAS AND F.NumBytes > 100")},
			},
		},
	}
}

func TestCoalesce(t *testing.T) {
	detail := flowRel(testFlow...)

	q := coalescableQuery()
	cq, n, err := Coalesce(q, detail.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || len(cq.MDs) != 1 {
		t.Fatalf("coalesced to %d MDs (%d merges)", len(cq.MDs), n)
	}
	// Results must be identical.
	a, err := EvalQuery(detail, q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvalQuery(detail, cq)
	if err != nil {
		t.Fatal(err)
	}
	a.SortBy("SourceAS", "DestAS")
	b.SortBy("SourceAS", "DestAS")
	if a.Len() != b.Len() {
		t.Fatalf("row counts differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if !value.Equal(a.Rows[i][j], b.Rows[i][j]) {
				t.Errorf("row %d col %d: %v vs %v", i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}

	// Example 1 is NOT coalescable (θ2 references sum1/cnt1).
	q2 := example1Query()
	cq2, n2, err := Coalesce(q2, detail.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 0 || len(cq2.MDs) != 2 {
		t.Errorf("correlated query wrongly coalesced (%d merges)", n2)
	}
}

func TestCoalesceAliasMismatch(t *testing.T) {
	detail := flowRel(testFlow...)
	q := coalescableQuery()
	q.MDs[1].DetailAlias = "X"
	q.MDs[1].Thetas = []expr.Expr{expr.MustParse("X.SourceAS = B.SourceAS")}
	_, n, err := Coalesce(q, detail.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Error("MDs with different aliases coalesced")
	}
}

// TestRandomizedCentralizedConsistency cross-checks the hash-partitioned
// evaluation against a naive nested-loop evaluation on random data.
func TestRandomizedCentralizedConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		var rows [][3]int64
		n := rng.Intn(50) + 1
		for i := 0; i < n; i++ {
			rows = append(rows, [3]int64{int64(rng.Intn(5)), int64(rng.Intn(4)), int64(rng.Intn(1000))})
		}
		detail := flowRel(rows...)
		b, err := EvalBase(detail, BaseDef{Cols: []string{"SourceAS", "DestAS"}})
		if err != nil {
			t.Fatal(err)
		}
		// Equi form (hash path) vs arithmetic-equality form (nested loop).
		mdHash := MD{
			Aggs: [][]agg.Spec{{agg.MustParseSpec("count(*) AS c"), agg.MustParseSpec("avg(F.NumBytes) AS a")}},
			Thetas: []expr.Expr{expr.MustParse(
				"F.SourceAS = B.SourceAS AND F.DestAS = B.DestAS")},
		}
		mdLoop := MD{
			Aggs: [][]agg.Spec{{agg.MustParseSpec("count(*) AS c"), agg.MustParseSpec("avg(F.NumBytes) AS a")}},
			Thetas: []expr.Expr{expr.MustParse(
				"F.SourceAS - B.SourceAS = 0 AND F.DestAS - B.DestAS = 0")},
		}
		x, err := Eval(b, detail, mdHash)
		if err != nil {
			t.Fatal(err)
		}
		y, err := Eval(b, detail, mdLoop)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x.Rows {
			for j := range x.Rows[i] {
				xv, yv := x.Rows[i][j], y.Rows[i][j]
				if xv.IsNull() && yv.IsNull() {
					continue
				}
				if xv.K == value.KindFloat || yv.K == value.KindFloat {
					xf, _ := xv.AsFloat()
					yf, _ := yv.AsFloat()
					if math.Abs(xf-yf) > 1e-9 {
						t.Fatalf("trial %d row %d col %d: %v vs %v", trial, i, j, xv, yv)
					}
					continue
				}
				if !value.Equal(xv, yv) {
					t.Fatalf("trial %d row %d col %d: %v vs %v", trial, i, j, xv, yv)
				}
			}
		}
	}
}

func TestMultipleThetasOneMD(t *testing.T) {
	// A single MD with two grouping variables (the coalesced form).
	detail := flowRel(testFlow...)
	b, _ := EvalBase(detail, BaseDef{Cols: []string{"SourceAS"}})
	md := MD{
		Aggs: [][]agg.Spec{
			{agg.MustParseSpec("count(*) AS total")},
			{agg.MustParseSpec("count(*) AS big")},
		},
		Thetas: []expr.Expr{
			expr.MustParse("F.SourceAS = B.SourceAS"),
			expr.MustParse("F.SourceAS = B.SourceAS AND F.NumBytes > 150"),
		},
	}
	out, err := Eval(b, detail, md)
	if err != nil {
		t.Fatal(err)
	}
	out.SortBy("SourceAS")
	// AS 1: total 4, big {300,200,500} = 3; AS 2: total 2, big 0.
	if out.Rows[0][1].I != 4 || out.Rows[0][2].I != 3 {
		t.Errorf("AS1 = %v", out.Rows[0])
	}
	if out.Rows[1][1].I != 2 || out.Rows[1][2].I != 0 {
		t.Errorf("AS2 = %v", out.Rows[1])
	}
}
