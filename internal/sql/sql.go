// Package sql implements a small SQL front-end for Skalla: the role the
// paper assigns to the query generator, which "constructs query plans
// from the OLAP queries" before Egil optimizes them as GMDJ expressions.
//
// Supported statement shape:
//
//	[EXPLAIN [ANALYZE]]
//	SELECT <cols and aggregates>
//	FROM <relation>
//	[WHERE <condition over detail columns>]
//	{GROUP BY <cols> | CUBE BY <cols> | ROLLUP BY <cols>}
//	[HAVING <condition over the result columns>]
//	[ORDER BY <col [ASC|DESC]>, ...]
//	[LIMIT <n>]
//
// Aggregates are count/sum/avg/min/max/var/stddev/countd over detail
// expressions; every non-aggregate select item must appear in the
// grouping columns. GROUP BY compiles to a single-MD GMDJ query (group
// equality plus the WHERE condition as θ); CUBE BY marks the statement
// for data-cube execution. HAVING is returned as a predicate over the
// result relation, applied after synchronization (it references
// super-aggregates, which only exist at the coordinator).
package sql

import (
	"fmt"
	"strings"

	"repro/internal/agg"
	"repro/internal/expr"
	"repro/internal/gmdj"
)

// Statement is a parsed and translated SQL query.
type Statement struct {
	// Explain marks an EXPLAIN-prefixed statement: the caller should plan
	// the query and render the plan instead of executing it.
	Explain bool
	// Analyze marks EXPLAIN ANALYZE: plan, execute, and render the plan
	// together with the measured per-round/per-site execution profile.
	Analyze bool
	// Detail is the FROM relation.
	Detail string
	// GroupCols are the grouping (or cube dimension) columns.
	GroupCols []string
	// Aggs are the aggregates of the select list.
	Aggs []agg.Spec
	// SelectCols is the output column order, referencing grouping
	// columns and aggregate aliases.
	SelectCols []string
	// Where is the detail-row filter (columns qualified with F), or nil.
	Where expr.Expr
	// Having filters the result relation, or nil.
	Having expr.Expr
	// Cube marks CUBE BY statements.
	Cube bool
	// Rollup marks ROLLUP BY statements.
	Rollup bool
	// OrderBy lists result sort keys (names from the select list).
	OrderBy []OrderKey
	// Limit caps the result rows; 0 means no limit.
	Limit int
}

// OrderKey is one ORDER BY item.
type OrderKey struct {
	Col  string
	Desc bool
}

// Query translates a GROUP BY statement into its GMDJ form: a single MD
// whose condition equates every grouping column and conjoins the WHERE
// filter. Cube statements have no single-query form; execute them with a
// cube evaluator over (GroupCols, Aggs).
func (s *Statement) Query() (gmdj.Query, error) {
	if s.Cube || s.Rollup {
		return gmdj.Query{}, fmt.Errorf("sql: CUBE BY / ROLLUP BY statements need a grouping-sets evaluator, not Query")
	}
	var conjs []expr.Expr
	for _, c := range s.GroupCols {
		conjs = append(conjs, expr.Eq(expr.Ref("F", c), expr.Ref("B", c)))
	}
	if s.Where != nil {
		conjs = append(conjs, s.Where)
	}
	aggs := s.Aggs
	if len(aggs) == 0 {
		// Pure DISTINCT projection: carry a count so the GMDJ machinery
		// applies; callers project it away via SelectCols.
		aggs = []agg.Spec{{Func: agg.Count, As: distinctCountCol}}
	}
	q := gmdj.Query{
		Base: gmdj.BaseDef{Cols: s.GroupCols, Where: s.Where},
		MDs: []gmdj.MD{{
			Aggs:   [][]agg.Spec{aggs},
			Thetas: []expr.Expr{expr.And(conjs...)},
		}},
	}
	return q, nil
}

// distinctCountCol is the synthetic aggregate carried by aggregate-free
// SELECT DISTINCT-style statements.
const distinctCountCol = "__distinct_n"

// ParseError wraps every front-end rejection of a statement, so servers
// can classify caller mistakes (errors.As → HTTP 400) apart from
// execution failures. The message is unchanged from the wrapped error.
type ParseError struct {
	Err error
}

// Error implements error.
func (e *ParseError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *ParseError) Unwrap() error { return e.Err }

// Parse parses one statement. A trailing semicolon is tolerated. Every
// returned error is a *ParseError.
func Parse(input string) (*Statement, error) {
	input = strings.TrimSpace(input)
	input = strings.TrimSuffix(input, ";")
	toks, err := lex(input)
	if err != nil {
		return nil, &ParseError{Err: err}
	}
	p := &parser{input: input, toks: toks}
	st, err := p.parse()
	if err != nil {
		return nil, &ParseError{Err: err}
	}
	return st, nil
}

// token kinds for the SQL splitter.
type tokKind int

const (
	tokEOF tokKind = iota
	tokWord
	tokString
	tokPunct
)

type token struct {
	kind tokKind
	text string
	pos  int
}

// lex splits the input into words, quoted strings, and punctuation,
// preserving original spelling (expr.Parse re-parses the fragments).
func lex(s string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			start := i
			i++
			for {
				if i >= len(s) {
					return nil, fmt.Errorf("sql: unterminated string at offset %d", start)
				}
				if s[i] == '\'' {
					if i+1 < len(s) && s[i+1] == '\'' {
						i += 2
						continue
					}
					i++
					break
				}
				i++
			}
			toks = append(toks, token{tokString, s[start:i], start})
		case isWordChar(c) || c == '.':
			start := i
			for i < len(s) && (isWordChar(s[i]) || s[i] == '.') {
				i++
			}
			toks = append(toks, token{tokWord, s[start:i], start})
		default:
			// Two-character operators stay glued so expr.Parse sees them.
			if i+1 < len(s) {
				two := s[i : i+2]
				switch two {
				case "<=", ">=", "!=", "<>", "==", "&&", "||":
					toks = append(toks, token{tokPunct, two, i})
					i += 2
					continue
				}
			}
			toks = append(toks, token{tokPunct, s[i : i+1], i})
			i++
		}
	}
	toks = append(toks, token{tokEOF, "", len(s)})
	return toks, nil
}

func isWordChar(c byte) bool {
	return c == '_' || c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

type parser struct {
	input string
	toks  []token
	pos   int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// acceptWord consumes the next token if it is the given keyword.
func (p *parser) acceptWord(word string) bool {
	t := p.peek()
	if t.kind == tokWord && strings.EqualFold(t.text, word) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectWord(word string) error {
	if !p.acceptWord(word) {
		t := p.peek()
		return fmt.Errorf("sql: expected %s, found %q at offset %d", word, t.text, t.pos)
	}
	return nil
}

// atClauseKeyword reports whether the next token starts a new clause.
func (p *parser) atClauseKeyword() bool {
	t := p.peek()
	if t.kind != tokWord {
		return false
	}
	switch strings.ToUpper(t.text) {
	case "FROM", "WHERE", "GROUP", "CUBE", "ROLLUP", "HAVING", "ORDER", "LIMIT":
		return true
	}
	return false
}

// collectUntilClause gathers raw text until the next top-level clause
// keyword (respecting parenthesis depth) and returns it.
func (p *parser) collectUntilClause() string {
	depth := 0
	start := -1
	end := -1
	for {
		t := p.peek()
		if t.kind == tokEOF {
			break
		}
		if depth == 0 && p.atClauseKeyword() {
			break
		}
		if t.kind == tokPunct {
			if t.text == "(" {
				depth++
			}
			if t.text == ")" {
				depth--
			}
		}
		if start < 0 {
			start = t.pos
		}
		end = t.pos + len(t.text)
		p.next()
	}
	if start < 0 {
		return ""
	}
	return p.input[start:end]
}

// splitTopLevel splits raw text on top-level commas.
func splitTopLevel(s string) []string {
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inStr {
			if c == '\'' {
				if i+1 < len(s) && s[i+1] == '\'' {
					i++
					continue
				}
				inStr = false
			}
			continue
		}
		switch c {
		case '\'':
			inStr = true
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func (p *parser) parse() (*Statement, error) {
	explain, analyze := false, false
	if p.acceptWord("EXPLAIN") {
		explain = true
		analyze = p.acceptWord("ANALYZE")
	}
	if err := p.expectWord("SELECT"); err != nil {
		return nil, err
	}
	selectRaw := p.collectUntilClause()
	if strings.TrimSpace(selectRaw) == "" {
		return nil, fmt.Errorf("sql: empty select list")
	}
	if err := p.expectWord("FROM"); err != nil {
		return nil, err
	}
	fromTok := p.next()
	if fromTok.kind != tokWord {
		return nil, fmt.Errorf("sql: expected relation name after FROM, found %q", fromTok.text)
	}

	st := &Statement{Explain: explain, Analyze: analyze, Detail: fromTok.text}

	if p.acceptWord("WHERE") {
		raw := p.collectUntilClause()
		w, err := expr.Parse(raw)
		if err != nil {
			return nil, fmt.Errorf("sql: WHERE: %w", err)
		}
		st.Where = qualifyDetail(w)
	}

	switch {
	case p.acceptWord("GROUP"):
		if err := p.expectWord("BY"); err != nil {
			return nil, err
		}
	case p.acceptWord("CUBE"):
		if err := p.expectWord("BY"); err != nil {
			return nil, err
		}
		st.Cube = true
	case p.acceptWord("ROLLUP"):
		if err := p.expectWord("BY"); err != nil {
			return nil, err
		}
		st.Rollup = true
	default:
		return nil, fmt.Errorf("sql: statement needs GROUP BY, CUBE BY, or ROLLUP BY")
	}
	for _, col := range splitTopLevel(p.collectUntilClause()) {
		if col == "" || strings.ContainsAny(col, " ()") {
			return nil, fmt.Errorf("sql: bad grouping column %q", col)
		}
		st.GroupCols = append(st.GroupCols, col)
	}
	if len(st.GroupCols) == 0 {
		return nil, fmt.Errorf("sql: empty grouping column list")
	}

	if p.acceptWord("HAVING") {
		raw := p.collectUntilClause()
		h, err := expr.Parse(raw)
		if err != nil {
			return nil, fmt.Errorf("sql: HAVING: %w", err)
		}
		st.Having = h
	}
	if p.acceptWord("ORDER") {
		if err := p.expectWord("BY"); err != nil {
			return nil, err
		}
		for _, item := range splitTopLevel(p.collectUntilClause()) {
			fields := strings.Fields(item)
			switch {
			case len(fields) == 1:
				st.OrderBy = append(st.OrderBy, OrderKey{Col: fields[0]})
			case len(fields) == 2 && strings.EqualFold(fields[1], "DESC"):
				st.OrderBy = append(st.OrderBy, OrderKey{Col: fields[0], Desc: true})
			case len(fields) == 2 && strings.EqualFold(fields[1], "ASC"):
				st.OrderBy = append(st.OrderBy, OrderKey{Col: fields[0]})
			default:
				return nil, fmt.Errorf("sql: bad ORDER BY item %q", item)
			}
		}
		if len(st.OrderBy) == 0 {
			return nil, fmt.Errorf("sql: empty ORDER BY list")
		}
	}
	if p.acceptWord("LIMIT") {
		nt := p.next()
		n := 0
		if _, err := fmt.Sscanf(nt.text, "%d", &n); err != nil || n <= 0 {
			return nil, fmt.Errorf("sql: bad LIMIT %q", nt.text)
		}
		st.Limit = n
	}
	if t := p.peek(); t.kind != tokEOF && t.text != ";" {
		return nil, fmt.Errorf("sql: unexpected %q at offset %d", t.text, t.pos)
	}

	if err := st.parseSelectList(selectRaw); err != nil {
		return nil, err
	}
	return st, nil
}

// parseSelectList resolves select items into grouping-column references
// and aggregate specs.
func (st *Statement) parseSelectList(raw string) error {
	groupSet := map[string]bool{}
	for _, c := range st.GroupCols {
		groupSet[strings.ToLower(c)] = true
	}
	used := map[string]bool{}
	for _, item := range splitTopLevel(raw) {
		if item == "" {
			return fmt.Errorf("sql: empty select item")
		}
		if !strings.Contains(item, "(") {
			// Plain column, optionally aliased (alias must match — we do
			// not rename grouping columns).
			name := item
			if i := indexFoldWord(item, "AS"); i >= 0 {
				name = strings.TrimSpace(item[:i])
			}
			if !groupSet[strings.ToLower(name)] {
				return fmt.Errorf("sql: select column %q is not in the grouping columns", name)
			}
			st.SelectCols = append(st.SelectCols, name)
			continue
		}
		spec, err := parseAggItem(item, used)
		if err != nil {
			return err
		}
		if spec.Arg != nil {
			spec.Arg = qualifyDetail(spec.Arg)
		}
		st.Aggs = append(st.Aggs, spec)
		st.SelectCols = append(st.SelectCols, spec.As)
	}
	return nil
}

// parseAggItem parses "func(arg) [AS alias]" with alias autogeneration.
func parseAggItem(item string, used map[string]bool) (agg.Spec, error) {
	text := item
	if indexFoldWord(item, "AS") < 0 {
		// Autogenerate an alias from the call: avg(Quantity) → avg_quantity.
		open := strings.Index(item, "(")
		fn := strings.ToLower(strings.TrimSpace(item[:open]))
		argPart := strings.TrimSuffix(strings.TrimSpace(item[open+1:]), ")")
		alias := fn
		argName := strings.ToLower(strings.TrimSpace(argPart))
		if argName != "*" && argName != "" {
			clean := strings.Map(func(r rune) rune {
				switch {
				case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
					return r
				case r == '.':
					return '_'
				default:
					return -1
				}
			}, argName)
			if clean != "" {
				alias += "_" + clean
			}
		}
		base := alias
		for i := 2; used[alias]; i++ {
			alias = fmt.Sprintf("%s_%d", base, i)
		}
		text = item + " AS " + alias
	}
	spec, err := agg.ParseSpec(text)
	if err != nil {
		return agg.Spec{}, fmt.Errorf("sql: select item %q: %w", item, err)
	}
	if used[spec.As] {
		return agg.Spec{}, fmt.Errorf("sql: duplicate output column %q", spec.As)
	}
	used[spec.As] = true
	return spec, nil
}

// indexFoldWord finds a standalone (space-delimited) keyword,
// case-insensitively, outside parentheses and strings.
func indexFoldWord(s, word string) int {
	depth := 0
	inStr := false
	for i := 0; i+len(word) <= len(s); i++ {
		c := s[i]
		if inStr {
			if c == '\'' {
				inStr = false
			}
			continue
		}
		switch c {
		case '\'':
			inStr = true
			continue
		case '(':
			depth++
			continue
		case ')':
			depth--
			continue
		}
		if depth != 0 {
			continue
		}
		if !strings.EqualFold(s[i:i+len(word)], word) {
			continue
		}
		beforeOK := i == 0 || s[i-1] == ' ' || s[i-1] == '\t'
		afterIdx := i + len(word)
		afterOK := afterIdx == len(s) || s[afterIdx] == ' ' || s[afterIdx] == '\t'
		if beforeOK && afterOK {
			return i
		}
	}
	return -1
}

// qualifyDetail rewrites unqualified column references to the detail
// alias F, so conditions bind unambiguously when base and detail share
// column names.
func qualifyDetail(e expr.Expr) expr.Expr {
	return expr.Rewrite(e, func(x expr.Expr) expr.Expr {
		if c, ok := x.(expr.Col); ok && c.Qual == "" {
			return expr.Col{Qual: "F", Name: c.Name}
		}
		return nil
	})
}
