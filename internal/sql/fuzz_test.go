package sql

import "testing"

// FuzzParse asserts the SQL front-end never panics and that accepted
// statements are structurally sane.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT Region, count(*) FROM sales GROUP BY Region",
		"SELECT a, sum(x * (1 - y)) AS r FROM t WHERE x BETWEEN 1 AND 9 GROUP BY a HAVING r > 5",
		"SELECT a, b, avg(v) FROM t CUBE BY a, b",
		"SELECT a, max(v) FROM t ROLLUP BY a;",
		"select a from t where s = 'group by' group by a",
		"SELECT a, count(*) FROM t GROUP BY a HAVING count > 0",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		st, err := Parse(input)
		if err != nil {
			return
		}
		if st.Detail == "" {
			t.Fatalf("accepted statement without relation: %q", input)
		}
		if len(st.GroupCols) == 0 {
			t.Fatalf("accepted statement without grouping columns: %q", input)
		}
		if len(st.SelectCols) == 0 {
			t.Fatalf("accepted statement without select columns: %q", input)
		}
		if !st.Cube && !st.Rollup {
			if _, err := st.Query(); err != nil {
				t.Fatalf("accepted statement fails translation: %q: %v", input, err)
			}
		}
	})
}
