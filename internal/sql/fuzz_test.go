package sql

import (
	"errors"
	"testing"
)

// FuzzParse asserts the SQL front-end never panics, that every rejection
// is the typed *ParseError the HTTP layer classifies on, and that
// accepted statements are structurally sane.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT Region, count(*) FROM sales GROUP BY Region",
		"SELECT a, sum(x * (1 - y)) AS r FROM t WHERE x BETWEEN 1 AND 9 GROUP BY a HAVING r > 5",
		"SELECT a, b, avg(v) FROM t CUBE BY a, b",
		"SELECT a, max(v) FROM t ROLLUP BY a;",
		"select a from t where s = 'group by' group by a",
		"SELECT a, count(*) FROM t GROUP BY a HAVING count > 0",
		// Every statement shape the examples and the concurrent query
		// service exercise, so the corpus covers the served dialect.
		"SELECT MktSegment, count(*) AS lines, avg(ExtendedPrice) AS avg_price FROM tpcr WHERE Discount > 0.05 GROUP BY MktSegment HAVING avg_price > 30000",
		"SELECT RegionKey, sum(Quantity) AS qty, sum(ExtendedPrice * (1 - Discount)) AS revenue FROM tpcr GROUP BY RegionKey",
		"SELECT RegionKey, MktSegment, sum(Quantity) AS qty FROM tpcr WHERE RegionKey < 2 ROLLUP BY RegionKey, MktSegment",
		"SELECT CustName, count(*) AS lines FROM tpcr GROUP BY CustName ORDER BY lines DESC LIMIT 5",
		"SELECT SourceAS, DestAS, count(*) AS cnt, sum(NumBytes) AS bytes FROM flow GROUP BY SourceAS, DestAS",
		"SELECT SourceAS, sum(NumBytes) AS bytes FROM flow GROUP BY SourceAS ORDER BY bytes DESC",
		"SELECT SourceAS, DestAS, sum(NumBytes) AS bytes FROM flow CUBE BY SourceAS, DestAS",
		"SELECT DestAS, count(*) AS cnt FROM flow WHERE NumBytes >= 100 GROUP BY DestAS",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		st, err := Parse(input)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("rejection is not a *ParseError: %q: %v", input, err)
			}
			return
		}
		if st.Detail == "" {
			t.Fatalf("accepted statement without relation: %q", input)
		}
		if len(st.GroupCols) == 0 {
			t.Fatalf("accepted statement without grouping columns: %q", input)
		}
		if len(st.SelectCols) == 0 {
			t.Fatalf("accepted statement without select columns: %q", input)
		}
		if !st.Cube && !st.Rollup {
			if _, err := st.Query(); err != nil {
				t.Fatalf("accepted statement fails translation: %q: %v", input, err)
			}
		}
	})
}
