package sql

import (
	"strings"
	"testing"

	"repro/internal/agg"
)

func TestParseBasicGroupBy(t *testing.T) {
	st, err := Parse("SELECT Region, count(*), avg(Sales) FROM sales GROUP BY Region")
	if err != nil {
		t.Fatal(err)
	}
	if st.Detail != "sales" || st.Cube {
		t.Errorf("statement: %+v", st)
	}
	if len(st.GroupCols) != 1 || st.GroupCols[0] != "Region" {
		t.Errorf("group cols: %v", st.GroupCols)
	}
	if len(st.Aggs) != 2 || st.Aggs[0].Func != agg.Count || st.Aggs[1].Func != agg.Avg {
		t.Errorf("aggs: %v", st.Aggs)
	}
	// Auto-aliases.
	if st.Aggs[0].As != "count" || st.Aggs[1].As != "avg_sales" {
		t.Errorf("aliases: %s, %s", st.Aggs[0].As, st.Aggs[1].As)
	}
	if len(st.SelectCols) != 3 || st.SelectCols[0] != "Region" {
		t.Errorf("select cols: %v", st.SelectCols)
	}
}

func TestParseAliasesAndWhere(t *testing.T) {
	st, err := Parse(`SELECT Region, sum(Sales) AS total
		FROM sales WHERE Product = 'pen' AND Sales > 3 GROUP BY Region`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Aggs[0].As != "total" {
		t.Errorf("alias: %s", st.Aggs[0].As)
	}
	// WHERE columns are qualified with the detail alias.
	if got := st.Where.String(); got != "F.Product = 'pen' AND F.Sales > 3" {
		t.Errorf("where: %s", got)
	}
	q, err := st.Query()
	if err != nil {
		t.Fatal(err)
	}
	theta := q.MDs[0].Thetas[0].String()
	if !strings.Contains(theta, "F.Region = B.Region") || !strings.Contains(theta, "F.Product = 'pen'") {
		t.Errorf("theta: %s", theta)
	}
	if q.Base.Where == nil {
		t.Error("base filter missing")
	}
}

func TestParseHaving(t *testing.T) {
	st, err := Parse("SELECT Region, count(*) AS n FROM sales GROUP BY Region HAVING n > 10")
	if err != nil {
		t.Fatal(err)
	}
	if st.Having == nil || st.Having.String() != "n > 10" {
		t.Errorf("having: %v", st.Having)
	}
}

func TestParseCube(t *testing.T) {
	st, err := Parse("SELECT Region, Product, sum(Sales) FROM sales CUBE BY Region, Product")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Cube || len(st.GroupCols) != 2 {
		t.Errorf("cube statement: %+v", st)
	}
	if _, err := st.Query(); err == nil {
		t.Error("Query() on a cube statement should error")
	}
}

func TestParseDistinctProjection(t *testing.T) {
	st, err := Parse("SELECT Region, Product FROM sales GROUP BY Region, Product")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Aggs) != 0 {
		t.Errorf("aggs: %v", st.Aggs)
	}
	q, err := st.Query()
	if err != nil {
		t.Fatal(err)
	}
	// The synthetic count is carried but not selected.
	if len(q.MDs[0].Specs()) != 1 || q.MDs[0].Specs()[0].As != distinctCountCol {
		t.Errorf("synthetic agg: %v", q.MDs[0].Specs())
	}
	if len(st.SelectCols) != 2 {
		t.Errorf("select cols: %v", st.SelectCols)
	}
}

func TestParseAutoAliasDedup(t *testing.T) {
	st, err := Parse("SELECT Region, sum(Sales), sum(Sales) FROM sales GROUP BY Region")
	if err != nil {
		t.Fatal(err)
	}
	if st.Aggs[0].As == st.Aggs[1].As {
		t.Errorf("duplicate auto aliases: %s", st.Aggs[0].As)
	}
}

func TestParseKeywordsInStrings(t *testing.T) {
	st, err := Parse("SELECT Region, count(*) FROM sales WHERE Product = 'group by having from' GROUP BY Region")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(st.Where.String(), "group by having from") {
		t.Errorf("where: %s", st.Where)
	}
}

func TestParseComplexExpressions(t *testing.T) {
	st, err := Parse(`SELECT Region, sum(Sales * (1 - Discount)) AS revenue
		FROM sales WHERE Sales BETWEEN 1 AND 100 GROUP BY Region HAVING revenue >= 50`)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Aggs[0].Arg.String(); got != "F.Sales * (1 - F.Discount)" {
		t.Errorf("agg arg: %s", got)
	}
	if !strings.Contains(st.Where.String(), "F.Sales BETWEEN 1 AND 100") {
		t.Errorf("where: %s", st.Where)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT FROM t GROUP BY a",
		"SELECT a FROM t",                      // no GROUP BY
		"SELECT a FROM t GROUP a",              // missing BY
		"SELECT a FROM t GROUP BY",             // empty group list
		"SELECT b FROM t GROUP BY a",           // non-grouped column
		"SELECT a, frob(x) FROM t GROUP BY a",  // unknown aggregate
		"SELECT a FROM GROUP BY a",             // missing relation
		"SELECT a FROM t WHERE (( GROUP BY a",  // bad where
		"SELECT a FROM t GROUP BY a HAVING ((", // bad having
		"SELECT a FROM t GROUP BY a extra",     // trailing junk
		"SELECT a, count(*) AS a2, count(*) AS a2 FROM t GROUP BY a", // dup alias
		"SELECT 'oops",                 // unterminated string
		"SELECT a FROM t GROUP BY a b", // bad group col
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	st, err := Parse("select Region, Count(*) from sales where Sales > 1 group by Region having count > 0")
	if err != nil {
		t.Fatal(err)
	}
	if st.Detail != "sales" || len(st.Aggs) != 1 || st.Having == nil {
		t.Errorf("statement: %+v", st)
	}
}

func TestSemicolonTolerated(t *testing.T) {
	if _, err := Parse("SELECT a, count(*) FROM t GROUP BY a;"); err != nil {
		t.Errorf("trailing semicolon rejected: %v", err)
	}
}
