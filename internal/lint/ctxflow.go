package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow flags functions that have a context.Context in scope but call
// context.Background() or context.TODO() anyway. Passing a fresh root
// context instead of the parameter severs the cancellation chain: the
// coordinator's deadlines and first-error cancellation stop at that call,
// so a hung site keeps burning work after the query has been abandoned.
// Detaching deliberately (fire-and-forget cleanup) is legal but must be
// visible: suppress with //lint:ignore ctxflow <why detached>.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "flags context.Background()/context.TODO() used where a context.Context " +
		"parameter is in scope, which silently breaks cancellation and deadline propagation",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	for _, file := range pass.Files {
		walkCtxScope(pass, file, 0)
	}
	return nil
}

// walkCtxScope traverses the file tracking how many context.Context
// parameters are lexically in scope (function literals capture their
// enclosing function's context, so a plain depth count suffices).
func walkCtxScope(pass *Pass, n ast.Node, ctxDepth int) {
	switch n := n.(type) {
	case *ast.FuncDecl:
		if n.Body == nil {
			return
		}
		if hasCtxParam(pass, n.Type) {
			ctxDepth++
		}
		walkCtxScope(pass, n.Body, ctxDepth)
		return
	case *ast.FuncLit:
		if hasCtxParam(pass, n.Type) {
			ctxDepth++
		}
		walkCtxScope(pass, n.Body, ctxDepth)
		return
	case *ast.CallExpr:
		if ctxDepth > 0 {
			if name, ok := rootContextCall(pass, n); ok {
				pass.Reportf(n, "context.%s() called with a context.Context in scope; "+
					"pass the caller's context so cancellation and deadlines propagate", name)
			}
		}
	}
	// Generic descent.
	ast.Inspect(n, func(child ast.Node) bool {
		if child == n {
			return true
		}
		switch child.(type) {
		case *ast.FuncDecl, *ast.FuncLit, *ast.CallExpr:
			walkCtxScope(pass, child, ctxDepth)
			return false
		}
		return true
	})
}

// hasCtxParam reports whether the function type declares a named (usable)
// context.Context parameter.
func hasCtxParam(pass *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if !isContextType(pass.TypesInfo.TypeOf(field.Type)) {
			continue
		}
		if len(field.Names) == 0 {
			continue // unnamed: declared but unusable
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return true
			}
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// rootContextCall reports whether call is context.Background() or
// context.TODO(), returning the function name.
func rootContextCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if sel.Sel.Name != "Background" && sel.Sel.Name != "TODO" {
		return "", false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return "", false
	}
	return sel.Sel.Name, true
}
