package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked module package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Error      *struct{ Err string }
}

// Loader loads module packages from source, resolving standard-library
// imports through compiler export data produced by `go list -export`. It
// exists because this module is dependency-free: without
// golang.org/x/tools/go/packages, source loading plus export data is the
// complete program picture the type checker needs.
type Loader struct {
	Fset *token.FileSet

	exportFiles map[string]string         // import path -> export data file
	checked     map[string]*types.Package // module packages already checked
	imp         types.ImporterFrom        // gc export-data importer
}

// NewLoader returns an empty loader with a fresh file set.
func NewLoader() *Loader {
	l := &Loader{
		Fset:        token.NewFileSet(),
		exportFiles: map[string]string{},
		checked:     map[string]*types.Package{},
	}
	l.imp = importer.ForCompiler(l.Fset, "gc", l.lookupExport).(types.ImporterFrom)
	return l
}

// lookupExport opens the export data for an import path listed by go list.
func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	f, ok := l.exportFiles[path]
	if !ok {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(f)
}

// Import implements types.Importer: module packages resolve to their
// source-checked form (identity with the packages under analysis),
// everything else reads export data.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.checked[path]; ok {
		return p, nil
	}
	return l.imp.Import(path)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	return l.Import(path)
}

// Load lists patterns (e.g. "./...") with the go tool and returns every
// non-standard-library package in the dependency closure, type-checked
// from source in dependency order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	// go list -deps emits dependencies before dependents, so a single
	// in-order sweep type-checks every import before its importer.
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Standard {
			if lp.Export != "" {
				l.exportFiles[lp.ImportPath] = lp.Export
			}
			continue
		}
		pkg, err := l.check(lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: no module packages matched %v", patterns)
	}
	return out, nil
}

// LoadDir parses and type-checks a single directory outside the normal
// module package space (the analysistest-style harness points it at
// testdata packages). Imports resolve against whatever a prior Load (or
// LoadDeps) made available.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return l.check("testdata/"+filepath.Base(dir), dir, files)
}

// LoadDeps makes the dependency closure of the module's packages
// importable (export data for the standard library) without returning
// them for analysis. The harness calls it once so testdata packages can
// import anything the module itself imports.
func (l *Loader) LoadDeps() error {
	listed, err := goList([]string{"./..."})
	if err != nil {
		return err
	}
	for _, lp := range listed {
		if lp.Standard && lp.Export != "" {
			l.exportFiles[lp.ImportPath] = lp.Export
		}
	}
	return nil
}

// check parses and type-checks one package's files.
func (l *Loader) check(path, dir string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	l.checked[path] = tpkg
	return &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// goList runs `go list -deps -export -json` on the patterns from the
// module root and decodes the JSON stream.
func goList(patterns []string) ([]*listedPackage, error) {
	root, err := moduleRoot()
	if err != nil {
		return nil, err
	}
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %w\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var out []*listedPackage
	for {
		lp := &listedPackage{}
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above working directory")
		}
		dir = parent
	}
}
