// lockflow.go holds the shared lock-state machinery behind the concurrency
// analyzers lockguard and lockorder: recognizing sync.Mutex/RWMutex calls,
// rendering canonical mutex paths ("s.mu", "l.stats.mu", "genMu"),
// deriving type-level lock identities ("pkg.Type.field"), and a
// path-sensitive statement walker that tracks which mutexes are held.
//
// The walker is syntactic and intraprocedural by design: it keys held
// locks by the spelled access path, honors defer Unlock (held to function
// end), joins branch exit states by intersection (a lock counts as held
// after an if/switch/select only when every live branch holds it), and
// analyzes function literals with an empty held set — a closure cannot
// assume its creator's critical section is still open when it runs.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockMode distinguishes an exclusive Lock from a shared RLock.
type lockMode int

const (
	lockExclusive lockMode = iota
	lockShared
)

// heldLock is one mutex the walker believes is held on the current path.
type heldLock struct {
	mode     lockMode
	deferred bool      // released by a defer Unlock: held until function end
	pos      token.Pos // acquisition site
	node     string    // type-level identity ("pkg.Type.mu"), "" if unknown
}

// heldSet maps canonical mutex paths to their held state.
type heldSet map[string]heldLock

func (h heldSet) clone() heldSet {
	out := make(heldSet, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// sortedPaths returns the held paths in stable order for deterministic
// diagnostics.
func (h heldSet) sortedPaths() []string {
	out := make([]string, 0, len(h))
	for k := range h {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// undeferred returns the subset of held locks that no defer releases —
// the ones still locked when a return statement executes.
func (h heldSet) undeferred() heldSet {
	out := heldSet{}
	for k, v := range h {
		if !v.deferred {
			out[k] = v
		}
	}
	return out
}

// walkState is the per-path walker state.
type walkState struct {
	held       heldSet
	terminated bool // a return/break/continue left this path
}

// joinStates intersects the exit states of sibling branches. Terminated
// branches contribute nothing; if every branch terminated the join is
// terminated too. When branches disagree on mode, the shared (RLock)
// claim wins; a lock is deferred-released only if every branch says so.
func joinStates(branches ...*walkState) walkState {
	var live []*walkState
	for _, b := range branches {
		if !b.terminated {
			live = append(live, b)
		}
	}
	if len(live) == 0 {
		return walkState{held: heldSet{}, terminated: true}
	}
	out := walkState{held: live[0].held.clone()}
	for _, b := range live[1:] {
		for path, h := range out.held {
			other, ok := b.held[path]
			if !ok {
				delete(out.held, path)
				continue
			}
			if other.mode == lockShared {
				h.mode = lockShared
			}
			if !other.deferred {
				h.deferred = false
			}
			out.held[path] = h
		}
	}
	return out
}

// lockWalker drives the path-sensitive walk of one function body. All
// hooks are optional.
type lockWalker struct {
	pass *Pass
	// onAcquire fires at each Lock/RLock, before the mutex joins held.
	onAcquire func(x ast.Expr, path string, mode lockMode, pos token.Pos, held heldSet)
	// onAccess fires for identifier and selector expressions; write marks
	// assignment/inc-dec targets, escape marks address-of operands.
	onAccess func(e ast.Expr, write, escape bool, held heldSet)
	// onCall fires for every call that is not a mutex operation.
	onCall func(call *ast.CallExpr, held heldSet)
	// onExit fires at each return (and at fall-off-the-end) with the
	// locks still held that no defer releases.
	onExit func(pos token.Pos, held heldSet)
	// onFuncLit, when set, replaces the default handling of nested
	// function literals (recurse with an empty held set); goStmt reports
	// whether the literal is launched as a goroutine.
	onFuncLit func(lit *ast.FuncLit, goStmt bool)
}

// walkFunc analyzes one function body from an empty held set.
func (w *lockWalker) walkFunc(body *ast.BlockStmt) {
	st := &walkState{held: heldSet{}}
	w.stmts(body.List, st)
	if !st.terminated && w.onExit != nil {
		w.onExit(body.Rbrace, st.held.undeferred())
	}
}

func (w *lockWalker) funcLit(lit *ast.FuncLit, goStmt bool) {
	if w.onFuncLit != nil {
		w.onFuncLit(lit, goStmt)
		return
	}
	w.walkFunc(lit.Body)
}

func (w *lockWalker) stmts(list []ast.Stmt, st *walkState) {
	for _, s := range list {
		if st.terminated {
			return
		}
		w.stmt(s, st)
	}
}

func (w *lockWalker) stmt(s ast.Stmt, st *walkState) {
	switch n := s.(type) {
	case *ast.ExprStmt:
		w.expr(n.X, st)
	case *ast.SendStmt:
		w.expr(n.Chan, st)
		w.expr(n.Value, st)
	case *ast.IncDecStmt:
		w.writeTarget(n.X, st)
	case *ast.AssignStmt:
		for _, r := range n.Rhs {
			w.expr(r, st)
		}
		for _, l := range n.Lhs {
			w.writeTarget(l, st)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, st)
					}
				}
			}
		}
	case *ast.DeferStmt:
		w.deferCall(n.Call, st)
	case *ast.GoStmt:
		for _, a := range n.Call.Args {
			w.expr(a, st)
		}
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
			w.funcLit(lit, true)
		} else {
			w.expr(n.Call.Fun, st)
		}
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			w.expr(r, st)
		}
		if w.onExit != nil {
			w.onExit(n.Pos(), st.held.undeferred())
		}
		st.terminated = true
	case *ast.BranchStmt:
		// break/continue/goto leave the linear path; the enclosing loop
		// or label target is approximated by discarding this path.
		st.terminated = true
	case *ast.BlockStmt:
		inner := &walkState{held: st.held.clone()}
		w.stmts(n.List, inner)
		*st = *inner
	case *ast.LabeledStmt:
		w.stmt(n.Stmt, st)
	case *ast.IfStmt:
		if n.Init != nil {
			w.stmt(n.Init, st)
		}
		w.expr(n.Cond, st)
		thenSt := &walkState{held: st.held.clone()}
		w.stmts(n.Body.List, thenSt)
		elseSt := &walkState{held: st.held.clone()}
		if n.Else != nil {
			w.stmt(n.Else, elseSt)
		}
		*st = joinStates(thenSt, elseSt)
	case *ast.ForStmt:
		if n.Init != nil {
			w.stmt(n.Init, st)
		}
		// The body may run zero times, so the loop leaves the entry state
		// unchanged; the body itself is walked on a discarded copy.
		loopSt := &walkState{held: st.held.clone()}
		if n.Cond != nil {
			w.expr(n.Cond, loopSt)
		}
		w.stmts(n.Body.List, loopSt)
		if n.Post != nil && !loopSt.terminated {
			w.stmt(n.Post, loopSt)
		}
	case *ast.RangeStmt:
		w.expr(n.X, st)
		loopSt := &walkState{held: st.held.clone()}
		if n.Key != nil {
			w.writeTarget(n.Key, loopSt)
		}
		if n.Value != nil {
			w.writeTarget(n.Value, loopSt)
		}
		w.stmts(n.Body.List, loopSt)
	case *ast.SwitchStmt:
		if n.Init != nil {
			w.stmt(n.Init, st)
		}
		if n.Tag != nil {
			w.expr(n.Tag, st)
		}
		w.caseBodies(n.Body, st)
	case *ast.TypeSwitchStmt:
		if n.Init != nil {
			w.stmt(n.Init, st)
		}
		w.stmt(n.Assign, st)
		w.caseBodies(n.Body, st)
	case *ast.SelectStmt:
		var branches []*walkState
		for _, c := range n.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			b := &walkState{held: st.held.clone()}
			if cc.Comm != nil {
				w.stmt(cc.Comm, b)
			}
			w.stmts(cc.Body, b)
			branches = append(branches, b)
		}
		if len(branches) == 0 {
			st.terminated = true // select{} blocks forever
			return
		}
		*st = joinStates(branches...)
	}
}

// caseBodies walks switch/type-switch clause bodies as sibling branches.
// Without a default clause no case may match, so the entry state joins in.
func (w *lockWalker) caseBodies(body *ast.BlockStmt, st *walkState) {
	hasDefault := false
	var branches []*walkState
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			w.expr(e, st)
		}
		b := &walkState{held: st.held.clone()}
		w.stmts(cc.Body, b)
		branches = append(branches, b)
	}
	if !hasDefault {
		branches = append(branches, &walkState{held: st.held.clone()})
	}
	if len(branches) == 0 {
		return
	}
	*st = joinStates(branches...)
}

func (w *lockWalker) deferCall(call *ast.CallExpr, st *walkState) {
	if mx, verb, ok := mutexCall(w.pass.TypesInfo, call); ok {
		if verb == "Unlock" || verb == "RUnlock" {
			path := exprPath(mx)
			if h, held := st.held[path]; held {
				h.deferred = true
				st.held[path] = h
			}
		}
		return
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		for _, a := range call.Args {
			w.expr(a, st)
		}
		w.funcLit(lit, false)
		return
	}
	w.expr(call.Fun, st)
	for _, a := range call.Args {
		w.expr(a, st)
	}
	// Deferred calls run before any defer Unlock registered earlier, so
	// the current held set is a sound approximation for them.
	if w.onCall != nil {
		w.onCall(call, st.held)
	}
}

func (w *lockWalker) expr(e ast.Expr, st *walkState) {
	switch n := e.(type) {
	case nil:
		return
	case *ast.CallExpr:
		if mx, verb, ok := mutexCall(w.pass.TypesInfo, n); ok {
			path := exprPath(mx)
			switch verb {
			case "Lock", "RLock":
				mode := lockExclusive
				if verb == "RLock" {
					mode = lockShared
				}
				if w.onAcquire != nil {
					w.onAcquire(mx, path, mode, n.Pos(), st.held)
				}
				if path != "" {
					st.held[path] = heldLock{mode: mode, pos: n.Pos(), node: lockNode(w.pass, mx)}
				}
			case "Unlock", "RUnlock":
				if path != "" {
					delete(st.held, path)
				}
			}
			return
		}
		w.expr(n.Fun, st)
		for _, a := range n.Args {
			w.expr(a, st)
		}
		if w.onCall != nil {
			w.onCall(n, st.held)
		}
	case *ast.FuncLit:
		w.funcLit(n, false)
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if sel := stripParens(n.X); isSelectorOrIdent(sel) {
				if w.onAccess != nil {
					w.onAccess(sel, false, true, st.held)
				}
				if s2, ok := sel.(*ast.SelectorExpr); ok {
					w.expr(s2.X, st)
				}
				return
			}
		}
		w.expr(n.X, st)
	case *ast.SelectorExpr:
		if w.onAccess != nil {
			w.onAccess(n, false, false, st.held)
		}
		w.expr(n.X, st)
	case *ast.Ident:
		if w.onAccess != nil {
			w.onAccess(n, false, false, st.held)
		}
	case *ast.ParenExpr:
		w.expr(n.X, st)
	case *ast.StarExpr:
		w.expr(n.X, st)
	case *ast.IndexExpr:
		w.expr(n.X, st)
		w.expr(n.Index, st)
	case *ast.IndexListExpr:
		w.expr(n.X, st)
	case *ast.SliceExpr:
		w.expr(n.X, st)
		w.expr(n.Low, st)
		w.expr(n.High, st)
		w.expr(n.Max, st)
	case *ast.TypeAssertExpr:
		w.expr(n.X, st)
	case *ast.BinaryExpr:
		w.expr(n.X, st)
		w.expr(n.Y, st)
	case *ast.CompositeLit:
		isStruct := false
		if t := w.pass.TypesInfo.TypeOf(n); t != nil {
			if _, ok := t.Underlying().(*types.Struct); ok {
				isStruct = true
			}
		}
		for _, el := range n.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				// Struct literal keys are field names, not accesses.
				if !isStruct {
					w.expr(kv.Key, st)
				}
				w.expr(kv.Value, st)
				continue
			}
			w.expr(el, st)
		}
	}
}

// writeTarget handles assignment left-hand sides: the ultimate base of an
// index/star chain is the written object.
func (w *lockWalker) writeTarget(e ast.Expr, st *walkState) {
	switch n := e.(type) {
	case *ast.Ident:
		if w.onAccess != nil {
			w.onAccess(n, true, false, st.held)
		}
	case *ast.SelectorExpr:
		if w.onAccess != nil {
			w.onAccess(n, true, false, st.held)
		}
		w.expr(n.X, st)
	case *ast.IndexExpr:
		w.writeTarget(n.X, st)
		w.expr(n.Index, st)
	case *ast.ParenExpr:
		w.writeTarget(n.X, st)
	case *ast.StarExpr:
		w.expr(n.X, st)
	default:
		w.expr(e, st)
	}
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// mutexCall recognizes X.Lock/Unlock/RLock/RUnlock() where X is a mutex,
// returning the mutex expression and the verb. Promoted calls through an
// embedded anonymous mutex are not recognized — this module names its
// mutex fields.
func mutexCall(info *types.Info, call *ast.CallExpr) (ast.Expr, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil, "", false
	}
	t := info.TypeOf(sel.X)
	if t == nil || !isMutexType(t) {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// exprPath renders the canonical spelled path of an lvalue chain
// ("s.mu", "l.stats.mu", "genMu"); "" when the expression is not a plain
// ident/selector chain.
func exprPath(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprPath(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprPath(x.X)
	case *ast.StarExpr:
		return exprPath(x.X)
	}
	return ""
}

// lockNode derives the instance-insensitive identity of a mutex: for a
// struct field, "pkgpath.Type.field"; for a package-level var,
// "pkgpath.name". Locals and unresolvable expressions yield "".
func lockNode(pass *Pass, x ast.Expr) string {
	switch e := x.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
			t := sel.Recv()
			for {
				if p, ok := t.(*types.Pointer); ok {
					t = p.Elem()
					continue
				}
				break
			}
			if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
				return n.Obj().Pkg().Path() + "." + n.Obj().Name() + "." + e.Sel.Name
			}
			return ""
		}
		// Qualified reference to another package's mutex var.
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
				if v, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil {
					return v.Pkg().Path() + "." + v.Name()
				}
			}
		}
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[e].(*types.Var); ok && v.Pkg() != nil {
			if v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name()
			}
		}
	}
	return ""
}

// calleeFunc resolves a statically-dispatched callee: a package function,
// or a method on a concrete receiver. Interface method calls and calls
// through function values return nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := stripParens(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[f].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				if types.IsInterface(sig.Recv().Type()) {
					return nil
				}
			}
			return fn
		}
		if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func stripParens(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func isSelectorOrIdent(e ast.Expr) bool {
	switch e.(type) {
	case *ast.SelectorExpr, *ast.Ident:
		return true
	}
	return false
}

// hasLockedSuffix reports whether a function name documents the
// caller-holds-the-lock convention (evictOldestEpochLocked, failLocked):
// lockguard and lockorder trust such functions' callers.
func hasLockedSuffix(name string) bool {
	return strings.HasSuffix(name, "Locked")
}
