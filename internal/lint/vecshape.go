package lint

import (
	"go/ast"
	"go/types"
)

// VecShape enforces the shape-validation discipline of the columnar
// kernels in files tagged //lint:vecshape: an exported function that
// takes a selection vector ([]int32 of lane indices) must validate shape
// — batch/column lane counts, null-bitmap agreement, selection bounds —
// before touching any payload. Concretely, its first statement must
// contain a call to a shape validator (Check, CheckSel, checkSel, or
// checkShape). Kernels index payload slices by unchecked lane values;
// one out-of-range selection entry corrupts reads silently instead of
// failing loudly at the boundary.
var VecShape = &Analyzer{
	Name: "vecshape",
	Doc: "exported kernels in //lint:vecshape files that take a []int32 " +
		"selection must call a shape validator (Check/CheckSel/checkSel/" +
		"checkShape) in their first statement",
	Run: runVecShape,
}

func runVecShape(pass *Pass) error {
	for _, file := range pass.Files {
		if !fileHasDirective(file, "vecshape") {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			if isShapeValidator(fn.Name.Name) {
				continue // the validators are the boundary, not kernels
			}
			if !takesSelection(pass, fn) {
				continue
			}
			if !validatesShapeFirst(fn.Body) {
				pass.Reportf(fn.Name, "exported kernel %s takes a selection but its first "+
					"statement is not a shape validation; call Check/checkSel before touching payloads",
					fn.Name.Name)
			}
		}
	}
	return nil
}

// takesSelection reports whether any parameter is a []int32 — the lane
// selection type of the columnar kernels.
func takesSelection(pass *Pass, fn *ast.FuncDecl) bool {
	for _, f := range fn.Type.Params.List {
		t := pass.TypesInfo.TypeOf(f.Type)
		if t == nil {
			continue
		}
		sl, ok := t.Underlying().(*types.Slice)
		if !ok {
			continue
		}
		if b, ok := sl.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Int32 {
			return true
		}
	}
	return false
}

// validatesShapeFirst reports whether the body's first statement contains
// a shape-validator call (typically `if err := b.Check(); err != nil`).
func validatesShapeFirst(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	found := false
	ast.Inspect(body.List[0], func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch f := call.Fun.(type) {
		case *ast.SelectorExpr:
			name = f.Sel.Name
		case *ast.Ident:
			name = f.Name
		}
		if isShapeValidator(name) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isShapeValidator(name string) bool {
	switch name {
	case "Check", "CheckSel", "checkSel", "checkShape":
		return true
	}
	return false
}
