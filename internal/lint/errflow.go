package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// ErrFlow enforces inspectable error chains in files tagged
// //lint:wrap-errors — the transport and coordinator layers, where
// failover policy hinges on errors.Is/errors.As: the Reconnector must
// distinguish context cancellation (stop retrying) from transport faults
// (retry, then fail over), and the coordinator must recognize
// context.Canceled to avoid shadowing a root cause with sibling-
// cancellation fallout. A fmt.Errorf that formats an error argument with
// %v or %s flattens it to text, so errors.Is sees nothing: every such
// call must wrap at least one error with %w (annotating secondary errors
// with %v next to a %w is fine) or return an explicit sentinel instead.
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc: "requires fmt.Errorf calls that format an error argument to wrap one " +
		"with %w in files tagged //lint:wrap-errors, keeping errors.Is/As working " +
		"across package boundaries",
	Run: runErrFlow,
}

func runErrFlow(pass *Pass) error {
	for _, file := range pass.Files {
		if !fileHasDirective(file, "wrap-errors") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkErrorfChain(pass, call)
			return true
		})
	}
	return nil
}

// checkErrorfChain flags fmt.Errorf calls that take error arguments but
// wrap none of them.
func checkErrorfChain(pass *Pass, call *ast.CallExpr) {
	if !isPkgFunc(pass, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	format, ok := constantString(pass, call.Args[0])
	if !ok {
		return // dynamic format string: out of scope
	}
	verbs := formatVerbs(format)
	args := call.Args[1:]
	if len(verbs) != len(args) {
		return // malformed call; go vet reports arity problems
	}
	errArgs := 0
	wrapped := false
	for i, arg := range args {
		t := pass.TypesInfo.TypeOf(arg)
		if t == nil || !isErrorType(t) {
			continue
		}
		errArgs++
		if verbs[i] == 'w' {
			wrapped = true
		}
	}
	if errArgs > 0 && !wrapped {
		pass.Reportf(call, "fmt.Errorf flattens its error argument to text; wrap it "+
			"with %%w (or return a sentinel) so errors.Is/As keep working for "+
			"failover and cancellation checks")
	}
}

// isPkgFunc reports whether call invokes pkgPath.name at package level.
func isPkgFunc(pass *Pass, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// constantString extracts a compile-time constant string value.
func constantString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// isErrorType reports whether t implements the error interface.
func isErrorType(t types.Type) bool {
	return types.Implements(t, errorInterface) ||
		types.Implements(types.NewPointer(t), errorInterface)
}

// errorInterface is the universe error type's underlying interface.
var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// formatVerbs returns one verb letter per argument-consuming verb in the
// format string, in order. Width/precision stars and explicit argument
// indexes are rare in this codebase and punted on: calls using them are
// skipped by the arity check in the caller.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Skip flags, width, precision.
		for i < len(format) {
			c := format[i]
			if c == '%' {
				break // %% literal
			}
			if (c >= '0' && c <= '9') || c == '+' || c == '-' || c == '#' || c == ' ' || c == '.' {
				i++
				continue
			}
			break
		}
		if i >= len(format) || format[i] == '%' {
			continue
		}
		if format[i] == '*' || format[i] == '[' {
			// Star width or explicit index: bail via an impossible marker
			// so the caller's arity check skips the call.
			return nil
		}
		verbs = append(verbs, format[i])
	}
	return verbs
}
